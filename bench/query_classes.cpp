// query_classes — Pool vs DIM vs GHT message cost per query class.
//
// One deployment per seed, the same workload in every system, then a
// batch of range, skyline and k-NN queries executed through the unified
// DcsSystem::execute() surface. Reports mean messages and storage-node
// visits per class per system, cross-checks every result set against the
// canonical local kernels over the oracle (results_identical), and pins
// the tentpole's pruning claim: Pool's dominance-pruned skyline and
// shell-bounded k-NN must not visit more storage nodes than GHT's flood
// baseline. Writes the `query_classes` bench section
// (BENCH_query_classes.json; scripts/merge_perf_section.py folds it into
// BENCH_perf.json behind scripts/check_perf_regression.py).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_support/experiment.h"
#include "bench_support/testbed.h"
#include "cli/args.h"
#include "ght/ght_system.h"
#include "net/deployment.h"
#include "query/query_gen.h"
#include "routing/gpsr.h"
#include "sim/stats.h"
#include "storage/query_request.h"

using namespace poolnet;

namespace {

struct ClassStats {
  sim::RunningStat messages;
  sim::RunningStat visits;
  sim::RunningStat results;
};

struct ClassRow {
  ClassStats pool, dim, ght;
  std::size_t mismatches = 0;  ///< result sets differing from the kernel
};

/// The canonical answer: the local kernel over everything the oracle
/// holds (the same reduction every system performs at its sink).
std::vector<storage::Event> reference(const storage::BruteForceStore& oracle,
                                      const storage::QueryRequest& request) {
  std::vector<storage::Event> all = oracle.all();
  switch (request.cls()) {
    case storage::QueryClass::Skyline:
      storage::skyline_filter(request.skyline(), all);
      break;
    case storage::QueryClass::KNearest:
      storage::knn_filter(request.k_nearest(), all);
      break;
    case storage::QueryClass::Range: {
      std::vector<storage::Event> matching;
      for (storage::Event& e : all)
        if (request.range().matches(e)) matching.push_back(std::move(e));
      all = std::move(matching);
      break;
    }
  }
  return all;
}

void record(ClassStats& stats, const storage::QueryReceipt& receipt) {
  stats.messages.add(static_cast<double>(receipt.messages));
  stats.visits.add(static_cast<double>(receipt.index_nodes_visited));
  stats.results.add(static_cast<double>(receipt.events.size()));
}

/// Range results come back in cell/zone visit order (only skyline and
/// k-NN define a canonical order), so compare range sets id-sorted.
bool matches_reference(const storage::QueryRequest& request,
                       std::vector<storage::Event> got,
                       std::vector<storage::Event> want) {
  if (request.cls() == storage::QueryClass::Range) {
    const auto by_id = [](const storage::Event& a, const storage::Event& b) {
      return a.id < b.id;
    };
    std::sort(got.begin(), got.end(), by_id);
    std::sort(want.begin(), want.end(), by_id);
  }
  return got == want;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser parser("query_classes",
                        "Pool vs DIM vs GHT message cost per query class");
  parser.add_option("nodes", "300", "network size (sensors)");
  parser.add_option("dims", "3", "event dimensionality k");
  parser.add_option("queries", "20", "queries per class per seed");
  parser.add_option("seeds", "2", "deployments to average");
  parser.add_option("seed", "1", "master random seed");
  parser.add_option("json", "BENCH_query_classes.json",
                    "bench section output path");

  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n\n%s", error.c_str(),
                 parser.help().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::fputs(parser.help().c_str(), stdout);
    return 0;
  }
  const auto nodes = parser.int_option("nodes", 10, 100000, &error);
  const auto dims = parser.int_option("dims", 2, 8, &error);
  const auto queries = parser.int_option("queries", 1, 100000, &error);
  const auto seeds = parser.int_option("seeds", 1, 1000, &error);
  const auto seed0 = parser.int_option("seed", 0, INT64_MAX, &error);
  if (!nodes || !dims || !queries || !seeds || !seed0) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  const auto k = static_cast<std::size_t>(*dims);

  benchsup::print_banner(
      "Query classes — range vs skyline vs k-NN",
      "Same workload in Pool, DIM and GHT; every result set checked "
      "against the canonical kernels over the oracle.");

  const std::vector<std::string> kClasses = {"range", "skyline", "knn"};
  std::vector<ClassRow> rows(kClasses.size());

  for (std::int64_t s = 0; s < *seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(*seed0 + s);
    benchsup::TestbedConfig config;
    config.nodes = static_cast<std::size_t>(*nodes);
    config.dims = k;
    config.seed = seed;
    benchsup::Testbed tb(config);
    tb.insert_workload();

    // GHT rides its own deployment of the same size (like Pool and DIM it
    // must not share a traffic ledger with the others).
    std::unique_ptr<net::Network> ght_net;
    const double side =
        net::field_side_for_density(config.nodes, 40.0, 20.0);
    const Rect field{0, 0, side, side};
    for (std::uint64_t attempt = 0;; ++attempt) {
      Rng rng(seed * 977 + attempt * 7919 + 3);
      auto pts = net::deploy_uniform(config.nodes, field, rng);
      auto candidate =
          std::make_unique<net::Network>(std::move(pts), field, 40.0);
      if (candidate->is_connected()) {
        ght_net = std::move(candidate);
        break;
      }
    }
    routing::Gpsr ght_gpsr(*ght_net);
    ght::GhtSystem ght(*ght_net, ght_gpsr, k);
    for (const storage::Event& e : tb.oracle().all()) ght.insert(e.source, e);

    Rng sink_rng(seed * 5 + 13);
    for (std::size_t c = 0; c < kClasses.size(); ++c) {
      query::QueryClassMix mix;
      std::string parse_err;
      query::parse_query_class(kClasses[c], &mix, &parse_err);
      query::QueryGenerator gen({.dims = k}, seed * 31 + c);
      for (std::int64_t i = 0; i < *queries; ++i) {
        const storage::QueryRequest request = gen.next(mix);
        const net::NodeId sink = tb.random_node(sink_rng);
        const std::vector<storage::Event> want =
            reference(tb.oracle(), request);

        const storage::QueryReceipt pr = tb.pool().execute(sink, request);
        const storage::QueryReceipt dr = tb.dim().execute(sink, request);
        const storage::QueryReceipt gr = ght.execute(sink, request);
        record(rows[c].pool, pr);
        record(rows[c].dim, dr);
        record(rows[c].ght, gr);
        if (!matches_reference(request, pr.events, want)) ++rows[c].mismatches;
        if (!matches_reference(request, dr.events, want)) ++rows[c].mismatches;
        if (!matches_reference(request, gr.events, want)) ++rows[c].mismatches;
      }
    }
  }

  std::size_t mismatches = 0;
  benchsup::TablePrinter table({"class", "system", "msgs/query", "visits",
                                "results"});
  for (std::size_t c = 0; c < kClasses.size(); ++c) {
    const ClassRow& row = rows[c];
    mismatches += row.mismatches;
    const auto add = [&](const char* name, const ClassStats& st) {
      table.add_row({kClasses[c], name, benchsup::fmt(st.messages.mean()),
                     benchsup::fmt(st.visits.mean()),
                     benchsup::fmt(st.results.mean())});
    };
    add("pool", row.pool);
    add("dim", row.dim);
    add("ght", row.ght);
  }
  table.print();

  const bool identical = mismatches == 0;
  // The pruning claim, per non-range class: Pool's distributed pruning
  // must not visit more storage nodes than the GHT flood baseline.
  const bool skyline_pruned =
      rows[1].pool.visits.mean() <= rows[1].ght.visits.mean();
  const bool knn_pruned =
      rows[2].pool.visits.mean() <= rows[2].ght.visits.mean();
  std::printf(
      "\nresults identical: %s; Pool visits <= flood: skyline %s, knn %s\n",
      identical ? "yes" : "NO", skyline_pruned ? "yes" : "NO",
      knn_pruned ? "yes" : "NO");

  const std::string json_path = parser.option("json");
  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"query_classes\": {\n");
    std::fprintf(f, "    \"nodes\": %lld,\n",
                 static_cast<long long>(*nodes));
    std::fprintf(f, "    \"dims\": %zu,\n", k);
    std::fprintf(f, "    \"queries_per_class\": %lld,\n",
                 static_cast<long long>(*queries * *seeds));
    std::fprintf(f, "    \"results_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "    \"skyline_pool_visits_leq_flood\": %s,\n",
                 skyline_pruned ? "true" : "false");
    std::fprintf(f, "    \"knn_pool_visits_leq_flood\": %s,\n",
                 knn_pruned ? "true" : "false");
    std::fprintf(f, "    \"classes\": [\n");
    for (std::size_t c = 0; c < kClasses.size(); ++c) {
      const ClassRow& row = rows[c];
      const auto emit = [f](const char* name, const ClassStats& st,
                            const char* tail) {
        std::fprintf(f,
                     "        \"%s\": {\"messages\": %.2f, \"visits\": %.2f, "
                     "\"results\": %.2f}%s\n",
                     name, st.messages.mean(), st.visits.mean(),
                     st.results.mean(), tail);
      };
      std::fprintf(f, "      {\"class\": \"%s\",\n", kClasses[c].c_str());
      emit("pool", row.pool, ",");
      emit("dim", row.dim, ",");
      emit("ght", row.ght, "");
      std::fprintf(f, "      }%s\n", c + 1 < kClasses.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }

  if (!identical) {
    std::fprintf(stderr,
                 "query_classes: FAIL — %zu result sets diverged\n",
                 mismatches);
    return 1;
  }
  if (!skyline_pruned || !knn_pruned) {
    std::fprintf(stderr, "query_classes: FAIL — Pool pruning visited more "
                         "nodes than the flood baseline\n");
    return 1;
  }
  std::printf("query_classes: PASS\n");
  return 0;
}
