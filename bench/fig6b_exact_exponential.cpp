// Figure 6(b): query processing cost for exact-match range queries with an
// EXPONENTIAL range-size distribution, versus network size.
//
// Paper shape: both systems are much cheaper than under uniform sizes
// (most queries are small), with the same ordering — DIM grows with the
// network, Pool stays near-flat.
#include <cstdio>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Figure 6(b) — exact match, exponential range sizes",
               "Mean messages per 3-d exact-match range query; range sizes "
               "~ Exp(0.1) truncated to [0,1]; other settings as Fig 6(a).");

  constexpr int kSeeds = 3;
  constexpr int kQueriesPerSeed = 60;

  std::vector<std::size_t> sizes;
  for (std::size_t nodes = 300; nodes <= 2700; nodes += 300)
    sizes.push_back(nodes);

  std::vector<SweepJob> jobs;
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      jobs.push_back({g, [nodes = sizes[g], seed, &opts] {
        TestbedConfig config;
        config.nodes = nodes;
        config.seed = static_cast<std::uint64_t>(seed);
        config.route_cache = opts.route_cache;
        Testbed tb(config);
        tb.insert_workload();
        query::QueryGenerator qgen(
            {.dims = 3,
             .dist = query::RangeSizeDistribution::Exponential,
             .exp_mean = 0.1},
            static_cast<std::uint64_t>(seed) * 131 + nodes);
        const auto queries = generate_queries(
            kQueriesPerSeed, [&] { return qgen.exact_range(); });
        return run_paired_queries(tb, queries, seed * 11 + 3);
      }});
    }
  }
  const auto totals = run_sweep_parallel(sizes.size(), std::move(jobs),
                                         opts.threads);

  TablePrinter table({"nodes", "Pool msgs", "DIM msgs", "DIM/Pool",
                      "Pool cells", "DIM zones", "results/query"});
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    const PairedRun& total = totals[g];
    if (total.pool_mismatches || total.dim_mismatches) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at n=%zu\n", sizes[g]);
      return 1;
    }
    table.add_row({std::to_string(sizes[g]), fmt(total.pool.messages.mean()),
                   fmt(total.dim.messages.mean()),
                   fmt(total.dim.messages.mean() / total.pool.messages.mean(), 2),
                   fmt(total.pool.index_nodes.mean()),
                   fmt(total.dim.index_nodes.mean()),
                   fmt(total.pool.results.mean())});
  }
  table.print();
  std::printf(
      "\nExpected shape: both systems far cheaper than Fig 6(a); DIM still "
      "grows with network size while Pool stays near-flat.\n");
  return 0;
}
