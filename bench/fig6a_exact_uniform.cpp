// Figure 6(a): query processing cost for exact-match range queries with a
// UNIFORM range-size distribution, versus network size.
//
// Paper shape: DIM's message count grows markedly with the network size;
// Pool stays nearly flat (its index-node population tracks workload, not
// network size). Both cost far more than under the exponential sizes of
// Figure 6(b) because uniform draws produce large query boxes.
#include <cstdio>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Figure 6(a) — exact match, uniform range sizes",
               "Mean messages per 3-d exact-match range query; range sizes "
               "~ U[0,1]; 3 events/node; radio 40 m; alpha=5, l=10.");

  constexpr int kSeeds = 3;
  constexpr int kQueriesPerSeed = 60;

  std::vector<std::size_t> sizes;
  for (std::size_t nodes = 300; nodes <= 2700; nodes += 300)
    sizes.push_back(nodes);

  std::vector<SweepJob> jobs;
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      jobs.push_back({g, [nodes = sizes[g], seed, &opts] {
        TestbedConfig config;
        config.nodes = nodes;
        config.seed = static_cast<std::uint64_t>(seed);
        config.route_cache = opts.route_cache;
        Testbed tb(config);
        tb.insert_workload();
        query::QueryGenerator qgen(
            {.dims = 3, .dist = query::RangeSizeDistribution::Uniform},
            static_cast<std::uint64_t>(seed) * 101 + nodes);
        const auto queries = generate_queries(
            kQueriesPerSeed, [&] { return qgen.exact_range(); });
        return run_paired_queries(tb, queries, seed * 7 + 1);
      }});
    }
  }
  const auto totals = run_sweep_parallel(sizes.size(), std::move(jobs),
                                         opts.threads);

  TablePrinter table({"nodes", "Pool msgs", "DIM msgs", "DIM/Pool",
                      "Pool cells", "DIM zones", "results/query"});
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    const PairedRun& total = totals[g];
    if (total.pool_mismatches || total.dim_mismatches) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at n=%zu\n", sizes[g]);
      return 1;
    }
    table.add_row({std::to_string(sizes[g]), fmt(total.pool.messages.mean()),
                   fmt(total.dim.messages.mean()),
                   fmt(total.dim.messages.mean() / total.pool.messages.mean(), 2),
                   fmt(total.pool.index_nodes.mean()),
                   fmt(total.dim.index_nodes.mean()),
                   fmt(total.pool.results.mean())});
  }
  table.print();
  std::printf(
      "\nExpected shape: DIM grows with network size; Pool is near-flat.\n");
  return 0;
}
