// Figure 7(b): 1@n-partial query cost versus WHICH dimension carries the
// unspecified range, at 900 nodes.
//
// Paper shape: DIM is strongly position-dependent — worst when the FIRST
// dimension is unspecified (the k-d tree screens nothing at the top),
// improving toward the last dimension. Pool is position-insensitive and
// beats DIM by ~50-100% everywhere.
#include <cstdio>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Figure 7(b) — 1@n-partial match position",
               "Mean messages per 3-d 1@n-partial range query at 900 nodes; "
               "n picks the unspecified dimension (paper's 1@1..1@3).");

  constexpr int kSeeds = 5;
  constexpr int kQueriesPerSeed = 80;

  constexpr std::size_t kPositions = 3;
  std::vector<SweepJob> jobs;
  for (std::size_t n = 0; n < kPositions; ++n) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      jobs.push_back({n, [n, seed, &opts] {
        TestbedConfig config;
        config.nodes = 900;
        config.seed = static_cast<std::uint64_t>(seed);
        config.route_cache = opts.route_cache;
        Testbed tb(config);
        tb.insert_workload();
        query::QueryGenerator qgen({.dims = 3},
                                   static_cast<std::uint64_t>(seed) * 23 + n);
        const auto queries = generate_queries(
            kQueriesPerSeed, [&] { return qgen.partial_at(n); });
        return run_paired_queries(tb, queries, seed * 29 + 7);
      }});
    }
  }
  const auto totals = run_sweep_parallel(kPositions, std::move(jobs),
                                         opts.threads);

  TablePrinter table({"position", "Pool msgs", "DIM msgs", "DIM/Pool",
                      "results/query"});
  for (std::size_t n = 0; n < kPositions; ++n) {
    const PairedRun& total = totals[n];
    if (total.pool_mismatches || total.dim_mismatches) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at 1@%zu\n", n + 1);
      return 1;
    }
    table.add_row({"1@" + std::to_string(n + 1) + "-partial",
                   fmt(total.pool.messages.mean()),
                   fmt(total.dim.messages.mean()),
                   fmt(total.dim.messages.mean() / total.pool.messages.mean(),
                       2),
                   fmt(total.pool.results.mean())});
  }
  table.print();
  std::printf(
      "\nExpected shape: DIM decreases monotonically from 1@1 to 1@3; Pool "
      "flat across positions and cheaper throughout.\n");
  return 0;
}
