// Figure 7(a): partial-match query cost versus the number of unspecified
// dimensions (1-partial and 2-partial), at 900 nodes.
//
// Paper shape: cost rises with the number of unspecified dimensions for
// both systems; DIM sits roughly 180% above Pool at 1-partial and about
// 250% above at 2-partial.
#include <cstdio>

#include "bench_support/experiment.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main() {
  print_banner("Figure 7(a) — partial match, number of unspecified dims",
               "Mean messages per 3-d m-partial range query at 900 nodes; "
               "specified dims sized U[0, 0.25]; uniform events.");

  constexpr int kSeeds = 5;
  constexpr int kQueriesPerSeed = 80;

  TablePrinter table({"m-partial", "Pool msgs", "DIM msgs", "DIM/Pool",
                      "DIM overhead", "results/query"});
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}}) {
    PairedRun total;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      TestbedConfig config;
      config.nodes = 900;
      config.seed = static_cast<std::uint64_t>(seed);
      Testbed tb(config);
      tb.insert_workload();
      query::QueryGenerator qgen({.dims = 3},
                                 static_cast<std::uint64_t>(seed) * 17 + m);
      const auto queries = generate_queries(
          kQueriesPerSeed, [&] { return qgen.partial_range(m); });
      merge_into(total, run_paired_queries(tb, queries, seed * 19 + 5));
    }
    if (total.pool_mismatches || total.dim_mismatches) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at m=%zu\n", m);
      return 1;
    }
    const double ratio = total.dim.messages.mean() / total.pool.messages.mean();
    table.add_row({std::to_string(m) + "-partial",
                   fmt(total.pool.messages.mean()),
                   fmt(total.dim.messages.mean()), fmt(ratio, 2),
                   "+" + fmt((ratio - 1.0) * 100.0, 0) + "%",
                   fmt(total.pool.results.mean())});
  }
  table.print();
  std::printf(
      "\nExpected shape: both systems cost more at 2-partial; DIM ~180%% "
      "above Pool at 1-partial and ~250%% above at 2-partial (paper).\n");
  return 0;
}
