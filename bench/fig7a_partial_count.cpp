// Figure 7(a): partial-match query cost versus the number of unspecified
// dimensions (1-partial and 2-partial), at 900 nodes.
//
// Paper shape: cost rises with the number of unspecified dimensions for
// both systems; DIM sits roughly 180% above Pool at 1-partial and about
// 250% above at 2-partial.
#include <cstdio>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Figure 7(a) — partial match, number of unspecified dims",
               "Mean messages per 3-d m-partial range query at 900 nodes; "
               "specified dims sized U[0, 0.25]; uniform events.");

  constexpr int kSeeds = 5;
  constexpr int kQueriesPerSeed = 80;

  const std::vector<std::size_t> partials = {1, 2};
  std::vector<SweepJob> jobs;
  for (std::size_t g = 0; g < partials.size(); ++g) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      jobs.push_back({g, [m = partials[g], seed, &opts] {
        TestbedConfig config;
        config.nodes = 900;
        config.seed = static_cast<std::uint64_t>(seed);
        config.route_cache = opts.route_cache;
        Testbed tb(config);
        tb.insert_workload();
        query::QueryGenerator qgen({.dims = 3},
                                   static_cast<std::uint64_t>(seed) * 17 + m);
        const auto queries = generate_queries(
            kQueriesPerSeed, [&] { return qgen.partial_range(m); });
        return run_paired_queries(tb, queries, seed * 19 + 5);
      }});
    }
  }
  const auto totals = run_sweep_parallel(partials.size(), std::move(jobs),
                                         opts.threads);

  TablePrinter table({"m-partial", "Pool msgs", "DIM msgs", "DIM/Pool",
                      "DIM overhead", "results/query"});
  for (std::size_t g = 0; g < partials.size(); ++g) {
    const PairedRun& total = totals[g];
    if (total.pool_mismatches || total.dim_mismatches) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at m=%zu\n", partials[g]);
      return 1;
    }
    const double ratio = total.dim.messages.mean() / total.pool.messages.mean();
    table.add_row({std::to_string(partials[g]) + "-partial",
                   fmt(total.pool.messages.mean()),
                   fmt(total.dim.messages.mean()), fmt(ratio, 2),
                   "+" + fmt((ratio - 1.0) * 100.0, 0) + "%",
                   fmt(total.pool.results.mean())});
  }
  table.print();
  std::printf(
      "\nExpected shape: both systems cost more at 2-partial; DIM ~180%% "
      "above Pool at 1-partial and ~250%% above at 2-partial (paper).\n");
  return 0;
}
