// Ablation: reply packing factor (events per reply message).
//
// The paper counts "messages" without fixing how many qualifying events
// one reply frame carries; DESIGN.md §5 documents our default of 4. This
// bench quantifies how the headline DIM/Pool ratio depends on that choice,
// so EXPERIMENTS.md can report the substitution's sensitivity honestly.
#include <cstdio>

#include "bench_support/experiment.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main() {
  print_banner("Ablation — reply packing (events per reply message)",
               "900 nodes; exact uniform-size and 1-partial queries; the "
               "DIM/Pool ratio under different packing factors.");

  constexpr int kSeeds = 3;
  constexpr int kQueries = 50;

  TablePrinter table({"pack", "exact Pool", "exact DIM", "exact ratio",
                      "1-part Pool", "1-part DIM", "1-part ratio"});
  // pack = 0 is the default "one reply per answering node" convention.
  for (const std::uint32_t pack : {0u, 1u, 2u, 4u, 8u, 16u}) {
    PairedRun exact_total, partial_total;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      TestbedConfig config;
      config.nodes = 900;
      config.seed = static_cast<std::uint64_t>(seed);
      config.sizes.events_per_message = pack;
      Testbed tb(config);
      tb.insert_workload();
      query::QueryGenerator qgen(
          {.dims = 3}, static_cast<std::uint64_t>(seed) * 53 + pack);
      merge_into(exact_total,
                 run_paired_queries(
                     tb,
                     generate_queries(kQueries,
                                      [&] { return qgen.exact_range(); }),
                     seed * 5 + 21));
      merge_into(partial_total,
                 run_paired_queries(
                     tb,
                     generate_queries(kQueries,
                                      [&] { return qgen.partial_range(1); }),
                     seed * 5 + 22));
    }
    if (exact_total.pool_mismatches || exact_total.dim_mismatches ||
        partial_total.pool_mismatches || partial_total.dim_mismatches) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at pack=%u\n", pack);
      return 1;
    }
    table.add_row(
        {pack == 0 ? "inf" : std::to_string(pack),
         fmt(exact_total.pool.messages.mean()),
         fmt(exact_total.dim.messages.mean()),
         fmt(exact_total.dim.messages.mean() /
                 exact_total.pool.messages.mean(),
             2),
         fmt(partial_total.pool.messages.mean()),
         fmt(partial_total.dim.messages.mean()),
         fmt(partial_total.dim.messages.mean() /
                 partial_total.pool.messages.mean(),
             2)});
  }
  table.print();
  std::printf(
      "\nExpected shape: absolute costs fall as packing rises; the DIM/Pool "
      "ordering is stable across packing factors.\n");
  return 0;
}
