// Ablation: reply packing factor (events per reply message).
//
// The paper counts "messages" without fixing how many qualifying events
// one reply frame carries; DESIGN.md §5 documents our default of 4. This
// bench quantifies how the headline DIM/Pool ratio depends on that choice,
// so EXPERIMENTS.md can report the substitution's sensitivity honestly.
#include <cstdio>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

namespace {
struct SeedRun {
  PairedRun exact;
  PairedRun partial;
};
}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Ablation — reply packing (events per reply message)",
               "900 nodes; exact uniform-size and 1-partial queries; the "
               "DIM/Pool ratio under different packing factors.");

  constexpr int kSeeds = 3;
  constexpr int kQueries = 50;

  // pack = 0 is the default "one reply per answering node" convention.
  const std::vector<std::uint32_t> packs = {0u, 1u, 2u, 4u, 8u, 16u};
  struct Job {
    std::size_t group;
    std::uint32_t pack;
    int seed;
  };
  std::vector<Job> grid;
  for (std::size_t g = 0; g < packs.size(); ++g)
    for (int seed = 1; seed <= kSeeds; ++seed) grid.push_back({g, packs[g], seed});

  const auto runs = parallel_map<SeedRun>(
      grid.size(), opts.threads, [&grid, &opts](std::size_t i) {
        const auto [group, pack, seed] = grid[i];
        (void)group;
        TestbedConfig config;
        config.nodes = 900;
        config.seed = static_cast<std::uint64_t>(seed);
        config.sizes.events_per_message = pack;
        config.route_cache = opts.route_cache;
        Testbed tb(config);
        tb.insert_workload();
        query::QueryGenerator qgen(
            {.dims = 3}, static_cast<std::uint64_t>(seed) * 53 + pack);
        SeedRun out;
        out.exact = run_paired_queries(
            tb, generate_queries(kQueries, [&] { return qgen.exact_range(); }),
            seed * 5 + 21);
        out.partial = run_paired_queries(
            tb,
            generate_queries(kQueries, [&] { return qgen.partial_range(1); }),
            seed * 5 + 22);
        return out;
      });

  TablePrinter table({"pack", "exact Pool", "exact DIM", "exact ratio",
                      "1-part Pool", "1-part DIM", "1-part ratio"});
  for (std::size_t g = 0; g < packs.size(); ++g) {
    PairedRun exact_total, partial_total;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].group != g) continue;
      merge_into(exact_total, runs[i].exact);
      merge_into(partial_total, runs[i].partial);
    }
    if (exact_total.pool_mismatches || exact_total.dim_mismatches ||
        partial_total.pool_mismatches || partial_total.dim_mismatches) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at pack=%u\n", packs[g]);
      return 1;
    }
    table.add_row(
        {packs[g] == 0 ? "inf" : std::to_string(packs[g]),
         fmt(exact_total.pool.messages.mean()),
         fmt(exact_total.dim.messages.mean()),
         fmt(exact_total.dim.messages.mean() /
                 exact_total.pool.messages.mean(),
             2),
         fmt(partial_total.pool.messages.mean()),
         fmt(partial_total.dim.messages.mean()),
         fmt(partial_total.dim.messages.mean() /
                 partial_total.pool.messages.mean(),
             2)});
  }
  table.print();
  std::printf(
      "\nExpected shape: absolute costs fall as packing rises; the DIM/Pool "
      "ordering is stable across packing factors.\n");
  return 0;
}
