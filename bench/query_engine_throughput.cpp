// query_engine_throughput — batch size x query overlap sweep for the
// sink-side query engine (ISSUE 2 tentpole evaluation).
//
// A fixed testbed serves a 64-query workload whose overlap fraction p
// redirects each query, with probability p, to one of 8 popular
// templates (the rest are fresh draws). Every (overlap, batch) cell
// replays the SAME workload through a fresh QueryEngine over Pool and
// DIM, so message deltas are attributable to batching alone. Each
// batched run is cross-checked event-for-event against the serial run —
// the engine's contract is byte-identical answers, cheaper delivery.
//
//   $ query_engine_throughput                 # full sweep
//   $ query_engine_throughput --batch 16      # serial vs one batch size
//
// Emits query_engine_throughput.csv; exits nonzero if any batched
// result set differs from serial.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "engine/query_engine.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

namespace {

constexpr std::size_t kNodes = 600;
constexpr std::size_t kQueries = 64;
constexpr std::size_t kTemplates = 8;
constexpr std::uint64_t kSeed = 1;
const std::vector<double> kOverlaps = {0.0, 0.25, 0.5, 0.75};

struct CellResult {
  std::uint64_t messages = 0;
  std::uint64_t messages_saved = 0;
  double dedup_ratio = 1.0;
  double wall_ms = 0.0;
  bool identical = true;  ///< events match the serial run of this overlap
};

std::vector<storage::RangeQuery> make_workload(double overlap) {
  // Template and fresh-query streams are seeded independently of the
  // overlap draw so the popular set is shared across overlap levels.
  query::QueryGenerator tmpl_gen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential},
      kSeed * 7919 + 11);
  std::vector<storage::RangeQuery> templates;
  for (std::size_t i = 0; i < kTemplates; ++i)
    templates.push_back(tmpl_gen.exact_range());

  query::QueryGenerator fresh_gen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential},
      kSeed * 104729 + 23);
  Rng pick(kSeed * 31 + 5);
  std::vector<storage::RangeQuery> out;
  out.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    // Draw both streams every round so the fresh queries are identical
    // across overlap levels; only the selection differs.
    const storage::RangeQuery fresh = fresh_gen.exact_range();
    const std::size_t slot =
        static_cast<std::size_t>(pick.uniform_int(0, kTemplates - 1));
    const bool popular = pick.uniform() < overlap;
    out.push_back(popular ? templates[slot] : fresh);
  }
  return out;
}

/// Replays `queries` from one sink through a fresh engine over `system`.
CellResult run_cell(storage::DcsSystem& system, net::NodeId sink,
                    const std::vector<storage::RangeQuery>& queries,
                    std::size_t batch_size,
                    const std::vector<storage::QueryReceipt>* serial) {
  engine::QueryEngineConfig cfg;
  cfg.batch_size = batch_size;
  // The sweep isolates the size trigger; the deadline trigger has its
  // own tests.
  cfg.batch_deadline = std::uint64_t{1} << 40;
  engine::QueryEngine eng(system, cfg);

  const auto start = std::chrono::steady_clock::now();
  std::vector<engine::QueryEngine::Ticket> tickets;
  tickets.reserve(queries.size());
  for (const auto& q : queries) tickets.push_back(eng.submit(sink, q));
  eng.flush();
  std::vector<storage::QueryReceipt> receipts;
  receipts.reserve(tickets.size());
  for (const auto t : tickets) receipts.push_back(eng.take(t));
  const auto end = std::chrono::steady_clock::now();

  CellResult out;
  out.messages = eng.stats().messages;
  out.messages_saved = eng.stats().messages_saved;
  out.dedup_ratio = eng.stats().overall_dedup_ratio();
  out.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  if (serial) {
    for (std::size_t i = 0; i < receipts.size(); ++i)
      if (receipts[i].events != (*serial)[i].events) out.identical = false;
  }
  return out;
}

std::vector<storage::QueryReceipt> run_serial(
    storage::DcsSystem& system, net::NodeId sink,
    const std::vector<storage::RangeQuery>& queries, CellResult* cell) {
  engine::QueryEngine eng(system, {});
  const auto start = std::chrono::steady_clock::now();
  std::vector<storage::QueryReceipt> receipts;
  receipts.reserve(queries.size());
  for (const auto& q : queries) receipts.push_back(eng.take(eng.submit(sink, q)));
  const auto end = std::chrono::steady_clock::now();
  cell->messages = eng.stats().messages;
  cell->messages_saved = 0;
  cell->dedup_ratio = 1.0;
  cell->wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  return receipts;
}

double savings_pct(std::uint64_t serial, std::uint64_t batched) {
  if (serial == 0) return 0.0;
  return 100.0 * (1.0 - static_cast<double>(batched) /
                            static_cast<double>(serial));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Query-engine throughput — batch size x query overlap",
               "64 exact-range queries from one sink over 600 nodes; each "
               "batched run must reproduce the serial result sets exactly.");

  // --batch N narrows the sweep to {serial, N}; the default covers the
  // usual doubling ladder.
  std::vector<std::size_t> batches;
  if (opts.engine.batch_size > 1) {
    batches = {opts.engine.batch_size};
  } else {
    batches = {2, 4, 8, 16, 32};
  }

  TestbedConfig config;
  config.nodes = kNodes;
  config.seed = kSeed;
  config.route_cache = opts.route_cache;
  Testbed tb(config);
  tb.insert_workload();
  Rng sink_rng(kSeed * 13 + 3);
  const net::NodeId sink = tb.random_node(sink_rng);

  std::FILE* csv = std::fopen("query_engine_throughput.csv", "w");
  if (csv) {
    std::fprintf(csv,
                 "system,overlap,batch,messages,serial_messages,"
                 "savings_pct,messages_saved,dedup_ratio,wall_ms\n");
  }

  TablePrinter table({"overlap", "batch", "Pool msgs", "Pool saved",
                      "DIM msgs", "DIM saved", "Pool dedup", "DIM dedup",
                      "identical"});
  bool all_identical = true;
  double pool_savings_at_accept = 0.0, dim_savings_at_accept = 0.0;
  const std::size_t accept_batch = batches.back();

  for (const double overlap : kOverlaps) {
    const auto queries = make_workload(overlap);

    CellResult pool_serial, dim_serial;
    const auto pool_base = run_serial(tb.pool(), sink, queries, &pool_serial);
    const auto dim_base = run_serial(tb.dim(), sink, queries, &dim_serial);
    table.add_row({fmt(overlap, 2), "off",
                   std::to_string(pool_serial.messages), "-",
                   std::to_string(dim_serial.messages), "-", "1.00", "1.00",
                   "yes"});
    if (csv) {
      for (const char* sys : {"pool", "dim"}) {
        const CellResult& c =
            sys[0] == 'p' ? pool_serial : dim_serial;
        std::fprintf(csv, "%s,%.2f,0,%llu,%llu,0.0,0,1.0,%.2f\n", sys,
                     overlap, static_cast<unsigned long long>(c.messages),
                     static_cast<unsigned long long>(c.messages), c.wall_ms);
      }
    }

    for (const std::size_t b : batches) {
      const auto pool_cell = run_cell(tb.pool(), sink, queries, b, &pool_base);
      const auto dim_cell = run_cell(tb.dim(), sink, queries, b, &dim_base);
      const double pool_saved =
          savings_pct(pool_serial.messages, pool_cell.messages);
      const double dim_saved =
          savings_pct(dim_serial.messages, dim_cell.messages);
      const bool identical = pool_cell.identical && dim_cell.identical;
      all_identical = all_identical && identical;
      table.add_row({fmt(overlap, 2), std::to_string(b),
                     std::to_string(pool_cell.messages),
                     fmt(pool_saved, 1) + "%",
                     std::to_string(dim_cell.messages),
                     fmt(dim_saved, 1) + "%", fmt(pool_cell.dedup_ratio, 2),
                     fmt(dim_cell.dedup_ratio, 2), identical ? "yes" : "NO"});
      if (csv) {
        std::fprintf(
            csv, "pool,%.2f,%zu,%llu,%llu,%.2f,%llu,%.4f,%.2f\n", overlap, b,
            static_cast<unsigned long long>(pool_cell.messages),
            static_cast<unsigned long long>(pool_serial.messages), pool_saved,
            static_cast<unsigned long long>(pool_cell.messages_saved),
            pool_cell.dedup_ratio, pool_cell.wall_ms);
        std::fprintf(
            csv, "dim,%.2f,%zu,%llu,%llu,%.2f,%llu,%.4f,%.2f\n", overlap, b,
            static_cast<unsigned long long>(dim_cell.messages),
            static_cast<unsigned long long>(dim_serial.messages), dim_saved,
            static_cast<unsigned long long>(dim_cell.messages_saved),
            dim_cell.dedup_ratio, dim_cell.wall_ms);
      }
      if (overlap == 0.5 && b == accept_batch) {
        pool_savings_at_accept = pool_saved;
        dim_savings_at_accept = dim_saved;
      }
    }
  }
  table.print();
  if (csv) {
    std::fclose(csv);
    std::printf("\nwrote query_engine_throughput.csv\n");
  }

  std::printf(
      "\nbatch %zu @ 50%% overlap: Pool %.1f%%, DIM %.1f%% fewer messages "
      "than serial issue\n",
      accept_batch, pool_savings_at_accept, dim_savings_at_accept);
  if (!all_identical) {
    std::fprintf(stderr,
                 "CORRECTNESS VIOLATION: a batched result set differed from "
                 "serial execution\n");
    return 1;
  }
  return 0;
}
