// server_load — closed-loop load generator for poolnetd.
//
// Two modes:
//
//  * In-process sweep (default): starts a Server in this process, drives
//    a connections x queries sweep (1, 8 and 64 concurrent connections),
//    verifies every RESULT body byte-for-byte against direct serial
//    execution on an identically-built backend, runs a deterministic
//    admission-rejection probe, and writes the `server` bench section
//    (BENCH_server.json; scripts/merge_perf_section.py folds it into
//    BENCH_perf.json behind scripts/check_perf_regression.py).
//
//  * --connect <host:port>: drives an EXTERNAL poolnetd (the CI smoke
//    path). The backend flags here must match the server's; the
//    byte-identity check then proves the whole wire stack — framing,
//    parsing, admission, epoch demux — preserves engine results across
//    processes.
//
// Queries only (no inserts), so the store is static and any reply
// interleaving must still be byte-identical to serial execution.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.h"
#include "common/rng.h"
#include "query/query_gen.h"
#include "server/client.h"
#include "server/query_language.h"
#include "server/server.h"

using namespace poolnet;

namespace {

/// Deterministic SELECT text: every dimension specified with probability
/// 0.75 (at least one always), widths in [0.05, 0.45].
std::string make_statement(Rng& rng, std::size_t dims) {
  std::string text = "SELECT";
  bool any = false;
  for (std::size_t d = 0; d < dims; ++d) {
    const bool last = d + 1 == dims;
    if (rng.uniform() > 0.75 && !(last && !any)) continue;
    const double width = rng.uniform(0.05, 0.45);
    const double lo = rng.uniform(0.0, 1.0 - width);
    char clause[96];
    std::snprintf(clause, sizeof(clause), "%s a%zu IN [%.6f, %.6f]",
                  any ? " AND" : " WHERE", d, lo, lo + width);
    text += clause;
    any = true;
  }
  return text;
}

/// Statement of the configured class. Range keeps the historical draw
/// above (same RNG stream as pre-QueryRequest builds); the other
/// classes round-trip generated requests through to_query_text so the
/// wire grammar itself is under load.
std::string make_class_statement(Rng& rng, query::QueryGenerator& gen,
                                 std::size_t dims,
                                 query::QueryClassMix mix) {
  if (mix == query::QueryClassMix::Range) return make_statement(rng, dims);
  return server::to_query_text(gen.next(mix));
}

struct Record {
  std::string statement;
  std::vector<std::uint8_t> body;
  double ms = 0.0;
};

/// One closed-loop connection: send, block for the reply, repeat.
void run_connection(const std::string& host, std::uint16_t port,
                    std::size_t queries, std::size_t dims,
                    query::QueryClassMix mix, std::uint64_t seed,
                    std::vector<Record>* out, std::string* error) {
  try {
    server::Client client;
    client.connect(host, port);
    Rng rng(seed);
    query::QueryGenerator gen({dims}, seed);
    out->reserve(queries);
    for (std::size_t i = 0; i < queries; ++i) {
      Record rec;
      rec.statement = make_class_statement(rng, gen, dims, mix);
      const auto t0 = std::chrono::steady_clock::now();
      const std::uint64_t id = client.send_query(rec.statement);
      server::Client::Reply reply = client.read_reply();
      const auto t1 = std::chrono::steady_clock::now();
      if (reply.request_id != id || reply.is_error) {
        *error = "connection seed " + std::to_string(seed) +
                 ": unexpected reply for '" + rec.statement + "'" +
                 (reply.is_error ? ": " + reply.message : "");
        return;
      }
      rec.body = std::move(reply.body);
      rec.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      out->push_back(std::move(rec));
    }
  } catch (const std::exception& e) {
    *error = e.what();
  }
}

struct PointResult {
  std::size_t connections = 0;
  std::size_t queries = 0;  ///< total completed across connections
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool receipts_identical = false;
};

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(idx + 0.5)];
}

/// Replays every recorded statement through direct serial execution on
/// `direct` and compares the canonical event bytes.
bool verify_records(server::Backend& direct,
                    const std::vector<std::vector<Record>>& per_conn,
                    std::size_t dims) {
  for (const auto& records : per_conn) {
    for (const Record& rec : records) {
      storage::RangeQuery::Bounds one;
      one.push_back(ClosedInterval{0.0, 1.0});
      storage::QueryRequest query{storage::RangeQuery{one}};
      std::string error;
      if (!server::parse_query(rec.statement, dims, &query, &error)) {
        std::fprintf(stderr, "verify: cannot re-parse '%s': %s\n",
                     rec.statement.c_str(), error.c_str());
        return false;
      }
      const storage::QueryReceipt receipt =
          direct.system().execute(direct.sink(), query);
      const std::vector<std::uint8_t> expected =
          server::encode_events(receipt.events);
      if (expected != rec.body) {
        std::fprintf(stderr,
                     "verify: MISMATCH for '%s' (%zu direct bytes, %zu "
                     "server bytes)\n",
                     rec.statement.c_str(), expected.size(), rec.body.size());
        return false;
      }
    }
  }
  return true;
}

PointResult run_point(const std::string& host, std::uint16_t port,
                      std::size_t connections, std::size_t queries_per_conn,
                      std::size_t dims, query::QueryClassMix mix,
                      std::uint64_t seed, server::Backend& direct) {
  std::vector<std::vector<Record>> per_conn(connections);
  std::vector<std::string> errors(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back(run_connection, host, port, queries_per_conn, dims,
                         mix, seed * 1000 + c, &per_conn[c], &errors[c]);
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  PointResult point;
  point.connections = connections;
  for (const auto& e : errors) {
    if (!e.empty()) {
      std::fprintf(stderr, "connection failed: %s\n", e.c_str());
      return point;  // receipts_identical stays false
    }
  }

  std::vector<double> lat;
  for (const auto& records : per_conn) {
    point.queries += records.size();
    for (const Record& r : records) lat.push_back(r.ms);
  }
  std::sort(lat.begin(), lat.end());
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  point.qps = secs > 0 ? static_cast<double>(point.queries) / secs : 0.0;
  point.p50_ms = quantile(lat, 0.50);
  point.p99_ms = quantile(lat, 0.99);
  point.receipts_identical = verify_records(direct, per_conn, dims);
  return point;
}

struct RejectionProbe {
  std::size_t sent = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  bool deterministic = false;  ///< rejected == sent - max_inflight
};

/// Pipelines more statements than the per-client window against a server
/// whose epoch cannot fill from one client (epoch size 32 > window 16),
/// so exactly sent - window statements must bounce with TooManyInFlight.
RejectionProbe run_rejection_probe(const server::BackendConfig& backend) {
  server::ServerConfig config;
  config.backend = backend;
  config.backend.engine.batch_size = 32;
  config.backend.engine.cache.enabled = false;
  config.max_inflight_per_client = 16;
  config.flush_interval_us = 200000;  // partial epoch flushes once we stop
  server::Server srv(config);
  srv.start();

  RejectionProbe probe;
  probe.sent = 40;
  {
    server::Client client;
    client.connect("127.0.0.1", srv.port());
    std::vector<std::uint64_t> ids;
    Rng rng(99);
    for (std::size_t i = 0; i < probe.sent; ++i)
      ids.push_back(client.send_query(make_statement(rng, backend.dims)));
    for (std::size_t i = 0; i < probe.sent; ++i) {
      const server::Client::Reply reply = client.read_reply();
      if (reply.is_error &&
          reply.code == server::ErrorCode::TooManyInFlight) {
        ++probe.rejected;
      } else if (!reply.is_error) {
        ++probe.admitted;
      }
    }
  }
  srv.stop();
  probe.deterministic = probe.admitted == 16 && probe.rejected == 24;
  return probe;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser parser("server_load",
                        "closed-loop load generator for poolnetd");
  parser.add_option("connect", "",
                    "host:port of an external poolnetd (default: "
                    "in-process sweep)");
  parser.add_option("connections", "0",
                    "with --connect: concurrent connections (default 2)");
  parser.add_option("queries", "0",
                    "with --connect: queries per connection (default 100)");
  parser.add_option("system", "pool", "backend system: pool, dim or ght");
  parser.add_option("nodes", "300", "network size (sensors)");
  parser.add_option("dims", "3", "event dimensionality k");
  parser.add_option("events-per-node", "3", "workload preloaded per node");
  parser.add_option("seed", "1", "master random seed");
  parser.add_option("query-class", "range",
                    "query class: range, skyline, knn or mix");
  parser.add_option("json", "BENCH_server.json", "bench section output path");
  cli::add_engine_options(parser);

  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n\n%s", error.c_str(),
                 parser.help().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::fputs(parser.help().c_str(), stdout);
    return 0;
  }

  server::BackendConfig backend;
  const auto nodes = parser.int_option("nodes", 10, 100000, &error);
  const auto dims = parser.int_option("dims", 1, 8, &error);
  const auto epn = parser.int_option("events-per-node", 0, 1000, &error);
  const auto seed = parser.int_option("seed", 0, INT64_MAX, &error);
  const auto conns = parser.int_option("connections", 0, 4096, &error);
  const auto queries = parser.int_option("queries", 0, 1 << 20, &error);
  query::QueryClassMix mix = query::QueryClassMix::Range;
  if (!nodes || !dims || !epn || !seed || !conns || !queries ||
      !server::parse_system_kind(parser.option("system"), &backend.system,
                                 &error) ||
      !query::parse_query_class(parser.option("query-class"), &mix, &error) ||
      !cli::parse_engine_options(parser, &backend.engine, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  backend.nodes = static_cast<std::size_t>(*nodes);
  backend.dims = static_cast<std::size_t>(*dims);
  backend.events_per_node = static_cast<std::size_t>(*epn);
  backend.seed = static_cast<std::uint64_t>(*seed);
  if (backend.engine.batch_size == 0) backend.engine.batch_size = 16;

  // The verification arm: same deployment, direct serial execution.
  std::printf("server_load: building direct %s backend (%zu nodes)...\n",
              server::to_string(backend.system), backend.nodes);
  server::BackendConfig direct_config = backend;
  direct_config.engine.batch_size = 0;  // unused: we query the system itself
  server::Backend direct(direct_config);

  std::vector<PointResult> sweep;
  RejectionProbe probe;
  const std::string connect = parser.option("connect");

  if (!connect.empty()) {
    const auto colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "error: --connect needs host:port\n");
      return 2;
    }
    const std::string host = connect.substr(0, colon);
    const int port = std::atoi(connect.c_str() + colon + 1);
    const std::size_t n_conns = *conns > 0 ? std::size_t(*conns) : 2;
    const std::size_t n_queries = *queries > 0 ? std::size_t(*queries) : 100;
    std::printf("server_load: driving %s with %zu x %zu queries\n",
                connect.c_str(), n_conns, n_queries);
    sweep.push_back(run_point(host, static_cast<std::uint16_t>(port), n_conns,
                              n_queries, backend.dims, mix, backend.seed,
                              direct));
    probe.deterministic = true;  // probed only in-process
  } else {
    server::ServerConfig config;
    config.backend = backend;
    server::Server srv(config);
    srv.start();
    std::printf("server_load: in-process server on 127.0.0.1:%u, batch=%zu\n",
                static_cast<unsigned>(srv.port()),
                backend.engine.batch_size);

    struct { std::size_t conns, queries; } points[] = {
        {1, 200}, {8, 50}, {64, 8}};
    for (const auto& p : points) {
      const std::size_t n_conns = *conns > 0 ? std::size_t(*conns) : p.conns;
      const std::size_t n_queries =
          *queries > 0 ? std::size_t(*queries) : p.queries;
      sweep.push_back(run_point("127.0.0.1", srv.port(), n_conns, n_queries,
                                backend.dims, mix, backend.seed, direct));
      const PointResult& r = sweep.back();
      std::printf(
          "  %3zu conns: %5zu queries, %8.0f qps, p50 %6.3f ms, p99 %6.3f "
          "ms, identical=%s\n",
          r.connections, r.queries, r.qps, r.p50_ms, r.p99_ms,
          r.receipts_identical ? "yes" : "NO");
      if (*conns > 0) break;  // explicit size: one point
    }
    srv.stop();

    probe = run_rejection_probe(backend);
    std::printf(
        "  rejection probe: %zu sent, %zu admitted, %zu rejected (%s)\n",
        probe.sent, probe.admitted, probe.rejected,
        probe.deterministic ? "as expected" : "UNEXPECTED");
  }

  bool all_identical = !sweep.empty();
  for (const PointResult& r : sweep)
    if (!r.receipts_identical) all_identical = false;

  const std::string json_path = parser.option("json");
  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"server\": {\n");
    std::fprintf(f, "    \"system\": \"%s\",\n",
                 server::to_string(backend.system));
    std::fprintf(f, "    \"query_class\": \"%s\",\n", query::to_string(mix));
    std::fprintf(f, "    \"nodes\": %zu,\n", backend.nodes);
    std::fprintf(f, "    \"batch\": %zu,\n", backend.engine.batch_size);
    std::fprintf(f, "    \"receipts_identical\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(f, "    \"rejection_probe\": {\"sent\": %zu, \"admitted\": "
                    "%zu, \"rejected\": %zu, \"deterministic\": %s},\n",
                 probe.sent, probe.admitted, probe.rejected,
                 probe.deterministic ? "true" : "false");
    std::fprintf(f, "    \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const PointResult& r = sweep[i];
      std::fprintf(f,
                   "      {\"connections\": %zu, \"queries\": %zu, \"qps\": "
                   "%.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                   "\"receipts_identical\": %s}%s\n",
                   r.connections, r.queries, r.qps, r.p50_ms, r.p99_ms,
                   r.receipts_identical ? "true" : "false",
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }\n}\n");
    std::fclose(f);
    std::printf("server_load: wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }

  if (!all_identical) {
    std::fprintf(stderr, "server_load: FAIL — receipts differ from direct "
                         "execution\n");
    return 1;
  }
  if (!probe.deterministic) {
    std::fprintf(stderr, "server_load: FAIL — admission probe off\n");
    return 1;
  }
  std::printf("server_load: PASS — all receipts byte-identical to direct "
              "execution\n");
  return 0;
}
