// Ablation: per-hop frame loss (the substrate knob the paper's ideal-
// channel simulation fixes at zero). ARQ retransmissions inflate every
// hop by ~1/(1-p); the question is whether the Pool-vs-DIM ordering and
// gap survive a realistic channel. (They do — both systems ride the same
// links.)
#include <cstdio>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

namespace {
struct SeedRun {
  PairedRun exact;
  PairedRun partial;
};
}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Ablation — per-hop link loss",
               "900 nodes; exact (exp sizes) and 1-partial queries; frame "
               "loss probability swept; ARQ retransmissions charged.");

  constexpr int kSeeds = 3;
  constexpr int kQueries = 50;

  const std::vector<double> losses = {0.0, 0.1, 0.2, 0.3, 0.5};
  struct Job {
    std::size_t group;
    double loss;
    int seed;
  };
  std::vector<Job> grid;
  for (std::size_t g = 0; g < losses.size(); ++g)
    for (int seed = 1; seed <= kSeeds; ++seed)
      grid.push_back({g, losses[g], seed});

  const auto runs = parallel_map<SeedRun>(
      grid.size(), opts.threads, [&grid, &opts](std::size_t i) {
        const auto [group, loss, seed] = grid[i];
        (void)group;
        TestbedConfig config;
        config.nodes = 900;
        config.seed = static_cast<std::uint64_t>(seed);
        config.loss.loss_probability = loss;
        config.route_cache = opts.route_cache;
        Testbed tb(config);
        tb.insert_workload();
        query::QueryGenerator qgen(
            {.dims = 3, .dist = query::RangeSizeDistribution::Exponential,
             .exp_mean = 0.1},
            static_cast<std::uint64_t>(seed) * 59 +
                static_cast<std::uint64_t>(loss * 100));
        SeedRun out;
        out.exact = run_paired_queries(
            tb, generate_queries(kQueries, [&] { return qgen.exact_range(); }),
            seed * 7 + 31);
        out.partial = run_paired_queries(
            tb,
            generate_queries(kQueries, [&] { return qgen.partial_range(1); }),
            seed * 7 + 32);
        return out;
      });

  TablePrinter table({"loss %", "exact Pool", "exact DIM", "1-part Pool",
                      "1-part DIM", "1-part DIM/Pool", "energy Pool (mJ)"});
  for (std::size_t g = 0; g < losses.size(); ++g) {
    PairedRun exact_total, partial_total;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].group != g) continue;
      merge_into(exact_total, runs[i].exact);
      merge_into(partial_total, runs[i].partial);
    }
    if (exact_total.pool_mismatches || exact_total.dim_mismatches ||
        partial_total.pool_mismatches || partial_total.dim_mismatches) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at loss=%.1f\n", losses[g]);
      return 1;
    }
    table.add_row(
        {fmt(losses[g] * 100, 0), fmt(exact_total.pool.messages.mean()),
         fmt(exact_total.dim.messages.mean()),
         fmt(partial_total.pool.messages.mean()),
         fmt(partial_total.dim.messages.mean()),
         fmt(partial_total.dim.messages.mean() /
                 partial_total.pool.messages.mean(),
             2),
         fmt(partial_total.pool.energy_mj.mean(), 2)});
  }
  table.print();
  std::printf(
      "\nExpected shape: both systems inflate by ~1/(1-p); the DIM/Pool "
      "ratio is stable because retransmissions hit every scheme alike.\n");
  return 0;
}
