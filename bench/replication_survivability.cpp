// Extension experiment: resilience mirrors (paper reference [7]'s idea
// grafted onto Pool). How much data survives random index-node failures
// as the replica count and the failure fraction vary, and what do the
// mirrors cost at insert time?
//
// Two halves: the STATIC table asks "what data would a failure destroy"
// via PoolSystem::survivability (no protocol runs); the ONLINE table
// kills the same fractions live at the query-phase midpoint and measures
// the recall the ack/retry + failover machinery actually delivers.
#include <algorithm>
#include <cstdio>
#include <sstream>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "cli/runner.h"
#include "common/error.h"

using namespace poolnet;
using namespace poolnet::benchsup;

namespace {
struct SeedRun {
  double insert_per_event = 0;
  std::size_t primaries = 0, recovered = 0, lost = 0, total = 0;
};
}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Replication survivability (extension, cf. paper ref [7])",
               "900 nodes; uniform workload; random node failures; events "
               "lost / recovered by rotated-pool mirrors.");

  constexpr int kSeeds = 3;

  const std::vector<std::uint32_t> replica_counts = {0u, 1u, 2u};
  const std::vector<double> fail_fracs = {0.05, 0.10, 0.20};
  struct Job {
    std::size_t group;
    std::uint32_t replicas;
    double fail_frac;
    int seed;
  };
  std::vector<Job> grid;
  std::size_t group = 0;
  for (const std::uint32_t replicas : replica_counts) {
    for (const double fail_frac : fail_fracs) {
      for (int seed = 1; seed <= kSeeds; ++seed)
        grid.push_back({group, replicas, fail_frac, seed});
      ++group;
    }
  }

  const auto runs = parallel_map<SeedRun>(
      grid.size(), opts.threads, [&grid, &opts](std::size_t i) {
        const Job& j = grid[i];
        TestbedConfig config;
        config.nodes = 900;
        config.seed = static_cast<std::uint64_t>(j.seed);
        config.pool.replicas = j.replicas;
        config.route_cache = opts.route_cache;
        Testbed tb(config);
        const auto events = tb.insert_workload();
        SeedRun out;
        out.insert_per_event =
            static_cast<double>(tb.pool_insert_traffic().total) /
            static_cast<double>(events);

        Rng rng(static_cast<std::uint64_t>(j.seed) * 77 + j.replicas);
        std::vector<net::NodeId> dead;
        const auto want =
            static_cast<std::size_t>(j.fail_frac * config.nodes);
        while (dead.size() < want) {
          const auto n = static_cast<net::NodeId>(rng.uniform_int(
              0, static_cast<std::int64_t>(config.nodes) - 1));
          if (std::find(dead.begin(), dead.end(), n) == dead.end())
            dead.push_back(n);
        }
        const auto report = tb.pool().survivability(dead);
        out.primaries = report.primaries_lost;
        out.recovered = report.recovered;
        out.lost = report.lost;
        out.total = report.total_events;
        return out;
      });

  TablePrinter table({"replicas", "fail %", "insert msgs/event",
                      "primaries lost", "recovered", "lost", "lost %"});
  group = 0;
  for (const std::uint32_t replicas : replica_counts) {
    for (const double fail_frac : fail_fracs) {
      double insert_per_event = 0;
      std::size_t primaries = 0, recovered = 0, lost = 0, total = 0;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        if (grid[i].group != group) continue;
        insert_per_event += runs[i].insert_per_event;
        primaries += runs[i].primaries;
        recovered += runs[i].recovered;
        lost += runs[i].lost;
        total += runs[i].total;
      }
      table.add_row(
          {std::to_string(replicas), fmt(fail_frac * 100, 0),
           fmt(insert_per_event / kSeeds, 2), std::to_string(primaries),
           std::to_string(recovered), std::to_string(lost),
           fmt(100.0 * static_cast<double>(lost) / static_cast<double>(total),
               2)});
      ++group;
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: without mirrors every lost primary is lost data; "
      "one rotated-pool mirror rescues most of it, two nearly all, at a "
      "proportional insert-message cost.\n");

  // --- online mode: kill the fraction mid-run, measure delivered recall --
  std::printf(
      "\nOnline survivability: %d%% / %d%% / %d%% of nodes killed at the "
      "query-phase midpoint; recall = answered / oracle events.\n\n",
      5, 10, 20);

  struct OnlineJob {
    double fail_frac;
    std::uint32_t replicas;
  };
  std::vector<OnlineJob> online_jobs;
  for (const double frac : fail_fracs) {
    online_jobs.push_back({frac, 0});
    online_jobs.push_back({frac, 1});  // Pool-only: mirrors vs the same cut
  }

  struct OnlineRun {
    std::vector<cli::CliResult> rows;
  };
  const auto online = parallel_map<OnlineRun>(
      online_jobs.size(), opts.threads, [&online_jobs](std::size_t i) {
        const OnlineJob& j = online_jobs[i];
        cli::CliConfig config;
        config.systems = j.replicas == 0
                             ? std::vector<cli::SystemChoice>{
                                   cli::SystemChoice::Pool,
                                   cli::SystemChoice::Dim,
                                   cli::SystemChoice::Ght}
                             : std::vector<cli::SystemChoice>{
                                   cli::SystemChoice::Pool};
        config.nodes = 300;
        config.events_per_node = 5;
        config.queries = 60;
        config.flavor = cli::QueryFlavor::OnePartial;
        config.deployments = 2;
        config.threads = 1;
        config.pool.replicas = j.replicas;
        std::string err;
        const std::string spec =
            "kill:" + std::to_string(j.fail_frac) + "@30";
        if (!sim::parse_fault_spec(spec, &config.faults, &err))
          throw ConfigError("online survivability: " + err);
        std::ostringstream sink;  // per-run table discarded; merged below
        return OnlineRun{cli::run_experiment(config, sink)};
      });

  TablePrinter online_table(
      {"killed %", "system", "replicas", "recall", "retries", "failovers",
       "events lost"});
  for (std::size_t i = 0; i < online_jobs.size(); ++i) {
    const OnlineJob& j = online_jobs[i];
    for (const cli::CliResult& r : online[i].rows) {
      online_table.add_row({fmt(j.fail_frac * 100, 0),
                            cli::to_string(r.system),
                            std::to_string(j.replicas), fmt(r.recall, 3),
                            std::to_string(r.retries),
                            std::to_string(r.failovers),
                            std::to_string(r.events_lost)});
    }
  }
  online_table.print();
  std::printf(
      "\nExpected shape: recall stays near 1 for small cuts, degrades "
      "gracefully as the cut grows, and Pool with one mirror recovers most "
      "of the gap by restoring from surviving replicas at failover time.\n");
  return 0;
}
