// Extension experiment: resilience mirrors (paper reference [7]'s idea
// grafted onto Pool). How much data survives random index-node failures
// as the replica count and the failure fraction vary, and what do the
// mirrors cost at insert time?
#include <algorithm>
#include <cstdio>

#include "bench_support/experiment.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main() {
  print_banner("Replication survivability (extension, cf. paper ref [7])",
               "900 nodes; uniform workload; random node failures; events "
               "lost / recovered by rotated-pool mirrors.");

  constexpr int kSeeds = 3;

  TablePrinter table({"replicas", "fail %", "insert msgs/event",
                      "primaries lost", "recovered", "lost", "lost %"});
  for (const std::uint32_t replicas : {0u, 1u, 2u}) {
    for (const double fail_frac : {0.05, 0.10, 0.20}) {
      double insert_per_event = 0;
      std::size_t primaries = 0, recovered = 0, lost = 0, total = 0;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        TestbedConfig config;
        config.nodes = 900;
        config.seed = static_cast<std::uint64_t>(seed);
        config.pool.replicas = replicas;
        Testbed tb(config);
        const auto events = tb.insert_workload();
        insert_per_event +=
            static_cast<double>(tb.pool_insert_traffic().total) /
            static_cast<double>(events);

        Rng rng(static_cast<std::uint64_t>(seed) * 77 + replicas);
        std::vector<net::NodeId> dead;
        const auto want =
            static_cast<std::size_t>(fail_frac * config.nodes);
        while (dead.size() < want) {
          const auto n = static_cast<net::NodeId>(
              rng.uniform_int(0, static_cast<std::int64_t>(config.nodes) - 1));
          if (std::find(dead.begin(), dead.end(), n) == dead.end())
            dead.push_back(n);
        }
        const auto report = tb.pool().survivability(dead);
        primaries += report.primaries_lost;
        recovered += report.recovered;
        lost += report.lost;
        total += report.total_events;
      }
      table.add_row(
          {std::to_string(replicas), fmt(fail_frac * 100, 0),
           fmt(insert_per_event / kSeeds, 2), std::to_string(primaries),
           std::to_string(recovered), std::to_string(lost),
           fmt(100.0 * static_cast<double>(lost) / static_cast<double>(total),
               2)});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: without mirrors every lost primary is lost data; "
      "one rotated-pool mirror rescues most of it, two nearly all, at a "
      "proportional insert-message cost.\n");
  return 0;
}
