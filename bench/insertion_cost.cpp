// §5.2's untabulated claim: "the data insertion cost of both methods are
// conceptually the same" — both ship each event over one GPSR unicast.
// This bench makes the claim measurable: mean insert messages per event
// versus network size, for Pool and DIM.
#include <cstdio>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"

using namespace poolnet;
using namespace poolnet::benchsup;

namespace {
struct SeedRun {
  double pool_msgs = 0, dim_msgs = 0, pool_energy = 0, dim_energy = 0;
  std::size_t events = 0;
};
}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Insertion cost (Section 5.2 claim)",
               "Mean per-hop messages to insert one 3-d event; 3 events per "
               "node; uniform values; both systems use GPSR unicast.");

  constexpr int kSeeds = 3;

  std::vector<std::size_t> sizes;
  for (std::size_t nodes = 300; nodes <= 2700; nodes += 600)
    sizes.push_back(nodes);

  struct Job {
    std::size_t group;
    std::size_t nodes;
    int seed;
  };
  std::vector<Job> grid;
  for (std::size_t g = 0; g < sizes.size(); ++g)
    for (int seed = 1; seed <= kSeeds; ++seed) grid.push_back({g, sizes[g], seed});

  const auto runs = parallel_map<SeedRun>(
      grid.size(), opts.threads, [&grid, &opts](std::size_t i) {
        const auto [group, nodes, seed] = grid[i];
        (void)group;
        TestbedConfig config;
        config.nodes = nodes;
        config.seed = static_cast<std::uint64_t>(seed);
        config.route_cache = opts.route_cache;
        Testbed tb(config);
        SeedRun out;
        out.events = tb.insert_workload();
        out.pool_msgs = static_cast<double>(tb.pool_insert_traffic().total);
        out.dim_msgs = static_cast<double>(tb.dim_insert_traffic().total);
        out.pool_energy = tb.pool_insert_traffic().energy_j;
        out.dim_energy = tb.dim_insert_traffic().energy_j;
        return out;
      });

  TablePrinter table({"nodes", "Pool msgs/event", "DIM msgs/event",
                      "Pool/DIM", "Pool energy (mJ/event)",
                      "DIM energy (mJ/event)"});
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    double pool_msgs = 0, dim_msgs = 0, pool_energy = 0, dim_energy = 0;
    std::size_t events = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].group != g) continue;
      pool_msgs += runs[i].pool_msgs;
      dim_msgs += runs[i].dim_msgs;
      pool_energy += runs[i].pool_energy;
      dim_energy += runs[i].dim_energy;
      events += runs[i].events;
    }
    const double n = static_cast<double>(events);
    table.add_row({std::to_string(sizes[g]), fmt(pool_msgs / n, 2),
                   fmt(dim_msgs / n, 2), fmt(pool_msgs / dim_msgs, 2),
                   fmt(pool_energy / n * 1e3, 3),
                   fmt(dim_energy / n * 1e3, 3)});
  }
  table.print();
  std::printf(
      "\nExpected shape: per-event cost similar for both systems (within "
      "tens of percent), growing ~ sqrt(n) with field diameter.\n");
  return 0;
}
