// §5.2's untabulated claim: "the data insertion cost of both methods are
// conceptually the same" — both ship each event over one GPSR unicast.
// This bench makes the claim measurable: mean insert messages per event
// versus network size, for Pool and DIM.
#include <cstdio>

#include "bench_support/experiment.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main() {
  print_banner("Insertion cost (Section 5.2 claim)",
               "Mean per-hop messages to insert one 3-d event; 3 events per "
               "node; uniform values; both systems use GPSR unicast.");

  constexpr int kSeeds = 3;

  TablePrinter table({"nodes", "Pool msgs/event", "DIM msgs/event",
                      "Pool/DIM", "Pool energy (mJ/event)",
                      "DIM energy (mJ/event)"});
  for (std::size_t nodes = 300; nodes <= 2700; nodes += 600) {
    double pool_msgs = 0, dim_msgs = 0, pool_energy = 0, dim_energy = 0;
    std::size_t events = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      TestbedConfig config;
      config.nodes = nodes;
      config.seed = static_cast<std::uint64_t>(seed);
      Testbed tb(config);
      events += tb.insert_workload();
      pool_msgs += static_cast<double>(tb.pool_insert_traffic().total);
      dim_msgs += static_cast<double>(tb.dim_insert_traffic().total);
      pool_energy += tb.pool_insert_traffic().energy_j;
      dim_energy += tb.dim_insert_traffic().energy_j;
    }
    const double n = static_cast<double>(events);
    table.add_row({std::to_string(nodes), fmt(pool_msgs / n, 2),
                   fmt(dim_msgs / n, 2), fmt(pool_msgs / dim_msgs, 2),
                   fmt(pool_energy / n * 1e3, 3),
                   fmt(dim_energy / n * 1e3, 3)});
  }
  table.print();
  std::printf(
      "\nExpected shape: per-event cost similar for both systems (within "
      "tens of percent), growing ~ sqrt(n) with field diameter.\n");
  return 0;
}
