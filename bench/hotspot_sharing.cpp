// Section 4.2 extension experiment (the paper defers details to its
// technical report): workload sharing under a skewed event distribution.
//
// A Gaussian-concentrated workload hammers a few cells of one pool. With
// sharing off, the hottest index node absorbs the whole burst; with
// sharing on, delegation bounds the per-node resident load at a small and
// quantified message overhead, and queries remain exact.
#include <cstdio>

#include <vector>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "obs/report.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

namespace {

struct Outcome {
  obs::LoadReport load;  ///< hotspot shape of the per-node resident load
  std::uint64_t insert_msgs = 0;
  double hot_query_msgs = 0;
  std::size_t mismatches = 0;
};

Outcome run(bool sharing, std::uint32_t threshold, std::uint64_t seed,
            const routing::RouteCacheConfig& route_cache) {
  TestbedConfig config;
  config.nodes = 900;
  config.seed = seed;
  config.workload.dist = query::ValueDistribution::Hotspot;
  config.workload.center = 0.85;
  config.workload.spread = 0.03;
  config.workload.hotspot_fraction = 0.8;
  config.pool.workload_sharing = sharing;
  config.pool.share_threshold = threshold;
  config.route_cache = route_cache;
  Testbed tb(config);
  tb.insert_workload();

  Outcome out;
  out.insert_msgs = tb.pool_insert_traffic().total;
  // The per-node tally goes through the shared hotspot report — the same
  // max/p99/Gini every other surface (CLI --metrics, testbed scrape) uses.
  std::vector<std::uint64_t> loads;
  for (const auto& node : tb.pool_network().nodes())
    loads.push_back(node.stored_events);
  out.load = obs::load_report(loads);

  // Queries over the hot region, where delegation is actually exercised.
  query::QueryGenerator qgen({.dims = 3}, seed * 3 + 1);
  std::vector<storage::RangeQuery> queries;
  Rng rng(seed * 5 + 2);
  for (int i = 0; i < 40; ++i) {
    const double lo = rng.uniform(0.7, 0.9);
    queries.push_back(storage::RangeQuery(
        {{lo, std::min(1.0, lo + 0.1)},
         {lo, std::min(1.0, lo + 0.1)},
         {0.0, 1.0}}));
  }
  const auto paired = run_paired_queries(tb, queries, seed * 7 + 3);
  out.hot_query_msgs = paired.pool.messages.mean();
  out.mismatches = paired.pool_mismatches;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Hotspot workload sharing (Section 4.2)",
               "900 nodes; 80% of events Gaussian(0.85, 0.03) on every "
               "attribute; Pool with and without workload sharing.");

  constexpr int kSeeds = 3;
  const std::vector<std::tuple<const char*, bool, std::uint32_t>> configs = {
      {"sharing off", false, 0u},
      {"sharing on (T=32)", true, 32u},
      {"sharing on (T=64)", true, 64u},
      {"sharing on (T=128)", true, 128u}};

  struct Job {
    std::size_t group;
    bool sharing;
    std::uint32_t threshold;
    int seed;
  };
  std::vector<Job> grid;
  for (std::size_t g = 0; g < configs.size(); ++g)
    for (int seed = 1; seed <= kSeeds; ++seed)
      grid.push_back({g, std::get<1>(configs[g]), std::get<2>(configs[g]),
                      seed});

  const auto runs = parallel_map<Outcome>(
      grid.size(), opts.threads, [&grid, &opts](std::size_t i) {
        const Job& j = grid[i];
        return run(j.sharing, j.threshold,
                   static_cast<std::uint64_t>(j.seed), opts.route_cache);
      });

  TablePrinter table({"configuration", "max node load", "p99 load", "gini",
                      "insert msgs", "hot-query msgs", "exact results"});
  for (std::size_t g = 0; g < configs.size(); ++g) {
    std::uint64_t max_load = 0, insert_msgs = 0;
    double p99 = 0, gini = 0, hot = 0;
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].group != g) continue;
      max_load = std::max(max_load, runs[i].load.max_load);
      p99 += runs[i].load.p99_load;
      gini += runs[i].load.gini;
      insert_msgs += runs[i].insert_msgs;
      hot += runs[i].hot_query_msgs;
      mismatches += runs[i].mismatches;
    }
    table.add_row({std::get<0>(configs[g]), std::to_string(max_load),
                   fmt(p99 / kSeeds), fmt(gini / kSeeds, 3),
                   std::to_string(insert_msgs / kSeeds), fmt(hot / kSeeds),
                   mismatches == 0 ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nExpected shape: sharing bounds the max resident load near the "
      "threshold for a small insert-message overhead; queries stay exact.\n");
  return 0;
}
