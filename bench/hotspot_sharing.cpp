// Section 4.2 extension experiment (the paper defers details to its
// technical report): workload sharing under a skewed event distribution.
//
// A Gaussian-concentrated workload hammers a few cells of one pool. With
// sharing off, the hottest index node absorbs the whole burst; with
// sharing on, delegation bounds the per-node resident load at a small and
// quantified message overhead, and queries remain exact.
#include <cstdio>

#include <algorithm>
#include <vector>

#include "bench_support/experiment.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

namespace {

struct Outcome {
  std::uint64_t max_load = 0;
  double p99_load = 0;
  std::uint64_t insert_msgs = 0;
  double hot_query_msgs = 0;
  std::size_t mismatches = 0;
};

Outcome run(bool sharing, std::uint32_t threshold, std::uint64_t seed) {
  TestbedConfig config;
  config.nodes = 900;
  config.seed = seed;
  config.workload.dist = query::ValueDistribution::Hotspot;
  config.workload.center = 0.85;
  config.workload.spread = 0.03;
  config.workload.hotspot_fraction = 0.8;
  config.pool.workload_sharing = sharing;
  config.pool.share_threshold = threshold;
  Testbed tb(config);
  tb.insert_workload();

  Outcome out;
  out.insert_msgs = tb.pool_insert_traffic().total;
  std::vector<std::uint64_t> loads;
  for (const auto& node : tb.pool_network().nodes())
    loads.push_back(node.stored_events);
  std::sort(loads.begin(), loads.end());
  out.max_load = loads.back();
  out.p99_load = static_cast<double>(loads[loads.size() * 99 / 100]);

  // Queries over the hot region, where delegation is actually exercised.
  query::QueryGenerator qgen({.dims = 3}, seed * 3 + 1);
  std::vector<storage::RangeQuery> queries;
  Rng rng(seed * 5 + 2);
  for (int i = 0; i < 40; ++i) {
    const double lo = rng.uniform(0.7, 0.9);
    queries.push_back(storage::RangeQuery(
        {{lo, std::min(1.0, lo + 0.1)},
         {lo, std::min(1.0, lo + 0.1)},
         {0.0, 1.0}}));
  }
  const auto paired = run_paired_queries(tb, queries, seed * 7 + 3);
  out.hot_query_msgs = paired.pool.messages.mean();
  out.mismatches = paired.pool_mismatches;
  return out;
}

}  // namespace

int main() {
  print_banner("Hotspot workload sharing (Section 4.2)",
               "900 nodes; 80% of events Gaussian(0.85, 0.03) on every "
               "attribute; Pool with and without workload sharing.");

  constexpr int kSeeds = 3;
  TablePrinter table({"configuration", "max node load", "p99 load",
                      "insert msgs", "hot-query msgs", "exact results"});

  for (const auto& [label, sharing, threshold] :
       {std::tuple{"sharing off", false, 0u},
        std::tuple{"sharing on (T=32)", true, 32u},
        std::tuple{"sharing on (T=64)", true, 64u},
        std::tuple{"sharing on (T=128)", true, 128u}}) {
    std::uint64_t max_load = 0, insert_msgs = 0;
    double p99 = 0, hot = 0;
    std::size_t mismatches = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const auto o = run(sharing, threshold, static_cast<std::uint64_t>(seed));
      max_load = std::max(max_load, o.max_load);
      p99 += o.p99_load;
      insert_msgs += o.insert_msgs;
      hot += o.hot_query_msgs;
      mismatches += o.mismatches;
    }
    table.add_row({label, std::to_string(max_load), fmt(p99 / kSeeds),
                   std::to_string(insert_msgs / kSeeds), fmt(hot / kSeeds),
                   mismatches == 0 ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nExpected shape: sharing bounds the max resident load near the "
      "threshold for a small insert-message overhead; queries stay exact.\n");
  return 0;
}
