// Performance smoke test: a downsized Figure 6(a) sweep run four ways —
// every combination of {serial, parallel} × {cache off, cache on} — so the
// reported speedups compare like for like: speedup_cache flips ONLY the
// cache (both arms serial), speedup_parallel flips ONLY the thread count
// (both arms uncached), and the headline speedup is the combined
// configuration against the plain serial baseline. All four arms must
// produce IDENTICAL message statistics. Emits BENCH_perf.json for CI
// trend tracking (scripts/check_perf_regression.py gates on it).
//
// --scale additionally runs the deployment-scaling tier: Pool-only
// testbeds at 1k/10k/100k nodes measuring sustained insert throughput
// (events/sec) and peak RSS, proving the pooled/SoA hot paths hold up at
// two orders of magnitude beyond the paper's 2700-node ceiling.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "bench_support/telemetry_bridge.h"
#include "common/object_pool.h"
#include "core/pool_system.h"
#include "engine/query_engine.h"
#include "net/deployment.h"
#include "obs/telemetry.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "routing/route_cache.h"

using namespace poolnet;
using namespace poolnet::benchsup;

namespace {

constexpr int kSeeds = 2;
constexpr int kQueriesPerSeed = 30;
const std::vector<std::size_t> kSizes = {300, 600, 900};

struct SweepOutcome {
  std::vector<PairedRun> totals;
  double wall_ms = 0;
  double pool_hit_rate = 0;  ///< mean over testbeds; 0 when cache off
  double dim_hit_rate = 0;
};

struct SeedRun {
  PairedRun run;
  routing::RouteCacheStats pool_cache, dim_cache;
};

SweepOutcome run_sweep(std::size_t threads,
                       const routing::RouteCacheConfig& route_cache) {
  struct Job {
    std::size_t group;
    std::size_t nodes;
    int seed;
  };
  std::vector<Job> grid;
  for (std::size_t g = 0; g < kSizes.size(); ++g)
    for (int seed = 1; seed <= kSeeds; ++seed)
      grid.push_back({g, kSizes[g], seed});

  const auto start = std::chrono::steady_clock::now();
  const auto runs = parallel_map<SeedRun>(
      grid.size(), threads, [&grid, &route_cache](std::size_t i) {
        const Job& j = grid[i];
        TestbedConfig config;
        config.nodes = j.nodes;
        config.seed = static_cast<std::uint64_t>(j.seed);
        config.route_cache = route_cache;
        Testbed tb(config);
        tb.insert_workload();
        query::QueryGenerator qgen(
            {.dims = 3, .dist = query::RangeSizeDistribution::Uniform},
            static_cast<std::uint64_t>(j.seed) * 101 + j.nodes);
        const auto queries = generate_queries(
            kQueriesPerSeed, [&] { return qgen.exact_range(); });
        SeedRun out;
        out.run = run_paired_queries(tb, queries, j.seed * 7 + 1);
        if (tb.pool_route_cache()) out.pool_cache = tb.pool_route_cache()->stats();
        if (tb.dim_route_cache()) out.dim_cache = tb.dim_route_cache()->stats();
        return out;
      });
  const auto end = std::chrono::steady_clock::now();

  SweepOutcome out;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  out.totals.resize(kSizes.size());
  double pool_hits = 0, dim_hits = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    merge_into(out.totals[grid[i].group], runs[i].run);
    pool_hits += runs[i].pool_cache.hit_rate();
    dim_hits += runs[i].dim_cache.hit_rate();
  }
  out.pool_hit_rate = pool_hits / static_cast<double>(grid.size());
  out.dim_hit_rate = dim_hits / static_cast<double>(grid.size());
  return out;
}

/// Deployment-scaling tier (--scale): a Pool-ONLY testbed — one network,
/// one GPSR, a pooled route cache — inserting one event per node. No DIM
/// twin, no oracle: at 100k nodes those would triple the footprint
/// without adding information about the hot paths under test.
struct ScaleTier {
  std::size_t nodes = 0;
  double build_ms = 0;
  double insert_ms = 0;
  double events_per_sec = 0;
  std::uint64_t insert_messages = 0;
  long peak_rss_kb = 0;  ///< process high-water mark AFTER this tier
  bool ok = false;
};

long peak_rss_kb_now() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<long>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
    return ru.ru_maxrss;  // kilobytes on Linux
#endif
  }
#endif
  return 0;
}

ScaleTier run_scale_tier(std::size_t nodes) {
  ScaleTier out;
  out.nodes = nodes;
  const double radio = 40.0;
  const double side = net::field_side_for_density(nodes, radio, 20.0);
  const Rect field{0.0, 0.0, side, side};

  const auto t0 = std::chrono::steady_clock::now();
  Rng master(1);
  std::unique_ptr<net::Network> network;
  for (int attempt = 0; attempt < 64 && !network; ++attempt) {
    Rng deploy = master.split();
    const auto positions = net::deploy_uniform(nodes, field, deploy);
    auto candidate = std::make_unique<net::Network>(
        positions, field, radio, net::MessageSizes{}, sim::EnergyModel{},
        net::LinkLossModel{}, 7);
    if (candidate->is_connected()) network = std::move(candidate);
  }
  if (!network) return out;  // ok stays false

  routing::Gpsr gpsr(*network);
  core::PoolConfig pool_config;
  routing::RouteCacheConfig cache_config;
  cache_config.location_quantum = pool_config.cell_size;
  common::BufferPool<net::NodeId> path_pool(true);
  routing::RouteCache cache(gpsr, cache_config, nullptr, "scale.route_cache",
                            &path_pool);
  core::PoolSystem pool(*network, cache, 3, pool_config);
  const auto t1 = std::chrono::steady_clock::now();

  query::WorkloadConfig wc;
  wc.dims = 3;
  query::EventGenerator gen(wc, 99);
  network->reset_traffic();
  std::size_t inserted = 0;
  for (net::NodeId n = 0; n < network->size(); ++n) {
    pool.insert(n, gen.next(n));
    ++inserted;
  }
  const auto t2 = std::chrono::steady_clock::now();

  out.build_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.insert_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  out.events_per_sec =
      out.insert_ms > 0
          ? static_cast<double>(inserted) / (out.insert_ms / 1000.0)
          : 0;
  out.insert_messages = network->traffic().total;
  out.peak_rss_kb = peak_rss_kb_now();
  out.ok = true;
  return out;
}

/// Query-engine probe for the CI trend file: one 300-node testbed serves
/// a 32-query half-overlapping workload three ways — serial, batched by
/// 16, and serial-with-cache replayed twice (so every repeat hits).
struct EngineProbe {
  std::uint64_t serial_messages = 0;
  std::uint64_t batched_messages = 0;
  double message_savings = 0;  ///< fraction of serial traffic avoided
  double dedup_ratio = 1;
  double cache_hit_rate = 0;
};

EngineProbe run_engine_probe() {
  TestbedConfig config;
  config.nodes = 300;
  config.seed = 1;
  Testbed tb(config);
  tb.insert_workload();
  Rng sink_rng(17);
  const net::NodeId sink = tb.random_node(sink_rng);

  query::QueryGenerator qgen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential}, 57);
  std::vector<storage::RangeQuery> templates;
  for (int i = 0; i < 4; ++i) templates.push_back(qgen.exact_range());
  Rng pick(23);
  std::vector<storage::RangeQuery> queries;
  for (int i = 0; i < 32; ++i) {
    const auto fresh = qgen.exact_range();
    const auto slot = static_cast<std::size_t>(pick.uniform_int(0, 3));
    queries.push_back(pick.uniform() < 0.5 ? templates[slot] : fresh);
  }

  EngineProbe out;
  {
    engine::QueryEngine serial(tb.pool(), {});
    for (const auto& q : queries) serial.take(serial.submit(sink, q));
    out.serial_messages = serial.stats().messages;
  }
  {
    engine::QueryEngineConfig cfg;
    cfg.batch_size = 16;
    cfg.batch_deadline = std::uint64_t{1} << 40;
    engine::QueryEngine batched(tb.pool(), cfg);
    std::vector<engine::QueryEngine::Ticket> tickets;
    for (const auto& q : queries) tickets.push_back(batched.submit(sink, q));
    batched.flush();
    for (const auto t : tickets) batched.take(t);
    out.batched_messages = batched.stats().messages;
    out.dedup_ratio = batched.stats().overall_dedup_ratio();
  }
  if (out.serial_messages > 0) {
    out.message_savings =
        1.0 - static_cast<double>(out.batched_messages) /
                  static_cast<double>(out.serial_messages);
  }
  {
    engine::QueryEngineConfig cfg;
    cfg.cache.enabled = true;
    engine::QueryEngine cached(tb.pool(), cfg);
    for (int round = 0; round < 2; ++round)
      for (const auto& q : queries) cached.take(cached.submit(sink, q));
    out.cache_hit_rate = cached.cache_stats().hit_rate();
  }
  return out;
}

/// Fig-6(b)-style hotspot probe for the CI trend file: one testbed under
/// exponential event values, scraped through the telemetry bridge. The
/// paper's imbalance claim — DIM concentrates storage on few zone owners
/// while Pool stays flat — shows up as DIM index-node Gini and max load
/// both above Pool's.
struct HotspotProbe {
  double pool_gini = 0, dim_gini = 0;          ///< over index nodes
  double pool_max_load = 0, dim_max_load = 0;
  double pool_energy_j = 0, dim_energy_j = 0;
  std::uint64_t pool_net_messages = 0, dim_net_messages = 0;
  obs::Snapshot snap;
};

HotspotProbe run_hotspot_probe() {
  TestbedConfig config;
  config.nodes = 300;
  config.seed = 5;
  config.workload.dist = query::ValueDistribution::Exponential;
  Testbed tb(config);
  tb.insert_workload();

  HotspotProbe out;
  out.snap = scrape_testbed(tb);
  // insert_workload() captures and then clears the traffic ledgers, so
  // fold the captured insert tallies back into the snapshot.
  out.snap.counters["pool.net.messages"] += tb.pool_insert_traffic().total;
  out.snap.counters["dim.net.messages"] += tb.dim_insert_traffic().total;
  out.snap.gauges["pool.net.energy_j"] += tb.pool_insert_traffic().energy_j;
  out.snap.gauges["dim.net.energy_j"] += tb.dim_insert_traffic().energy_j;
  out.pool_gini = out.snap.gauges["pool.storage.load.gini_loaded"];
  out.dim_gini = out.snap.gauges["dim.storage.load.gini_loaded"];
  out.pool_max_load = out.snap.gauges["pool.storage.load.max"];
  out.dim_max_load = out.snap.gauges["dim.storage.load.max"];
  out.pool_energy_j = out.snap.gauges["pool.net.energy_j"];
  out.dim_energy_j = out.snap.gauges["dim.net.energy_j"];
  out.pool_net_messages = out.snap.counters["pool.net.messages"];
  out.dim_net_messages = out.snap.counters["dim.net.messages"];
  return out;
}

bool stats_equal(const PairedRun& a, const PairedRun& b) {
  const auto same = [](const SystemQueryStats& x, const SystemQueryStats& y) {
    return x.messages.mean() == y.messages.mean() &&
           x.messages.count() == y.messages.count() &&
           x.query_messages.mean() == y.query_messages.mean() &&
           x.reply_messages.mean() == y.reply_messages.mean() &&
           x.index_nodes.mean() == y.index_nodes.mean() &&
           x.results.mean() == y.results.mean();
  };
  return same(a.pool, b.pool) && same(a.dim, b.dim) &&
         a.queries == b.queries && a.pool_mismatches == b.pool_mismatches &&
         a.dim_mismatches == b.dim_mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --scale before the shared option table sees it (it is
  // specific to this bench).
  bool want_scale = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--scale") {
      want_scale = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const BenchOptions opts =
      parse_bench_options(static_cast<int>(args.size()), args.data());
  print_banner("Performance smoke — {serial,parallel} x {cache off,on}",
               "Downsized Fig-6(a) sweep (300..900 nodes, 2 seeds); message "
               "stats must be identical across all four configurations.");

  routing::RouteCacheConfig off;
  off.enabled = false;
  routing::RouteCacheConfig on = opts.route_cache;
  on.enabled = true;

  const auto serial_uncached = run_sweep(1, off);
  const auto serial_cached = run_sweep(1, on);
  const auto parallel_uncached = run_sweep(opts.threads, off);
  const auto parallel_cached = run_sweep(opts.threads, on);

  bool identical = true;
  for (std::size_t g = 0; g < kSizes.size(); ++g) {
    if (!stats_equal(serial_uncached.totals[g], serial_cached.totals[g]) ||
        !stats_equal(serial_uncached.totals[g], parallel_uncached.totals[g]) ||
        !stats_equal(serial_uncached.totals[g], parallel_cached.totals[g])) {
      identical = false;
    }
  }

  const auto ratio = [](double base, double arm) {
    return arm > 0 ? base / arm : 0;
  };
  const double speedup_cache =
      ratio(serial_uncached.wall_ms, serial_cached.wall_ms);
  const double speedup_parallel =
      ratio(serial_uncached.wall_ms, parallel_uncached.wall_ms);
  const double speedup =
      ratio(serial_uncached.wall_ms, parallel_cached.wall_ms);

  TablePrinter table({"configuration", "wall ms", "Pool hit rate",
                      "DIM hit rate"});
  const std::string xt = "x" + std::to_string(opts.threads);
  table.add_row({"serial, cache off", fmt(serial_uncached.wall_ms, 1), "-",
                 "-"});
  table.add_row({"serial, cache on", fmt(serial_cached.wall_ms, 1),
                 fmt(serial_cached.pool_hit_rate, 3),
                 fmt(serial_cached.dim_hit_rate, 3)});
  table.add_row({"parallel " + xt + ", cache off",
                 fmt(parallel_uncached.wall_ms, 1), "-", "-"});
  table.add_row({"parallel " + xt + ", cache on",
                 fmt(parallel_cached.wall_ms, 1),
                 fmt(parallel_cached.pool_hit_rate, 3),
                 fmt(parallel_cached.dim_hit_rate, 3)});
  table.print();
  std::printf(
      "\nspeedup: cache %.2fx, parallel %.2fx (%zu threads), combined "
      "%.2fx; stats identical: %s\n",
      speedup_cache, speedup_parallel, opts.threads, speedup,
      identical ? "yes" : "NO");

  std::vector<ScaleTier> tiers;
  if (want_scale) {
    std::printf("\nscale tier (Pool-only, 1 event/node):\n");
    TablePrinter scale_table(
        {"nodes", "build ms", "insert ms", "events/sec", "peak RSS MB"});
    for (const std::size_t n : {std::size_t{1000}, std::size_t{10000},
                                std::size_t{100000}}) {
      const ScaleTier tier = run_scale_tier(n);
      if (!tier.ok) {
        std::printf("  %zu nodes: no connected deployment drawn, skipped\n",
                    n);
        continue;
      }
      scale_table.add_row({std::to_string(tier.nodes), fmt(tier.build_ms, 0),
                           fmt(tier.insert_ms, 0),
                           fmt(tier.events_per_sec, 0),
                           fmt(tier.peak_rss_kb / 1024.0, 1)});
      tiers.push_back(tier);
    }
    scale_table.print();
  }

  const EngineProbe probe = run_engine_probe();
  std::printf(
      "query engine: %llu serial msgs -> %llu batched (%.1f%% saved, "
      "dedup %.2f, cache hit rate %.3f)\n",
      static_cast<unsigned long long>(probe.serial_messages),
      static_cast<unsigned long long>(probe.batched_messages),
      100.0 * probe.message_savings, probe.dedup_ratio,
      probe.cache_hit_rate);

  const HotspotProbe hotspot = run_hotspot_probe();
  std::printf(
      "hotspot probe (exponential events): Pool gini %.3f max %d | "
      "DIM gini %.3f max %d\n",
      hotspot.pool_gini, static_cast<int>(hotspot.pool_max_load),
      hotspot.dim_gini, static_cast<int>(hotspot.dim_max_load));
  if (opts.telemetry.wants_metrics()) {
    obs::emit_snapshot(opts.telemetry, hotspot.snap, std::cout);
  }

  const double msgs_per_query = serial_uncached.totals.back().pool.messages.mean();
  std::FILE* f = std::fopen("BENCH_perf.json", "w");
  if (f) {
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"perf_smoke\",\n"
        "  \"threads\": %zu,\n"
        "  \"serial_uncached_ms\": %.1f,\n"
        "  \"serial_cached_ms\": %.1f,\n"
        "  \"parallel_uncached_ms\": %.1f,\n"
        "  \"parallel_cached_ms\": %.1f,\n"
        "  \"speedup_cache\": %.3f,\n"
        "  \"speedup_parallel\": %.3f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"pool_cache_hit_rate\": %.4f,\n"
        "  \"dim_cache_hit_rate\": %.4f,\n"
        "  \"pool_messages_per_query_900\": %.2f,\n"
        "  \"stats_identical\": %s,\n",
        opts.threads, serial_uncached.wall_ms, serial_cached.wall_ms,
        parallel_uncached.wall_ms, parallel_cached.wall_ms, speedup_cache,
        speedup_parallel, speedup, parallel_cached.pool_hit_rate,
        parallel_cached.dim_hit_rate, msgs_per_query,
        identical ? "true" : "false");
    if (!tiers.empty()) {
      const ScaleTier& top = tiers.back();
      std::fprintf(f,
                   "  \"events_per_sec\": %.1f,\n"
                   "  \"scale\": [\n",
                   top.events_per_sec);
      for (std::size_t i = 0; i < tiers.size(); ++i) {
        const ScaleTier& t = tiers[i];
        std::fprintf(
            f,
            "    {\"nodes\": %zu, \"build_ms\": %.1f, \"insert_ms\": %.1f, "
            "\"events_per_sec\": %.1f, \"insert_messages\": %llu, "
            "\"peak_rss_kb\": %ld}%s\n",
            t.nodes, t.build_ms, t.insert_ms, t.events_per_sec,
            static_cast<unsigned long long>(t.insert_messages),
            t.peak_rss_kb, i + 1 < tiers.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
    }
    std::fprintf(
        f,
        "  \"query_engine\": {\n"
        "    \"serial_messages\": %llu,\n"
        "    \"batched_messages\": %llu,\n"
        "    \"message_savings\": %.4f,\n"
        "    \"dedup_ratio\": %.4f,\n"
        "    \"cache_hit_rate\": %.4f\n"
        "  },\n"
        "  \"metrics\": {\n"
        "    \"pool_storage_gini\": %.4f,\n"
        "    \"dim_storage_gini\": %.4f,\n"
        "    \"pool_max_load\": %.0f,\n"
        "    \"dim_max_load\": %.0f,\n"
        "    \"pool_insert_messages\": %llu,\n"
        "    \"dim_insert_messages\": %llu,\n"
        "    \"pool_energy_j\": %.6f,\n"
        "    \"dim_energy_j\": %.6f\n"
        "  }\n"
        "}\n",
        static_cast<unsigned long long>(probe.serial_messages),
        static_cast<unsigned long long>(probe.batched_messages),
        probe.message_savings, probe.dedup_ratio, probe.cache_hit_rate,
        hotspot.pool_gini, hotspot.dim_gini, hotspot.pool_max_load,
        hotspot.dim_max_load,
        static_cast<unsigned long long>(hotspot.pool_net_messages),
        static_cast<unsigned long long>(hotspot.dim_net_messages),
        hotspot.pool_energy_j, hotspot.dim_energy_j);
    std::fclose(f);
    std::printf("wrote BENCH_perf.json\n");
  }
  return identical ? 0 : 1;
}
