// Performance smoke test: a downsized Figure 6(a) sweep run four ways —
// every combination of {serial, parallel} × {cache off, cache on} — so the
// reported speedups compare like for like: speedup_cache flips ONLY the
// cache (both arms serial), speedup_parallel flips ONLY the thread count
// (both arms uncached), and the headline speedup is the combined
// configuration against the plain serial baseline. All four arms must
// produce IDENTICAL message statistics. Emits BENCH_perf.json for CI
// trend tracking (scripts/check_perf_regression.py gates on it).
//
// --scale additionally runs the deployment-scaling tier: Pool-only
// testbeds at 1k/10k/100k nodes measuring sustained insert throughput
// (events/sec) and peak RSS, proving the pooled/SoA hot paths hold up at
// two orders of magnitude beyond the paper's 2700-node ceiling.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "bench_support/telemetry_bridge.h"
#include "common/object_pool.h"
#include "core/pool_system.h"
#include "engine/query_engine.h"
#include "net/deployment.h"
#include "obs/telemetry.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "routing/route_cache.h"
#include "storage/brute_force_store.h"
#include "storage/paged/paged_store.h"

using namespace poolnet;
using namespace poolnet::benchsup;

namespace {

constexpr int kSeeds = 2;
constexpr int kQueriesPerSeed = 30;
const std::vector<std::size_t> kSizes = {300, 600, 900};

struct SweepOutcome {
  std::vector<PairedRun> totals;
  double wall_ms = 0;
  double pool_hit_rate = 0;  ///< mean over testbeds; 0 when cache off
  double dim_hit_rate = 0;
};

struct SeedRun {
  PairedRun run;
  routing::RouteCacheStats pool_cache, dim_cache;
};

SweepOutcome run_sweep(std::size_t threads,
                       const routing::RouteCacheConfig& route_cache) {
  struct Job {
    std::size_t group;
    std::size_t nodes;
    int seed;
  };
  std::vector<Job> grid;
  for (std::size_t g = 0; g < kSizes.size(); ++g)
    for (int seed = 1; seed <= kSeeds; ++seed)
      grid.push_back({g, kSizes[g], seed});

  const auto start = std::chrono::steady_clock::now();
  const auto runs = parallel_map<SeedRun>(
      grid.size(), threads, [&grid, &route_cache](std::size_t i) {
        const Job& j = grid[i];
        TestbedConfig config;
        config.nodes = j.nodes;
        config.seed = static_cast<std::uint64_t>(j.seed);
        config.route_cache = route_cache;
        Testbed tb(config);
        tb.insert_workload();
        query::QueryGenerator qgen(
            {.dims = 3, .dist = query::RangeSizeDistribution::Uniform},
            static_cast<std::uint64_t>(j.seed) * 101 + j.nodes);
        const auto queries = generate_queries(
            kQueriesPerSeed, [&] { return qgen.exact_range(); });
        SeedRun out;
        out.run = run_paired_queries(tb, queries, j.seed * 7 + 1);
        if (tb.pool_route_cache()) out.pool_cache = tb.pool_route_cache()->stats();
        if (tb.dim_route_cache()) out.dim_cache = tb.dim_route_cache()->stats();
        return out;
      });
  const auto end = std::chrono::steady_clock::now();

  SweepOutcome out;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  out.totals.resize(kSizes.size());
  double pool_hits = 0, dim_hits = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    merge_into(out.totals[grid[i].group], runs[i].run);
    pool_hits += runs[i].pool_cache.hit_rate();
    dim_hits += runs[i].dim_cache.hit_rate();
  }
  out.pool_hit_rate = pool_hits / static_cast<double>(grid.size());
  out.dim_hit_rate = dim_hits / static_cast<double>(grid.size());
  return out;
}

/// Deployment-scaling tier (--scale): a Pool-ONLY testbed — one network,
/// one GPSR, a pooled route cache — inserting one event per node. No DIM
/// twin, no oracle: at 100k nodes those would triple the footprint
/// without adding information about the hot paths under test.
struct ScaleTier {
  std::size_t nodes = 0;
  double build_ms = 0;
  double insert_ms = 0;
  double events_per_sec = 0;
  std::uint64_t insert_messages = 0;
  long peak_rss_kb = 0;  ///< this tier's own footprint (see run_forked)
  bool ok = false;
};

long peak_rss_kb_now() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<long>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
    return ru.ru_maxrss;  // kilobytes on Linux
#endif
  }
#endif
  return 0;
}

/// Current (not peak) resident size, for the pre-tier baseline snapshot.
/// Falls back to the peak where /proc is unavailable.
long current_rss_kb() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long size = 0, resident = 0;
    const int n = std::fscanf(f, "%ld %ld", &size, &resident);
    std::fclose(f);
    if (n == 2)
      return resident * static_cast<long>(sysconf(_SC_PAGESIZE) / 1024);
  }
#endif
  return peak_rss_kb_now();
}

/// Runs `fn` in a forked child and ships its trivially-copyable result
/// back over a pipe. ru_maxrss is a PROCESS-WIDE high-water mark, so
/// measuring successive tiers in one process lets every tier inherit its
/// predecessors' footprint — the accounting bug this bench shipped with.
/// A fresh child starts from a clean baseline; each tier additionally
/// subtracts the RSS it inherited across fork (COW pages of the parent),
/// so peak_rss_kb is that tier's own allocations. Falls back to in-process
/// execution (still baseline-corrected, but peaks no longer isolate)
/// where fork is unavailable.
template <typename T, typename Fn>
T run_forked(Fn&& fn) {
  static_assert(std::is_trivially_copyable_v<T>,
                "forked results cross a pipe as raw bytes");
#if defined(__unix__) || defined(__APPLE__)
  int fds[2];
  if (pipe(fds) != 0) return fn();
  std::fflush(nullptr);  // don't let the child replay buffered output
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return fn();
  }
  if (pid == 0) {
    close(fds[0]);
    const T result = fn();
    const auto* p = reinterpret_cast<const unsigned char*>(&result);
    std::size_t off = 0;
    while (off < sizeof(T)) {
      const ssize_t n = write(fds[1], p + off, sizeof(T) - off);
      if (n <= 0) _exit(3);
      off += static_cast<std::size_t>(n);
    }
    _exit(0);
  }
  close(fds[1]);
  T result{};
  auto* p = reinterpret_cast<unsigned char*>(&result);
  std::size_t off = 0;
  while (off < sizeof(T)) {
    const ssize_t n = read(fds[0], p + off, sizeof(T) - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (off != sizeof(T) || !WIFEXITED(status) || WEXITSTATUS(status) != 0)
    return T{};  // default ok=false marks the tier failed
  return result;
#else
  return fn();
#endif
}

ScaleTier run_scale_tier(std::size_t nodes) {
  ScaleTier out;
  out.nodes = nodes;
  const long rss_baseline = current_rss_kb();
  const double radio = 40.0;
  const double side = net::field_side_for_density(nodes, radio, 20.0);
  const Rect field{0.0, 0.0, side, side};

  const auto t0 = std::chrono::steady_clock::now();
  Rng master(1);
  std::unique_ptr<net::Network> network;
  for (int attempt = 0; attempt < 64 && !network; ++attempt) {
    Rng deploy = master.split();
    const auto positions = net::deploy_uniform(nodes, field, deploy);
    auto candidate = std::make_unique<net::Network>(
        positions, field, radio, net::MessageSizes{}, sim::EnergyModel{},
        net::LinkLossModel{}, 7);
    if (candidate->is_connected()) network = std::move(candidate);
  }
  if (!network) return out;  // ok stays false

  routing::Gpsr gpsr(*network);
  core::PoolConfig pool_config;
  routing::RouteCacheConfig cache_config;
  cache_config.location_quantum = pool_config.cell_size;
  common::BufferPool<net::NodeId> path_pool(true);
  routing::RouteCache cache(gpsr, cache_config, nullptr, "scale.route_cache",
                            &path_pool);
  core::PoolSystem pool(*network, cache, 3, pool_config);
  const auto t1 = std::chrono::steady_clock::now();

  query::WorkloadConfig wc;
  wc.dims = 3;
  query::EventGenerator gen(wc, 99);
  network->reset_traffic();
  std::size_t inserted = 0;
  for (net::NodeId n = 0; n < network->size(); ++n) {
    pool.insert(n, gen.next(n));
    ++inserted;
  }
  const auto t2 = std::chrono::steady_clock::now();

  out.build_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.insert_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  out.events_per_sec =
      out.insert_ms > 0
          ? static_cast<double>(inserted) / (out.insert_ms / 1000.0)
          : 0;
  out.insert_messages = network->traffic().total;
  out.peak_rss_kb = std::max(0L, peak_rss_kb_now() - rss_baseline);
  out.ok = true;
  return out;
}

/// Store-scale churn arm (--scale): insert+expire churn from 100k event
/// sources through a central store — the flat in-memory vector vs the
/// paged out-of-core store with a buffer pool a small fraction of the
/// working set. Pure storage, no network: the question is whether the
/// pager holds a bounded footprint at flat-store-like throughput while
/// answering queries identically.
struct StoreChurn {
  double churn_ms = 0;   ///< inserts + periodic expiry, wall
  double query_ms = 0;   ///< the 32-query probe, wall
  double events_per_sec = 0;
  long peak_rss_kb = 0;  ///< churn-phase footprint (forked + baselined,
                         ///< captured before the probe materializes results)
  std::uint64_t inserted = 0;
  std::uint64_t expired = 0;
  std::uint64_t live = 0;          ///< stored_count() after churn
  std::uint64_t query_results = 0;
  std::uint64_t query_checksum = 0;  ///< Σ event ids over probe results
  double pager_hit_rate = 0;         ///< paged arm only
  std::uint64_t pager_evictions = 0;
  std::uint64_t file_pages = 0;
  bool conservation_ok = false;  ///< inserted == live + expired
  bool ok = false;
};

constexpr std::size_t kChurnSources = 100'000;
constexpr std::uint64_t kChurnInserts = 2'400'000;
constexpr std::uint64_t kChurnExpireEvery = 400'000;
constexpr std::uint64_t kChurnKeepLive = 800'000;
constexpr int kChurnQueries = 32;

StoreChurn run_store_churn(bool paged) {
  StoreChurn out;
  const long rss_baseline = current_rss_kb();

  std::unique_ptr<storage::DcsSystem> store;
  storage::PagedStore* pager = nullptr;
  if (paged) {
    storage::PagedStoreOptions po;
    po.pool_pages = 1024;  // 4 MB pool vs a ~50 MB working set
    po.page_bytes = 4096;
    po.backing = storage::PagedStoreOptions::Backing::File;
    auto p = std::make_unique<storage::PagedStore>(3, po);
    pager = p.get();
    store = std::move(p);
  } else {
    store = std::make_unique<storage::BruteForceStore>(3);
  }

  query::WorkloadConfig wc;
  wc.dims = 3;
  query::EventGenerator gen(wc, 4242);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kChurnInserts; ++i) {
    storage::Event e = gen.next(static_cast<net::NodeId>(i % kChurnSources));
    e.detected_at = static_cast<double>(i);
    store->insert(e.source, e);
    ++out.inserted;
    if ((i + 1) % kChurnExpireEvery == 0 && i + 1 > kChurnKeepLive) {
      out.expired +=
          store->expire_before(static_cast<double>(i + 1 - kChurnKeepLive));
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  // Capture RSS here: the bound under test is the insert+expire churn
  // footprint (flat's live vector vs the pager's fixed pool). The probe
  // below materializes result vectors of up to `live` events — tens of
  // MB that both arms pay identically and that says nothing about the
  // store's resident state.
  out.peak_rss_kb = std::max(0L, peak_rss_kb_now() - rss_baseline);

  // Identical probe queries in both arms (same generator, same seed):
  // the id checksum must agree bit-for-bit between flat and paged.
  query::QueryGenerator qgen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Uniform}, 777);
  for (int q = 0; q < kChurnQueries; ++q) {
    const auto receipt = store->query(0, qgen.exact_range());
    out.query_results += receipt.events.size();
    for (const auto& e : receipt.events) out.query_checksum += e.id;
  }
  const auto t2 = std::chrono::steady_clock::now();

  out.churn_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.query_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  out.events_per_sec =
      out.churn_ms > 0
          ? static_cast<double>(out.inserted) / (out.churn_ms / 1000.0)
          : 0;
  out.live = store->stored_count();
  out.conservation_ok = out.inserted == out.live + out.expired;
  if (pager != nullptr) {
    const storage::PagerStats ps = pager->pager_stats();
    out.pager_hit_rate = ps.hit_rate();
    out.pager_evictions = ps.evictions;
    out.file_pages = pager->page_count();
  }
  out.ok = true;
  return out;
}

/// Query-engine probe for the CI trend file: one 300-node testbed serves
/// a 32-query half-overlapping workload three ways — serial, batched by
/// 16, and serial-with-cache replayed twice (so every repeat hits).
struct EngineProbe {
  std::uint64_t serial_messages = 0;
  std::uint64_t batched_messages = 0;
  double message_savings = 0;  ///< fraction of serial traffic avoided
  double dedup_ratio = 1;
  double cache_hit_rate = 0;
};

EngineProbe run_engine_probe() {
  TestbedConfig config;
  config.nodes = 300;
  config.seed = 1;
  Testbed tb(config);
  tb.insert_workload();
  Rng sink_rng(17);
  const net::NodeId sink = tb.random_node(sink_rng);

  query::QueryGenerator qgen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential}, 57);
  std::vector<storage::RangeQuery> templates;
  for (int i = 0; i < 4; ++i) templates.push_back(qgen.exact_range());
  Rng pick(23);
  std::vector<storage::RangeQuery> queries;
  for (int i = 0; i < 32; ++i) {
    const auto fresh = qgen.exact_range();
    const auto slot = static_cast<std::size_t>(pick.uniform_int(0, 3));
    queries.push_back(pick.uniform() < 0.5 ? templates[slot] : fresh);
  }

  EngineProbe out;
  {
    engine::QueryEngine serial(tb.pool(), {});
    for (const auto& q : queries) serial.take(serial.submit(sink, q));
    out.serial_messages = serial.stats().messages;
  }
  {
    engine::QueryEngineConfig cfg;
    cfg.batch_size = 16;
    cfg.batch_deadline = std::uint64_t{1} << 40;
    engine::QueryEngine batched(tb.pool(), cfg);
    std::vector<engine::QueryEngine::Ticket> tickets;
    for (const auto& q : queries) tickets.push_back(batched.submit(sink, q));
    batched.flush();
    for (const auto t : tickets) batched.take(t);
    out.batched_messages = batched.stats().messages;
    out.dedup_ratio = batched.stats().overall_dedup_ratio();
  }
  if (out.serial_messages > 0) {
    out.message_savings =
        1.0 - static_cast<double>(out.batched_messages) /
                  static_cast<double>(out.serial_messages);
  }
  {
    engine::QueryEngineConfig cfg;
    cfg.cache.enabled = true;
    engine::QueryEngine cached(tb.pool(), cfg);
    for (int round = 0; round < 2; ++round)
      for (const auto& q : queries) cached.take(cached.submit(sink, q));
    out.cache_hit_rate = cached.cache_stats().hit_rate();
  }
  return out;
}

/// Fig-6(b)-style hotspot probe for the CI trend file: one testbed under
/// exponential event values, scraped through the telemetry bridge. The
/// paper's imbalance claim — DIM concentrates storage on few zone owners
/// while Pool stays flat — shows up as DIM index-node Gini and max load
/// both above Pool's.
struct HotspotProbe {
  double pool_gini = 0, dim_gini = 0;          ///< over index nodes
  double pool_max_load = 0, dim_max_load = 0;
  double pool_energy_j = 0, dim_energy_j = 0;
  std::uint64_t pool_net_messages = 0, dim_net_messages = 0;
  obs::Snapshot snap;
};

HotspotProbe run_hotspot_probe() {
  TestbedConfig config;
  config.nodes = 300;
  config.seed = 5;
  config.workload.dist = query::ValueDistribution::Exponential;
  Testbed tb(config);
  tb.insert_workload();

  HotspotProbe out;
  out.snap = scrape_testbed(tb);
  // insert_workload() captures and then clears the traffic ledgers, so
  // fold the captured insert tallies back into the snapshot.
  out.snap.counters["pool.net.messages"] += tb.pool_insert_traffic().total;
  out.snap.counters["dim.net.messages"] += tb.dim_insert_traffic().total;
  out.snap.gauges["pool.net.energy_j"] += tb.pool_insert_traffic().energy_j;
  out.snap.gauges["dim.net.energy_j"] += tb.dim_insert_traffic().energy_j;
  out.pool_gini = out.snap.gauges["pool.storage.load.gini_loaded"];
  out.dim_gini = out.snap.gauges["dim.storage.load.gini_loaded"];
  out.pool_max_load = out.snap.gauges["pool.storage.load.max"];
  out.dim_max_load = out.snap.gauges["dim.storage.load.max"];
  out.pool_energy_j = out.snap.gauges["pool.net.energy_j"];
  out.dim_energy_j = out.snap.gauges["dim.net.energy_j"];
  out.pool_net_messages = out.snap.counters["pool.net.messages"];
  out.dim_net_messages = out.snap.counters["dim.net.messages"];
  return out;
}

bool stats_equal(const PairedRun& a, const PairedRun& b) {
  const auto same = [](const SystemQueryStats& x, const SystemQueryStats& y) {
    return x.messages.mean() == y.messages.mean() &&
           x.messages.count() == y.messages.count() &&
           x.query_messages.mean() == y.query_messages.mean() &&
           x.reply_messages.mean() == y.reply_messages.mean() &&
           x.index_nodes.mean() == y.index_nodes.mean() &&
           x.results.mean() == y.results.mean();
  };
  return same(a.pool, b.pool) && same(a.dim, b.dim) &&
         a.queries == b.queries && a.pool_mismatches == b.pool_mismatches &&
         a.dim_mismatches == b.dim_mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --scale before the shared option table sees it (it is
  // specific to this bench).
  bool want_scale = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--scale") {
      want_scale = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const BenchOptions opts =
      parse_bench_options(static_cast<int>(args.size()), args.data());
  print_banner("Performance smoke — {serial,parallel} x {cache off,on}",
               "Downsized Fig-6(a) sweep (300..900 nodes, 2 seeds); message "
               "stats must be identical across all four configurations.");

  routing::RouteCacheConfig off;
  off.enabled = false;
  routing::RouteCacheConfig on = opts.route_cache;
  on.enabled = true;

  const auto serial_uncached = run_sweep(1, off);
  const auto serial_cached = run_sweep(1, on);
  const auto parallel_uncached = run_sweep(opts.threads, off);
  const auto parallel_cached = run_sweep(opts.threads, on);

  bool identical = true;
  for (std::size_t g = 0; g < kSizes.size(); ++g) {
    if (!stats_equal(serial_uncached.totals[g], serial_cached.totals[g]) ||
        !stats_equal(serial_uncached.totals[g], parallel_uncached.totals[g]) ||
        !stats_equal(serial_uncached.totals[g], parallel_cached.totals[g])) {
      identical = false;
    }
  }

  const auto ratio = [](double base, double arm) {
    return arm > 0 ? base / arm : 0;
  };
  const double speedup_cache =
      ratio(serial_uncached.wall_ms, serial_cached.wall_ms);
  const double speedup_parallel =
      ratio(serial_uncached.wall_ms, parallel_uncached.wall_ms);
  const double speedup =
      ratio(serial_uncached.wall_ms, parallel_cached.wall_ms);

  TablePrinter table({"configuration", "wall ms", "Pool hit rate",
                      "DIM hit rate"});
  const std::string xt = "x" + std::to_string(opts.threads);
  table.add_row({"serial, cache off", fmt(serial_uncached.wall_ms, 1), "-",
                 "-"});
  table.add_row({"serial, cache on", fmt(serial_cached.wall_ms, 1),
                 fmt(serial_cached.pool_hit_rate, 3),
                 fmt(serial_cached.dim_hit_rate, 3)});
  table.add_row({"parallel " + xt + ", cache off",
                 fmt(parallel_uncached.wall_ms, 1), "-", "-"});
  table.add_row({"parallel " + xt + ", cache on",
                 fmt(parallel_cached.wall_ms, 1),
                 fmt(parallel_cached.pool_hit_rate, 3),
                 fmt(parallel_cached.dim_hit_rate, 3)});
  table.print();
  std::printf(
      "\nspeedup: cache %.2fx, parallel %.2fx (%zu threads), combined "
      "%.2fx; stats identical: %s\n",
      speedup_cache, speedup_parallel, opts.threads, speedup,
      identical ? "yes" : "NO");

  std::vector<ScaleTier> tiers;
  StoreChurn churn_flat, churn_paged;
  if (want_scale) {
    std::printf("\nscale tier (Pool-only, 1 event/node, forked per tier):\n");
    TablePrinter scale_table(
        {"nodes", "build ms", "insert ms", "events/sec", "tier RSS MB"});
    for (const std::size_t n : {std::size_t{1000}, std::size_t{10000},
                                std::size_t{100000}}) {
      // Each tier runs in its own forked child so peak_rss_kb is that
      // tier's footprint, not the process high-water across all tiers.
      const ScaleTier tier =
          run_forked<ScaleTier>([n] { return run_scale_tier(n); });
      if (!tier.ok) {
        std::printf("  %zu nodes: no connected deployment drawn, skipped\n",
                    n);
        continue;
      }
      scale_table.add_row({std::to_string(tier.nodes), fmt(tier.build_ms, 0),
                           fmt(tier.insert_ms, 0),
                           fmt(tier.events_per_sec, 0),
                           fmt(tier.peak_rss_kb / 1024.0, 1)});
      tiers.push_back(tier);
    }
    scale_table.print();

    std::printf(
        "\nstore churn (%zu sources, %llu inserts, %llu live, forked "
        "per arm):\n",
        kChurnSources, static_cast<unsigned long long>(kChurnInserts),
        static_cast<unsigned long long>(kChurnKeepLive));
    churn_flat = run_forked<StoreChurn>([] { return run_store_churn(false); });
    churn_paged = run_forked<StoreChurn>([] { return run_store_churn(true); });
    TablePrinter churn_table({"store", "churn ms", "query ms", "events/sec",
                              "arm RSS MB", "hit rate", "conserved"});
    const auto churn_row = [&](const char* name, const StoreChurn& c) {
      churn_table.add_row(
          {name, fmt(c.churn_ms, 0), fmt(c.query_ms, 0),
           fmt(c.events_per_sec, 0), fmt(c.peak_rss_kb / 1024.0, 1),
           c.pager_evictions > 0 ? fmt(c.pager_hit_rate, 4) : std::string("-"),
           c.conservation_ok ? "yes" : "NO"});
    };
    if (churn_flat.ok) churn_row("flat", churn_flat);
    if (churn_paged.ok) churn_row("paged", churn_paged);
    churn_table.print();
    if (churn_flat.ok && churn_paged.ok) {
      const bool same = churn_flat.query_checksum == churn_paged.query_checksum &&
                        churn_flat.query_results == churn_paged.query_results &&
                        churn_flat.live == churn_paged.live;
      std::printf(
          "store churn: results %s (checksum %llu, %llu events), paged RSS "
          "%.1f%% of flat\n",
          same ? "identical" : "DIVERGED",
          static_cast<unsigned long long>(churn_flat.query_checksum),
          static_cast<unsigned long long>(churn_flat.query_results),
          churn_flat.peak_rss_kb > 0
              ? 100.0 * static_cast<double>(churn_paged.peak_rss_kb) /
                    static_cast<double>(churn_flat.peak_rss_kb)
              : 0.0);
    }
  }

  const EngineProbe probe = run_engine_probe();
  std::printf(
      "query engine: %llu serial msgs -> %llu batched (%.1f%% saved, "
      "dedup %.2f, cache hit rate %.3f)\n",
      static_cast<unsigned long long>(probe.serial_messages),
      static_cast<unsigned long long>(probe.batched_messages),
      100.0 * probe.message_savings, probe.dedup_ratio,
      probe.cache_hit_rate);

  const HotspotProbe hotspot = run_hotspot_probe();
  std::printf(
      "hotspot probe (exponential events): Pool gini %.3f max %d | "
      "DIM gini %.3f max %d\n",
      hotspot.pool_gini, static_cast<int>(hotspot.pool_max_load),
      hotspot.dim_gini, static_cast<int>(hotspot.dim_max_load));
  if (opts.telemetry.wants_metrics()) {
    obs::emit_snapshot(opts.telemetry, hotspot.snap, std::cout);
  }

  const double msgs_per_query = serial_uncached.totals.back().pool.messages.mean();
  std::FILE* f = std::fopen("BENCH_perf.json", "w");
  if (f) {
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"perf_smoke\",\n"
        "  \"threads\": %zu,\n"
        "  \"serial_uncached_ms\": %.1f,\n"
        "  \"serial_cached_ms\": %.1f,\n"
        "  \"parallel_uncached_ms\": %.1f,\n"
        "  \"parallel_cached_ms\": %.1f,\n"
        "  \"speedup_cache\": %.3f,\n"
        "  \"speedup_parallel\": %.3f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"pool_cache_hit_rate\": %.4f,\n"
        "  \"dim_cache_hit_rate\": %.4f,\n"
        "  \"pool_messages_per_query_900\": %.2f,\n"
        "  \"stats_identical\": %s,\n",
        opts.threads, serial_uncached.wall_ms, serial_cached.wall_ms,
        parallel_uncached.wall_ms, parallel_cached.wall_ms, speedup_cache,
        speedup_parallel, speedup, parallel_cached.pool_hit_rate,
        parallel_cached.dim_hit_rate, msgs_per_query,
        identical ? "true" : "false");
    if (!tiers.empty()) {
      const ScaleTier& top = tiers.back();
      std::fprintf(f,
                   "  \"events_per_sec\": %.1f,\n"
                   "  \"scale\": [\n",
                   top.events_per_sec);
      for (std::size_t i = 0; i < tiers.size(); ++i) {
        const ScaleTier& t = tiers[i];
        std::fprintf(
            f,
            "    {\"nodes\": %zu, \"build_ms\": %.1f, \"insert_ms\": %.1f, "
            "\"events_per_sec\": %.1f, \"insert_messages\": %llu, "
            "\"peak_rss_kb\": %ld}%s\n",
            t.nodes, t.build_ms, t.insert_ms, t.events_per_sec,
            static_cast<unsigned long long>(t.insert_messages),
            t.peak_rss_kb, i + 1 < tiers.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
    }
    if (churn_flat.ok && churn_paged.ok) {
      const auto emit_churn = [f](const char* name, const StoreChurn& c,
                                  bool last) {
        std::fprintf(
            f,
            "    \"%s\": {\"churn_ms\": %.1f, \"query_ms\": %.1f, "
            "\"events_per_sec\": %.1f, \"peak_rss_kb\": %ld, "
            "\"inserted\": %llu, \"expired\": %llu, \"live\": %llu, "
            "\"query_results\": %llu, \"query_checksum\": %llu, "
            "\"pager_hit_rate\": %.4f, \"pager_evictions\": %llu, "
            "\"file_pages\": %llu, \"conservation_ok\": %s}%s\n",
            name, c.churn_ms, c.query_ms, c.events_per_sec, c.peak_rss_kb,
            static_cast<unsigned long long>(c.inserted),
            static_cast<unsigned long long>(c.expired),
            static_cast<unsigned long long>(c.live),
            static_cast<unsigned long long>(c.query_results),
            static_cast<unsigned long long>(c.query_checksum),
            c.pager_hit_rate,
            static_cast<unsigned long long>(c.pager_evictions),
            static_cast<unsigned long long>(c.file_pages),
            c.conservation_ok ? "true" : "false", last ? "" : ",");
      };
      const bool same =
          churn_flat.query_checksum == churn_paged.query_checksum &&
          churn_flat.query_results == churn_paged.query_results &&
          churn_flat.live == churn_paged.live;
      std::fprintf(f, "  \"store_scale\": {\n");
      emit_churn("flat", churn_flat, false);
      emit_churn("paged", churn_paged, false);
      std::fprintf(f, "    \"results_identical\": %s\n  },\n",
                   same ? "true" : "false");
    }
    std::fprintf(
        f,
        "  \"query_engine\": {\n"
        "    \"serial_messages\": %llu,\n"
        "    \"batched_messages\": %llu,\n"
        "    \"message_savings\": %.4f,\n"
        "    \"dedup_ratio\": %.4f,\n"
        "    \"cache_hit_rate\": %.4f\n"
        "  },\n"
        "  \"metrics\": {\n"
        "    \"pool_storage_gini\": %.4f,\n"
        "    \"dim_storage_gini\": %.4f,\n"
        "    \"pool_max_load\": %.0f,\n"
        "    \"dim_max_load\": %.0f,\n"
        "    \"pool_insert_messages\": %llu,\n"
        "    \"dim_insert_messages\": %llu,\n"
        "    \"pool_energy_j\": %.6f,\n"
        "    \"dim_energy_j\": %.6f\n"
        "  }\n"
        "}\n",
        static_cast<unsigned long long>(probe.serial_messages),
        static_cast<unsigned long long>(probe.batched_messages),
        probe.message_savings, probe.dedup_ratio, probe.cache_hit_rate,
        hotspot.pool_gini, hotspot.dim_gini, hotspot.pool_max_load,
        hotspot.dim_max_load,
        static_cast<unsigned long long>(hotspot.pool_net_messages),
        static_cast<unsigned long long>(hotspot.dim_net_messages),
        hotspot.pool_energy_j, hotspot.dim_energy_j);
    std::fclose(f);
    std::printf("wrote BENCH_perf.json\n");
  }
  return identical ? 0 : 1;
}
