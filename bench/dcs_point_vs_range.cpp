// The introduction's taxonomy, quantified: three DCS generations on one
// deployment. GHT (exact-match point queries only; ranges flood), DIM
// (multi-d ranges via k-d zones), Pool (this paper). One table per query
// class, plus aggregates.
#include <cstdio>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "ght/ght_system.h"
#include "query/query_gen.h"
#include "routing/gpsr.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main(int argc, char** argv) {
  // Single-deployment serial comparison: --threads is accepted for CLI
  // uniformity but there is nothing to parallelize here.
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("DCS generations — GHT vs DIM vs Pool",
               "900 nodes; point, range, partial and aggregate queries; "
               "mean messages per query (GHT floods non-point queries).");

  TestbedConfig config;
  config.nodes = 900;
  config.seed = 3;
  config.route_cache = opts.route_cache;
  Testbed tb(config);
  tb.insert_workload();

  // GHT gets its own network copy over the same positions, like the others.
  net::Network ght_net(
      [&] {
        std::vector<Point> pts;
        for (const auto& n : tb.pool_network().nodes()) pts.push_back(n.pos);
        return pts;
      }(),
      tb.pool_network().field(), config.radio_range, config.sizes);
  const routing::Gpsr ght_gpsr(ght_net);
  const routing::RouteCache ght_cache(ght_gpsr, opts.route_cache);
  const routing::Router& ght_router =
      opts.route_cache.enabled ? static_cast<const routing::Router&>(ght_cache)
                               : ght_gpsr;
  ght::GhtSystem ght(ght_net, ght_router, 3);
  for (const auto& e : tb.oracle().all()) ght.insert(e.source, e);
  ght_net.reset_traffic();

  query::QueryGenerator qgen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential,
       .exp_mean = 0.1},
      17);
  Rng sink_rng(19);
  Rng pick_rng(23);
  const auto& stored = tb.oracle().all();

  struct Row {
    const char* flavor;
    sim::RunningStat pool, dim, ght_cost;
    bool exact = true;
  };
  std::vector<Row> rows(4);
  rows[0].flavor = "exact point (stored value)";
  rows[1].flavor = "exact range (exp sizes)";
  rows[2].flavor = "1-partial range";
  rows[3].flavor = "AVG aggregate over range";

  constexpr int kQueries = 40;
  for (int i = 0; i < kQueries; ++i) {
    const auto sink = tb.random_node(sink_rng);

    // Point queries target stored events so every system returns them.
    const auto& target = stored[static_cast<std::size_t>(pick_rng.uniform_int(
        0, static_cast<std::int64_t>(stored.size()) - 1))];
    storage::RangeQuery::Bounds pb;
    for (std::size_t d = 0; d < 3; ++d)
      pb.push_back({target.values[d], target.values[d]});
    const storage::RangeQuery point_q(pb);
    const storage::RangeQuery range_q = qgen.exact_range();
    const storage::RangeQuery partial_q = qgen.partial_range(1);

    const auto run_all = [&](Row& row, const storage::RangeQuery& q) {
      const auto want = tb.oracle().matching(q).size();
      const auto pr = tb.pool().query(sink, q);
      const auto dr = tb.dim().query(sink, q);
      const auto gr = ght.query(sink, q);
      row.pool.add(static_cast<double>(pr.messages));
      row.dim.add(static_cast<double>(dr.messages));
      row.ght_cost.add(static_cast<double>(gr.messages));
      if (pr.events.size() != want || dr.events.size() != want ||
          gr.events.size() != want)
        row.exact = false;
    };
    run_all(rows[0], point_q);
    run_all(rows[1], range_q);
    run_all(rows[2], partial_q);

    const auto pa =
        tb.pool().aggregate(sink, range_q, storage::AggregateKind::Average, 0);
    const auto da =
        tb.dim().aggregate(sink, range_q, storage::AggregateKind::Average, 0);
    const auto ga =
        ght.aggregate(sink, range_q, storage::AggregateKind::Average, 0);
    rows[3].pool.add(static_cast<double>(pa.messages));
    rows[3].dim.add(static_cast<double>(da.messages));
    rows[3].ght_cost.add(static_cast<double>(ga.messages));
    if (pa.result.count != da.result.count ||
        pa.result.count != ga.result.count)
      rows[3].exact = false;
  }

  TablePrinter table({"query class", "Pool msgs", "DIM msgs", "GHT msgs",
                      "GHT/Pool", "all exact"});
  for (const auto& row : rows) {
    table.add_row({row.flavor, fmt(row.pool.mean()), fmt(row.dim.mean()),
                   fmt(row.ght_cost.mean()),
                   fmt(row.ght_cost.mean() / row.pool.mean(), 1),
                   row.exact ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nExpected shape: GHT is competitive only on exact-match point\n"
      "queries; any range or aggregate forces it to flood all 900 nodes.\n"
      "DIM handles ranges but trails Pool, especially on partial match.\n");
  return 0;
}
