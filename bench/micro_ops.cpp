// Microbenchmarks (google-benchmark) of the per-node primitives.
//
// Theorem 3.1's selling point is that cell location is "simply an
// arithmetic computation" — these benches put numbers on it next to DIM's
// per-event tree walk and to one GPSR routing step.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_support/testbed.h"
#include "common/object_pool.h"
#include "common/rng.h"
#include "core/pool_geometry.h"
#include "net/spatial_index.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "sim/event_queue.h"
#include "storage/column/column_store.h"

namespace {

using namespace poolnet;

benchsup::Testbed& shared_testbed() {
  static benchsup::Testbed tb = [] {
    benchsup::TestbedConfig config;
    config.nodes = 900;
    config.seed = 1;
    benchsup::Testbed t(config);
    t.insert_workload();
    return t;
  }();
  return tb;
}

void BM_PoolCellForValues(benchmark::State& state) {
  Rng rng(1);
  double a = rng.uniform(), b = rng.uniform();
  if (a < b) std::swap(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cell_for_values(a, b, 10));
  }
}
BENCHMARK(BM_PoolCellForValues);

void BM_PoolDerivedRanges(benchmark::State& state) {
  query::QueryGenerator qgen({.dims = 3}, 2);
  const auto q = qgen.exact_range();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::derived_ranges(q, 1));
  }
}
BENCHMARK(BM_PoolDerivedRanges);

void BM_PoolRelevantCells(benchmark::State& state) {
  query::QueryGenerator qgen({.dims = 3}, 3);
  const auto q = qgen.partial_range(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::relevant_cells(q, 0, 10));
  }
}
BENCHMARK(BM_PoolRelevantCells);

void BM_DimLeafForEvent(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::EventGenerator gen({.dims = 3}, 4);
  const auto e = gen.next(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.dim().tree().leaf_for_event(e));
  }
}
BENCHMARK(BM_DimLeafForEvent);

void BM_DimLeavesOverlapping(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::QueryGenerator qgen({.dims = 3}, 5);
  const auto q = qgen.partial_range(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.dim().tree().leaves_overlapping(q));
  }
}
BENCHMARK(BM_DimLeavesOverlapping);

void BM_GpsrRouteAcrossField(benchmark::State& state) {
  auto& tb = shared_testbed();
  const auto src = tb.pool_network().nearest_node({0, 0});
  const auto dst = tb.pool_network().nearest_node(
      {tb.pool_network().field().max_x, tb.pool_network().field().max_y});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.pool_gpsr().route_to_node(src, dst));
  }
}
BENCHMARK(BM_GpsrRouteAcrossField);

void BM_CachedRouteAcrossField(benchmark::State& state) {
  // Same cross-field route through a RouteCache: after the first miss every
  // iteration is a hash lookup plus a RouteResult copy. (max_hops = 0
  // stores everything — the default declines long routes, which would
  // leave this bench measuring recomputation.)
  auto& tb = shared_testbed();
  routing::RouteCacheConfig cfg;
  cfg.max_hops = 0;
  const routing::RouteCache cache(tb.pool_gpsr(), cfg);
  const auto src = tb.pool_network().nearest_node({0, 0});
  const auto dst = tb.pool_network().nearest_node(
      {tb.pool_network().field().max_x, tb.pool_network().field().max_y});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.route_to_node(src, dst));
  }
}
BENCHMARK(BM_CachedRouteAcrossField);

void BM_CachedRouteIntoScratch(benchmark::State& state) {
  // The scratch-handle form of the same cached route: after the first
  // miss every iteration is a hash lookup plus a capacity-reusing
  // copy-assign into the warm out-parameter — no allocation at all.
  auto& tb = shared_testbed();
  routing::RouteCacheConfig cfg;
  cfg.max_hops = 0;
  const routing::RouteCache cache(tb.pool_gpsr(), cfg);
  const auto src = tb.pool_network().nearest_node({0, 0});
  const auto dst = tb.pool_network().nearest_node(
      {tb.pool_network().field().max_x, tb.pool_network().field().max_y});
  routing::RouteResult scratch;
  for (auto _ : state) {
    cache.route_to_node_into(src, dst, scratch);
    benchmark::DoNotOptimize(scratch.path.data());
  }
}
BENCHMARK(BM_CachedRouteIntoScratch);

void BM_PathBufferHeap(benchmark::State& state) {
  // One heap vector per route, the pre-pool allocation pattern: malloc,
  // grow to a typical cross-field path length, free.
  for (auto _ : state) {
    std::vector<net::NodeId> path;
    path.reserve(32);
    benchmark::DoNotOptimize(path.data());
  }
}
BENCHMARK(BM_PathBufferHeap);

void BM_PathBufferPooled(benchmark::State& state) {
  // The same buffer churn through a BufferPool free-list: after the
  // first trip the reserve is a no-op on recycled capacity.
  common::BufferPool<net::NodeId> pool(true);
  for (auto _ : state) {
    auto path = pool.acquire();
    path.reserve(32);
    benchmark::DoNotOptimize(path.data());
    pool.release(std::move(path));
  }
}
BENCHMARK(BM_PathBufferPooled);

void BM_WithinScanReturning(benchmark::State& state) {
  // Radius scan materializing a fresh result vector per call.
  auto& net = shared_testbed().pool_network();
  const Point center{net.field().width() / 2, net.field().height() / 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.nodes_within(center, 80.0));
  }
}
BENCHMARK(BM_WithinScanReturning);

void BM_WithinScanIntoScratch(benchmark::State& state) {
  // The out-parameter form over the same index: the scratch vector's
  // capacity survives across calls, so a warm scan never allocates.
  auto& net = shared_testbed().pool_network();
  std::vector<Point> points;
  for (net::NodeId n = 0; n < net.size(); ++n)
    points.push_back(net.position(n));
  net::SpatialIndex index(points, net.field(), 40.0);
  const Point center{net.field().width() / 2, net.field().height() / 2};
  std::vector<std::size_t> scratch;
  for (auto _ : state) {
    index.within(center, 80.0, scratch, /*sorted=*/false);
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_WithinScanIntoScratch);

void BM_EventQueueChurn(benchmark::State& state) {
  // Steady-state enqueue/dequeue with 64 events resident: the explicit
  // binary heap moves events out on pop and keeps its backing storage,
  // so the churn runs allocation-free.
  sim::EventQueue q;
  double t = 0;
  for (int i = 0; i < 64; ++i) q.push(t++, [] {});
  for (auto _ : state) {
    q.push(t++, [] {});
    auto ev = q.pop();
    benchmark::DoNotOptimize(ev.time);
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_PoolInsert(benchmark::State& state) {
  benchsup::TestbedConfig config;
  config.nodes = 300;
  config.seed = 7;
  benchsup::Testbed tb(config);
  query::EventGenerator gen({.dims = 3}, 8);
  for (auto _ : state) {
    const auto e = gen.next(0);
    benchmark::DoNotOptimize(tb.pool().insert(0, e));
  }
}
BENCHMARK(BM_PoolInsert);

void BM_PoolQueryExact(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::QueryGenerator qgen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential,
       .exp_mean = 0.1},
      9);
  for (auto _ : state) {
    const auto q = qgen.exact_range();
    benchmark::DoNotOptimize(tb.pool().query(0, q));
  }
}
BENCHMARK(BM_PoolQueryExact);

void BM_DimQueryExact(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::QueryGenerator qgen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential,
       .exp_mean = 0.1},
      9);
  for (auto _ : state) {
    const auto q = qgen.exact_range();
    benchmark::DoNotOptimize(tb.dim().query(0, q));
  }
}
BENCHMARK(BM_DimQueryExact);

// ----------------------------------------------------------- scan section
//
// The columnar scan-kernel arms (DESIGN.md §14): filter a 1M-event store
// at ~1%/10%/50% nominal selectivity through three implementations —
//
//   aos     the pre-PR path: std::vector<Event> + RangeQuery::matches
//   soa     the branch-free column kernel with zone maps disabled
//   kernel  the production path: zone-map veto + column kernel
//
// Values follow a smooth per-dimension random walk, the sensor-stream
// shape (consecutive readings correlate), so blocks are value-clustered
// and zone maps have something to veto. All three arms must produce the
// identical match list; the best-of-N wall times feed the `scan` section
// that scripts/merge_perf_section.py folds into BENCH_perf.json and
// scripts/check_perf_regression.py gates (kernel >= 2x aos at 1%).

void append_json_arm(std::string& out, double selectivity,
                     std::size_t matched, double aos_ms, double soa_ms,
                     double kernel_ms, std::uint64_t blocks_skipped,
                     std::uint64_t blocks_total, bool identical) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "    {\"selectivity\": %.2f, \"matched\": %zu, \"aos_ms\": %.3f, "
      "\"soa_ms\": %.3f, \"kernel_ms\": %.3f, \"speedup_soa\": %.3f, "
      "\"speedup_kernel\": %.3f, \"blocks_skipped\": %llu, "
      "\"blocks_total\": %llu, \"results_identical\": %s}",
      selectivity, matched, aos_ms, soa_ms, kernel_ms, aos_ms / soa_ms,
      aos_ms / kernel_ms, static_cast<unsigned long long>(blocks_skipped),
      static_cast<unsigned long long>(blocks_total),
      identical ? "true" : "false");
  out += buf;
}

int run_scan_section(const char* path) {
  constexpr std::size_t kEvents = 1'000'000;
  constexpr std::size_t kDims = 3;
  constexpr int kReps = 5;
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  // Smooth random-walk workload: each attribute drifts by at most 2% per
  // event, reflecting off the domain walls.
  std::printf("micro_ops: generating %zu clustered events...\n", kEvents);
  Rng rng(4242);
  std::vector<storage::Event> aos;
  aos.reserve(kEvents);
  storage::column::ColumnStore soa(kDims);
  double walk[kDims] = {0.3, 0.5, 0.7};
  for (std::size_t i = 0; i < kEvents; ++i) {
    storage::Event e;
    e.id = i;
    e.source = static_cast<net::NodeId>(i % 997);
    e.detected_at = static_cast<double>(i);
    for (double& w : walk) {
      w += rng.uniform(-0.02, 0.02);
      if (w < 0.0) w = -w;
      if (w > 1.0) w = 2.0 - w;
      e.values.push_back(w);
    }
    aos.push_back(e);
    soa.append(e);
  }

  std::string arms_json;
  double speedup_1pct = 0.0;
  bool all_identical = true;
  const double selectivities[] = {0.01, 0.10, 0.50};
  for (const double sel : selectivities) {
    // A box of volume `sel` centered mid-domain, clamped to [0,1].
    const double width = std::pow(sel, 1.0 / kDims);
    storage::RangeQuery::Bounds bounds;
    for (std::size_t d = 0; d < kDims; ++d) {
      const double lo = std::max(0.0, 0.5 - width / 2);
      bounds.push_back({lo, std::min(1.0, lo + width)});
    }
    const storage::RangeQuery q(bounds);

    std::vector<std::uint64_t> aos_ids, soa_ids, kernel_ids;
    double aos_ms = 1e300, soa_ms = 1e300, kernel_ms = 1e300;
    storage::column::ScanStats stats;
    soa.set_stats(&stats);
    for (int rep = 0; rep < kReps; ++rep) {
      aos_ids.clear();
      auto t0 = Clock::now();
      for (const auto& e : aos) {
        if (q.matches(e)) aos_ids.push_back(e.id);
      }
      aos_ms = std::min(aos_ms, ms_since(t0));

      soa_ids.clear();
      t0 = Clock::now();
      soa.scan(
          q, false, [&](std::size_t row) { soa_ids.push_back(soa.id_at(row)); },
          /*use_zone_maps=*/false);
      soa_ms = std::min(soa_ms, ms_since(t0));

      kernel_ids.clear();
      stats = {};
      t0 = Clock::now();
      soa.scan(q, false, [&](std::size_t row) {
        kernel_ids.push_back(soa.id_at(row));
      });
      kernel_ms = std::min(kernel_ms, ms_since(t0));
    }
    soa.set_stats(nullptr);

    const bool identical = aos_ids == soa_ids && aos_ids == kernel_ids;
    all_identical = all_identical && identical;
    if (sel == 0.01) speedup_1pct = aos_ms / kernel_ms;
    const auto blocks_total = static_cast<std::uint64_t>(
        (kEvents + storage::column::kBlockRows - 1) /
        storage::column::kBlockRows);
    if (!arms_json.empty()) arms_json += ",\n";
    append_json_arm(arms_json, sel, aos_ids.size(), aos_ms, soa_ms, kernel_ms,
                    stats.blocks_skipped, blocks_total, identical);
    std::printf(
        "micro_ops: sel %.0f%% -> %zu matched; aos %.2f ms, soa %.2f ms, "
        "kernel %.2f ms (%.1fx), %llu/%llu blocks skipped%s\n",
        sel * 100, aos_ids.size(), aos_ms, soa_ms, kernel_ms,
        aos_ms / kernel_ms,
        static_cast<unsigned long long>(stats.blocks_skipped),
        static_cast<unsigned long long>(blocks_total),
        identical ? "" : "  [MISMATCH]");
  }

  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"scan\": {\n  \"events\": %zu,\n  \"dims\": %zu,\n"
               "  \"arms\": [\n%s\n  ],\n  \"speedup_1pct\": %.3f,\n"
               "  \"results_identical\": %s\n}\n}\n",
               kEvents, kDims, arms_json.c_str(), speedup_1pct,
               all_identical ? "true" : "false");
  std::fclose(f);
  std::printf("micro_ops: wrote %s\n", path);
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // `--scan-json PATH` runs the scan-kernel section instead of the
  // google-benchmark suite (bench_smoke.sh's BENCH_scan.json producer).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scan-json") == 0 && i + 1 < argc)
      return run_scan_section(argv[i + 1]);
    if (std::strncmp(argv[i], "--scan-json=", 12) == 0)
      return run_scan_section(argv[i] + 12);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
