// Microbenchmarks (google-benchmark) of the per-node primitives.
//
// Theorem 3.1's selling point is that cell location is "simply an
// arithmetic computation" — these benches put numbers on it next to DIM's
// per-event tree walk and to one GPSR routing step.
#include <benchmark/benchmark.h>

#include "bench_support/testbed.h"
#include "core/pool_geometry.h"
#include "query/query_gen.h"
#include "query/workload.h"

namespace {

using namespace poolnet;

benchsup::Testbed& shared_testbed() {
  static benchsup::Testbed tb = [] {
    benchsup::TestbedConfig config;
    config.nodes = 900;
    config.seed = 1;
    benchsup::Testbed t(config);
    t.insert_workload();
    return t;
  }();
  return tb;
}

void BM_PoolCellForValues(benchmark::State& state) {
  Rng rng(1);
  double a = rng.uniform(), b = rng.uniform();
  if (a < b) std::swap(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cell_for_values(a, b, 10));
  }
}
BENCHMARK(BM_PoolCellForValues);

void BM_PoolDerivedRanges(benchmark::State& state) {
  query::QueryGenerator qgen({.dims = 3}, 2);
  const auto q = qgen.exact_range();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::derived_ranges(q, 1));
  }
}
BENCHMARK(BM_PoolDerivedRanges);

void BM_PoolRelevantCells(benchmark::State& state) {
  query::QueryGenerator qgen({.dims = 3}, 3);
  const auto q = qgen.partial_range(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::relevant_cells(q, 0, 10));
  }
}
BENCHMARK(BM_PoolRelevantCells);

void BM_DimLeafForEvent(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::EventGenerator gen({.dims = 3}, 4);
  const auto e = gen.next(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.dim().tree().leaf_for_event(e));
  }
}
BENCHMARK(BM_DimLeafForEvent);

void BM_DimLeavesOverlapping(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::QueryGenerator qgen({.dims = 3}, 5);
  const auto q = qgen.partial_range(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.dim().tree().leaves_overlapping(q));
  }
}
BENCHMARK(BM_DimLeavesOverlapping);

void BM_GpsrRouteAcrossField(benchmark::State& state) {
  auto& tb = shared_testbed();
  const auto src = tb.pool_network().nearest_node({0, 0});
  const auto dst = tb.pool_network().nearest_node(
      {tb.pool_network().field().max_x, tb.pool_network().field().max_y});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.pool_gpsr().route_to_node(src, dst));
  }
}
BENCHMARK(BM_GpsrRouteAcrossField);

void BM_CachedRouteAcrossField(benchmark::State& state) {
  // Same cross-field route through a RouteCache: after the first miss every
  // iteration is a hash lookup plus a RouteResult copy.
  auto& tb = shared_testbed();
  const routing::RouteCache cache(tb.pool_gpsr());
  const auto src = tb.pool_network().nearest_node({0, 0});
  const auto dst = tb.pool_network().nearest_node(
      {tb.pool_network().field().max_x, tb.pool_network().field().max_y});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.route_to_node(src, dst));
  }
}
BENCHMARK(BM_CachedRouteAcrossField);

void BM_PoolInsert(benchmark::State& state) {
  benchsup::TestbedConfig config;
  config.nodes = 300;
  config.seed = 7;
  benchsup::Testbed tb(config);
  query::EventGenerator gen({.dims = 3}, 8);
  for (auto _ : state) {
    const auto e = gen.next(0);
    benchmark::DoNotOptimize(tb.pool().insert(0, e));
  }
}
BENCHMARK(BM_PoolInsert);

void BM_PoolQueryExact(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::QueryGenerator qgen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential,
       .exp_mean = 0.1},
      9);
  for (auto _ : state) {
    const auto q = qgen.exact_range();
    benchmark::DoNotOptimize(tb.pool().query(0, q));
  }
}
BENCHMARK(BM_PoolQueryExact);

void BM_DimQueryExact(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::QueryGenerator qgen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential,
       .exp_mean = 0.1},
      9);
  for (auto _ : state) {
    const auto q = qgen.exact_range();
    benchmark::DoNotOptimize(tb.dim().query(0, q));
  }
}
BENCHMARK(BM_DimQueryExact);

}  // namespace

BENCHMARK_MAIN();
