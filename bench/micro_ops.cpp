// Microbenchmarks (google-benchmark) of the per-node primitives.
//
// Theorem 3.1's selling point is that cell location is "simply an
// arithmetic computation" — these benches put numbers on it next to DIM's
// per-event tree walk and to one GPSR routing step.
#include <benchmark/benchmark.h>

#include "bench_support/testbed.h"
#include "common/object_pool.h"
#include "core/pool_geometry.h"
#include "net/spatial_index.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "sim/event_queue.h"

namespace {

using namespace poolnet;

benchsup::Testbed& shared_testbed() {
  static benchsup::Testbed tb = [] {
    benchsup::TestbedConfig config;
    config.nodes = 900;
    config.seed = 1;
    benchsup::Testbed t(config);
    t.insert_workload();
    return t;
  }();
  return tb;
}

void BM_PoolCellForValues(benchmark::State& state) {
  Rng rng(1);
  double a = rng.uniform(), b = rng.uniform();
  if (a < b) std::swap(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cell_for_values(a, b, 10));
  }
}
BENCHMARK(BM_PoolCellForValues);

void BM_PoolDerivedRanges(benchmark::State& state) {
  query::QueryGenerator qgen({.dims = 3}, 2);
  const auto q = qgen.exact_range();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::derived_ranges(q, 1));
  }
}
BENCHMARK(BM_PoolDerivedRanges);

void BM_PoolRelevantCells(benchmark::State& state) {
  query::QueryGenerator qgen({.dims = 3}, 3);
  const auto q = qgen.partial_range(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::relevant_cells(q, 0, 10));
  }
}
BENCHMARK(BM_PoolRelevantCells);

void BM_DimLeafForEvent(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::EventGenerator gen({.dims = 3}, 4);
  const auto e = gen.next(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.dim().tree().leaf_for_event(e));
  }
}
BENCHMARK(BM_DimLeafForEvent);

void BM_DimLeavesOverlapping(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::QueryGenerator qgen({.dims = 3}, 5);
  const auto q = qgen.partial_range(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.dim().tree().leaves_overlapping(q));
  }
}
BENCHMARK(BM_DimLeavesOverlapping);

void BM_GpsrRouteAcrossField(benchmark::State& state) {
  auto& tb = shared_testbed();
  const auto src = tb.pool_network().nearest_node({0, 0});
  const auto dst = tb.pool_network().nearest_node(
      {tb.pool_network().field().max_x, tb.pool_network().field().max_y});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.pool_gpsr().route_to_node(src, dst));
  }
}
BENCHMARK(BM_GpsrRouteAcrossField);

void BM_CachedRouteAcrossField(benchmark::State& state) {
  // Same cross-field route through a RouteCache: after the first miss every
  // iteration is a hash lookup plus a RouteResult copy. (max_hops = 0
  // stores everything — the default declines long routes, which would
  // leave this bench measuring recomputation.)
  auto& tb = shared_testbed();
  routing::RouteCacheConfig cfg;
  cfg.max_hops = 0;
  const routing::RouteCache cache(tb.pool_gpsr(), cfg);
  const auto src = tb.pool_network().nearest_node({0, 0});
  const auto dst = tb.pool_network().nearest_node(
      {tb.pool_network().field().max_x, tb.pool_network().field().max_y});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.route_to_node(src, dst));
  }
}
BENCHMARK(BM_CachedRouteAcrossField);

void BM_CachedRouteIntoScratch(benchmark::State& state) {
  // The scratch-handle form of the same cached route: after the first
  // miss every iteration is a hash lookup plus a capacity-reusing
  // copy-assign into the warm out-parameter — no allocation at all.
  auto& tb = shared_testbed();
  routing::RouteCacheConfig cfg;
  cfg.max_hops = 0;
  const routing::RouteCache cache(tb.pool_gpsr(), cfg);
  const auto src = tb.pool_network().nearest_node({0, 0});
  const auto dst = tb.pool_network().nearest_node(
      {tb.pool_network().field().max_x, tb.pool_network().field().max_y});
  routing::RouteResult scratch;
  for (auto _ : state) {
    cache.route_to_node_into(src, dst, scratch);
    benchmark::DoNotOptimize(scratch.path.data());
  }
}
BENCHMARK(BM_CachedRouteIntoScratch);

void BM_PathBufferHeap(benchmark::State& state) {
  // One heap vector per route, the pre-pool allocation pattern: malloc,
  // grow to a typical cross-field path length, free.
  for (auto _ : state) {
    std::vector<net::NodeId> path;
    path.reserve(32);
    benchmark::DoNotOptimize(path.data());
  }
}
BENCHMARK(BM_PathBufferHeap);

void BM_PathBufferPooled(benchmark::State& state) {
  // The same buffer churn through a BufferPool free-list: after the
  // first trip the reserve is a no-op on recycled capacity.
  common::BufferPool<net::NodeId> pool(true);
  for (auto _ : state) {
    auto path = pool.acquire();
    path.reserve(32);
    benchmark::DoNotOptimize(path.data());
    pool.release(std::move(path));
  }
}
BENCHMARK(BM_PathBufferPooled);

void BM_WithinScanReturning(benchmark::State& state) {
  // Radius scan materializing a fresh result vector per call.
  auto& net = shared_testbed().pool_network();
  const Point center{net.field().width() / 2, net.field().height() / 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.nodes_within(center, 80.0));
  }
}
BENCHMARK(BM_WithinScanReturning);

void BM_WithinScanIntoScratch(benchmark::State& state) {
  // The out-parameter form over the same index: the scratch vector's
  // capacity survives across calls, so a warm scan never allocates.
  auto& net = shared_testbed().pool_network();
  std::vector<Point> points;
  for (net::NodeId n = 0; n < net.size(); ++n)
    points.push_back(net.position(n));
  net::SpatialIndex index(points, net.field(), 40.0);
  const Point center{net.field().width() / 2, net.field().height() / 2};
  std::vector<std::size_t> scratch;
  for (auto _ : state) {
    index.within(center, 80.0, scratch, /*sorted=*/false);
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_WithinScanIntoScratch);

void BM_EventQueueChurn(benchmark::State& state) {
  // Steady-state enqueue/dequeue with 64 events resident: the explicit
  // binary heap moves events out on pop and keeps its backing storage,
  // so the churn runs allocation-free.
  sim::EventQueue q;
  double t = 0;
  for (int i = 0; i < 64; ++i) q.push(t++, [] {});
  for (auto _ : state) {
    q.push(t++, [] {});
    auto ev = q.pop();
    benchmark::DoNotOptimize(ev.time);
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_PoolInsert(benchmark::State& state) {
  benchsup::TestbedConfig config;
  config.nodes = 300;
  config.seed = 7;
  benchsup::Testbed tb(config);
  query::EventGenerator gen({.dims = 3}, 8);
  for (auto _ : state) {
    const auto e = gen.next(0);
    benchmark::DoNotOptimize(tb.pool().insert(0, e));
  }
}
BENCHMARK(BM_PoolInsert);

void BM_PoolQueryExact(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::QueryGenerator qgen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential,
       .exp_mean = 0.1},
      9);
  for (auto _ : state) {
    const auto q = qgen.exact_range();
    benchmark::DoNotOptimize(tb.pool().query(0, q));
  }
}
BENCHMARK(BM_PoolQueryExact);

void BM_DimQueryExact(benchmark::State& state) {
  auto& tb = shared_testbed();
  query::QueryGenerator qgen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential,
       .exp_mean = 0.1},
      9);
  for (auto _ : state) {
    const auto q = qgen.exact_range();
    benchmark::DoNotOptimize(tb.dim().query(0, q));
  }
}
BENCHMARK(BM_DimQueryExact);

}  // namespace

BENCHMARK_MAIN();
