// Ablation: sensitivity of Pool to the pool side length l (DESIGN.md §4).
//
// Smaller l means fewer, coarser cells — less pruning but shorter intra-
// pool forwarding; larger l sharpens pruning but multiplies subquery legs.
// The paper fixes l = 10 without discussion; this bench maps the tradeoff.
#include <cstdio>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

namespace {
struct SeedRun {
  sim::RunningStat exact_msgs, exact_cells, part_msgs, part_cells, results;
  std::size_t mismatches = 0;
};
}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Ablation — pool side length l",
               "900 nodes; 3-d queries (exact uniform-size and 1-partial); "
               "Pool message cost and pruning as l varies.");

  constexpr int kSeeds = 3;
  constexpr int kQueries = 60;

  const std::vector<std::uint32_t> sides = {4u, 6u, 8u, 10u, 12u, 16u, 20u};
  struct Job {
    std::size_t group;
    std::uint32_t side;
    int seed;
  };
  std::vector<Job> grid;
  for (std::size_t g = 0; g < sides.size(); ++g)
    for (int seed = 1; seed <= kSeeds; ++seed) grid.push_back({g, sides[g], seed});

  const auto runs = parallel_map<SeedRun>(
      grid.size(), opts.threads, [&grid, &opts](std::size_t i) {
        const auto [group, side, seed] = grid[i];
        (void)group;
        TestbedConfig config;
        config.nodes = 900;
        config.seed = static_cast<std::uint64_t>(seed);
        config.pool.side = side;
        config.route_cache = opts.route_cache;
        Testbed tb(config);
        tb.insert_workload();

        query::QueryGenerator qgen(
            {.dims = 3}, static_cast<std::uint64_t>(seed) * 41 + side);
        Rng sink_rng(static_cast<std::uint64_t>(seed) * 43 + side);
        SeedRun out;
        for (int q = 0; q < kQueries; ++q) {
          const auto qe = qgen.exact_range();
          const auto sink = tb.random_node(sink_rng);
          const auto re = tb.pool().query(sink, qe);
          out.exact_msgs.add(static_cast<double>(re.messages));
          out.exact_cells.add(static_cast<double>(re.index_nodes_visited));
          out.results.add(static_cast<double>(re.events.size()));
          if (re.events.size() != tb.oracle().matching(qe).size())
            ++out.mismatches;

          const auto qp = qgen.partial_range(1);
          const auto rp = tb.pool().query(sink, qp);
          out.part_msgs.add(static_cast<double>(rp.messages));
          out.part_cells.add(static_cast<double>(rp.index_nodes_visited));
        }
        return out;
      });

  TablePrinter table({"l", "exact msgs", "exact cells", "1-partial msgs",
                      "1-partial cells", "exact results"});
  for (std::size_t g = 0; g < sides.size(); ++g) {
    SeedRun total;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].group != g) continue;
      total.exact_msgs.merge(runs[i].exact_msgs);
      total.exact_cells.merge(runs[i].exact_cells);
      total.part_msgs.merge(runs[i].part_msgs);
      total.part_cells.merge(runs[i].part_cells);
      total.results.merge(runs[i].results);
      total.mismatches += runs[i].mismatches;
    }
    if (total.mismatches != 0) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at l=%u\n", sides[g]);
      return 1;
    }
    table.add_row({std::to_string(sides[g]), fmt(total.exact_msgs.mean()),
                   fmt(total.exact_cells.mean()), fmt(total.part_msgs.mean()),
                   fmt(total.part_cells.mean()), fmt(total.results.mean())});
  }
  table.print();
  std::printf(
      "\nExpected shape: under the per-node reply convention, message cost "
      "rises with l (more cells answer) while the visited FRACTION of the "
      "l*l grid falls (pruning sharpens) and per-node storage granularity "
      "improves; the paper's l = 10 balances messaging against per-cell "
      "load concentration.\n");
  return 0;
}
