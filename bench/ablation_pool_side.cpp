// Ablation: sensitivity of Pool to the pool side length l (DESIGN.md §4).
//
// Smaller l means fewer, coarser cells — less pruning but shorter intra-
// pool forwarding; larger l sharpens pruning but multiplies subquery legs.
// The paper fixes l = 10 without discussion; this bench maps the tradeoff.
#include <cstdio>

#include "bench_support/experiment.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main() {
  print_banner("Ablation — pool side length l",
               "900 nodes; 3-d queries (exact uniform-size and 1-partial); "
               "Pool message cost and pruning as l varies.");

  constexpr int kSeeds = 3;
  constexpr int kQueries = 60;

  TablePrinter table({"l", "exact msgs", "exact cells", "1-partial msgs",
                      "1-partial cells", "exact results"});
  for (const std::uint32_t side : {4u, 6u, 8u, 10u, 12u, 16u, 20u}) {
    sim::RunningStat exact_msgs, exact_cells, part_msgs, part_cells, results;
    std::size_t mismatches = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      TestbedConfig config;
      config.nodes = 900;
      config.seed = static_cast<std::uint64_t>(seed);
      config.pool.side = side;
      Testbed tb(config);
      tb.insert_workload();

      query::QueryGenerator qgen({.dims = 3},
                                 static_cast<std::uint64_t>(seed) * 41 + side);
      Rng sink_rng(static_cast<std::uint64_t>(seed) * 43 + side);
      for (int i = 0; i < kQueries; ++i) {
        const auto qe = qgen.exact_range();
        const auto sink = tb.random_node(sink_rng);
        const auto re = tb.pool().query(sink, qe);
        exact_msgs.add(static_cast<double>(re.messages));
        exact_cells.add(static_cast<double>(re.index_nodes_visited));
        results.add(static_cast<double>(re.events.size()));
        if (re.events.size() != tb.oracle().matching(qe).size()) ++mismatches;

        const auto qp = qgen.partial_range(1);
        const auto rp = tb.pool().query(sink, qp);
        part_msgs.add(static_cast<double>(rp.messages));
        part_cells.add(static_cast<double>(rp.index_nodes_visited));
      }
    }
    if (mismatches != 0) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at l=%u\n", side);
      return 1;
    }
    table.add_row({std::to_string(side), fmt(exact_msgs.mean()),
                   fmt(exact_cells.mean()), fmt(part_msgs.mean()),
                   fmt(part_cells.mean()), fmt(results.mean())});
  }
  table.print();
  std::printf(
      "\nExpected shape: under the per-node reply convention, message cost "
      "rises with l (more cells answer) while the visited FRACTION of the "
      "l*l grid falls (pruning sharpens) and per-node storage granularity "
      "improves; the paper's l = 10 balances messaging against per-cell "
      "load concentration.\n");
  return 0;
}
