// Ablation: event dimensionality k (the paper evaluates only k = 3).
//
// Pool scales the number of pools linearly with k while keeping two
// mapping dimensions; DIM's k-d splits get coarser per attribute as k
// grows. This bench extends Figure 7(a)'s comparison across k.
#include <cstdio>

#include "bench_support/experiment.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main() {
  print_banner("Ablation — event dimensionality k",
               "900 nodes; exact (exp sizes) and 1-partial queries; both "
               "systems as k varies (paper: k=3 only).");

  constexpr int kSeeds = 3;
  constexpr int kQueries = 50;

  TablePrinter table({"k", "exact Pool", "exact DIM", "1-part Pool",
                      "1-part DIM", "1-part DIM/Pool"});
  for (const std::size_t dims : {std::size_t{2}, std::size_t{3},
                                 std::size_t{4}, std::size_t{5},
                                 std::size_t{6}}) {
    PairedRun exact_total, partial_total;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      TestbedConfig config;
      config.nodes = 900;
      config.dims = dims;
      config.seed = static_cast<std::uint64_t>(seed);
      Testbed tb(config);
      tb.insert_workload();
      query::QueryGenerator qgen(
          {.dims = dims,
           .dist = query::RangeSizeDistribution::Exponential,
           .exp_mean = 0.1},
          static_cast<std::uint64_t>(seed) * 47 + dims);
      merge_into(exact_total,
                 run_paired_queries(
                     tb,
                     generate_queries(kQueries,
                                      [&] { return qgen.exact_range(); }),
                     seed * 3 + 11));
      merge_into(partial_total,
                 run_paired_queries(
                     tb,
                     generate_queries(kQueries,
                                      [&] { return qgen.partial_range(1); }),
                     seed * 3 + 12));
    }
    if (exact_total.pool_mismatches || exact_total.dim_mismatches ||
        partial_total.pool_mismatches || partial_total.dim_mismatches) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at k=%zu\n", dims);
      return 1;
    }
    table.add_row(
        {std::to_string(dims), fmt(exact_total.pool.messages.mean()),
         fmt(exact_total.dim.messages.mean()),
         fmt(partial_total.pool.messages.mean()),
         fmt(partial_total.dim.messages.mean()),
         fmt(partial_total.dim.messages.mean() /
                 partial_total.pool.messages.mean(),
             2)});
  }
  table.print();
  std::printf(
      "\nExpected shape: more dimensions make conjunctive queries more "
      "selective, so absolute costs FALL with k for both systems; Pool's "
      "partial-match advantage is largest at small k and persists "
      "throughout.\n");
  return 0;
}
