// Ablation: event dimensionality k (the paper evaluates only k = 3).
//
// Pool scales the number of pools linearly with k while keeping two
// mapping dimensions; DIM's k-d splits get coarser per attribute as k
// grows. This bench extends Figure 7(a)'s comparison across k.
#include <cstdio>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "query/query_gen.h"

using namespace poolnet;
using namespace poolnet::benchsup;

namespace {
// One (k, seed) testbed yields BOTH batches from a single generator
// stream (the partial queries continue where the exact draws stopped),
// so the pair stays one job.
struct SeedRun {
  PairedRun exact;
  PairedRun partial;
};
}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv);
  print_banner("Ablation — event dimensionality k",
               "900 nodes; exact (exp sizes) and 1-partial queries; both "
               "systems as k varies (paper: k=3 only).");

  constexpr int kSeeds = 3;
  constexpr int kQueries = 50;

  const std::vector<std::size_t> all_dims = {2, 3, 4, 5, 6};
  struct Job {
    std::size_t group;
    std::size_t dims;
    int seed;
  };
  std::vector<Job> grid;
  for (std::size_t g = 0; g < all_dims.size(); ++g)
    for (int seed = 1; seed <= kSeeds; ++seed)
      grid.push_back({g, all_dims[g], seed});

  const auto runs = parallel_map<SeedRun>(
      grid.size(), opts.threads, [&grid, &opts](std::size_t i) {
        const auto [group, dims, seed] = grid[i];
        (void)group;
        TestbedConfig config;
        config.nodes = 900;
        config.dims = dims;
        config.seed = static_cast<std::uint64_t>(seed);
        config.route_cache = opts.route_cache;
        Testbed tb(config);
        tb.insert_workload();
        query::QueryGenerator qgen(
            {.dims = dims,
             .dist = query::RangeSizeDistribution::Exponential,
             .exp_mean = 0.1},
            static_cast<std::uint64_t>(seed) * 47 + dims);
        SeedRun out;
        out.exact = run_paired_queries(
            tb, generate_queries(kQueries, [&] { return qgen.exact_range(); }),
            seed * 3 + 11);
        out.partial = run_paired_queries(
            tb,
            generate_queries(kQueries, [&] { return qgen.partial_range(1); }),
            seed * 3 + 12);
        return out;
      });

  TablePrinter table({"k", "exact Pool", "exact DIM", "1-part Pool",
                      "1-part DIM", "1-part DIM/Pool"});
  for (std::size_t g = 0; g < all_dims.size(); ++g) {
    PairedRun exact_total, partial_total;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].group != g) continue;
      merge_into(exact_total, runs[i].exact);
      merge_into(partial_total, runs[i].partial);
    }
    if (exact_total.pool_mismatches || exact_total.dim_mismatches ||
        partial_total.pool_mismatches || partial_total.dim_mismatches) {
      std::fprintf(stderr, "CORRECTNESS VIOLATION at k=%zu\n", all_dims[g]);
      return 1;
    }
    table.add_row(
        {std::to_string(all_dims[g]), fmt(exact_total.pool.messages.mean()),
         fmt(exact_total.dim.messages.mean()),
         fmt(partial_total.pool.messages.mean()),
         fmt(partial_total.dim.messages.mean()),
         fmt(partial_total.dim.messages.mean() /
                 partial_total.pool.messages.mean(),
             2)});
  }
  table.print();
  std::printf(
      "\nExpected shape: more dimensions make conjunctive queries more "
      "selective, so absolute costs FALL with k for both systems; Pool's "
      "partial-match advantage is largest at small k and persists "
      "throughout.\n");
  return 0;
}
