// poolnet_cli — run a configurable DCS experiment from the command line.
//
//   $ poolnet_cli --nodes 900 --query-type 1-partial --systems pool,dim
//   $ poolnet_cli --nodes 1500 --seeds 5 --csv results.csv
//
// Every run cross-checks all result sets against a brute-force oracle;
// nonzero mismatches (a bug) make the exit status nonzero.
#include <cstdio>
#include <iostream>

#include "bench_support/parallel.h"
#include "cli/args.h"
#include "cli/runner.h"

using namespace poolnet;

namespace {

bool parse_systems(const std::string& raw,
                   std::vector<cli::SystemChoice>* out, std::string* error) {
  std::size_t start = 0;
  while (start <= raw.size()) {
    const auto comma = raw.find(',', start);
    const std::string token =
        raw.substr(start, comma == std::string::npos ? raw.size() - start
                                                     : comma - start);
    if (token == "pool") {
      out->push_back(cli::SystemChoice::Pool);
    } else if (token == "dim") {
      out->push_back(cli::SystemChoice::Dim);
    } else if (token == "ght") {
      out->push_back(cli::SystemChoice::Ght);
    } else if (token == "central") {
      out->push_back(cli::SystemChoice::Central);
    } else if (token == "all") {
      *out = {cli::SystemChoice::Pool, cli::SystemChoice::Dim,
              cli::SystemChoice::Ght, cli::SystemChoice::Central};
    } else {
      *error = "--systems: unknown system '" + token + "'";
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser parser(
      "poolnet_cli",
      "run a Pool/DIM/GHT sensor-network storage experiment");
  parser.add_option("systems", "pool,dim",
                    "comma-separated: pool, dim, ght, central, or all");
  parser.add_option("nodes", "900", "network size (sensors)");
  parser.add_option("dims", "3", "event dimensionality k");
  parser.add_option("events-per-node", "3", "workload volume");
  parser.add_option("queries", "50", "queries per deployment");
  parser.add_option("query-type", "exact",
                    "exact, 1-partial, 2-partial or point");
  parser.add_option("query-class", "range",
                    "query class: range, skyline, knn or mix");
  parser.add_option("size-dist", "exponential",
                    "range size distribution: uniform or exponential");
  parser.add_option("workload", "uniform",
                    "event values: uniform, gaussian or hotspot");
  parser.add_option("seed", "1", "master random seed");
  parser.add_option("seeds", "1", "number of deployments to average");
  parser.add_option("pool-side", "10", "Pool side length l (cells)");
  parser.add_option("cell-size", "5.0", "Pool cell size alpha (meters)");
  parser.add_flag("sharing", "enable Pool workload sharing (Section 4.2)");
  parser.add_option("share-threshold", "32",
                    "events per node before delegation");
  parser.add_option("replicas", "0",
                    "resilience mirrors per event (0..dims-1)");
  parser.add_option("csv", "", "append results to this CSV file");
  parser.add_option("threads", "0",
                    "parallel deployments (0 = hardware concurrency, "
                    "1 = serial)");
  parser.add_option("route-cache", "on",
                    "route memoization: on, off or lru:<bytes> (k/m/g "
                    "suffixes ok)");
  cli::add_engine_options(parser);
  cli::add_fault_options(parser);
  cli::add_telemetry_options(parser);
  cli::add_store_options(parser);

  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n\n%s", error.c_str(),
                 parser.help().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::fputs(parser.help().c_str(), stdout);
    return 0;
  }

  cli::CliConfig config;
  if (!parse_systems(parser.option("systems"), &config.systems, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  const auto nodes = parser.int_option("nodes", 10, 100000, &error);
  const auto dims = parser.int_option("dims", 1, 8, &error);
  const auto epn = parser.int_option("events-per-node", 0, 1000, &error);
  const auto queries = parser.int_option("queries", 1, 100000, &error);
  const auto seed = parser.int_option("seed", 0, INT64_MAX, &error);
  const auto seeds = parser.int_option("seeds", 1, 1000, &error);
  const auto pool_side = parser.int_option("pool-side", 1, 64, &error);
  const auto cell_size = parser.double_option("cell-size", 0.5, 1000, &error);
  const auto threshold =
      parser.int_option("share-threshold", 1, 1 << 20, &error);
  const auto replicas = parser.int_option("replicas", 0, 7, &error);
  const auto threads = parser.int_option("threads", 0, 1024, &error);
  const auto qtype = parser.choice_option(
      "query-type", {"exact", "1-partial", "2-partial", "point"}, &error);
  const auto sdist =
      parser.choice_option("size-dist", {"uniform", "exponential"}, &error);
  const auto wl = parser.choice_option(
      "workload", {"uniform", "gaussian", "hotspot", "exponential"}, &error);
  if (!nodes || !dims || !epn || !queries || !seed || !seeds || !pool_side ||
      !cell_size || !threshold || !replicas || !threads || !qtype || !sdist ||
      !wl) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!routing::parse_route_cache_spec(parser.option("route-cache"),
                                       &config.route_cache, &error)) {
    std::fprintf(stderr, "error: --route-cache: %s\n", error.c_str());
    return 2;
  }
  if (!cli::parse_engine_options(parser, &config.engine, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!cli::parse_fault_options(parser, &config.faults, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!cli::parse_telemetry_options(parser, &config.telemetry, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!cli::parse_store_options(parser, &config.store, &error)) {
    std::fprintf(stderr, "error: --store: %s\n", error.c_str());
    return 2;
  }
  if (!query::parse_query_class(parser.option("query-class"),
                                &config.query_class, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  config.nodes = static_cast<std::size_t>(*nodes);
  config.dims = static_cast<std::size_t>(*dims);
  config.events_per_node = static_cast<std::size_t>(*epn);
  config.queries = static_cast<std::size_t>(*queries);
  config.seed = static_cast<std::uint64_t>(*seed);
  config.deployments = static_cast<std::size_t>(*seeds);
  config.pool.side = static_cast<std::uint32_t>(*pool_side);
  config.pool.cell_size = *cell_size;
  config.pool.workload_sharing = parser.flag("sharing");
  config.pool.share_threshold = static_cast<std::uint32_t>(*threshold);
  config.pool.replicas = static_cast<std::uint32_t>(*replicas);
  config.csv_path = parser.option("csv");
  config.threads = *threads == 0 ? benchsup::default_threads()
                                 : static_cast<std::size_t>(*threads);

  config.flavor = *qtype == "exact"       ? cli::QueryFlavor::Exact
                  : *qtype == "1-partial" ? cli::QueryFlavor::OnePartial
                  : *qtype == "2-partial" ? cli::QueryFlavor::TwoPartial
                                          : cli::QueryFlavor::Point;
  config.size_dist = *sdist == "uniform"
                         ? query::RangeSizeDistribution::Uniform
                         : query::RangeSizeDistribution::Exponential;
  config.workload = *wl == "uniform"    ? query::ValueDistribution::Uniform
                    : *wl == "gaussian" ? query::ValueDistribution::Gaussian
                    : *wl == "hotspot"  ? query::ValueDistribution::Hotspot
                                        : query::ValueDistribution::Exponential;

  try {
    const auto results = cli::run_experiment(config, std::cout);
    // With live failures the oracle intentionally over-counts (it still
    // holds destroyed events); degradation is reported as recall instead
    // of failing the run.
    for (const auto& r : results) {
      if (!config.faults.enabled() && r.mismatches != 0) {
        std::fprintf(stderr,
                     "CORRECTNESS VIOLATION: %s mismatched the oracle on "
                     "%zu queries\n",
                     cli::to_string(r.system), r.mismatches);
        return 1;
      }
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return 0;
}
