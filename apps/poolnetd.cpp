// poolnetd — serve a deployed Pool/DIM/GHT testbed over TCP.
//
//   $ poolnetd --system pool --nodes 300 --batch 16 --port 7632
//   poolnetd: pool over 300 nodes (900 events), engine batch=16
//   poolnetd: listening on 127.0.0.1:7632
//
// Clients speak the length-prefixed frame protocol of
// docs/wire_protocol.md; SIGTERM/SIGINT drains — every admitted query is
// answered before the process exits 0.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <iostream>

#include "bench_support/telemetry_bridge.h"
#include "cli/args.h"
#include "obs/telemetry.h"
#include "server/server.h"

using namespace poolnet;

namespace {

std::atomic<int> g_stop{0};

void on_signal(int) { g_stop.store(1); }

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser parser("poolnetd",
                        "serve a Pool/DIM/GHT/central deployment over TCP");
  parser.add_option("system", "pool",
                    "which DCS system: pool, dim, ght or central");
  parser.add_option("host", "127.0.0.1", "listen address");
  parser.add_option("port", "0", "listen port (0 = ephemeral)");
  parser.add_option("nodes", "300", "network size (sensors)");
  parser.add_option("dims", "3", "event dimensionality k");
  parser.add_option("events-per-node", "3", "workload preloaded per node");
  parser.add_option("seed", "1", "master random seed");
  parser.add_option("max-inflight", "16",
                    "admitted statements per client before rejection");
  parser.add_option("max-pending", "1024",
                    "admitted statements server-wide before rejection");
  parser.add_option("flush-interval-us", "2000",
                    "partial epochs flush after this idle time");
  cli::add_engine_options(parser);
  cli::add_telemetry_options(parser);
  cli::add_store_options(parser);

  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n\n%s", error.c_str(),
                 parser.help().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::fputs(parser.help().c_str(), stdout);
    return 0;
  }

  server::ServerConfig config;
  const auto port = parser.int_option("port", 0, 65535, &error);
  const auto nodes = parser.int_option("nodes", 10, 100000, &error);
  const auto dims = parser.int_option("dims", 1, 8, &error);
  const auto epn = parser.int_option("events-per-node", 0, 1000, &error);
  const auto seed = parser.int_option("seed", 0, INT64_MAX, &error);
  const auto inflight = parser.int_option("max-inflight", 1, 1 << 20, &error);
  const auto pending = parser.int_option("max-pending", 1, 1 << 24, &error);
  const auto flush_us =
      parser.int_option("flush-interval-us", 1, 10'000'000, &error);
  obs::TelemetryConfig telemetry;
  if (!port || !nodes || !dims || !epn || !seed || !inflight || !pending ||
      !flush_us ||
      !server::parse_system_kind(parser.option("system"),
                                 &config.backend.system, &error) ||
      !cli::parse_engine_options(parser, &config.backend.engine, &error) ||
      !cli::parse_telemetry_options(parser, &telemetry, &error) ||
      !cli::parse_store_options(parser, &config.backend.store, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  config.host = parser.option("host");
  config.port = static_cast<std::uint16_t>(*port);
  config.backend.nodes = static_cast<std::size_t>(*nodes);
  config.backend.dims = static_cast<std::size_t>(*dims);
  config.backend.events_per_node = static_cast<std::size_t>(*epn);
  config.backend.seed = static_cast<std::uint64_t>(*seed);
  config.max_inflight_per_client = static_cast<std::size_t>(*inflight);
  config.max_pending_global = static_cast<std::size_t>(*pending);
  config.flush_interval_us = static_cast<std::uint64_t>(*flush_us);

  try {
    server::Server server(config);

    struct sigaction sa{};
    sa.sa_handler = on_signal;  // no SA_RESTART: pause() must wake
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    server.start();
    std::printf("poolnetd: %s over %zu nodes (%llu events), engine batch=%zu\n",
                server::to_string(config.backend.system), config.backend.nodes,
                static_cast<unsigned long long>(
                    server.backend().preloaded_events()),
                std::max<std::size_t>(1, config.backend.engine.batch_size));
    std::printf("poolnetd: listening on %s:%u\n", config.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    while (g_stop.load() == 0) pause();

    std::printf("poolnetd: draining...\n");
    std::fflush(stdout);
    server.stop();

    const server::ServerStats stats = server.stats();
    std::printf(
        "poolnetd: served %llu connections, %llu queries, %llu inserts "
        "(%llu rejected, %llu parse errors) over %llu epochs\n",
        static_cast<unsigned long long>(stats.connections),
        static_cast<unsigned long long>(stats.queries_out),
        static_cast<unsigned long long>(stats.inserts),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.parse_errors),
        static_cast<unsigned long long>(stats.epochs));

    if (telemetry.wants_metrics()) {
      const obs::Snapshot snap =
          benchsup::scrape_testbed(server.backend().testbed());
      obs::emit_snapshot(telemetry, snap, std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "poolnetd: %s\n", e.what());
    return 1;
  }
}
