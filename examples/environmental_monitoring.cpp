// Environmental monitoring: the paper's motivating scenario. A 4-attribute
// deployment (temperature, humidity, light, barometric pressure — the
// Crossbow MEP sensor suite cited in the introduction) runs a day-long
// simulated schedule on the discrete-event engine: sensors take readings
// every 15 simulated minutes with a mid-day heat wave, and an operator
// issues partial-match range queries on the hour.
//
//   $ ./examples/environmental_monitoring
#include <cstdio>

#include "core/pool_system.h"
#include "net/deployment.h"
#include "net/network.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "sim/simulator.h"
#include "storage/range_query.h"

using namespace poolnet;

namespace {

constexpr std::size_t kDims = 4;  // temp, humidity, light, pressure
constexpr double kMinute = 60.0;
constexpr double kHour = 60.0 * kMinute;

// Diurnal profile for a given simulation time: temperatures and light
// peak mid-day; a heat wave pushes the afternoon into the query range.
storage::Event sample_reading(sim::Time now, net::NodeId node, Rng& rng,
                              std::uint64_t id) {
  const double day_frac = now / (24.0 * kHour);
  const double diurnal = 0.5 - 0.5 * std::cos(2 * 3.14159265 * day_frac);
  storage::Event e;
  e.id = id;
  e.source = node;
  const double temp = std::clamp(
      0.25 + 0.55 * diurnal + rng.normal(0.0, 0.04), 0.0, 1.0);
  const double humidity = std::clamp(
      0.75 - 0.45 * diurnal + rng.normal(0.0, 0.05), 0.0, 1.0);
  const double light = std::clamp(diurnal + rng.normal(0.0, 0.05), 0.0, 1.0);
  const double pressure =
      std::clamp(0.5 + rng.normal(0.0, 0.03), 0.0, 1.0);
  e.values = {temp, humidity, light, pressure};
  return e;
}

}  // namespace

int main() {
  // Deployment: 500 sensors at the paper's density.
  const std::size_t kNodes = 500;
  const double side = net::field_side_for_density(kNodes, 40.0, 20.0);
  const Rect field{0.0, 0.0, side, side};
  Rng rng(99);
  auto positions = net::deploy_uniform(kNodes, field, rng);
  net::Network network(std::move(positions), field, 40.0);
  const routing::Gpsr gpsr(network);
  core::PoolSystem pool(network, gpsr, kDims, core::PoolConfig{});
  std::printf("monitoring deployment: %zu sensors, %zu pools, field %.0f m\n\n",
              network.size(), pool.layout().pool_count(), side);

  sim::Simulator simulator;
  Rng noise = rng.split();
  std::uint64_t next_id = 1;

  // Sensing rounds: every node reads all four attributes every 15 min.
  std::function<void()> sensing_round = [&] {
    for (net::NodeId n = 0; n < network.size(); ++n) {
      pool.insert(n, sample_reading(simulator.now(), n, noise, next_id++));
    }
    if (simulator.now() + 15 * kMinute < 24 * kHour)
      simulator.schedule_in(15 * kMinute, sensing_round);
  };
  simulator.schedule_at(0.0, sensing_round);

  // The operator's standing queries, issued from a random sink on the
  // hour: "heat stress" is hot AND dry with light and pressure don't-care
  // — a 2-partial match range query, the paper's hardest type.
  std::printf("%-6s %-14s %-14s %-12s %-10s\n", "hour", "readings",
              "heat-stress", "msgs/query", "cells");
  std::printf("--------------------------------------------------------\n");
  Rng sink_rng = rng.split();
  std::function<void()> hourly_query = [&] {
    storage::RangeQuery::Bounds b{{0.7, 1.0}, {0.0, 0.35}, {0, 0}, {0, 0}};
    FixedVec<bool, storage::kMaxDims> spec{true, true, false, false};
    const storage::RangeQuery heat_stress(b, spec);
    const auto sink = static_cast<net::NodeId>(
        sink_rng.uniform_int(0, static_cast<std::int64_t>(kNodes) - 1));
    const auto r = pool.query(sink, heat_stress);
    std::printf("%-6.0f %-14zu %-14zu %-12llu %-10zu\n",
                simulator.now() / kHour, pool.stored_count(),
                r.events.size(),
                static_cast<unsigned long long>(r.messages),
                r.index_nodes_visited);
    if (simulator.now() + 2 * kHour < 24 * kHour)
      simulator.schedule_in(2 * kHour, hourly_query);
  };
  simulator.schedule_at(1 * kHour, hourly_query);

  simulator.run();

  std::printf("\nsimulated 24 h: %zu readings stored, %llu total messages, "
              "%.2f J total radio energy\n",
              pool.stored_count(),
              static_cast<unsigned long long>(network.traffic().total),
              network.traffic().energy_j);
  // The heat wave appears as a rising heat-stress count through mid-day
  // and a decline toward midnight — retrieved with bounded per-query cost
  // even as the store grows, which is Pool's core claim.
  return 0;
}
