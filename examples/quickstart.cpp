// Quickstart: deploy a sensor network, bring up the Pool storage scheme,
// insert multi-dimensional events, and run every query type the paper
// supports. Walks the whole public API in ~100 lines.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/pool_system.h"
#include "net/deployment.h"
#include "net/network.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "storage/range_query.h"

using namespace poolnet;

int main() {
  // 1. Deploy 400 sensors uniformly at the paper's density: radio range
  //    40 m, ~20 neighbors per node.
  const std::size_t kNodes = 400;
  const double side = net::field_side_for_density(kNodes, 40.0, 20.0);
  const Rect field{0.0, 0.0, side, side};
  Rng rng(2024);
  auto positions = net::deploy_uniform(kNodes, field, rng);
  net::Network network(std::move(positions), field, 40.0);
  std::printf("deployed %zu sensors on a %.0f m field (avg degree %.1f, %s)\n",
              network.size(), side, network.average_degree(),
              network.is_connected() ? "connected" : "DISCONNECTED");

  // 2. GPSR is the routing substrate; Pool builds on top of it.
  const routing::Gpsr gpsr(network);

  // 3. Bring up Pool for 3-dimensional events (temperature, humidity,
  //    light — all normalized to [0,1]). alpha = 5 m cells, l = 10.
  core::PoolConfig config;
  config.cell_size = 5.0;
  config.side = 10;
  core::PoolSystem pool(network, gpsr, /*dims=*/3, config);
  std::printf("pool layout: %zu pools of %ux%u cells, pivots",
              pool.layout().pool_count(), config.side, config.side);
  for (std::size_t p = 0; p < pool.layout().pool_count(); ++p) {
    const auto pc = pool.layout().pivot(p);
    std::printf(" C(%d,%d)", pc.x, pc.y);
  }
  std::printf("\n\n");

  // 4. Every sensor detects three events and stores them through Pool.
  query::EventGenerator events({.dims = 3}, /*seed=*/7);
  std::uint64_t insert_msgs = 0;
  for (net::NodeId n = 0; n < network.size(); ++n) {
    for (int i = 0; i < 3; ++i) {
      insert_msgs += pool.insert(n, events.next(n)).messages;
    }
  }
  std::printf("inserted %zu events with %llu messages (%.2f msgs/event)\n\n",
              pool.stored_count(),
              static_cast<unsigned long long>(insert_msgs),
              static_cast<double>(insert_msgs) /
                  static_cast<double>(pool.stored_count()));

  // 5. Queries. A sink node (any sensor) issues them; costs are message
  //    counts over GPSR paths, the paper's metric.
  const net::NodeId sink = network.nearest_node(field.center());
  const auto report = [&](const char* label, const storage::RangeQuery& q) {
    const auto r = pool.query(sink, q);
    std::printf("%-28s %-32s -> %3zu events, %4llu msgs "
                "(%llu query + %llu reply), %zu cells visited\n",
                label, storage::to_string(q.type()), r.events.size(),
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.query_messages),
                static_cast<unsigned long long>(r.reply_messages),
                r.index_nodes_visited);
  };

  // Exact-match range query: all three attributes bounded.
  report("hot+humid+bright corner:",
         storage::RangeQuery({{0.7, 0.9}, {0.6, 0.8}, {0.5, 1.0}}));

  // Partial-match range query: the paper's specialty. '*' dimensions are
  // passed via the specified-mask constructor.
  {
    storage::RangeQuery::Bounds b{{0, 0}, {0, 0}, {0.8, 0.84}};
    FixedVec<bool, storage::kMaxDims> spec{false, false, true};
    report("very bright, rest *:", storage::RangeQuery(b, spec));
  }

  // Exact-match point query.
  {
    const auto probe = events.next(0);  // a fresh event nobody stored
    storage::RangeQuery::Bounds b;
    for (std::size_t d = 0; d < 3; ++d)
      b.push_back({probe.values[d], probe.values[d]});
    report("point probe (miss):", storage::RangeQuery(b));
  }

  // Partial-match point query.
  {
    storage::RangeQuery::Bounds b{{0.5, 0.5}, {0, 0}, {0, 0}};
    FixedVec<bool, storage::kMaxDims> spec{true, false, false};
    report("temp exactly 0.5, rest *:", storage::RangeQuery(b, spec));
  }

  std::printf("\ntotal network traffic: %llu messages, %.3f J radio energy\n",
              static_cast<unsigned long long>(network.traffic().total),
              network.traffic().energy_j);
  return 0;
}
