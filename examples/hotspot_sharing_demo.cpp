// Hotspot demo: what happens to Pool when the environment misbehaves.
//
// A wildfire-style burst drives most readings into one small value region,
// hammering a handful of cells of one pool. This demo runs the identical
// burst against Pool with workload sharing OFF and ON (Section 4.2) and
// prints the per-node load distribution each way.
//
//   $ ./examples/hotspot_sharing_demo
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/pool_system.h"
#include "net/deployment.h"
#include "net/network.h"
#include "query/workload.h"
#include "routing/gpsr.h"

using namespace poolnet;

namespace {

struct RunResult {
  std::vector<std::uint64_t> loads;  // sorted ascending
  std::uint64_t insert_msgs = 0;
  std::size_t hot_answers = 0;
  std::uint64_t hot_query_msgs = 0;
};

RunResult run_burst(bool sharing) {
  const std::size_t kNodes = 600;
  const double side = net::field_side_for_density(kNodes, 40.0, 20.0);
  const Rect field{0.0, 0.0, side, side};
  Rng rng(4242);  // identical deployment and burst for both runs
  auto positions = net::deploy_uniform(kNodes, field, rng);
  net::Network network(std::move(positions), field, 40.0);
  const routing::Gpsr gpsr(network);

  core::PoolConfig config;
  config.workload_sharing = sharing;
  config.share_threshold = 24;
  core::PoolSystem pool(network, gpsr, 3, config);

  // The burst: 90% of 3000 events cluster around (0.9, 0.88, 0.15) —
  // "very hot, very dry, low pressure" — landing in a few cells of P1.
  query::WorkloadConfig wc;
  wc.dims = 3;
  wc.dist = query::ValueDistribution::Hotspot;
  wc.center = 0.9;
  wc.spread = 0.02;
  wc.hotspot_fraction = 0.9;
  query::EventGenerator gen(wc, 17);
  for (std::size_t i = 0; i < 3000; ++i) {
    const auto src = static_cast<net::NodeId>(i % kNodes);
    pool.insert(src, gen.next(src));
  }

  RunResult out;
  out.insert_msgs = network.traffic().total;
  for (const auto& node : network.nodes())
    out.loads.push_back(node.stored_events);
  std::sort(out.loads.begin(), out.loads.end());

  const storage::RangeQuery fire_zone({{0.8, 1.0}, {0.8, 1.0}, {0.0, 0.3}});
  const auto before = network.traffic().total;
  const auto r = pool.query(0, fire_zone);
  out.hot_answers = r.events.size();
  out.hot_query_msgs = network.traffic().total - before;
  return out;
}

void print_histogram(const RunResult& r) {
  // Log-ish buckets of resident events per node.
  const std::pair<std::uint64_t, std::uint64_t> buckets[] = {
      {0, 0}, {1, 4}, {5, 9}, {10, 24}, {25, 49}, {50, 99}, {100, 1u << 31}};
  for (const auto& [lo, hi] : buckets) {
    std::size_t count = 0;
    for (const auto l : r.loads)
      if (l >= lo && l <= hi) ++count;
    char label[32];
    if (lo == 0 && hi == 0)
      std::snprintf(label, sizeof(label), "      0");
    else if (hi > 1000000)
      std::snprintf(label, sizeof(label), "   100+");
    else
      std::snprintf(label, sizeof(label), "%3llu-%-3llu",
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi));
    std::printf("  %s events : %4zu nodes %s\n", label, count,
                std::string(std::min<std::size_t>(count / 4, 60), '#').c_str());
  }
  std::printf("  max node load: %llu events\n",
              static_cast<unsigned long long>(r.loads.back()));
}

}  // namespace

int main() {
  std::printf("wildfire burst: 3000 events, 90%% clustered near "
              "(0.9, 0.88, 0.15)\n");
  for (const bool sharing : {false, true}) {
    const auto r = run_burst(sharing);
    std::printf("\n--- workload sharing %s ---\n", sharing ? "ON" : "OFF");
    print_histogram(r);
    std::printf("  insert traffic: %llu msgs; fire-zone query: %zu answers, "
                "%llu msgs\n",
                static_cast<unsigned long long>(r.insert_msgs), r.hot_answers,
                static_cast<unsigned long long>(r.hot_query_msgs));
  }
  std::printf(
      "\nWith sharing ON, the overloaded index nodes hand storage to their\n"
      "least-loaded neighbors once they hold 24 events: the worst-case node\n"
      "load collapses while queries keep returning the full answer set.\n");
  return 0;
}
