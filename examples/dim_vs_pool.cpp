// Head-to-head: Pool vs DIM vs centralized collection on one deployment.
//
// A compact rendition of the paper's whole evaluation story: the same
// workload and query mix run against all three storage strategies, with
// per-strategy message costs and a correctness cross-check. Centralized
// collection (ship everything to a base station) is the strawman the DCS
// literature starts from; DIM is the prior art; Pool is the paper.
//
//   $ ./examples/dim_vs_pool
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_support/experiment.h"
#include "bench_support/testbed.h"
#include "query/query_gen.h"
#include "routing/gpsr.h"
#include "storage/brute_force_store.h"

using namespace poolnet;
using namespace poolnet::benchsup;

int main() {
  TestbedConfig config;
  config.nodes = 900;
  config.seed = 5;
  Testbed tb(config);
  std::printf("testbed: %zu sensors, 3-d events, 3 per node\n",
              tb.pool_network().size());
  tb.insert_workload();

  // A third network copy hosts the centralized baseline: every event is
  // shipped to a base station at the field corner at insert time.
  net::Network central_net(
      [&] {
        std::vector<Point> pts;
        for (const auto& n : tb.pool_network().nodes()) pts.push_back(n.pos);
        return pts;
      }(),
      tb.pool_network().field(), config.radio_range);
  const routing::Gpsr central_gpsr(central_net);
  const net::NodeId base = central_net.nearest_node({0.0, 0.0});
  storage::BruteForceStore central(3, central_net, central_gpsr, base);
  for (const auto& e : tb.oracle().all()) central.insert(e.source, e);
  const auto central_insert = central_net.traffic().total;
  central_net.reset_traffic();

  std::printf("insert cost:  Pool %llu msgs | DIM %llu msgs | central %llu "
              "msgs (to corner base station)\n\n",
              static_cast<unsigned long long>(tb.pool_insert_traffic().total),
              static_cast<unsigned long long>(tb.dim_insert_traffic().total),
              static_cast<unsigned long long>(central_insert));

  // Query mix: the paper's four types.
  query::QueryGenerator qgen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential,
       .exp_mean = 0.1},
      55);
  struct Flavor {
    const char* name;
    std::vector<storage::RangeQuery> queries;
  };
  std::vector<Flavor> flavors;
  flavors.push_back({"exact range (exp sizes)",
                     generate_queries(50, [&] { return qgen.exact_range(); })});
  flavors.push_back({"1-partial range",
                     generate_queries(50, [&] { return qgen.partial_range(1); })});
  flavors.push_back({"2-partial range",
                     generate_queries(50, [&] { return qgen.partial_range(2); })});
  flavors.push_back({"exact point",
                     generate_queries(50, [&] { return qgen.exact_point(); })});

  TablePrinter table({"query flavor", "Pool msgs", "DIM msgs", "central msgs",
                      "DIM/Pool", "results", "all exact"});
  Rng sink_rng(77);
  for (auto& flavor : flavors) {
    const auto run = run_paired_queries(tb, flavor.queries, 99);
    sim::RunningStat central_msgs;
    bool central_ok = true;
    for (const auto& q : flavor.queries) {
      const auto sink = tb.random_node(sink_rng);
      const auto before = central_net.traffic().total;
      const auto r = central.query(sink, q);
      central_msgs.add(static_cast<double>(central_net.traffic().total - before));
      if (r.events.size() != tb.oracle().matching(q).size())
        central_ok = false;
    }
    const bool all_ok = run.pool_mismatches == 0 && run.dim_mismatches == 0 &&
                        central_ok;
    table.add_row({flavor.name, fmt(run.pool.messages.mean()),
                   fmt(run.dim.messages.mean()), fmt(central_msgs.mean()),
                   fmt(run.dim.messages.mean() / run.pool.messages.mean(), 2),
                   fmt(run.pool.results.mean(), 1), all_ok ? "yes" : "NO"});
  }
  table.print();

  std::printf(
      "\nReading the table: every strategy returns identical answers; the\n"
      "difference is cost. Centralized pays at insert time (every event\n"
      "crosses the field) and bottlenecks the base station; DIM pays at\n"
      "query time, increasingly so for partial-match queries; Pool bounds\n"
      "both by mapping events to a workload-sized set of index cells.\n");
  return 0;
}
