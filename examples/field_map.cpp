// Renders the paper's figures from a live deployment: writes SVG files
// showing the field with its pools (Figure 2 style) and the footprint of
// a partial-match query with its forwarding routes (Figure 5 style).
//
//   $ ./examples/field_map
//   -> poolnet_field.svg, poolnet_query.svg
#include <cstdio>

#include "net/deployment.h"
#include "net/network.h"
#include "routing/gpsr.h"
#include "viz/field_renderer.h"

using namespace poolnet;

int main() {
  const std::size_t kNodes = 500;
  const double side = net::field_side_for_density(kNodes, 40.0, 20.0);
  const Rect field{0.0, 0.0, side, side};
  Rng rng(12);
  net::Network network(net::deploy_uniform(kNodes, field, rng), field, 40.0);
  const routing::Gpsr gpsr(network);
  core::PoolSystem pool(network, gpsr, 3, core::PoolConfig{});

  // Figure 2 view: the field, grid, three pools, sensors and index nodes.
  {
    viz::FieldRenderer renderer(pool);
    renderer.draw_field();
    renderer.write("poolnet_field.svg");
    std::printf("wrote poolnet_field.svg (%zu svg elements)\n",
                renderer.document().element_count());
  }

  // Figure 5 view: the cells relevant to <*, *, [0.8, 0.84]> plus the
  // routes the query actually takes from a sink to each pool's splitter.
  {
    storage::RangeQuery::Bounds b{{0, 0}, {0, 0}, {0.8, 0.84}};
    FixedVec<bool, storage::kMaxDims> spec{false, false, true};
    const storage::RangeQuery q(b, spec);

    viz::FieldRenderer renderer(pool, {.draw_index_nodes = false});
    renderer.draw_field();
    renderer.draw_query_footprint(q);

    const net::NodeId sink = network.nearest_node({side * 0.1, side * 0.1});
    renderer.mark_node(sink, "sink", viz::Color{200, 30, 30});
    for (std::size_t p = 0; p < 3; ++p) {
      if (core::relevant_cells(q, p, pool.config().side).empty()) continue;
      const net::NodeId splitter = pool.splitter_for(p, sink);
      renderer.draw_route(gpsr.route_to_node(sink, splitter),
                          viz::Color{200, 30, 30}, 0.8);
      renderer.mark_node(splitter, "S" + std::to_string(p + 1),
                         viz::Color{30, 30, 200});
    }
    renderer.write("poolnet_query.svg");
    std::printf("wrote poolnet_query.svg — footprint of <*, *, [0.8,0.84]> "
                "(%zu relevant cells)\n",
                pool.relevant_cell_count(q));
  }
  return 0;
}
