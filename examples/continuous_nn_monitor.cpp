// Continuous nearest-neighbor monitoring (the paper's future work).
//
// An operator at a sink node watches for the sensor reading closest to a
// target profile — "about 30 °C, moderately humid, dark" — while the
// network keeps producing readings. The monitor answers from standing
// subscriptions instead of re-querying, so steady-state cost is one push
// notification per candidate event, not one full query per check.
//
//   $ ./examples/continuous_nn_monitor
#include <cstdio>

#include "core/nearest_monitor.h"
#include "net/deployment.h"
#include "net/network.h"
#include "query/workload.h"
#include "routing/gpsr.h"

using namespace poolnet;

int main() {
  const std::size_t kNodes = 400;
  const double side = net::field_side_for_density(kNodes, 40.0, 20.0);
  const Rect field{0.0, 0.0, side, side};
  Rng rng(7);
  net::Network network(net::deploy_uniform(kNodes, field, rng), field, 40.0);
  const routing::Gpsr gpsr(network);
  core::PoolSystem pool(network, gpsr, 3, core::PoolConfig{});

  const storage::Values target{0.62, 0.45, 0.10};
  std::printf("monitoring for the reading nearest <%.2f, %.2f, %.2f>\n\n",
              target[0], target[1], target[2]);

  const net::NodeId sink = network.nearest_node(field.center());
  core::NearestMonitor monitor(pool, sink, target);
  const auto setup_msgs = network.traffic().total;
  std::printf("setup (initial search + subscription): %llu messages\n\n",
              static_cast<unsigned long long>(setup_msgs));

  std::printf("%-8s %-10s %-34s %-10s %-12s\n", "round", "inserted",
              "current nearest", "distance", "total msgs");
  std::printf("------------------------------------------------------------"
              "--------\n");

  query::EventGenerator gen({.dims = 3}, 99);
  std::uint64_t inserted = 0;
  for (int round = 1; round <= 12; ++round) {
    for (int i = 0; i < 100; ++i) {
      const auto src = static_cast<net::NodeId>(
          (inserted + static_cast<std::uint64_t>(i)) % kNodes);
      pool.insert(src, gen.next(src));
    }
    inserted += 100;
    monitor.poll();
    char desc[64] = "(none yet)";
    if (monitor.nearest()) {
      std::snprintf(desc, sizeof(desc), "#%llu <%.3f, %.3f, %.3f>",
                    static_cast<unsigned long long>(monitor.nearest()->id),
                    monitor.nearest()->values[0], monitor.nearest()->values[1],
                    monitor.nearest()->values[2]);
    }
    std::printf("%-8d %-10llu %-34s %-10.4f %-12llu\n", round,
                static_cast<unsigned long long>(inserted), desc,
                monitor.distance(),
                static_cast<unsigned long long>(network.traffic().total));
  }

  std::printf("\nsubscription re-tightenings: %zu; compare: 12 fresh NN "
              "searches would each cost roughly the setup search again.\n",
              monitor.retightenings());
  return 0;
}
