#!/usr/bin/env python3
"""Gate BENCH_perf.json against performance regressions.

Usage:
    check_perf_regression.py CURRENT.json
    check_perf_regression.py BASELINE.json CURRENT.json

Absolute gates (always applied to CURRENT):
  * speedup >= 1.0 — the parallel+cached sweep must not be slower than
    the plain serial/uncached baseline arm measured in the same process.
  * stats_identical == true — all four sweep arms produced byte-identical
    message statistics.

Relative gate (applied only when BASELINE is given AND both documents
carry the figure — runs without --scale simply skip it):
  * events_per_sec must not drop more than 10% below the baseline.

Server gates (applied when CURRENT carries a 'server' section, which
bench/server_load writes and scripts/merge_perf_section.py folds in):
  * receipts_identical == true — every RESULT body the server streamed
    was byte-identical to direct serial engine execution.
  * rejection_probe.deterministic == true — admission control rejected
    exactly the statements past the per-client window.
  * relative: the best sweep-point QPS must not drop more than 50% below
    the baseline's (generous: connection scheduling on shared runners is
    far noisier than the single-process figures above).

Wall-clock milliseconds are reported but never gated: absolute times vary
across runners, while the speedup ratios and the throughput delta are
machine-relative.
"""

import json
import sys

EVENTS_PER_SEC_DROP = 0.10  # max tolerated fractional drop
SERVER_QPS_DROP = 0.50  # max tolerated fractional drop, best sweep point


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    fail.hit = True


fail.hit = False


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    baseline = None
    if len(argv) == 3:
        with open(argv[1], encoding="utf-8") as f:
            baseline = json.load(f)
        current_path = argv[2]
    else:
        current_path = argv[1]
    with open(current_path, encoding="utf-8") as f:
        current = json.load(f)

    speedup = current.get("speedup")
    if speedup is None:
        fail(f"{current_path}: missing 'speedup'")
    elif speedup < 1.0:
        fail(
            f"speedup {speedup:.3f} < 1.0 — the parallel+cached arm is "
            "slower than plain serial/uncached"
        )
    else:
        print(f"ok: speedup {speedup:.3f} >= 1.0")
    for name in ("speedup_cache", "speedup_parallel"):
        value = current.get(name)
        if value is not None:
            marker = "ok" if value >= 1.0 else "note"
            print(f"{marker}: {name} {value:.3f}")

    if current.get("stats_identical") is not True:
        fail("stats_identical is not true — sweep arms diverged")
    else:
        print("ok: stats identical across sweep arms")

    cur_eps = current.get("events_per_sec")
    base_eps = baseline.get("events_per_sec") if baseline else None
    if cur_eps is not None and base_eps:
        floor = base_eps * (1.0 - EVENTS_PER_SEC_DROP)
        if cur_eps < floor:
            fail(
                f"events_per_sec {cur_eps:.0f} dropped more than "
                f"{EVENTS_PER_SEC_DROP:.0%} below baseline {base_eps:.0f} "
                f"(floor {floor:.0f})"
            )
        else:
            print(
                f"ok: events_per_sec {cur_eps:.0f} vs baseline "
                f"{base_eps:.0f} (floor {floor:.0f})"
            )
    else:
        if cur_eps is None:
            why = "figure absent from current run (no --scale)"
        elif baseline is None:
            why = "no baseline given"
        else:
            why = "figure absent from baseline"
        print(f"skip: events_per_sec gate ({why})")

    check_server_section(current, baseline)

    if fail.hit:
        return 1
    print("perf regression check OK")
    return 0


def best_qps(server: dict) -> float:
    return max((p.get("qps", 0.0) for p in server.get("sweep", [])),
               default=0.0)


def check_server_section(current: dict, baseline: dict | None) -> None:
    server = current.get("server")
    if server is None:
        print("skip: server gates (no 'server' section in current run)")
        return

    if server.get("receipts_identical") is not True:
        fail("server.receipts_identical is not true — served results "
             "diverged from direct engine execution")
    else:
        print("ok: server receipts byte-identical to direct execution")

    probe = server.get("rejection_probe", {})
    if probe.get("deterministic") is not True:
        fail(f"server.rejection_probe not deterministic: {probe}")
    else:
        print(f"ok: admission probe rejected {probe.get('rejected')} of "
              f"{probe.get('sent')} as expected")

    for point in server.get("sweep", []):
        print(f"note: server {point.get('connections')} conns -> "
              f"{point.get('qps'):.0f} qps, p50 {point.get('p50_ms')} ms, "
              f"p99 {point.get('p99_ms')} ms")

    base_server = baseline.get("server") if baseline else None
    cur_qps = best_qps(server)
    if base_server and cur_qps > 0:
        base = best_qps(base_server)
        floor = base * (1.0 - SERVER_QPS_DROP)
        if base > 0 and cur_qps < floor:
            fail(f"server qps {cur_qps:.0f} dropped more than "
                 f"{SERVER_QPS_DROP:.0%} below baseline {base:.0f} "
                 f"(floor {floor:.0f})")
        elif base > 0:
            print(f"ok: server qps {cur_qps:.0f} vs baseline {base:.0f} "
                  f"(floor {floor:.0f})")
    else:
        why = ("no baseline server section" if baseline is not None
               else "no baseline given")
        print(f"skip: server qps gate ({why})")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
