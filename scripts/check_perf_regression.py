#!/usr/bin/env python3
"""Gate BENCH_perf.json against performance regressions.

Usage:
    check_perf_regression.py CURRENT.json
    check_perf_regression.py BASELINE.json CURRENT.json

Absolute gates (always applied to CURRENT):
  * speedup >= 1.0 — the parallel+cached sweep must not be slower than
    the plain serial/uncached baseline arm measured in the same process.
  * stats_identical == true — all four sweep arms produced byte-identical
    message statistics.

Relative gate (applied only when BASELINE is given AND both documents
carry the figure — runs without --scale simply skip it):
  * events_per_sec must not drop more than 10% below the baseline.

Server gates (applied when CURRENT carries a 'server' section, which
bench/server_load writes and scripts/merge_perf_section.py folds in):
  * receipts_identical == true — every RESULT body the server streamed
    was byte-identical to direct serial engine execution.
  * rejection_probe.deterministic == true — admission control rejected
    exactly the statements past the per-client window.
  * relative: the best sweep-point QPS must not drop more than 50% below
    the baseline's (generous: connection scheduling on shared runners is
    far noisier than the single-process figures above).

Store-churn gates (applied when CURRENT carries a 'store_scale' section,
which perf_smoke --scale writes — runs without --scale skip them; both
arms are forked, so every figure is that arm's own footprint):
  * results_identical == true — the paged arm answered the probe queries
    with the flat arm's exact checksum.
  * conservation_ok == true in both arms — inserted == live + expired.
  * paged churn RSS <= 25% of the flat arm's (the whole point of paging
    out of core).
  * paged pager_hit_rate >= 0.5 — the pool is big enough to be a cache,
    not a revolving door.
  * paged events_per_sec >= 50% of flat — bounded memory must not cost
    an order of magnitude in churn throughput.

Wall-clock milliseconds are reported but never gated: absolute times vary
across runners, while the speedup ratios and the throughput delta are
machine-relative.
"""

import json
import sys

EVENTS_PER_SEC_DROP = 0.10  # max tolerated fractional drop
SERVER_QPS_DROP = 0.50  # max tolerated fractional drop, best sweep point
PAGED_RSS_CEILING = 0.25  # paged churn RSS as a fraction of flat's
PAGED_HIT_RATE_FLOOR = 0.5
PAGED_THROUGHPUT_FLOOR = 0.5  # paged events/sec vs flat's
SCAN_SPEEDUP_FLOOR = 2.0  # columnar kernel vs AoS scan, 1% selectivity


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    fail.hit = True


fail.hit = False


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    baseline = None
    if len(argv) == 3:
        with open(argv[1], encoding="utf-8") as f:
            baseline = json.load(f)
        current_path = argv[2]
    else:
        current_path = argv[1]
    with open(current_path, encoding="utf-8") as f:
        current = json.load(f)

    speedup = current.get("speedup")
    if speedup is None:
        fail(f"{current_path}: missing 'speedup'")
    elif speedup < 1.0:
        fail(
            f"speedup {speedup:.3f} < 1.0 — the parallel+cached arm is "
            "slower than plain serial/uncached"
        )
    else:
        print(f"ok: speedup {speedup:.3f} >= 1.0")
    for name in ("speedup_cache", "speedup_parallel"):
        value = current.get(name)
        if value is not None:
            marker = "ok" if value >= 1.0 else "note"
            print(f"{marker}: {name} {value:.3f}")

    if current.get("stats_identical") is not True:
        fail("stats_identical is not true — sweep arms diverged")
    else:
        print("ok: stats identical across sweep arms")

    cur_eps = current.get("events_per_sec")
    base_eps = baseline.get("events_per_sec") if baseline else None
    if cur_eps is not None and base_eps:
        floor = base_eps * (1.0 - EVENTS_PER_SEC_DROP)
        if cur_eps < floor:
            fail(
                f"events_per_sec {cur_eps:.0f} dropped more than "
                f"{EVENTS_PER_SEC_DROP:.0%} below baseline {base_eps:.0f} "
                f"(floor {floor:.0f})"
            )
        else:
            print(
                f"ok: events_per_sec {cur_eps:.0f} vs baseline "
                f"{base_eps:.0f} (floor {floor:.0f})"
            )
    else:
        if cur_eps is None:
            why = "figure absent from current run (no --scale)"
        elif baseline is None:
            why = "no baseline given"
        else:
            why = "figure absent from baseline"
        print(f"skip: events_per_sec gate ({why})")

    check_server_section(current, baseline)
    check_store_scale_section(current)
    check_scan_section(current)
    check_query_classes_section(current)

    if fail.hit:
        return 1
    print("perf regression check OK")
    return 0


def best_qps(server: dict) -> float:
    return max((p.get("qps", 0.0) for p in server.get("sweep", [])),
               default=0.0)


def check_server_section(current: dict, baseline: dict | None) -> None:
    server = current.get("server")
    if server is None:
        print("skip: server gates (no 'server' section in current run)")
        return

    if server.get("receipts_identical") is not True:
        fail("server.receipts_identical is not true — served results "
             "diverged from direct engine execution")
    else:
        print("ok: server receipts byte-identical to direct execution")

    probe = server.get("rejection_probe", {})
    if probe.get("deterministic") is not True:
        fail(f"server.rejection_probe not deterministic: {probe}")
    else:
        print(f"ok: admission probe rejected {probe.get('rejected')} of "
              f"{probe.get('sent')} as expected")

    for point in server.get("sweep", []):
        print(f"note: server {point.get('connections')} conns -> "
              f"{point.get('qps'):.0f} qps, p50 {point.get('p50_ms')} ms, "
              f"p99 {point.get('p99_ms')} ms")

    base_server = baseline.get("server") if baseline else None
    cur_qps = best_qps(server)
    if base_server and cur_qps > 0:
        base = best_qps(base_server)
        floor = base * (1.0 - SERVER_QPS_DROP)
        if base > 0 and cur_qps < floor:
            fail(f"server qps {cur_qps:.0f} dropped more than "
                 f"{SERVER_QPS_DROP:.0%} below baseline {base:.0f} "
                 f"(floor {floor:.0f})")
        elif base > 0:
            print(f"ok: server qps {cur_qps:.0f} vs baseline {base:.0f} "
                  f"(floor {floor:.0f})")
    else:
        why = ("no baseline server section" if baseline is not None
               else "no baseline given")
        print(f"skip: server qps gate ({why})")


def check_store_scale_section(current: dict) -> None:
    section = current.get("store_scale")
    if section is None:
        print("skip: store-churn gates (no 'store_scale' section — "
              "run perf_smoke --scale to produce one)")
        return
    flat, paged = section.get("flat", {}), section.get("paged", {})

    if section.get("results_identical") is not True:
        fail("store_scale.results_identical is not true — the paged "
             "store answered the probe queries differently from flat")
    else:
        print(f"ok: flat/paged probe results identical "
              f"(checksum {paged.get('query_checksum')})")

    for arm_name, arm in (("flat", flat), ("paged", paged)):
        if arm.get("conservation_ok") is not True:
            fail(f"store_scale.{arm_name}: inserted != live + expired "
                 f"({arm.get('inserted')} vs {arm.get('live')} + "
                 f"{arm.get('expired')})")
        else:
            print(f"ok: {arm_name} arm conserves events "
                  f"({arm.get('inserted')} = {arm.get('live')} live + "
                  f"{arm.get('expired')} expired)")

    flat_rss, paged_rss = flat.get("peak_rss_kb"), paged.get("peak_rss_kb")
    if flat_rss and paged_rss is not None:
        ratio = paged_rss / flat_rss
        if ratio > PAGED_RSS_CEILING:
            fail(f"paged churn RSS {paged_rss} KB is {ratio:.1%} of flat's "
                 f"{flat_rss} KB (ceiling {PAGED_RSS_CEILING:.0%}) — the "
                 "buffer pool is not bounding the working set")
        else:
            print(f"ok: paged churn RSS {paged_rss} KB = {ratio:.1%} of "
                  f"flat's {flat_rss} KB (ceiling {PAGED_RSS_CEILING:.0%})")
    else:
        print("skip: paged RSS gate (missing RSS figures)")

    hit_rate = paged.get("pager_hit_rate")
    if hit_rate is None:
        print("skip: pager hit-rate gate (figure absent)")
    elif hit_rate < PAGED_HIT_RATE_FLOOR:
        fail(f"pager hit rate {hit_rate:.4f} < {PAGED_HIT_RATE_FLOOR}")
    else:
        print(f"ok: pager hit rate {hit_rate:.4f} >= {PAGED_HIT_RATE_FLOOR}")

    flat_eps, paged_eps = flat.get("events_per_sec"), paged.get(
        "events_per_sec")
    if flat_eps and paged_eps is not None:
        floor = flat_eps * PAGED_THROUGHPUT_FLOOR
        if paged_eps < floor:
            fail(f"paged churn {paged_eps:.0f} events/sec is below "
                 f"{PAGED_THROUGHPUT_FLOOR:.0%} of flat's {flat_eps:.0f} "
                 f"(floor {floor:.0f})")
        else:
            print(f"ok: paged churn {paged_eps:.0f} events/sec vs flat "
                  f"{flat_eps:.0f} (floor {floor:.0f})")
    else:
        print("skip: paged throughput gate (missing events/sec figures)")


def check_scan_section(current: dict) -> None:
    """Columnar scan-kernel gates (the 'scan' section bench/micro_ops
    --scan-json writes and merge_perf_section.py folds in):

      * results_identical == true — all three arms (AoS scalar, SoA
        kernel, SoA kernel + zone maps) matched the identical event set.
      * speedup_1pct >= SCAN_SPEEDUP_FLOOR — the production kernel must
        beat the AoS scan at least 2x on the 1%-selectivity filter.
    """
    section = current.get("scan")
    if section is None:
        print("skip: scan gates (no 'scan' section — run "
              "bench/micro_ops --scan-json to produce one)")
        return

    if section.get("results_identical") is not True:
        fail("scan.results_identical is not true — the columnar kernel "
             "matched a different event set than the AoS scan")
    else:
        print("ok: scan arms matched identical event sets")

    speedup = section.get("speedup_1pct")
    if speedup is None:
        fail("scan section missing 'speedup_1pct'")
    elif speedup < SCAN_SPEEDUP_FLOOR:
        fail(f"scan speedup_1pct {speedup:.2f} < {SCAN_SPEEDUP_FLOOR} — "
             "the columnar kernel lost its edge over the AoS scan")
    else:
        print(f"ok: scan kernel {speedup:.2f}x over AoS at 1% selectivity "
              f"(floor {SCAN_SPEEDUP_FLOOR}x)")

    for arm in section.get("arms", []):
        print(f"note: scan sel {arm.get('selectivity'):.0%} -> "
              f"aos {arm.get('aos_ms')} ms, soa {arm.get('soa_ms')} ms, "
              f"kernel {arm.get('kernel_ms')} ms, "
              f"{arm.get('blocks_skipped')}/{arm.get('blocks_total')} "
              "blocks skipped")


def check_query_classes_section(current: dict) -> None:
    """Query-class gates (the 'query_classes' section bench/query_classes
    writes and merge_perf_section.py folds in):

      * results_identical == true — Pool, DIM and GHT answered every
        range, skyline and k-NN query byte-identically to the canonical
        kernels over the oracle.
      * skyline/knn_pool_visits_leq_flood == true — Pool's dominance
        pruning (skyline) and shell-bounded expansion (k-NN) must not
        visit more storage nodes than GHT's flood baseline.
    """
    section = current.get("query_classes")
    if section is None:
        print("skip: query-class gates (no 'query_classes' section — run "
              "bench/query_classes to produce one)")
        return

    if section.get("results_identical") is not True:
        fail("query_classes.results_identical is not true — a system's "
             "skyline/k-NN/range answer diverged from the canonical kernel")
    else:
        print("ok: query-class results identical across Pool/DIM/GHT")

    for key, label in (("skyline_pool_visits_leq_flood", "skyline"),
                       ("knn_pool_visits_leq_flood", "k-NN")):
        if section.get(key) is not True:
            fail(f"query_classes.{key} is not true — Pool's {label} "
                 "pruning visited more nodes than the flood baseline")
        else:
            print(f"ok: Pool {label} visits <= flood baseline")

    for row in section.get("classes", []):
        pool, ght = row.get("pool", {}), row.get("ght", {})
        print(f"note: {row.get('class')} -> pool {pool.get('messages')} "
              f"msgs/{pool.get('visits')} visits, ght {ght.get('messages')} "
              f"msgs/{ght.get('visits')} visits")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
