#!/usr/bin/env bash
# Reproduce the paper's Figure 6/7 sweeps through the CLI, collecting one
# CSV that scripts/plot_results.py can chart.
#
#   scripts/run_sweep.sh [build-dir] [out.csv]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-sweep_results.csv}"
CLI="$BUILD/apps/poolnet_cli"

if [[ ! -x "$CLI" ]]; then
  echo "error: $CLI not built (cmake -B $BUILD -G Ninja && cmake --build $BUILD)" >&2
  exit 1
fi

rm -f "$OUT"

echo "== Figure 6 sweep: exact-match cost vs network size =="
for nodes in 300 600 900 1200 1500 1800 2100 2400 2700; do
  for dist in uniform exponential; do
    "$CLI" --systems pool,dim --nodes "$nodes" --queries 60 --seeds 3 \
           --query-type exact --size-dist "$dist" --csv "$OUT" >/dev/null
    echo "  nodes=$nodes dist=$dist done"
  done
done

echo "== Figure 7 sweep: partial-match cost at 900 nodes =="
for qtype in 1-partial 2-partial; do
  "$CLI" --systems pool,dim --nodes 900 --queries 80 --seeds 5 \
         --query-type "$qtype" --csv "$OUT" >/dev/null
  echo "  $qtype done"
done

echo "wrote $OUT"
