#!/usr/bin/env python3
"""Validate poolnet telemetry output in CI.

Usage:
    scripts/check_metrics_schema.py BENCH_perf.json [metrics.json]

Checks two documents:

* BENCH_perf.json (always): the perf_smoke trend file must carry the
  "metrics" section with the hotspot/energy keys, and the Fig-6(b)
  imbalance claim must hold — DIM's index-node Gini and max load both
  above Pool's under exponential event values.

* metrics.json (optional): a full `--metrics json` Snapshot document.
  Must parse, have the four sections, and contain the namespaced keys
  every instrumented component registers (route cache, query engine,
  per-node network lanes, storage load report).

Exits nonzero with a message on the first violation, so the CI step
fails loudly instead of uploading a silently-empty artifact.
"""
import json
import sys

PERF_METRIC_KEYS = [
    "pool_storage_gini",
    "dim_storage_gini",
    "pool_max_load",
    "dim_max_load",
    "pool_insert_messages",
    "dim_insert_messages",
    "pool_energy_j",
    "dim_energy_j",
]

SNAPSHOT_SECTIONS = ["counters", "gauges", "histograms", "series"]

SNAPSHOT_COUNTERS = [
    "pool.route_cache.hits",
    "pool.route_cache.misses",
    "pool.net.messages",
    "dim.net.messages",
    "pool.store.scan.rows_scanned",
    "pool.store.scan.blocks_skipped",
    "pool.store.scan.bytes_touched",
    "dim.store.scan.rows_scanned",
]

SNAPSHOT_GAUGES = [
    "pool.storage.load.gini",
    "pool.storage.load.gini_loaded",
    "pool.storage.load.max",
    "dim.storage.load.gini_loaded",
    "pool.net.energy_j",
    "pool.net.hop_energy_j",
]

SNAPSHOT_SERIES = ["pool.node.tx", "pool.node.stored", "dim.node.tx"]


def fail(msg):
    print(f"check_metrics_schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_perf(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{path}: missing 'metrics' section")
    for key in PERF_METRIC_KEYS:
        if key not in metrics:
            fail(f"{path}: metrics section missing '{key}'")
        if not isinstance(metrics[key], (int, float)):
            fail(f"{path}: metrics['{key}'] is not numeric")
    if metrics["dim_storage_gini"] <= metrics["pool_storage_gini"]:
        fail(
            f"{path}: hotspot claim violated — DIM index-node gini "
            f"{metrics['dim_storage_gini']} <= Pool "
            f"{metrics['pool_storage_gini']}"
        )
    if metrics["dim_max_load"] <= metrics["pool_max_load"]:
        fail(
            f"{path}: hotspot claim violated — DIM max load "
            f"{metrics['dim_max_load']} <= Pool {metrics['pool_max_load']}"
        )
    print(f"check_metrics_schema: {path} OK "
          f"(DIM gini {metrics['dim_storage_gini']} > "
          f"Pool {metrics['pool_storage_gini']}, "
          f"DIM max {metrics['dim_max_load']} > "
          f"Pool {metrics['pool_max_load']})")


def check_snapshot(path):
    with open(path) as f:
        doc = json.load(f)
    for section in SNAPSHOT_SECTIONS:
        if section not in doc or not isinstance(doc[section], dict):
            fail(f"{path}: missing section '{section}'")
    for key in SNAPSHOT_COUNTERS:
        if key not in doc["counters"]:
            fail(f"{path}: counters missing '{key}'")
    for key in SNAPSHOT_GAUGES:
        if key not in doc["gauges"]:
            fail(f"{path}: gauges missing '{key}'")
    for key in SNAPSHOT_SERIES:
        lane = doc["series"].get(key)
        if not isinstance(lane, list) or not lane:
            fail(f"{path}: series missing or empty '{key}'")
    tx_sum = sum(doc["series"]["pool.node.tx"])
    if tx_sum <= 0:
        fail(f"{path}: pool.node.tx lane sums to {tx_sum}")
    print(f"check_metrics_schema: {path} OK "
          f"({len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
          f"{len(doc['series'])} series)")


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    check_perf(argv[1])
    if len(argv) > 2:
        check_snapshot(argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
