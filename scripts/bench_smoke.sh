#!/usr/bin/env bash
# Perf smoke check: run the route-cache + parallel-engine benchmark and
# verify it produced its machine-readable report. Exits nonzero when the
# serial/uncached and parallel/cached statistics diverge (perf_smoke's own
# exit status) or when BENCH_perf.json is missing.
#
#   scripts/bench_smoke.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
SMOKE="$BUILD/bench/perf_smoke"

if [[ ! -x "$SMOKE" ]]; then
  echo "error: $SMOKE not built (cmake -B $BUILD && cmake --build $BUILD)" >&2
  exit 1
fi

"$SMOKE"

if [[ ! -s BENCH_perf.json ]]; then
  echo "error: perf_smoke did not write BENCH_perf.json" >&2
  exit 1
fi

echo "bench smoke OK:"
cat BENCH_perf.json
