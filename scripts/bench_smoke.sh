#!/usr/bin/env bash
# Perf smoke check: run the route-cache + parallel-engine benchmark and
# verify it produced its machine-readable report, then exercise the
# unified telemetry surface end-to-end — a CLI run writes a full
# --metrics json snapshot (BENCH_metrics.json) and the schema checker
# validates both documents, including the Fig-6(b) hotspot claim
# (DIM index-node Gini and max load above Pool's under exponential
# events). Exits nonzero when the serial/uncached and parallel/cached
# statistics diverge (perf_smoke's own exit status), when an output is
# missing, or when the schema/claim check fails.
#
#   scripts/bench_smoke.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
SMOKE="$BUILD/bench/perf_smoke"
CLI="$BUILD/apps/poolnet_cli"

if [[ ! -x "$SMOKE" ]]; then
  echo "error: $SMOKE not built (cmake -B $BUILD && cmake --build $BUILD)" >&2
  exit 1
fi

"$SMOKE" --metrics json:BENCH_smoke_metrics.json

if [[ ! -s BENCH_perf.json ]]; then
  echo "error: perf_smoke did not write BENCH_perf.json" >&2
  exit 1
fi
if [[ ! -s BENCH_smoke_metrics.json ]]; then
  echo "error: perf_smoke --metrics json did not write its snapshot" >&2
  exit 1
fi

if [[ -x "$CLI" ]]; then
  "$CLI" --nodes 300 --queries 20 --systems pool,dim \
    --workload exponential --metrics json:BENCH_metrics.json >/dev/null
  python3 scripts/check_metrics_schema.py BENCH_perf.json BENCH_metrics.json
else
  python3 scripts/check_metrics_schema.py BENCH_perf.json
fi

echo "bench smoke OK:"
cat BENCH_perf.json
