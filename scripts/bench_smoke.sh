#!/usr/bin/env bash
# Perf smoke check: run the four-arm {serial,parallel} x {cache off,on}
# benchmark plus the 1k/10k/100k scale tier and verify it produced its
# machine-readable report, then exercise the unified telemetry surface
# end-to-end — a CLI run writes a full --metrics json snapshot
# (BENCH_metrics.json) and the schema checker validates both documents,
# including the Fig-6(b) hotspot claim (DIM index-node Gini and max load
# above Pool's under exponential events). Finally the regression gate
# compares the fresh report against the committed baseline: speedup must
# stay >= 1.0, the four arms' statistics must be identical, and 100k-node
# insert throughput must not drop more than 10%. Exits nonzero on any
# violation.
#
#   scripts/bench_smoke.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
SMOKE="$BUILD/bench/perf_smoke"
CLI="$BUILD/apps/poolnet_cli"
SERVER_LOAD="$BUILD/bench/server_load"
MICRO_OPS="$BUILD/bench/micro_ops"
QUERY_CLASSES="$BUILD/bench/query_classes"

if [[ ! -x "$SMOKE" ]]; then
  echo "error: $SMOKE not built (cmake -B $BUILD && cmake --build $BUILD)" >&2
  exit 1
fi

# Save the committed report before perf_smoke overwrites it — it is the
# baseline the regression gate compares throughput against.
BASELINE="BENCH_perf_baseline.json"
if ! git show HEAD:BENCH_perf.json > "$BASELINE" 2>/dev/null; then
  if [[ -s BENCH_perf.json ]]; then
    cp BENCH_perf.json "$BASELINE"
  else
    rm -f "$BASELINE"
    BASELINE=""
  fi
fi

"$SMOKE" --scale --metrics json:BENCH_smoke_metrics.json

if [[ ! -s BENCH_perf.json ]]; then
  echo "error: perf_smoke did not write BENCH_perf.json" >&2
  exit 1
fi
if [[ ! -s BENCH_smoke_metrics.json ]]; then
  echo "error: perf_smoke --metrics json did not write its snapshot" >&2
  exit 1
fi

# The server sweep: in-process poolnetd core under 1/8/64 concurrent
# connections, every result byte-checked against direct execution plus
# the deterministic admission probe. Its section merges into
# BENCH_perf.json so the regression gate below sees it.
if [[ -x "$SERVER_LOAD" ]]; then
  "$SERVER_LOAD" --json BENCH_server.json
  python3 scripts/merge_perf_section.py BENCH_perf.json BENCH_server.json \
    server
fi

# The columnar scan-kernel arms (1M-event filter at 1%/10%/50%
# selectivity, AoS vs SoA vs SoA+zone-maps): micro_ops verifies all arms
# match the identical event set and its section feeds the >= 2x-at-1%
# gate below.
if [[ -x "$MICRO_OPS" ]]; then
  "$MICRO_OPS" --scan-json BENCH_scan.json
  python3 scripts/merge_perf_section.py BENCH_perf.json BENCH_scan.json scan
fi

# The query-class arm: range vs skyline vs k-NN through the unified
# execute() surface on Pool/DIM/GHT, every result set checked against the
# canonical kernels and Pool's pruning pinned against the flood baseline.
if [[ -x "$QUERY_CLASSES" ]]; then
  "$QUERY_CLASSES" --json BENCH_query_classes.json
  python3 scripts/merge_perf_section.py BENCH_perf.json \
    BENCH_query_classes.json query_classes
fi

if [[ -x "$CLI" ]]; then
  "$CLI" --nodes 300 --queries 20 --systems pool,dim \
    --workload exponential --metrics json:BENCH_metrics.json >/dev/null
  python3 scripts/check_metrics_schema.py BENCH_perf.json BENCH_metrics.json
else
  python3 scripts/check_metrics_schema.py BENCH_perf.json
fi

if [[ -n "$BASELINE" ]]; then
  python3 scripts/check_perf_regression.py "$BASELINE" BENCH_perf.json
  rm -f "$BASELINE"
else
  python3 scripts/check_perf_regression.py BENCH_perf.json
fi

echo "bench smoke OK:"
cat BENCH_perf.json
