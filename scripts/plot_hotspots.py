#!/usr/bin/env python3
"""Chart per-node storage hotspots from a poolnet telemetry snapshot.

Usage:
    scripts/plot_hotspots.py metrics.json [out-prefix]

Input is the JSON document written by `poolnet_cli --metrics json:PATH`
(or any bench that emits a Snapshot). For every system prefix present
(pool, dim, ght) it renders:

* <prefix>_load.png    — per-node stored-event load, nodes sorted by
                         load (the hotspot curve; DIM's spike vs Pool's
                         plateau is the paper's Fig-6(b) story)
* <prefix>_energy.png  — per-node radio energy, sorted

and prints the headline hotspot gauges (max / p99 / gini / gini_loaded)
as text. Without matplotlib the text summary still prints, so the data
stays usable on a headless CI box.
"""
import json
import sys

SYSTEMS = ["pool", "dim", "ght"]


def text_summary(doc, system):
    gauges = doc.get("gauges", {})
    prefix = f"{system}.storage.load."
    keys = [k for k in gauges if k.startswith(prefix)]
    if not keys:
        return False
    print(f"{system}:")
    for key in sorted(keys):
        print(f"  {key[len(prefix):]:>14} = {gauges[key]:g}")
    return True


def sorted_lane(doc, name):
    lane = doc.get("series", {}).get(name)
    if not lane:
        return None
    return sorted(lane, reverse=True)


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    path = argv[1]
    prefix = argv[2] if len(argv) > 2 else "hotspots"
    with open(path) as f:
        doc = json.load(f)

    present = [s for s in SYSTEMS if text_summary(doc, s)]
    if not present:
        print(f"{path}: no <system>.storage.load.* gauges found",
              file=sys.stderr)
        return 1

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; text summary only")
        return 0

    for kind, series_suffix, ylabel in [
        ("load", "node.stored", "stored events"),
        ("energy", "node.energy_j", "radio energy (J)"),
    ]:
        fig, ax = plt.subplots(figsize=(7, 4.5))
        plotted = False
        for system in present:
            lane = sorted_lane(doc, f"{system}.{series_suffix}")
            if lane is None:
                continue
            ax.plot(range(len(lane)), lane, label=system)
            plotted = True
        if not plotted:
            plt.close(fig)
            continue
        ax.set_xlabel("node rank (sorted descending)")
        ax.set_ylabel(ylabel)
        ax.set_title(f"Per-node {ylabel} by rank")
        ax.legend()
        ax.grid(True, alpha=0.3)
        out = f"{prefix}_{kind}.png"
        fig.tight_layout()
        fig.savefig(out, dpi=120)
        plt.close(fig)
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
