#!/usr/bin/env python3
"""Merge a bench section document into BENCH_perf.json.

Usage:
    merge_perf_section.py PERF.json SECTION.json KEY

Reads SECTION.json, takes its top-level KEY object, and writes it as
PERF.json's KEY — bench binaries each own their section file
(perf_smoke rewrites BENCH_perf.json wholesale; server_load writes
BENCH_server.json) and this script is the single composition point, so
no binary ever clobbers another's figures.

PERF.json is rewritten with 2-space indentation and sorted keys so the
committed document stays diff-stable.
"""

import json
import sys


def main(argv: list[str]) -> int:
    if len(argv) != 4:
        print(__doc__)
        return 2
    perf_path, section_path, key = argv[1], argv[2], argv[3]

    with open(section_path, encoding="utf-8") as f:
        section = json.load(f)
    if key not in section:
        print(f"error: {section_path} has no top-level '{key}'")
        return 1

    try:
        with open(perf_path, encoding="utf-8") as f:
            perf = json.load(f)
    except FileNotFoundError:
        perf = {}

    perf[key] = section[key]
    with open(perf_path, "w", encoding="utf-8") as f:
        json.dump(perf, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"merged '{key}' from {section_path} into {perf_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
