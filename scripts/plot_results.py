#!/usr/bin/env python3
"""Chart poolnet CLI sweep results (CSV from poolnet_cli --csv).

Usage:
    scripts/plot_results.py sweep_results.csv [out-prefix]

Produces <prefix>_fig6_<dist>.png (cost vs network size, per size
distribution) and <prefix>_fig7.png (cost vs partial-match class) when
matplotlib is available; otherwise prints the aggregated series as text
so the data is still usable.
"""
import csv
import sys
from collections import defaultdict


def load(path):
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def series(rows, key_fields, value_field="mean_messages"):
    """Groups rows by (system, *key_fields) and averages the value."""
    acc = defaultdict(list)
    for r in rows:
        key = (r["system"],) + tuple(r[k] for k in key_fields)
        acc[key].append(float(r[value_field]))
    return {k: sum(v) / len(v) for k, v in acc.items()}


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    rows = load(sys.argv[1])
    prefix = sys.argv[2] if len(sys.argv) > 2 else "poolnet"

    exact = [r for r in rows if r["flavor"] == "exact"]
    partial = [r for r in rows if r["flavor"].endswith("-partial")]

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        have_mpl = True
    except ImportError:
        have_mpl = False

    # Figure 6 style: cost vs nodes, one chart per size distribution.
    for dist in sorted({r["size_dist"] for r in exact}):
        sub = [r for r in exact if r["size_dist"] == dist]
        data = series(sub, ["nodes"])
        systems = sorted({k[0] for k in data})
        nodes = sorted({int(k[1]) for k in data})
        print(f"\n# exact match, {dist} range sizes")
        print("nodes " + " ".join(f"{s:>10}" for s in systems))
        for n in nodes:
            line = f"{n:5d} " + " ".join(
                f"{data.get((s, str(n)), float('nan')):10.1f}"
                for s in systems
            )
            print(line)
        if have_mpl and nodes:
            plt.figure(figsize=(6, 4))
            for s in systems:
                plt.plot(
                    nodes,
                    [data.get((s, str(n))) for n in nodes],
                    marker="o",
                    label=s,
                )
            plt.xlabel("network size (nodes)")
            plt.ylabel("messages per query")
            plt.title(f"Exact-match range queries, {dist} sizes")
            plt.legend()
            plt.grid(alpha=0.3)
            out = f"{prefix}_fig6_{dist}.png"
            plt.savefig(out, dpi=150, bbox_inches="tight")
            print(f"wrote {out}")

    # Figure 7 style: cost per partial-match class.
    if partial:
        data = series(partial, ["flavor"])
        systems = sorted({k[0] for k in data})
        flavors = sorted({k[1] for k in data})
        print("\n# partial match")
        print("class      " + " ".join(f"{s:>10}" for s in systems))
        for fl in flavors:
            print(
                f"{fl:10s} "
                + " ".join(f"{data.get((s, fl), float('nan')):10.1f}"
                           for s in systems)
            )
        if have_mpl:
            import numpy as np

            x = np.arange(len(flavors))
            width = 0.8 / max(len(systems), 1)
            plt.figure(figsize=(6, 4))
            for i, s in enumerate(systems):
                plt.bar(
                    x + i * width,
                    [data.get((s, fl), 0.0) for fl in flavors],
                    width,
                    label=s,
                )
            plt.xticks(x + width * (len(systems) - 1) / 2, flavors)
            plt.ylabel("messages per query")
            plt.title("Partial-match range queries (900 nodes)")
            plt.legend()
            plt.grid(axis="y", alpha=0.3)
            out = f"{prefix}_fig7.png"
            plt.savefig(out, dpi=150, bbox_inches="tight")
            print(f"wrote {out}")

    return 0


if __name__ == "__main__":
    sys.exit(main())
