#!/usr/bin/env python3
"""Chart poolnet benchmark CSVs.

Usage:
    scripts/plot_results.py results.csv [out-prefix] [--x COL] [--y COL]
                            [--group COL]

Columns are discovered from the CSV header, not hard-coded. Files
written by poolnet_cli --csv (system/nodes/flavor/size_dist/... columns)
get the paper-style figures: <prefix>_fig6_<dist>.png (cost vs network
size per size distribution) and <prefix>_fig7.png (cost vs
partial-match class). Any other CSV — e.g. query_engine_throughput.csv —
gets a generic grouped line chart: the x axis, y axis and grouping
column are inferred (numeric column with the most distinct values;
message-like numeric column; first categorical column) and can be
overridden with --x/--y/--group. Without matplotlib the aggregated
series print as text, so the data stays usable.
"""
import csv
import sys
from collections import defaultdict

LEGACY_COLUMNS = {"system", "nodes", "flavor", "size_dist", "mean_messages"}


def load(path):
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        return list(reader), list(reader.fieldnames or [])


def is_numeric(rows, col):
    seen = False
    for r in rows:
        v = (r.get(col) or "").strip()
        if not v:
            continue
        seen = True
        try:
            float(v)
        except ValueError:
            return False
    return seen


def try_matplotlib():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        return plt
    except ImportError:
        return None


def series(rows, key_fields, value_field):
    """Groups rows by (*key_fields) and averages the value."""
    acc = defaultdict(list)
    for r in rows:
        key = tuple(r[k] for k in key_fields)
        acc[key].append(float(r[value_field]))
    return {k: sum(v) / len(v) for k, v in acc.items()}


def plot_legacy(rows, prefix, plt):
    exact = [r for r in rows if r["flavor"] == "exact"]
    partial = [r for r in rows if r["flavor"].endswith("-partial")]

    # Figure 6 style: cost vs nodes, one chart per size distribution.
    for dist in sorted({r["size_dist"] for r in exact}):
        sub = [r for r in exact if r["size_dist"] == dist]
        data = series(sub, ["system", "nodes"], "mean_messages")
        systems = sorted({k[0] for k in data})
        nodes = sorted({int(k[1]) for k in data})
        print(f"\n# exact match, {dist} range sizes")
        print("nodes " + " ".join(f"{s:>10}" for s in systems))
        for n in nodes:
            print(
                f"{n:5d} "
                + " ".join(
                    f"{data.get((s, str(n)), float('nan')):10.1f}"
                    for s in systems
                )
            )
        if plt and nodes:
            plt.figure(figsize=(6, 4))
            for s in systems:
                plt.plot(
                    nodes,
                    [data.get((s, str(n))) for n in nodes],
                    marker="o",
                    label=s,
                )
            plt.xlabel("network size (nodes)")
            plt.ylabel("messages per query")
            plt.title(f"Exact-match range queries, {dist} sizes")
            plt.legend()
            plt.grid(alpha=0.3)
            out = f"{prefix}_fig6_{dist}.png"
            plt.savefig(out, dpi=150, bbox_inches="tight")
            print(f"wrote {out}")

    # Figure 7 style: cost per partial-match class.
    if partial:
        data = series(partial, ["system", "flavor"], "mean_messages")
        systems = sorted({k[0] for k in data})
        flavors = sorted({k[1] for k in data})
        print("\n# partial match")
        print("class      " + " ".join(f"{s:>10}" for s in systems))
        for fl in flavors:
            print(
                f"{fl:10s} "
                + " ".join(
                    f"{data.get((s, fl), float('nan')):10.1f}"
                    for s in systems
                )
            )
        if plt:
            import numpy as np

            x = np.arange(len(flavors))
            width = 0.8 / max(len(systems), 1)
            plt.figure(figsize=(6, 4))
            for i, s in enumerate(systems):
                plt.bar(
                    x + i * width,
                    [data.get((s, fl), 0.0) for fl in flavors],
                    width,
                    label=s,
                )
            plt.xticks(x + width * (len(systems) - 1) / 2, flavors)
            plt.ylabel("messages per query")
            plt.title("Partial-match range queries (900 nodes)")
            plt.legend()
            plt.grid(axis="y", alpha=0.3)
            out = f"{prefix}_fig7.png"
            plt.savefig(out, dpi=150, bbox_inches="tight")
            print(f"wrote {out}")


def infer_roles(rows, columns, overrides):
    """Picks (x, y, group) columns from whatever the CSV contains."""
    numeric = [c for c in columns if is_numeric(rows, c)]
    categorical = [c for c in columns if c not in numeric]

    y = overrides.get("y")
    if y is None:
        message_like = [c for c in numeric if "message" in c or "msgs" in c]
        y = message_like[0] if message_like else (numeric[-1] if numeric else None)

    def integer_valued(col):
        return all(
            float(r[col]).is_integer() for r in rows if (r.get(col) or "").strip()
        )

    x = overrides.get("x")
    if x is None:
        candidates = [
            c for c in numeric if c != y and len({r[c] for r in rows}) > 1
        ]
        # Swept parameters (batch, nodes, ...) are integer-valued and come
        # before the measurements in the header; prefer those, in header
        # order.
        candidates.sort(
            key=lambda c: (not integer_valued(c), columns.index(c))
        )
        x = candidates[0] if candidates else None

    group = overrides.get("group")
    if group is None:
        group_candidates = categorical + [
            c for c in numeric if c not in (x, y)
        ]
        group = group_candidates[0] if group_candidates else None
    return x, y, group


def plot_generic(rows, columns, prefix, overrides, plt):
    x_col, y_col, group_col = infer_roles(rows, columns, overrides)
    if x_col is None or y_col is None:
        print(
            f"cannot infer axes from columns {columns}; "
            "pass --x and --y explicitly"
        )
        return 1

    keys = [group_col, x_col] if group_col else [x_col]
    data = series(rows, keys, y_col)
    groups = sorted({k[0] for k in data}) if group_col else [None]
    xs = sorted(
        {k[-1] for k in data}, key=lambda v: float(v) if v else float("nan")
    )

    label = group_col or "all"
    print(f"\n# {y_col} vs {x_col}, grouped by {label}")
    print(f"{x_col:>12} " + " ".join(f"{str(g):>12}" for g in groups))
    for xv in xs:
        cells = []
        for g in groups:
            key = (g, xv) if group_col else (xv,)
            cells.append(f"{data.get(key, float('nan')):12.2f}")
        print(f"{xv:>12} " + " ".join(cells))

    if plt:
        plt.figure(figsize=(6, 4))
        for g in groups:
            ys = [
                data.get((g, xv) if group_col else (xv,)) for xv in xs
            ]
            plt.plot(
                [float(v) for v in xs],
                ys,
                marker="o",
                label=str(g) if group_col else y_col,
            )
        plt.xlabel(x_col)
        plt.ylabel(y_col)
        plt.title(f"{y_col} vs {x_col}")
        plt.legend()
        plt.grid(alpha=0.3)
        out = f"{prefix}_{y_col}_vs_{x_col}.png"
        plt.savefig(out, dpi=150, bbox_inches="tight")
        print(f"wrote {out}")
    return 0


def main():
    args = sys.argv[1:]
    overrides = {}
    positional = []
    i = 0
    while i < len(args):
        if args[i] in ("--x", "--y", "--group") and i + 1 < len(args):
            overrides[args[i][2:]] = args[i + 1]
            i += 2
        else:
            positional.append(args[i])
            i += 1
    if not positional:
        print(__doc__)
        return 1

    rows, columns = load(positional[0])
    if not rows:
        print(f"{positional[0]}: no data rows")
        return 1
    prefix = positional[1] if len(positional) > 1 else "poolnet"
    plt = try_matplotlib()

    for col, val in overrides.items():
        if val not in columns:
            print(f"--{col}: no column named '{val}' (have: {columns})")
            return 1

    if LEGACY_COLUMNS.issubset(columns) and not overrides:
        plot_legacy(rows, prefix, plt)
        return 0
    return plot_generic(rows, columns, prefix, overrides, plt)


if __name__ == "__main__":
    sys.exit(main())
