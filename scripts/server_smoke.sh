#!/usr/bin/env bash
# Server smoke check: boot poolnetd on an ephemeral port, drive it with
# server_load over real sockets (2 connections x 100 queries), verify
# every streamed result is byte-identical to direct engine execution,
# then SIGTERM the daemon and require a clean drain (exit 0). Exits
# nonzero on any violation.
#
#   scripts/server_smoke.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
DAEMON="$BUILD/apps/poolnetd"
LOAD="$BUILD/bench/server_load"

for bin in "$DAEMON" "$LOAD"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake -B $BUILD && cmake --build $BUILD)" >&2
    exit 1
  fi
done

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

# The backend flags here MUST match server_load's below — identical
# construction is what makes the cross-process byte comparison valid.
"$DAEMON" --system pool --nodes 300 --dims 3 --events-per-node 3 \
  --seed 1 --batch 16 --port 0 > "$LOG" 2>&1 &
DAEMON_PID=$!

# The ephemeral port appears on the "listening on" line once the testbed
# is deployed.
PORT=""
for _ in $(seq 1 120); do
  PORT="$(sed -n 's/^poolnetd: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$LOG")"
  [[ -n "$PORT" ]] && break
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "error: poolnetd died during startup:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.5
done
if [[ -z "$PORT" ]]; then
  echo "error: poolnetd never reported its port:" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "server_smoke: poolnetd up on port $PORT"

"$LOAD" --connect "127.0.0.1:$PORT" --connections 2 --queries 100 \
  --system pool --nodes 300 --dims 3 --events-per-node 3 --seed 1 \
  --batch 16 --json BENCH_server_smoke.json

# The new query classes over the same live daemon: mixed SELECT SKYLINE /
# SELECT NEAREST / range statements, every reply byte-checked against
# direct execution on an identically-built backend.
"$LOAD" --connect "127.0.0.1:$PORT" --connections 2 --queries 50 \
  --system pool --nodes 300 --dims 3 --events-per-node 3 --seed 1 \
  --batch 16 --query-class mix --json BENCH_server_smoke_classes.json

# Clean drain: SIGTERM must answer everything in flight and exit 0.
kill -TERM "$DAEMON_PID"
DAEMON_STATUS=0
wait "$DAEMON_PID" || DAEMON_STATUS=$?
if [[ "$DAEMON_STATUS" -ne 0 ]]; then
  echo "error: poolnetd exited $DAEMON_STATUS after SIGTERM:" >&2
  cat "$LOG" >&2
  exit 1
fi
if ! grep -q "^poolnetd: served 4 connections, 300 queries" "$LOG"; then
  echo "error: poolnetd did not report serving the full load:" >&2
  cat "$LOG" >&2
  exit 1
fi

echo "server smoke OK:"
grep "^poolnetd: served" "$LOG"
