#include "engine/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "bench_support/testbed.h"
#include "common/error.h"
#include "ght/ght_system.h"
#include "query/query_gen.h"
#include "routing/gpsr.h"

namespace poolnet::engine {
namespace {

using benchsup::Testbed;
using benchsup::TestbedConfig;
using storage::QueryReceipt;
using storage::RangeQuery;

TestbedConfig small_config(std::uint64_t seed) {
  TestbedConfig config;
  config.nodes = 150;
  config.seed = seed;
  return config;
}

/// Overlapping workload: with probability 1/2, one of `n_templates`
/// popular queries; otherwise a fresh draw. Both streams advance every
/// round so the workload is deterministic in `seed` alone.
std::vector<RangeQuery> overlapping_queries(std::size_t count,
                                            std::uint64_t seed,
                                            std::size_t n_templates = 6) {
  query::QueryGenerator gen(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential},
      seed * 7919 + 1);
  std::vector<RangeQuery> templates;
  for (std::size_t i = 0; i < n_templates; ++i)
    templates.push_back(gen.exact_range());
  Rng pick(seed * 31 + 9);
  std::vector<RangeQuery> out;
  for (std::size_t i = 0; i < count; ++i) {
    const RangeQuery fresh = gen.exact_range();
    const auto slot = static_cast<std::size_t>(
        pick.uniform_int(0, static_cast<std::int64_t>(n_templates) - 1));
    out.push_back(pick.uniform() < 0.5 ? templates[slot] : fresh);
  }
  return out;
}

/// Runs `queries` through an engine configured with `batch_size` from one
/// sink and returns the per-query receipts in submission order.
std::vector<QueryReceipt> run_batched(storage::DcsSystem& system,
                                      net::NodeId sink,
                                      const std::vector<RangeQuery>& queries,
                                      std::size_t batch_size) {
  QueryEngineConfig cfg;
  cfg.batch_size = batch_size;
  cfg.batch_deadline = std::uint64_t{1} << 40;
  QueryEngine eng(system, cfg);
  std::vector<QueryEngine::Ticket> tickets;
  for (const auto& q : queries) tickets.push_back(eng.submit(sink, q));
  eng.flush();
  std::vector<QueryReceipt> out;
  for (const auto t : tickets) out.push_back(eng.take(t));
  return out;
}

std::uint64_t total_messages(const std::vector<QueryReceipt>& rs) {
  std::uint64_t sum = 0;
  for (const auto& r : rs) sum += r.messages;
  return sum;
}

// ---------------------------------------------------------------------
// Serial equivalence: batched result sets are byte-identical to serial
// execution, per query, across Pool, DIM, GHT and seeds.
// ---------------------------------------------------------------------

TEST(QueryEngineEquivalence, PoolAndDimMatchSerialAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    Testbed tb(small_config(seed));
    tb.insert_workload();
    Rng sink_rng(seed * 13 + 3);
    const auto sink = tb.random_node(sink_rng);
    const auto queries = overlapping_queries(24, seed);

    for (storage::DcsSystem* sys :
         std::initializer_list<storage::DcsSystem*>{&tb.pool(), &tb.dim()}) {
      std::vector<QueryReceipt> serial;
      for (const auto& q : queries) serial.push_back(sys->query(sink, q));
      for (const std::size_t b : {4u, 8u, 32u}) {
        const auto batched = run_batched(*sys, sink, queries, b);
        ASSERT_EQ(batched.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
          EXPECT_EQ(batched[i].events, serial[i].events)
              << "seed " << seed << " batch " << b << " query " << i;
      }
    }
  }
}

TEST(QueryEngineEquivalence, GhtMatchesSerialOnMixedWorkload) {
  for (const std::uint64_t seed : {1u, 4u}) {
    Testbed tb(small_config(seed));
    tb.insert_workload();

    // GHT on its own network copy over the same positions, as in the CLI.
    std::vector<Point> pts;
    for (const auto& n : tb.pool_network().nodes()) pts.push_back(n.pos);
    net::Network ght_net(std::move(pts), tb.pool_network().field(), 40.0);
    routing::Gpsr ght_gpsr(ght_net);
    ght::GhtSystem ght(ght_net, ght_gpsr, 3);
    for (const auto& e : tb.oracle().all()) ght.insert(e.source, e);

    // Point queries on stored events (some repeated -> shared homes) plus
    // a couple of range queries (shared flood).
    const auto& events = tb.oracle().all();
    std::vector<RangeQuery> queries;
    for (std::size_t i = 0; i < 10; ++i) {
      const auto& e = events[(i * 7) % events.size()];
      RangeQuery::Bounds b;
      for (std::size_t d = 0; d < e.dims(); ++d)
        b.push_back({e.values[d], e.values[d]});
      queries.push_back(RangeQuery(b));
    }
    queries.push_back(queries[0]);  // exact duplicate, same home
    for (const auto& q : overlapping_queries(3, seed)) queries.push_back(q);

    Rng sink_rng(seed * 17 + 5);
    const auto sink = tb.random_node(sink_rng);
    std::vector<QueryReceipt> serial;
    for (const auto& q : queries) serial.push_back(ght.query(sink, q));
    const auto batched = run_batched(ght, sink, queries, queries.size());
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(batched[i].events, serial[i].events)
          << "seed " << seed << " query " << i;
  }
}

// ---------------------------------------------------------------------
// Message economics: dedup ratio >= 1, batching never costs more than
// serial, and growing the batch never increases total traffic.
// ---------------------------------------------------------------------

TEST(QueryEngineEconomics, MessagesMonotoneNonIncreasingInBatchSize) {
  Testbed tb(small_config(7));
  tb.insert_workload();
  Rng sink_rng(99);
  const auto sink = tb.random_node(sink_rng);
  const auto queries = overlapping_queries(32, 7);

  for (storage::DcsSystem* sys :
       std::initializer_list<storage::DcsSystem*>{&tb.pool(), &tb.dim()}) {
    std::uint64_t prev = ~std::uint64_t{0};
    for (const std::size_t b : {1u, 2u, 4u, 8u, 16u, 32u}) {
      const auto receipts = run_batched(*sys, sink, queries, b);
      const auto msgs = total_messages(receipts);
      EXPECT_LE(msgs, prev) << "batch " << b;
      prev = msgs;
    }
  }
}

TEST(QueryEngineEconomics, DedupRatioAtLeastOneAndStatsConsistent) {
  Testbed tb(small_config(5));
  tb.insert_workload();
  Rng sink_rng(41);
  const auto sink = tb.random_node(sink_rng);
  const auto queries = overlapping_queries(16, 5);

  QueryEngineConfig cfg;
  cfg.batch_size = 16;
  cfg.batch_deadline = std::uint64_t{1} << 40;
  QueryEngine eng(tb.pool(), cfg);
  std::vector<QueryEngine::Ticket> tickets;
  for (const auto& q : queries) tickets.push_back(eng.submit(sink, q));
  eng.flush();
  for (const auto t : tickets) eng.take(t);

  const EngineStats& s = eng.stats();
  EXPECT_EQ(s.submitted, queries.size());
  EXPECT_GE(s.batches, 1u);
  EXPECT_GE(s.overall_dedup_ratio(), 1.0);
  EXPECT_GE(s.serial_cell_visits, s.unique_cell_visits);
  EXPECT_GT(s.messages, 0u);
}

// messages_saved is exact on ideal links: a fresh identical deployment
// run serially charges precisely batch.messages + batch.messages_saved.
TEST(QueryEngineEconomics, MessagesSavedExactOnIdealLinks) {
  const auto queries = overlapping_queries(16, 11);
  Testbed serial_tb(small_config(11));
  serial_tb.insert_workload();
  Testbed batch_tb(small_config(11));
  batch_tb.insert_workload();
  Rng sink_rng(11 * 13 + 3);
  const auto sink = serial_tb.random_node(sink_rng);

  for (const bool use_dim : {false, true}) {
    storage::DcsSystem& serial_sys =
        use_dim ? static_cast<storage::DcsSystem&>(serial_tb.dim())
                : static_cast<storage::DcsSystem&>(serial_tb.pool());
    storage::DcsSystem& batch_sys =
        use_dim ? static_cast<storage::DcsSystem&>(batch_tb.dim())
                : static_cast<storage::DcsSystem&>(batch_tb.pool());

    std::uint64_t serial_sum = 0;
    for (const auto& q : queries) serial_sum += serial_sys.query(sink, q).messages;
    const auto batch = batch_sys.query_batch(sink, queries);
    EXPECT_EQ(batch.messages_saved, serial_sum - batch.messages)
        << (use_dim ? "dim" : "pool");
  }
}

// ---------------------------------------------------------------------
// Result cache: hits are free, never stale, and TTL-bounded.
// ---------------------------------------------------------------------

TEST(QueryEngineCache, RepeatQueryHitsWithZeroMessages) {
  Testbed tb(small_config(3));
  tb.insert_workload();
  Rng sink_rng(31);
  const auto sink = tb.random_node(sink_rng);
  const auto q = overlapping_queries(1, 3)[0];

  QueryEngineConfig cfg;
  cfg.cache.enabled = true;
  QueryEngine eng(tb.pool(), cfg);
  const auto first = eng.take(eng.submit(sink, q));
  const auto second = eng.take(eng.submit(sink, q));
  EXPECT_EQ(second.events, first.events);
  EXPECT_EQ(second.messages, 0u);
  EXPECT_EQ(eng.cache_stats().hits, 1u);
  EXPECT_EQ(eng.stats().cache_hits, 1u);
}

TEST(QueryEngineCache, InsertIntoCachedRectangleInvalidates) {
  Testbed tb(small_config(3));
  tb.insert_workload();
  Rng sink_rng(37);
  const auto sink = tb.random_node(sink_rng);
  const auto q = overlapping_queries(1, 3)[0];

  QueryEngineConfig cfg;
  cfg.cache.enabled = true;
  QueryEngine eng(tb.pool(), cfg);
  const auto before = eng.take(eng.submit(sink, q));

  // An event dead-center in the cached rectangle, routed through the
  // engine so the cache sees it.
  storage::Event e;
  e.id = 999999;
  e.source = sink;
  for (std::size_t d = 0; d < 3; ++d)
    e.values.push_back((q.bound(d).lo + q.bound(d).hi) / 2.0);
  ASSERT_TRUE(q.matches(e));
  eng.insert(sink, e);

  const auto after = eng.take(eng.submit(sink, q));
  EXPECT_EQ(after.events.size(), before.events.size() + 1);
  EXPECT_GT(after.messages, 0u) << "stale hit served after insert";
  EXPECT_GE(eng.cache_stats().invalidations, 1u);
  // And the refreshed answer matches a direct query.
  EXPECT_EQ(after.events, tb.pool().query(sink, q).events);
}

TEST(QueryEngineCache, DisjointInsertLeavesEntryCached) {
  Testbed tb(small_config(3));
  tb.insert_workload();
  Rng sink_rng(43);
  const auto sink = tb.random_node(sink_rng);
  const auto q = overlapping_queries(1, 3)[0];

  QueryEngineConfig cfg;
  cfg.cache.enabled = true;
  QueryEngine eng(tb.pool(), cfg);
  eng.take(eng.submit(sink, q));

  storage::Event e;
  e.id = 999998;
  e.source = sink;
  for (std::size_t d = 0; d < 3; ++d) e.values.push_back(q.bound(d).lo);
  // Push one dimension outside the rectangle (values live in [0, 1];
  // exponential-sized ranges never span a whole dimension).
  for (std::size_t d = 0; d < 3; ++d) {
    const auto b = q.bound(d);
    if (b.hi < 1.0) {
      e.values[d] = (b.hi + 1.0) / 2.0;
      break;
    }
    if (b.lo > 0.0) {
      e.values[d] = b.lo / 2.0;
      break;
    }
  }
  ASSERT_FALSE(q.matches(e));
  eng.insert(sink, e);

  const auto again = eng.take(eng.submit(sink, q));
  EXPECT_EQ(again.messages, 0u);
  EXPECT_EQ(eng.cache_stats().hits, 1u);
}

TEST(QueryEngineCache, TtlExpiresEntries) {
  Testbed tb(small_config(3));
  tb.insert_workload();
  Rng sink_rng(47);
  const auto sink = tb.random_node(sink_rng);
  const auto q = overlapping_queries(1, 3)[0];

  QueryEngineConfig cfg;
  cfg.cache.enabled = true;
  cfg.cache.ttl = 2;
  QueryEngine eng(tb.pool(), cfg);
  eng.take(eng.submit(sink, q));
  eng.tick(5);
  const auto later = eng.take(eng.submit(sink, q));
  EXPECT_GT(later.messages, 0u);
  EXPECT_GE(eng.cache_stats().expirations, 1u);
}

TEST(QueryEngineCache, TtlBoundaryIsExact) {
  // Entry age is now - stored_at: exactly ttl = expired, ttl-1 = fresh.
  Testbed tb(small_config(3));
  tb.insert_workload();
  Rng sink_rng(61);
  const auto sink = tb.random_node(sink_rng);
  const auto q = overlapping_queries(1, 3)[0];

  QueryEngineConfig cfg;
  cfg.cache.enabled = true;
  cfg.cache.ttl = 10;
  QueryEngine eng(tb.pool(), cfg);
  eng.take(eng.submit(sink, q));  // submit advances to 1, stored_at = 1
  eng.tick(8);                    // now = 9
  // This submit advances to 10: age = 10 - 1 = ttl - 1, still fresh.
  const auto fresh = eng.take(eng.submit(sink, q));
  EXPECT_EQ(fresh.messages, 0u) << "entry expired one event early";
  EXPECT_EQ(eng.cache_stats().hits, 1u);
  // A hit does not restamp: the next submit sees age = 11 - 1 = ttl.
  const auto stale = eng.take(eng.submit(sink, q));
  EXPECT_GT(stale.messages, 0u) << "entry served at exactly ttl";
  EXPECT_EQ(eng.cache_stats().hits, 1u);
  EXPECT_EQ(eng.cache_stats().expirations, 1u);
}

TEST(QueryEngineCache, DataAgingPrunesEntriesInPlace) {
  // expire_before used to clear the whole cache; now each entry sheds
  // exactly its own aged events and keeps serving hits.
  Testbed tb(small_config(3));
  Rng rng(67);
  for (int i = 0; i < 120; ++i) {
    storage::Event e;
    e.id = static_cast<std::uint64_t>(i + 1);
    e.source = 0;
    e.detected_at = static_cast<double>(i);
    for (int d = 0; d < 3; ++d) e.values.push_back(rng.uniform());
    tb.pool().insert(0, e);
  }
  QueryEngineConfig cfg;
  cfg.cache.enabled = true;
  QueryEngine eng(tb.pool(), cfg);
  const RangeQuery wide({{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
  const auto before = eng.take(eng.submit(0, wide));
  ASSERT_EQ(before.events.size(), 120u);

  eng.expire_before(60.0);
  const auto after = eng.take(eng.submit(0, wide));
  EXPECT_EQ(after.messages, 0u) << "aging should not evict the entry";
  EXPECT_EQ(eng.cache_stats().hits, 1u);
  EXPECT_EQ(after.events.size(), 60u);
  for (const auto& e : after.events) EXPECT_GE(e.detected_at, 60.0);

  // The served set is the exact post-aging answer.
  auto served = after.events;
  auto direct = tb.pool().query(0, wide).events;
  const auto by_id = [](const storage::Event& a, const storage::Event& b) {
    return a.id < b.id;
  };
  std::sort(served.begin(), served.end(), by_id);
  std::sort(direct.begin(), direct.end(), by_id);
  EXPECT_EQ(served, direct);
}

TEST(QueryEngineCache, AgingEverythingLeavesEmptyButCorrectEntries) {
  Testbed tb(small_config(3));
  tb.insert_workload();  // workload events all carry detected_at = 0
  Rng sink_rng(71);
  const auto sink = tb.random_node(sink_rng);
  const auto q = overlapping_queries(1, 3)[0];

  QueryEngineConfig cfg;
  cfg.cache.enabled = true;
  QueryEngine eng(tb.pool(), cfg);
  eng.take(eng.submit(sink, q));
  eng.expire_before(1.0);  // ages out every stored event
  const auto empty = eng.take(eng.submit(sink, q));
  EXPECT_EQ(empty.messages, 0u);
  EXPECT_TRUE(empty.events.empty());
  EXPECT_EQ(empty.events, tb.pool().query(sink, q).events);
}

// ---------------------------------------------------------------------
// Epoch triggers and spec parsing.
// ---------------------------------------------------------------------

TEST(QueryEngineEpochs, DeadlineFlushesPartialEpoch) {
  Testbed tb(small_config(3));
  tb.insert_workload();
  Rng sink_rng(53);
  const auto sink = tb.random_node(sink_rng);
  const auto queries = overlapping_queries(2, 3);

  QueryEngineConfig cfg;
  cfg.batch_size = 8;
  cfg.batch_deadline = 3;
  QueryEngine eng(tb.pool(), cfg);
  const auto t0 = eng.submit(sink, queries[0]);
  const auto t1 = eng.submit(sink, queries[1]);
  EXPECT_EQ(eng.pending(), 2u);
  eng.tick(3);
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_TRUE(eng.ready(t0));
  EXPECT_TRUE(eng.ready(t1));
}

TEST(QueryEngineEpochs, TakeFlushesAndUnknownTicketThrows) {
  Testbed tb(small_config(3));
  tb.insert_workload();
  Rng sink_rng(59);
  const auto sink = tb.random_node(sink_rng);
  const auto q = overlapping_queries(1, 3)[0];

  QueryEngineConfig cfg;
  cfg.batch_size = 8;
  QueryEngine eng(tb.pool(), cfg);
  const auto t = eng.submit(sink, q);
  EXPECT_FALSE(eng.ready(t));
  const auto r = eng.take(t);  // implicit flush
  EXPECT_EQ(r.events, tb.pool().query(sink, q).events);
  EXPECT_THROW(eng.take(t), ConfigError);      // already redeemed
  EXPECT_THROW(eng.take(123456), ConfigError);  // never issued
}

TEST(QueryEngineSpecs, BatchAndQcacheParsing) {
  std::size_t n = 99;
  std::string err;
  EXPECT_TRUE(parse_batch_spec("off", &n, &err));
  EXPECT_EQ(n, 0u);
  EXPECT_TRUE(parse_batch_spec("16", &n, &err));
  EXPECT_EQ(n, 16u);
  EXPECT_FALSE(parse_batch_spec("0", &n, &err));
  EXPECT_FALSE(parse_batch_spec("sixteen", &n, &err));

  ResultCacheConfig cache;
  EXPECT_TRUE(parse_qcache_spec("on", &cache, &err));
  EXPECT_TRUE(cache.enabled);
  EXPECT_EQ(cache.ttl, 0u);
  EXPECT_TRUE(parse_qcache_spec("ttl:40", &cache, &err));
  EXPECT_TRUE(cache.enabled);
  EXPECT_EQ(cache.ttl, 40u);
  EXPECT_TRUE(parse_qcache_spec("off", &cache, &err));
  EXPECT_FALSE(cache.enabled);
  EXPECT_FALSE(parse_qcache_spec("ttl:0", &cache, &err));
  EXPECT_FALSE(parse_qcache_spec("maybe", &cache, &err));
}

}  // namespace
}  // namespace poolnet::engine
