// Skyline and k-nearest-event query classes (DESIGN.md §15).
//
// The contract under test: every system's DISTRIBUTED answer — Pool's
// corner-ordered cell pruning, DIM's zone-corner pruning, GHT's flood,
// the central stores' zone-map block/page vetoes — must be byte-identical
// to the canonical local kernels (skyline_filter / knn_filter) run over
// everything the oracle holds, across seeds and dimensionalities. Plus:
// dominance pruning must engage at zone-map block boundaries without ever
// skipping an equal-corner (tie) block, and execute() must be
// byte-identical to the legacy query() virtual for range requests.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "bench_support/testbed.h"
#include "common/error.h"
#include "ght/ght_system.h"
#include "net/deployment.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "storage/brute_force_store.h"
#include "storage/column/column_store.h"
#include "storage/paged/paged_store.h"
#include "storage/query_request.h"

namespace poolnet {
namespace {

using net::NodeId;
using storage::Event;
using storage::KNearestQuery;
using storage::QueryReceipt;
using storage::QueryRequest;
using storage::RangeQuery;
using storage::SkylineQuery;
using storage::Values;

/// All four systems over ONE workload: Pool + DIM + flat oracle from the
/// testbed, GHT on its own deployment, and the paged central store in
/// pure-oracle mode with a tiny pool so queries actually page.
struct FourSystems {
  FourSystems(std::uint64_t seed, std::size_t dims, std::size_t nodes = 150) {
    benchsup::TestbedConfig config;
    config.nodes = nodes;
    config.seed = seed;
    config.dims = dims;
    tb = std::make_unique<benchsup::Testbed>(config);
    tb->insert_workload();

    const double side = net::field_side_for_density(nodes, 40.0, 20.0);
    const Rect field{0, 0, side, side};
    for (std::uint64_t attempt = 0;; ++attempt) {
      Rng rng(seed * 131 + attempt * 7919 + 5);
      auto pts = net::deploy_uniform(nodes, field, rng);
      auto candidate =
          std::make_unique<net::Network>(std::move(pts), field, 40.0);
      if (candidate->is_connected()) {
        ght_net = std::move(candidate);
        break;
      }
    }
    ght_gpsr = std::make_unique<routing::Gpsr>(*ght_net);
    ght = std::make_unique<ght::GhtSystem>(*ght_net, *ght_gpsr, dims);

    storage::PagedStoreOptions options;
    options.pool_pages = 4;
    options.page_bytes = 512;
    paged = std::make_unique<storage::PagedStore>(dims, options);

    for (const Event& e : tb->oracle().all()) {
      ght->insert(e.source, e);
      paged->insert(0, e);
    }
  }

  /// Every system that must agree (the flat oracle included: its skyline
  /// override prunes too, so it is itself under test).
  std::vector<storage::DcsSystem*> systems() {
    return {&tb->pool(), &tb->dim(), ght.get(), paged.get(), &tb->oracle()};
  }

  /// Canonical reference: the local kernel over every stored event.
  std::vector<Event> reference(const QueryRequest& request) const {
    std::vector<Event> all = tb->oracle().all();
    switch (request.cls()) {
      case storage::QueryClass::Skyline:
        storage::skyline_filter(request.skyline(), all);
        break;
      case storage::QueryClass::KNearest:
        storage::knn_filter(request.k_nearest(), all);
        break;
      case storage::QueryClass::Range: {
        std::vector<Event> matching;
        for (Event& e : all)
          if (request.range().matches(e)) matching.push_back(e);
        all = std::move(matching);
        break;
      }
    }
    return all;
  }

  std::unique_ptr<benchsup::Testbed> tb;
  std::unique_ptr<net::Network> ght_net;
  std::unique_ptr<routing::Gpsr> ght_gpsr;
  std::unique_ptr<ght::GhtSystem> ght;
  std::unique_ptr<storage::PagedStore> paged;
};

// ------------------------------------------------- cross-system equivalence

class QueryClassSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryClassSeeds, SkylineMatchesBruteForceAcrossDims) {
  for (std::size_t dims = 2; dims <= 5; ++dims) {
    FourSystems fx(GetParam(), dims);
    query::QueryGenerator gen({.dims = dims}, GetParam() * 17 + dims);
    Rng rng(GetParam() * 29 + dims);
    for (int trial = 0; trial < 5; ++trial) {
      const SkylineQuery q = gen.skyline_query();
      const std::vector<Event> want = fx.reference(q);
      ASSERT_FALSE(want.empty());  // a nonempty store always has a skyline
      for (storage::DcsSystem* sys : fx.systems()) {
        const NodeId sink = static_cast<NodeId>(rng.uniform_int(
            0, static_cast<std::int64_t>(fx.tb->config().nodes) - 1));
        const QueryReceipt got = sys->execute(sink, q);
        EXPECT_EQ(got.events, want)
            << sys->name() << " skyline diverged (dims=" << dims
            << ", trial=" << trial << ")";
      }
    }
  }
}

TEST_P(QueryClassSeeds, KNearestMatchesBruteForceAcrossDims) {
  for (std::size_t dims = 2; dims <= 5; ++dims) {
    FourSystems fx(GetParam(), dims);
    query::QueryGenerator gen({.dims = dims}, GetParam() * 43 + dims);
    Rng rng(GetParam() * 53 + dims);
    for (int trial = 0; trial < 5; ++trial) {
      const KNearestQuery q = gen.knn_query(/*k_max=*/8);
      const std::vector<Event> want = fx.reference(q);
      ASSERT_EQ(want.size(), std::min<std::size_t>(q.k, fx.tb->oracle().stored_count()));
      for (storage::DcsSystem* sys : fx.systems()) {
        const NodeId sink = static_cast<NodeId>(rng.uniform_int(
            0, static_cast<std::int64_t>(fx.tb->config().nodes) - 1));
        const QueryReceipt got = sys->execute(sink, q);
        EXPECT_EQ(got.events, want)
            << sys->name() << " k-NN diverged (dims=" << dims
            << ", k=" << q.k << ", trial=" << trial << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryClassSeeds, ::testing::Values(1, 2, 3));

TEST(QueryClasses, KLargerThanStoreReturnsEverythingNearestFirst) {
  FourSystems fx(4, 3);
  KNearestQuery q;
  q.target = Values{0.5, 0.5, 0.5};
  q.k = fx.tb->oracle().stored_count() + 5;
  const std::vector<Event> want = fx.reference(q);
  ASSERT_EQ(want.size(), fx.tb->oracle().stored_count());
  for (storage::DcsSystem* sys : fx.systems())
    EXPECT_EQ(sys->execute(0, q).events, want) << sys->name();
}

TEST(QueryClasses, SingleAttributeSkylineIsTheMaximum) {
  FourSystems fx(5, 3);
  FixedVec<bool, storage::kMaxDims> attrs(3, false);
  attrs[1] = true;
  const SkylineQuery q(3, attrs);
  const std::vector<Event> want = fx.reference(q);
  ASSERT_FALSE(want.empty());
  // Everything in the answer is tied at the attribute-1 maximum.
  for (const Event& e : want)
    EXPECT_DOUBLE_EQ(e.values[1], want.front().values[1]);
  for (storage::DcsSystem* sys : fx.systems())
    EXPECT_EQ(sys->execute(0, q).events, want) << sys->name();
}

TEST(QueryClasses, EmptyStoreAnswersEmpty) {
  benchsup::TestbedConfig config;
  config.nodes = 120;
  config.seed = 6;
  benchsup::Testbed tb(config);  // no insert_workload()
  const SkylineQuery sq(3);
  KNearestQuery kq;
  kq.target = Values{0.2, 0.4, 0.6};
  kq.k = 3;
  for (storage::DcsSystem* sys :
       {static_cast<storage::DcsSystem*>(&tb.pool()),
        static_cast<storage::DcsSystem*>(&tb.dim()),
        static_cast<storage::DcsSystem*>(&tb.oracle())}) {
    EXPECT_TRUE(sys->execute(0, sq).events.empty()) << sys->name();
    EXPECT_TRUE(sys->execute(0, kq).events.empty()) << sys->name();
  }
}

TEST(QueryClasses, RejectsDimensionalityMismatch) {
  FourSystems fx(7, 3);
  const SkylineQuery sq(2);
  KNearestQuery kq;
  kq.target = Values{0.5, 0.5};
  for (storage::DcsSystem* sys : fx.systems()) {
    EXPECT_THROW(sys->execute(0, sq), ConfigError) << sys->name();
    EXPECT_THROW(sys->execute(0, kq), ConfigError) << sys->name();
  }
}

// ------------------------------------- pruning at zone-map block boundaries

TEST(QueryClasses, SkylinePruningSkipsDominatedBlocks) {
  storage::BruteForceStore store(2);
  Event dominator;
  dominator.id = 1;
  dominator.values = Values{0.9, 0.9};
  store.insert(0, dominator);
  // Three more full blocks of strictly dominated events: their zone-map
  // corners are at most (0.5, 0.5), so once the dominator is collected
  // from block 0 the veto must reject them without scanning a row.
  Rng rng(11);
  for (std::size_t i = 0; i < 3 * storage::column::kBlockRows; ++i) {
    Event e;
    e.id = 2 + i;
    e.values = Values{rng.uniform(0.1, 0.5), rng.uniform(0.1, 0.5)};
    store.insert(0, e);
  }
  const std::uint64_t skipped_before = store.scan_stats()->blocks_skipped;
  const QueryReceipt got = store.skyline(0, SkylineQuery(2));
  ASSERT_EQ(got.events.size(), 1u);
  EXPECT_EQ(got.events.front().id, 1u);
  EXPECT_GE(store.scan_stats()->blocks_skipped - skipped_before, 3u);
}

TEST(QueryClasses, EqualCornerBlockIsNeverSkipped) {
  // Ties are mutually non-dominated: an event EQUAL to the collected
  // dominator on every attribute sits in a later block whose corner the
  // veto must admit (strict dominance only), so both ties are returned.
  storage::BruteForceStore store(2);
  Event first;
  first.id = 1;
  first.values = Values{0.8, 0.8};
  store.insert(0, first);
  Rng rng(12);
  for (std::size_t i = 0; i < storage::column::kBlockRows; ++i) {
    Event e;
    e.id = 2 + i;
    e.values = Values{rng.uniform(0.1, 0.5), rng.uniform(0.1, 0.5)};
    store.insert(0, e);
  }
  Event tie;
  tie.id = 2 + storage::column::kBlockRows;  // lands beyond block 0
  tie.values = Values{0.8, 0.8};
  store.insert(0, tie);
  const QueryReceipt got = store.skyline(0, SkylineQuery(2));
  ASSERT_EQ(got.events.size(), 2u);
  EXPECT_EQ(got.events[0].id, first.id);
  EXPECT_EQ(got.events[1].id, tie.id);
}

TEST(QueryClasses, KnnStopsBeforeFarBlocks) {
  storage::BruteForceStore store(2);
  // Block 0: a tight cluster at the target. Blocks 1..3: far corner.
  Rng rng(13);
  for (std::size_t i = 0; i < storage::column::kBlockRows; ++i) {
    Event e;
    e.id = 1 + i;
    e.values = Values{rng.uniform(0.45, 0.55), rng.uniform(0.45, 0.55)};
    store.insert(0, e);
  }
  for (std::size_t i = 0; i < 3 * storage::column::kBlockRows; ++i) {
    Event e;
    e.id = 1 + storage::column::kBlockRows + i;
    e.values = Values{rng.uniform(0.9, 1.0), rng.uniform(0.9, 1.0)};
    store.insert(0, e);
  }
  KNearestQuery q;
  q.target = Values{0.5, 0.5};
  q.k = 4;
  const std::uint64_t skipped_before = store.scan_stats()->blocks_skipped;
  const QueryReceipt got = store.k_nearest(0, q);
  ASSERT_EQ(got.events.size(), 4u);
  for (const Event& e : got.events) EXPECT_LE(e.id, storage::column::kBlockRows);
  EXPECT_GE(store.scan_stats()->blocks_skipped - skipped_before, 3u);
}

// ------------------------------------------- execute() vs the legacy virtual

TEST(QueryClasses, ExecuteIsByteIdenticalToLegacyRangeQuery) {
  FourSystems fx(8, 3);
  query::QueryGenerator gen({.dims = 3}, 77);
  for (int trial = 0; trial < 10; ++trial) {
    const RangeQuery q = gen.exact_range();
    for (storage::DcsSystem* sys : fx.systems()) {
      const QueryReceipt legacy = sys->query(0, q);
      const QueryReceipt unified = sys->execute(0, QueryRequest{q});
      EXPECT_EQ(unified.events, legacy.events) << sys->name();
      EXPECT_EQ(unified.messages, legacy.messages) << sys->name();
      EXPECT_EQ(unified.query_messages, legacy.query_messages) << sys->name();
      EXPECT_EQ(unified.reply_messages, legacy.reply_messages) << sys->name();
      EXPECT_EQ(unified.index_nodes_visited, legacy.index_nodes_visited)
          << sys->name();
    }
  }
}

TEST(QueryClasses, PoolSkylineVisitsFewerCellsThanFlood) {
  // The tentpole's pruning claim: corner-ordered collection must beat the
  // flood baseline's visit count (GHT has no pruning structure and visits
  // every storing node).
  FourSystems fx(9, 3, /*nodes=*/300);
  const SkylineQuery q(3);
  const QueryReceipt pool = fx.tb->pool().skyline(0, q);
  const QueryReceipt flood = fx.ght->skyline(0, q);
  EXPECT_EQ(pool.events, flood.events);
  EXPECT_LT(pool.index_nodes_visited, flood.index_nodes_visited);
}

}  // namespace
}  // namespace poolnet
