#include "routing/route_cache.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "bench_support/testbed.h"
#include "net/deployment.h"
#include "query/query_gen.h"
#include "routing/gpsr.h"

namespace poolnet::routing {
namespace {

using net::Network;
using net::NodeId;

Network random_connected_net(std::uint64_t seed, std::size_t n) {
  const double side = net::field_side_for_density(n, 40.0, 20.0);
  const Rect field{0, 0, side, side};
  for (std::uint64_t attempt = 0;; ++attempt) {
    Rng rng(seed + attempt * 1000003);
    auto pts = net::deploy_uniform(n, field, rng);
    Network net(std::move(pts), field, 40.0);
    if (net.is_connected()) return net;
  }
}

void expect_same_result(const RouteResult& a, const RouteResult& b) {
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.perimeter_hops, b.perimeter_hops);
}

// The core invariant: the cache replays exactly what GPSR would compute,
// for every pair, no matter how often or in what order pairs repeat.
TEST(RouteCache, CachedEqualsUncachedOverRandomPairs) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const auto net = random_connected_net(seed, 250);
    const Gpsr gpsr(net);
    const RouteCache cache(gpsr);  // unbounded, default max_hops
    Rng rng(seed ^ 0xabcd);
    const auto n = static_cast<std::int64_t>(net.size());
    for (int trial = 0; trial < 1000; ++trial) {
      const auto src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
      const auto dst = static_cast<NodeId>(rng.uniform_int(0, n - 1));
      expect_same_result(cache.route_to_node(src, dst),
                         gpsr.route_to_node(src, dst));
    }
    EXPECT_GT(cache.stats().hits, 0u) << "pairs repeat at this draw count";
  }
}

TEST(RouteCache, CachedEqualsUncachedOverLocations) {
  const auto net = random_connected_net(7, 200);
  const Gpsr gpsr(net);
  RouteCacheConfig config;
  config.location_quantum = 5.0;
  config.max_hops = 0;  // store everything
  const RouteCache cache(gpsr, config);
  Rng rng(77);
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i)
    points.push_back({rng.uniform(0, net.field().max_x),
                      rng.uniform(0, net.field().max_y)});
  // Two passes: the second is all cache hits and must replay verbatim.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& p : points) {
      expect_same_result(cache.route_to_location(3, p),
                         gpsr.route_to_location(3, p));
    }
  }
  EXPECT_GE(cache.stats().hits, 100u);
}

// Quantized bucketing must never alias two distinct destinations: points
// closer together than the quantum share a bucket but each must get its
// own route.
TEST(RouteCache, QuantizedBucketsKeepExactDestinations) {
  const auto net = random_connected_net(8, 200);
  const Gpsr gpsr(net);
  RouteCacheConfig config;
  config.location_quantum = 1000.0;  // everything in one bucket
  config.max_hops = 0;
  const RouteCache cache(gpsr, config);
  Rng rng(88);
  for (int i = 0; i < 50; ++i) {
    const Point p{rng.uniform(0, net.field().max_x),
                  rng.uniform(0, net.field().max_y)};
    expect_same_result(cache.route_to_location(0, p),
                       gpsr.route_to_location(0, p));
  }
}

TEST(RouteCache, CountsHitsAndMisses) {
  const auto net = random_connected_net(9, 150);
  const Gpsr gpsr(net);
  const RouteCache cache(gpsr);
  cache.route_to_node(0, 100);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  cache.route_to_node(0, 100);
  cache.route_to_node(0, 100);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_NEAR(cache.stats().hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(RouteCache, DisabledCacheDelegatesWithoutStoring) {
  const auto net = random_connected_net(10, 150);
  const Gpsr gpsr(net);
  RouteCacheConfig config;
  config.enabled = false;
  const RouteCache cache(gpsr, config);
  expect_same_result(cache.route_to_node(1, 140), gpsr.route_to_node(1, 140));
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// max_hops is a storage filter, never a correctness filter: routes longer
// than the cap are recomputed each call but still returned exactly.
TEST(RouteCache, MaxHopsFiltersStorageNotResults) {
  const auto net = random_connected_net(11, 300);
  const Gpsr gpsr(net);
  RouteCacheConfig config;
  config.max_hops = 2;
  const RouteCache cache(gpsr, config);
  Rng rng(111);
  const auto n = static_cast<std::int64_t>(net.size());
  std::size_t long_routes = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto dst = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto direct = gpsr.route_to_node(src, dst);
    expect_same_result(cache.route_to_node(src, dst), direct);
    if (direct.path.size() > 2) ++long_routes;
  }
  ASSERT_GT(long_routes, 0u) << "field must produce routes above the cap";
  // Every stored entry is a short route; at 300 nodes there are far fewer
  // short pairs than draws, so the table stays well below the draw count.
  EXPECT_LT(cache.stats().entries, 200u - long_routes + 1u);
}

TEST(RouteCache, LruEvictionRespectsByteBound) {
  const auto net = random_connected_net(12, 400);
  const Gpsr gpsr(net);
  RouteCacheConfig config;
  config.max_bytes = 8 * 1024;
  config.max_hops = 0;  // store everything: maximum pressure on the bound
  const RouteCache cache(gpsr, config);
  Rng rng(1212);
  const auto n = static_cast<std::int64_t>(net.size());
  for (int trial = 0; trial < 2000; ++trial) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto dst = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    cache.route_to_node(src, dst);
    ASSERT_LE(cache.stats().bytes, config.max_bytes)
        << "after trial " << trial;
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_GT(cache.stats().entries, 0u);
  // Evicted entries recompute correctly on their next use.
  Rng rng2(1212);
  for (int trial = 0; trial < 50; ++trial) {
    const auto src = static_cast<NodeId>(rng2.uniform_int(0, n - 1));
    const auto dst = static_cast<NodeId>(rng2.uniform_int(0, n - 1));
    expect_same_result(cache.route_to_node(src, dst),
                       gpsr.route_to_node(src, dst));
  }
}

TEST(RouteCache, ClearDropsEntriesKeepsCounters) {
  const auto net = random_connected_net(13, 150);
  const Gpsr gpsr(net);
  RouteCache cache(gpsr);
  cache.route_to_node(0, 100);
  cache.route_to_node(0, 100);
  ASSERT_GT(cache.stats().entries, 0u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);  // counters survive
  cache.route_to_node(0, 100);
  EXPECT_EQ(cache.stats().misses, 2u);  // refilled after clear
}

TEST(RouteCacheSpec, ParsesOnOffAndLru) {
  RouteCacheConfig config;
  std::string error;
  ASSERT_TRUE(parse_route_cache_spec("off", &config, &error));
  EXPECT_FALSE(config.enabled);
  ASSERT_TRUE(parse_route_cache_spec("on", &config, &error));
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.max_bytes, 0u);
  ASSERT_TRUE(parse_route_cache_spec("lru:4096", &config, &error));
  EXPECT_EQ(config.max_bytes, 4096u);
  ASSERT_TRUE(parse_route_cache_spec("lru:64k", &config, &error));
  EXPECT_EQ(config.max_bytes, 64000u);
  ASSERT_TRUE(parse_route_cache_spec("lru:2m", &config, &error));
  EXPECT_EQ(config.max_bytes, 2000000u);
  EXPECT_FALSE(parse_route_cache_spec("lru:", &config, &error));
  EXPECT_FALSE(parse_route_cache_spec("lru:-3", &config, &error));
  EXPECT_FALSE(parse_route_cache_spec("sometimes", &config, &error));
}

// ---------------------------------------------------------------------------
// Parallel sweep determinism: the whole point of the engine is that thread
// count is invisible in the numbers.

bool bit_identical(const sim::RunningStat& a, const sim::RunningStat& b) {
  return a.count() == b.count() &&
         std::memcmp(&a, &b, sizeof(sim::RunningStat)) == 0;
}

bool bit_identical(const benchsup::SystemQueryStats& a,
                   const benchsup::SystemQueryStats& b) {
  return bit_identical(a.messages, b.messages) &&
         bit_identical(a.query_messages, b.query_messages) &&
         bit_identical(a.reply_messages, b.reply_messages) &&
         bit_identical(a.index_nodes, b.index_nodes) &&
         bit_identical(a.results, b.results) &&
         bit_identical(a.energy_mj, b.energy_mj);
}

bool bit_identical(const benchsup::PairedRun& a, const benchsup::PairedRun& b) {
  return a.queries == b.queries && a.pool_mismatches == b.pool_mismatches &&
         a.dim_mismatches == b.dim_mismatches &&
         bit_identical(a.pool, b.pool) && bit_identical(a.dim, b.dim);
}

benchsup::PairedRun sweep_job(std::size_t size, std::uint64_t seed,
                              const RouteCacheConfig& route_cache) {
  benchsup::TestbedConfig config;
  config.nodes = size;
  config.seed = seed;
  config.route_cache = route_cache;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  query::QueryGenerator qgen({.dims = config.dims}, seed * 7919 + 5);
  const auto queries = benchsup::generate_queries(
      6, [&qgen] { return qgen.exact_range(); });
  return benchsup::run_paired_queries(tb, queries, seed * 31 + 9);
}

std::vector<benchsup::SweepJob> make_jobs(const RouteCacheConfig& rc) {
  std::vector<benchsup::SweepJob> jobs;
  const std::vector<std::size_t> sizes{150, 250};
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      jobs.push_back({g, [size = sizes[g], seed, rc] {
                        return sweep_job(size, seed, rc);
                      }});
    }
  }
  return jobs;
}

TEST(RunSweepParallel, ThreadCountIsInvisibleInResults) {
  const RouteCacheConfig rc;  // cache on, defaults
  const auto serial = benchsup::run_sweep_parallel(2, make_jobs(rc), 1);
  ASSERT_EQ(serial.size(), 2u);
  EXPECT_EQ(serial[0].pool_mismatches, 0u);
  EXPECT_EQ(serial[0].dim_mismatches, 0u);
  EXPECT_EQ(serial[0].queries, 12u);  // 6 queries x 2 seeds
  for (const std::size_t threads : {2u, 8u}) {
    const auto parallel =
        benchsup::run_sweep_parallel(2, make_jobs(rc), threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t g = 0; g < serial.size(); ++g) {
      EXPECT_TRUE(bit_identical(serial[g], parallel[g]))
          << "group " << g << " at " << threads << " threads";
    }
  }
}

TEST(RunSweepParallel, RouteCacheIsInvisibleInResults) {
  RouteCacheConfig off;
  off.enabled = false;
  const auto uncached = benchsup::run_sweep_parallel(2, make_jobs(off), 1);
  const auto cached = benchsup::run_sweep_parallel(2, make_jobs({}), 4);
  ASSERT_EQ(uncached.size(), cached.size());
  for (std::size_t g = 0; g < uncached.size(); ++g) {
    EXPECT_TRUE(bit_identical(uncached[g], cached[g])) << "group " << g;
  }
}

TEST(ParallelMap, SerialAndParallelAgree) {
  const auto square = [](std::size_t i) { return i * i; };
  const auto serial = benchsup::parallel_map<std::size_t>(100, 1, square);
  const auto parallel = benchsup::parallel_map<std::size_t>(100, 8, square);
  EXPECT_EQ(serial, parallel);
  ASSERT_EQ(parallel.size(), 100u);
  EXPECT_EQ(parallel[99], 99u * 99u);
}

TEST(ParallelMap, PropagatesFirstExceptionByIndex) {
  EXPECT_THROW(
      benchsup::parallel_map<int>(64, 4,
                                  [](std::size_t i) {
                                    if (i % 7 == 3)
                                      throw std::runtime_error("boom");
                                    return static_cast<int>(i);
                                  }),
      std::runtime_error);
}

}  // namespace
}  // namespace poolnet::routing
