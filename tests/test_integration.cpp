// End-to-end integration: full deployments, both systems, every query
// type, results always identical to the oracle, and the paper's headline
// qualitative claims hold on small testbeds.
#include <gtest/gtest.h>

#include "bench_support/experiment.h"
#include "bench_support/testbed.h"
#include "query/query_gen.h"

namespace poolnet::benchsup {
namespace {

class IntegrationSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegrationSeeds, AllQueryTypesExactAcrossSystems) {
  TestbedConfig config;
  config.nodes = 300;
  config.seed = GetParam();
  Testbed tb(config);
  tb.insert_workload();

  query::QueryGenerator qgen({.dims = 3}, GetParam() * 31 + 7);
  std::vector<storage::RangeQuery> queries;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(qgen.exact_range());
    queries.push_back(qgen.partial_range(1));
    queries.push_back(qgen.partial_range(2));
    queries.push_back(qgen.exact_point());
    queries.push_back(qgen.partial_point(1));
    for (std::size_t n = 0; n < 3; ++n) queries.push_back(qgen.partial_at(n));
  }
  const auto run = run_paired_queries(tb, queries, GetParam() * 13 + 1);
  EXPECT_EQ(run.pool_mismatches, 0u);
  EXPECT_EQ(run.dim_mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Integration, ExponentialQueriesCheaperThanUniform) {
  // The Figure 6(a)/(b) contrast: most exponential-size queries are small,
  // so both systems send far fewer messages.
  TestbedConfig config;
  config.nodes = 400;
  config.seed = 11;
  Testbed tb(config);
  tb.insert_workload();

  query::QueryGenerator uni(
      {.dims = 3, .dist = query::RangeSizeDistribution::Uniform}, 1);
  query::QueryGenerator expo(
      {.dims = 3, .dist = query::RangeSizeDistribution::Exponential,
       .exp_mean = 0.1},
      1);
  const auto uni_run = run_paired_queries(
      tb, generate_queries(60, [&] { return uni.exact_range(); }), 2);
  const auto exp_run = run_paired_queries(
      tb, generate_queries(60, [&] { return expo.exact_range(); }), 2);
  EXPECT_LT(exp_run.pool.messages.mean(), uni_run.pool.messages.mean());
  EXPECT_LT(exp_run.dim.messages.mean(), uni_run.dim.messages.mean());
}

TEST(Integration, PoolBeatsDimOnPartialMatchQueries) {
  // The headline Figure 7(a) effect at a reduced scale.
  TestbedConfig config;
  config.nodes = 500;
  config.seed = 21;
  Testbed tb(config);
  tb.insert_workload();

  query::QueryGenerator qgen({.dims = 3}, 3);
  const auto run = run_paired_queries(
      tb, generate_queries(80, [&] { return qgen.partial_range(1); }), 4);
  EXPECT_LT(run.pool.messages.mean(), run.dim.messages.mean());
}

TEST(Integration, DimCostDependsOnUnspecifiedDimensionPoolDoesNot) {
  // The Figure 7(b) effect: DIM is much worse at 1@1 than 1@3; Pool is
  // position-insensitive (within noise).
  TestbedConfig config;
  config.nodes = 500;
  config.seed = 31;
  Testbed tb(config);
  tb.insert_workload();

  query::QueryGenerator qgen({.dims = 3}, 5);
  const auto at1 = run_paired_queries(
      tb, generate_queries(80, [&] { return qgen.partial_at(0); }), 6);
  const auto at3 = run_paired_queries(
      tb, generate_queries(80, [&] { return qgen.partial_at(2); }), 6);
  EXPECT_GT(at1.dim.messages.mean(), at3.dim.messages.mean());
  // Pool varies far less across positions than DIM does.
  const double pool_ratio =
      at1.pool.messages.mean() / at3.pool.messages.mean();
  const double dim_ratio = at1.dim.messages.mean() / at3.dim.messages.mean();
  EXPECT_LT(std::abs(pool_ratio - 1.0), std::abs(dim_ratio - 1.0));
}

TEST(Integration, InsertionCostsComparableAcrossSystems) {
  // §5.2's claim: both systems pay one GPSR unicast per event.
  TestbedConfig config;
  config.nodes = 400;
  config.seed = 41;
  Testbed tb(config);
  const auto events = tb.insert_workload();
  const double pool_per_event =
      static_cast<double>(tb.pool_insert_traffic().total) / events;
  const double dim_per_event =
      static_cast<double>(tb.dim_insert_traffic().total) / events;
  EXPECT_GT(pool_per_event, 1.0);
  EXPECT_GT(dim_per_event, 1.0);
  EXPECT_LT(pool_per_event / dim_per_event, 2.0);
  EXPECT_GT(pool_per_event / dim_per_event, 0.5);
}

TEST(Integration, HigherDimensionalDeploymentsWork) {
  for (const std::size_t dims : {std::size_t{2}, std::size_t{4},
                                 std::size_t{5}}) {
    TestbedConfig config;
    config.nodes = 250;
    config.dims = dims;
    config.seed = 50 + dims;
    config.events_per_node = 2;
    Testbed tb(config);
    tb.insert_workload();
    query::QueryGenerator qgen({.dims = dims}, dims);
    const auto run = run_paired_queries(
        tb, generate_queries(15, [&] { return qgen.exact_range(); }), 51);
    EXPECT_EQ(run.pool_mismatches, 0u) << "dims=" << dims;
    EXPECT_EQ(run.dim_mismatches, 0u) << "dims=" << dims;
  }
}

TEST(Integration, RepeatQueriesAreDeterministic) {
  TestbedConfig config;
  config.nodes = 250;
  config.seed = 61;
  Testbed tb(config);
  tb.insert_workload();
  query::QueryGenerator qgen({.dims = 3}, 62);
  const auto queries = generate_queries(10, [&] { return qgen.exact_range(); });
  const auto a = run_paired_queries(tb, queries, 63);
  const auto b = run_paired_queries(tb, queries, 63);
  EXPECT_DOUBLE_EQ(a.pool.messages.mean(), b.pool.messages.mean());
  EXPECT_DOUBLE_EQ(a.dim.messages.mean(), b.dim.messages.mean());
}

}  // namespace
}  // namespace poolnet::benchsup
