// Boundary fuzzing: events and queries biased hard toward the values
// where floating-point and half-open-interval bugs live (0, 1, 0.5,
// cell edges, zone splits), checked end-to-end across all three DCS
// systems against the oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "core/pool_system.h"
#include "dim/dim_system.h"
#include "ght/ght_system.h"
#include "net/deployment.h"
#include "routing/gpsr.h"
#include "storage/brute_force_store.h"

namespace poolnet {
namespace {

using net::Network;
using net::NodeId;
using storage::Event;
using storage::RangeQuery;

/// Values drawn from a boundary-heavy distribution: exact cell edges for
/// l = 10 (multiples of 0.1), zone-split points (dyadic fractions), the
/// extremes, and a few uniform fillers.
double boundary_value(Rng& rng) {
  switch (rng.uniform_int(0, 5)) {
    case 0: return 0.0;
    case 1: return 1.0;
    case 2: return static_cast<double>(rng.uniform_int(0, 10)) / 10.0;
    case 3: return static_cast<double>(rng.uniform_int(0, 16)) / 16.0;
    case 4: return 0.5;
    default: return rng.uniform();
  }
}

struct Fixture {
  explicit Fixture(std::uint64_t seed) : oracle(3) {
    const double side = net::field_side_for_density(200, 40.0, 20.0);
    const Rect field{0, 0, side, side};
    for (std::uint64_t attempt = 0;; ++attempt) {
      Rng rng(seed + attempt * 37);
      auto pts = net::deploy_uniform(200, field, rng);
      auto candidate = std::make_unique<Network>(std::move(pts), field, 40.0);
      if (candidate->is_connected()) {
        network = std::move(candidate);
        break;
      }
    }
    gpsr = std::make_unique<routing::Gpsr>(*network);
    pool = std::make_unique<core::PoolSystem>(*network, *gpsr, 3,
                                              core::PoolConfig{});
    dim = std::make_unique<dim::DimSystem>(*network, *gpsr, 3);
    ght = std::make_unique<ght::GhtSystem>(*network, *gpsr, 3);
  }

  std::unique_ptr<Network> network;
  std::unique_ptr<routing::Gpsr> gpsr;
  std::unique_ptr<core::PoolSystem> pool;
  std::unique_ptr<dim::DimSystem> dim;
  std::unique_ptr<ght::GhtSystem> ght;
  storage::BruteForceStore oracle;
};

std::vector<std::uint64_t> ids(const std::vector<Event>& evs) {
  std::vector<std::uint64_t> out;
  for (const auto& e : evs) out.push_back(e.id);
  std::sort(out.begin(), out.end());
  return out;
}

class BoundaryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundaryFuzz, RangeQueriesExactOnBoundaryHeavyData) {
  Fixture fx(GetParam());
  Rng rng(GetParam() * 7919 + 1);
  for (int i = 0; i < 300; ++i) {
    Event e;
    e.id = static_cast<std::uint64_t>(i + 1);
    e.source = static_cast<NodeId>(i % fx.network->size());
    for (int d = 0; d < 3; ++d) e.values.push_back(boundary_value(rng));
    fx.pool->insert(e.source, e);
    fx.dim->insert(e.source, e);
    fx.oracle.insert(e.source, e);
  }

  for (int i = 0; i < 60; ++i) {
    RangeQuery::Bounds b;
    for (int d = 0; d < 3; ++d) {
      double lo = boundary_value(rng);
      double hi = boundary_value(rng);
      if (lo > hi) std::swap(lo, hi);
      b.push_back({lo, hi});
    }
    const RangeQuery q(b);
    const auto want = ids(fx.oracle.matching(q));
    EXPECT_EQ(ids(fx.pool->query(0, q).events), want) << "Pool " << q;
    EXPECT_EQ(ids(fx.dim->query(0, q).events), want) << "DIM " << q;
  }
}

TEST_P(BoundaryFuzz, PointQueriesAtStoredBoundaryValues) {
  Fixture fx(GetParam() ^ 0x5a5a);
  Rng rng(GetParam() * 31 + 3);
  std::vector<Event> inserted;
  for (int i = 0; i < 200; ++i) {
    Event e;
    e.id = static_cast<std::uint64_t>(i + 1);
    e.source = static_cast<NodeId>(i % fx.network->size());
    for (int d = 0; d < 3; ++d) e.values.push_back(boundary_value(rng));
    fx.pool->insert(e.source, e);
    fx.dim->insert(e.source, e);
    fx.ght->insert(e.source, e);
    fx.oracle.insert(e.source, e);
    inserted.push_back(e);
  }
  for (int i = 0; i < 40; ++i) {
    const auto& target = inserted[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(inserted.size()) - 1))];
    RangeQuery::Bounds b;
    for (std::size_t d = 0; d < 3; ++d)
      b.push_back({target.values[d], target.values[d]});
    const RangeQuery q(b);
    const auto want = ids(fx.oracle.matching(q));
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(ids(fx.pool->query(0, q).events), want) << "Pool " << q;
    EXPECT_EQ(ids(fx.dim->query(0, q).events), want) << "DIM " << q;
    EXPECT_EQ(ids(fx.ght->query(0, q).events), want) << "GHT " << q;
  }
}

TEST_P(BoundaryFuzz, AggregatesExactOnBoundaryHeavyData) {
  Fixture fx(GetParam() ^ 0xa5a5);
  Rng rng(GetParam() * 13 + 5);
  for (int i = 0; i < 200; ++i) {
    Event e;
    e.id = static_cast<std::uint64_t>(i + 1);
    e.source = static_cast<NodeId>(i % fx.network->size());
    for (int d = 0; d < 3; ++d) e.values.push_back(boundary_value(rng));
    fx.pool->insert(e.source, e);
    fx.dim->insert(e.source, e);
    fx.oracle.insert(e.source, e);
  }
  for (int i = 0; i < 10; ++i) {
    RangeQuery::Bounds b;
    for (int d = 0; d < 3; ++d) {
      double lo = boundary_value(rng);
      double hi = boundary_value(rng);
      if (lo > hi) std::swap(lo, hi);
      b.push_back({lo, hi});
    }
    const RangeQuery q(b);
    const auto want =
        fx.oracle.aggregate_oracle(q, storage::AggregateKind::Sum, 2);
    const auto pr = fx.pool->aggregate(0, q, storage::AggregateKind::Sum, 2);
    const auto dr = fx.dim->aggregate(0, q, storage::AggregateKind::Sum, 2);
    EXPECT_EQ(pr.result.count, want.count) << q;
    EXPECT_EQ(dr.result.count, want.count) << q;
    EXPECT_NEAR(pr.result.value, want.value, 1e-9);
    EXPECT_NEAR(dr.result.value, want.value, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundaryFuzz,
                         ::testing::Values(1, 2, 3, 4));

TEST(GpsrPathological, PerfectGridTopology) {
  // Exactly collinear rows/columns: degenerate geometry for the Gabriel
  // test and the right-hand rule. Routing must still always deliver.
  std::vector<Point> pts;
  for (int y = 0; y < 10; ++y)
    for (int x = 0; x < 10; ++x)
      pts.push_back({x * 30.0, y * 30.0});
  net::Network network(pts, Rect{0, 0, 280, 280}, 40.0);
  ASSERT_TRUE(network.is_connected());
  const routing::Gpsr gpsr(network);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, 99));
    const auto dst = static_cast<NodeId>(rng.uniform_int(0, 99));
    const auto r = gpsr.route_to_node(src, dst);
    EXPECT_TRUE(r.exact) << src << "->" << dst;
  }
}

TEST(GpsrPathological, SingleLineOfNodes) {
  std::vector<Point> pts;
  for (int x = 0; x < 30; ++x) pts.push_back({x * 25.0, 50.0});
  net::Network network(pts, Rect{0, 0, 750, 100}, 40.0);
  const routing::Gpsr gpsr(network);
  const auto r = gpsr.route_to_node(0, 29);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.hops(), 29u);
}

TEST(GpsrPathological, StarTopology) {
  // Hub and spokes: spokes only reach each other through the hub.
  std::vector<Point> pts{{50, 50}};
  constexpr double kPi = 3.14159265358979323846;
  for (int i = 0; i < 8; ++i) {
    pts.push_back({50 + 35 * std::cos(i * kPi / 4),
                   50 + 35 * std::sin(i * kPi / 4)});
  }
  net::Network network(pts, Rect{0, 0, 100, 100}, 38.0);
  ASSERT_TRUE(network.is_connected());
  const routing::Gpsr gpsr(network);
  for (NodeId a = 1; a <= 8; ++a) {
    for (NodeId b = 1; b <= 8; ++b) {
      const auto r = gpsr.route_to_node(a, b);
      EXPECT_TRUE(r.exact) << a << "->" << b;
    }
  }
}

}  // namespace
}  // namespace poolnet
