#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.h"
#include "common/rng.h"

namespace poolnet::sim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, SingleValueHasZeroVariance) {
  RunningStat s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeEqualsCombinedStream) {
  poolnet::Rng rng(77);
  RunningStat whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmptyIsIdentity) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(1.0, 4);  // [0,1) [1,2) [2,3) [3,4)
  for (const double x : {0.5, 1.5, 1.9, 3.0, 10.0}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, NegativeClampsToFirstBucket) {
  Histogram h(1.0, 2);
  h.add(-3.0);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, QuantileResolvesToBucketEdge) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 1.0);
}

TEST(Histogram, InvalidConfigAsserts) {
  EXPECT_THROW(Histogram(0.0, 4), poolnet::AssertionError);
  EXPECT_THROW(Histogram(1.0, 0), poolnet::AssertionError);
}

TEST(CounterSet, AccumulatesByName) {
  CounterSet c;
  c.add("msgs");
  c.add("msgs", 2.0);
  c.add("drops", 0.5);
  EXPECT_DOUBLE_EQ(c.get("msgs"), 3.0);
  EXPECT_DOUBLE_EQ(c.get("drops"), 0.5);
  EXPECT_DOUBLE_EQ(c.get("unknown"), 0.0);
  EXPECT_EQ(c.all().size(), 2u);
}

}  // namespace
}  // namespace poolnet::sim
