// A/B proof that pooled buffers are a pure allocation strategy.
//
// The hot-path memory work (BufferPool-backed route caches, scratch
// route/leg handles, the SoA spatial index) must never change WHAT the
// simulator computes — only where the bytes live. These tests fingerprint
// entire runs (insert traffic, per-query receipts in result order, batch
// and aggregate receipts, route-cache counters) and require bit equality
// between the pooled and plain-heap configurations, across systems,
// seeds, and thread counts; plus direct coverage of the BufferPool
// free-list mechanics (reuse-after-clear, high-water accounting).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bench_support/parallel.h"
#include "bench_support/testbed.h"
#include "common/object_pool.h"
#include "ght/ght_system.h"
#include "net/deployment.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "routing/route_cache.h"

namespace poolnet {
namespace {

using benchsup::Testbed;
using benchsup::TestbedConfig;

/// Every observable of a run flattened into comparable words. Doubles go
/// in as raw bits — equality here means BYTE equality, not tolerance.
struct Fingerprint {
  std::vector<std::uint64_t> words;

  void add(std::uint64_t w) { words.push_back(w); }
  void add_bits(double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    words.push_back(bits);
  }
  void add_receipt(const storage::QueryReceipt& r) {
    add(r.messages);
    add(r.query_messages);
    add(r.reply_messages);
    add(r.index_nodes_visited);
    // Result CONTENT AND ORDER: a pooled buffer must not reorder replies.
    for (const auto& e : r.events) add(e.id);
  }

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// One full Pool+DIM testbed run under the given allocation strategy.
Fingerprint run_testbed(std::uint64_t seed, bool pooled) {
  TestbedConfig config;
  config.nodes = 200;
  config.seed = seed;
  config.pooled_buffers = pooled;
  Testbed tb(config);
  tb.insert_workload();

  Fingerprint fp;
  fp.add(tb.pool_insert_traffic().total);
  fp.add(tb.dim_insert_traffic().total);
  fp.add_bits(tb.pool_insert_traffic().energy_j);
  fp.add_bits(tb.dim_insert_traffic().energy_j);

  query::QueryGenerator qgen({.dims = 3}, seed * 31 + 7);
  Rng sinks(seed * 17 + 3);
  std::vector<storage::RangeQuery> queries;
  for (int i = 0; i < 12; ++i) queries.push_back(qgen.exact_range());
  for (const auto& q : queries) {
    const net::NodeId sink = tb.random_node(sinks);
    fp.add_receipt(tb.pool().query(sink, q));
    fp.add_receipt(tb.dim().query(sink, q));
  }

  const auto batch_pool = tb.pool().query_batch(0, queries);
  const auto batch_dim = tb.dim().query_batch(0, queries);
  for (const auto* b : {&batch_pool, &batch_dim}) {
    fp.add(b->messages);
    fp.add(b->messages_saved);
    fp.add(b->unique_cell_visits);
    for (const auto& r : b->per_query)
      for (const auto& e : r.events) fp.add(e.id);
  }

  const auto agg = tb.pool().aggregate(0, queries.front(),
                                       storage::AggregateKind::Max, 0);
  fp.add(agg.messages);
  fp.add(agg.index_nodes_visited);

  // Cache counters see the same hit/miss sequence either way.
  for (const auto* cache : {tb.pool_route_cache(), tb.dim_route_cache()}) {
    EXPECT_NE(cache, nullptr) << "route cache should default on";
    if (!cache) continue;
    const auto s = cache->stats();
    fp.add(s.hits);
    fp.add(s.misses);
    fp.add(s.entries);
  }
  return fp;
}

// ASSERT_NE inside a value-returning function needs this wrapper shape.
void expect_testbed_ab_identical(std::uint64_t seed) {
  Fingerprint heap, pool;
  {
    SCOPED_TRACE("heap");
    heap = run_testbed(seed, /*pooled=*/false);
  }
  {
    SCOPED_TRACE("pooled");
    pool = run_testbed(seed, /*pooled=*/true);
  }
  EXPECT_EQ(heap.words, pool.words) << "seed " << seed;
}

TEST(PoolAlloc, PoolAndDimReceiptsByteIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    expect_testbed_ab_identical(seed);
  }
}

/// GHT over its own network, routed through a RouteCache whose path
/// buffers come from an enabled or pass-through BufferPool.
Fingerprint run_ght(std::uint64_t seed, bool pooled) {
  const std::size_t n = 200;
  const double side = net::field_side_for_density(n, 40.0, 20.0);
  const Rect field{0, 0, side, side};
  std::unique_ptr<net::Network> network;
  for (std::uint64_t attempt = 0; !network; ++attempt) {
    Rng rng(seed + attempt * 7919);
    auto pts = net::deploy_uniform(n, field, rng);
    auto candidate =
        std::make_unique<net::Network>(std::move(pts), field, 40.0);
    if (candidate->is_connected()) network = std::move(candidate);
  }
  routing::Gpsr gpsr(*network);
  common::BufferPool<net::NodeId> path_pool(pooled);
  routing::RouteCache cache(gpsr, {}, nullptr, "ght.route_cache",
                            &path_pool);
  ght::GhtSystem ght(*network, cache, 3);

  query::EventGenerator gen({.dims = 3}, seed * 13 + 5);
  Fingerprint fp;
  for (net::NodeId src = 0; src < 40; ++src) {
    const auto r = ght.insert(src, gen.next(src));
    fp.add(r.messages);
    fp.add(r.stored_at);
  }
  query::QueryGenerator qgen({.dims = 3}, seed * 29 + 11);
  for (int i = 0; i < 6; ++i)
    fp.add_receipt(ght.query(3, qgen.exact_range()));
  fp.add_bits(network->traffic().energy_j);
  const auto s = cache.stats();
  fp.add(s.hits);
  fp.add(s.misses);
  return fp;
}

TEST(PoolAlloc, GhtReceiptsByteIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : {1, 2}) {
    EXPECT_EQ(run_ght(seed, false).words, run_ght(seed, true).words)
        << "seed " << seed;
  }
}

TEST(PoolAlloc, PooledRunsIdenticalAtOneAndFourThreads) {
  const auto sweep = [](std::size_t threads) {
    return benchsup::parallel_map<Fingerprint>(
        4, threads, [](std::size_t i) { return run_testbed(i + 1, true); });
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i].words, parallel[i].words) << "job " << i;
}

TEST(BufferPool, RecyclesCapacityAndRestartsAfterClear) {
  common::BufferPool<int> pool(true);
  auto a = pool.acquire();
  a.resize(100);
  const auto cap = a.capacity();
  pool.release(std::move(a));
  EXPECT_EQ(pool.stats().free_buffers, 1u);

  auto b = pool.acquire();
  EXPECT_TRUE(b.empty()) << "pool must recycle memory, never values";
  EXPECT_GE(b.capacity(), cap);
  EXPECT_EQ(pool.stats().reuses, 1u);
  pool.release(std::move(b));

  pool.clear();
  EXPECT_EQ(pool.stats().free_buffers, 0u);
  auto c = pool.acquire();
  EXPECT_EQ(c.capacity(), 0u) << "post-clear acquires start from scratch";
  EXPECT_EQ(pool.stats().reuses, 1u) << "post-clear acquire is not a reuse";
  pool.release(std::move(c));
}

TEST(BufferPool, HighWaterTracksPeakOutstanding) {
  common::BufferPool<int> pool(true);
  auto a = pool.acquire();
  auto b = pool.acquire();
  auto c = pool.acquire();
  EXPECT_EQ(pool.stats().outstanding, 3u);
  EXPECT_EQ(pool.stats().high_water, 3u);

  pool.release(std::move(a));
  pool.release(std::move(b));
  EXPECT_EQ(pool.stats().outstanding, 1u);
  EXPECT_EQ(pool.stats().high_water, 3u) << "high water never recedes";

  auto d = pool.acquire();
  EXPECT_EQ(pool.stats().outstanding, 2u);
  EXPECT_EQ(pool.stats().high_water, 3u);
  pool.release(std::move(c));
  pool.release(std::move(d));
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().releases, 4u);
  EXPECT_EQ(pool.stats().acquires, 4u);
}

TEST(BufferPool, DisabledPoolIsPlainHeap) {
  common::BufferPool<int> pool(false);
  auto a = pool.acquire();
  a.resize(10);
  pool.release(std::move(a));
  EXPECT_EQ(pool.stats().free_buffers, 0u) << "disabled pool parks nothing";
  auto b = pool.acquire();
  EXPECT_EQ(b.capacity(), 0u);
  EXPECT_EQ(pool.stats().reuses, 0u);
  // Accounting still runs so A/B comparisons line up.
  EXPECT_EQ(pool.stats().acquires, 2u);
  EXPECT_EQ(pool.stats().high_water, 1u);
  pool.release(std::move(b));
}

TEST(PoolAlloc, RouteCacheReturnsStoredPathsOnClear) {
  const std::size_t n = 120;
  const double side = net::field_side_for_density(n, 40.0, 20.0);
  const Rect field{0, 0, side, side};
  std::unique_ptr<net::Network> network;
  for (std::uint64_t attempt = 0; !network; ++attempt) {
    Rng rng(11 + attempt * 7919);
    auto pts = net::deploy_uniform(n, field, rng);
    auto candidate =
        std::make_unique<net::Network>(std::move(pts), field, 40.0);
    if (candidate->is_connected()) network = std::move(candidate);
  }
  routing::Gpsr gpsr(*network);
  common::BufferPool<net::NodeId> path_pool(true);
  routing::RouteCacheConfig cfg;
  cfg.max_hops = 0;  // store everything
  routing::RouteCache cache(gpsr, cfg, nullptr, "clear.route_cache",
                            &path_pool);
  for (net::NodeId dst = 1; dst < 20; ++dst)
    cache.route_to_node(0, dst);
  ASSERT_GT(cache.stats().entries, 0u);
  const auto held = path_pool.stats().outstanding;
  EXPECT_GT(held, 0u) << "stored paths should be pool buffers";

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(path_pool.stats().outstanding, 0u)
      << "clear() must hand every stored path back to the pool";
  EXPECT_EQ(path_pool.stats().free_buffers, held);
}

}  // namespace
}  // namespace poolnet
