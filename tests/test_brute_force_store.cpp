#include "storage/brute_force_store.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "net/deployment.h"
#include "net/network.h"
#include "routing/gpsr.h"

namespace poolnet::storage {
namespace {

Event make_event(std::uint64_t id, std::initializer_list<double> vals) {
  Event e;
  e.id = id;
  e.source = 0;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

TEST(BruteForceStore, OracleStoresAndMatches) {
  BruteForceStore store(3);
  store.insert(0, make_event(1, {0.1, 0.2, 0.3}));
  store.insert(0, make_event(2, {0.5, 0.6, 0.7}));
  store.insert(0, make_event(3, {0.9, 0.9, 0.9}));
  EXPECT_EQ(store.stored_count(), 3u);

  const RangeQuery q({{0.0, 0.6}, {0.0, 0.7}, {0.0, 0.8}});
  const auto matches = store.matching(q);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].id, 1u);
  EXPECT_EQ(matches[1].id, 2u);
}

TEST(BruteForceStore, OracleModeChargesNoMessages) {
  BruteForceStore store(2);
  const auto ir = store.insert(0, make_event(1, {0.5, 0.5}));
  EXPECT_EQ(ir.messages, 0u);
  const auto qr = store.query(0, RangeQuery({{0.0, 1.0}, {0.0, 1.0}}));
  EXPECT_EQ(qr.messages, 0u);
  EXPECT_EQ(qr.events.size(), 1u);
}

TEST(BruteForceStore, RejectsDimensionMismatch) {
  BruteForceStore store(3);
  EXPECT_THROW(store.insert(0, make_event(1, {0.5, 0.5})),
               poolnet::ConfigError);
}

TEST(BruteForceStore, RejectsBadDims) {
  EXPECT_THROW(BruteForceStore(0), poolnet::ConfigError);
  EXPECT_THROW(BruteForceStore(kMaxDims + 1), poolnet::ConfigError);
}

TEST(BruteForceStore, NetworkedModeChargesTraffic) {
  Rng rng(3);
  const double side = net::field_side_for_density(150, 40.0, 20.0);
  const Rect field{0, 0, side, side};
  auto pts = net::deploy_uniform(150, field, rng);
  net::Network network(std::move(pts), field, 40.0);
  ASSERT_TRUE(network.is_connected());
  const routing::Gpsr gpsr(network);

  const net::NodeId base = network.nearest_node(field.center());
  BruteForceStore store(2, network, gpsr, base);

  // Insert from a far corner: must cost at least one hop.
  const net::NodeId corner = network.nearest_node({0, 0});
  const auto ir = store.insert(corner, make_event(1, {0.5, 0.5}));
  EXPECT_EQ(ir.stored_at, base);
  EXPECT_GT(ir.messages, 0u);

  const auto qr = store.query(corner, RangeQuery({{0.0, 1.0}, {0.0, 1.0}}));
  EXPECT_EQ(qr.events.size(), 1u);
  EXPECT_GT(qr.query_messages, 0u);
  EXPECT_GT(qr.reply_messages, 0u);
  EXPECT_EQ(qr.messages, qr.query_messages + qr.reply_messages);
}

}  // namespace
}  // namespace poolnet::storage
