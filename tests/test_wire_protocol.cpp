// The poolnetd wire protocol: frame encode/decode under arbitrary
// fragmentation, the canonical event byte encoding, and the query
// language grammar.
#include <gtest/gtest.h>

#include "server/query_language.h"
#include "server/wire.h"

namespace poolnet::server {
namespace {

storage::Event make_event(std::uint64_t id, std::initializer_list<double> vs) {
  storage::Event e;
  e.id = id;
  e.source = static_cast<net::NodeId>(id * 7 % 100);
  for (double v : vs) e.values.push_back(v);
  e.detected_at = static_cast<double>(id) * 0.5;
  return e;
}

TEST(WireTest, RequestRoundTrip) {
  const auto bytes =
      encode_request(FrameType::Query, 42, "SELECT WHERE a0 IN [0.1, 0.9]");
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_TRUE(dec.next(&frame));
  EXPECT_EQ(frame.type, FrameType::Query);
  PayloadReader r(frame.payload);
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_EQ(r.rest_text(), "SELECT WHERE a0 IN [0.1, 0.9]");
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(dec.next(&frame));
  EXPECT_FALSE(dec.corrupt());
}

TEST(WireTest, ByteAtATimeFragmentation) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const auto f = encode_request(FrameType::Insert, id,
                                  "INSERT VALUES (0.1, 0.2, 0.3)");
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameDecoder dec;
  std::vector<std::uint64_t> seen;
  for (const std::uint8_t b : stream) {
    dec.feed(&b, 1);
    Frame frame;
    while (dec.next(&frame)) {
      PayloadReader r(frame.payload);
      seen.push_back(r.u64());
    }
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_FALSE(dec.corrupt());
}

TEST(WireTest, CoalescedFramesDecodeIndividually) {
  std::vector<std::uint8_t> stream;
  const auto a = encode_result(7, ResultKind::Insert, {1, 2, 3, 4});
  const auto b = encode_error(8, ErrorCode::ServerBusy, "busy");
  stream.insert(stream.end(), a.begin(), a.end());
  stream.insert(stream.end(), b.begin(), b.end());
  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  Frame frame;
  ASSERT_TRUE(dec.next(&frame));
  EXPECT_EQ(frame.type, FrameType::Result);
  ASSERT_TRUE(dec.next(&frame));
  EXPECT_EQ(frame.type, FrameType::Error);
  PayloadReader r(frame.payload);
  EXPECT_EQ(r.u64(), 8u);
  EXPECT_EQ(static_cast<ErrorCode>(r.u16()), ErrorCode::ServerBusy);
  EXPECT_EQ(r.rest_text(), "busy");
}

TEST(WireTest, ZeroLengthFrameIsCorrupt) {
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  FrameDecoder dec;
  dec.feed(zeros, sizeof(zeros));
  Frame frame;
  EXPECT_FALSE(dec.next(&frame));
  EXPECT_TRUE(dec.corrupt());
}

TEST(WireTest, OversizedFrameIsCorrupt) {
  std::vector<std::uint8_t> header;
  put_u32(header, kMaxFrameBytes + 1);
  FrameDecoder dec;
  dec.feed(header.data(), header.size());
  Frame frame;
  EXPECT_FALSE(dec.next(&frame));
  EXPECT_TRUE(dec.corrupt());
}

TEST(WireTest, PayloadReaderShortReadSticks) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  PayloadReader r(three);
  (void)r.u64();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // still zero after the sticky error
  EXPECT_FALSE(r.ok());
}

TEST(WireTest, EventsRoundTripExactly) {
  std::vector<storage::Event> events;
  events.push_back(make_event(1, {0.25, 0.5, 0.75}));
  events.push_back(make_event(999, {0.0, 1.0, 0.3333333333333333}));
  const auto bytes = encode_events(events);
  std::vector<storage::Event> back;
  ASSERT_TRUE(decode_events(bytes, &back));
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].id, events[i].id);
    EXPECT_EQ(back[i].source, events[i].source);
    EXPECT_EQ(back[i].values, events[i].values);
    EXPECT_EQ(back[i].detected_at, events[i].detected_at);
  }
  // Deterministic bytes: re-encoding is identical.
  EXPECT_EQ(encode_events(back), bytes);
}

TEST(WireTest, DecodeEventsRejectsTruncation) {
  const auto bytes = encode_events({make_event(5, {0.1, 0.2})});
  std::vector<storage::Event> back;
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_events(prefix, &back)) << "cut=" << cut;
  }
}

// --- query language -------------------------------------------------------

TEST(QueryLanguageTest, ParsesFullAndPartialSelects) {
  storage::RangeQuery::Bounds one;
  one.push_back(ClosedInterval{0.0, 1.0});
  storage::RangeQuery q{one};
  std::string error;
  ASSERT_TRUE(parse_select(
      "SELECT WHERE a0 IN [0.1, 0.4] AND a2 IN [0.5, 0.5]", 3, &q, &error))
      << error;
  EXPECT_EQ(q.dims(), 3u);
  EXPECT_TRUE(q.specified(0));
  EXPECT_FALSE(q.specified(1));
  EXPECT_TRUE(q.specified(2));
  EXPECT_DOUBLE_EQ(q.bound(0).lo, 0.1);
  EXPECT_DOUBLE_EQ(q.bound(0).hi, 0.4);
  EXPECT_DOUBLE_EQ(q.bound(1).lo, 0.0);  // don't-care rewritten to [0,1]
  EXPECT_DOUBLE_EQ(q.bound(1).hi, 1.0);

  // Bare SELECT: every dimension is a don't-care.
  ASSERT_TRUE(parse_select("select", 3, &q, &error)) << error;
  EXPECT_EQ(q.specified_count(), 0u);
}

TEST(QueryLanguageTest, IsCaseInsensitive) {
  storage::RangeQuery::Bounds one;
  one.push_back(ClosedInterval{0.0, 1.0});
  storage::RangeQuery q{one};
  std::string error;
  EXPECT_TRUE(parse_select("select where A1 in [ 0.2 , 0.8 ]", 2, &q, &error))
      << error;
  EXPECT_TRUE(q.specified(1));
}

TEST(QueryLanguageTest, RejectsBadSelects) {
  storage::RangeQuery::Bounds one;
  one.push_back(ClosedInterval{0.0, 1.0});
  storage::RangeQuery q{one};
  std::string error;
  const char* bad[] = {
      "",                                          // no verb
      "DROP TABLE events",                         // wrong verb
      "SELECT WHERE",                              // empty clause list
      "SELECT WHERE a0 IN [0.1, 0.9] AND",         // dangling AND
      "SELECT WHERE a9 IN [0.1, 0.9]",             // attribute out of range
      "SELECT WHERE a0 IN [0.9, 0.1]",             // hi < lo
      "SELECT WHERE a0 IN [0.1, 1.5]",             // out of unit range
      "SELECT WHERE a0 IN [0.1, 0.9] AND a0 IN [0.2, 0.3]",  // duplicate
      "SELECT WHERE a0 IN [0.1 0.9]",              // missing comma
      "SELECT WHERE a0 IN 0.1, 0.9",               // missing brackets
  };
  for (const char* text : bad) {
    EXPECT_FALSE(parse_select(text, 3, &q, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(QueryLanguageTest, SelectTextRoundTrips) {
  storage::RangeQuery::Bounds bounds;
  FixedVec<bool, storage::kMaxDims> specified;
  bounds.push_back(ClosedInterval{1.0 / 3.0, 2.0 / 3.0});
  specified.push_back(true);
  bounds.push_back(ClosedInterval{0.0, 1.0});
  specified.push_back(false);
  bounds.push_back(ClosedInterval{0.123456789012345, 0.9});
  specified.push_back(true);
  const storage::RangeQuery q(bounds, specified);

  storage::RangeQuery::Bounds one;
  one.push_back(ClosedInterval{0.0, 1.0});
  storage::RangeQuery back{one};
  std::string error;
  ASSERT_TRUE(parse_select(to_select_text(q), 3, &back, &error)) << error;
  EXPECT_EQ(back, q);
}

TEST(QueryLanguageTest, ParsesAndRejectsInserts) {
  storage::Values values;
  std::string error;
  ASSERT_TRUE(parse_insert("INSERT VALUES (0.1, 0.2, 0.3)", 3, &values,
                           &error))
      << error;
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[1], 0.2);

  const char* bad[] = {
      "INSERT VALUES (0.1, 0.2)",         // too few for dims=3
      "INSERT VALUES (0.1, 0.2, 0.3, 0.4)",  // too many
      "INSERT VALUES (0.1, 0.2, 1.5)",    // out of unit range
      "INSERT VALUES 0.1, 0.2, 0.3",      // missing parens
      "INSERT VALUES (0.1, 0.2, 0.3) x",  // trailing tokens
      "INSERT (0.1, 0.2, 0.3)",           // missing VALUES
  };
  for (const char* text : bad)
    EXPECT_FALSE(parse_insert(text, 3, &values, &error)) << text;
}

}  // namespace
}  // namespace poolnet::server
