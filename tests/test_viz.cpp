#include "viz/field_renderer.h"

#include <gtest/gtest.h>

#include <fstream>

#include "bench_support/testbed.h"
#include "common/error.h"

namespace poolnet::viz {
namespace {

TEST(Svg, EmptyDocumentIsWellFormed) {
  const SvgDocument doc(100, 50);
  const auto s = doc.to_string();
  EXPECT_NE(s.find("<?xml"), std::string::npos);
  EXPECT_NE(s.find("viewBox=\"0 0 100.00 50.00\""), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  EXPECT_EQ(doc.element_count(), 0u);
}

TEST(Svg, ShapesAreEmitted) {
  SvgDocument doc(100, 100);
  doc.circle({10, 10}, 2, kBlack);
  doc.line({0, 0}, {50, 50}, Color{255, 0, 0}, 1.0);
  doc.rect({10, 10, 20, 20}, kBlack, 0.5, Color{0, 255, 0}, 0.3);
  doc.polyline({{0, 0}, {10, 5}, {20, 0}}, kBlack, 1.0);
  doc.text({5, 5}, "P1", 6.0, kBlack);
  EXPECT_EQ(doc.element_count(), 5u);
  const auto s = doc.to_string();
  EXPECT_NE(s.find("<circle"), std::string::npos);
  EXPECT_NE(s.find("<line"), std::string::npos);
  EXPECT_NE(s.find("<rect"), std::string::npos);
  EXPECT_NE(s.find("<polyline"), std::string::npos);
  EXPECT_NE(s.find(">P1</text>"), std::string::npos);
  EXPECT_NE(s.find("#ff0000"), std::string::npos);
}

TEST(Svg, YAxisIsFlipped) {
  SvgDocument doc(100, 100);
  doc.circle({10, 0}, 1, kBlack);  // field y=0 -> svg y=100 (bottom)
  EXPECT_NE(doc.to_string().find("cy=\"100.00\""), std::string::npos);
}

TEST(Svg, TextIsXmlEscaped) {
  SvgDocument doc(10, 10);
  doc.text({1, 1}, "a<b&c", 5.0, kBlack);
  const auto s = doc.to_string();
  EXPECT_NE(s.find("a&lt;b&amp;c"), std::string::npos);
  EXPECT_EQ(s.find("a<b"), std::string::npos);
}

TEST(Svg, DegenerateCanvasThrows) {
  EXPECT_THROW(SvgDocument(0, 10), poolnet::ConfigError);
}

TEST(Svg, PolylineNeedsTwoPoints) {
  SvgDocument doc(10, 10);
  doc.polyline({{1, 1}}, kBlack, 1.0);
  EXPECT_EQ(doc.element_count(), 0u);
}

TEST(FieldRenderer, DrawsFieldLayers) {
  benchsup::TestbedConfig config;
  config.nodes = 200;
  config.seed = 2;
  benchsup::Testbed tb(config);
  FieldRenderer renderer(tb.pool());
  renderer.draw_field();
  // Grid lines + 3 pool rects + labels + 200 nodes + 300 index markers.
  EXPECT_GT(renderer.document().element_count(), 500u);
}

TEST(FieldRenderer, QueryFootprintAddsOneRectPerRelevantCell) {
  benchsup::TestbedConfig config;
  config.nodes = 200;
  config.seed = 3;
  benchsup::Testbed tb(config);
  FieldRenderer renderer(tb.pool(), {.draw_grid = false,
                                     .draw_nodes = false,
                                     .draw_index_nodes = false,
                                     .draw_pool_labels = false});
  const storage::RangeQuery q({{0.2, 0.3}, {0.25, 0.35}, {0.21, 0.24}});
  const auto before = renderer.document().element_count();
  renderer.draw_query_footprint(q);
  EXPECT_EQ(renderer.document().element_count() - before,
            tb.pool().relevant_cell_count(q));
}

TEST(FieldRenderer, RouteBecomesPolyline) {
  benchsup::TestbedConfig config;
  config.nodes = 200;
  config.seed = 4;
  benchsup::Testbed tb(config);
  FieldRenderer renderer(tb.pool());
  const auto route = tb.pool_gpsr().route_to_node(0, 150);
  const auto before = renderer.document().element_count();
  renderer.draw_route(route, Color{200, 0, 0});
  EXPECT_EQ(renderer.document().element_count(), before + 1);
}

TEST(FieldRenderer, WriteProducesReadableFile) {
  benchsup::TestbedConfig config;
  config.nodes = 150;
  config.seed = 5;
  benchsup::Testbed tb(config);
  FieldRenderer renderer(tb.pool());
  renderer.draw_field();
  const std::string path = ::testing::TempDir() + "/poolnet_test.svg";
  renderer.write(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first.find("<?xml"), std::string::npos);
}

}  // namespace
}  // namespace poolnet::viz
