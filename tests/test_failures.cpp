// Failure injection: sensor networks lose nodes. These tests kill random
// subsets and whole regions, then verify the substrate recovers — GPSR
// still delivers among survivors over the re-planarized graph, and a DCS
// deployment rebuilt on the survivor network answers queries exactly.
// (Events resident on dead nodes are lost, as in any DCS without
// replication; the tests quantify that, too.)
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "core/pool_system.h"
#include "dim/dim_system.h"
#include "net/deployment.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "storage/brute_force_store.h"

namespace poolnet {
namespace {

using net::Network;
using net::NodeId;

std::vector<Point> positions_for(std::size_t n, double side, Rng& rng) {
  return net::deploy_uniform(n, Rect{0, 0, side, side}, rng);
}

/// Survivor positions after killing the given original indices.
std::vector<Point> survivors(const std::vector<Point>& all,
                             const std::set<std::size_t>& dead) {
  std::vector<Point> out;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!dead.count(i)) out.push_back(all[i]);
  }
  return out;
}

class RandomFailures : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFailures, GpsrDeliversAmongSurvivorsAfterTenPercentLoss) {
  const double side = net::field_side_for_density(400, 40.0, 20.0);
  Rng rng(GetParam());
  const auto all = positions_for(400, side, rng);

  std::set<std::size_t> dead;
  while (dead.size() < 40)
    dead.insert(static_cast<std::size_t>(rng.uniform_int(0, 399)));

  Network survivor_net(survivors(all, dead), Rect{0, 0, side, side}, 40.0);
  if (!survivor_net.is_connected())
    GTEST_SKIP() << "failures partitioned the network";

  const routing::PlanarGraph planar(survivor_net,
                                    routing::PlanarizationRule::Gabriel);
  EXPECT_TRUE(planar.is_connected());

  const routing::Gpsr gpsr(survivor_net);
  for (int trial = 0; trial < 100; ++trial) {
    const auto src = static_cast<NodeId>(rng.uniform_int(
        0, static_cast<std::int64_t>(survivor_net.size()) - 1));
    const auto dst = static_cast<NodeId>(rng.uniform_int(
        0, static_cast<std::int64_t>(survivor_net.size()) - 1));
    const auto r = gpsr.route_to_node(src, dst);
    EXPECT_TRUE(r.exact) << src << "->" << dst;
  }
}

TEST_P(RandomFailures, RegionOutageForcesPerimeterButDelivers) {
  // Kill everything inside a tall wall across the field middle. Greedy
  // routing toward a destination behind the wall dead-ends against it (a
  // circular void would merely be skirted); only face routing gets the
  // packet around the wall ends.
  const double side = net::field_side_for_density(500, 40.0, 20.0);
  Rng rng(GetParam() ^ 0xabc);
  const auto all = positions_for(500, side, rng);
  std::set<std::size_t> dead;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Point p = all[i];
    if (p.x > 0.42 * side && p.x < 0.58 * side && p.y > 0.08 * side &&
        p.y < 0.92 * side)
      dead.insert(i);
  }
  ASSERT_GT(dead.size(), 10u);

  Network survivor_net(survivors(all, dead), Rect{0, 0, side, side}, 40.0);
  if (!survivor_net.is_connected())
    GTEST_SKIP() << "outage partitioned the network";
  const routing::Gpsr gpsr(survivor_net);

  // Route across the void: west edge to east edge.
  const NodeId west = survivor_net.nearest_node({0, side / 2});
  const NodeId east = survivor_net.nearest_node({side, side / 2});
  const auto r = gpsr.route_to_node(west, east);
  EXPECT_TRUE(r.exact);
  EXPECT_GT(r.perimeter_hops, 0u) << "crossing the void needs face routing";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFailures,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Failures, RebuiltPoolDeploymentAnswersExactly) {
  // After a failure epoch, the operator redeploys Pool on the survivor
  // network; surviving sensors re-report their current readings. Queries
  // must be exact with respect to the re-reported data.
  const double side = net::field_side_for_density(300, 40.0, 20.0);
  Rng rng(11);
  auto all = positions_for(300, side, rng);
  std::set<std::size_t> dead;
  while (dead.size() < 30)
    dead.insert(static_cast<std::size_t>(rng.uniform_int(0, 299)));

  Network survivor_net(survivors(all, dead), Rect{0, 0, side, side}, 40.0);
  ASSERT_TRUE(survivor_net.is_connected());
  const routing::Gpsr gpsr(survivor_net);
  core::PoolSystem pool(survivor_net, gpsr, 3, core::PoolConfig{});
  dim::DimSystem dim_sys(survivor_net, gpsr, 3);
  storage::BruteForceStore oracle(3);

  query::EventGenerator gen({.dims = 3}, 12);
  for (NodeId n = 0; n < survivor_net.size(); ++n) {
    const auto e = gen.next(n);
    pool.insert(n, e);
    dim_sys.insert(n, e);
    oracle.insert(n, e);
  }
  query::QueryGenerator qgen({.dims = 3}, 13);
  for (int i = 0; i < 20; ++i) {
    const auto q = i % 2 ? qgen.partial_range(1) : qgen.exact_range();
    const auto want = oracle.matching(q).size();
    EXPECT_EQ(pool.query(0, q).events.size(), want);
    EXPECT_EQ(dim_sys.query(0, q).events.size(), want);
  }
}

TEST(Failures, DataLossIsProportionalToDeadIndexNodes) {
  // Without replication, events resident on dead nodes are gone. The
  // fraction lost tracks the fraction of STORAGE (not all nodes die with
  // data — at paper density only some nodes serve as index nodes).
  const double side = net::field_side_for_density(300, 40.0, 20.0);
  Rng rng(21);
  auto all = positions_for(300, side, rng);
  Network network(all, Rect{0, 0, side, side}, 40.0);
  ASSERT_TRUE(network.is_connected());
  const routing::Gpsr gpsr(network);
  core::PoolSystem pool(network, gpsr, 3, core::PoolConfig{});
  query::EventGenerator gen({.dims = 3}, 22);
  for (NodeId n = 0; n < network.size(); ++n) {
    for (int i = 0; i < 3; ++i) pool.insert(n, gen.next(n));
  }

  // Kill the 10 most-loaded nodes: worst-case data loss.
  std::vector<std::pair<std::uint64_t, NodeId>> by_load;
  for (const auto& node : network.nodes())
    by_load.emplace_back(node.stored_events, node.id);
  std::sort(by_load.rbegin(), by_load.rend());
  std::uint64_t lost = 0;
  for (int i = 0; i < 10; ++i) lost += by_load[static_cast<std::size_t>(i)].first;

  EXPECT_GT(lost, 0u);
  // Storage concentrates: the top-10 nodes hold far more than 10/300 of
  // the data — the hotspot observation motivating Section 4.2.
  EXPECT_GT(static_cast<double>(lost) / (300.0 * 3.0), 10.0 / 300.0);
}

}  // namespace
}  // namespace poolnet
