#include "net/deployment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace poolnet::net {
namespace {

TEST(Deployment, FieldSideMatchesDensityFormula) {
  // density = 20 / (pi * 40^2); side = sqrt(900 / density) ~ 476 m.
  const double side = field_side_for_density(900, 40.0, 20.0);
  constexpr double kPi = 3.14159265358979323846;
  const double density = 20.0 / (kPi * 40.0 * 40.0);
  EXPECT_NEAR(side, std::sqrt(900.0 / density), 1e-9);
}

TEST(Deployment, FieldSideScalesWithSqrtN) {
  const double s1 = field_side_for_density(300, 40.0, 20.0);
  const double s4 = field_side_for_density(1200, 40.0, 20.0);
  EXPECT_NEAR(s4 / s1, 2.0, 1e-9);
}

TEST(Deployment, FieldSideRejectsBadInput) {
  EXPECT_THROW(field_side_for_density(0, 40.0, 20.0), ConfigError);
  EXPECT_THROW(field_side_for_density(100, 0.0, 20.0), ConfigError);
  EXPECT_THROW(field_side_for_density(100, 40.0, -1.0), ConfigError);
}

TEST(Deployment, UniformStaysInsideField) {
  Rng rng(1);
  const Rect field{10.0, 20.0, 110.0, 220.0};
  const auto pts = deploy_uniform(500, field, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const Point p : pts) EXPECT_TRUE(field.contains(p));
}

TEST(Deployment, UniformIsDeterministicPerSeed) {
  const Rect field{0, 0, 100, 100};
  Rng a(5), b(5);
  const auto pa = deploy_uniform(50, field, a);
  const auto pb = deploy_uniform(50, field, b);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(Deployment, UniformCoversAllQuadrants) {
  Rng rng(3);
  const Rect field{0, 0, 100, 100};
  const auto pts = deploy_uniform(400, field, rng);
  int q[4] = {0, 0, 0, 0};
  for (const Point p : pts) q[(p.x >= 50 ? 1 : 0) + (p.y >= 50 ? 2 : 0)]++;
  for (const int c : q) EXPECT_GT(c, 50);
}

TEST(Deployment, GridJitterStaysInsideField) {
  Rng rng(7);
  const Rect field{0, 0, 100, 100};
  const auto pts = deploy_grid_jitter(90, field, 0.8, rng);
  ASSERT_EQ(pts.size(), 90u);
  for (const Point p : pts) EXPECT_TRUE(field.contains(p));
}

TEST(Deployment, GridJitterZeroIsRegular) {
  Rng rng(7);
  const Rect field{0, 0, 100, 100};
  const auto pts = deploy_grid_jitter(4, field, 0.0, rng);
  // 2x2 grid of cell centers.
  EXPECT_EQ(pts[0], (Point{25, 25}));
  EXPECT_EQ(pts[1], (Point{75, 25}));
  EXPECT_EQ(pts[2], (Point{25, 75}));
  EXPECT_EQ(pts[3], (Point{75, 75}));
}

TEST(Deployment, DegenerateFieldThrows) {
  Rng rng(1);
  EXPECT_THROW(deploy_uniform(10, Rect{0, 0, 0, 100}, rng), ConfigError);
  EXPECT_THROW(deploy_grid_jitter(10, Rect{0, 0, 100, 0}, 0.5, rng),
               ConfigError);
  EXPECT_THROW(deploy_grid_jitter(10, Rect{0, 0, 100, 100}, 1.5, rng),
               ConfigError);
}

}  // namespace
}  // namespace poolnet::net
