#include "routing/gpsr.h"

#include <gtest/gtest.h>

#include "net/deployment.h"

namespace poolnet::routing {
namespace {

using net::Network;
using net::NodeId;

Network random_connected_net(std::uint64_t seed, std::size_t n,
                             double avg_neighbors = 20.0) {
  const double side = net::field_side_for_density(n, 40.0, avg_neighbors);
  const Rect field{0, 0, side, side};
  for (std::uint64_t attempt = 0;; ++attempt) {
    Rng rng(seed + attempt * 1000003);
    auto pts = net::deploy_uniform(n, field, rng);
    Network net(std::move(pts), field, 40.0);
    if (net.is_connected()) return net;
  }
}

void expect_valid_path(const Network& net, const RouteResult& r, NodeId src) {
  ASSERT_FALSE(r.path.empty());
  EXPECT_EQ(r.path.front(), src);
  EXPECT_EQ(r.path.back(), r.delivered);
  for (std::size_t i = 1; i < r.path.size(); ++i) {
    EXPECT_TRUE(net.are_neighbors(r.path[i - 1], r.path[i]))
        << "hop " << i << ": " << r.path[i - 1] << "->" << r.path[i];
  }
}

TEST(Gpsr, TrivialSelfRoute) {
  const auto net = random_connected_net(1, 50);
  const Gpsr gpsr(net);
  const auto r = gpsr.route_to_node(7, 7);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.delivered, 7u);
  EXPECT_EQ(r.hops(), 0u);
}

TEST(Gpsr, GreedyOnLineTopology) {
  std::vector<Point> pts{{0, 0}, {30, 0}, {60, 0}, {90, 0}, {120, 0}};
  const Network net(pts, Rect{0, 0, 130, 10}, 40.0);
  const Gpsr gpsr(net);
  const auto r = gpsr.route_to_node(0, 4);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.path, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(r.perimeter_hops, 0u);
}

TEST(Gpsr, PerimeterRecoversFromVoid) {
  // A "U" topology: greedy from 0 toward 6 gets stuck at the void between
  // the two arms; perimeter mode must route around the bottom.
  //
  //   0            6
  //   1            5
  //   2 -- 3 -- 4
  std::vector<Point> pts{{0, 80}, {0, 40}, {0, 0},  {40, 0},
                         {80, 0}, {80, 40}, {80, 80}};
  const Network net(pts, Rect{0, 0, 100, 100}, 45.0);
  ASSERT_TRUE(net.is_connected());
  const Gpsr gpsr(net);
  const auto r = gpsr.route_to_node(0, 6);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.delivered, 6u);
  EXPECT_GT(r.perimeter_hops, 0u);
  expect_valid_path(net, r, 0);
}

class GpsrDelivery
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(GpsrDelivery, AlwaysDeliversOnConnectedNetworks) {
  const auto [seed, n] = GetParam();
  const auto net = random_connected_net(seed, n);
  const Gpsr gpsr(net);
  Rng rng(seed ^ 0xfeed);
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto dst = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto r = gpsr.route_to_node(src, dst);
    EXPECT_TRUE(r.exact) << "src=" << src << " dst=" << dst;
    EXPECT_EQ(r.delivered, dst);
    expect_valid_path(net, r, src);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, GpsrDelivery,
    ::testing::Values(std::tuple{1ull, std::size_t{60}},
                      std::tuple{2ull, std::size_t{150}},
                      std::tuple{3ull, std::size_t{300}},
                      std::tuple{4ull, std::size_t{300}},
                      std::tuple{5ull, std::size_t{600}}));

TEST(Gpsr, DeliversOnSparseNetworksWithVoids) {
  // Lower density => frequent greedy failures => perimeter stress.
  const auto net = random_connected_net(9, 200, 8.0);
  const Gpsr gpsr(net);
  Rng rng(99);
  std::size_t perimeter_routes = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, 199));
    const auto dst = static_cast<NodeId>(rng.uniform_int(0, 199));
    const auto r = gpsr.route_to_node(src, dst);
    EXPECT_TRUE(r.exact) << "src=" << src << " dst=" << dst;
    if (r.perimeter_hops > 0) ++perimeter_routes;
  }
  EXPECT_GT(perimeter_routes, 0u) << "test should exercise perimeter mode";
}

TEST(Gpsr, RouteToLocationDeliversAtHomeNode) {
  const auto net = random_connected_net(5, 300);
  const Gpsr gpsr(net);
  Rng rng(55);
  std::size_t exact_home = 0;
  constexpr int kTrials = 100;
  for (int trial = 0; trial < kTrials; ++trial) {
    const Point loc{rng.uniform(0, net.field().max_x),
                    rng.uniform(0, net.field().max_y)};
    const auto src = static_cast<NodeId>(rng.uniform_int(0, 299));
    const auto r = gpsr.route_to_location(src, loc);
    ASSERT_NE(r.delivered, net::kNoNode);
    // The home node is the node whose face tour encloses the location;
    // in a dense unit-disk graph this is almost always the globally
    // nearest node, and never much farther than one radio range.
    const NodeId nearest = net.nearest_node(loc);
    if (r.delivered == nearest) ++exact_home;
    EXPECT_LE(distance(net.position(r.delivered), loc),
              distance(net.position(nearest), loc) + net.radio_range());
  }
  EXPECT_GT(exact_home, kTrials * 8 / 10);
}

TEST(Gpsr, RouteToLocationOutsideFieldReachesBoundary) {
  const auto net = random_connected_net(6, 150);
  const Gpsr gpsr(net);
  const auto r = gpsr.route_to_location(0, {net.field().max_x + 500.0,
                                            net.field().max_y + 500.0});
  ASSERT_NE(r.delivered, net::kNoNode);
  // Must terminate and deliver at some node near the top-right boundary.
  const Point p = net.position(r.delivered);
  EXPECT_GT(p.x + p.y, (net.field().max_x + net.field().max_y) / 2.0);
}

TEST(Gpsr, PathsAreReasonablyShort) {
  const auto net = random_connected_net(7, 400);
  const Gpsr gpsr(net);
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, 399));
    const auto dst = static_cast<NodeId>(rng.uniform_int(0, 399));
    const auto r = gpsr.route_to_node(src, dst);
    const double line = distance(net.position(src), net.position(dst));
    // Greedy progress guarantees hops are bounded by a small multiple of
    // the straight-line distance in radio ranges at this density.
    const double min_hops = line / net.radio_range();
    EXPECT_LE(static_cast<double>(r.hops()), 4.0 * min_hops + 12.0);
  }
}

TEST(Gpsr, DeterministicPaths) {
  const auto net = random_connected_net(8, 200);
  const Gpsr gpsr(net);
  const auto a = gpsr.route_to_node(3, 150);
  const auto b = gpsr.route_to_node(3, 150);
  EXPECT_EQ(a.path, b.path);
}

}  // namespace
}  // namespace poolnet::routing
