// Data aging (DcsSystem::expire_before): storage nodes discard stale
// events locally, with counters staying consistent across all systems.
#include <gtest/gtest.h>

#include <memory>

#include "bench_support/testbed.h"
#include "ght/ght_system.h"
#include "storage/paged/paged_store.h"
#include "query/workload.h"
#include "routing/gpsr.h"

namespace poolnet::storage {
namespace {

using net::NodeId;

Event timed_event(std::uint64_t id, double t,
                  std::initializer_list<double> vals) {
  Event e;
  e.id = id;
  e.source = 0;
  e.detected_at = t;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

struct Fixture {
  Fixture() {
    benchsup::TestbedConfig config;
    config.nodes = 200;
    config.seed = 4;
    tb = std::make_unique<benchsup::Testbed>(config);
    ght_gpsr = std::make_unique<routing::Gpsr>(tb->pool_network());
    ght = std::make_unique<ght::GhtSystem>(tb->pool_network(), *ght_gpsr, 3);
  }

  /// Inserts 100 events with detected_at = 0..99 into every system.
  void insert_timed() {
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
      const auto e = timed_event(
          static_cast<std::uint64_t>(i + 1), static_cast<double>(i),
          {rng.uniform(), rng.uniform(), rng.uniform()});
      tb->pool().insert(0, e);
      tb->dim().insert(0, e);
      ght->insert(0, e);
      tb->oracle().insert(0, e);
    }
  }

  std::unique_ptr<benchsup::Testbed> tb;
  std::unique_ptr<routing::Gpsr> ght_gpsr;
  std::unique_ptr<ght::GhtSystem> ght;
};

TEST(Expiry, RemovesExactlyTheStaleEvents) {
  Fixture fx;
  fx.insert_timed();
  EXPECT_EQ(fx.tb->pool().expire_before(50.0), 50u);
  EXPECT_EQ(fx.tb->dim().expire_before(50.0), 50u);
  EXPECT_EQ(fx.ght->expire_before(50.0), 50u);
  EXPECT_EQ(fx.tb->oracle().expire_before(50.0), 50u);
  EXPECT_EQ(fx.tb->pool().stored_count(), 50u);
  EXPECT_EQ(fx.tb->dim().stored_count(), 50u);
  EXPECT_EQ(fx.ght->stored_count(), 50u);
}

TEST(Expiry, QueriesNoLongerReturnExpired) {
  Fixture fx;
  fx.insert_timed();
  const RangeQuery all({{0, 1}, {0, 1}, {0, 1}});
  fx.tb->pool().expire_before(80.0);
  fx.tb->dim().expire_before(80.0);
  fx.tb->oracle().expire_before(80.0);
  const auto want = fx.tb->oracle().matching(all).size();
  EXPECT_EQ(want, 20u);
  EXPECT_EQ(fx.tb->pool().query(0, all).events.size(), want);
  EXPECT_EQ(fx.tb->dim().query(0, all).events.size(), want);
  for (const auto& e : fx.tb->pool().query(0, all).events)
    EXPECT_GE(e.detected_at, 80.0);
}

TEST(Expiry, IsIdempotent) {
  Fixture fx;
  fx.insert_timed();
  EXPECT_EQ(fx.tb->pool().expire_before(30.0), 30u);
  EXPECT_EQ(fx.tb->pool().expire_before(30.0), 0u);
}

TEST(Expiry, NodeCountersStayConsistent) {
  Fixture fx;
  fx.insert_timed();
  fx.tb->dim().expire_before(100.0);  // everything in DIM only
  std::uint64_t dim_resident = 0;
  for (const auto& n : fx.tb->dim_network().nodes())
    dim_resident += n.stored_events;
  EXPECT_EQ(dim_resident, 0u);
}

TEST(Expiry, ExpiryIsFreeOfMessages) {
  Fixture fx;
  fx.insert_timed();
  const auto before = fx.tb->pool_network().traffic().total;
  fx.tb->pool().expire_before(60.0);
  EXPECT_EQ(fx.tb->pool_network().traffic().total, before);
}

TEST(Expiry, RemovesReplicasToo) {
  benchsup::TestbedConfig config;
  config.nodes = 200;
  config.seed = 6;
  config.pool.replicas = 1;
  benchsup::Testbed tb(config);
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    tb.pool().insert(0, timed_event(static_cast<std::uint64_t>(i + 1),
                                    static_cast<double>(i),
                                    {rng.uniform(), rng.uniform(),
                                     rng.uniform()}));
  }
  EXPECT_EQ(tb.pool().replica_count(), 40u);
  EXPECT_EQ(tb.pool().expire_before(20.0), 20u);
  EXPECT_EQ(tb.pool().replica_count(), 20u);
  EXPECT_EQ(tb.pool().stored_count(), 20u);
}

// Every system must report expire_before's return the same way: the
// number of PRIMARY events shed, so stored_count() + expired == inserted
// holds whatever mix of replicas or paging sits underneath.
TEST(Expiry, CountConservationHoldsAcrossAllSystems) {
  Fixture fx;
  PagedStoreOptions po;
  po.pool_pages = 2;   // eviction-heavy: expiry must survive page churn
  po.page_bytes = 256;
  PagedStore paged(3, po);

  Rng rng(9);
  const std::uint64_t inserted = 120;
  for (std::uint64_t i = 0; i < inserted; ++i) {
    const auto e = timed_event(i + 1, static_cast<double>(i),
                               {rng.uniform(), rng.uniform(), rng.uniform()});
    fx.tb->pool().insert(0, e);
    fx.tb->dim().insert(0, e);
    fx.ght->insert(0, e);
    fx.tb->oracle().insert(0, e);
    paged.insert(0, e);
  }

  const auto check = [inserted](DcsSystem& system) {
    std::uint64_t expired = 0;
    for (const double cutoff : {30.0, 30.0, 77.5, 200.0}) {
      expired += system.expire_before(cutoff);
      EXPECT_EQ(system.stored_count() + expired, inserted)
          << system.describe() << " at cutoff " << cutoff;
    }
    EXPECT_EQ(expired, inserted) << system.describe();
  };
  check(fx.tb->pool());
  check(fx.tb->dim());
  check(*fx.ght);
  check(fx.tb->oracle());
  check(paged);
}

TEST(Expiry, CountConservationHoldsWithPoolReplicas) {
  benchsup::TestbedConfig config;
  config.nodes = 200;
  config.seed = 11;
  config.pool.replicas = 2;
  benchsup::Testbed tb(config);
  Rng rng(12);
  const std::uint64_t inserted = 60;
  for (std::uint64_t i = 0; i < inserted; ++i) {
    tb.pool().insert(0, timed_event(i + 1, static_cast<double>(i),
                                    {rng.uniform(), rng.uniform(),
                                     rng.uniform()}));
  }
  // Replicas multiply the stored copies but never the reported count.
  std::uint64_t expired = tb.pool().expire_before(25.0);
  EXPECT_EQ(tb.pool().stored_count() + expired, inserted);
  expired += tb.pool().expire_before(1e9);
  EXPECT_EQ(expired, inserted);
  EXPECT_EQ(tb.pool().stored_count(), 0u);
  EXPECT_EQ(tb.pool().replica_count(), 0u);
}

TEST(Expiry, UntimedEventsNeverExpireAtZeroCutoff) {
  Fixture fx;
  query::EventGenerator gen({.dims = 3}, 8);
  for (int i = 0; i < 30; ++i) {
    const auto e = gen.next(0);  // detected_at defaults to 0
    fx.tb->pool().insert(0, e);
  }
  EXPECT_EQ(fx.tb->pool().expire_before(0.0), 0u);  // strict '<'
  EXPECT_EQ(fx.tb->pool().stored_count(), 30u);
}

}  // namespace
}  // namespace poolnet::storage
