#include "ght/ght_system.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "net/deployment.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "storage/brute_force_store.h"

namespace poolnet::ght {
namespace {

using net::Network;
using net::NodeId;
using storage::Event;
using storage::RangeQuery;

struct Fixture {
  explicit Fixture(std::uint64_t seed, std::size_t n = 250) : oracle(3) {
    const double side = net::field_side_for_density(n, 40.0, 20.0);
    const Rect field{0, 0, side, side};
    for (std::uint64_t attempt = 0;; ++attempt) {
      Rng rng(seed + attempt * 7919);
      auto pts = net::deploy_uniform(n, field, rng);
      auto candidate = std::make_unique<Network>(std::move(pts), field, 40.0);
      if (candidate->is_connected()) {
        network = std::move(candidate);
        break;
      }
    }
    gpsr = std::make_unique<routing::Gpsr>(*network);
    ght = std::make_unique<GhtSystem>(*network, *gpsr, 3);
  }

  std::unique_ptr<Network> network;
  std::unique_ptr<routing::Gpsr> gpsr;
  std::unique_ptr<GhtSystem> ght;
  storage::BruteForceStore oracle;
};

std::vector<std::uint64_t> ids(const std::vector<Event>& evs) {
  std::vector<std::uint64_t> out;
  for (const auto& e : evs) out.push_back(e.id);
  std::sort(out.begin(), out.end());
  return out;
}

RangeQuery point_query(const Event& e) {
  RangeQuery::Bounds b;
  for (std::size_t d = 0; d < e.dims(); ++d)
    b.push_back({e.values[d], e.values[d]});
  return RangeQuery(b);
}

TEST(Ght, InsertStoresAtHomeNode) {
  Fixture fx(1);
  query::EventGenerator gen({.dims = 3}, 11);
  for (int i = 0; i < 50; ++i) {
    const auto e = gen.next(static_cast<NodeId>(i % fx.network->size()));
    const auto r = fx.ght->insert(e.source, e);
    EXPECT_EQ(r.stored_at, fx.ght->home_node(e.values));
  }
  EXPECT_EQ(fx.ght->stored_count(), 50u);
}

TEST(Ght, SameValuesHashToSameHome) {
  Fixture fx(2);
  storage::Values v{0.25, 0.5, 0.75};
  EXPECT_EQ(fx.ght->home_node(v), fx.ght->home_node(v));
  // Values differing beyond the quantum hash (almost surely) elsewhere.
  storage::Values w{0.25, 0.5, 0.25};
  EXPECT_NE(fx.ght->home_node(v), fx.ght->home_node(w));
}

TEST(Ght, PointQueryFindsStoredEvent) {
  Fixture fx(3);
  query::EventGenerator gen({.dims = 3}, 13);
  std::vector<Event> inserted;
  for (NodeId n = 0; n < fx.network->size(); ++n) {
    const auto e = gen.next(n);
    fx.ght->insert(n, e);
    fx.oracle.insert(n, e);
    inserted.push_back(e);
  }
  Rng rng(14);
  for (int i = 0; i < 30; ++i) {
    const auto& target =
        inserted[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(inserted.size()) - 1))];
    const auto q = point_query(target);
    const auto r = fx.ght->query(0, q);
    EXPECT_EQ(ids(r.events), ids(fx.oracle.matching(q)));
    EXPECT_FALSE(r.events.empty());
    EXPECT_EQ(r.index_nodes_visited, 1u);
  }
}

TEST(Ght, PointQueryMissReturnsEmpty) {
  Fixture fx(4);
  query::EventGenerator gen({.dims = 3}, 15);
  for (NodeId n = 0; n < fx.network->size(); ++n)
    fx.ght->insert(n, gen.next(n));
  const RangeQuery q({{0.123456, 0.123456},
                      {0.654321, 0.654321},
                      {0.999999, 0.999999}});
  const auto r = fx.ght->query(7, q);
  EXPECT_TRUE(r.events.empty());
  EXPECT_EQ(r.reply_messages, 0u);
  EXPECT_GT(r.query_messages, 0u);
}

TEST(Ght, RangeQueryFloodsButStaysCorrect) {
  Fixture fx(5);
  query::EventGenerator gen({.dims = 3}, 16);
  for (NodeId n = 0; n < fx.network->size(); ++n) {
    const auto e = gen.next(n);
    fx.ght->insert(n, e);
    fx.oracle.insert(n, e);
  }
  query::QueryGenerator qgen({.dims = 3}, 17);
  for (int i = 0; i < 10; ++i) {
    const auto q = qgen.exact_range();
    const auto r = fx.ght->query(3, q);
    EXPECT_EQ(ids(r.events), ids(fx.oracle.matching(q)));
    // A flood reaches everyone: at least n-1 query transmissions.
    EXPECT_GE(r.query_messages, fx.network->size() - 1);
  }
}

TEST(Ght, PartialQueryAlsoFloodsCorrectly) {
  Fixture fx(6);
  query::EventGenerator gen({.dims = 3}, 18);
  for (NodeId n = 0; n < fx.network->size(); ++n) {
    const auto e = gen.next(n);
    fx.ght->insert(n, e);
    fx.oracle.insert(n, e);
  }
  query::QueryGenerator qgen({.dims = 3}, 19);
  for (int i = 0; i < 5; ++i) {
    const auto q = qgen.partial_range(1);
    EXPECT_EQ(ids(fx.ght->query(0, q).events), ids(fx.oracle.matching(q)));
  }
}

TEST(Ght, PointQueriesAreFarCheaperThanRangeFloods) {
  Fixture fx(7);
  query::EventGenerator gen({.dims = 3}, 20);
  std::vector<Event> inserted;
  for (NodeId n = 0; n < fx.network->size(); ++n) {
    const auto e = gen.next(n);
    fx.ght->insert(n, e);
    inserted.push_back(e);
  }
  const auto point_cost =
      fx.ght->query(0, point_query(inserted[42])).messages;
  query::QueryGenerator qgen({.dims = 3}, 21);
  const auto range_cost = fx.ght->query(0, qgen.exact_range()).messages;
  EXPECT_LT(point_cost * 5, range_cost);
}

TEST(Ght, AggregateMatchesOracle) {
  Fixture fx(8);
  query::EventGenerator gen({.dims = 3}, 22);
  for (NodeId n = 0; n < fx.network->size(); ++n) {
    const auto e = gen.next(n);
    fx.ght->insert(n, e);
    fx.oracle.insert(n, e);
  }
  query::QueryGenerator qgen({.dims = 3}, 23);
  for (int i = 0; i < 5; ++i) {
    const auto q = qgen.exact_range();
    for (const auto kind :
         {storage::AggregateKind::Count, storage::AggregateKind::Average}) {
      const auto want = fx.oracle.aggregate_oracle(q, kind, 1);
      const auto got = fx.ght->aggregate(0, q, kind, 1);
      EXPECT_EQ(got.result.count, want.count);
      EXPECT_NEAR(got.result.value, want.value, 1e-9);
    }
  }
}

TEST(Ght, RejectsBadConfigs) {
  Fixture fx(9, 100);
  EXPECT_THROW(GhtSystem(*fx.network, *fx.gpsr, 0), poolnet::ConfigError);
  EXPECT_THROW(GhtSystem(*fx.network, *fx.gpsr, 3, GhtConfig{.quantum = 0.0}),
               poolnet::ConfigError);
  Event e;
  e.id = 1;
  e.source = 0;
  e.values.push_back(0.5);
  EXPECT_THROW(fx.ght->insert(0, e), poolnet::ConfigError);
}

}  // namespace
}  // namespace poolnet::ght
