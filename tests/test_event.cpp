#include "storage/event.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace poolnet::storage {
namespace {

Event make_event(std::initializer_list<double> vals) {
  Event e;
  e.id = 1;
  e.source = 0;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

TEST(Event, RankedDimOrdersByValue) {
  // The paper's example: E = <0.3, 0.2, 0.1> has d1 = dim 0.
  const auto e = make_event({0.3, 0.2, 0.1});
  EXPECT_EQ(e.ranked_dim(0), 0u);
  EXPECT_EQ(e.ranked_dim(1), 1u);
  EXPECT_EQ(e.ranked_dim(2), 2u);
}

TEST(Event, RankedDimUnsortedValues) {
  const auto e = make_event({0.1, 0.9, 0.5});
  EXPECT_EQ(e.ranked_dim(0), 1u);
  EXPECT_EQ(e.ranked_dim(1), 2u);
  EXPECT_EQ(e.ranked_dim(2), 0u);
}

TEST(Event, RankedDimTieBreaksTowardLowerIndex) {
  const auto e = make_event({0.4, 0.4, 0.2});
  EXPECT_EQ(e.ranked_dim(0), 0u);
  EXPECT_EQ(e.ranked_dim(1), 1u);
}

TEST(Event, MaxDimsSingleMaximum) {
  const auto e = make_event({0.4, 0.3, 0.1});
  const auto md = e.max_dims();
  ASSERT_EQ(md.size(), 1u);
  EXPECT_EQ(md[0], 0u);
}

TEST(Event, MaxDimsWithTies) {
  // Section 4.1's example: <0.4, 0.4, 0.2>.
  const auto e = make_event({0.4, 0.4, 0.2});
  const auto md = e.max_dims();
  ASSERT_EQ(md.size(), 2u);
  EXPECT_EQ(md[0], 0u);
  EXPECT_EQ(md[1], 1u);
}

TEST(Event, MaxDimsAllEqual) {
  const auto e = make_event({0.5, 0.5, 0.5});
  EXPECT_EQ(e.max_dims().size(), 3u);
}

TEST(Event, ValidateAcceptsNormalizedValues) {
  EXPECT_NO_THROW(validate_event(make_event({0.0, 0.5, 1.0})));
}

TEST(Event, ValidateRejectsOutOfRange) {
  EXPECT_THROW(validate_event(make_event({0.5, 1.2})), poolnet::ConfigError);
  EXPECT_THROW(validate_event(make_event({-0.1})), poolnet::ConfigError);
  EXPECT_THROW(validate_event(make_event({})), poolnet::ConfigError);
}

TEST(Event, EqualityByIdSourceValues) {
  auto a = make_event({0.1, 0.2});
  auto b = make_event({0.1, 0.2});
  EXPECT_EQ(a, b);
  b.id = 2;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace poolnet::storage
