#include "net/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "net/deployment.h"

namespace poolnet::net {
namespace {

std::vector<std::size_t> brute_within(const std::vector<Point>& pts, Point q,
                                      double r) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i)
    if (distance(pts[i], q) <= r) out.push_back(i);
  return out;
}

std::size_t brute_nearest(const std::vector<Point>& pts, Point q) {
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double d2 = distance_sq(pts[i], q);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

class SpatialIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpatialIndexProperty, WithinMatchesBruteForce) {
  Rng rng(GetParam());
  const Rect field{0, 0, 200, 200};
  const auto pts = deploy_uniform(300, field, rng);
  const SpatialIndex index(pts, field, 25.0);
  for (int trial = 0; trial < 50; ++trial) {
    const Point q{rng.uniform(-20, 220), rng.uniform(-20, 220)};
    const double r = rng.uniform(0, 60);
    EXPECT_EQ(index.within(q, r), brute_within(pts, q, r));
  }
}

TEST_P(SpatialIndexProperty, NearestMatchesBruteForce) {
  Rng rng(GetParam() ^ 0xabcdef);
  const Rect field{0, 0, 200, 200};
  const auto pts = deploy_uniform(300, field, rng);
  const SpatialIndex index(pts, field, 25.0);
  for (int trial = 0; trial < 100; ++trial) {
    const Point q{rng.uniform(-50, 250), rng.uniform(-50, 250)};
    const std::size_t got = index.nearest(q);
    const std::size_t want = brute_nearest(pts, q);
    EXPECT_DOUBLE_EQ(distance(pts[got], q), distance(pts[want], q));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialIndexProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SpatialIndex, SinglePoint) {
  const std::vector<Point> pts{{50, 50}};
  const SpatialIndex index(pts, Rect{0, 0, 100, 100}, 10.0);
  EXPECT_EQ(index.nearest({0, 0}), 0u);
  EXPECT_EQ(index.within({50, 50}, 0.0), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(index.within({80, 80}, 5.0).empty());
}

TEST(SpatialIndex, QueryFarOutsideBounds) {
  const std::vector<Point> pts{{10, 10}, {90, 90}};
  const SpatialIndex index(pts, Rect{0, 0, 100, 100}, 10.0);
  EXPECT_EQ(index.nearest({-1000, -1000}), 0u);
  EXPECT_EQ(index.nearest({1000, 1000}), 1u);
}

TEST(SpatialIndex, DuplicatePointsTieBreakByIndex) {
  const std::vector<Point> pts{{50, 50}, {50, 50}, {50, 50}};
  const SpatialIndex index(pts, Rect{0, 0, 100, 100}, 10.0);
  EXPECT_EQ(index.nearest({50, 50}), 0u);
  EXPECT_EQ(index.within({50, 50}, 1.0).size(), 3u);
}

}  // namespace
}  // namespace poolnet::net
