// Resilience mirrors (in the spirit of the paper's reference [7]):
// rotated-pool replicas, duplicate-free queries, survivability analysis.
#include <gtest/gtest.h>

#include <algorithm>

#include "bench_support/testbed.h"
#include "common/error.h"
#include "query/query_gen.h"

namespace poolnet::core {
namespace {

using net::NodeId;

benchsup::Testbed make_testbed(std::uint32_t replicas, std::uint64_t seed = 3,
                               std::size_t nodes = 250) {
  benchsup::TestbedConfig config;
  config.nodes = nodes;
  config.seed = seed;
  config.pool.replicas = replicas;
  return benchsup::Testbed(config);
}

TEST(Replication, DisabledByDefault) {
  auto tb = make_testbed(0);
  tb.insert_workload();
  EXPECT_EQ(tb.pool().replica_count(), 0u);
}

TEST(Replication, StoresRequestedMirrorCount) {
  auto tb = make_testbed(2);
  const auto events = tb.insert_workload();
  EXPECT_EQ(tb.pool().stored_count(), events);
  EXPECT_EQ(tb.pool().replica_count(), 2 * events);
}

TEST(Replication, QueriesReturnNoDuplicates) {
  auto tb = make_testbed(2, 5);
  tb.insert_workload();
  query::QueryGenerator qgen({.dims = 3}, 7);
  Rng sink_rng(8);
  for (int i = 0; i < 20; ++i) {
    const auto q = i % 2 ? qgen.partial_range(1) : qgen.exact_range();
    const auto r = tb.pool().query(tb.random_node(sink_rng), q);
    // Exactly the oracle's answers: mirrors must be invisible.
    EXPECT_EQ(r.events.size(), tb.oracle().matching(q).size()) << q;
    std::vector<std::uint64_t> ids;
    for (const auto& e : r.events) ids.push_back(e.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
        << "duplicate event returned";
  }
}

TEST(Replication, AggregatesUnaffectedByMirrors) {
  auto tb = make_testbed(1, 6);
  tb.insert_workload();
  const storage::RangeQuery q({{0.0, 0.8}, {0.0, 0.8}, {0.0, 0.8}});
  const auto want =
      tb.oracle().aggregate_oracle(q, storage::AggregateKind::Count, 0);
  const auto got =
      tb.pool().aggregate(0, q, storage::AggregateKind::Count, 0);
  EXPECT_DOUBLE_EQ(got.result.value, want.value);
}

TEST(Replication, InsertCostScalesWithCopies) {
  auto tb0 = make_testbed(0, 9);
  auto tb2 = make_testbed(2, 9);
  tb0.insert_workload();
  tb2.insert_workload();
  const auto base = tb0.pool_insert_traffic().total;
  const auto with = tb2.pool_insert_traffic().total;
  EXPECT_GT(with, 2 * base);  // three unicasts instead of one
  EXPECT_LT(with, 5 * base);
}

TEST(Replication, SurvivabilityOfLoadedNodes) {
  auto tb1 = make_testbed(1, 11);
  tb1.insert_workload();

  // Kill the 15 most-loaded nodes.
  std::vector<std::pair<std::uint64_t, NodeId>> by_load;
  for (const auto& node : tb1.pool_network().nodes())
    by_load.emplace_back(node.stored_events, node.id);
  std::sort(by_load.rbegin(), by_load.rend());
  std::vector<NodeId> dead;
  for (int i = 0; i < 15; ++i)
    dead.push_back(by_load[static_cast<std::size_t>(i)].second);

  const auto report = tb1.pool().survivability(dead);
  EXPECT_EQ(report.total_events, tb1.pool().stored_count());
  EXPECT_GT(report.primaries_lost, 0u);
  EXPECT_EQ(report.primaries_lost, report.recovered + report.lost);
  // Load-targeted failure is the adversarial case — mirrors carry load
  // too, so the heaviest nodes hold copies of many events. Mirrors must
  // still rescue a meaningful share (random failures, the common case,
  // recover nearly everything; see bench/replication_survivability).
  EXPECT_GT(report.recovered, 0u);
  EXPECT_LT(report.lost, report.primaries_lost);
}

TEST(Replication, RandomFailuresMostlyRecovered) {
  auto tb = make_testbed(1, 16, 400);
  tb.insert_workload();
  Rng rng(17);
  std::vector<NodeId> dead;
  while (dead.size() < 40) {  // 10% random failures
    const auto n = static_cast<NodeId>(rng.uniform_int(0, 399));
    if (std::find(dead.begin(), dead.end(), n) == dead.end())
      dead.push_back(n);
  }
  const auto report = tb.pool().survivability(dead);
  ASSERT_GT(report.primaries_lost, 0u);
  EXPECT_GT(report.recovered * 1, report.lost * 3)
      << "random failures should be mostly recoverable with one mirror";
}

TEST(Replication, ZeroReplicasMeansNoRecovery) {
  auto tb = make_testbed(0, 12);
  tb.insert_workload();
  std::vector<NodeId> dead;
  for (NodeId n = 0; n < 20; ++n) dead.push_back(n);
  const auto report = tb.pool().survivability(dead);
  EXPECT_EQ(report.recovered, 0u);
  EXPECT_EQ(report.lost, report.primaries_lost);
}

TEST(Replication, MoreReplicasNeverHurtSurvivability) {
  std::size_t lost_prev = SIZE_MAX;
  for (const std::uint32_t r : {0u, 1u, 2u}) {
    auto tb = make_testbed(r, 13);
    tb.insert_workload();
    std::vector<NodeId> dead;
    Rng rng(14);  // same dead set for every r
    while (dead.size() < 25) {
      const auto n = static_cast<NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(
                                 tb.pool_network().size()) - 1));
      if (std::find(dead.begin(), dead.end(), n) == dead.end())
        dead.push_back(n);
    }
    const auto report = tb.pool().survivability(dead);
    EXPECT_LE(report.lost, lost_prev) << "replicas=" << r;
    lost_prev = report.lost;
  }
}

TEST(Replication, NoDeadNodesNothingLost) {
  auto tb = make_testbed(1, 15);
  tb.insert_workload();
  const auto report = tb.pool().survivability({});
  EXPECT_EQ(report.primaries_lost, 0u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.recovered, 0u);
}

TEST(Replication, TooManyReplicasRejected) {
  benchsup::TestbedConfig config;
  config.nodes = 150;
  config.dims = 3;
  config.pool.replicas = 3;  // needs < dims
  EXPECT_THROW(benchsup::Testbed tb(config), poolnet::ConfigError);
}

}  // namespace
}  // namespace poolnet::core
