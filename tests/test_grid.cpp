#include "core/grid.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "net/deployment.h"

namespace poolnet::core {
namespace {

using net::Network;

Network make_net(std::size_t n = 100, double field_side = 100.0,
                 std::uint64_t seed = 1) {
  Rng rng(seed);
  const Rect field{0, 0, field_side, field_side};
  auto pts = net::deploy_uniform(n, field, rng);
  return Network(std::move(pts), field, 40.0);
}

TEST(Grid, DimensionsFromFieldAndCellSize) {
  const auto network = make_net(50, 100.0);
  const Grid grid(network, 5.0);
  EXPECT_EQ(grid.cols(), 20);
  EXPECT_EQ(grid.rows(), 20);
  EXPECT_DOUBLE_EQ(grid.cell_size(), 5.0);
}

TEST(Grid, NonDivisibleFieldRoundsUp) {
  const auto network = make_net(50, 101.0);
  const Grid grid(network, 5.0);
  EXPECT_EQ(grid.cols(), 21);
  EXPECT_EQ(grid.rows(), 21);
}

TEST(Grid, CellCenterMatchesCoordinates) {
  const auto network = make_net();
  const Grid grid(network, 5.0);
  EXPECT_EQ(grid.cell_center({0, 0}), (Point{2.5, 2.5}));
  EXPECT_EQ(grid.cell_center({3, 7}), (Point{17.5, 37.5}));
}

TEST(Grid, CellOfPositionInverseOfCenter) {
  const auto network = make_net();
  const Grid grid(network, 5.0);
  for (std::int32_t x = 0; x < grid.cols(); x += 3) {
    for (std::int32_t y = 0; y < grid.rows(); y += 3) {
      EXPECT_EQ(grid.cell_of_position(grid.cell_center({x, y})),
                (CellCoord{x, y}));
    }
  }
}

TEST(Grid, CellOfPositionClampsOutOfField) {
  const auto network = make_net();
  const Grid grid(network, 5.0);
  EXPECT_EQ(grid.cell_of_position({-10, -10}), (CellCoord{0, 0}));
  EXPECT_EQ(grid.cell_of_position({1000, 1000}),
            (CellCoord{grid.cols() - 1, grid.rows() - 1}));
}

TEST(Grid, IndexNodeIsNearestToCenter) {
  const auto network = make_net(200, 100.0, 7);
  const Grid grid(network, 5.0);
  for (std::int32_t x = 0; x < grid.cols(); x += 4) {
    for (std::int32_t y = 0; y < grid.rows(); y += 4) {
      const net::NodeId idx = grid.index_node({x, y});
      EXPECT_EQ(idx, network.nearest_node(grid.cell_center({x, y})));
    }
  }
}

TEST(Grid, IndexNodeIsCachedAndStable) {
  const auto network = make_net();
  const Grid grid(network, 5.0);
  const auto first = grid.index_node({4, 4});
  EXPECT_EQ(grid.index_node({4, 4}), first);
}

TEST(Grid, RejectsBadCellSize) {
  const auto network = make_net();
  EXPECT_THROW(Grid(network, 0.0), poolnet::ConfigError);
  EXPECT_THROW(Grid(network, -1.0), poolnet::ConfigError);
}

TEST(Grid, OutOfBoundsCellAsserts) {
  const auto network = make_net();
  const Grid grid(network, 5.0);
  EXPECT_THROW(grid.cell_center({-1, 0}), poolnet::AssertionError);
  EXPECT_THROW(grid.index_node({grid.cols(), 0}), poolnet::AssertionError);
}

}  // namespace
}  // namespace poolnet::core
