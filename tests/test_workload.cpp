#include "query/workload.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace poolnet::query {
namespace {

TEST(EventGenerator, SequentialIdsAndSource) {
  EventGenerator gen({.dims = 3}, 1);
  const auto a = gen.next(5);
  const auto b = gen.next(9);
  EXPECT_EQ(a.id, 1u);
  EXPECT_EQ(b.id, 2u);
  EXPECT_EQ(a.source, 5u);
  EXPECT_EQ(b.source, 9u);
  EXPECT_EQ(gen.generated(), 2u);
}

TEST(EventGenerator, UniformValuesInRange) {
  EventGenerator gen({.dims = 4}, 2);
  for (int i = 0; i < 1000; ++i) {
    const auto e = gen.next(0);
    ASSERT_EQ(e.dims(), 4u);
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_GE(e.values[d], 0.0);
      EXPECT_LE(e.values[d], 1.0);
    }
  }
}

TEST(EventGenerator, UniformCoversSpace) {
  EventGenerator gen({.dims = 1}, 3);
  int low = 0, high = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = gen.next(0).values[0];
    (v < 0.5 ? low : high)++;
  }
  EXPECT_NEAR(static_cast<double>(low) / 2000, 0.5, 0.05);
  (void)high;
}

TEST(EventGenerator, GaussianConcentratesAroundCenter) {
  WorkloadConfig wc;
  wc.dims = 3;
  wc.dist = ValueDistribution::Gaussian;
  wc.center = 0.8;
  wc.spread = 0.05;
  EventGenerator gen(wc, 4);
  int inside = 0;
  constexpr int kN = 1000;
  for (int i = 0; i < kN; ++i) {
    const auto e = gen.next(0);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_GE(e.values[d], 0.0);
      EXPECT_LE(e.values[d], 1.0);
    }
    if (std::abs(e.values[0] - 0.8) < 0.15) ++inside;
  }
  EXPECT_GT(inside, kN * 9 / 10);
}

TEST(EventGenerator, HotspotMixesBackgroundAndBurst) {
  WorkloadConfig wc;
  wc.dims = 1;
  wc.dist = ValueDistribution::Hotspot;
  wc.center = 0.9;
  wc.spread = 0.01;
  wc.hotspot_fraction = 0.5;
  EventGenerator gen(wc, 5);
  int hot = 0, background_low = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    const double v = gen.next(0).values[0];
    if (std::abs(v - 0.9) < 0.05) ++hot;
    if (v < 0.5) ++background_low;
  }
  EXPECT_GT(hot, kN * 4 / 10);          // burst events present
  EXPECT_GT(background_low, kN / 5);    // uniform background present
}

TEST(EventGenerator, DeterministicPerSeed) {
  EventGenerator a({.dims = 3}, 6), b({.dims = 3}, 6);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(1), b.next(1));
}

TEST(EventGenerator, RejectsBadConfigs) {
  EXPECT_THROW(EventGenerator({.dims = 0}, 1), poolnet::ConfigError);
  WorkloadConfig bad_spread;
  bad_spread.spread = -1.0;
  EXPECT_THROW(EventGenerator(bad_spread, 1), poolnet::ConfigError);
  WorkloadConfig bad_frac;
  bad_frac.hotspot_fraction = 1.5;
  EXPECT_THROW(EventGenerator(bad_frac, 1), poolnet::ConfigError);
}

}  // namespace
}  // namespace poolnet::query
