// Online fault tolerance: fault-plan parsing, live injection into
// co-deployed networks, reliable delivery with route-cache invalidation,
// and per-system failover (Pool mirror restore, DIM zone adoption, GHT
// store reclamation). The acceptance properties live here: recall is 100%
// when failover completes before the query, stale cached routes through a
// dead node are never replayed, a 20% mid-run kill leaves every system
// answering, and a plan that never fires is byte-identical to no plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "bench_support/testbed.h"
#include "cli/runner.h"
#include "ght/ght_system.h"
#include "net/deployment.h"
#include "net/fault_injector.h"
#include "query/query_gen.h"
#include "routing/gpsr.h"
#include "routing/reliable.h"
#include "routing/route_cache.h"
#include "sim/fault_plan.h"

namespace poolnet {
namespace {

using net::Network;
using net::NodeId;
using storage::RangeQuery;

Network line_net(std::uint64_t seed = 1) {
  std::vector<Point> pts{{0, 0}, {30, 0}, {60, 0}, {90, 0}};
  return Network(pts, Rect{0, 0, 100, 10}, 40.0, {}, {}, {}, seed);
}

Network random_connected_net(std::uint64_t seed, std::size_t n) {
  const double side = net::field_side_for_density(n, 40.0, 20.0);
  const Rect field{0, 0, side, side};
  for (std::uint64_t attempt = 0;; ++attempt) {
    Rng rng(seed + attempt * 1000003);
    auto pts = net::deploy_uniform(n, field, rng);
    Network net(std::move(pts), field, 40.0);
    if (net.is_connected()) return net;
  }
}

std::vector<std::uint64_t> sorted_ids(const std::vector<storage::Event>& es) {
  std::vector<std::uint64_t> ids;
  for (const auto& e : es) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

RangeQuery whole_space() {
  return RangeQuery({{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
}

// --- fault-spec parsing ------------------------------------------------

TEST(FaultSpec, OffNoneAndEmptyDisable) {
  for (const char* spec : {"", "off", "none"}) {
    sim::FaultPlan plan;
    std::string err;
    EXPECT_TRUE(sim::parse_fault_spec(spec, &plan, &err)) << spec;
    EXPECT_FALSE(plan.enabled()) << spec;
  }
}

TEST(FaultSpec, ParsesEveryClauseKindAndSortsByTime) {
  sim::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(sim::parse_fault_spec(
      "kill:0.2@15;node:7@3;blackout:100,50,60@10;degrade:0.3@5-20;seed:42",
      &plan, &err))
      << err;
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.actions.size(), 5u);  // degrade expands to start + end
  EXPECT_EQ(plan.actions[0].kind, sim::FaultKind::KillNode);
  EXPECT_EQ(plan.actions[0].node, 7u);
  EXPECT_EQ(plan.actions[1].kind, sim::FaultKind::DegradeStart);
  EXPECT_DOUBLE_EQ(plan.actions[1].extra_loss, 0.3);
  EXPECT_EQ(plan.actions[2].kind, sim::FaultKind::Blackout);
  EXPECT_DOUBLE_EQ(plan.actions[2].radius, 60.0);
  EXPECT_EQ(plan.actions[3].kind, sim::FaultKind::KillFraction);
  EXPECT_DOUBLE_EQ(plan.actions[3].fraction, 0.2);
  EXPECT_EQ(plan.actions[4].kind, sim::FaultKind::DegradeEnd);
  for (std::size_t i = 1; i < plan.actions.size(); ++i)
    EXPECT_LE(plan.actions[i - 1].at, plan.actions[i].at);
}

TEST(FaultSpec, RejectsMalformedClauses) {
  for (const char* bad :
       {"kill:1.5@3", "kill:0.2", "node:x@1", "blackout:1,2@3",
        "degrade:0.5@9-4", "degrade:1.0@1-2", "bogus:1@1", "kill:0.2@-3",
        "seed:abc", "kill"}) {
    sim::FaultPlan plan;
    std::string err;
    EXPECT_FALSE(sim::parse_fault_spec(bad, &plan, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

// --- the injector ------------------------------------------------------

TEST(FaultInjector, ScheduledKillHitsEveryNetworkExactlyOnce) {
  auto a = line_net(1);
  auto b = line_net(2);
  sim::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(sim::parse_fault_spec("node:2@5", &plan, &err));
  net::FaultInjector injector(plan, {&a, &b});

  EXPECT_TRUE(injector.advance(4.9).empty()) << "fired before its time";
  const auto newly = injector.advance(5.0);
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0], 2u);
  EXPECT_FALSE(a.alive(2));
  EXPECT_FALSE(b.alive(2));
  EXPECT_EQ(a.dead_count(), 1u);
  EXPECT_EQ(b.dead_count(), 1u);
  EXPECT_TRUE(injector.exhausted());
  EXPECT_TRUE(injector.advance(6.0).empty()) << "kill is one-shot";
  EXPECT_EQ(injector.total_killed(), 1u);
}

TEST(FaultInjector, FractionKillsRoundedShareOfSurvivors) {
  auto net = line_net();
  sim::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(sim::parse_fault_spec("kill:0.5@1", &plan, &err));
  net::FaultInjector injector(plan, {&net});
  EXPECT_EQ(injector.advance(1.0).size(), 2u);  // half of 4 nodes
  EXPECT_EQ(net.dead_count(), 2u);
}

TEST(FaultInjector, BlackoutKillsExactlyTheDisc) {
  auto net = line_net();
  sim::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(sim::parse_fault_spec("blackout:0,0,35@2", &plan, &err));
  net::FaultInjector injector(plan, {&net});
  const auto newly = injector.advance(2.0);
  EXPECT_EQ(newly.size(), 2u);  // x = 0 and x = 30 are within 35 m
  EXPECT_FALSE(net.alive(0));
  EXPECT_FALSE(net.alive(1));
  EXPECT_TRUE(net.alive(2));
  EXPECT_TRUE(net.alive(3));
}

TEST(FaultInjector, DegradeWindowOpensAndCloses) {
  auto net = line_net();
  sim::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(sim::parse_fault_spec("degrade:0.3@2-5", &plan, &err));
  net::FaultInjector injector(plan, {&net});
  injector.advance(1.0);
  EXPECT_DOUBLE_EQ(net.extra_loss(), 0.0);
  injector.advance(2.0);
  EXPECT_DOUBLE_EQ(net.extra_loss(), 0.3);
  injector.advance(4.9);
  EXPECT_DOUBLE_EQ(net.extra_loss(), 0.3);
  injector.advance(5.0);
  EXPECT_DOUBLE_EQ(net.extra_loss(), 0.0);
  EXPECT_EQ(net.dead_count(), 0u);
}

TEST(FaultInjector, DisabledPlanIsANoOp) {
  auto net = line_net();
  net::FaultInjector injector(sim::FaultPlan{}, {&net});
  EXPECT_TRUE(injector.exhausted());
  EXPECT_TRUE(injector.advance(1e9).empty());
  EXPECT_EQ(net.dead_count(), 0u);
  EXPECT_DOUBLE_EQ(net.extra_loss(), 0.0);
}

// --- reliable delivery -------------------------------------------------

TEST(ReliableDelivery, AliveLegIsOneRouteOneTransmit) {
  auto net = line_net();
  const routing::Gpsr gpsr(net);
  const auto out = routing::send_reliable(net, gpsr, 0, 3,
                                          net::MessageKind::Query, 64);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.reached, 3u);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_TRUE(out.dead_found.empty());
  EXPECT_EQ(net.traffic().total, 3u);  // exactly the path's hops
  EXPECT_EQ(net.traffic().lost, 0u);
}

TEST(ReliableDelivery, SelfLegDeliversWithoutTraffic) {
  auto net = line_net();
  const routing::Gpsr gpsr(net);
  const auto out = routing::send_reliable(net, gpsr, 2, 2,
                                          net::MessageKind::Query, 64);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(net.traffic().total, 0u);
}

TEST(ReliableDelivery, DeadTargetIsDetectedAndReported) {
  auto net = line_net();
  net.kill(3);
  const routing::Gpsr gpsr(net);
  const auto out = routing::send_reliable(net, gpsr, 0, 3,
                                          net::MessageKind::Query, 64);
  EXPECT_FALSE(out.delivered);
  EXPECT_NE(std::find(out.dead_found.begin(), out.dead_found.end(), 3u),
            out.dead_found.end())
      << "the dead target must be reported for failover";
  EXPECT_GE(net.traffic().lost, 1u);
}

TEST(ReliableDelivery, DeadSourceSendsNothing) {
  auto net = line_net();
  net.kill(0);
  const routing::Gpsr gpsr(net);
  const auto out = routing::send_reliable(net, gpsr, 0, 3,
                                          net::MessageKind::Query, 64);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(net.traffic().total, 0u);
}

TEST(ReliableDelivery, StaleCachedRouteThroughDeadNodeIsNeverReplayed) {
  auto net = random_connected_net(17, 250);
  const routing::Gpsr gpsr(net);
  routing::RouteCacheConfig cache_cfg;
  cache_cfg.max_hops = 0;  // store every route, including long legs
  const routing::RouteCache cache(gpsr, cache_cfg);

  // A pair whose route has an interior node to kill.
  NodeId src = 0, dst = 0, victim = net::kNoNode;
  Rng rng(23);
  const auto n = static_cast<std::int64_t>(net.size());
  for (int trial = 0; trial < 200 && victim == net::kNoNode; ++trial) {
    const auto s = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto d = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto r = gpsr.route_to_node(s, d);
    if (r.delivered && r.path.size() >= 5) {
      src = s;
      dst = d;
      victim = r.path[r.path.size() / 2];
    }
  }
  ASSERT_NE(victim, net::kNoNode) << "no multi-hop pair found";

  // Warm the cache with the route that traverses the victim, then crash
  // the victim behind the cache's back.
  const auto cached = cache.route_to_node(src, dst);
  ASSERT_NE(std::find(cached.path.begin(), cached.path.end(), victim),
            cached.path.end());
  net.kill(victim);

  // First send stalls at the victim, invalidates every cached route
  // through it, and re-routes from the stall point.
  const auto first = routing::send_reliable(net, cache, src, dst,
                                            net::MessageKind::Query, 64);
  if (!first.delivered)
    GTEST_SKIP() << "the kill partitioned src from dst at this seed";
  EXPECT_NE(std::find(first.dead_found.begin(), first.dead_found.end(),
                      victim),
            first.dead_found.end());
  EXPECT_GE(first.retries, 1u);
  EXPECT_GE(cache.stats().invalidated, 1u);

  // Second send: the refreshed cache must route around the corpse with
  // zero lost frames — a replayed stale path would burn an ARQ budget
  // into the dead node again.
  const auto lost_before = net.traffic().lost;
  const auto second = routing::send_reliable(net, cache, src, dst,
                                             net::MessageKind::Query, 64);
  EXPECT_TRUE(second.delivered);
  EXPECT_EQ(second.retries, 0u);
  EXPECT_EQ(net.traffic().lost, lost_before);
  EXPECT_EQ(std::find(second.route.path.begin(), second.route.path.end(),
                      victim),
            second.route.path.end());
}

// --- per-system failover -----------------------------------------------

TEST(Failover, PoolMirrorRestoreGivesFullRecallBeforeQueries) {
  benchsup::TestbedConfig config;
  config.nodes = 250;
  config.seed = 3;
  config.pool.replicas = 2;
  benchsup::Testbed tb(config);
  tb.insert_workload();

  // Crash the most loaded storage node, then fail over BEFORE querying.
  NodeId dead = 0;
  for (const auto& node : tb.pool_network().nodes())
    if (node.stored_events > tb.pool_network().node(dead).stored_events)
      dead = node.id;
  ASSERT_GT(tb.pool_network().node(dead).stored_events, 0u);
  tb.pool_network().kill(dead);
  tb.pool().handle_node_failure(dead);

  const auto& fs = tb.pool().fault_stats();
  EXPECT_GE(fs.failovers, 1u);
  EXPECT_GT(fs.events_restored, 0u);
  EXPECT_EQ(fs.events_lost, 0u) << "two mirrors must cover one crash";

  // Failover preceded the queries, so recall is exactly 100%.
  query::QueryGenerator qgen({.dims = 3}, 7);
  Rng sink_rng(8);
  for (int i = 0; i < 20; ++i) {
    const auto q = i % 2 ? qgen.partial_range(1) : qgen.exact_range();
    auto sink = tb.random_node(sink_rng);
    if (sink == dead) sink = (sink + 1) % tb.pool_network().size();
    const auto r = tb.pool().query(sink, q);
    EXPECT_EQ(sorted_ids(r.events), sorted_ids(tb.oracle().matching(q)))
        << "query " << i;
  }
}

TEST(Failover, PoolWithoutMirrorsLosesExactlyTheDeadNodesEvents) {
  benchsup::TestbedConfig config;
  config.nodes = 250;
  config.seed = 11;
  benchsup::Testbed tb(config);
  const auto total = tb.insert_workload();

  NodeId dead = 0;
  for (const auto& node : tb.pool_network().nodes())
    if (node.stored_events > tb.pool_network().node(dead).stored_events)
      dead = node.id;
  const auto held = tb.pool_network().node(dead).stored_events;
  ASSERT_GT(held, 0u);
  tb.pool_network().kill(dead);
  tb.pool().handle_node_failure(dead);

  EXPECT_EQ(tb.pool().fault_stats().events_lost, held);
  EXPECT_EQ(tb.pool().stored_count(), total - held);
  const auto sink = dead == 0 ? NodeId{1} : NodeId{0};
  const auto r = tb.pool().query(sink, whole_space());
  EXPECT_EQ(r.events.size(), total - held);
}

TEST(Failover, HandleNodeFailureIsIdempotent) {
  benchsup::TestbedConfig config;
  config.nodes = 200;
  config.seed = 13;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  tb.pool_network().kill(5);
  tb.dim_network().kill(5);
  tb.pool().handle_node_failure(5);
  tb.dim().handle_node_failure(5);
  const auto pool_once = tb.pool().fault_stats();
  const auto dim_once = tb.dim().fault_stats();
  tb.pool().handle_node_failure(5);
  tb.dim().handle_node_failure(5);
  EXPECT_EQ(tb.pool().fault_stats().failovers, pool_once.failovers);
  EXPECT_EQ(tb.pool().fault_stats().events_lost, pool_once.events_lost);
  EXPECT_EQ(tb.dim().fault_stats().failovers, dim_once.failovers);
  EXPECT_EQ(tb.dim().fault_stats().events_lost, dim_once.events_lost);
}

TEST(Failover, DimNeighborAdoptionKeepsEveryZoneOwnedAndAnswering) {
  benchsup::TestbedConfig config;
  config.nodes = 250;
  config.seed = 5;
  benchsup::Testbed tb(config);
  tb.insert_workload();

  const auto& tree = tb.dim().tree();
  const NodeId dead = tree.zone(tree.leaves().front()).owner;
  ASSERT_NE(dead, net::kNoNode);
  tb.dim_network().kill(dead);
  tb.dim().handle_node_failure(dead);

  EXPECT_GE(tb.dim().fault_stats().failovers, 1u);
  for (const auto leaf : tree.leaves()) {
    const NodeId owner = tree.zone(leaf).owner;
    EXPECT_NE(owner, dead) << "orphaned zone " << leaf;
    if (owner != net::kNoNode) {
      EXPECT_TRUE(tb.dim_network().alive(owner)) << "zone " << leaf;
    }
  }

  const auto sink = dead == 0 ? NodeId{1} : NodeId{0};
  const auto r = tb.dim().query(sink, whole_space());
  EXPECT_EQ(r.events.size(), tb.dim().stored_count());
  EXPECT_EQ(tb.dim().stored_count() + tb.dim().fault_stats().events_lost,
            tb.oracle().all().size());
}

TEST(Failover, GhtReclaimsDeadStoreAndKeepsAnswering) {
  benchsup::TestbedConfig config;
  config.nodes = 250;
  config.seed = 9;
  benchsup::Testbed tb(config);
  tb.insert_workload();

  std::vector<Point> pts;
  for (const auto& node : tb.pool_network().nodes()) pts.push_back(node.pos);
  Network ght_net(std::move(pts), tb.pool_network().field(), 40.0);
  routing::Gpsr ght_gpsr(ght_net);
  ght::GhtSystem ght(ght_net, ght_gpsr, 3);
  for (const auto& e : tb.oracle().all()) ght.insert(e.source, e);

  NodeId dead = 0;
  for (const auto& node : ght_net.nodes())
    if (node.stored_events > ght_net.node(dead).stored_events)
      dead = node.id;
  const auto held = ght_net.node(dead).stored_events;
  ASSERT_GT(held, 0u);
  ght_net.kill(dead);
  ght.handle_node_failure(dead);

  EXPECT_EQ(ght.fault_stats().events_lost, held);
  const auto sink = dead == 0 ? NodeId{1} : NodeId{0};
  const auto r = ght.query(sink, whole_space());
  EXPECT_EQ(r.events.size(), ght.stored_count());
  EXPECT_EQ(ght.stored_count(), tb.oracle().all().size() - held);
}

// --- end-to-end through the CLI runner ---------------------------------

TEST(OnlineFaults, TwentyPercentMidRunKillKeepsAllSystemsAnswering) {
  cli::CliConfig config;
  config.systems = {cli::SystemChoice::Pool, cli::SystemChoice::Dim,
                    cli::SystemChoice::Ght};
  config.nodes = 200;
  config.events_per_node = 3;
  config.queries = 30;
  config.flavor = cli::QueryFlavor::OnePartial;
  config.deployments = 1;
  config.threads = 1;
  std::string err;
  ASSERT_TRUE(sim::parse_fault_spec("kill:0.2@15", &config.faults, &err));

  std::ostringstream out;
  const auto rows = cli::run_experiment(config, out);
  ASSERT_EQ(rows.size(), 3u);
  std::uint64_t failovers = 0;
  for (const auto& r : rows) {
    EXPECT_GT(r.recall, 0.3) << cli::to_string(r.system)
                             << " stopped answering";
    EXPECT_LE(r.recall, 1.0) << cli::to_string(r.system);
    EXPECT_GT(r.mean_results, 0.0) << cli::to_string(r.system);
    failovers += r.failovers;
  }
  EXPECT_GE(failovers, 1u) << "a 20% cut must trigger failover somewhere";
  EXPECT_NE(out.str().find("recall"), std::string::npos)
      << "fault columns missing from the report";
}

TEST(OnlineFaults, NeverFiringPlanIsByteIdenticalToDisabled) {
  cli::CliConfig base;
  base.systems = {cli::SystemChoice::Pool, cli::SystemChoice::Dim,
                  cli::SystemChoice::Ght};
  base.nodes = 150;
  base.events_per_node = 3;
  base.queries = 20;
  base.flavor = cli::QueryFlavor::Exact;
  base.deployments = 1;
  base.threads = 1;

  cli::CliConfig armed = base;
  std::string err;
  ASSERT_TRUE(
      sim::parse_fault_spec("node:0@1000000", &armed.faults, &err));

  std::ostringstream sink_a, sink_b;
  const auto plain = cli::run_experiment(base, sink_a);
  const auto never = cli::run_experiment(armed, sink_b);
  ASSERT_EQ(plain.size(), never.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].mean_messages, never[i].mean_messages);
    EXPECT_EQ(plain[i].mean_query_messages, never[i].mean_query_messages);
    EXPECT_EQ(plain[i].mean_reply_messages, never[i].mean_reply_messages);
    EXPECT_EQ(plain[i].mean_results, never[i].mean_results);
    EXPECT_EQ(plain[i].mean_nodes_visited, never[i].mean_nodes_visited);
    EXPECT_EQ(plain[i].insert_messages_per_event,
              never[i].insert_messages_per_event);
    EXPECT_EQ(plain[i].mismatches, 0u);
    EXPECT_EQ(never[i].mismatches, 0u);
    EXPECT_DOUBLE_EQ(never[i].recall, 1.0);
    EXPECT_EQ(never[i].retries, 0u);
    EXPECT_EQ(never[i].failovers, 0u);
    EXPECT_EQ(never[i].events_lost, 0u);
  }
}

}  // namespace
}  // namespace poolnet
