#include "common/fixed_vec.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace poolnet {
namespace {

TEST(FixedVec, StartsEmpty) {
  FixedVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(FixedVec, PushAndIndex) {
  FixedVec<int, 4> v;
  v.push_back(10);
  v.push_back(20);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v.front(), 10);
  EXPECT_EQ(v.back(), 20);
}

TEST(FixedVec, InitializerList) {
  const FixedVec<double, 8> v{0.1, 0.2, 0.3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 0.3);
}

TEST(FixedVec, CountValueConstructor) {
  const FixedVec<bool, 8> v(5, true);
  EXPECT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_TRUE(v[i]);
}

TEST(FixedVec, PopBack) {
  FixedVec<int, 4> v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2);
}

TEST(FixedVec, ClearAndResize) {
  FixedVec<int, 4> v{1, 2, 3};
  v.clear();
  EXPECT_TRUE(v.empty());
  v.resize(3, 7);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 7);
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
}

TEST(FixedVec, IterationMatchesContents) {
  const FixedVec<int, 8> v{4, 5, 6};
  int sum = 0;
  for (const int x : v) sum += x;
  EXPECT_EQ(sum, 15);
}

TEST(FixedVec, EqualityComparesSizeAndElements) {
  const FixedVec<int, 4> a{1, 2};
  const FixedVec<int, 4> b{1, 2};
  const FixedVec<int, 4> c{1, 2, 3};
  const FixedVec<int, 4> d{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(FixedVec, OverflowThrowsAssertion) {
  FixedVec<int, 2> v{1, 2};
  EXPECT_THROW(v.push_back(3), AssertionError);
}

TEST(FixedVec, OutOfRangeIndexThrowsAssertion) {
  FixedVec<int, 2> v{1};
  EXPECT_THROW((void)v[1], AssertionError);
  EXPECT_THROW(v.pop_back(); v.pop_back(), AssertionError);
}

}  // namespace
}  // namespace poolnet
