// Degenerate and boundary configurations across the whole stack: the
// cases a downstream user will eventually hit.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "core/pool_system.h"
#include "dim/dim_system.h"
#include "net/deployment.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "storage/brute_force_store.h"

namespace poolnet {
namespace {

using net::Network;
using net::NodeId;
using storage::Event;
using storage::RangeQuery;

std::unique_ptr<Network> connected_net(std::uint64_t seed, std::size_t n,
                                       double field_side) {
  const Rect field{0, 0, field_side, field_side};
  for (std::uint64_t attempt = 0;; ++attempt) {
    Rng rng(seed + attempt * 101);
    auto pts = net::deploy_uniform(n, field, rng);
    auto candidate = std::make_unique<Network>(std::move(pts), field, 40.0);
    if (candidate->is_connected()) return candidate;
  }
}

Event make_event(std::uint64_t id, std::initializer_list<double> vals) {
  Event e;
  e.id = id;
  e.source = 0;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

TEST(EdgeCases, OneDimensionalDeploymentWorksEndToEnd) {
  // k = 1: a single pool, v_d2 always 0, vertical pruning trivial.
  auto net = connected_net(1, 150, 200);
  const routing::Gpsr gpsr(*net);
  core::PoolSystem pool(*net, gpsr, 1, core::PoolConfig{});
  storage::BruteForceStore oracle(1);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto e = make_event(static_cast<std::uint64_t>(i + 1),
                              {rng.uniform()});
    pool.insert(static_cast<NodeId>(i % net->size()), e);
    oracle.insert(0, e);
  }
  for (int i = 0; i < 10; ++i) {
    const double lo = rng.uniform(0, 0.8);
    const RangeQuery q({{lo, lo + 0.2}});
    EXPECT_EQ(pool.query(0, q).events.size(), oracle.matching(q).size());
  }
}

TEST(EdgeCases, PoolSideOneIsASingleCellPerPool) {
  auto net = connected_net(3, 150, 200);
  const routing::Gpsr gpsr(*net);
  core::PoolConfig config;
  config.side = 1;
  core::PoolSystem pool(*net, gpsr, 3, config);
  storage::BruteForceStore oracle(3);
  query::EventGenerator gen({.dims = 3}, 4);
  for (int i = 0; i < 60; ++i) {
    const auto e = gen.next(static_cast<NodeId>(i % net->size()));
    pool.insert(e.source, e);
    oracle.insert(e.source, e);
  }
  query::QueryGenerator qgen({.dims = 3}, 5);
  for (int i = 0; i < 10; ++i) {
    const auto q = qgen.exact_range();
    EXPECT_EQ(pool.query(0, q).events.size(), oracle.matching(q).size());
    // Never more than one relevant cell per pool when l = 1.
    EXPECT_LE(pool.relevant_cell_count(q), 3u);
  }
}

TEST(EdgeCases, MaximumDimensionalityDeployment) {
  auto net = connected_net(6, 200, 250);
  const routing::Gpsr gpsr(*net);
  core::PoolConfig config;
  config.side = 4;  // 8 pools of 4x4 must fit the grid
  core::PoolSystem pool(*net, gpsr, storage::kMaxDims, config);
  dim::DimSystem dim_sys(*net, gpsr, storage::kMaxDims);
  storage::BruteForceStore oracle(storage::kMaxDims);
  query::EventGenerator gen({.dims = storage::kMaxDims}, 7);
  for (int i = 0; i < 100; ++i) {
    const auto e = gen.next(static_cast<NodeId>(i % net->size()));
    pool.insert(e.source, e);
    dim_sys.insert(e.source, e);
    oracle.insert(e.source, e);
  }
  query::QueryGenerator qgen({.dims = storage::kMaxDims}, 8);
  for (int i = 0; i < 5; ++i) {
    const auto q = qgen.partial_range(4);
    const auto want = oracle.matching(q).size();
    EXPECT_EQ(pool.query(0, q).events.size(), want);
    EXPECT_EQ(dim_sys.query(0, q).events.size(), want);
  }
}

TEST(EdgeCases, TwoNodeNetwork) {
  std::vector<Point> pts{{10, 10}, {30, 10}};
  Network net(pts, Rect{0, 0, 60, 60}, 40.0);
  const routing::Gpsr gpsr(net);
  core::PoolConfig config;
  config.side = 2;
  core::PoolSystem pool(net, gpsr, 2, config);
  pool.insert(0, make_event(1, {0.9, 0.2}));
  const RangeQuery q({{0.8, 1.0}, {0.0, 0.5}});
  const auto r = pool.query(1, q);
  ASSERT_EQ(r.events.size(), 1u);
}

TEST(EdgeCases, AllEventsIdenticalValues) {
  // Hammers one cell; storage and retrieval must stay exact.
  auto net = connected_net(9, 150, 200);
  const routing::Gpsr gpsr(*net);
  core::PoolSystem pool(*net, gpsr, 3, core::PoolConfig{});
  for (int i = 0; i < 200; ++i) {
    pool.insert(static_cast<NodeId>(i % net->size()),
                make_event(static_cast<std::uint64_t>(i + 1),
                           {0.37, 0.21, 0.11}));
  }
  const RangeQuery hit({{0.37, 0.37}, {0.21, 0.21}, {0.11, 0.11}});
  EXPECT_EQ(pool.query(0, hit).events.size(), 200u);
  const RangeQuery miss({{0.38, 0.39}, {0.21, 0.21}, {0.11, 0.11}});
  EXPECT_TRUE(pool.query(0, miss).events.empty());
}

TEST(EdgeCases, DegenerateQueryAtExactBoundaries) {
  auto net = connected_net(10, 150, 200);
  const routing::Gpsr gpsr(*net);
  core::PoolSystem pool(*net, gpsr, 3, core::PoolConfig{});
  dim::DimSystem dim_sys(*net, gpsr, 3);
  // Events exactly on cell/zone boundaries.
  const std::vector<Event> events{
      make_event(1, {0.5, 0.25, 0.0}), make_event(2, {1.0, 0.5, 0.5}),
      make_event(3, {0.1, 0.1, 0.1}),  make_event(4, {0.0, 0.0, 1.0})};
  for (const auto& e : events) {
    pool.insert(0, e);
    dim_sys.insert(0, e);
  }
  // Point queries at those exact values find them in both systems.
  for (const auto& e : events) {
    RangeQuery::Bounds b;
    for (std::size_t d = 0; d < 3; ++d)
      b.push_back({e.values[d], e.values[d]});
    const RangeQuery q(b);
    EXPECT_EQ(pool.query(0, q).events.size(), 1u) << e;
    EXPECT_EQ(dim_sys.query(0, q).events.size(), 1u) << e;
  }
}

TEST(EdgeCases, ZeroVolumeRangeQueryStillWellFormed) {
  const RangeQuery q({{0.5, 0.5}, {0.2, 0.8}, {0.3, 0.3}});
  EXPECT_DOUBLE_EQ(q.volume(), 0.0);
  EXPECT_EQ(q.type(), storage::QueryType::ExactMatchRange);
}

TEST(EdgeCases, SinkIsAlsoStoringNode) {
  // Self-delivery legs must charge nothing and still return results.
  auto net = connected_net(11, 150, 200);
  const routing::Gpsr gpsr(*net);
  core::PoolSystem pool(*net, gpsr, 3, core::PoolConfig{});
  const auto e = make_event(1, {0.6, 0.3, 0.1});
  const auto receipt = pool.insert(0, e);
  const NodeId holder = receipt.stored_at;
  const RangeQuery q({{0.55, 0.65}, {0.25, 0.35}, {0.05, 0.15}});
  const auto r = pool.query(holder, q);  // sink == storage node
  EXPECT_EQ(r.events.size(), 1u);
}

TEST(EdgeCases, VeryDenseNetworkStillRoutes) {
  // 300 nodes in a tiny field: everyone hears everyone; GPSR should be
  // single-hop and planarization must not blow up.
  Rng rng(12);
  const Rect field{0, 0, 30, 30};
  auto pts = net::deploy_uniform(300, field, rng);
  Network net(std::move(pts), field, 40.0);
  EXPECT_TRUE(net.is_connected());
  const routing::Gpsr gpsr(net);
  for (int i = 0; i < 20; ++i) {
    const auto r = gpsr.route_to_node(
        static_cast<NodeId>(i), static_cast<NodeId>(299 - i));
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.hops(), 1u);
  }
}

TEST(EdgeCases, PoolTooLargeForFieldThrows) {
  auto net = connected_net(13, 100, 100);  // 20x20 cells at alpha=5
  const routing::Gpsr gpsr(*net);
  core::PoolConfig config;
  config.side = 30;
  EXPECT_THROW(core::PoolSystem(*net, gpsr, 3, config), ConfigError);
}

TEST(EdgeCases, EmptySystemQueriesAreCheapAndEmpty) {
  auto net = connected_net(14, 200, 250);
  const routing::Gpsr gpsr(*net);
  core::PoolSystem pool(*net, gpsr, 3, core::PoolConfig{});
  query::QueryGenerator qgen({.dims = 3}, 15);
  const auto r = pool.query(0, qgen.exact_range());
  EXPECT_TRUE(r.events.empty());
  EXPECT_EQ(r.reply_messages, 0u);
}

}  // namespace
}  // namespace poolnet
