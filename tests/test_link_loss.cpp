// Lossy links with ARQ accounting: the substrate's unreliable-channel
// model. Delivery stays guaranteed (persistent retransmission); the
// LEDGER carries the cost.
#include <gtest/gtest.h>

#include "bench_support/experiment.h"
#include "bench_support/testbed.h"
#include "common/error.h"
#include "net/deployment.h"
#include "query/query_gen.h"

namespace poolnet::net {
namespace {

Network line_net(LinkLossModel loss, std::uint64_t seed = 1) {
  std::vector<Point> pts{{0, 0}, {30, 0}, {60, 0}, {90, 0}};
  return Network(pts, Rect{0, 0, 100, 10}, 40.0, {}, {}, loss, seed);
}

TEST(LinkLoss, ZeroLossMatchesIdealAccounting) {
  auto net = line_net({.loss_probability = 0.0});
  net.transmit_path({0, 1, 2, 3}, MessageKind::Query, 64);
  EXPECT_EQ(net.traffic().total, 3u);
  EXPECT_EQ(net.node(0).tx_count, 1u);
}

TEST(LinkLoss, RetransmissionsInflateMessageCount) {
  auto net = line_net({.loss_probability = 0.5});
  for (int i = 0; i < 2000; ++i)
    net.transmit(0, 1, MessageKind::Query, 64);
  // Geometric attempts with p = 0.5: mean ~2 per hop.
  const double per_hop =
      static_cast<double>(net.traffic().total) / 2000.0;
  EXPECT_GT(per_hop, 1.8);
  EXPECT_LT(per_hop, 2.2);
  // Receptions are charged once per delivered frame.
  EXPECT_EQ(net.node(1).rx_count, 2000u);
  EXPECT_EQ(net.node(0).tx_count, net.traffic().total);
}

TEST(LinkLoss, AttemptBudgetBoundsWorstCase) {
  LinkLossModel loss{.loss_probability = 0.9, .max_attempts = 4};
  auto net = line_net(loss);
  for (int i = 0; i < 500; ++i) net.transmit(0, 1, MessageKind::Query, 64);
  EXPECT_LE(net.traffic().total, 4u * 500u);
  EXPECT_EQ(net.node(1).rx_count, 500u);  // delivery still guaranteed
}

TEST(LinkLoss, DeterministicPerSeed) {
  auto a = line_net({.loss_probability = 0.3}, 7);
  auto b = line_net({.loss_probability = 0.3}, 7);
  for (int i = 0; i < 200; ++i) {
    a.transmit(1, 2, MessageKind::Reply, 64);
    b.transmit(1, 2, MessageKind::Reply, 64);
  }
  EXPECT_EQ(a.traffic().total, b.traffic().total);
}

TEST(LinkLoss, EnergyScalesWithAttempts) {
  auto ideal = line_net({.loss_probability = 0.0});
  auto lossy = line_net({.loss_probability = 0.5});
  for (int i = 0; i < 500; ++i) {
    ideal.transmit(0, 1, MessageKind::Query, 256);
    lossy.transmit(0, 1, MessageKind::Query, 256);
  }
  EXPECT_GT(lossy.traffic().energy_j, 1.5 * ideal.traffic().energy_j);
}

// --- dead-destination ARQ accounting ----------------------------------
//
// A receiver that never acks makes the sender exhaust its full attempt
// budget; that exhausted burst is the failure-detection signal the
// reliable-delivery layer keys on, so its ledger is pinned exactly.

TEST(LinkLoss, DeadDestinationBurnsExactAttemptBudget) {
  auto net = line_net({.loss_probability = 0.0, .max_attempts = 4});
  net.kill(1);
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(net.transmit(0, 1, MessageKind::Query, 64));
  EXPECT_EQ(net.traffic().total, 40u);  // exactly max_attempts per send
  EXPECT_EQ(net.node(0).tx_count, 40u);
  EXPECT_EQ(net.node(1).rx_count, 0u);  // a crashed radio receives nothing
  EXPECT_EQ(net.traffic().lost, 10u);   // one lost frame per send
}

TEST(LinkLoss, DeadDestinationEnergyIsTxOnlyAndLinearInBudget) {
  // The sender is charged max_attempts TX costs, the dead receiver none,
  // so the energy bill is exactly linear in the attempt budget.
  auto one = line_net({.loss_probability = 0.0, .max_attempts = 1});
  auto four = line_net({.loss_probability = 0.0, .max_attempts = 4});
  one.kill(1);
  four.kill(1);
  one.transmit(0, 1, MessageKind::Query, 256);
  four.transmit(0, 1, MessageKind::Query, 256);
  EXPECT_GT(one.traffic().energy_j, 0.0);
  EXPECT_DOUBLE_EQ(four.traffic().energy_j, 4.0 * one.traffic().energy_j);
  EXPECT_DOUBLE_EQ(four.node(1).energy_spent_j, 0.0);
  EXPECT_DOUBLE_EQ(four.node(0).energy_spent_j, four.traffic().energy_j);
}

TEST(LinkLoss, DeadDestinationConsumesNoLossRandomness) {
  // The dead-receiver branch charges the budget without drawing from the
  // loss RNG, so a failure-detection probe leaves the channel's random
  // stream — and every later lossy delivery — bit-identical.
  auto probed = line_net({.loss_probability = 0.4}, 21);
  auto control = line_net({.loss_probability = 0.4}, 21);
  probed.kill(3);
  probed.transmit(2, 3, MessageKind::Control, 64);
  const auto after_probe = probed.traffic().total;
  for (int i = 0; i < 300; ++i) {
    probed.transmit(0, 1, MessageKind::Query, 64);
    control.transmit(0, 1, MessageKind::Query, 64);
  }
  EXPECT_EQ(probed.traffic().total - after_probe, control.traffic().total);
}

TEST(LinkLoss, DeadSenderTransmitsNothing) {
  auto net = line_net({.loss_probability = 0.0});
  net.kill(0);
  EXPECT_FALSE(net.transmit(0, 1, MessageKind::Query, 64));
  EXPECT_EQ(net.traffic().total, 0u);
  EXPECT_EQ(net.traffic().lost, 0u);
  EXPECT_EQ(net.node(0).tx_count, 0u);
}

TEST(LinkLoss, InvalidConfigsRejected) {
  EXPECT_THROW(line_net({.loss_probability = 1.0}), poolnet::ConfigError);
  EXPECT_THROW(line_net({.loss_probability = -0.1}), poolnet::ConfigError);
  EXPECT_THROW(line_net({.loss_probability = 0.1, .max_attempts = 0}),
               poolnet::ConfigError);
}

TEST(LinkLoss, SystemsStayExactOverLossyChannels) {
  benchsup::TestbedConfig config;
  config.nodes = 200;
  config.seed = 9;
  config.loss.loss_probability = 0.3;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  query::QueryGenerator qgen({.dims = 3}, 10);
  const auto run = benchsup::run_paired_queries(
      tb, benchsup::generate_queries(15, [&] { return qgen.exact_range(); }),
      11);
  EXPECT_EQ(run.pool_mismatches, 0u);
  EXPECT_EQ(run.dim_mismatches, 0u);
}

TEST(LinkLoss, LossyChannelsCostMoreButPreserveOrdering) {
  benchsup::TestbedConfig ideal_cfg, lossy_cfg;
  ideal_cfg.nodes = lossy_cfg.nodes = 300;
  ideal_cfg.seed = lossy_cfg.seed = 12;
  lossy_cfg.loss.loss_probability = 0.3;
  benchsup::Testbed ideal(ideal_cfg), lossy(lossy_cfg);
  ideal.insert_workload();
  lossy.insert_workload();
  query::QueryGenerator qa({.dims = 3}, 13), qb({.dims = 3}, 13);
  const auto ideal_run = benchsup::run_paired_queries(
      ideal, benchsup::generate_queries(25, [&] { return qa.partial_range(1); }),
      14);
  const auto lossy_run = benchsup::run_paired_queries(
      lossy, benchsup::generate_queries(25, [&] { return qb.partial_range(1); }),
      14);
  // ~1/(1-p) = 1.43x inflation for both systems; ordering unchanged.
  EXPECT_GT(lossy_run.pool.messages.mean(),
            1.2 * ideal_run.pool.messages.mean());
  EXPECT_GT(lossy_run.dim.messages.mean(),
            1.2 * ideal_run.dim.messages.mean());
  EXPECT_LT(lossy_run.pool.messages.mean(), lossy_run.dim.messages.mean());
}

}  // namespace
}  // namespace poolnet::net
