#include "cli/args.h"

#include <gtest/gtest.h>

namespace poolnet::cli {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test program");
  p.add_option("nodes", "900", "network size");
  p.add_option("name", "default", "a string");
  p.add_option("ratio", "0.5", "a double");
  p.add_flag("verbose", "chatty output");
  return p;
}

bool parse(ArgParser& p, std::initializer_list<const char*> args,
           std::string* error) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return p.parse(static_cast<int>(argv.size()), argv.data(), error);
}

TEST(ArgParser, DefaultsApplyWithoutArguments) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {}, &error));
  EXPECT_EQ(p.option("nodes"), "900");
  EXPECT_FALSE(p.flag("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--nodes", "1500", "--name", "hello"}, &error));
  EXPECT_EQ(p.option("nodes"), "1500");
  EXPECT_EQ(p.option("name"), "hello");
}

TEST(ArgParser, EqualsSeparatedValues) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--nodes=1200", "--verbose"}, &error));
  EXPECT_EQ(p.option("nodes"), "1200");
  EXPECT_TRUE(p.flag("verbose"));
}

TEST(ArgParser, UnknownOptionFails) {
  auto p = make_parser();
  std::string error;
  EXPECT_FALSE(parse(p, {"--bogus", "1"}, &error));
  EXPECT_NE(error.find("unknown option"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
  auto p = make_parser();
  std::string error;
  EXPECT_FALSE(parse(p, {"--nodes"}, &error));
  EXPECT_NE(error.find("needs a value"), std::string::npos);
}

TEST(ArgParser, FlagWithValueFails) {
  auto p = make_parser();
  std::string error;
  EXPECT_FALSE(parse(p, {"--verbose=yes"}, &error));
}

TEST(ArgParser, PositionalArgumentFails) {
  auto p = make_parser();
  std::string error;
  EXPECT_FALSE(parse(p, {"stray"}, &error));
}

TEST(ArgParser, HelpRequested) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--help"}, &error));
  EXPECT_TRUE(p.help_requested());
  const auto h = p.help();
  EXPECT_NE(h.find("--nodes"), std::string::npos);
  EXPECT_NE(h.find("default: 900"), std::string::npos);
}

TEST(ArgParser, IntOptionParsesAndValidatesRange) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--nodes", "1200"}, &error));
  EXPECT_EQ(p.int_option("nodes", 10, 10000, &error), 1200);
  ASSERT_TRUE(parse(p, {"--nodes", "5"}, &error));
  EXPECT_FALSE(p.int_option("nodes", 10, 10000, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(ArgParser, IntOptionRejectsGarbage) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--nodes", "12abc"}, &error));
  EXPECT_FALSE(p.int_option("nodes", 0, 10000, &error).has_value());
}

TEST(ArgParser, DoubleOption) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--ratio", "0.75"}, &error));
  EXPECT_DOUBLE_EQ(*p.double_option("ratio", 0.0, 1.0, &error), 0.75);
  ASSERT_TRUE(parse(p, {"--ratio", "x"}, &error));
  EXPECT_FALSE(p.double_option("ratio", 0.0, 1.0, &error).has_value());
}

TEST(ArgParser, ChoiceOption) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--name", "beta"}, &error));
  EXPECT_EQ(p.choice_option("name", {"alpha", "beta"}, &error), "beta");
  ASSERT_TRUE(parse(p, {"--name", "gamma"}, &error));
  EXPECT_FALSE(p.choice_option("name", {"alpha", "beta"}, &error).has_value());
  EXPECT_NE(error.find("alpha|beta"), std::string::npos);
}

TEST(ArgParser, LaterValueWins) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--nodes", "100", "--nodes", "200"}, &error));
  EXPECT_EQ(p.option("nodes"), "200");
}

// --- the shared option tables ---------------------------------------------
//
// Every binary that calls add_engine_options/add_fault_options/
// add_telemetry_options gets the SAME spellings, defaults and error
// behavior; these tests pin that shared surface down.

ArgParser make_shared_parser() {
  ArgParser p("prog", "test program");
  add_engine_options(p);
  add_fault_options(p);
  add_telemetry_options(p);
  add_store_options(p);
  return p;
}

TEST(SharedOptions, DefaultsAreAllOff) {
  auto p = make_shared_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {}, &error));

  engine::QueryEngineConfig engine;
  ASSERT_TRUE(parse_engine_options(p, &engine, &error)) << error;
  EXPECT_EQ(engine.batch_size, 0u);  // --batch off: serial issue
  EXPECT_EQ(engine.batch_deadline, 16u);
  EXPECT_FALSE(engine.cache.enabled);

  sim::FaultPlan plan;
  ASSERT_TRUE(parse_fault_options(p, &plan, &error)) << error;
  EXPECT_FALSE(plan.enabled());

  obs::TelemetryConfig telemetry;
  ASSERT_TRUE(parse_telemetry_options(p, &telemetry, &error)) << error;
  EXPECT_FALSE(telemetry.wants_metrics());
  EXPECT_FALSE(telemetry.wants_trace());
}

TEST(SharedOptions, EngineSpecsRoundTrip) {
  auto p = make_shared_parser();
  std::string error;
  ASSERT_TRUE(parse(p,
                    {"--batch", "32", "--batch-deadline", "64", "--qcache",
                     "ttl:500"},
                    &error));
  engine::QueryEngineConfig engine;
  ASSERT_TRUE(parse_engine_options(p, &engine, &error)) << error;
  EXPECT_EQ(engine.batch_size, 32u);
  EXPECT_EQ(engine.batch_deadline, 64u);
  EXPECT_TRUE(engine.cache.enabled);
  EXPECT_EQ(engine.cache.ttl, 500u);

  ASSERT_TRUE(parse(p, {"--batch", "off", "--qcache", "on"}, &error));
  ASSERT_TRUE(parse_engine_options(p, &engine, &error)) << error;
  EXPECT_EQ(engine.batch_size, 0u);
  EXPECT_TRUE(engine.cache.enabled);
  EXPECT_EQ(engine.cache.ttl, 0u);
}

TEST(SharedOptions, EngineSpecsRejectGarbage) {
  for (const auto& args : std::vector<std::vector<const char*>>{
           {"--batch", "maybe"},
           {"--batch", "-3"},
           {"--qcache", "sometimes"},
           {"--qcache", "ttl:abc"}}) {
    auto p = make_shared_parser();
    std::string error;
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    ASSERT_TRUE(
        p.parse(static_cast<int>(argv.size()), argv.data(), &error));
    engine::QueryEngineConfig engine;
    EXPECT_FALSE(parse_engine_options(p, &engine, &error)) << args[1];
    EXPECT_FALSE(error.empty());
  }
}

TEST(SharedOptions, StoreSpecsParseAndReject) {
  auto p = make_shared_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {}, &error));
  storage::StoreConfig store;
  ASSERT_TRUE(parse_store_options(p, &store, &error)) << error;
  EXPECT_EQ(store.kind, storage::StoreKind::Flat);  // --store defaults flat

  ASSERT_TRUE(parse(p, {"--store", "paged:32:2:file"}, &error));
  ASSERT_TRUE(parse_store_options(p, &store, &error)) << error;
  EXPECT_EQ(store.kind, storage::StoreKind::Paged);
  EXPECT_EQ(store.paged.pool_pages, 32u);
  EXPECT_EQ(store.paged.page_bytes, 2048u);
  EXPECT_EQ(store.paged.backing, storage::PagedStoreOptions::Backing::File);

  ASSERT_TRUE(parse(p, {"--store", "paged:1:4"}, &error));  // pool floor is 2
  EXPECT_FALSE(parse_store_options(p, &store, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SharedOptions, FaultSpecsParseAndReject) {
  auto p = make_shared_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--faults", "kill:0.1@5;seed:42"}, &error));
  sim::FaultPlan plan;
  ASSERT_TRUE(parse_fault_options(p, &plan, &error)) << error;
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed, 42u);

  ASSERT_TRUE(parse(p, {"--faults", "explode:now"}, &error));
  EXPECT_FALSE(parse_fault_options(p, &plan, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SharedOptions, TelemetrySpecsParseAndReject) {
  auto p = make_shared_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--metrics", "json:/tmp/x.json", "--trace", "64"},
                    &error));
  obs::TelemetryConfig telemetry;
  ASSERT_TRUE(parse_telemetry_options(p, &telemetry, &error)) << error;
  EXPECT_EQ(telemetry.format, obs::MetricsFormat::Json);
  EXPECT_EQ(telemetry.path, "/tmp/x.json");
  EXPECT_EQ(telemetry.trace_capacity, 64u);

  ASSERT_TRUE(parse(p, {"--metrics", "yaml"}, &error));
  EXPECT_FALSE(parse_telemetry_options(p, &telemetry, &error));
  EXPECT_FALSE(error.empty());

  ASSERT_TRUE(parse(p, {"--trace", "-1"}, &error));
  EXPECT_FALSE(parse_telemetry_options(p, &telemetry, &error));
}

}  // namespace
}  // namespace poolnet::cli
