#include "cli/args.h"

#include <gtest/gtest.h>

namespace poolnet::cli {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test program");
  p.add_option("nodes", "900", "network size");
  p.add_option("name", "default", "a string");
  p.add_option("ratio", "0.5", "a double");
  p.add_flag("verbose", "chatty output");
  return p;
}

bool parse(ArgParser& p, std::initializer_list<const char*> args,
           std::string* error) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return p.parse(static_cast<int>(argv.size()), argv.data(), error);
}

TEST(ArgParser, DefaultsApplyWithoutArguments) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {}, &error));
  EXPECT_EQ(p.option("nodes"), "900");
  EXPECT_FALSE(p.flag("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--nodes", "1500", "--name", "hello"}, &error));
  EXPECT_EQ(p.option("nodes"), "1500");
  EXPECT_EQ(p.option("name"), "hello");
}

TEST(ArgParser, EqualsSeparatedValues) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--nodes=1200", "--verbose"}, &error));
  EXPECT_EQ(p.option("nodes"), "1200");
  EXPECT_TRUE(p.flag("verbose"));
}

TEST(ArgParser, UnknownOptionFails) {
  auto p = make_parser();
  std::string error;
  EXPECT_FALSE(parse(p, {"--bogus", "1"}, &error));
  EXPECT_NE(error.find("unknown option"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
  auto p = make_parser();
  std::string error;
  EXPECT_FALSE(parse(p, {"--nodes"}, &error));
  EXPECT_NE(error.find("needs a value"), std::string::npos);
}

TEST(ArgParser, FlagWithValueFails) {
  auto p = make_parser();
  std::string error;
  EXPECT_FALSE(parse(p, {"--verbose=yes"}, &error));
}

TEST(ArgParser, PositionalArgumentFails) {
  auto p = make_parser();
  std::string error;
  EXPECT_FALSE(parse(p, {"stray"}, &error));
}

TEST(ArgParser, HelpRequested) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--help"}, &error));
  EXPECT_TRUE(p.help_requested());
  const auto h = p.help();
  EXPECT_NE(h.find("--nodes"), std::string::npos);
  EXPECT_NE(h.find("default: 900"), std::string::npos);
}

TEST(ArgParser, IntOptionParsesAndValidatesRange) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--nodes", "1200"}, &error));
  EXPECT_EQ(p.int_option("nodes", 10, 10000, &error), 1200);
  ASSERT_TRUE(parse(p, {"--nodes", "5"}, &error));
  EXPECT_FALSE(p.int_option("nodes", 10, 10000, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(ArgParser, IntOptionRejectsGarbage) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--nodes", "12abc"}, &error));
  EXPECT_FALSE(p.int_option("nodes", 0, 10000, &error).has_value());
}

TEST(ArgParser, DoubleOption) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--ratio", "0.75"}, &error));
  EXPECT_DOUBLE_EQ(*p.double_option("ratio", 0.0, 1.0, &error), 0.75);
  ASSERT_TRUE(parse(p, {"--ratio", "x"}, &error));
  EXPECT_FALSE(p.double_option("ratio", 0.0, 1.0, &error).has_value());
}

TEST(ArgParser, ChoiceOption) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--name", "beta"}, &error));
  EXPECT_EQ(p.choice_option("name", {"alpha", "beta"}, &error), "beta");
  ASSERT_TRUE(parse(p, {"--name", "gamma"}, &error));
  EXPECT_FALSE(p.choice_option("name", {"alpha", "beta"}, &error).has_value());
  EXPECT_NE(error.find("alpha|beta"), std::string::npos);
}

TEST(ArgParser, LaterValueWins) {
  auto p = make_parser();
  std::string error;
  ASSERT_TRUE(parse(p, {"--nodes", "100", "--nodes", "200"}, &error));
  EXPECT_EQ(p.option("nodes"), "200");
}

}  // namespace
}  // namespace poolnet::cli
