#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.h"

namespace poolnet::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) q.push(1.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(5.0, [] {});
  q.push(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopOnEmptyAsserts) {
  EventQueue q;
  EXPECT_THROW(q.pop(), AssertionError);
  EXPECT_THROW(q.next_time(), AssertionError);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  std::vector<double> fired;
  q.push(1.0, [&] { fired.push_back(1.0); });
  q.push(4.0, [&] { fired.push_back(4.0); });
  q.pop().action();
  q.push(2.0, [&] { fired.push_back(2.0); });
  q.push(3.0, [&] { fired.push_back(3.0); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

}  // namespace
}  // namespace poolnet::sim
