#include "common/interval.h"

#include <gtest/gtest.h>

namespace poolnet {
namespace {

TEST(ClosedInterval, ContainsEndpoints) {
  const ClosedInterval i{0.2, 0.5};
  EXPECT_TRUE(i.contains(0.2));
  EXPECT_TRUE(i.contains(0.5));
  EXPECT_TRUE(i.contains(0.35));
  EXPECT_FALSE(i.contains(0.19));
  EXPECT_FALSE(i.contains(0.51));
}

TEST(ClosedInterval, EmptyWhenReversed) {
  // Theorem 3.2 legitimately produces ranges like [0.25, 0.24].
  const ClosedInterval i{0.25, 0.24};
  EXPECT_TRUE(i.empty());
  EXPECT_FALSE(i.contains(0.245));
  EXPECT_DOUBLE_EQ(i.length(), 0.0);
}

TEST(ClosedInterval, DegeneratePointNotEmpty) {
  const ClosedInterval i{0.3, 0.3};
  EXPECT_FALSE(i.empty());
  EXPECT_TRUE(i.contains(0.3));
}

TEST(HalfOpenInterval, ExcludesUpperBound) {
  const HalfOpenInterval i{0.2, 0.4};
  EXPECT_TRUE(i.contains(0.2));
  EXPECT_FALSE(i.contains(0.4));
  EXPECT_TRUE(i.contains(0.399999));
}

TEST(HalfOpenInterval, EmptyWhenDegenerate) {
  EXPECT_TRUE((HalfOpenInterval{0.3, 0.3}).empty());
  EXPECT_TRUE((HalfOpenInterval{0.4, 0.3}).empty());
}

TEST(Intersects, HalfOpenVsClosed) {
  const HalfOpenInterval cell{0.2, 0.4};
  EXPECT_TRUE(intersects(cell, ClosedInterval{0.25, 0.3}));
  EXPECT_TRUE(intersects(cell, ClosedInterval{0.0, 0.2}));   // touch at lo
  EXPECT_FALSE(intersects(cell, ClosedInterval{0.4, 0.5}));  // hi excluded
  EXPECT_TRUE(intersects(cell, ClosedInterval{0.39, 0.5}));
  EXPECT_FALSE(intersects(cell, ClosedInterval{0.5, 0.6}));
  EXPECT_FALSE(intersects(cell, ClosedInterval{0.0, 0.1}));
}

TEST(Intersects, EmptyNeverIntersects) {
  const HalfOpenInterval cell{0.2, 0.4};
  EXPECT_FALSE(intersects(cell, ClosedInterval{0.3, 0.25}));
  EXPECT_FALSE(intersects(HalfOpenInterval{0.3, 0.3}, ClosedInterval{0, 1}));
}

TEST(Intersects, ClosedVsClosed) {
  EXPECT_TRUE(intersects(ClosedInterval{0, 0.5}, ClosedInterval{0.5, 1}));
  EXPECT_FALSE(intersects(ClosedInterval{0, 0.4}, ClosedInterval{0.5, 1}));
}

TEST(Intersects, HalfOpenVsHalfOpen) {
  EXPECT_FALSE(intersects(HalfOpenInterval{0, 0.5}, HalfOpenInterval{0.5, 1}));
  EXPECT_TRUE(intersects(HalfOpenInterval{0, 0.6}, HalfOpenInterval{0.5, 1}));
}

TEST(Intersect, ClosedIntersection) {
  const auto r = intersect(ClosedInterval{0.2, 0.6}, ClosedInterval{0.4, 0.9});
  EXPECT_DOUBLE_EQ(r.lo, 0.4);
  EXPECT_DOUBLE_EQ(r.hi, 0.6);
  EXPECT_TRUE(
      intersect(ClosedInterval{0.0, 0.1}, ClosedInterval{0.2, 0.3}).empty());
}

}  // namespace
}  // namespace poolnet
