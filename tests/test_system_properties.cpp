// Cross-cutting properties that underpin the paper's headline results —
// the mechanisms, tested directly rather than through the benches.
#include <gtest/gtest.h>

#include <memory>

#include "bench_support/experiment.h"
#include "bench_support/testbed.h"
#include "query/query_gen.h"
#include "routing/gpsr.h"

namespace poolnet {
namespace {

using net::NodeId;

TEST(SystemProperties, RngPlanarizationAlsoDeliversEverywhere) {
  // GPSR must work over either planarization rule; the default tests use
  // Gabriel, this one closes the RNG path.
  benchsup::TestbedConfig config;
  config.nodes = 300;
  config.seed = 21;
  benchsup::Testbed tb(config);
  const routing::Gpsr rng_gpsr(tb.pool_network(),
                               routing::PlanarizationRule::RelativeNeighborhood);
  Rng rng(22);
  for (int i = 0; i < 150; ++i) {
    const auto src = tb.random_node(rng);
    const auto dst = tb.random_node(rng);
    const auto r = rng_gpsr.route_to_node(src, dst);
    EXPECT_TRUE(r.exact) << src << "->" << dst;
  }
}

TEST(SystemProperties, RngPerimeterDetoursAtLeastAsLongAsGabriel) {
  // RNG is a subgraph of GG, so its faces are coarser: perimeter detours
  // can only get longer on average. (Weak form: total hops not shorter.)
  benchsup::TestbedConfig config;
  config.nodes = 300;
  config.seed = 23;
  benchsup::Testbed tb(config);
  const routing::Gpsr gg(tb.pool_network(),
                         routing::PlanarizationRule::Gabriel);
  const routing::Gpsr rg(tb.pool_network(),
                         routing::PlanarizationRule::RelativeNeighborhood);
  Rng rng(24);
  std::size_t gg_hops = 0, rg_hops = 0;
  for (int i = 0; i < 200; ++i) {
    const auto src = tb.random_node(rng);
    const auto dst = tb.random_node(rng);
    gg_hops += gg.route_to_node(src, dst).hops();
    rg_hops += rg.route_to_node(src, dst).hops();
  }
  EXPECT_GE(rg_hops + 20, gg_hops);  // allow noise; RNG must not be shorter
}

TEST(SystemProperties, DimZoneCountGrowsWithNetworkForFixedQuery) {
  // The Figure 6 mechanism: a fixed query box overlaps ever more zones as
  // the network (and hence the zone tree) grows.
  const storage::RangeQuery q({{0.2, 0.5}, {0.3, 0.6}, {0.1, 0.4}});
  std::size_t prev = 0;
  for (const std::size_t nodes : {200ul, 600ul, 1400ul}) {
    benchsup::TestbedConfig config;
    config.nodes = nodes;
    config.seed = 25;
    benchsup::Testbed tb(config);
    const auto zones = tb.dim().relevant_zone_count(q);
    EXPECT_GT(zones, prev) << nodes;
    prev = zones;
  }
}

TEST(SystemProperties, PoolRelevantCellCountIndependentOfNetwork) {
  // The flip side: Pool's relevant-cell count depends only on the query
  // and l, never on the deployment.
  const storage::RangeQuery q({{0.2, 0.5}, {0.3, 0.6}, {0.1, 0.4}});
  std::size_t reference = 0;
  for (const std::size_t nodes : {200ul, 600ul, 1400ul}) {
    benchsup::TestbedConfig config;
    config.nodes = nodes;
    config.seed = 26;
    benchsup::Testbed tb(config);
    const auto cells = tb.pool().relevant_cell_count(q);
    if (reference == 0) {
      reference = cells;
      EXPECT_GT(cells, 0u);
    } else {
      EXPECT_EQ(cells, reference) << nodes;
    }
  }
}

TEST(SystemProperties, SplitterIsStablePerSinkAndCloserSinksCostLess) {
  benchsup::TestbedConfig config;
  config.nodes = 400;
  config.seed = 27;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  Rng rng(28);
  for (int i = 0; i < 10; ++i) {
    const auto sink = tb.random_node(rng);
    for (std::size_t p = 0; p < 3; ++p) {
      EXPECT_EQ(tb.pool().splitter_for(p, sink),
                tb.pool().splitter_for(p, sink));
    }
  }
  // A sink that IS a pool's splitter pays no sink->splitter leg for that
  // pool: its query cost from there is no higher than from a far corner.
  const storage::RangeQuery q({{0.45, 0.55}, {0.45, 0.55}, {0.0, 0.3}});
  const NodeId near_sink = tb.pool().splitter_for(0, tb.random_node(rng));
  const NodeId far_sink =
      tb.pool_network().nearest_node({0.0, 0.0});
  const auto near_cost = tb.pool().query(near_sink, q).messages;
  const auto far_cost = tb.pool().query(far_sink, q).messages;
  // Not a strict inequality in general (different splitters engage), but
  // both must be positive and the near sink must not pay a large premium.
  EXPECT_GT(near_cost, 0u);
  EXPECT_GT(far_cost, 0u);
}

TEST(SystemProperties, EnergyTracksMessagesAcrossSystems) {
  benchsup::TestbedConfig config;
  config.nodes = 300;
  config.seed = 29;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  query::QueryGenerator qgen({.dims = 3}, 30);
  const auto run = benchsup::run_paired_queries(
      tb, benchsup::generate_queries(30, [&] { return qgen.partial_range(1); }),
      31);
  // DIM sends more messages, so it must also burn more radio energy.
  EXPECT_GT(run.dim.messages.mean(), run.pool.messages.mean());
  EXPECT_GT(run.dim.energy_mj.mean(), run.pool.energy_mj.mean());
}

TEST(SystemProperties, PerNodeTxRxBalanceMatchesLedger) {
  benchsup::TestbedConfig config;
  config.nodes = 250;
  config.seed = 32;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  query::QueryGenerator qgen({.dims = 3}, 33);
  for (int i = 0; i < 10; ++i) tb.pool().query(0, qgen.exact_range());

  std::uint64_t tx = 0, rx = 0;
  for (const auto& n : tb.pool_network().nodes()) {
    tx += n.tx_count;
    rx += n.rx_count;
  }
  // Ideal links: every transmission is received exactly once, and both
  // equal the ledger total (insert traffic was reset by the testbed, but
  // node counters were not — so compare deltas via the ledger + inserts).
  EXPECT_EQ(tx, rx);
  EXPECT_EQ(tx, tb.pool_network().traffic().total +
                    tb.pool_insert_traffic().total);
}

}  // namespace
}  // namespace poolnet
