// Nearest-neighbor queries in attribute space (the paper's future-work
// feature, implemented via expanding box search over the Pool machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "bench_support/testbed.h"
#include "common/error.h"
#include "query/workload.h"

namespace poolnet::core {
namespace {

using storage::Event;
using storage::Values;

double dist(const Values& a, const Values& b) {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d2 += diff * diff;
  }
  return std::sqrt(d2);
}

struct NnFixture {
  explicit NnFixture(std::uint64_t seed, std::size_t nodes = 250) {
    benchsup::TestbedConfig config;
    config.nodes = nodes;
    config.seed = seed;
    tb = std::make_unique<benchsup::Testbed>(config);
    tb->insert_workload();
  }

  // Brute-force reference NN over everything the oracle holds.
  std::pair<const Event*, double> brute_nn(const Values& target) const {
    const Event* best = nullptr;
    double best_d = std::numeric_limits<double>::infinity();
    for (const Event& e : tb->oracle().all()) {
      const double d = dist(e.values, target);
      if (d < best_d) {
        best_d = d;
        best = &e;
      }
    }
    return {best, best_d};
  }

  std::unique_ptr<benchsup::Testbed> tb;
};

class NnSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NnSeeds, MatchesBruteForceDistance) {
  NnFixture fx(GetParam());
  Rng rng(GetParam() * 91 + 2);
  for (int trial = 0; trial < 40; ++trial) {
    Values target{rng.uniform(), rng.uniform(), rng.uniform()};
    const auto [want, want_d] = fx.brute_nn(target);
    ASSERT_NE(want, nullptr);
    const auto r = fx.tb->pool().nearest_event(
        fx.tb->random_node(rng), target);
    ASSERT_TRUE(r.nearest.has_value());
    // Ties by distance are acceptable; the distance itself must match.
    EXPECT_NEAR(r.distance, want_d, 1e-12);
    EXPECT_NEAR(dist(r.nearest->values, target), want_d, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnSeeds, ::testing::Values(1, 2, 3, 4));

TEST(NearestNeighbor, ExactHitHasZeroDistance) {
  NnFixture fx(5);
  const Event& stored = fx.tb->oracle().all()[100];
  const auto r = fx.tb->pool().nearest_event(0, stored.values);
  ASSERT_TRUE(r.nearest.has_value());
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_EQ(r.nearest->values, stored.values);
}

TEST(NearestNeighbor, EmptyStoreReturnsNothing) {
  benchsup::TestbedConfig config;
  config.nodes = 150;
  config.seed = 6;
  benchsup::Testbed tb(config);  // no insert_workload()
  const auto r = tb.pool().nearest_event(0, Values{0.5, 0.5, 0.5});
  EXPECT_FALSE(r.nearest.has_value());
  EXPECT_GT(r.rounds, 1u);  // had to expand to the whole space
}

TEST(NearestNeighbor, VisitsFewCellsForDenseTargets) {
  NnFixture fx(7, 400);
  // With 1200 stored events, a centered target finds a neighbor within
  // the first rounds and touches a small fraction of the 300 cells.
  const auto r = fx.tb->pool().nearest_event(0, Values{0.5, 0.4, 0.3});
  ASSERT_TRUE(r.nearest.has_value());
  EXPECT_LT(r.index_nodes_visited, 100u);
  EXPECT_GT(r.messages, 0u);
}

TEST(NearestNeighbor, CornerTargetsStillComplete) {
  NnFixture fx(8);
  for (const auto& target :
       {Values{0.0, 0.0, 0.0}, Values{1.0, 1.0, 1.0}, Values{1.0, 0.0, 1.0}}) {
    const auto [want, want_d] = fx.brute_nn(target);
    ASSERT_NE(want, nullptr);
    const auto r = fx.tb->pool().nearest_event(3, target);
    ASSERT_TRUE(r.nearest.has_value());
    EXPECT_NEAR(r.distance, want_d, 1e-12);
  }
}

TEST(NearestNeighbor, LargerInitialRadiusFewerRounds) {
  NnFixture fx(9);
  Values target{0.2, 0.9, 0.4};
  const auto small = fx.tb->pool().nearest_event(0, target, 0.01);
  const auto large = fx.tb->pool().nearest_event(0, target, 0.5);
  EXPECT_GE(small.rounds, large.rounds);
  EXPECT_NEAR(small.distance, large.distance, 1e-12);
}

TEST(NearestNeighbor, RejectsBadArguments) {
  NnFixture fx(10, 150);
  EXPECT_THROW(fx.tb->pool().nearest_event(0, Values{0.5, 0.5}),
               poolnet::ConfigError);
  EXPECT_THROW(fx.tb->pool().nearest_event(0, Values{0.5, 0.5, 0.5}, 0.0),
               poolnet::ConfigError);
}

}  // namespace
}  // namespace poolnet::core
