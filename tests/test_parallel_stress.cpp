// Wakeup stress for the ThreadPool: many short bursts of submissions and
// parallel_map calls, the exact pattern that loses a worker when the
// sleep/wake accounting (the unclaimed_ counter) is wrong. A missed
// wakeup hangs wait_idle, so a bug shows up as a test timeout; data races
// in the accounting show up in the clang-tsan CI job, which runs this
// test like any other.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include "bench_support/parallel.h"

namespace poolnet::benchsup {
namespace {

TEST(ParallelStressTest, ManyShortSubmissionBursts) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  // Interleave tiny bursts with wait_idle so workers repeatedly go to
  // sleep and must be woken for the next burst — the lost-wakeup window.
  for (int burst = 0; burst < 200; ++burst) {
    const std::size_t n = 1 + static_cast<std::size_t>(burst % 7);
    for (std::size_t i = 0; i < n; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
  }
  std::size_t expected = 0;
  for (int burst = 0; burst < 200; ++burst)
    expected += 1 + static_cast<std::size_t>(burst % 7);
  EXPECT_EQ(ran.load(), expected);
}

TEST(ParallelStressTest, RepeatedShortParallelMaps) {
  // Each parallel_map builds, drives and joins its own pool; repeating
  // with tiny n stresses startup/shutdown and the chunked submission
  // path at every worker count.
  for (std::size_t threads = 2; threads <= 8; threads += 3) {
    for (int round = 0; round < 60; ++round) {
      const std::size_t n = 1 + static_cast<std::size_t>(round % 5);
      const std::vector<int> out = parallel_map<int>(
          n, threads,
          [](std::size_t i) { return static_cast<int>(i) * 3 + 1; });
      ASSERT_EQ(out.size(), n);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], static_cast<int>(i) * 3 + 1);
    }
  }
}

TEST(ParallelStressTest, SubmissionsFromManyThreads) {
  // Concurrent submitters racing workers going idle: the scenario where
  // unclaimed_ and pending_ can disagree if either is updated outside
  // state_mu_.
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &sum, s] {
      for (int i = 0; i < 100; ++i) {
        pool.submit([&sum, s, i] {
          sum.fetch_add(static_cast<std::uint64_t>(s * 1000 + i),
                        std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  std::uint64_t expected = 0;
  for (int s = 0; s < 4; ++s)
    for (int i = 0; i < 100; ++i)
      expected += static_cast<std::uint64_t>(s * 1000 + i);
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace poolnet::benchsup
