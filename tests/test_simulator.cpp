#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.h"

namespace poolnet::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunAdvancesClockToLastEvent) {
  Simulator sim;
  sim.schedule_in(2.0, [] {});
  sim.schedule_in(5.0, [] {});
  const auto n = sim.run();
  EXPECT_EQ(n, 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, ActionsSeeCurrentTime) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_in(1.0, [&] { times.push_back(sim.now()); });
  sim.schedule_in(3.0, [&] { times.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fires = 0;
  std::function<void()> tick = [&] {
    ++fires;
    if (fires < 5) sim.schedule_in(1.0, tick);
  };
  sim.schedule_in(1.0, tick);
  sim.run();
  EXPECT_EQ(fires, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(2.0, [&] { ++fired; });
  sim.schedule_in(3.0, [&] { ++fired; });
  const auto n = sim.run_until(2.0);  // inclusive
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(4.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(Simulator, SchedulingIntoThePastAsserts) {
  Simulator sim;
  sim.schedule_in(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), poolnet::AssertionError);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), poolnet::AssertionError);
}

TEST(Simulator, ResetQueueDropsPendingEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.reset_queue();
  sim.run();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace poolnet::sim
