#include "dim/dim_system.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "net/deployment.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "storage/brute_force_store.h"

namespace poolnet::dim {
namespace {

using net::Network;
using net::NodeId;
using storage::Event;
using storage::RangeQuery;

struct Fixture {
  explicit Fixture(std::uint64_t seed, std::size_t n = 250,
                   std::size_t dims = 3)
      : oracle(dims) {
    const double side = net::field_side_for_density(n, 40.0, 20.0);
    const Rect field{0, 0, side, side};
    for (std::uint64_t attempt = 0;; ++attempt) {
      Rng rng(seed + attempt * 7919);
      auto pts = net::deploy_uniform(n, field, rng);
      auto candidate = std::make_unique<Network>(std::move(pts), field, 40.0);
      if (candidate->is_connected()) {
        network = std::move(candidate);
        break;
      }
    }
    gpsr = std::make_unique<routing::Gpsr>(*network);
    dim = std::make_unique<DimSystem>(*network, *gpsr, dims);
  }

  std::unique_ptr<Network> network;
  std::unique_ptr<routing::Gpsr> gpsr;
  std::unique_ptr<DimSystem> dim;
  storage::BruteForceStore oracle;
};

std::vector<std::uint64_t> ids(const std::vector<Event>& evs) {
  std::vector<std::uint64_t> out;
  for (const auto& e : evs) out.push_back(e.id);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DimSystem, InsertStoresAtZoneOwner) {
  Fixture fx(1);
  query::EventGenerator gen({.dims = 3}, 10);
  for (int i = 0; i < 50; ++i) {
    const auto e = gen.next(static_cast<NodeId>(i % fx.network->size()));
    const auto receipt = fx.dim->insert(e.source, e);
    const ZoneIndex leaf = fx.dim->tree().leaf_for_event(e);
    EXPECT_EQ(receipt.stored_at, fx.dim->tree().zone(leaf).owner);
  }
  EXPECT_EQ(fx.dim->stored_count(), 50u);
}

TEST(DimSystem, InsertChargesRoutingMessages) {
  Fixture fx(2);
  query::EventGenerator gen({.dims = 3}, 20);
  std::uint64_t total = 0;
  for (int i = 0; i < 100; ++i) {
    const auto e = gen.next(static_cast<NodeId>(i % fx.network->size()));
    total += fx.dim->insert(e.source, e).messages;
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(fx.network->traffic().of(net::MessageKind::Insert), total);
}

class DimQueryCorrectness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DimQueryCorrectness, ResultsMatchOracleOnExactRange) {
  Fixture fx(GetParam());
  query::EventGenerator gen({.dims = 3}, GetParam() ^ 0xaa);
  for (NodeId n = 0; n < fx.network->size(); ++n) {
    for (int i = 0; i < 3; ++i) {
      const auto e = gen.next(n);
      fx.dim->insert(n, e);
      fx.oracle.insert(n, e);
    }
  }
  query::QueryGenerator qgen({.dims = 3}, GetParam() ^ 0xbb);
  Rng sink_rng(GetParam() ^ 0xcc);
  for (int i = 0; i < 40; ++i) {
    const auto q = qgen.exact_range();
    const auto sink = static_cast<NodeId>(
        sink_rng.uniform_int(0, static_cast<std::int64_t>(fx.network->size()) - 1));
    const auto receipt = fx.dim->query(sink, q);
    EXPECT_EQ(ids(receipt.events), ids(fx.oracle.matching(q)))
        << "query " << q;
  }
}

TEST_P(DimQueryCorrectness, ResultsMatchOracleOnPartialRange) {
  Fixture fx(GetParam() ^ 0x1234);
  query::EventGenerator gen({.dims = 3}, GetParam());
  for (NodeId n = 0; n < fx.network->size(); ++n) {
    const auto e = gen.next(n);
    fx.dim->insert(n, e);
    fx.oracle.insert(n, e);
  }
  query::QueryGenerator qgen({.dims = 3}, GetParam() ^ 0xdd);
  Rng sink_rng(GetParam() ^ 0xee);
  for (int i = 0; i < 20; ++i) {
    for (const std::size_t m : {std::size_t{1}, std::size_t{2}}) {
      const auto q = qgen.partial_range(m);
      const auto sink = static_cast<NodeId>(sink_rng.uniform_int(
          0, static_cast<std::int64_t>(fx.network->size()) - 1));
      const auto receipt = fx.dim->query(sink, q);
      EXPECT_EQ(ids(receipt.events), ids(fx.oracle.matching(q)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DimQueryCorrectness,
                         ::testing::Values(101, 202, 303));

TEST(DimSystem, QueryCostBreakdownConsistent) {
  Fixture fx(5);
  query::EventGenerator gen({.dims = 3}, 55);
  for (NodeId n = 0; n < fx.network->size(); ++n)
    fx.dim->insert(n, gen.next(n));
  query::QueryGenerator qgen({.dims = 3}, 56);
  const auto receipt = fx.dim->query(0, qgen.exact_range());
  EXPECT_EQ(receipt.messages,
            receipt.query_messages + receipt.reply_messages);
}

TEST(DimSystem, WiderQueriesVisitMoreZones) {
  Fixture fx(6);
  const RangeQuery narrow({{0.4, 0.45}, {0.4, 0.45}, {0.4, 0.45}});
  const RangeQuery wide({{0.1, 0.9}, {0.1, 0.9}, {0.1, 0.9}});
  EXPECT_LT(fx.dim->relevant_zone_count(narrow),
            fx.dim->relevant_zone_count(wide));
}

TEST(DimSystem, UnspecifiedFirstDimensionCostsMoreMessages) {
  // The k-d ordering effect behind Figure 7(b): a don't-care on dim 0
  // splits the query at the ROOT of the zone tree, so subqueries must
  // travel across the whole network; a don't-care on the last dimension
  // splits deep, among adjacent zones. The zone COUNT is similar either
  // way — the forwarding distance is what differs.
  Fixture fx(7, 500);
  query::EventGenerator gen({.dims = 3}, 70);
  for (NodeId n = 0; n < fx.network->size(); ++n)
    fx.dim->insert(n, gen.next(n));

  const auto cost_with_unspecified = [&](std::size_t unspec) {
    std::uint64_t total = 0;
    Rng rng(71);
    for (int i = 0; i < 40; ++i) {
      RangeQuery::Bounds b;
      FixedVec<bool, storage::kMaxDims> spec;
      const double lo = rng.uniform(0.0, 0.8);
      for (std::size_t d = 0; d < 3; ++d) {
        b.push_back({lo, lo + 0.05});
        spec.push_back(d != unspec);
      }
      const auto sink = static_cast<NodeId>(rng.uniform_int(
          0, static_cast<std::int64_t>(fx.network->size()) - 1));
      total += fx.dim->query(sink, RangeQuery(b, spec)).query_messages;
    }
    return total;
  };
  EXPECT_GT(cost_with_unspecified(0), cost_with_unspecified(2));
}

TEST(DimSystem, EmptySystemReturnsNothing) {
  Fixture fx(8, 100);
  const auto receipt =
      fx.dim->query(0, RangeQuery({{0, 1}, {0, 1}, {0, 1}}));
  EXPECT_TRUE(receipt.events.empty());
  EXPECT_EQ(receipt.reply_messages, 0u);
  EXPECT_GT(receipt.query_messages, 0u);  // the query still tours zones
}

TEST(DimSystem, RejectsDimensionMismatch) {
  Fixture fx(9, 50);
  Event e;
  e.id = 1;
  e.source = 0;
  e.values.push_back(0.5);
  EXPECT_THROW(fx.dim->insert(0, e), poolnet::ConfigError);
  EXPECT_THROW(fx.dim->query(0, RangeQuery({{0, 1}})), poolnet::ConfigError);
}

TEST(DimSystem, StoredEventsCountedOnOwners) {
  Fixture fx(10, 100);
  query::EventGenerator gen({.dims = 3}, 5);
  for (int i = 0; i < 300; ++i) fx.dim->insert(0, gen.next(0));
  std::uint64_t total = 0;
  for (const auto& node : fx.network->nodes()) total += node.stored_events;
  EXPECT_EQ(total, 300u);
}

}  // namespace
}  // namespace poolnet::dim
