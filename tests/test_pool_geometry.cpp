#include "core/pool_geometry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace poolnet::core {
namespace {

using storage::Event;
using storage::RangeQuery;

Event make_event(std::initializer_list<double> vals) {
  Event e;
  e.id = 1;
  e.source = 0;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

// --- Equation 1 -----------------------------------------------------------

TEST(Equation1, HorizontalRangesTileUnitInterval) {
  for (const std::uint32_t l : {1u, 2u, 5u, 10u, 16u}) {
    double expected_lo = 0.0;
    for (std::uint32_t ho = 0; ho < l; ++ho) {
      const auto r = range_h(ho, l);
      EXPECT_DOUBLE_EQ(r.lo, expected_lo);
      expected_lo = r.hi;
    }
    EXPECT_DOUBLE_EQ(expected_lo, 1.0);
  }
}

TEST(Equation1, VerticalRangesTileColumnRange) {
  // Per column ho, the l vertical ranges tile [0, (HO+1)/l).
  const std::uint32_t l = 5;
  for (std::uint32_t ho = 0; ho < l; ++ho) {
    double expected_lo = 0.0;
    for (std::uint32_t vo = 0; vo < l; ++vo) {
      const auto r = range_v(ho, vo, l);
      EXPECT_NEAR(r.lo, expected_lo, 1e-12);
      expected_lo = r.hi;
    }
    EXPECT_NEAR(expected_lo, static_cast<double>(ho + 1) / l, 1e-12);
  }
}

TEST(Equation1, PaperFigure3SecondColumn) {
  // Figure 3, second column (HO=1) of an l=5 pool: horizontal [0.2, 0.4),
  // vertical ranges [0,.08) [.08,.16) [.16,.24) [.24,.32) [.32,.4).
  EXPECT_EQ(range_h(1, 5), (HalfOpenInterval{0.2, 0.4}));
  EXPECT_EQ(range_v(1, 0, 5), (HalfOpenInterval{0.0, 0.08}));
  EXPECT_EQ(range_v(1, 1, 5), (HalfOpenInterval{0.08, 0.16}));
  EXPECT_EQ(range_v(1, 2, 5), (HalfOpenInterval{0.16, 0.24}));
  EXPECT_EQ(range_v(1, 3, 5), (HalfOpenInterval{0.24, 0.32}));
  EXPECT_EQ(range_v(1, 4, 5), (HalfOpenInterval{0.32, 0.4}));
}

TEST(Equation1, OutOfRangeOffsetsAssert) {
  EXPECT_THROW(range_h(5, 5), AssertionError);
  EXPECT_THROW(range_v(0, 5, 5), AssertionError);
  EXPECT_THROW(range_h(0, 0), AssertionError);
}

// --- Theorem 3.1 -----------------------------------------------------------

TEST(Theorem31, PaperWorkedExample) {
  // E = <0.4, 0.3, 0.1>, l = 5: stored at HO=2, VO=2 (C(3,4) of a pool
  // pivoted at C(1,2) in the paper's figure).
  const auto off = cell_for_values(0.4, 0.3, 5);
  EXPECT_EQ(off, (CellOffset{2, 2}));
}

TEST(Theorem31, ValuesLandInOwnCellRanges) {
  // Consistency with Equation 1 — the invariant query resolving relies
  // on: the computed cell's half-open ranges contain (v_d1, v_d2), with
  // the only exception being values pinned at the very top of the space
  // (clamped into the last column/row).
  Rng rng(31);
  for (const std::uint32_t l : {2u, 5u, 10u, 16u}) {
    for (int trial = 0; trial < 2000; ++trial) {
      double a = rng.uniform(), b = rng.uniform();
      if (rng.bernoulli(0.2)) {  // boundary-heavy draws
        a = static_cast<double>(rng.uniform_int(0, l)) / l;
        b = a * static_cast<double>(rng.uniform_int(0, 4)) / 4.0;
      }
      if (a < b) std::swap(a, b);  // a = greatest, b = second greatest
      const auto off = cell_for_values(a, b, l);
      EXPECT_TRUE(range_h(off.ho, l).contains(a) ||
                  (off.ho == l - 1 && a >= range_h(off.ho, l).hi))
          << "l=" << l << " a=" << a;
      EXPECT_TRUE(range_v(off.ho, off.vo, l).contains(b) ||
                  (off.vo == l - 1 && b >= range_v(off.ho, off.vo, l).hi))
          << "l=" << l << " a=" << a << " b=" << b;
    }
  }
}

// The same Equation-1 containment invariant, checked EXHAUSTIVELY on the
// rational grid i/l² — every vertical cell boundary lies on this grid,
// and every horizontal boundary j/l = (j*l)/l² does too, so these are
// precisely the values where floor arithmetic and the range endpoints can
// round apart. Tiered for runtime: the full (v1, v2) grid for small
// sides, boundary neighborhoods along representative chords up to the
// CLI's maximum side of 64.

void expect_consistent_with_equation1(double v1, double v2, std::uint32_t l) {
  const auto off = cell_for_values(v1, v2, l);
  const auto rh = range_h(off.ho, l);
  EXPECT_TRUE(rh.contains(v1) || (off.ho == l - 1 && v1 >= rh.hi))
      << "l=" << l << " v1=" << v1;
  const auto rv = range_v(off.ho, off.vo, l);
  EXPECT_TRUE(rv.contains(v2) || (off.vo == l - 1 && v2 >= rv.hi))
      << "l=" << l << " v1=" << v1 << " v2=" << v2;
}

TEST(Theorem31, MatchesEquation1OnFullRationalGridForSmallSides) {
  for (std::uint32_t l = 2; l <= 16; ++l) {
    const double ll = static_cast<double>(l) * static_cast<double>(l);
    for (std::uint32_t i = 0; i <= l * l; ++i) {
      const double v1 = static_cast<double>(i) / ll;
      for (std::uint32_t j = 0; j <= i; ++j)
        expect_consistent_with_equation1(v1, static_cast<double>(j) / ll, l);
    }
  }
}

TEST(Theorem31, MatchesEquation1OnBoundaryNeighborhoodsUpToSide64) {
  // The full grid is quartic in l; for the larger sides probe every grid
  // point and its floating-point neighbors on both sides, along the
  // diagonal (v2 == v1) and the half chord (v2 == v1/2) — paths that
  // cross every column and every row boundary.
  for (std::uint32_t l = 17; l <= 64; ++l) {
    const double ll = static_cast<double>(l) * static_cast<double>(l);
    for (std::uint32_t i = 0; i <= l * l; ++i) {
      const double g = static_cast<double>(i) / ll;
      for (const double v1 :
           {g, std::nextafter(g, 0.0), std::nextafter(g, 2.0)}) {
        if (v1 < 0.0 || v1 > 1.0) continue;
        expect_consistent_with_equation1(v1, v1, l);
        expect_consistent_with_equation1(v1, v1 / 2.0, l);
      }
    }
  }
}

TEST(Theorem31, TopClampLandsInTopColumnAndRowForEverySide) {
  for (std::uint32_t l = 2; l <= 64; ++l) {
    EXPECT_EQ(cell_for_values(1.0, 1.0, l), (CellOffset{l - 1, l - 1}));
    EXPECT_EQ(cell_for_values(1.0, 0.0, l), (CellOffset{l - 1, 0}));
  }
}

TEST(Theorem31, BoundaryValues) {
  EXPECT_EQ(cell_for_values(0.0, 0.0, 10), (CellOffset{0, 0}));
  EXPECT_EQ(cell_for_values(1.0, 1.0, 10), (CellOffset{9, 9}));
  EXPECT_EQ(cell_for_values(1.0, 0.0, 10), (CellOffset{9, 0}));
  // Exactly on a column boundary goes to the upper column.
  EXPECT_EQ(cell_for_values(0.2, 0.1, 5).ho, 1u);
}

TEST(Theorem31, SecondValueAboveFirstAsserts) {
  EXPECT_THROW(cell_for_values(0.3, 0.4, 5), AssertionError);
}

TEST(Theorem31, RejectsZeroSide) {
  EXPECT_THROW(cell_for_values(0.5, 0.4, 0), poolnet::ConfigError);
}

// --- Theorem 3.2 -----------------------------------------------------------

TEST(Theorem32, PaperExample31DerivedRanges) {
  // Q = <[0.2,0.3], [0.25,0.35], [0.21,0.24]>.
  const RangeQuery q({{0.2, 0.3}, {0.25, 0.35}, {0.21, 0.24}});
  const auto r1 = derived_ranges(q, 0);
  EXPECT_DOUBLE_EQ(r1.rh.lo, 0.25);
  EXPECT_DOUBLE_EQ(r1.rh.hi, 0.30);
  EXPECT_DOUBLE_EQ(r1.rv.lo, 0.25);
  EXPECT_DOUBLE_EQ(r1.rv.hi, 0.30);

  const auto r2 = derived_ranges(q, 1);
  EXPECT_DOUBLE_EQ(r2.rh.lo, 0.25);
  EXPECT_DOUBLE_EQ(r2.rh.hi, 0.35);
  EXPECT_DOUBLE_EQ(r2.rv.lo, 0.21);
  EXPECT_DOUBLE_EQ(r2.rv.hi, 0.30);

  // P3's ranges are empty: [0.25, 0.24].
  const auto r3 = derived_ranges(q, 2);
  EXPECT_TRUE(r3.rh.empty());
  EXPECT_DOUBLE_EQ(r3.rh.lo, 0.25);
  EXPECT_DOUBLE_EQ(r3.rh.hi, 0.24);
}

TEST(Theorem32, PaperExample32PartialMatch) {
  // Q = <*, *, [0.8, 0.84]>.
  RangeQuery::Bounds b{{0, 0}, {0, 0}, {0.8, 0.84}};
  FixedVec<bool, storage::kMaxDims> spec{false, false, true};
  const RangeQuery q(b, spec);

  const auto r1 = derived_ranges(q, 0);
  EXPECT_EQ(r1.rh, (ClosedInterval{0.8, 1.0}));
  EXPECT_EQ(r1.rv, (ClosedInterval{0.8, 1.0}));
  const auto r2 = derived_ranges(q, 1);
  EXPECT_EQ(r2.rh, (ClosedInterval{0.8, 1.0}));
  EXPECT_EQ(r2.rv, (ClosedInterval{0.8, 1.0}));
  const auto r3 = derived_ranges(q, 2);
  EXPECT_EQ(r3.rh, (ClosedInterval{0.8, 0.84}));
  EXPECT_EQ(r3.rv, (ClosedInterval{0.0, 0.84}));
}

// --- Algorithm 2 ------------------------------------------------------------

TEST(Algorithm2, PaperExample31RelevantCells) {
  const RangeQuery q({{0.2, 0.3}, {0.25, 0.35}, {0.21, 0.24}});
  // P1: exactly offset (1,3) — the paper's C(2,5) from pivot C(1,2).
  const auto c1 = relevant_cells(q, 0, 5);
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1[0], (CellOffset{1, 3}));
  // P2: offsets (1,2) and (1,3) — C(3,12), C(3,13) from pivot C(2,10).
  const auto c2 = relevant_cells(q, 1, 5);
  ASSERT_EQ(c2.size(), 2u);
  EXPECT_EQ(c2[0], (CellOffset{1, 2}));
  EXPECT_EQ(c2[1], (CellOffset{1, 3}));
  // P3: none.
  EXPECT_TRUE(relevant_cells(q, 2, 5).empty());
}

TEST(Algorithm2, PaperExample32RelevantCells) {
  RangeQuery::Bounds b{{0, 0}, {0, 0}, {0.8, 0.84}};
  FixedVec<bool, storage::kMaxDims> spec{false, false, true};
  const RangeQuery q(b, spec);
  // P1 and P2: single top-corner cell (4,4).
  const auto c1 = relevant_cells(q, 0, 5);
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1[0], (CellOffset{4, 4}));
  const auto c2 = relevant_cells(q, 1, 5);
  ASSERT_EQ(c2.size(), 1u);
  EXPECT_EQ(c2[0], (CellOffset{4, 4}));
  // P3: the whole last column, C(11,3)..C(11,7) from pivot C(7,3).
  const auto c3 = relevant_cells(q, 2, 5);
  ASSERT_EQ(c3.size(), 5u);
  for (std::uint32_t vo = 0; vo < 5; ++vo)
    EXPECT_EQ(c3[vo], (CellOffset{4, vo}));
}

class Theorem32Soundness : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Theorem32Soundness, MatchingEventsAlwaysInRelevantCells) {
  // The pruning must never lose answers: for every event E matching Q and
  // every admissible storage choice of E (including ties), E's cell is in
  // the relevant set of its pool.
  const std::uint32_t l = GetParam();
  Rng rng(320 + l);
  for (int trial = 0; trial < 3000; ++trial) {
    // Random event and a query grown around it so it always matches.
    const std::size_t dims = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    Event e;
    e.id = 1;
    e.source = 0;
    RangeQuery::Bounds bounds;
    for (std::size_t d = 0; d < dims; ++d) {
      const double v = rng.uniform();
      e.values.push_back(v);
      const double lo = std::max(0.0, v - rng.uniform(0, 0.3));
      const double hi = std::min(1.0, v + rng.uniform(0, 0.3));
      bounds.push_back({lo, hi});
    }
    const RangeQuery q(bounds);
    ASSERT_TRUE(q.matches(e));

    for (const std::size_t d1 : e.max_dims()) {
      const Placement pl = placement_for(e, d1);
      const CellOffset cell = cell_for_values(pl.v_d1, pl.v_d2, l);
      const auto relevant = relevant_cells(q, d1, l);
      EXPECT_TRUE(std::find(relevant.begin(), relevant.end(), cell) !=
                  relevant.end())
          << "lost event " << e << " for query " << q << " in pool " << d1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SideLengths, Theorem32Soundness,
                         ::testing::Values(2, 5, 10, 16));

TEST(Algorithm2, RelevantCellsMatchRangeIntersection) {
  // The returned set is exactly the cells whose ranges intersect R_H/R_V.
  Rng rng(99);
  const std::uint32_t l = 10;
  for (int trial = 0; trial < 200; ++trial) {
    RangeQuery::Bounds bounds;
    for (int d = 0; d < 3; ++d) {
      const double s = rng.uniform(0, 0.5);
      const double lo = rng.uniform(0, 1 - s);
      bounds.push_back({lo, lo + s});
    }
    const RangeQuery q(bounds);
    for (std::size_t pool = 0; pool < 3; ++pool) {
      const auto got = relevant_cells(q, pool, l);
      const auto r = derived_ranges(q, pool);
      std::vector<CellOffset> want;
      if (!r.rh.empty() && !r.rv.empty()) {
        for (std::uint32_t ho = 0; ho < l; ++ho) {
          for (std::uint32_t vo = 0; vo < l; ++vo) {
            if (intersects(range_h(ho, l), r.rh) &&
                intersects(range_v(ho, vo, l), r.rv))
              want.push_back({ho, vo});
          }
        }
      }
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], want[i]);
    }
  }
}

TEST(Algorithm2, PruningBeatsFullScanOnSelectiveQueries) {
  // A narrow query touches a small fraction of the l^2 cells per pool.
  const RangeQuery q({{0.72, 0.74}, {0.3, 0.32}, {0.1, 0.12}});
  std::size_t total = 0;
  for (std::size_t pool = 0; pool < 3; ++pool)
    total += relevant_cells(q, pool, 10).size();
  EXPECT_LT(total, 10u);  // out of 300 cells
}

TEST(PlacementFor, TieUsesRemainingMaximum) {
  // <0.4, 0.4, 0.2>: placing in pool 0 uses v_d2 = 0.4 (dim 1's value).
  const auto e = make_event({0.4, 0.4, 0.2});
  const auto p0 = placement_for(e, 0);
  EXPECT_DOUBLE_EQ(p0.v_d1, 0.4);
  EXPECT_DOUBLE_EQ(p0.v_d2, 0.4);
  const auto p1 = placement_for(e, 1);
  EXPECT_DOUBLE_EQ(p1.v_d1, 0.4);
  EXPECT_DOUBLE_EQ(p1.v_d2, 0.4);
}

TEST(PlacementFor, SingleDimensionHasZeroSecondValue) {
  const auto e = make_event({0.7});
  const auto p = placement_for(e, 0);
  EXPECT_DOUBLE_EQ(p.v_d1, 0.7);
  EXPECT_DOUBLE_EQ(p.v_d2, 0.0);
}

}  // namespace
}  // namespace poolnet::core
