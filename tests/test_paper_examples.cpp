// Reproduction of the paper's worked examples (Figures 2-5, Examples
// 3.1/3.2, Section 4.1) on a testbed laid out exactly like Figure 2:
// l = 5 pools pivoted at C(1,2), C(2,10) and C(7,3).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/pool_system.h"
#include "net/deployment.h"
#include "routing/gpsr.h"
#include "storage/brute_force_store.h"

namespace poolnet::core {
namespace {

using net::Network;
using net::NodeId;
using storage::Event;
using storage::RangeQuery;

Event make_event(std::uint64_t id, std::initializer_list<double> vals) {
  Event e;
  e.id = id;
  e.source = 0;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

struct Figure2Testbed {
  Figure2Testbed() {
    // 16x16 cells of 5 m => an 80 m field, densely covered so every cell
    // has a sensor close to its center (the paper's density assumption).
    const Rect field{0, 0, 80, 80};
    Rng rng(7);
    auto pts = net::deploy_grid_jitter(1024, field, 0.6, rng);
    network = std::make_unique<Network>(std::move(pts), field, 12.0);
    EXPECT_TRUE(network->is_connected());
    gpsr = std::make_unique<routing::Gpsr>(*network);
    PoolConfig config;
    config.cell_size = 5.0;
    config.side = 5;
    Grid grid(*network, 5.0);
    PoolLayout layout({{1, 2}, {2, 10}, {7, 3}}, 5, grid.cols(), grid.rows());
    pool = std::make_unique<PoolSystem>(*network, *gpsr, 3, config,
                                        std::move(layout));
  }

  std::unique_ptr<Network> network;
  std::unique_ptr<routing::Gpsr> gpsr;
  std::unique_ptr<PoolSystem> pool;
};

TEST(PaperExamples, Section311EventPlacement) {
  // "let E = <0.4, 0.3, 0.1> ... E is stored in C(3,4)" (pivot C(1,2)).
  Figure2Testbed tb;
  const auto choice = tb.pool->choose_cell(0, make_event(1, {0.4, 0.3, 0.1}));
  EXPECT_EQ(choice.pool_dim, 0u);
  EXPECT_EQ(choice.coord, (CellCoord{3, 4}));
}

TEST(PaperExamples, Example31RelevantCellsAcrossPools) {
  // Figure 4: Q = <[0.2,0.3],[0.25,0.35],[0.21,0.24]> touches C(2,5) in
  // P1, C(3,12) and C(3,13) in P2, and nothing in P3.
  Figure2Testbed tb;
  const RangeQuery q({{0.2, 0.3}, {0.25, 0.35}, {0.21, 0.24}});

  const auto p1 = relevant_cells(q, 0, 5);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(tb.pool->layout().cell(0, p1[0]), (CellCoord{2, 5}));

  const auto p2 = relevant_cells(q, 1, 5);
  ASSERT_EQ(p2.size(), 2u);
  EXPECT_EQ(tb.pool->layout().cell(1, p2[0]), (CellCoord{3, 12}));
  EXPECT_EQ(tb.pool->layout().cell(1, p2[1]), (CellCoord{3, 13}));

  EXPECT_TRUE(relevant_cells(q, 2, 5).empty());
  EXPECT_EQ(tb.pool->relevant_cell_count(q), 3u);
}

TEST(PaperExamples, Example32PartialMatchCells) {
  // Figure 5: Q = <*, *, [0.8,0.84]> touches C(5,6) in P1, C(6,14) in P2,
  // and the column C(11,3)..C(11,7) in P3.
  Figure2Testbed tb;
  RangeQuery::Bounds b{{0, 0}, {0, 0}, {0.8, 0.84}};
  FixedVec<bool, storage::kMaxDims> spec{false, false, true};
  const RangeQuery q(b, spec);

  const auto p1 = relevant_cells(q, 0, 5);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(tb.pool->layout().cell(0, p1[0]), (CellCoord{5, 6}));

  const auto p2 = relevant_cells(q, 1, 5);
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_EQ(tb.pool->layout().cell(1, p2[0]), (CellCoord{6, 14}));

  const auto p3 = relevant_cells(q, 2, 5);
  ASSERT_EQ(p3.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(tb.pool->layout().cell(2, p3[i]),
              (CellCoord{11, 3 + static_cast<std::int32_t>(i)}));
  }
  EXPECT_EQ(tb.pool->relevant_cell_count(q), 7u);
}

TEST(PaperExamples, Example31EndToEndRetrieval) {
  // Store events engineered into each relevant region and verify the
  // query pipeline retrieves exactly the qualifying ones.
  Figure2Testbed tb;
  storage::BruteForceStore oracle(3);
  const std::vector<Event> events{
      make_event(1, {0.28, 0.27, 0.22}),  // qualifies, lives in P1
      make_event(2, {0.26, 0.33, 0.23}),  // qualifies, lives in P2
      make_event(3, {0.28, 0.30, 0.40}),  // d1=3: in P3, does NOT qualify
      make_event(4, {0.60, 0.30, 0.22}),  // V1 too big, not qualifying
      make_event(5, {0.28, 0.10, 0.22}),  // V2 too small, not qualifying
  };
  for (const auto& e : events) {
    tb.pool->insert(0, e);
    oracle.insert(0, e);
  }
  const RangeQuery q({{0.2, 0.3}, {0.25, 0.35}, {0.21, 0.24}});
  const auto receipt = tb.pool->query(0, q);
  std::vector<std::uint64_t> got;
  for (const auto& e : receipt.events) got.push_back(e.id);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(receipt.index_nodes_visited, 3u);  // 1 + 2 + 0 relevant cells
}

TEST(PaperExamples, Section41TieExample) {
  // E = <0.4, 0.4, 0.2>: the greatest value ties between dims 1 and 2, so
  // there is one candidate cell per tied pool — the paper names C(3,5)
  // for P1 under the Figure 2 layout, which is offset (2,3) — and the
  // event is stored once, at the candidate closest to the detection cell
  // (the paper's example detects near C(8,12)).
  Figure2Testbed tb;
  const auto e = make_event(1, {0.4, 0.4, 0.2});
  // Theorem 3.1 with v_d1 = v_d2 = 0.4: HO = 2, VO = floor(.4*25/3) = 3.
  const auto off = cell_for_values(0.4, 0.4, 5);
  EXPECT_EQ(off, (CellOffset{2, 3}));
  const CellCoord cand_p1 = tb.pool->layout().cell(0, off);  // C(3,5)
  EXPECT_EQ(cand_p1, (CellCoord{3, 5}));
  const CellCoord cand_p2 = tb.pool->layout().cell(1, off);  // C(4,13)
  // Source near C(8,12) is closer to P2's candidate.
  const Point src_pos = tb.pool->grid().cell_center({8, 12});
  const NodeId src = tb.network->nearest_node(src_pos);
  const auto choice = tb.pool->choose_cell(src, e);
  const double d1 = distance(tb.pool->grid().cell_center(cand_p1), src_pos);
  const double d2 = distance(tb.pool->grid().cell_center(cand_p2), src_pos);
  ASSERT_LT(d2, d1);
  EXPECT_EQ(choice.coord, cand_p2);
  // One copy only, still retrievable (Section 4.1's requirement).
  tb.pool->insert(src, e);
  EXPECT_EQ(tb.pool->stored_count(), 1u);
  const RangeQuery q({{0.35, 0.45}, {0.35, 0.45}, {0.15, 0.25}});
  EXPECT_EQ(tb.pool->query(src, q).events.size(), 1u);
}

TEST(PaperExamples, Figure3RangesReproduced) {
  // Every range printed in Figure 3 for P1 (l = 5).
  // Horizontal: columns 0..4 = [0,.2) [.2,.4) [.4,.6) [.6,.8) [.8,1).
  const double h[6] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  for (std::uint32_t ho = 0; ho < 5; ++ho) {
    EXPECT_DOUBLE_EQ(range_h(ho, 5).lo, h[ho]);
    EXPECT_DOUBLE_EQ(range_h(ho, 5).hi, h[ho + 1]);
  }
  // Spot-check the figure's verticals in other columns.
  EXPECT_EQ(range_v(0, 4, 5), (HalfOpenInterval{0.16, 0.2}));
  EXPECT_EQ(range_v(2, 4, 5), (HalfOpenInterval{0.48, 0.6}));
  EXPECT_EQ(range_v(3, 4, 5), (HalfOpenInterval{0.64, 0.8}));
  EXPECT_EQ(range_v(4, 4, 5), (HalfOpenInterval{0.8, 1.0}));
  EXPECT_EQ(range_v(2, 0, 5), (HalfOpenInterval{0.0, 0.12}));
  EXPECT_EQ(range_v(3, 1, 5), (HalfOpenInterval{0.16, 0.32}));
}

}  // namespace
}  // namespace poolnet::core
