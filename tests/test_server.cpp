// End-to-end tests for the poolnetd server core: byte-identical results,
// admission control, drain-on-shutdown, live metrics and protocol errors
// — all over real loopback sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "server/client.h"
#include "server/query_language.h"
#include "server/server.h"
#include "storage/store_config.h"

namespace poolnet::server {
namespace {

ServerConfig small_config(SystemKind system = SystemKind::Pool) {
  ServerConfig config;
  config.backend.system = system;
  config.backend.nodes = 60;
  config.backend.dims = 3;
  config.backend.events_per_node = 3;
  config.backend.seed = 7;
  config.backend.engine.batch_size = 4;
  return config;
}

std::string tight_select(double lo0, double hi0) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "SELECT WHERE a0 IN [%.6f, %.6f]", lo0, hi0);
  return buf;
}

TEST(ServerTest, ResultsAreByteIdenticalToDirectExecution) {
  const ServerConfig config = small_config();
  Server server(config);
  server.start();
  Backend direct(config.backend);  // same seed -> same deployment

  Client client;
  client.connect("127.0.0.1", server.port());
  const char* statements[] = {
      "SELECT",
      "SELECT WHERE a0 IN [0.2, 0.8]",
      "SELECT WHERE a0 IN [0.1, 0.5] AND a2 IN [0.4, 0.9]",
      "SELECT WHERE a0 IN [0.25, 0.25] AND a1 IN [0.0, 1.0]",
      "SELECT WHERE a1 IN [0.6, 0.7]",
  };
  for (const char* text : statements) {
    const std::uint64_t id = client.send_query(text);
    const Client::Reply reply = client.read_reply();
    ASSERT_FALSE(reply.is_error) << text << ": " << reply.message;
    EXPECT_EQ(reply.request_id, id);

    storage::RangeQuery::Bounds one;
    one.push_back(ClosedInterval{0.0, 1.0});
    storage::RangeQuery query{one};
    std::string error;
    ASSERT_TRUE(parse_select(text, 3, &query, &error)) << error;
    const storage::QueryReceipt receipt =
        direct.system().query(direct.sink(), query);
    EXPECT_EQ(reply.body, encode_events(receipt.events)) << text;
  }
  client.close();
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.disconnects, 1u);
  EXPECT_EQ(stats.queries_in, 5u);
  EXPECT_EQ(stats.queries_out, 5u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ServerTest, ServesAllFourSystems) {
  for (const SystemKind system :
       {SystemKind::Pool, SystemKind::Dim, SystemKind::Ght,
        SystemKind::Central}) {
    Server server(small_config(system));
    server.start();
    Backend direct(server.backend().config());
    Client client;
    client.connect("127.0.0.1", server.port());
    const std::vector<storage::Event> events =
        client.query("SELECT WHERE a0 IN [0.1, 0.9]");
    storage::RangeQuery::Bounds one;
    one.push_back(ClosedInterval{0.0, 1.0});
    storage::RangeQuery query{one};
    std::string error;
    ASSERT_TRUE(parse_select("SELECT WHERE a0 IN [0.1, 0.9]", 3, &query,
                             &error));
    const storage::QueryReceipt receipt =
        direct.system().query(direct.sink(), query);
    EXPECT_EQ(encode_events(events), encode_events(receipt.events))
        << to_string(system);
    client.close();
    server.stop();
  }
}

TEST(ServerTest, CentralPagedStoreMatchesFlatByteForByte) {
  // Same deployment seed, two backends: the central store with a tiny
  // paged pool must serve the exact reply bytes of the flat store.
  ServerConfig flat_config = small_config(SystemKind::Central);
  ServerConfig paged_config = flat_config;
  std::string error;
  ASSERT_TRUE(storage::parse_store_spec("paged:2:1:file",
                                        &paged_config.backend.store, &error))
      << error;

  Server server(paged_config);
  server.start();
  Backend flat(flat_config.backend);
  Client client;
  client.connect("127.0.0.1", server.port());
  for (const char* text :
       {"SELECT", "SELECT WHERE a0 IN [0.2, 0.8]",
        "SELECT WHERE a1 IN [0.1, 0.6] AND a2 IN [0.3, 0.9]"}) {
    const std::vector<storage::Event> events = client.query(text);
    storage::RangeQuery::Bounds one;
    one.push_back(ClosedInterval{0.0, 1.0});
    storage::RangeQuery query{one};
    ASSERT_TRUE(parse_select(text, 3, &query, &error)) << error;
    const storage::QueryReceipt receipt =
        flat.system().query(flat.sink(), query);
    EXPECT_EQ(encode_events(events), encode_events(receipt.events)) << text;
  }
  client.close();
  server.stop();
}

TEST(ServerTest, InsertedEventBecomesQueryable) {
  Server server(small_config());
  server.start();
  const std::uint64_t preloaded = server.backend().preloaded_events();

  Client client;
  client.connect("127.0.0.1", server.port());
  const std::uint32_t stored_at =
      client.insert("INSERT VALUES (0.41, 0.43, 0.47)");
  EXPECT_NE(stored_at, net::kNoNode);

  const std::vector<storage::Event> events = client.query(
      "SELECT WHERE a0 IN [0.41, 0.41] AND a1 IN [0.43, 0.43] AND "
      "a2 IN [0.47, 0.47]");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, preloaded + 1);  // numbered above the workload
  EXPECT_DOUBLE_EQ(events[0].values[2], 0.47);

  client.close();
  server.stop();
  EXPECT_EQ(server.stats().inserts, 1u);
}

TEST(ServerTest, ParseErrorsAreRepliesNotDisconnects) {
  Server server(small_config());
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  const std::uint64_t id = client.send_query("SELECT WHERE a7 IN [0, 1]");
  const Client::Reply reply = client.read_reply();
  EXPECT_TRUE(reply.is_error);
  EXPECT_EQ(reply.request_id, id);
  EXPECT_EQ(reply.code, ErrorCode::ParseError);
  EXPECT_FALSE(reply.message.empty());

  // The connection survives and serves the corrected statement.
  EXPECT_NO_THROW(client.query("SELECT WHERE a2 IN [0, 1]"));
  client.close();
  server.stop();
  EXPECT_EQ(server.stats().parse_errors, 1u);
}

TEST(ServerTest, PerClientAdmissionLimitRejectsDeterministically) {
  ServerConfig config = small_config();
  config.backend.engine.batch_size = 32;  // epoch can't fill from one client
  config.max_inflight_per_client = 4;
  config.flush_interval_us = 1000000;  // generous: no flush mid-admission
  Server server(config);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  for (int i = 0; i < 10; ++i) client.send_query(tight_select(0.1, 0.9));

  std::size_t results = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    const Client::Reply reply = client.read_reply();
    if (reply.is_error) {
      EXPECT_EQ(reply.code, ErrorCode::TooManyInFlight);
      ++rejected;
    } else {
      ++results;
    }
  }
  EXPECT_EQ(results, 4u);
  EXPECT_EQ(rejected, 6u);
  client.close();
  server.stop();
  EXPECT_EQ(server.stats().rejected, 6u);
}

TEST(ServerTest, GlobalBackpressureRejectsWithServerBusy) {
  ServerConfig config = small_config();
  config.backend.engine.batch_size = 64;
  config.max_inflight_per_client = 64;
  config.max_pending_global = 3;
  config.flush_interval_us = 1000000;
  Server server(config);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  for (int i = 0; i < 8; ++i) client.send_query(tight_select(0.2, 0.4));
  std::size_t busy = 0, results = 0;
  for (int i = 0; i < 8; ++i) {
    const Client::Reply reply = client.read_reply();
    if (reply.is_error) {
      EXPECT_EQ(reply.code, ErrorCode::ServerBusy);
      ++busy;
    } else {
      ++results;
    }
  }
  EXPECT_EQ(results, 3u);
  EXPECT_EQ(busy, 5u);
  client.close();
  server.stop();
}

TEST(ServerTest, StopDrainsPipelinedQueries) {
  ServerConfig config = small_config();
  config.backend.engine.batch_size = 64;  // epoch would never fill...
  config.flush_interval_us = 10'000'000;  // ...and the timer never fires
  Server server(config);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i)
    ids.push_back(client.send_query(tight_select(0.3, 0.7)));
  // Admission barrier: commands are processed in order, so once the
  // metrics round-trip answers, all 10 queries are admitted — queries
  // still sitting in the socket buffer at stop() are not "admitted" and
  // the drain guarantee would not cover them.
  (void)client.subscribe_metrics();

  server.stop();  // must execute all 10 admitted queries before returning

  std::size_t answered = 0;
  for (int i = 0; i < 10; ++i) {
    const Client::Reply reply = client.read_reply();
    EXPECT_FALSE(reply.is_error);
    EXPECT_EQ(reply.request_id, ids[answered]);
    ++answered;
  }
  EXPECT_EQ(answered, 10u);
  EXPECT_THROW(client.read_reply(), std::runtime_error);  // then EOF
  EXPECT_EQ(server.stats().queries_out, 10u);
}

TEST(ServerTest, LiveMetricsSubscription) {
  Server server(small_config());
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  (void)client.query("SELECT WHERE a0 IN [0.1, 0.6]");

  const std::string json = client.subscribe_metrics();
  EXPECT_NE(json.find("\"server.connections\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"server.queries_in\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("pool.engine"), std::string::npos) << json;
  client.close();
  server.stop();
}

TEST(ServerTest, CorruptStreamGetsBadFrameErrorThenClose) {
  Server server(small_config());
  server.start();

  // Hand-rolled connection: the Client class never produces garbage, so
  // talk to the socket directly.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // A zero-length frame is a protocol violation.
  const std::uint8_t poison[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fd, poison, sizeof(poison), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(poison)));

  // The server answers with a BadFrame ERROR, then closes the connection.
  FrameDecoder decoder;
  Frame frame;
  bool got_frame = false;
  std::uint8_t buf[256];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    decoder.feed(buf, static_cast<std::size_t>(n));
    if (decoder.next(&frame)) {
      got_frame = true;
      break;
    }
  }
  ASSERT_TRUE(got_frame);
  EXPECT_EQ(frame.type, FrameType::Error);
  PayloadReader r(frame.payload);
  (void)r.u64();
  EXPECT_EQ(static_cast<ErrorCode>(r.u16()), ErrorCode::BadFrame);
  ::close(fd);

  server.stop();
  EXPECT_EQ(server.stats().parse_errors, 1u);
}

}  // namespace
}  // namespace poolnet::server
