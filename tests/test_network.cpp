#include "net/network.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "common/error.h"
#include "net/deployment.h"

namespace poolnet::net {
namespace {

Network make_line_network() {
  // Four nodes in a line, 30 m apart, radio range 40 m: each node hears
  // only its immediate neighbors.
  std::vector<Point> pts{{0, 0}, {30, 0}, {60, 0}, {90, 0}};
  return Network(pts, Rect{0, 0, 100, 10}, 40.0);
}

TEST(Network, NeighborTablesAreSymmetricAndRanged) {
  const auto net = make_line_network();
  EXPECT_EQ(net.neighbors(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(net.neighbors(1), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(net.neighbors(2), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(net.neighbors(3), (std::vector<NodeId>{2}));
  EXPECT_TRUE(net.are_neighbors(1, 2));
  EXPECT_FALSE(net.are_neighbors(0, 2));
}

TEST(Network, SymmetryHoldsOnRandomDeployments) {
  Rng rng(17);
  const Rect field{0, 0, 300, 300};
  const auto pts = deploy_uniform(200, field, rng);
  const Network net(pts, field, 40.0);
  for (NodeId u = 0; u < net.size(); ++u) {
    for (const NodeId v : net.neighbors(u)) {
      EXPECT_TRUE(net.are_neighbors(v, u)) << u << " " << v;
      EXPECT_LE(distance(net.position(u), net.position(v)), 40.0);
    }
  }
}

TEST(Network, NearestNode) {
  const auto net = make_line_network();
  EXPECT_EQ(net.nearest_node({5, 0}), 0u);
  EXPECT_EQ(net.nearest_node({46, 0}), 2u);
  EXPECT_EQ(net.nearest_node({500, 0}), 3u);
}

TEST(Network, NodesWithin) {
  const auto net = make_line_network();
  EXPECT_EQ(net.nodes_within({45, 0}, 16).size(), 2u);
  EXPECT_EQ(net.nodes_within({45, 0}, 50).size(), 4u);
}

TEST(Network, ConnectivityDetection) {
  const auto net = make_line_network();
  EXPECT_TRUE(net.is_connected());
  std::vector<Point> split{{0, 0}, {10, 0}, {500, 0}, {510, 0}};
  const Network broken(split, Rect{0, 0, 600, 10}, 40.0);
  EXPECT_FALSE(broken.is_connected());
}

TEST(Network, AverageDegreeNearDensityTarget) {
  Rng rng(23);
  const double side = field_side_for_density(900, 40.0, 20.0);
  const Rect field{0, 0, side, side};
  const auto pts = deploy_uniform(900, field, rng);
  const Network net(pts, field, 40.0);
  // Border effects pull the average a bit below 20.
  EXPECT_GT(net.average_degree(), 14.0);
  EXPECT_LT(net.average_degree(), 22.0);
}

TEST(Network, TransmitChargesLedgerAndNodes) {
  auto net = make_line_network();
  net.transmit(0, 1, MessageKind::Insert, 256);
  net.transmit(1, 2, MessageKind::Reply, 256);
  EXPECT_EQ(net.traffic().total, 2u);
  EXPECT_EQ(net.traffic().of(MessageKind::Insert), 1u);
  EXPECT_EQ(net.traffic().of(MessageKind::Reply), 1u);
  EXPECT_EQ(net.node(0).tx_count, 1u);
  EXPECT_EQ(net.node(1).rx_count, 1u);
  EXPECT_EQ(net.node(1).tx_count, 1u);
  EXPECT_GT(net.node(0).energy_spent_j, 0.0);
  EXPECT_GT(net.traffic().energy_j, 0.0);
}

TEST(Network, SelfTransmitIsFree) {
  auto net = make_line_network();
  net.transmit(2, 2, MessageKind::Query, 128);
  EXPECT_EQ(net.traffic().total, 0u);
}

TEST(Network, TransmitBetweenNonNeighborsAsserts) {
  auto net = make_line_network();
  EXPECT_THROW(net.transmit(0, 3, MessageKind::Query, 64), AssertionError);
}

TEST(Network, TransmitPathChargesEveryHop) {
  auto net = make_line_network();
  net.transmit_path({0, 1, 2, 3}, MessageKind::Query, 64);
  EXPECT_EQ(net.traffic().total, 3u);
  net.transmit_path({2}, MessageKind::Query, 64);  // single node: no hop
  EXPECT_EQ(net.traffic().total, 3u);
}

TEST(Network, ResetAccountingClearsEverything) {
  auto net = make_line_network();
  net.transmit(0, 1, MessageKind::Insert, 256);
  net.node_mut(1).stored_events = 5;
  net.reset_all_accounting();
  EXPECT_EQ(net.traffic().total, 0u);
  EXPECT_EQ(net.node(0).tx_count, 0u);
  EXPECT_EQ(net.node(1).stored_events, 0u);
  EXPECT_DOUBLE_EQ(net.node(0).energy_spent_j, 0.0);
}

TEST(Network, TallySubtractionGivesDeltas) {
  auto net = make_line_network();
  net.transmit(0, 1, MessageKind::Query, 64);
  const auto before = net.traffic();
  net.transmit(1, 2, MessageKind::Reply, 64);
  net.transmit(2, 3, MessageKind::Reply, 64);
  const auto delta = net.traffic() - before;
  EXPECT_EQ(delta.total, 2u);
  EXPECT_EQ(delta.of(MessageKind::Reply), 2u);
  EXPECT_EQ(delta.of(MessageKind::Query), 0u);
}

TEST(Network, RejectsDegenerateConfigs) {
  std::vector<Point> pts{{0, 0}};
  EXPECT_THROW(Network({}, Rect{0, 0, 10, 10}, 40.0), ConfigError);
  EXPECT_THROW(Network(pts, Rect{0, 0, 10, 10}, 0.0), ConfigError);
}

TEST(MessageSizes, BitFormulas) {
  const MessageSizes s;
  EXPECT_EQ(s.event_bits(3), s.header_bits + 3 * s.attr_bits);
  EXPECT_EQ(s.query_bits(3), s.header_bits + 6 * s.query_bound_bits);
  EXPECT_EQ(s.reply_bits(3, 4), s.header_bits + 12 * s.attr_bits);
}

}  // namespace
}  // namespace poolnet::net
