#include "sim/energy.h"

#include <gtest/gtest.h>

namespace poolnet::sim {
namespace {

TEST(EnergyModel, TxGrowsQuadraticallyWithDistance) {
  const EnergyModel m;
  const auto near = m.tx_cost(1000, 10.0);
  const auto far = m.tx_cost(1000, 20.0);
  // Subtract the electronics term; the amplifier term must scale 4x.
  const double elec = m.elec_j_per_bit * 1000;
  EXPECT_NEAR((far - elec) / (near - elec), 4.0, 1e-9);
}

TEST(EnergyModel, TxLinearInBits) {
  const EnergyModel m;
  EXPECT_NEAR(m.tx_cost(2000, 40.0), 2.0 * m.tx_cost(1000, 40.0), 1e-15);
}

TEST(EnergyModel, RxIndependentOfDistance) {
  const EnergyModel m;
  EXPECT_DOUBLE_EQ(m.rx_cost(1000), m.elec_j_per_bit * 1000);
}

TEST(EnergyModel, TxAlwaysCostsMoreThanRx) {
  const EnergyModel m;
  EXPECT_GT(m.tx_cost(100, 40.0), m.rx_cost(100));
}

TEST(EnergyModel, ZeroBitsCostNothing) {
  const EnergyModel m;
  EXPECT_DOUBLE_EQ(m.tx_cost(0, 40.0), 0.0);
  EXPECT_DOUBLE_EQ(m.rx_cost(0), 0.0);
}

}  // namespace
}  // namespace poolnet::sim
