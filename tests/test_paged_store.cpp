// Serial-equivalence and pin-discipline tests for the paged out-of-core
// store (DESIGN.md §13): PagedStore must answer queries, aggregates and
// expiry byte-identically to BruteForceStore across page sizes down to
// one record per page and pools down to the 2-frame floor — on both the
// in-memory and the file-backed PageFile.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/error.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "storage/brute_force_store.h"
#include "storage/paged/buffer_manager.h"
#include "storage/paged/page.h"
#include "storage/paged/paged_store.h"
#include "storage/store_config.h"

namespace poolnet::storage {
namespace {

using Backing = PagedStoreOptions::Backing;

// ---------------------------------------------------------------- page codec

TEST(Page, RecordCodecRoundTrips) {
  Event e;
  e.id = 0x1122334455667788ull;
  e.source = 42;
  e.detected_at = 1234.5;
  e.values = {0.25, 0.5, 0.75};

  std::vector<std::uint8_t> buf(event_record_bytes(3));
  encode_event(buf.data(), e);
  const Event back = decode_event(buf.data(), 3);
  EXPECT_EQ(back.id, e.id);
  EXPECT_EQ(back.source, e.source);
  EXPECT_EQ(back.detected_at, e.detected_at);
  ASSERT_EQ(back.values.size(), 3u);
  for (std::size_t d = 0; d < 3; ++d)
    EXPECT_EQ(back.values[d], e.values[d]);
}

TEST(Page, CapacityAccountsForHeader) {
  // 44-byte records (k=3): a 52-byte page holds exactly one, 4096 holds 92.
  EXPECT_EQ(event_record_bytes(3), 44u);
  EXPECT_EQ(page_capacity(52, 3), 1u);
  EXPECT_EQ(page_capacity(4096, 3), (4096u - kPageHeaderBytes) / 44u);
}

// ------------------------------------------------------------ buffer manager

TEST(BufferManager, RejectsPoolBelowTwoFrames) {
  MemPageFile file(256);
  EXPECT_THROW(BufferManager(file, 1), ConfigError);
  EXPECT_THROW(BufferManager(file, 0), ConfigError);
}

TEST(BufferManager, HitsMissesAndEvictionsAreCounted) {
  MemPageFile file(64);
  BufferManager mgr(file, 2);
  const PageId a = file.allocate();
  const PageId b = file.allocate();
  const PageId c = file.allocate();

  mgr.fetch(a).release();  // miss
  mgr.fetch(a).release();  // hit
  mgr.fetch(b).release();  // miss
  mgr.fetch(c).release();  // miss + eviction (pool of 2 is full)
  const PagerStats s = mgr.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_GE(s.evictions, 1u);
  EXPECT_EQ(s.pool_pages, 2u);
  EXPECT_EQ(s.pinned, 0u);
  EXPECT_GE(s.pinned_high_water, 1u);
}

TEST(BufferManager, DirtyVictimIsWrittenBackBeforeReuse) {
  MemPageFile file(64);
  BufferManager mgr(file, 2);
  const PageId a = file.allocate();
  const PageId b = file.allocate();
  const PageId c = file.allocate();
  {
    BufferManager::Pin pin = mgr.fetch(a);
    pin.data()[10] = 0xAB;
    pin.mark_dirty();
  }
  // Force `a` out of the pool, then read it back from the file.
  mgr.fetch(b).release();
  mgr.fetch(c).release();
  EXPECT_GE(mgr.stats().writebacks, 1u);
  BufferManager::Pin again = mgr.fetch(a);
  EXPECT_EQ(again.data()[10], 0xAB);
}

TEST(BufferManager, PinnedFramesAreNeverEvicted) {
  MemPageFile file(64);
  BufferManager mgr(file, 2);
  const PageId a = file.allocate();
  const PageId b = file.allocate();
  const PageId c = file.allocate();

  BufferManager::Pin pa = mgr.fetch(a);
  pa.data()[0] = 0x5A;
  {
    // The second frame churns while `a` stays pinned and intact.
    mgr.fetch(b).release();
    mgr.fetch(c).release();
    mgr.fetch(b).release();
  }
  EXPECT_EQ(pa.data()[0], 0x5A);

  // With both frames pinned, a third fetch has no victim: the pin
  // discipline (at most two live pins) is enforced by assertion.
  BufferManager::Pin pb = mgr.fetch(b);
  EXPECT_THROW(mgr.fetch(c), AssertionError);
}

TEST(BufferManager, PinMoveTransfersOwnershipAndReleaseIsIdempotent) {
  MemPageFile file(64);
  BufferManager mgr(file, 2);
  const PageId a = file.allocate();

  BufferManager::Pin p1 = mgr.fetch(a);
  EXPECT_EQ(mgr.stats().pinned, 1u);
  BufferManager::Pin p2 = std::move(p1);
  EXPECT_FALSE(p1.valid());
  EXPECT_TRUE(p2.valid());
  EXPECT_EQ(mgr.stats().pinned, 1u);  // a move is not a second pin
  p2.release();
  p2.release();  // idempotent
  EXPECT_EQ(mgr.stats().pinned, 0u);
}

TEST(BufferManager, DiscardDropsResidencyWithoutWriteback) {
  MemPageFile file(64);
  BufferManager mgr(file, 4);
  const PageId a = file.allocate();
  {
    BufferManager::Pin pin = mgr.fetch(a);
    pin.data()[0] = 0x77;
    pin.mark_dirty();
  }
  mgr.discard(a);
  EXPECT_EQ(mgr.stats().writebacks, 0u);
  // The file copy never saw the dirty byte.
  BufferManager::Pin again = mgr.fetch(a);
  EXPECT_EQ(again.data()[0], 0x00);
}

TEST(BufferManager, MetricsRegisterUnderPrefix) {
  MemPageFile file(64);
  obs::MetricsRegistry registry;
  BufferManager mgr(file, 2, &registry, "store.pager");
  const PageId a = file.allocate();
  mgr.fetch(a).release();
  mgr.fetch(a).release();
  const obs::Snapshot snap = registry.scrape();
  EXPECT_EQ(snap.counters.at("store.pager.hits"), 1u);
  EXPECT_EQ(snap.counters.at("store.pager.misses"), 1u);
  EXPECT_EQ(snap.counters.at("store.pager.evictions"), 0u);
  EXPECT_EQ(snap.counters.at("store.pager.writebacks"), 0u);
  EXPECT_EQ(snap.gauges.at("store.pager.pinned_high_water"), 1.0);
}

// ------------------------------------------------- flat/paged equivalence

/// Expects full byte-equivalence: same events, same order, same floats.
void expect_same_events(const std::vector<Event>& flat,
                        const std::vector<Event>& paged,
                        const std::string& label) {
  ASSERT_EQ(flat.size(), paged.size()) << label;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].id, paged[i].id) << label << " event " << i;
    EXPECT_EQ(flat[i].source, paged[i].source) << label;
    EXPECT_EQ(flat[i].detected_at, paged[i].detected_at) << label;
    ASSERT_EQ(flat[i].values.size(), paged[i].values.size()) << label;
    for (std::size_t d = 0; d < flat[i].values.size(); ++d)
      EXPECT_EQ(flat[i].values[d], paged[i].values[d]) << label;
  }
}

struct EquivCase {
  std::size_t page_bytes;
  std::size_t pool_pages;
  Backing backing;
};

/// Inserts `n` generated events into both stores (with expiry interleaved
/// when `expire_every` > 0), then compares queries and aggregates.
void run_equivalence(const EquivCase& c, std::uint64_t seed, std::size_t n,
                     std::uint64_t expire_every) {
  const std::string label =
      "page=" + std::to_string(c.page_bytes) +
      " pool=" + std::to_string(c.pool_pages) +
      (c.backing == Backing::File ? " file" : " mem") +
      " seed=" + std::to_string(seed);

  BruteForceStore flat(3);
  PagedStoreOptions po;
  po.page_bytes = c.page_bytes;
  po.pool_pages = c.pool_pages;
  po.backing = c.backing;
  PagedStore paged(3, po);

  query::EventGenerator gen({.dims = 3}, seed);
  std::uint64_t flat_expired = 0;
  std::uint64_t paged_expired = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    Event e = gen.next(static_cast<net::NodeId>(i % 17));
    e.detected_at = static_cast<double>(i);
    flat.insert(e.source, e);
    paged.insert(e.source, e);
    if (expire_every > 0 && (i + 1) % expire_every == 0) {
      const double cutoff = static_cast<double>(i) / 2.0;
      flat_expired += flat.expire_before(cutoff);
      paged_expired += paged.expire_before(cutoff);
      ASSERT_EQ(flat_expired, paged_expired) << label << " at i=" << i;
      ASSERT_EQ(flat.stored_count(), paged.stored_count()) << label;
    }
  }
  // Conservation: nothing lost, nothing double-counted.
  EXPECT_EQ(paged.stored_count() + paged_expired, n) << label;

  query::QueryGenerator qgen({.dims = 3}, seed + 1000);
  for (int q = 0; q < 24; ++q) {
    const RangeQuery range = qgen.exact_range();
    const auto f = flat.query(0, range);
    const auto p = paged.query(0, range);
    expect_same_events(f.events, p.events, label + " q" + std::to_string(q));

    // Aggregates accumulate in the same (id) order -> bit-equal doubles.
    for (const AggregateKind kind :
         {AggregateKind::Count, AggregateKind::Sum, AggregateKind::Min,
          AggregateKind::Max, AggregateKind::Average}) {
      const auto fa = flat.aggregate(0, range, kind, 1);
      const auto pa = paged.aggregate(0, range, kind, 1);
      EXPECT_EQ(fa.result.valid, pa.result.valid) << label;
      EXPECT_EQ(fa.result.value, pa.result.value)
          << label << " kind=" << static_cast<int>(kind);
    }
  }
}

TEST(PagedEquivalence, DefaultKnobs) {
  run_equivalence({4096, 64, Backing::Mem}, 11, 800, 0);
}

TEST(PagedEquivalence, TinyPagesOneRecordEach) {
  // 52-byte pages hold exactly one k=3 record: every structural edge
  // (page links, chain walks, compaction) fires on every event.
  run_equivalence({52, 8, Backing::Mem}, 12, 300, 0);
}

TEST(PagedEquivalence, MinimumPoolOfTwoFrames) {
  // Two frames force an eviction on nearly every access; any pin leak or
  // stale-frame bug surfaces as divergence or an assertion.
  run_equivalence({256, 2, Backing::Mem}, 13, 500, 0);
}

TEST(PagedEquivalence, FileBackedPool) {
  run_equivalence({512, 4, Backing::File}, 14, 500, 0);
}

TEST(PagedEquivalence, ExpiryChurnMatchesFlatStore) {
  for (const std::uint64_t seed : {21u, 22u, 23u})
    run_equivalence({256, 4, Backing::Mem}, seed, 600, 100);
}

TEST(PagedEquivalence, ExpiryChurnTinyPagesMinPool) {
  run_equivalence({52, 2, Backing::Mem}, 31, 300, 50);
}

TEST(PagedEquivalence, ExpiryChurnFileBacked) {
  run_equivalence({128, 2, Backing::File}, 41, 400, 80);
}

TEST(PagedStoreTest, RejectsBadConfiguration) {
  PagedStoreOptions po;
  po.page_bytes = 16;  // header + no room for even one record
  EXPECT_THROW(PagedStore(3, po), ConfigError);
  PagedStoreOptions small_pool;
  small_pool.pool_pages = 1;
  EXPECT_THROW(PagedStore(3, small_pool), ConfigError);
  EXPECT_THROW(PagedStore(0, PagedStoreOptions{}), ConfigError);
}

TEST(PagedStoreTest, ExpiredPagesAreReusedNotLeaked) {
  PagedStoreOptions po;
  po.page_bytes = 52;  // one record per page: expiry frees pages fast
  po.pool_pages = 4;
  PagedStore store(3, po);
  query::EventGenerator gen({.dims = 3}, 5);
  for (std::uint64_t round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 50; ++i) {
      Event e = gen.next(0);
      e.detected_at = static_cast<double>(round * 50 + i);
      store.insert(0, e);
    }
    store.expire_before(static_cast<double>((round + 1) * 50));
  }
  EXPECT_EQ(store.stored_count(), 0u);
  // Steady-state churn must recycle the free list: the file stays near
  // one round's worth of pages, not ten rounds'.
  EXPECT_LE(store.page_count(), 120u);
  EXPECT_EQ(store.free_pages(), store.page_count());  // all pages free
}

TEST(PagedStoreTest, PagerCountersReachTheSharedRegistry) {
  obs::MetricsRegistry registry;
  PagedStoreOptions po;
  po.pool_pages = 2;
  po.page_bytes = 128;
  PagedStore store(3, po, &registry);
  query::EventGenerator gen({.dims = 3}, 6);
  for (int i = 0; i < 200; ++i) store.insert(0, gen.next(0));
  store.matching(RangeQuery({{0, 1}, {0, 1}, {0, 1}}));
  const obs::Snapshot snap = registry.scrape();
  EXPECT_GT(snap.counters.at("store.pager.misses"), 0u);
  EXPECT_GT(snap.counters.at("store.pager.evictions"), 0u);
  EXPECT_GT(snap.counters.at("store.pager.writebacks"), 0u);
  ASSERT_TRUE(snap.gauges.count("store.pager.pinned_high_water"));
  EXPECT_LE(snap.gauges.at("store.pager.pinned_high_water"), 2.0);
}

// ------------------------------------------------------------- store config

TEST(StoreConfig, ParsesSpecsAndRoundTrips) {
  StoreConfig config;
  std::string error;
  ASSERT_TRUE(parse_store_spec("flat", &config, &error)) << error;
  EXPECT_EQ(config.kind, StoreKind::Flat);

  ASSERT_TRUE(parse_store_spec("paged", &config, &error)) << error;
  EXPECT_EQ(config.kind, StoreKind::Paged);
  EXPECT_EQ(config.paged.pool_pages, 256u);
  EXPECT_EQ(config.paged.page_bytes, 4096u);
  EXPECT_EQ(config.paged.backing, Backing::Mem);

  ASSERT_TRUE(parse_store_spec("paged:64:8", &config, &error)) << error;
  EXPECT_EQ(config.paged.pool_pages, 64u);
  EXPECT_EQ(config.paged.page_bytes, 8u * 1024u);

  ASSERT_TRUE(parse_store_spec("paged:16:4:file", &config, &error)) << error;
  EXPECT_EQ(config.paged.backing, Backing::File);

  // to_spec must parse back to the same configuration.
  StoreConfig back;
  ASSERT_TRUE(parse_store_spec(to_spec(config), &back, &error)) << error;
  EXPECT_EQ(back.kind, config.kind);
  EXPECT_EQ(back.paged.pool_pages, config.paged.pool_pages);
  EXPECT_EQ(back.paged.page_bytes, config.paged.page_bytes);
  EXPECT_EQ(back.paged.backing, config.paged.backing);
}

TEST(StoreConfig, RejectsMalformedSpecsAndLeavesConfigUntouched) {
  StoreConfig config;
  std::string error;
  ASSERT_TRUE(parse_store_spec("paged:64:8", &config, &error));
  for (const char* bad : {"", "vinyl", "paged:1:4", "paged:64:0",
                          "paged:64:abc", "paged:64:4:tape",
                          "paged:64:4:mem:extra"}) {
    error.clear();
    EXPECT_FALSE(parse_store_spec(bad, &config, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
    EXPECT_EQ(config.paged.pool_pages, 64u) << bad;  // untouched on failure
  }
}

TEST(StoreConfig, FactoryBuildsTheSelectedStore) {
  StoreConfig config;
  std::string error;
  ASSERT_TRUE(parse_store_spec("flat", &config, &error));
  auto flat = make_central_store(3, config, nullptr, nullptr, net::kNoNode);
  ASSERT_NE(flat, nullptr);
  EXPECT_EQ(flat->describe().find("paged"), std::string::npos);

  ASSERT_TRUE(parse_store_spec("paged:8:1", &config, &error));
  auto paged = make_central_store(3, config, nullptr, nullptr, net::kNoNode);
  ASSERT_NE(paged, nullptr);
  EXPECT_NE(paged->describe().find("paged"), std::string::npos);
  EXPECT_EQ(flat->name(), paged->name());  // both are the central system
}

}  // namespace
}  // namespace poolnet::storage
