#include "core/pool_layout.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "net/deployment.h"

namespace poolnet::core {
namespace {

using net::Network;

Network make_net(double field_side, std::uint64_t seed = 1) {
  Rng rng(seed);
  const Rect field{0, 0, field_side, field_side};
  auto pts = net::deploy_uniform(100, field, rng);
  return Network(std::move(pts), field, 40.0);
}

TEST(PoolLayout, ExplicitLayoutValidatesFit) {
  // 20x20 grid (100 m field, 5 m cells), pools of side 5.
  EXPECT_NO_THROW(PoolLayout({{0, 0}, {15, 15}}, 5, 20, 20));
  EXPECT_THROW(PoolLayout({{16, 0}}, 5, 20, 20), poolnet::ConfigError);
  EXPECT_THROW(PoolLayout({{0, 16}}, 5, 20, 20), poolnet::ConfigError);
  EXPECT_THROW(PoolLayout({{-1, 0}}, 5, 20, 20), poolnet::ConfigError);
  EXPECT_THROW(PoolLayout({}, 5, 20, 20), poolnet::ConfigError);
  EXPECT_THROW(PoolLayout({{0, 0}}, 0, 20, 20), poolnet::ConfigError);
}

TEST(PoolLayout, CellAddsOffsetToPivot) {
  const PoolLayout layout({{1, 2}, {2, 10}, {7, 3}}, 5, 20, 20);
  // The paper's Figure 2/4 coordinates: C(2,5) is offset (1,3) of P1.
  EXPECT_EQ(layout.cell(0, {1, 3}), (CellCoord{2, 5}));
  EXPECT_EQ(layout.cell(1, {1, 2}), (CellCoord{3, 12}));
  EXPECT_EQ(layout.cell(2, {4, 0}), (CellCoord{11, 3}));
  EXPECT_EQ(layout.pool_count(), 3u);
  EXPECT_EQ(layout.side(), 5u);
}

TEST(PoolLayout, OffsetOutOfRangeAsserts) {
  const PoolLayout layout({{0, 0}}, 5, 20, 20);
  EXPECT_THROW(layout.cell(0, {5, 0}), poolnet::AssertionError);
  EXPECT_THROW(layout.pivot(1), poolnet::AssertionError);
}

TEST(PoolLayout, RandomLayoutFitsGrid) {
  const auto network = make_net(400.0);
  const Grid grid(network, 5.0);  // 80x80 cells
  Rng rng(5);
  const auto layout = PoolLayout::random(grid, 3, 10, rng);
  EXPECT_EQ(layout.pool_count(), 3u);
  for (std::size_t p = 0; p < 3; ++p) {
    const auto pc = layout.pivot(p);
    EXPECT_GE(pc.x, 0);
    EXPECT_GE(pc.y, 0);
    EXPECT_LE(pc.x + 10, grid.cols());
    EXPECT_LE(pc.y + 10, grid.rows());
  }
}

TEST(PoolLayout, RandomLayoutPrefersDisjointPools) {
  const auto network = make_net(400.0);
  const Grid grid(network, 5.0);
  Rng rng(6);
  const auto layout = PoolLayout::random(grid, 3, 10, rng);
  EXPECT_FALSE(layout.has_overlap());
}

TEST(PoolLayout, RandomLayoutDeterministicPerSeed) {
  const auto network = make_net(400.0);
  const Grid grid(network, 5.0);
  Rng a(9), b(9);
  const auto la = PoolLayout::random(grid, 3, 10, a);
  const auto lb = PoolLayout::random(grid, 3, 10, b);
  for (std::size_t p = 0; p < 3; ++p) EXPECT_EQ(la.pivot(p), lb.pivot(p));
}

TEST(PoolLayout, RandomLayoutRejectsOversizedPool) {
  const auto network = make_net(40.0);  // 8x8 grid
  const Grid grid(network, 5.0);
  Rng rng(7);
  EXPECT_THROW(PoolLayout::random(grid, 3, 10, rng), poolnet::ConfigError);
}

TEST(PoolLayout, CrowdedGridFallsBackToOverlap) {
  // 8x8 grid, three 5-cell pools cannot be pairwise disjoint... they can
  // be tight; use pools of 7 cells which certainly overlap.
  const auto network = make_net(40.0);
  const Grid grid(network, 5.0);
  Rng rng(8);
  const auto layout = PoolLayout::random(grid, 3, 7, rng);
  EXPECT_EQ(layout.pool_count(), 3u);
  EXPECT_TRUE(layout.has_overlap());
}

TEST(PoolLayout, HasOverlapDetection) {
  EXPECT_TRUE(PoolLayout({{0, 0}, {4, 4}}, 5, 20, 20).has_overlap());
  EXPECT_FALSE(PoolLayout({{0, 0}, {5, 5}}, 5, 20, 20).has_overlap());
  EXPECT_FALSE(PoolLayout({{0, 0}, {5, 0}}, 5, 20, 20).has_overlap());
}

}  // namespace
}  // namespace poolnet::core
