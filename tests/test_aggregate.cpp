// Aggregate queries (Section 3.2.3): algebra unit tests plus end-to-end
// agreement of Pool's and DIM's in-network aggregation with the oracle.
#include "storage/aggregate.h"

#include <gtest/gtest.h>

#include "bench_support/experiment.h"
#include "bench_support/testbed.h"
#include "common/error.h"
#include "query/query_gen.h"

namespace poolnet::storage {
namespace {

TEST(PartialAggregate, EmptyState) {
  const PartialAggregate p;
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.finalize(AggregateKind::Min).valid);
  EXPECT_FALSE(p.finalize(AggregateKind::Average).valid);
  const auto count = p.finalize(AggregateKind::Count);
  EXPECT_TRUE(count.valid);
  EXPECT_DOUBLE_EQ(count.value, 0.0);
  const auto sum = p.finalize(AggregateKind::Sum);
  EXPECT_TRUE(sum.valid);
  EXPECT_DOUBLE_EQ(sum.value, 0.0);
}

TEST(PartialAggregate, AllKindsOnKnownValues) {
  PartialAggregate p;
  for (const double v : {0.2, 0.8, 0.5, 0.1}) p.add(v);
  EXPECT_DOUBLE_EQ(p.finalize(AggregateKind::Count).value, 4.0);
  EXPECT_DOUBLE_EQ(p.finalize(AggregateKind::Sum).value, 1.6);
  EXPECT_DOUBLE_EQ(p.finalize(AggregateKind::Min).value, 0.1);
  EXPECT_DOUBLE_EQ(p.finalize(AggregateKind::Max).value, 0.8);
  EXPECT_DOUBLE_EQ(p.finalize(AggregateKind::Average).value, 0.4);
  EXPECT_EQ(p.finalize(AggregateKind::Average).count, 4u);
}

TEST(PartialAggregate, MergeEqualsCombinedStream) {
  Rng rng(5);
  PartialAggregate whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform();
    whole.add(v);
    (i % 3 ? a : b).add(v);
  }
  a.merge(b);
  for (const auto kind : {AggregateKind::Count, AggregateKind::Sum,
                          AggregateKind::Min, AggregateKind::Max,
                          AggregateKind::Average}) {
    EXPECT_NEAR(a.finalize(kind).value, whole.finalize(kind).value, 1e-9);
  }
}

TEST(PartialAggregate, MergeWithEmptyIsIdentity) {
  PartialAggregate a, empty;
  a.add(0.5);
  a.merge(empty);
  EXPECT_EQ(a.count, 1u);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.finalize(AggregateKind::Max).value, 0.5);
}

TEST(AggregateKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(AggregateKind::Count), "COUNT");
  EXPECT_STREQ(to_string(AggregateKind::Average), "AVG");
}

class AggregateEndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregateEndToEnd, PoolAndDimAgreeWithOracle) {
  benchsup::TestbedConfig config;
  config.nodes = 250;
  config.seed = GetParam();
  benchsup::Testbed tb(config);
  tb.insert_workload();

  query::QueryGenerator qgen({.dims = 3}, GetParam() * 7 + 3);
  Rng sink_rng(GetParam() * 11 + 5);
  for (int i = 0; i < 10; ++i) {
    const auto q = i % 2 ? qgen.partial_range(1) : qgen.exact_range();
    const auto sink = tb.random_node(sink_rng);
    for (std::size_t dim = 0; dim < 3; ++dim) {
      for (const auto kind : {AggregateKind::Count, AggregateKind::Sum,
                              AggregateKind::Min, AggregateKind::Max,
                              AggregateKind::Average}) {
        const auto want = tb.oracle().aggregate_oracle(q, kind, dim);
        const auto pool_r = tb.pool().aggregate(sink, q, kind, dim);
        const auto dim_r = tb.dim().aggregate(sink, q, kind, dim);
        EXPECT_EQ(pool_r.result.valid, want.valid);
        EXPECT_EQ(dim_r.result.valid, want.valid);
        EXPECT_EQ(pool_r.result.count, want.count);
        EXPECT_EQ(dim_r.result.count, want.count);
        EXPECT_NEAR(pool_r.result.value, want.value, 1e-9);
        EXPECT_NEAR(dim_r.result.value, want.value, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateEndToEnd,
                         ::testing::Values(1, 2, 3));

TEST(AggregateCosts, CheaperThanFullRetrievalOnLargeResults) {
  benchsup::TestbedConfig config;
  config.nodes = 400;
  config.seed = 9;
  benchsup::Testbed tb(config);
  tb.insert_workload();

  // A broad query with many qualifying events, under realistic packing
  // where reply volume matters.
  const RangeQuery broad({{0.0, 0.9}, {0.0, 0.9}, {0.0, 0.9}});
  // Rebuild with finite packing to expose reply-volume savings.
  benchsup::TestbedConfig packed = config;
  packed.sizes.events_per_message = 4;
  benchsup::Testbed tb2(packed);
  tb2.insert_workload();
  const auto full = tb2.pool().query(0, broad);
  const auto agg =
      tb2.pool().aggregate(0, broad, AggregateKind::Average, 0);
  ASSERT_GT(full.events.size(), 100u);
  EXPECT_LT(agg.reply_messages, full.reply_messages);
  EXPECT_LT(agg.messages, full.messages);
  (void)tb;
}

TEST(AggregateCosts, PoolSplitterMergeBeatsDimDirectReplies) {
  // Pool sends one partial per involved pool to the sink; DIM sends one
  // partial per answering zone owner. On partial-match queries the zone
  // count dwarfs the pool count.
  benchsup::TestbedConfig config;
  config.nodes = 500;
  config.seed = 10;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  query::QueryGenerator qgen({.dims = 3}, 11);
  std::uint64_t pool_total = 0, dim_total = 0;
  Rng sink_rng(12);
  for (int i = 0; i < 20; ++i) {
    const auto q = qgen.partial_range(1);
    const auto sink = tb.random_node(sink_rng);
    pool_total += tb.pool().aggregate(sink, q, AggregateKind::Count, 0).messages;
    dim_total += tb.dim().aggregate(sink, q, AggregateKind::Count, 0).messages;
  }
  EXPECT_LT(pool_total, dim_total);
}

TEST(AggregateCosts, BreakdownConsistent) {
  benchsup::TestbedConfig config;
  config.nodes = 200;
  config.seed = 13;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  const RangeQuery q({{0.1, 0.6}, {0.1, 0.6}, {0.1, 0.6}});
  for (auto* system :
       {static_cast<DcsSystem*>(&tb.pool()), static_cast<DcsSystem*>(&tb.dim())}) {
    const auto r = system->aggregate(3, q, AggregateKind::Sum, 1);
    EXPECT_EQ(r.messages, r.query_messages + r.reply_messages)
        << system->name();
  }
}

TEST(Aggregate, RejectsBadDimension) {
  benchsup::TestbedConfig config;
  config.nodes = 150;
  config.seed = 14;
  benchsup::Testbed tb(config);
  const RangeQuery q({{0, 1}, {0, 1}, {0, 1}});
  EXPECT_THROW(tb.pool().aggregate(0, q, AggregateKind::Sum, 3),
               poolnet::ConfigError);
  EXPECT_THROW(tb.dim().aggregate(0, q, AggregateKind::Sum, 5),
               poolnet::ConfigError);
}

TEST(Aggregate, TiedEventsCountedOnce) {
  // Section 4.1: single-copy storage keeps SUM/COUNT/AVG duplicate-free
  // even when the greatest value ties across dimensions.
  benchsup::TestbedConfig config;
  config.nodes = 150;
  config.seed = 15;
  benchsup::Testbed tb(config);
  Event e;
  e.id = 1;
  e.source = 0;
  e.values = {0.4, 0.4, 0.4};  // three-way tie
  tb.pool().insert(0, e);
  const RangeQuery q({{0.3, 0.5}, {0.3, 0.5}, {0.3, 0.5}});
  const auto r = tb.pool().aggregate(0, q, AggregateKind::Count, 0);
  EXPECT_DOUBLE_EQ(r.result.value, 1.0);
}

}  // namespace
}  // namespace poolnet::storage
