#include "storage/range_query.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace poolnet::storage {
namespace {

Event make_event(std::initializer_list<double> vals) {
  Event e;
  static std::uint64_t next_id = 1;
  e.id = next_id++;
  e.source = 0;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

TEST(RangeQuery, ExactMatchRangeClassification) {
  const RangeQuery q({{0.2, 0.3}, {0.25, 0.35}, {0.21, 0.24}});
  EXPECT_EQ(q.type(), QueryType::ExactMatchRange);
  EXPECT_EQ(q.dims(), 3u);
  EXPECT_EQ(q.partial_count(), 0u);
}

TEST(RangeQuery, ExactMatchPointClassification) {
  const RangeQuery q({{0.5, 0.5}, {0.7, 0.7}});
  EXPECT_EQ(q.type(), QueryType::ExactMatchPoint);
}

TEST(RangeQuery, PartialMatchRewritesToFullRange) {
  // The paper's <*, *, [0.8, 0.84]> becomes <[0,1], [0,1], [0.8,0.84]>.
  RangeQuery::Bounds b{{0, 0}, {0, 0}, {0.8, 0.84}};
  FixedVec<bool, kMaxDims> spec{false, false, true};
  const RangeQuery q(b, spec);
  EXPECT_EQ(q.type(), QueryType::PartialMatchRange);
  EXPECT_EQ(q.bound(0), (ClosedInterval{0.0, 1.0}));
  EXPECT_EQ(q.bound(1), (ClosedInterval{0.0, 1.0}));
  EXPECT_EQ(q.bound(2), (ClosedInterval{0.8, 0.84}));
  EXPECT_EQ(q.partial_count(), 2u);
  EXPECT_FALSE(q.specified(0));
  EXPECT_TRUE(q.specified(2));
}

TEST(RangeQuery, PartialMatchPointClassification) {
  RangeQuery::Bounds b{{0.5, 0.5}, {0, 0}};
  FixedVec<bool, kMaxDims> spec{true, false};
  const RangeQuery q(b, spec);
  EXPECT_EQ(q.type(), QueryType::PartialMatchPoint);
}

TEST(RangeQuery, MatchesIsClosedOnBothEnds) {
  const RangeQuery q({{0.2, 0.4}, {0.0, 1.0}});
  EXPECT_TRUE(q.matches(make_event({0.2, 0.5})));
  EXPECT_TRUE(q.matches(make_event({0.4, 0.0})));
  EXPECT_FALSE(q.matches(make_event({0.41, 0.5})));
  EXPECT_FALSE(q.matches(make_event({0.19, 0.5})));
}

TEST(RangeQuery, MatchesRequiresAllDimensions) {
  const RangeQuery q({{0.2, 0.4}, {0.6, 0.8}, {0.0, 0.1}});
  EXPECT_TRUE(q.matches(make_event({0.3, 0.7, 0.05})));
  EXPECT_FALSE(q.matches(make_event({0.3, 0.7, 0.2})));
  EXPECT_FALSE(q.matches(make_event({0.3, 0.7})));  // dimensionality mismatch
}

TEST(RangeQuery, UnspecifiedDimensionAlwaysMatches) {
  RangeQuery::Bounds b{{0, 0}, {0.3, 0.5}};
  FixedVec<bool, kMaxDims> spec{false, true};
  const RangeQuery q(b, spec);
  EXPECT_TRUE(q.matches(make_event({0.99, 0.4})));
  EXPECT_TRUE(q.matches(make_event({0.0, 0.4})));
  EXPECT_FALSE(q.matches(make_event({0.5, 0.6})));
}

TEST(RangeQuery, VolumeIsProductOfLengths) {
  const RangeQuery q({{0.0, 0.5}, {0.25, 0.75}});
  EXPECT_DOUBLE_EQ(q.volume(), 0.25);
}

TEST(RangeQuery, RejectsInvalidBounds) {
  EXPECT_THROW(RangeQuery({{0.5, 0.2}}), poolnet::ConfigError);     // reversed
  EXPECT_THROW(RangeQuery({{-0.1, 0.2}}), poolnet::ConfigError);    // below 0
  EXPECT_THROW(RangeQuery({{0.5, 1.2}}), poolnet::ConfigError);     // above 1
  EXPECT_THROW(RangeQuery(RangeQuery::Bounds{}), poolnet::ConfigError);
}

TEST(RangeQuery, RejectsMismatchedMask) {
  RangeQuery::Bounds b{{0.1, 0.2}, {0.1, 0.2}};
  FixedVec<bool, kMaxDims> spec{true};
  EXPECT_THROW(RangeQuery(b, spec), poolnet::ConfigError);
}

TEST(RangeQuery, StreamFormatShowsDontCares) {
  RangeQuery::Bounds b{{0, 0}, {0.8, 0.84}};
  FixedVec<bool, kMaxDims> spec{false, true};
  std::ostringstream oss;
  oss << RangeQuery(b, spec);
  EXPECT_EQ(oss.str(), "<*, [0.8, 0.84]>");
}

TEST(QueryTypeNames, AllDistinct) {
  EXPECT_STRNE(to_string(QueryType::ExactMatchPoint),
               to_string(QueryType::PartialMatchPoint));
  EXPECT_STRNE(to_string(QueryType::ExactMatchRange),
               to_string(QueryType::PartialMatchRange));
}

}  // namespace
}  // namespace poolnet::storage
