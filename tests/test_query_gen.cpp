#include "query/query_gen.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace poolnet::query {
namespace {

using storage::QueryType;

TEST(QueryGenerator, ExactRangeBoundsValid) {
  QueryGenerator gen({.dims = 3}, 1);
  for (int i = 0; i < 500; ++i) {
    const auto q = gen.exact_range();
    EXPECT_EQ(q.dims(), 3u);
    EXPECT_EQ(q.partial_count(), 0u);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_GE(q.bound(d).lo, 0.0);
      EXPECT_LE(q.bound(d).hi, 1.0);
      EXPECT_LE(q.bound(d).lo, q.bound(d).hi);
    }
  }
}

TEST(QueryGenerator, UniformSizesSpreadWide) {
  QueryGenerator gen({.dims = 3, .dist = RangeSizeDistribution::Uniform}, 2);
  double mean = 0.0;
  constexpr int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    const auto q = gen.exact_range();
    mean += q.bound(0).length();
  }
  EXPECT_NEAR(mean / kN, 0.5, 0.03);
}

TEST(QueryGenerator, ExponentialSizesSkewSmall) {
  QueryGenerator gen(
      {.dims = 3, .dist = RangeSizeDistribution::Exponential, .exp_mean = 0.1},
      3);
  double mean = 0.0;
  constexpr int kN = 3000;
  for (int i = 0; i < kN; ++i) mean += gen.exact_range().bound(0).length();
  EXPECT_NEAR(mean / kN, 0.1, 0.02);
}

TEST(QueryGenerator, PartialRangeHasExactlyMUnspecified) {
  QueryGenerator gen({.dims = 3}, 4);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(gen.partial_range(1).partial_count(), 1u);
    EXPECT_EQ(gen.partial_range(2).partial_count(), 2u);
  }
}

TEST(QueryGenerator, PartialRangeSpecifiedSizesCapped) {
  QueryGenerator gen({.dims = 3}, 5);
  for (int i = 0; i < 500; ++i) {
    const auto q = gen.partial_range(1);
    for (std::size_t d = 0; d < 3; ++d) {
      if (q.specified(d)) {
        EXPECT_LE(q.bound(d).length(), 0.25);
      } else {
        EXPECT_EQ(q.bound(d), (ClosedInterval{0.0, 1.0}));
      }
    }
    EXPECT_EQ(q.type(), QueryType::PartialMatchRange);
  }
}

TEST(QueryGenerator, PartialRangeChoosesAllDimensions) {
  QueryGenerator gen({.dims = 3}, 6);
  bool unspec_seen[3] = {false, false, false};
  for (int i = 0; i < 200; ++i) {
    const auto q = gen.partial_range(1);
    for (std::size_t d = 0; d < 3; ++d)
      if (!q.specified(d)) unspec_seen[d] = true;
  }
  EXPECT_TRUE(unspec_seen[0] && unspec_seen[1] && unspec_seen[2]);
}

TEST(QueryGenerator, PartialAtPinsTheDimension) {
  QueryGenerator gen({.dims = 3}, 7);
  for (std::size_t n = 0; n < 3; ++n) {
    for (int i = 0; i < 50; ++i) {
      const auto q = gen.partial_at(n);
      EXPECT_FALSE(q.specified(n));
      EXPECT_EQ(q.partial_count(), 1u);
    }
  }
}

TEST(QueryGenerator, ExactPointHasDegenerateBounds) {
  QueryGenerator gen({.dims = 3}, 8);
  for (int i = 0; i < 100; ++i) {
    const auto q = gen.exact_point();
    EXPECT_EQ(q.type(), QueryType::ExactMatchPoint);
    for (std::size_t d = 0; d < 3; ++d)
      EXPECT_DOUBLE_EQ(q.bound(d).lo, q.bound(d).hi);
  }
}

TEST(QueryGenerator, PartialPointClassification) {
  QueryGenerator gen({.dims = 3}, 9);
  const auto q = gen.partial_point(1);
  EXPECT_EQ(q.type(), QueryType::PartialMatchPoint);
}

TEST(QueryGenerator, DeterministicPerSeed) {
  QueryGenerator a({.dims = 3}, 10), b({.dims = 3}, 10);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.exact_range(), b.exact_range());
    EXPECT_EQ(a.partial_range(1), b.partial_range(1));
  }
}

TEST(QueryGenerator, RejectsBadConfigs) {
  EXPECT_THROW(QueryGenerator({.dims = 0}, 1), poolnet::ConfigError);
  EXPECT_THROW(QueryGenerator({.dims = 3, .exp_mean = 0.0}, 1),
               poolnet::ConfigError);
  EXPECT_THROW(QueryGenerator({.dims = 3, .partial_range_max = 0.0}, 1),
               poolnet::ConfigError);
  QueryGenerator gen({.dims = 3}, 1);
  EXPECT_THROW(gen.partial_range(0), poolnet::ConfigError);
  EXPECT_THROW(gen.partial_range(3), poolnet::ConfigError);
  EXPECT_THROW(gen.partial_at(3), poolnet::ConfigError);
}

}  // namespace
}  // namespace poolnet::query
