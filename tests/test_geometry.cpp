#include "common/geometry.h"

#include <gtest/gtest.h>

#include <cmath>

namespace poolnet {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Geometry, PointArithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ((a + b), (Point{4.0, 1.0}));
  EXPECT_EQ((a - b), (Point{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Point{2.0, 4.0}));
}

TEST(Geometry, DistanceMatchesSquaredDistance) {
  const Point a{0.0, 0.0};
  const Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance_sq(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
}

TEST(Geometry, DistanceIsSymmetric) {
  const Point a{1.5, -2.5};
  const Point b{-4.0, 7.0};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
}

TEST(Geometry, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(dot({2, 3}, {4, 5}), 23.0);
  EXPECT_DOUBLE_EQ(cross({1, 0}, {0, 1}), 1.0);   // ccw
  EXPECT_DOUBLE_EQ(cross({0, 1}, {1, 0}), -1.0);  // cw
}

TEST(Geometry, OrientationSign) {
  EXPECT_GT(orientation({0, 0}, {1, 0}, {1, 1}), 0.0);   // left turn
  EXPECT_LT(orientation({0, 0}, {1, 0}, {1, -1}), 0.0);  // right turn
  EXPECT_DOUBLE_EQ(orientation({0, 0}, {1, 0}, {2, 0}), 0.0);
}

TEST(Geometry, AngleOfCardinalDirections) {
  const Point o{0, 0};
  EXPECT_DOUBLE_EQ(angle_of(o, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(angle_of(o, {0, 1}), kPi / 2);
  EXPECT_DOUBLE_EQ(angle_of(o, {-1, 0}), kPi);
  EXPECT_DOUBLE_EQ(angle_of(o, {0, -1}), -kPi / 2);
}

TEST(Geometry, CcwSweepNormalizes) {
  EXPECT_NEAR(ccw_sweep(0.0, kPi / 2), kPi / 2, 1e-12);
  EXPECT_NEAR(ccw_sweep(kPi / 2, 0.0), 3 * kPi / 2, 1e-12);
  EXPECT_NEAR(ccw_sweep(-kPi, kPi), 0.0, 1e-12);  // same direction
  EXPECT_NEAR(ccw_sweep(0.1, 0.1), 0.0, 1e-12);
}

TEST(Geometry, RectContainsBoundaryInclusive) {
  const Rect r{0, 0, 10, 5};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({10, 5}));
  EXPECT_TRUE(r.contains({5, 2.5}));
  EXPECT_FALSE(r.contains({10.01, 5}));
  EXPECT_FALSE(r.contains({-0.01, 0}));
}

TEST(Geometry, RectDimensionsAndCenter) {
  const Rect r{1, 2, 5, 10};
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 8.0);
  EXPECT_EQ(r.center(), (Point{3.0, 6.0}));
}

TEST(Geometry, RectIntersects) {
  const Rect a{0, 0, 4, 4};
  EXPECT_TRUE(a.intersects({2, 2, 6, 6}));
  EXPECT_TRUE(a.intersects({4, 4, 8, 8}));  // corner touch
  EXPECT_FALSE(a.intersects({5, 5, 8, 8}));
  EXPECT_TRUE(a.intersects({1, 1, 2, 2}));  // containment
}

TEST(Geometry, RectClamp) {
  const Rect r{0, 0, 10, 10};
  EXPECT_EQ(r.clamp({5, 5}), (Point{5, 5}));
  EXPECT_EQ(r.clamp({-3, 5}), (Point{0, 5}));
  EXPECT_EQ(r.clamp({12, 15}), (Point{10, 10}));
}

TEST(Geometry, SegmentsCrossingProperly) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));
}

TEST(Geometry, SegmentsSharedEndpoint) {
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(Geometry, SegmentsCollinearOverlap) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(Geometry, SegmentTouchingMidpoint) {
  // q1 lies on segment (p1,p2) — a T-junction.
  EXPECT_TRUE(segments_intersect({0, 0}, {4, 0}, {2, 0}, {2, 3}));
}

TEST(Geometry, SegmentIntersectionPoint) {
  const auto xi = segment_intersection({0, 0}, {2, 2}, {0, 2}, {2, 0});
  ASSERT_TRUE(xi.has_value());
  EXPECT_NEAR(xi->x, 1.0, 1e-12);
  EXPECT_NEAR(xi->y, 1.0, 1e-12);
}

TEST(Geometry, SegmentIntersectionParallelIsNull) {
  EXPECT_FALSE(
      segment_intersection({0, 0}, {1, 0}, {0, 1}, {1, 1}).has_value());
  // Collinear overlap reports no single crossing point.
  EXPECT_FALSE(
      segment_intersection({0, 0}, {2, 0}, {1, 0}, {3, 0}).has_value());
}

TEST(Geometry, SegmentIntersectionDisjointIsNull) {
  EXPECT_FALSE(
      segment_intersection({0, 0}, {1, 1}, {5, 0}, {6, 1}).has_value());
}

}  // namespace
}  // namespace poolnet
