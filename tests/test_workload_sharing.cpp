// Tests of the Section 4.2 workload-sharing mechanism under skewed loads.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/pool_system.h"
#include "net/deployment.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "storage/brute_force_store.h"

namespace poolnet::core {
namespace {

using net::Network;
using net::NodeId;
using storage::Event;
using storage::RangeQuery;

struct Fixture {
  explicit Fixture(std::uint64_t seed, PoolConfig config, std::size_t n = 250)
      : oracle(3) {
    const double side = net::field_side_for_density(n, 40.0, 20.0);
    const Rect field{0, 0, side, side};
    for (std::uint64_t attempt = 0;; ++attempt) {
      Rng rng(seed + attempt * 7919);
      auto pts = net::deploy_uniform(n, field, rng);
      auto candidate = std::make_unique<Network>(std::move(pts), field, 40.0);
      if (candidate->is_connected()) {
        network = std::move(candidate);
        break;
      }
    }
    gpsr = std::make_unique<routing::Gpsr>(*network);
    pool = std::make_unique<PoolSystem>(*network, *gpsr, 3, config);
  }

  void insert_skewed(std::size_t count, std::uint64_t seed) {
    query::WorkloadConfig wc;
    wc.dims = 3;
    wc.dist = query::ValueDistribution::Gaussian;
    wc.center = 0.85;
    wc.spread = 0.02;
    query::EventGenerator gen(wc, seed);
    for (std::size_t i = 0; i < count; ++i) {
      const auto e = gen.next(static_cast<NodeId>(i % network->size()));
      pool->insert(e.source, e);
      oracle.insert(e.source, e);
    }
  }

  std::unique_ptr<Network> network;
  std::unique_ptr<routing::Gpsr> gpsr;
  std::unique_ptr<PoolSystem> pool;
  storage::BruteForceStore oracle;
};

std::vector<std::uint64_t> ids(const std::vector<Event>& evs) {
  std::vector<std::uint64_t> out;
  for (const auto& e : evs) out.push_back(e.id);
  std::sort(out.begin(), out.end());
  return out;
}

PoolConfig sharing_config(bool on, std::uint32_t threshold = 20) {
  PoolConfig c;
  c.workload_sharing = on;
  c.share_threshold = threshold;
  return c;
}

TEST(WorkloadSharing, ReducesMaxNodeLoadUnderSkew) {
  Fixture without(1, sharing_config(false));
  Fixture with(1, sharing_config(true, 20));
  without.insert_skewed(1500, 42);
  with.insert_skewed(1500, 42);
  EXPECT_LT(with.pool->max_node_load(), without.pool->max_node_load());
  EXPECT_LE(with.pool->max_node_load(), 20u + 25u)
      << "delegation should bound resident load near the threshold";
}

TEST(WorkloadSharing, NoEventsAreLost) {
  Fixture fx(2, sharing_config(true, 10));
  fx.insert_skewed(800, 7);
  EXPECT_EQ(fx.pool->stored_count(), 800u);
  std::uint64_t resident = 0;
  for (const auto& node : fx.network->nodes()) resident += node.stored_events;
  EXPECT_EQ(resident, 800u);
}

TEST(WorkloadSharing, QueriesStillReturnExactResults) {
  Fixture fx(3, sharing_config(true, 10));
  fx.insert_skewed(1000, 9);
  // The hotspot region query: most events live here, many at delegates.
  const RangeQuery hot({{0.7, 1.0}, {0.7, 1.0}, {0.7, 1.0}});
  EXPECT_EQ(ids(fx.pool->query(0, hot).events), ids(fx.oracle.matching(hot)));
  const RangeQuery all({{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(ids(fx.pool->query(5, all).events), ids(fx.oracle.matching(all)));
}

TEST(WorkloadSharing, DelegationCostsExtraMessages) {
  Fixture without(4, sharing_config(false));
  Fixture with(4, sharing_config(true, 10));
  without.insert_skewed(600, 11);
  const auto base = without.network->traffic().total;
  with.insert_skewed(600, 11);
  const auto shared = with.network->traffic().total;
  EXPECT_GT(shared, base) << "handoff hops must be charged";
  // But the overhead is bounded: at most one extra hop per insertion.
  EXPECT_LE(shared, base + 600);
}

TEST(WorkloadSharing, DisabledKeepsEverythingAtIndexNodes) {
  Fixture fx(5, sharing_config(false));
  fx.insert_skewed(500, 13);
  // Query cost with sharing off must involve no delegate hops: re-running
  // the same query twice gives identical cost (determinism check).
  const RangeQuery hot({{0.7, 1.0}, {0.7, 1.0}, {0.7, 1.0}});
  const auto r1 = fx.pool->query(0, hot);
  const auto r2 = fx.pool->query(0, hot);
  EXPECT_EQ(r1.messages, r2.messages);
}

TEST(WorkloadSharing, UniformLoadRarelyTriggersDelegation) {
  // Under a uniform workload, sharing with a generous threshold should be
  // almost never exercised: the insert traffic with sharing on is within a
  // whisker of the traffic with sharing off. Note a physical index node
  // serves ~10 logical cells at paper density, so the threshold must sit
  // well above the per-node (not per-cell) expected load.
  Fixture with(6, sharing_config(true, 256));
  Fixture without(6, sharing_config(false));
  query::EventGenerator gen_a({.dims = 3}, 17), gen_b({.dims = 3}, 17);
  for (std::size_t i = 0; i < 750; ++i) {
    const auto src = static_cast<NodeId>(i % with.network->size());
    with.pool->insert(src, gen_a.next(src));
    without.pool->insert(src, gen_b.next(src));
  }
  const auto extra = with.network->traffic().total -
                     without.network->traffic().total;
  EXPECT_LT(extra, 750u / 20) << "uniform load should barely delegate";
}

}  // namespace
}  // namespace poolnet::core
