#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace poolnet {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(7);
  Rng child = a.split();
  // The child must differ from the parent's continuation.
  Rng b(7);
  (void)b.split();
  EXPECT_NE(child(), a());
}

TEST(Rng, UniformWithinUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(42);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 5));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, ExponentialTruncatedStaysUnderCap) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.exponential_truncated(0.1, 1.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, ExponentialTruncatedMeanApproximatesParameter) {
  // With mean << cap the truncation barely matters.
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential_truncated(0.1, 1.0);
  EXPECT_NEAR(sum / kN, 0.1, 0.005);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(2.0, 0.5);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.01);
  EXPECT_NEAR(var, 0.25, 0.01);
}

TEST(Rng, ZipfWithinRangeAndSkewed) {
  Rng rng(17);
  std::int64_t ones = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const auto z = rng.zipf(100, 1.2);
    EXPECT_GE(z, 1);
    EXPECT_LE(z, 100);
    if (z == 1) ++ones;
  }
  // Rank 1 must dominate any uniform share (1% of draws).
  EXPECT_GT(ones, kN / 20);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(23);
  const auto p = rng.permutation(50);
  ASSERT_EQ(p.size(), 50u);
  auto sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(23);
  const auto p = rng.permutation(50);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i)
    if (p[i] == i) ++fixed;
  EXPECT_LT(fixed, 10u);  // identity permutation would be 50
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(29);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace poolnet
