// Continuous queries and the continuous nearest-neighbor monitor (the
// paper's Section 6 future work, built on Pool's standing subscriptions).
#include <gtest/gtest.h>

#include <cmath>

#include "bench_support/testbed.h"
#include "common/error.h"
#include "core/nearest_monitor.h"
#include "query/workload.h"

namespace poolnet::core {
namespace {

using net::NodeId;
using storage::Event;
using storage::RangeQuery;
using storage::Values;

Event event_of(std::uint64_t id, std::initializer_list<double> vals,
               NodeId source = 0) {
  Event e;
  e.id = id;
  e.source = source;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

struct Fixture {
  explicit Fixture(std::uint64_t seed = 1, std::size_t nodes = 250) {
    benchsup::TestbedConfig config;
    config.nodes = nodes;
    config.seed = seed;
    tb = std::make_unique<benchsup::Testbed>(config);
  }
  PoolSystem& pool() { return tb->pool(); }
  net::Network& network() { return tb->pool_network(); }
  std::unique_ptr<benchsup::Testbed> tb;
};

TEST(ContinuousQuery, NotifiesOnMatchingInsert) {
  Fixture fx;
  const RangeQuery q({{0.4, 0.6}, {0.3, 0.5}, {0.0, 0.3}});
  const auto sub = fx.pool().subscribe(9, q);

  fx.pool().insert(0, event_of(1, {0.5, 0.4, 0.1}));   // matches
  fx.pool().insert(0, event_of(2, {0.9, 0.4, 0.1}));   // V1 out of range

  const auto notes = fx.pool().take_notifications(sub);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].event.id, 1u);
  EXPECT_EQ(notes[0].subscription, sub);
  // Drained: a second take returns nothing.
  EXPECT_TRUE(fx.pool().take_notifications(sub).empty());
}

TEST(ContinuousQuery, EventsBeforeSubscriptionAreNotNotified) {
  Fixture fx(2);
  const RangeQuery q({{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
  fx.pool().insert(0, event_of(1, {0.5, 0.4, 0.1}));
  const auto sub = fx.pool().subscribe(3, q);
  EXPECT_TRUE(fx.pool().take_notifications(sub).empty());
  fx.pool().insert(0, event_of(2, {0.2, 0.1, 0.05}));
  EXPECT_EQ(fx.pool().take_notifications(sub).size(), 1u);
}

TEST(ContinuousQuery, CatchesEveryMatchingInsertUnderLoad) {
  Fixture fx(3);
  const RangeQuery q({{0.6, 0.9}, {0.0, 0.7}, {0.0, 0.7}});
  const auto sub = fx.pool().subscribe(0, q);
  query::EventGenerator gen({.dims = 3}, 33);
  std::size_t expected = 0;
  for (int i = 0; i < 600; ++i) {
    const auto e = gen.next(static_cast<NodeId>(i % fx.network().size()));
    if (q.matches(e)) ++expected;
    fx.pool().insert(e.source, e);
  }
  ASSERT_GT(expected, 0u);
  EXPECT_EQ(fx.pool().take_notifications(sub).size(), expected);
}

TEST(ContinuousQuery, PartialMatchSubscriptionsWork) {
  Fixture fx(4);
  RangeQuery::Bounds b{{0, 0}, {0, 0}, {0.8, 0.9}};
  FixedVec<bool, storage::kMaxDims> spec{false, false, true};
  const RangeQuery q(b, spec);
  const auto sub = fx.pool().subscribe(5, q);
  fx.pool().insert(0, event_of(1, {0.1, 0.2, 0.85}));  // matches (d1 = 2)
  fx.pool().insert(0, event_of(2, {0.95, 0.2, 0.85})); // matches (d1 = 0)
  fx.pool().insert(0, event_of(3, {0.95, 0.2, 0.5}));  // no match
  EXPECT_EQ(fx.pool().take_notifications(sub).size(), 2u);
}

TEST(ContinuousQuery, UnsubscribeStopsNotifications) {
  Fixture fx(5);
  const RangeQuery q({{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
  const auto sub = fx.pool().subscribe(2, q);
  EXPECT_EQ(fx.pool().active_subscriptions(), 1u);
  fx.pool().unsubscribe(sub);
  EXPECT_EQ(fx.pool().active_subscriptions(), 0u);
  fx.pool().insert(0, event_of(1, {0.5, 0.5, 0.5}));
  EXPECT_TRUE(fx.pool().take_notifications(sub).empty());
  // Unknown / double unsubscribe is a no-op.
  fx.pool().unsubscribe(sub);
  fx.pool().unsubscribe(987654);
}

TEST(ContinuousQuery, RegistrationChargesControlTraffic) {
  Fixture fx(6);
  const auto before = fx.network().traffic().of(net::MessageKind::Control);
  const RangeQuery q({{0.4, 0.6}, {0.3, 0.5}, {0.0, 0.3}});
  const auto sub = fx.pool().subscribe(9, q);
  const auto after_sub = fx.network().traffic().of(net::MessageKind::Control);
  EXPECT_GT(after_sub, before);
  fx.pool().unsubscribe(sub);
  EXPECT_GT(fx.network().traffic().of(net::MessageKind::Control), after_sub);
}

TEST(ContinuousQuery, NotificationChargesReplyPath) {
  Fixture fx(7);
  const RangeQuery q({{0.4, 0.6}, {0.3, 0.5}, {0.0, 0.3}});
  const auto sub = fx.pool().subscribe(9, q);
  const auto before = fx.network().traffic().of(net::MessageKind::Reply);
  fx.pool().insert(0, event_of(1, {0.5, 0.4, 0.1}));
  EXPECT_GT(fx.network().traffic().of(net::MessageKind::Reply), before);
  (void)sub;
}

TEST(ContinuousQuery, MultipleSubscribersEachNotified) {
  Fixture fx(8);
  const RangeQuery qa({{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
  const RangeQuery qb({{0.4, 0.6}, {0.0, 0.6}, {0.0, 0.6}});
  const auto sa = fx.pool().subscribe(1, qa);
  const auto sb = fx.pool().subscribe(2, qb);
  fx.pool().insert(0, event_of(1, {0.5, 0.4, 0.1}));  // matches both
  fx.pool().insert(0, event_of(2, {0.9, 0.4, 0.1}));  // matches only qa
  EXPECT_EQ(fx.pool().take_notifications(sa).size(), 2u);
  EXPECT_EQ(fx.pool().take_notifications(sb).size(), 1u);
}

TEST(ContinuousQuery, DimensionMismatchThrows) {
  Fixture fx(9, 150);
  EXPECT_THROW(fx.pool().subscribe(0, RangeQuery({{0.0, 1.0}})),
               poolnet::ConfigError);
}

// --- continuous nearest-neighbor monitoring --------------------------------

TEST(NearestMonitor, TracksChampionAcrossInserts) {
  Fixture fx(10);
  const Values target{0.5, 0.5, 0.5};
  NearestMonitor monitor(fx.pool(), 0, target);
  EXPECT_FALSE(monitor.nearest().has_value());  // store empty

  fx.pool().insert(0, event_of(1, {0.9, 0.1, 0.2}));
  ASSERT_TRUE(monitor.poll());
  EXPECT_EQ(monitor.nearest()->id, 1u);

  fx.pool().insert(0, event_of(2, {0.55, 0.5, 0.5}));  // much closer
  ASSERT_TRUE(monitor.poll());
  EXPECT_EQ(monitor.nearest()->id, 2u);
  EXPECT_NEAR(monitor.distance(), 0.05, 1e-12);

  fx.pool().insert(0, event_of(3, {0.9, 0.9, 0.9}));  // farther: ignored
  EXPECT_FALSE(monitor.poll());
  EXPECT_EQ(monitor.nearest()->id, 2u);
}

TEST(NearestMonitor, AgreesWithFreshSearchUnderRandomStream) {
  Fixture fx(11);
  const Values target{0.3, 0.7, 0.2};
  NearestMonitor monitor(fx.pool(), 4, target);
  query::EventGenerator gen({.dims = 3}, 44);
  for (int i = 0; i < 400; ++i) {
    const auto e = gen.next(static_cast<NodeId>(i % fx.network().size()));
    fx.pool().insert(e.source, e);
    monitor.poll();
  }
  // The fresh search goes through the unified request surface (the
  // deprecated nearest_event shim forwards to this same k-NN path).
  const storage::QueryReceipt fresh =
      fx.pool().execute(4, storage::KNearestQuery{target, 1, 0.05});
  ASSERT_FALSE(fresh.events.empty());
  ASSERT_TRUE(monitor.nearest().has_value());
  const double fresh_distance =
      std::sqrt(storage::squared_distance(target, fresh.events.front().values));
  EXPECT_NEAR(monitor.distance(), fresh_distance, 1e-12);
}

TEST(NearestMonitor, PicksUpPreexistingEvents) {
  Fixture fx(12);
  fx.pool().insert(0, event_of(1, {0.2, 0.3, 0.4}));
  NearestMonitor monitor(fx.pool(), 0, Values{0.2, 0.3, 0.4});
  ASSERT_TRUE(monitor.nearest().has_value());
  EXPECT_DOUBLE_EQ(monitor.distance(), 0.0);
}

TEST(NearestMonitor, TightensSubscriptionAsChampionImproves) {
  Fixture fx(13);
  const Values target{0.5, 0.5, 0.5};
  NearestMonitor monitor(fx.pool(), 0, target);
  // A sequence of ever-closer events must trigger re-registration.
  fx.pool().insert(0, event_of(1, {0.9, 0.9, 0.9}));
  monitor.poll();
  fx.pool().insert(0, event_of(2, {0.6, 0.6, 0.6}));
  monitor.poll();
  fx.pool().insert(0, event_of(3, {0.51, 0.51, 0.51}));
  monitor.poll();
  EXPECT_GE(monitor.retightenings(), 1u);
  EXPECT_EQ(monitor.nearest()->id, 3u);
}

TEST(NearestMonitor, DestructorCleansUpSubscription) {
  Fixture fx(14, 150);
  {
    NearestMonitor monitor(fx.pool(), 0, Values{0.5, 0.5, 0.5});
    EXPECT_EQ(fx.pool().active_subscriptions(), 1u);
  }
  EXPECT_EQ(fx.pool().active_subscriptions(), 0u);
}

TEST(NearestMonitor, RejectsBadArguments) {
  Fixture fx(15, 150);
  EXPECT_THROW(NearestMonitor(fx.pool(), 0, Values{0.5, 0.5}),
               poolnet::ConfigError);
  EXPECT_THROW(NearestMonitor(fx.pool(), 0, Values{0.5, 0.5, 0.5}, 1.5),
               poolnet::ConfigError);
}

}  // namespace
}  // namespace poolnet::core
