#include "cli/runner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace poolnet::cli {
namespace {

CliConfig small_config() {
  CliConfig config;
  config.systems = {SystemChoice::Pool, SystemChoice::Dim};
  config.nodes = 150;
  config.queries = 10;
  config.seed = 5;
  return config;
}

TEST(CliRunner, RunsPoolAndDimWithZeroMismatches) {
  std::ostringstream out;
  const auto results = run_experiment(small_config(), out);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_GT(r.mean_messages, 0.0);
    EXPECT_GT(r.insert_messages_per_event, 0.0);
  }
  const auto text = out.str();
  EXPECT_NE(text.find("pool"), std::string::npos);
  EXPECT_NE(text.find("dim"), std::string::npos);
  EXPECT_NE(text.find("150 nodes"), std::string::npos);
}

TEST(CliRunner, GhtSystemRunsToo) {
  auto config = small_config();
  config.systems = {SystemChoice::Ght};
  config.flavor = QueryFlavor::Point;
  std::ostringstream out;
  const auto results = run_experiment(config, out);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].mismatches, 0u);
}

TEST(CliRunner, PartialFlavorsWork) {
  for (const auto flavor : {QueryFlavor::OnePartial, QueryFlavor::TwoPartial}) {
    auto config = small_config();
    config.flavor = flavor;
    std::ostringstream out;
    const auto results = run_experiment(config, out);
    for (const auto& r : results) EXPECT_EQ(r.mismatches, 0u);
  }
}

TEST(CliRunner, MultipleDeploymentsAggregate) {
  auto config = small_config();
  config.deployments = 2;
  config.queries = 5;
  std::ostringstream out;
  const auto results = run_experiment(config, out);
  EXPECT_EQ(results[0].mismatches, 0u);
}

TEST(CliRunner, CsvExportWritesHeaderOnceAndAppends) {
  const std::string path = ::testing::TempDir() + "/poolnet_cli_test.csv";
  std::filesystem::remove(path);

  auto config = small_config();
  config.csv_path = path;
  std::ostringstream out;
  run_experiment(config, out);
  run_experiment(config, out);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0, headers = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (line.rfind("system,", 0) == 0) ++headers;
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_EQ(lines, 1u + 2u * 2u);  // header + 2 systems x 2 runs
  std::filesystem::remove(path);
}

TEST(CliRunner, RejectsEmptySystemList) {
  auto config = small_config();
  config.systems.clear();
  std::ostringstream out;
  EXPECT_THROW(run_experiment(config, out), poolnet::ConfigError);
}

TEST(CliRunner, RejectsPartialQueriesOnOneDimension) {
  auto config = small_config();
  config.dims = 1;
  config.flavor = QueryFlavor::OnePartial;
  std::ostringstream out;
  EXPECT_THROW(run_experiment(config, out), poolnet::ConfigError);
}

TEST(CliRunner, NamesAreStable) {
  EXPECT_STREQ(to_string(SystemChoice::Pool), "pool");
  EXPECT_STREQ(to_string(SystemChoice::Ght), "ght");
  EXPECT_STREQ(to_string(QueryFlavor::TwoPartial), "2-partial");
}

}  // namespace
}  // namespace poolnet::cli
