#include "routing/planarization.h"

#include <gtest/gtest.h>

#include "net/deployment.h"

namespace poolnet::routing {
namespace {

using net::Network;
using net::NodeId;

Network random_net(std::uint64_t seed, std::size_t n = 250) {
  Rng rng(seed);
  const double side = net::field_side_for_density(n, 40.0, 20.0);
  const Rect field{0, 0, side, side};
  auto pts = net::deploy_uniform(n, field, rng);
  return Network(std::move(pts), field, 40.0);
}

TEST(Planarization, GabrielSubsetOfUnitDisk) {
  const auto net = random_net(1);
  const PlanarGraph g(net, PlanarizationRule::Gabriel);
  for (NodeId u = 0; u < net.size(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      EXPECT_TRUE(net.are_neighbors(u, v));
    }
  }
}

TEST(Planarization, GabrielConditionHolds) {
  // No third node strictly inside the diameter circle of any kept edge.
  const auto net = random_net(2);
  const PlanarGraph g(net, PlanarizationRule::Gabriel);
  for (NodeId u = 0; u < net.size(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (v < u) continue;
      const Point pu = net.position(u), pv = net.position(v);
      const Point mid{(pu.x + pv.x) / 2, (pu.y + pv.y) / 2};
      const double r2 = distance_sq(pu, pv) / 4.0;
      for (NodeId w = 0; w < net.size(); ++w) {
        if (w == u || w == v) continue;
        EXPECT_GE(distance_sq(net.position(w), mid), r2)
            << "witness " << w << " violates Gabriel edge (" << u << "," << v
            << ")";
      }
    }
  }
}

TEST(Planarization, RngConditionHolds) {
  const auto net = random_net(3);
  const PlanarGraph g(net, PlanarizationRule::RelativeNeighborhood);
  for (NodeId u = 0; u < net.size(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (v < u) continue;
      const double duv2 = distance_sq(net.position(u), net.position(v));
      for (NodeId w = 0; w < net.size(); ++w) {
        if (w == u || w == v) continue;
        const bool closer_to_both =
            distance_sq(net.position(u), net.position(w)) < duv2 &&
            distance_sq(net.position(v), net.position(w)) < duv2;
        EXPECT_FALSE(closer_to_both);
      }
    }
  }
}

TEST(Planarization, RngIsSubgraphOfGabriel) {
  const auto net = random_net(4);
  const PlanarGraph gg(net, PlanarizationRule::Gabriel);
  const PlanarGraph rng_g(net, PlanarizationRule::RelativeNeighborhood);
  EXPECT_LE(rng_g.edge_count(), gg.edge_count());
  for (NodeId u = 0; u < net.size(); ++u) {
    for (const NodeId v : rng_g.neighbors(u)) {
      EXPECT_TRUE(gg.has_edge(u, v));
    }
  }
}

class PlanarConnectivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanarConnectivity, GabrielPreservesConnectivity) {
  const auto net = random_net(GetParam());
  if (!net.is_connected()) GTEST_SKIP() << "disconnected draw";
  const PlanarGraph g(net, PlanarizationRule::Gabriel);
  EXPECT_TRUE(g.is_connected());
}

TEST_P(PlanarConnectivity, RngPreservesConnectivity) {
  const auto net = random_net(GetParam() ^ 0x55);
  if (!net.is_connected()) GTEST_SKIP() << "disconnected draw";
  const PlanarGraph g(net, PlanarizationRule::RelativeNeighborhood);
  EXPECT_TRUE(g.is_connected());
}

TEST_P(PlanarConnectivity, PlanarGraphHasNoCrossings) {
  // The defining property perimeter routing relies on: no two Gabriel
  // edges cross at an interior point.
  const auto net = random_net(GetParam() ^ 0x99, 120);
  const PlanarGraph g(net, PlanarizationRule::Gabriel);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < net.size(); ++u)
    for (const NodeId v : g.neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      const auto [a, b] = edges[i];
      const auto [c, d] = edges[j];
      if (a == c || a == d || b == c || b == d) continue;  // shared endpoint
      EXPECT_FALSE(segments_intersect(net.position(a), net.position(b),
                                      net.position(c), net.position(d)))
          << "edges (" << a << "," << b << ") x (" << c << "," << d << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanarConnectivity,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(Planarization, SymmetricAdjacency) {
  const auto net = random_net(6);
  const PlanarGraph g(net, PlanarizationRule::Gabriel);
  for (NodeId u = 0; u < net.size(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(v, u));
    }
  }
}

TEST(Planarization, TwoNodeNetworkKeepsItsEdge) {
  std::vector<Point> pts{{0, 0}, {10, 0}};
  const Network net(pts, Rect{0, 0, 20, 10}, 40.0);
  const PlanarGraph g(net, PlanarizationRule::Gabriel);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

}  // namespace
}  // namespace poolnet::routing
