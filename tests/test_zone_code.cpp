#include "dim/zone_code.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.h"
#include "common/error.h"

namespace poolnet::dim {
namespace {

TEST(ZoneCode, EmptyByDefault) {
  const ZoneCode c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.length(), 0u);
}

TEST(ZoneCode, ChildAppendsBits) {
  const ZoneCode c = ZoneCode{}.child(true).child(false).child(true);
  EXPECT_EQ(c.length(), 3u);
  EXPECT_TRUE(c.bit(0));
  EXPECT_FALSE(c.bit(1));
  EXPECT_TRUE(c.bit(2));
  EXPECT_EQ(c.to_string(), "101");
}

TEST(ZoneCode, FromStringRoundTrip) {
  const auto c = ZoneCode::from_string("1110");
  EXPECT_EQ(c.length(), 4u);
  EXPECT_EQ(c.to_string(), "1110");
}

TEST(ZoneCode, FromStringRejectsNonBinary) {
  EXPECT_THROW(ZoneCode::from_string("10a"), poolnet::ConfigError);
  EXPECT_THROW(ZoneCode::from_string(std::string(65, '0')),
               poolnet::ConfigError);
}

TEST(ZoneCode, PrefixRelation) {
  const auto p = ZoneCode::from_string("11");
  EXPECT_TRUE(p.prefix_of(ZoneCode::from_string("1110")));
  EXPECT_TRUE(p.prefix_of(ZoneCode::from_string("11")));
  EXPECT_FALSE(p.prefix_of(ZoneCode::from_string("10")));
  EXPECT_FALSE(p.prefix_of(ZoneCode::from_string("1")));
  EXPECT_TRUE(ZoneCode{}.prefix_of(p));  // empty prefixes everything
}

TEST(ZoneCode, EqualityRequiresSameLengthAndBits) {
  EXPECT_EQ(ZoneCode::from_string("101"), ZoneCode::from_string("101"));
  EXPECT_FALSE(ZoneCode::from_string("101") == ZoneCode::from_string("1010"));
  EXPECT_FALSE(ZoneCode::from_string("101") == ZoneCode::from_string("100"));
  EXPECT_EQ(ZoneCode{}, ZoneCode{});
}

TEST(ZoneCode, MaxLengthSupported) {
  ZoneCode c;
  for (std::size_t i = 0; i < ZoneCode::kMaxLength; ++i)
    c = c.child(i % 2 == 0);
  EXPECT_EQ(c.length(), ZoneCode::kMaxLength);
  EXPECT_TRUE(c.bit(0));
  EXPECT_FALSE(c.bit(63));
  EXPECT_THROW(c.child(true), poolnet::AssertionError);
}

TEST(ZoneCode, BitOutOfRangeAsserts) {
  const auto c = ZoneCode::from_string("10");
  EXPECT_THROW((void)c.bit(2), poolnet::AssertionError);
}

TEST(ZoneCode, StreamOutput) {
  std::ostringstream oss;
  oss << ZoneCode::from_string("0110");
  EXPECT_EQ(oss.str(), "0110");
}

}  // namespace
}  // namespace poolnet::dim
