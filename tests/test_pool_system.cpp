#include "core/pool_system.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "net/deployment.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "storage/brute_force_store.h"

namespace poolnet::core {
namespace {

using net::Network;
using net::NodeId;
using storage::Event;
using storage::RangeQuery;

struct Fixture {
  explicit Fixture(std::uint64_t seed, std::size_t n = 250,
                   std::size_t dims = 3, PoolConfig config = {})
      : oracle(dims) {
    const double side = net::field_side_for_density(n, 40.0, 20.0);
    const Rect field{0, 0, side, side};
    for (std::uint64_t attempt = 0;; ++attempt) {
      Rng rng(seed + attempt * 7919);
      auto pts = net::deploy_uniform(n, field, rng);
      auto candidate = std::make_unique<Network>(std::move(pts), field, 40.0);
      if (candidate->is_connected()) {
        network = std::move(candidate);
        break;
      }
    }
    gpsr = std::make_unique<routing::Gpsr>(*network);
    pool = std::make_unique<PoolSystem>(*network, *gpsr, dims, config);
  }

  std::unique_ptr<Network> network;
  std::unique_ptr<routing::Gpsr> gpsr;
  std::unique_ptr<PoolSystem> pool;
  storage::BruteForceStore oracle;
};

Event make_event(std::uint64_t id, std::initializer_list<double> vals) {
  Event e;
  e.id = id;
  e.source = 0;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

std::vector<std::uint64_t> ids(const std::vector<Event>& evs) {
  std::vector<std::uint64_t> out;
  for (const auto& e : evs) out.push_back(e.id);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PoolSystem, ChoosesPoolOfGreatestDimension) {
  Fixture fx(1);
  const auto c = fx.pool->choose_cell(0, make_event(1, {0.2, 0.9, 0.5}));
  EXPECT_EQ(c.pool_dim, 1u);
  // l = 10: HO = floor(0.9*10) = 9; VO = floor(0.5*100/10) = 5.
  EXPECT_EQ(c.offset, (CellOffset{9, 5}));
}

TEST(PoolSystem, InsertStoresAtCellIndexNode) {
  Fixture fx(2);
  const auto e = make_event(1, {0.3, 0.7, 0.1});
  const auto choice = fx.pool->choose_cell(5, e);
  const auto receipt = fx.pool->insert(5, e);
  EXPECT_EQ(receipt.stored_at, choice.index_node);
  EXPECT_EQ(fx.pool->stored_count(), 1u);
  EXPECT_EQ(fx.pool->cell_load(choice.pool_dim, choice.offset), 1u);
}

TEST(PoolSystem, TieStoresSingleCopyAtClosestCandidate) {
  Fixture fx(3);
  const auto e = make_event(1, {0.4, 0.4, 0.2});
  // Both P1 and P2 cells are candidates; exactly one copy is stored.
  fx.pool->insert(0, e);
  EXPECT_EQ(fx.pool->stored_count(), 1u);
  const Placement p0 = placement_for(e, 0);
  const Placement p1 = placement_for(e, 1);
  const auto off0 = cell_for_values(p0.v_d1, p0.v_d2, 10);
  const auto off1 = cell_for_values(p1.v_d1, p1.v_d2, 10);
  const std::size_t total =
      fx.pool->cell_load(0, off0) + fx.pool->cell_load(1, off1);
  EXPECT_EQ(total, 1u);
  // And the chosen cell is the geographically closer of the two.
  const auto choice = fx.pool->choose_cell(0, e);
  const Point src = fx.network->position(0);
  const double chosen_d = distance(
      fx.pool->grid().cell_center(choice.coord), src);
  const double d0 =
      distance(fx.pool->grid().cell_center(fx.pool->layout().cell(0, off0)), src);
  const double d1 =
      distance(fx.pool->grid().cell_center(fx.pool->layout().cell(1, off1)), src);
  EXPECT_DOUBLE_EQ(chosen_d, std::min(d0, d1));
}

TEST(PoolSystem, TiedEventIsStillRetrievable) {
  Fixture fx(4);
  const auto e = make_event(7, {0.4, 0.4, 0.2});
  fx.pool->insert(0, e);
  const RangeQuery q({{0.35, 0.45}, {0.35, 0.45}, {0.1, 0.3}});
  const auto receipt = fx.pool->query(3, q);
  ASSERT_EQ(receipt.events.size(), 1u);
  EXPECT_EQ(receipt.events[0].id, 7u);
}

class PoolQueryCorrectness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolQueryCorrectness, ExactRangeMatchesOracle) {
  Fixture fx(GetParam());
  query::EventGenerator gen({.dims = 3}, GetParam() ^ 0x10);
  for (NodeId n = 0; n < fx.network->size(); ++n) {
    for (int i = 0; i < 3; ++i) {
      const auto e = gen.next(n);
      fx.pool->insert(n, e);
      fx.oracle.insert(n, e);
    }
  }
  query::QueryGenerator qgen({.dims = 3}, GetParam() ^ 0x20);
  Rng sink_rng(GetParam() ^ 0x30);
  for (int i = 0; i < 40; ++i) {
    const auto q = qgen.exact_range();
    const auto sink = static_cast<NodeId>(sink_rng.uniform_int(
        0, static_cast<std::int64_t>(fx.network->size()) - 1));
    EXPECT_EQ(ids(fx.pool->query(sink, q).events), ids(fx.oracle.matching(q)))
        << "query " << q;
  }
}

TEST_P(PoolQueryCorrectness, PartialRangeMatchesOracle) {
  Fixture fx(GetParam() ^ 0x4444);
  query::EventGenerator gen({.dims = 3}, GetParam() ^ 0x40);
  for (NodeId n = 0; n < fx.network->size(); ++n) {
    const auto e = gen.next(n);
    fx.pool->insert(n, e);
    fx.oracle.insert(n, e);
  }
  query::QueryGenerator qgen({.dims = 3}, GetParam() ^ 0x50);
  Rng sink_rng(GetParam() ^ 0x60);
  for (int i = 0; i < 15; ++i) {
    for (const std::size_t m : {std::size_t{1}, std::size_t{2}}) {
      const auto q = qgen.partial_range(m);
      const auto sink = static_cast<NodeId>(sink_rng.uniform_int(
          0, static_cast<std::int64_t>(fx.network->size()) - 1));
      EXPECT_EQ(ids(fx.pool->query(sink, q).events),
                ids(fx.oracle.matching(q)));
    }
  }
}

TEST_P(PoolQueryCorrectness, PointQueriesMatchOracle) {
  Fixture fx(GetParam() ^ 0x8888);
  query::EventGenerator gen({.dims = 3}, GetParam() ^ 0x70);
  std::vector<Event> inserted;
  for (NodeId n = 0; n < fx.network->size(); ++n) {
    const auto e = gen.next(n);
    fx.pool->insert(n, e);
    fx.oracle.insert(n, e);
    inserted.push_back(e);
  }
  // Exact-match point queries targeted at stored events must return them.
  for (int i = 0; i < 20; ++i) {
    const auto& e = inserted[static_cast<std::size_t>(i) * 7 % inserted.size()];
    RangeQuery::Bounds b;
    for (std::size_t d = 0; d < 3; ++d)
      b.push_back({e.values[d], e.values[d]});
    const RangeQuery q(b);
    const auto receipt = fx.pool->query(0, q);
    EXPECT_EQ(ids(receipt.events), ids(fx.oracle.matching(q)));
    EXPECT_FALSE(receipt.events.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolQueryCorrectness,
                         ::testing::Values(11, 22, 33));

TEST(PoolSystem, QueryCostBreakdownConsistent) {
  Fixture fx(5);
  query::EventGenerator gen({.dims = 3}, 50);
  for (NodeId n = 0; n < fx.network->size(); ++n)
    fx.pool->insert(n, gen.next(n));
  query::QueryGenerator qgen({.dims = 3}, 51);
  const auto receipt = fx.pool->query(9, qgen.exact_range());
  EXPECT_EQ(receipt.messages,
            receipt.query_messages + receipt.reply_messages);
}

TEST(PoolSystem, EmptyDerivedRangeSkipsPoolEntirely) {
  Fixture fx(6);
  // Q with max(L) > U_3: pool 2 contributes no relevant cells.
  const RangeQuery q({{0.2, 0.3}, {0.25, 0.35}, {0.21, 0.24}});
  EXPECT_EQ(relevant_cells(q, 2, 10).size(), 0u);
  // A query relevant nowhere costs nothing.
  const RangeQuery impossible({{0.9, 0.95}, {0.9, 0.95}, {0.0, 0.05}});
  // All three derived R_H are non-empty here, so instead check the
  // documented behaviour: cost is proportional to relevant cells.
  const auto cheap = fx.pool->relevant_cell_count(q);
  const auto receipt = fx.pool->query(0, q);
  EXPECT_GT(receipt.messages, 0u);
  EXPECT_EQ(receipt.index_nodes_visited, cheap);
  (void)impossible;
}

TEST(PoolSystem, SplitterIsPoolIndexNodeClosestToSink) {
  Fixture fx(7);
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const auto sink = static_cast<NodeId>(rng.uniform_int(
        0, static_cast<std::int64_t>(fx.network->size()) - 1));
    for (std::size_t p = 0; p < 3; ++p) {
      const NodeId splitter = fx.pool->splitter_for(p, sink);
      const double ds =
          distance(fx.network->position(splitter), fx.network->position(sink));
      for (std::uint32_t ho = 0; ho < 10; ++ho) {
        for (std::uint32_t vo = 0; vo < 10; ++vo) {
          const NodeId idx =
              fx.pool->grid().index_node(fx.pool->layout().cell(p, {ho, vo}));
          EXPECT_LE(ds, distance(fx.network->position(idx),
                                 fx.network->position(sink)) + 1e-9);
        }
      }
    }
  }
}

TEST(PoolSystem, PartialQueryPruningIsPositionInsensitive) {
  // Pool's signature property (Figure 7(b)): the relevant-cell count does
  // not depend on WHICH dimension is unspecified, only on the range sizes.
  Fixture fx(8);
  for (std::size_t unspec = 0; unspec < 3; ++unspec) {
    RangeQuery::Bounds b;
    FixedVec<bool, storage::kMaxDims> spec;
    for (std::size_t d = 0; d < 3; ++d) {
      b.push_back({0.4, 0.5});
      spec.push_back(d != unspec);
    }
    const RangeQuery q(b, spec);
    // Count must be identical across positions by symmetry of Thm 3.2.
    static std::size_t reference = 0;
    const std::size_t count = fx.pool->relevant_cell_count(q);
    if (unspec == 0)
      reference = count;
    else
      EXPECT_EQ(count, reference);
  }
}

TEST(PoolSystem, DimensionMismatchThrows) {
  Fixture fx(9, 100);
  EXPECT_THROW(fx.pool->insert(0, make_event(1, {0.5})),
               poolnet::ConfigError);
  EXPECT_THROW(fx.pool->query(0, RangeQuery({{0, 1}})), poolnet::ConfigError);
}

TEST(PoolSystem, LayoutMismatchThrows) {
  Fixture fx(10, 100);
  PoolConfig config;
  PoolLayout two_pools({{0, 0}, {12, 12}}, 10,
                       fx.pool->grid().cols(), fx.pool->grid().rows());
  EXPECT_THROW(
      PoolSystem(*fx.network, *fx.gpsr, 3, config, std::move(two_pools)),
      poolnet::ConfigError);
}

TEST(PoolSystem, InsertUsesArithmeticNotSearch) {
  // Theorem 3.1's point: the cell is computable without network traffic.
  Fixture fx(11, 100);
  const auto before = fx.network->traffic().total;
  (void)fx.pool->choose_cell(0, make_event(1, {0.1, 0.2, 0.3}));
  EXPECT_EQ(fx.network->traffic().total, before);
}

TEST(PoolSystem, EventsOnPoolBoundariesRetrievable) {
  Fixture fx(12);
  const std::vector<Event> edge_events{
      make_event(1, {1.0, 1.0, 1.0}), make_event(2, {0.0, 0.0, 0.0}),
      make_event(3, {1.0, 0.0, 0.0}), make_event(4, {0.5, 0.5, 0.5}),
      make_event(5, {1.0, 1.0, 0.0})};
  for (const auto& e : edge_events) {
    fx.pool->insert(0, e);
    fx.oracle.insert(0, e);
  }
  const RangeQuery all({{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(ids(fx.pool->query(0, all).events),
            ids(fx.oracle.matching(all)));
}

}  // namespace
}  // namespace poolnet::core
