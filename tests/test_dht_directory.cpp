// The optional DHT pivot directory (Algorithm 1, line 4) with Control
// message accounting and per-node caching.
#include <gtest/gtest.h>

#include <memory>

#include "core/pool_system.h"
#include "net/deployment.h"
#include "query/query_gen.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "storage/brute_force_store.h"

namespace poolnet::core {
namespace {

using net::MessageKind;
using net::Network;
using net::NodeId;

struct Fixture {
  explicit Fixture(bool dht, std::uint64_t seed = 3, std::size_t n = 250) {
    const double side = net::field_side_for_density(n, 40.0, 20.0);
    const Rect field{0, 0, side, side};
    for (std::uint64_t attempt = 0;; ++attempt) {
      Rng rng(seed + attempt * 7919);
      auto pts = net::deploy_uniform(n, field, rng);
      auto candidate = std::make_unique<Network>(std::move(pts), field, 40.0);
      if (candidate->is_connected()) {
        network = std::move(candidate);
        break;
      }
    }
    gpsr = std::make_unique<routing::Gpsr>(*network);
    PoolConfig config;
    config.charge_dht_lookup = dht;
    pool = std::make_unique<PoolSystem>(*network, *gpsr, 3, config);
  }

  std::uint64_t control() const {
    return network->traffic().of(MessageKind::Control);
  }

  std::unique_ptr<Network> network;
  std::unique_ptr<routing::Gpsr> gpsr;
  std::unique_ptr<PoolSystem> pool;
};

storage::Event event_of(std::uint64_t id, std::initializer_list<double> vals) {
  storage::Event e;
  e.id = id;
  e.source = 0;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

TEST(DhtDirectory, DisabledChargesNoControlTraffic) {
  Fixture fx(false);
  query::EventGenerator gen({.dims = 3}, 1);
  for (int i = 0; i < 50; ++i) {
    const auto e = gen.next(static_cast<NodeId>(i % fx.network->size()));
    fx.pool->insert(e.source, e);
  }
  query::QueryGenerator qgen({.dims = 3}, 2);
  fx.pool->query(0, qgen.exact_range());
  EXPECT_EQ(fx.control(), 0u);
}

TEST(DhtDirectory, PublishesOneRecordPerPoolAtSetup) {
  Fixture fx(true);
  // Construction itself charges the publish unicasts (and nothing else).
  EXPECT_GT(fx.control(), 0u);
  EXPECT_EQ(fx.network->traffic().total, fx.control());
}

TEST(DhtDirectory, FirstUsePaysLookupSecondUseIsCached) {
  Fixture fx(true);
  const auto e1 = event_of(1, {0.9, 0.2, 0.1});  // pool 0
  const auto e2 = event_of(2, {0.8, 0.3, 0.2});  // pool 0 again
  const auto after_setup = fx.control();

  fx.pool->insert(5, e1);
  const auto after_first = fx.control();
  EXPECT_GT(after_first, after_setup) << "first insert must pay the lookup";

  fx.pool->insert(5, e2);
  const auto after_second = fx.control();
  EXPECT_EQ(after_second, after_first) << "same node, same pool: cached";

  // A different node pays its own lookup.
  fx.pool->insert(6, event_of(3, {0.7, 0.1, 0.0}));
  EXPECT_GT(fx.control(), after_second);
}

TEST(DhtDirectory, DifferentPoolsNeedSeparateLookups) {
  Fixture fx(true);
  fx.pool->insert(5, event_of(1, {0.9, 0.2, 0.1}));  // pool 0
  const auto after_p0 = fx.control();
  fx.pool->insert(5, event_of(2, {0.2, 0.9, 0.1}));  // pool 1
  EXPECT_GT(fx.control(), after_p0);
}

TEST(DhtDirectory, TieChargesAllCandidatePools) {
  Fixture fx(true);
  const auto after_setup = fx.control();
  fx.pool->insert(5, event_of(1, {0.4, 0.4, 0.1}));  // pools 0 and 1
  const auto tie_cost = fx.control() - after_setup;
  Fixture fx2(true);
  const auto setup2 = fx2.control();
  fx2.pool->insert(5, event_of(1, {0.4, 0.3, 0.1}));  // pool 0 only
  const auto single_cost = fx2.control() - setup2;
  EXPECT_GT(tie_cost, single_cost);
}

TEST(DhtDirectory, QueriesChargeSinkLookups) {
  Fixture fx(true);
  fx.pool->insert(0, event_of(1, {0.5, 0.4, 0.3}));
  const auto before = fx.control();
  const storage::RangeQuery q({{0.4, 0.6}, {0.3, 0.5}, {0.2, 0.4}});
  fx.pool->query(9, q);
  const auto first = fx.control();
  EXPECT_GT(first, before);
  fx.pool->query(9, q);  // cached at node 9 now
  EXPECT_EQ(fx.control(), first);
}

TEST(DhtDirectory, ResultsUnaffectedByAccountingMode) {
  Fixture with(true, 7), without(false, 7);
  query::EventGenerator gen_a({.dims = 3}, 8), gen_b({.dims = 3}, 8);
  storage::BruteForceStore oracle(3);
  for (int i = 0; i < 100; ++i) {
    const auto src = static_cast<NodeId>(i % with.network->size());
    const auto e = gen_a.next(src);
    with.pool->insert(src, e);
    without.pool->insert(src, gen_b.next(src));
    oracle.insert(src, e);
  }
  query::QueryGenerator qgen({.dims = 3}, 9);
  for (int i = 0; i < 10; ++i) {
    const auto q = qgen.partial_range(1);
    EXPECT_EQ(with.pool->query(0, q).events.size(),
              oracle.matching(q).size());
    EXPECT_EQ(without.pool->query(0, q).events.size(),
              oracle.matching(q).size());
  }
}

}  // namespace
}  // namespace poolnet::core
