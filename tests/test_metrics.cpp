// Observability subsystem: registry correctness, shard-merge
// determinism, snapshot emission stability, hop tracing, hotspot
// reports, and conservation between the telemetry surface and the
// receipts the rest of the repo accounts with.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "bench_support/parallel.h"
#include "bench_support/telemetry_bridge.h"
#include "bench_support/testbed.h"
#include "engine/query_engine.h"
#include "ght/ght_system.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "query/query_gen.h"
#include "routing/gpsr.h"
#include "storage/dcs_system.h"

using namespace poolnet;

TEST(MetricsRegistry, CounterAddAndValue) {
  obs::MetricsRegistry reg;
  auto c = reg.counter("tx");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  // Re-registering the same name returns a handle to the same slot.
  auto same = reg.counter("tx");
  same.add(8);
  EXPECT_EQ(c.value(), 50u);
  EXPECT_EQ(reg.metric_count(), 1u);
}

TEST(MetricsRegistry, HistogramBucketsAndOverflow) {
  obs::MetricsRegistry reg;
  auto h = reg.histogram("lat", 2.0, 4);  // [0,2) [2,4) [4,6) [6,8) + over
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(7.9);
  h.add(8.0);    // overflow
  h.add(100.0);  // overflow

  const auto snap = reg.scrape();
  const auto& hist = snap.histograms.at("lat");
  ASSERT_EQ(hist.buckets.size(), 4u);
  EXPECT_EQ(hist.buckets[0], 2u);
  EXPECT_EQ(hist.buckets[1], 1u);
  EXPECT_EQ(hist.buckets[2], 0u);
  EXPECT_EQ(hist.buckets[3], 1u);
  EXPECT_EQ(hist.overflow, 2u);
  EXPECT_EQ(hist.total(), 6u);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 4.0);  // 2+1 of 6 covered at edge 4
}

// The registry's shards must merge to the same bytes no matter how many
// threads did the incrementing.
TEST(MetricsRegistry, ShardMergeIsThreadCountInvariant) {
  const auto run = [](std::size_t threads) {
    obs::MetricsRegistry reg;
    auto c = reg.counter("ops");
    auto h = reg.histogram("sizes", 1.0, 8);
    benchsup::parallel_map<int>(8, threads, [&](std::size_t i) {
      for (std::size_t k = 0; k <= i; ++k) {
        c.inc();
        h.add(static_cast<double>(i));
      }
      return 0;
    });
    return reg.scrape().to_json();
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(8));
}

TEST(Snapshot, MergeSumsEverySection) {
  obs::Snapshot a, b;
  a.counters["c"] = 3;
  b.counters["c"] = 4;
  b.counters["only_b"] = 1;
  a.gauges["g"] = 0.5;
  b.gauges["g"] = 1.5;
  a.series["s"] = {1.0, 2.0};
  b.series["s"] = {10.0, 20.0, 30.0};
  a += b;
  EXPECT_EQ(a.counters["c"], 7u);
  EXPECT_EQ(a.counters["only_b"], 1u);
  EXPECT_DOUBLE_EQ(a.gauges["g"], 2.0);
  ASSERT_EQ(a.series["s"].size(), 3u);
  EXPECT_DOUBLE_EQ(a.series["s"][0], 11.0);
  EXPECT_DOUBLE_EQ(a.series["s"][2], 30.0);

  // Emission is deterministic: same snapshot, same bytes.
  EXPECT_EQ(a.to_json(), a.to_json());
  EXPECT_NE(a.to_csv().find("counter,c,,7"), std::string::npos);
}

TEST(CostBreakdown, AccumulatesAndDerivesFromTally) {
  storage::CostBreakdown a;
  a.messages = 10;
  a.query_messages = 6;
  a.reply_messages = 4;
  storage::CostBreakdown b = a;
  b += a;
  EXPECT_EQ(b.messages, 20u);
  EXPECT_EQ(b.query_messages, 12u);
  EXPECT_EQ(b.reply_messages, 8u);

  net::TrafficTally t;
  t.total = 9;
  t.by_kind[static_cast<std::size_t>(net::MessageKind::Query)] = 5;
  t.by_kind[static_cast<std::size_t>(net::MessageKind::SubQuery)] = 1;
  t.by_kind[static_cast<std::size_t>(net::MessageKind::Reply)] = 3;
  const storage::CostBreakdown c = storage::cost_of(t);
  EXPECT_EQ(c.messages, 9u);
  EXPECT_EQ(c.query_messages, 6u);  // Query + SubQuery forwarding legs
  EXPECT_EQ(c.reply_messages, 3u);

  // Receipts inherit the triple: one assignment moves the whole cost.
  storage::QueryReceipt r;
  r.cost() = c;
  EXPECT_EQ(r.messages, 9u);
  EXPECT_EQ(r.reply_messages, 3u);
}

TEST(LoadReport, GiniAndIndexNodeGini) {
  // Perfectly even among loaded nodes.
  const obs::LoadReport even = obs::load_report({0, 5, 5, 5, 0});
  EXPECT_EQ(even.max_load, 5u);
  EXPECT_EQ(even.loaded_nodes, 3u);
  EXPECT_DOUBLE_EQ(even.gini_loaded, 0.0);
  EXPECT_GT(even.gini, 0.0);  // the zeros make the all-node Gini positive

  // One node holds everything: both Ginis high, gini_loaded of a single
  // node degenerates to 0.
  const obs::LoadReport spike = obs::load_report({0, 0, 0, 12});
  EXPECT_NEAR(spike.gini, 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(spike.gini_loaded, 0.0);
  EXPECT_DOUBLE_EQ(spike.mean_loaded, 12.0);

  // Skew among the loaded nodes registers in gini_loaded.
  const obs::LoadReport skew = obs::load_report({0, 1, 1, 18});
  EXPECT_GT(skew.gini_loaded, 0.5);
  EXPECT_EQ(obs::gini_coefficient({}), 0.0);
  EXPECT_EQ(obs::gini_coefficient({0, 0}), 0.0);
}

TEST(Telemetry, ParsesMetricsSpecs) {
  obs::TelemetryConfig cfg;
  std::string err;
  EXPECT_TRUE(obs::parse_metrics_spec("off", &cfg, &err));
  EXPECT_FALSE(cfg.wants_metrics());
  EXPECT_TRUE(obs::parse_metrics_spec("json", &cfg, &err));
  EXPECT_EQ(cfg.format, obs::MetricsFormat::Json);
  EXPECT_TRUE(cfg.path.empty());
  EXPECT_TRUE(obs::parse_metrics_spec("csv:/tmp/m.csv", &cfg, &err));
  EXPECT_EQ(cfg.format, obs::MetricsFormat::Csv);
  EXPECT_EQ(cfg.path, "/tmp/m.csv");
  EXPECT_FALSE(obs::parse_metrics_spec("yaml", &cfg, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Trace, RingSinkKeepsMostRecentHops) {
  obs::RingTraceSink ring(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    obs::HopRecord hop;
    hop.msg_id = i;
    hop.hop_index = static_cast<std::uint16_t>(i);
    ring.on_hop(hop);
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.size(), 3u);
  const auto hops = ring.drain();
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops.front().msg_id, 2u);  // oldest retained
  EXPECT_EQ(hops.back().msg_id, 4u);
}

TEST(Trace, NetworkEmitsOrderedHopsWhenAttached) {
  benchsup::TestbedConfig config;
  config.nodes = 120;
  config.seed = 3;
  config.trace_capacity = 1 << 14;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  ASSERT_NE(tb.pool_trace(), nullptr);
  EXPECT_GT(tb.pool_trace()->recorded(), 0u);

  // Within one message, hop indices ascend from 0 along the path.
  std::uint64_t multi_hop_messages = 0;
  std::uint64_t last_msg = ~std::uint64_t{0};
  std::uint16_t last_hop = 0;
  for (const auto& hop : tb.pool_trace()->drain()) {
    if (hop.msg_id == last_msg) {
      EXPECT_EQ(hop.hop_index, last_hop + 1);
      ++multi_hop_messages;
    }
    last_msg = hop.msg_id;
    last_hop = hop.hop_index;
  }
  EXPECT_GT(multi_hop_messages, 0u);
  EXPECT_NE(tb.pool_trace()->to_csv().find("msg_id"), std::string::npos);
}

// The telemetry surface and the receipt accounting must agree: the sum of
// per-node transmit counters equals the ledger totals the receipts were
// cut from.
TEST(Conservation, NodeTxMatchesTrafficAndReceipts) {
  benchsup::TestbedConfig config;
  config.nodes = 150;
  config.seed = 7;
  benchsup::Testbed tb(config);
  tb.insert_workload();

  const auto sum_tx = [](const net::Network& net) {
    std::uint64_t tx = 0;
    for (const auto& n : net.nodes()) tx += n.tx_count;
    return tx;
  };

  // After insertion the ledgers were captured and cleared, but the node
  // counters persist: Σ tx == insertion messages.
  EXPECT_EQ(sum_tx(tb.pool_network()), tb.pool_insert_traffic().total);
  EXPECT_EQ(sum_tx(tb.dim_network()), tb.dim_insert_traffic().total);

  // Query receipts: Σ receipt.messages == growth of Σ node tx counters.
  const std::uint64_t pool_tx0 = sum_tx(tb.pool_network());
  const std::uint64_t dim_tx0 = sum_tx(tb.dim_network());
  query::QueryGenerator qgen({.dims = 3}, 99);
  Rng sink_rng(5);
  std::uint64_t pool_msgs = 0, dim_msgs = 0;
  for (int i = 0; i < 12; ++i) {
    const auto q = qgen.exact_range();
    const auto sink = tb.random_node(sink_rng);
    pool_msgs += tb.pool().query(sink, q).messages;
    dim_msgs += tb.dim().query(sink, q).messages;
  }
  EXPECT_EQ(sum_tx(tb.pool_network()) - pool_tx0, pool_msgs);
  EXPECT_EQ(sum_tx(tb.dim_network()) - dim_tx0, dim_msgs);

  // Same conservation through the bridge: the published per-node tx lanes
  // sum to the receipts + insertion.
  obs::Snapshot snap;
  benchsup::publish_network(snap, "pool", tb.pool_network());
  const auto& lane = snap.series.at("pool.node.tx");
  const double lane_sum = std::accumulate(lane.begin(), lane.end(), 0.0);
  EXPECT_DOUBLE_EQ(
      lane_sum,
      static_cast<double>(tb.pool_insert_traffic().total + pool_msgs));
  EXPECT_EQ(snap.counters.at("pool.net.retries"), 0u);  // ideal links
}

TEST(Conservation, GhtNodeTxMatchesReceipts) {
  benchsup::TestbedConfig config;
  config.nodes = 120;
  config.seed = 11;
  benchsup::Testbed tb(config);
  tb.insert_workload();

  std::vector<Point> pts;
  for (const auto& n : tb.pool_network().nodes()) pts.push_back(n.pos);
  net::Network net(std::move(pts), tb.pool_network().field(),
                   config.radio_range);
  routing::Gpsr gpsr(net);
  ght::GhtSystem ght(net, gpsr, config.dims);
  std::uint64_t expected = 0;
  for (const auto& e : tb.oracle().all())
    expected += ght.insert(e.source, e).messages;
  query::QueryGenerator qgen({.dims = 3}, 17);
  for (int i = 0; i < 8; ++i)
    expected += ght.query(0, qgen.exact_point()).messages;

  std::uint64_t tx = 0;
  for (const auto& n : net.nodes()) tx += n.tx_count;
  EXPECT_EQ(tx, expected);
}

TEST(Describe, SystemsReportTheirParameters) {
  benchsup::TestbedConfig config;
  config.nodes = 120;
  config.seed = 2;
  benchsup::Testbed tb(config);
  EXPECT_NE(tb.pool().describe().find("Pool (l=10"), std::string::npos);
  EXPECT_NE(tb.pool().describe().find("alpha=5"), std::string::npos);
  EXPECT_NE(tb.dim().describe().find("DIM (dims=3"), std::string::npos);
  EXPECT_NE(tb.dim().describe().find("zones="), std::string::npos);
  // The base-class default falls back to name().
  EXPECT_EQ(std::string(tb.pool().name()), "Pool");
}

// Registry-backed component stats: the old struct accessors are views
// over the namespaced registry counters.
TEST(RegistryViews, RouteCacheAndEngineShareOneRegistry) {
  benchsup::TestbedConfig config;
  config.nodes = 150;
  config.seed = 4;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  engine::QueryEngine eng(tb.pool(), {}, &tb.metrics(), "pool.engine");
  query::QueryGenerator qgen({.dims = 3}, 31);
  for (int i = 0; i < 6; ++i) eng.take(eng.submit(3, qgen.exact_range()));

  const auto snap = tb.metrics().scrape();
  EXPECT_EQ(snap.counters.at("pool.engine.submitted"), 6u);
  EXPECT_EQ(snap.counters.at("pool.engine.submitted"),
            eng.stats().submitted);
  ASSERT_NE(tb.pool_route_cache(), nullptr);
  EXPECT_EQ(snap.counters.at("pool.route_cache.hits"),
            tb.pool_route_cache()->stats().hits);
  EXPECT_GT(snap.counters.at("pool.route_cache.hits") +
                snap.counters.at("pool.route_cache.misses"),
            0u);
}

// The hot-path buffer pools surface their lifetime accounting in every
// scrape (PR 6 satellite): counters for the flows, gauges for the
// levels.
TEST(Telemetry, BufferPoolStatsPublish) {
  common::BufferPool<net::NodeId> pool(true);
  {
    std::vector<net::NodeId> a = pool.acquire();
    a.push_back(7);
    pool.release(std::move(a));
  }
  std::vector<net::NodeId> b = pool.acquire();  // reuses a's capacity

  obs::Snapshot snap;
  benchsup::publish_buffer_pool(snap, "pool", pool.stats());
  EXPECT_EQ(snap.counters.at("pool.buffers.acquires"), 2u);
  EXPECT_EQ(snap.counters.at("pool.buffers.reuses"), 1u);
  EXPECT_EQ(snap.counters.at("pool.buffers.releases"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("pool.buffers.outstanding"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("pool.buffers.high_water"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("pool.buffers.reuse_rate"), 0.5);
}

TEST(Telemetry, TestbedScrapeIncludesBufferPools) {
  benchsup::TestbedConfig config;
  config.nodes = 120;
  config.seed = 9;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  const obs::Snapshot snap = benchsup::scrape_testbed(tb);
  ASSERT_TRUE(snap.counters.count("pool.buffers.acquires"));
  EXPECT_GT(snap.counters.at("pool.buffers.acquires"), 0u);
  ASSERT_TRUE(snap.gauges.count("pool.buffers.reuse_rate"));
  // The scrape emits through the same deterministic JSON path as every
  // other instrument.
  EXPECT_NE(snap.to_json().find("pool.buffers.high_water"),
            std::string::npos);
}
