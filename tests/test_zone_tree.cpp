#include "dim/zone_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "net/deployment.h"

namespace poolnet::dim {
namespace {

using net::Network;
using net::NodeId;
using storage::Event;
using storage::RangeQuery;

Network random_net(std::uint64_t seed, std::size_t n = 200) {
  Rng rng(seed);
  const double side = net::field_side_for_density(n, 40.0, 20.0);
  const Rect field{0, 0, side, side};
  auto pts = net::deploy_uniform(n, field, rng);
  return Network(std::move(pts), field, 40.0);
}

Event make_event(std::uint64_t id, std::initializer_list<double> vals) {
  Event e;
  e.id = id;
  e.source = 0;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

TEST(ZoneTree, EveryNodeOwnsExactlyOneLeaf) {
  const auto net = random_net(1);
  const ZoneTree tree(net, 3);
  std::set<NodeId> owners;
  std::size_t nonempty = 0;
  for (const ZoneIndex li : tree.leaves()) {
    const auto& z = tree.zone(li);
    ASSERT_NE(z.owner, net::kNoNode);
    if (z.region.contains(net.position(z.owner))) {
      // Owner inside its region => a real (non-backup) zone.
      owners.insert(z.owner);
      ++nonempty;
    }
  }
  EXPECT_EQ(owners.size(), net.size());
  EXPECT_EQ(nonempty, net.size());
}

TEST(ZoneTree, LeafRegionsPartitionTheField) {
  const auto net = random_net(2, 100);
  const ZoneTree tree(net, 3);
  double area = 0.0;
  for (const ZoneIndex li : tree.leaves()) {
    const auto& r = tree.zone(li).region;
    area += r.width() * r.height();
  }
  const auto& f = net.field();
  EXPECT_NEAR(area, f.width() * f.height(), 1e-6 * f.width() * f.height());
}

TEST(ZoneTree, LeafCodesArePrefixFree) {
  const auto net = random_net(3, 100);
  const ZoneTree tree(net, 3);
  const auto& leaves = tree.leaves();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    for (std::size_t j = 0; j < leaves.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(
          tree.zone(leaves[i]).code.prefix_of(tree.zone(leaves[j]).code));
    }
  }
}

TEST(ZoneTree, EventLandsInZoneWhoseRangesContainIt) {
  const auto net = random_net(4);
  const ZoneTree tree(net, 3);
  Rng rng(44);
  for (int trial = 0; trial < 500; ++trial) {
    const auto e = make_event(
        trial, {rng.uniform(), rng.uniform(), rng.uniform()});
    const ZoneIndex li = tree.leaf_for_event(e);
    const auto& z = tree.zone(li);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_TRUE(z.ranges[d].contains(e.values[d]))
          << "dim " << d << " value " << e.values[d] << " range ["
          << z.ranges[d].lo << "," << z.ranges[d].hi << ")";
    }
  }
}

TEST(ZoneTree, BoundaryValuesResolve) {
  const auto net = random_net(5, 50);
  const ZoneTree tree(net, 2);
  // 0.0, 1.0 and exactly 0.5 must all map to some leaf without asserting.
  for (const auto& vals : {std::pair{0.0, 0.0}, {1.0, 1.0}, {0.5, 0.5},
                           {0.0, 1.0}, {0.5, 1.0}}) {
    const auto e = make_event(1, {vals.first, vals.second});
    const ZoneIndex li = tree.leaf_for_event(e);
    const auto& z = tree.zone(li);
    EXPECT_TRUE(z.is_leaf());
  }
}

TEST(ZoneTree, LeafForPositionFindsOwner) {
  const auto net = random_net(6);
  const ZoneTree tree(net, 3);
  for (NodeId id = 0; id < net.size(); ++id) {
    const ZoneIndex li = tree.leaf_for_position(net.position(id));
    EXPECT_EQ(tree.zone(li).owner, id);
  }
}

TEST(ZoneTree, OverlappingLeavesMatchBruteForce) {
  const auto net = random_net(7);
  const ZoneTree tree(net, 3);
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const double s0 = rng.uniform(0, 0.5), s1 = rng.uniform(0, 0.5),
                 s2 = rng.uniform(0, 0.5);
    const double l0 = rng.uniform(0, 1 - s0), l1 = rng.uniform(0, 1 - s1),
                 l2 = rng.uniform(0, 1 - s2);
    const RangeQuery q({{l0, l0 + s0}, {l1, l1 + s1}, {l2, l2 + s2}});
    auto got = tree.leaves_overlapping(q);
    std::sort(got.begin(), got.end());
    std::vector<ZoneIndex> want;
    for (const ZoneIndex li : tree.leaves()) {
      if (ZoneTree::zone_intersects(tree.zone(li), q)) want.push_back(li);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST(ZoneTree, EnclosingZoneContainsQuery) {
  const auto net = random_net(8);
  const ZoneTree tree(net, 3);
  Rng rng(88);
  for (int trial = 0; trial < 100; ++trial) {
    const double s = rng.uniform(0, 0.3);
    const double l0 = rng.uniform(0, 1 - s), l1 = rng.uniform(0, 1 - s),
                 l2 = rng.uniform(0, 1 - s);
    const RangeQuery q({{l0, l0 + s}, {l1, l1 + s}, {l2, l2 + s}});
    const ZoneIndex zi = tree.enclosing_zone(q);
    const auto& z = tree.zone(zi);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_LE(z.ranges[d].lo, q.bound(d).lo);
      EXPECT_GE(z.ranges[d].hi, q.bound(d).hi);
    }
  }
}

TEST(ZoneTree, SmallQueriesPruneMostLeaves) {
  // The k-d pruning must be effective: a tiny query box overlaps a small
  // fraction of zones.
  const auto net = random_net(9, 400);
  const ZoneTree tree(net, 3);
  const RangeQuery tiny({{0.30, 0.32}, {0.50, 0.52}, {0.70, 0.72}});
  EXPECT_LT(tree.leaves_overlapping(tiny).size(), tree.leaf_count() / 10);
}

TEST(ZoneTree, FullQueryVisitsAllLeaves) {
  const auto net = random_net(10, 100);
  const ZoneTree tree(net, 3);
  const RangeQuery all({{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
  EXPECT_EQ(tree.leaves_overlapping(all).size(), tree.leaf_count());
}

TEST(ZoneTree, DimensionalityValidated) {
  const auto net = random_net(11, 50);
  EXPECT_THROW(ZoneTree(net, 0), poolnet::ConfigError);
  EXPECT_THROW(ZoneTree(net, storage::kMaxDims + 1), poolnet::ConfigError);
}

TEST(ZoneTree, AttributeRangesHalveAlternately) {
  // Depth d splits attribute d % k: the root's children halve attr 0.
  const auto net = random_net(12, 100);
  const ZoneTree tree(net, 3);
  const auto& root = tree.zone(tree.root());
  ASSERT_FALSE(root.is_leaf());
  const auto& lo = tree.zone(root.lower);
  const auto& hi = tree.zone(root.upper);
  EXPECT_EQ(lo.ranges[0], (HalfOpenInterval{0.0, 0.5}));
  EXPECT_EQ(hi.ranges[0], (HalfOpenInterval{0.5, 1.0}));
  EXPECT_EQ(lo.ranges[1], (HalfOpenInterval{0.0, 1.0}));
}

}  // namespace
}  // namespace poolnet::dim
