// Scalar-vs-kernel equivalence for the columnar scan path (DESIGN.md §14).
//
// The two-step kernel (zone-map block veto, then branch-free selection
// bitmap) must visit exactly the rows the naive per-row predicate
// (RangeQuery::matches) accepts, in insertion order — on every store that
// runs it: the raw ColumnStore, Pool cells, DIM leaves, GHT home stores,
// the central oracle, and the paged page-layout twin. Randomized sweeps
// cover dims 1..5, block-boundary sizes (0, 1, kBlockRows±1), and the
// edge cases the bitmap math is most likely to get wrong: bounds landing
// exactly on stored values, values at the domain extremes, duplicated
// attribute values, and tail words narrower than 64 rows.
#include "storage/column/column_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench_support/testbed.h"
#include "common/rng.h"
#include "ght/ght_system.h"
#include "net/deployment.h"
#include "query/query_gen.h"
#include "routing/gpsr.h"
#include "storage/brute_force_store.h"
#include "storage/paged/paged_store.h"
#include "storage/range_query.h"

namespace poolnet::storage::column {
namespace {

Event make_event(std::uint64_t id, const std::vector<double>& vals,
                 double t = 0.0) {
  Event e;
  e.id = id;
  e.source = static_cast<net::NodeId>(id % 97);
  e.detected_at = t;
  for (const double v : vals) e.values.push_back(v);
  return e;
}

/// Ground truth: every row whose event RangeQuery::matches accepts, in
/// row (= insertion) order.
std::vector<std::size_t> scalar_rows(const ColumnStore& cs,
                                     const RangeQuery& q,
                                     bool skip_replicas = false) {
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < cs.size(); ++r) {
    if (skip_replicas && cs.replica_at(r)) continue;
    if (q.matches(cs.event_at(r))) rows.push_back(r);
  }
  return rows;
}

std::vector<std::size_t> kernel_rows(const ColumnStore& cs,
                                     const RangeQuery& q,
                                     bool skip_replicas = false) {
  std::vector<std::size_t> rows;
  cs.scan(q, skip_replicas, [&](std::size_t r) { rows.push_back(r); });
  return rows;
}

RangeQuery random_query(Rng& rng, std::size_t dims) {
  RangeQuery::Bounds bounds;
  for (std::size_t d = 0; d < dims; ++d) {
    double a = rng.uniform();
    double b = rng.uniform();
    if (a > b) std::swap(a, b);
    bounds.push_back({a, b});
  }
  return RangeQuery(bounds);
}

/// A query whose bounds sit exactly on stored attribute values — the
/// >=/<= closed-interval edges the branch-free predicate must keep.
RangeQuery pinned_query(const ColumnStore& cs, Rng& rng) {
  const std::size_t lo_row =
      static_cast<std::size_t>(rng.uniform_int(0, cs.size() - 1));
  const std::size_t hi_row =
      static_cast<std::size_t>(rng.uniform_int(0, cs.size() - 1));
  RangeQuery::Bounds bounds;
  for (std::size_t d = 0; d < cs.dims(); ++d) {
    double a = cs.value_at(lo_row, d);
    double b = cs.value_at(hi_row, d);
    if (a > b) std::swap(a, b);
    bounds.push_back({a, b});
  }
  return RangeQuery(bounds);
}

TEST(ColumnStoreKernel, MatchesScalarAcrossDimsSizesSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    for (std::size_t dims = 1; dims <= 5; ++dims) {
      for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                  kBlockRows - 1, kBlockRows, kBlockRows + 1,
                                  3 * kBlockRows + 17}) {
        Rng rng(seed * 1000003 + dims * 131 + n);
        ColumnStore cs(dims);
        for (std::size_t i = 0; i < n; ++i) {
          std::vector<double> vals;
          for (std::size_t d = 0; d < dims; ++d) vals.push_back(rng.uniform());
          cs.append(make_event(i, vals));
        }
        for (int qi = 0; qi < 8; ++qi) {
          const RangeQuery q = random_query(rng, dims);
          EXPECT_EQ(kernel_rows(cs, q), scalar_rows(cs, q))
              << "seed=" << seed << " dims=" << dims << " n=" << n;
        }
        if (n > 0) {
          for (int qi = 0; qi < 4; ++qi) {
            const RangeQuery q = pinned_query(cs, rng);
            EXPECT_EQ(kernel_rows(cs, q), scalar_rows(cs, q))
                << "pinned seed=" << seed << " dims=" << dims << " n=" << n;
          }
        }
      }
    }
  }
}

TEST(ColumnStoreKernel, EdgeValuesAndDuplicatedAttributes) {
  // Values at the domain extremes, runs of identical values, and events
  // whose attributes duplicate each other across dimensions.
  ColumnStore cs(3);
  std::uint64_t id = 0;
  for (std::size_t rep = 0; rep < kBlockRows + 5; ++rep) {
    cs.append(make_event(id++, {0.0, 0.0, 0.0}));
    cs.append(make_event(id++, {1.0, 1.0, 1.0}));
    cs.append(make_event(id++, {0.5, 0.5, 0.5}));
    cs.append(make_event(id++, {0.25, 0.5, 0.25}));
  }
  Rng rng(99);
  const RangeQuery queries[] = {
      RangeQuery({{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}}),  // point at min
      RangeQuery({{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}}),  // point at max
      RangeQuery({{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}),  // duplicated point
      RangeQuery({{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}}),  // everything
      RangeQuery({{0.25, 0.5}, {0.5, 0.5}, {0.25, 0.25}}),
      RangeQuery({{0.0, 0.49}, {0.0, 0.49}, {0.0, 0.49}}),
      random_query(rng, 3),
  };
  for (const auto& q : queries)
    EXPECT_EQ(kernel_rows(cs, q), scalar_rows(cs, q)) << q;

  // Empty store: the ±inf zone-map identity must veto every block (there
  // are none) without the kernel visiting anything.
  ColumnStore empty(3);
  for (const auto& q : queries) EXPECT_TRUE(kernel_rows(empty, q).empty());
}

TEST(ColumnStoreKernel, ReplicaSkippingMatchesScalar) {
  Rng rng(2024);
  ColumnStore cs(2, /*with_meta=*/true);
  for (std::size_t i = 0; i < 2 * kBlockRows + 31; ++i) {
    const bool replica = rng.uniform() < 0.4;
    cs.append(make_event(i, {rng.uniform(), rng.uniform()}),
              static_cast<net::NodeId>(i % 13), replica);
  }
  for (int qi = 0; qi < 16; ++qi) {
    const RangeQuery q = random_query(rng, 2);
    EXPECT_EQ(kernel_rows(cs, q, true), scalar_rows(cs, q, true));
    EXPECT_EQ(kernel_rows(cs, q, false), scalar_rows(cs, q, false));
  }
}

TEST(ColumnStoreKernel, EraseIfCompactsStablyAndRebuildsZoneMaps) {
  Rng rng(7);
  ColumnStore cs(3);
  std::vector<Event> reference;
  for (std::size_t i = 0; i < 2 * kBlockRows + 9; ++i) {
    const Event e = make_event(
        i, {rng.uniform(), rng.uniform(), rng.uniform()}, rng.uniform());
    cs.append(e);
    reference.push_back(e);
  }
  // Drop a pseudo-random subset; survivors must keep insertion order.
  const auto drop = [](std::uint64_t id) { return id % 3 == 1; };
  const std::size_t removed = cs.erase_if(
      [&](std::size_t row) { return drop(cs.id_at(row)); });
  std::vector<Event> expect;
  for (const Event& e : reference)
    if (!drop(e.id)) expect.push_back(e);
  ASSERT_EQ(removed, reference.size() - expect.size());
  ASSERT_EQ(cs.size(), expect.size());
  for (std::size_t r = 0; r < cs.size(); ++r)
    EXPECT_EQ(cs.event_at(r), expect[r]);
  // Zone maps were rebuilt over survivors: the kernel still agrees with
  // the scalar predicate on fresh queries.
  for (int qi = 0; qi < 8; ++qi) {
    const RangeQuery q = random_query(rng, 3);
    EXPECT_EQ(kernel_rows(cs, q), scalar_rows(cs, q));
  }
}

TEST(ColumnStoreKernel, ZoneMapsSkipDisjointBlocks) {
  // Two value clusters a block apart: a query inside one cluster must
  // skip the other cluster's blocks outright.
  ColumnStore cs(2);
  ScanStats stats;
  cs.set_stats(&stats);
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < kBlockRows; ++i)
    cs.append(make_event(id++, {0.1, 0.1}));
  for (std::size_t i = 0; i < kBlockRows; ++i)
    cs.append(make_event(id++, {0.9, 0.9}));
  const RangeQuery q({{0.85, 0.95}, {0.85, 0.95}});
  const auto rows = kernel_rows(cs, q);
  EXPECT_EQ(rows.size(), kBlockRows);
  EXPECT_EQ(stats.blocks_skipped, 1u);
  EXPECT_EQ(stats.rows_scanned, kBlockRows);
  EXPECT_GT(stats.bytes_touched, 0u);
}

// ------------------------------------------------------------- the systems

std::vector<std::uint64_t> ids(const std::vector<Event>& evs) {
  std::vector<std::uint64_t> out;
  out.reserve(evs.size());
  for (const auto& e : evs) out.push_back(e.id);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SystemScanEquivalence, PoolAndDimAgreeWithOracle) {
  benchsup::TestbedConfig config;
  config.nodes = 250;
  config.seed = 61;
  benchsup::Testbed tb(config);
  tb.insert_workload();
  Rng rng(62);
  query::QueryGenerator qgen({.dims = 3}, 63);
  for (int i = 0; i < 24; ++i) {
    const RangeQuery q = i % 3 == 2 ? qgen.partial_range(1)
                                    : qgen.exact_range();
    const auto oracle = ids(tb.oracle().matching(q));
    const auto sink = tb.random_node(rng);
    EXPECT_EQ(ids(tb.pool().query(sink, q).events), oracle) << q;
    EXPECT_EQ(ids(tb.dim().query(sink, q).events), oracle) << q;
  }
}

TEST(SystemScanEquivalence, GhtAgreesWithOracle) {
  const std::size_t n = 200;
  const double side = net::field_side_for_density(n, 40.0, 20.0);
  const Rect field{0, 0, side, side};
  std::unique_ptr<net::Network> network;
  for (std::uint64_t attempt = 0;; ++attempt) {
    Rng rng(71 + attempt * 7919);
    auto pts = net::deploy_uniform(n, field, rng);
    auto candidate =
        std::make_unique<net::Network>(std::move(pts), field, 40.0);
    if (candidate->is_connected()) {
      network = std::move(candidate);
      break;
    }
  }
  routing::Gpsr gpsr(*network);
  ght::GhtSystem ght(*network, gpsr, 3);
  BruteForceStore oracle(3);
  Rng rng(72);
  for (std::uint64_t i = 0; i < 600; ++i) {
    const Event e = make_event(
        i, {rng.uniform(), rng.uniform(), rng.uniform()});
    ght.insert(e.source, e);
    oracle.insert(e.source, e);
  }
  query::QueryGenerator qgen({.dims = 3}, 73);
  for (int i = 0; i < 24; ++i) {
    const RangeQuery q = i % 3 == 2 ? qgen.partial_range(1)
                                    : qgen.exact_range();
    EXPECT_EQ(ids(ght.query(0, q).events), ids(oracle.matching(q))) << q;
  }
}

TEST(SystemScanEquivalence, PagedStoreMatchesOracleByteIdentically) {
  // The page-layout twin of the kernel, over block-boundary sizes and a
  // page small enough to force multi-page chains.
  for (std::size_t dims = 1; dims <= 5; ++dims) {
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, kBlockRows, kBlockRows + 1}) {
      PagedStoreOptions opt;
      opt.page_bytes = 256;  // a handful of records per page
      opt.pool_pages = 4;
      PagedStore paged(dims, opt);
      BruteForceStore oracle(dims);
      Rng rng(dims * 1009 + n);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::vector<double> vals;
        for (std::size_t d = 0; d < dims; ++d) vals.push_back(rng.uniform());
        const Event e = make_event(i, vals);
        paged.insert(e.source, e);
        oracle.insert(e.source, e);
      }
      for (int qi = 0; qi < 8; ++qi) {
        const RangeQuery q = random_query(rng, dims);
        // Byte-identical: same events, same (ascending-id) order.
        EXPECT_EQ(paged.matching(q), oracle.matching(q))
            << "dims=" << dims << " n=" << n;
      }
      EXPECT_EQ(paged.matching(RangeQuery(RangeQuery::Bounds(
                    dims, ClosedInterval{0.0, 1.0}))),
                oracle.all());
    }
  }
}

}  // namespace
}  // namespace poolnet::storage::column
