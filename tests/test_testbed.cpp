#include "bench_support/testbed.h"

#include <gtest/gtest.h>

#include "bench_support/experiment.h"
#include "query/query_gen.h"

namespace poolnet::benchsup {
namespace {

TestbedConfig small_config(std::uint64_t seed = 1, std::size_t nodes = 200) {
  TestbedConfig config;
  config.nodes = nodes;
  config.seed = seed;
  return config;
}

TEST(Testbed, BuildsConnectedNetworksOverSamePositions) {
  Testbed tb(small_config());
  EXPECT_TRUE(tb.pool_network().is_connected());
  EXPECT_TRUE(tb.dim_network().is_connected());
  ASSERT_EQ(tb.pool_network().size(), tb.dim_network().size());
  for (net::NodeId i = 0; i < tb.pool_network().size(); ++i)
    EXPECT_EQ(tb.pool_network().position(i), tb.dim_network().position(i));
}

TEST(Testbed, DensityNearPaperTarget) {
  Testbed tb(small_config(2, 900));
  EXPECT_GT(tb.pool_network().average_degree(), 14.0);
  EXPECT_LT(tb.pool_network().average_degree(), 22.0);
}

TEST(Testbed, InsertWorkloadFillsAllThreeStores) {
  Testbed tb(small_config(3));
  const auto n = tb.insert_workload();
  EXPECT_EQ(n, 200u * 3u);
  EXPECT_EQ(tb.pool().stored_count(), n);
  EXPECT_EQ(tb.dim().stored_count(), n);
  EXPECT_EQ(tb.oracle().stored_count(), n);
}

TEST(Testbed, InsertTrafficTrackedPerSystem) {
  Testbed tb(small_config(4));
  tb.insert_workload();
  EXPECT_GT(tb.pool_insert_traffic().total, 0u);
  EXPECT_GT(tb.dim_insert_traffic().total, 0u);
  // Query-time ledgers start clean.
  EXPECT_EQ(tb.pool_network().traffic().total, 0u);
  EXPECT_EQ(tb.dim_network().traffic().total, 0u);
}

TEST(Testbed, DeterministicAcrossRebuilds) {
  Testbed a(small_config(5));
  Testbed b(small_config(5));
  a.insert_workload();
  b.insert_workload();
  EXPECT_EQ(a.pool_insert_traffic().total, b.pool_insert_traffic().total);
  EXPECT_EQ(a.dim_insert_traffic().total, b.dim_insert_traffic().total);
}

TEST(PairedRunner, BothSystemsMatchOracleEverywhere) {
  Testbed tb(small_config(6));
  tb.insert_workload();
  query::QueryGenerator qgen({.dims = 3}, 66);
  const auto queries =
      generate_queries(25, [&] { return qgen.exact_range(); });
  const auto run = run_paired_queries(tb, queries, 67);
  EXPECT_EQ(run.queries, 25u);
  EXPECT_EQ(run.pool_mismatches, 0u);
  EXPECT_EQ(run.dim_mismatches, 0u);
  EXPECT_GT(run.pool.messages.mean(), 0.0);
  EXPECT_GT(run.dim.messages.mean(), 0.0);
  EXPECT_GT(run.pool.energy_mj.mean(), 0.0);
}

TEST(PairedRunner, MergeAccumulates) {
  Testbed tb(small_config(7));
  tb.insert_workload();
  query::QueryGenerator qgen({.dims = 3}, 77);
  const auto queries =
      generate_queries(10, [&] { return qgen.exact_range(); });
  const auto a = run_paired_queries(tb, queries, 1);
  auto total = run_paired_queries(tb, queries, 2);
  merge_into(total, a);
  EXPECT_EQ(total.queries, 20u);
  EXPECT_EQ(total.pool.messages.count(), 20u);
}

TEST(Experiment, FmtFormatsFixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
  EXPECT_EQ(fmt(0.5), "0.5");
}

TEST(Experiment, GenerateQueriesCallsFactoryNTimes) {
  int calls = 0;
  const auto qs = generate_queries(7, [&] {
    ++calls;
    return storage::RangeQuery({{0.0, 1.0}});
  });
  EXPECT_EQ(qs.size(), 7u);
  EXPECT_EQ(calls, 7);
}

}  // namespace
}  // namespace poolnet::benchsup
