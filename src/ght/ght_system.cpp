#include "ght/ght_system.h"

#include <cmath>
#include <cstdio>
#include <queue>

#include "common/error.h"

namespace poolnet::ght {

using storage::Event;
using storage::InsertReceipt;
using storage::QueryReceipt;
using storage::RangeQuery;

namespace {
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

GhtSystem::GhtSystem(net::Network& network,
                     const routing::Router& router, std::size_t dims,
                     GhtConfig config)
    : net_(network),
      router_(router),
      dims_(dims),
      config_(config) {
  if (dims == 0 || dims > storage::kMaxDims)
    throw ConfigError("GHT: bad dimensionality");
  if (config.quantum <= 0.0 || config.quantum > 1.0)
    throw ConfigError("GHT: quantum must be in (0,1]");
  store_.assign(network.size(), storage::column::ColumnStore(dims));
  for (auto& cs : store_) cs.set_stats(&scan_stats_);
}

std::string GhtSystem::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "GHT (dims=%zu, quantum=%g)", dims_,
                config_.quantum);
  return buf;
}

std::uint64_t GhtSystem::key_of(const storage::Values& values) const {
  std::uint64_t key = config_.hash_seed;
  for (std::size_t d = 0; d < values.size(); ++d) {
    double v = values[d];
    if (v >= 1.0) v = 1.0 - 1e-12;
    const auto bucket =
        static_cast<std::uint64_t>(std::floor(v / config_.quantum));
    key = mix(key ^ (bucket + 0x9e3779b97f4a7c15ULL * (d + 1)));
  }
  return key;
}

Point GhtSystem::location_of(std::uint64_t key) const {
  const Rect& f = net_.field();
  const double u = static_cast<double>(mix(key) >> 11) * 0x1.0p-53;
  const double v = static_cast<double>(mix(key ^ 0xabcdef0123456789ULL) >> 11) *
                   0x1.0p-53;
  return {f.min_x + u * f.width(), f.min_y + v * f.height()};
}

net::NodeId GhtSystem::home_node(const storage::Values& values) const {
  const std::uint64_t key = key_of(values);
  const auto [it, fresh] = home_cache_.try_emplace(key, net::kNoNode);
  if (fresh) it->second = net_.nearest_alive_node(location_of(key));
  return it->second;
}

const routing::LegOutcome& GhtSystem::send_leg(net::NodeId from,
                                               net::NodeId to,
                                               net::MessageKind kind,
                                               std::uint64_t bits) {
  if (from == to) {
    // Mirror the historical bare leg exactly (self-routes still pay a
    // router lookup and a no-op path transmit) so fault-free ledgers and
    // route-cache stats stay byte-identical.
    router_.route_to_node_into(from, to, leg_scratch_.route);
    net_.transmit_path(leg_scratch_.route.path, kind, bits);
    leg_scratch_.delivered = true;
    leg_scratch_.reached = to;
    leg_scratch_.retries = 0;
    leg_scratch_.backoff_ticks = 0;
    leg_scratch_.dead_found.clear();
    return leg_scratch_;
  }
  routing::send_reliable_into(net_, router_, from, to, kind, bits, {},
                              leg_scratch_);
  fault_stats_.retries += leg_scratch_.retries;
  if (!leg_scratch_.delivered) ++fault_stats_.failed_legs;
  for (const net::NodeId d : leg_scratch_.dead_found) handle_node_failure(d);
  return leg_scratch_;
}

void GhtSystem::handle_node_failure(net::NodeId dead) {
  if (dead >= net_.size()) return;
  if (known_dead_.empty()) known_dead_.assign(net_.size(), 0);
  if (known_dead_[dead]) return;
  known_dead_[dead] = 1;

  // GHT keeps one copy per key: whatever the dead home held is gone.
  auto& events = store_[dead];
  if (!events.empty()) {
    fault_stats_.events_lost += events.size();
    stored_count_ -= events.size();
    net_.node_mut(dead).stored_events -= events.size();
    events.clear();
  }
  // Forget every cached home at the dead node; the next use of each key
  // re-walks to the nearest survivor.
  for (auto it = home_cache_.begin(); it != home_cache_.end();) {
    if (it->second == dead) {
      it = home_cache_.erase(it);
      ++fault_stats_.failovers;
    } else {
      ++it;
    }
  }
}

InsertReceipt GhtSystem::insert(net::NodeId source, const Event& event) {
  storage::validate_event(event);
  if (event.dims() != dims_)
    throw ConfigError("GHT: event dimensionality mismatch");

  net::NodeId home = home_node(event.values);
  const auto before = net_.traffic().total;
  InsertReceipt receipt;
  if (home == net::kNoNode) {  // nobody left to store at
    ++fault_stats_.events_lost;
    receipt.stored_at = net::kNoNode;
    return receipt;
  }

  const std::uint64_t bits = net_.sizes().event_bits(dims_);
  bool delivered = send_leg(source, home, net::MessageKind::Insert, bits)
                       .delivered;
  if (!delivered) {
    // The failed delivery evicted the dead home from the cache; retry
    // once toward the re-homed survivor.
    const net::NodeId rehomed = home_node(event.values);
    if (rehomed != home && rehomed != net::kNoNode) {
      home = rehomed;
      delivered =
          send_leg(source, home, net::MessageKind::Insert, bits).delivered;
    }
  }
  if (!delivered) {
    ++fault_stats_.events_lost;
    receipt.stored_at = net::kNoNode;
    receipt.messages = net_.traffic().total - before;
    return receipt;
  }

  store_[home].append(event);
  ++stored_count_;
  ++net_.node_mut(home).stored_events;

  receipt.stored_at = home;
  receipt.messages = net_.traffic().total - before;
  return receipt;
}

std::size_t GhtSystem::charge_flood(net::NodeId sink) {
  // BFS broadcast: every reached node rebroadcasts exactly once, so each
  // tree edge is one Query transmission. (Real floods cost MORE — every
  // node transmits regardless of tree membership — so this undercounts in
  // GHT's favor; Pool still wins by orders of magnitude.)
  std::vector<char> seen(net_.size(), 0);
  std::queue<net::NodeId> frontier;
  if (!net_.alive(sink)) return 0;
  frontier.push(sink);
  seen[sink] = 1;
  std::size_t reached = 1;
  const auto bits = net_.sizes().query_bits(dims_);
  while (!frontier.empty()) {
    const net::NodeId u = frontier.front();
    frontier.pop();
    for (const net::NodeId v : net_.neighbors(u)) {
      if (seen[v]) continue;
      // Broadcasts are unacked: a dead neighbor simply never rebroadcasts,
      // so the flood routes around it without charging extra attempts.
      if (!net_.alive(v)) continue;
      seen[v] = 1;
      net_.transmit(u, v, net::MessageKind::Query, bits);
      frontier.push(v);
      ++reached;
    }
  }
  return reached;
}

QueryReceipt GhtSystem::query(net::NodeId sink, const RangeQuery& q) {
  if (q.dims() != dims_)
    throw ConfigError("GHT: query dimensionality mismatch");

  QueryReceipt receipt;
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();

  if (q.type() == storage::QueryType::ExactMatchPoint) {
    // Hash the queried point; only its home node can hold exact matches.
    storage::Values point;
    for (std::size_t d = 0; d < dims_; ++d) point.push_back(q.bound(d).lo);
    net::NodeId home = home_node(point);
    bool arrived = home != net::kNoNode;
    if (arrived) {
      arrived = send_leg(sink, home, net::MessageKind::Query,
                         sizes.query_bits(dims_))
                    .delivered;
      if (!arrived) {
        // The dead home was evicted from the cache; retry once toward
        // the re-homed survivor (which now holds nothing for this key).
        const net::NodeId rehomed = home_node(point);
        if (rehomed != home && rehomed != net::kNoNode) {
          home = rehomed;
          arrived = send_leg(sink, home, net::MessageKind::Query,
                             sizes.query_bits(dims_))
                        .delivered;
        }
      }
    }
    if (arrived) {
      receipt.index_nodes_visited = 1;
      std::vector<Event> matched;
      store_[home].matching_into(q, matched);
      const auto found = static_cast<std::uint32_t>(matched.size());
      bool returned = true;
      if (found > 0 && home != sink) {
        const std::uint64_t batches = sizes.reply_batches(found);
        const std::uint64_t bits =
            sizes.reply_bits(dims_, sizes.reply_payload(found));
        const auto& back = send_leg(home, sink, net::MessageKind::Reply, bits);
        returned = back.delivered;
        for (std::uint64_t b = 1; returned && b < batches; ++b)
          net_.transmit_path(back.route.path, net::MessageKind::Reply, bits);
      }
      if (returned)
        receipt.events.insert(receipt.events.end(), matched.begin(),
                              matched.end());
    }
  } else {
    // No value locality: flood, then every holder replies directly.
    charge_flood(sink);
    for (net::NodeId n = 0; n < net_.size(); ++n) {
      if (store_[n].empty()) continue;
      if (!net_.alive(n)) {
        // The flood just exposed a silently-dead holder: absorb the loss
        // so no later query fabricates answers from destroyed storage.
        handle_node_failure(n);
        continue;
      }
      std::vector<Event> matched;
      store_[n].matching_into(q, matched);
      const auto found = static_cast<std::uint32_t>(matched.size());
      if (found > 0) {
        ++receipt.index_nodes_visited;
        bool returned = true;
        if (n != sink) {
          const std::uint64_t batches = sizes.reply_batches(found);
          const std::uint64_t bits =
              sizes.reply_bits(dims_, sizes.reply_payload(found));
          const auto& back = send_leg(n, sink, net::MessageKind::Reply, bits);
          returned = back.delivered;
          for (std::uint64_t b = 1; returned && b < batches; ++b)
            net_.transmit_path(back.route.path, net::MessageKind::Reply, bits);
        }
        if (returned)
          receipt.events.insert(receipt.events.end(), matched.begin(),
                                matched.end());
      }
    }
  }

  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

QueryReceipt GhtSystem::skyline(net::NodeId sink,
                                const storage::SkylineQuery& q) {
  if (q.dims() != dims_)
    throw ConfigError("GHT: skyline dimensionality mismatch");

  QueryReceipt receipt;
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();

  // Value hashing scatters dominance-adjacent events across the whole
  // network, so there is nothing to prune toward: flood, then every
  // holder replies with its LOCAL skyline (an event dominated at its own
  // home is dominated globally) and the sink merges.
  charge_flood(sink);
  for (net::NodeId n = 0; n < net_.size(); ++n) {
    if (store_[n].empty()) continue;
    if (!net_.alive(n)) {
      // The flood just exposed a silently-dead holder: absorb the loss
      // so no later query fabricates answers from destroyed storage.
      handle_node_failure(n);
      continue;
    }
    const auto& cs = store_[n];
    std::vector<Event> local;
    local.reserve(cs.size());
    cs.for_each([&](std::size_t row) { local.push_back(cs.event_at(row)); });
    storage::skyline_filter(q, local);
    const auto found = static_cast<std::uint32_t>(local.size());
    if (found == 0) continue;
    ++receipt.index_nodes_visited;
    bool returned = true;
    if (n != sink) {
      const std::uint64_t batches = sizes.reply_batches(found);
      const std::uint64_t bits =
          sizes.reply_bits(dims_, sizes.reply_payload(found));
      const auto& back = send_leg(n, sink, net::MessageKind::Reply, bits);
      returned = back.delivered;
      for (std::uint64_t b = 1; returned && b < batches; ++b)
        net_.transmit_path(back.route.path, net::MessageKind::Reply, bits);
    }
    if (returned)
      receipt.events.insert(receipt.events.end(), local.begin(), local.end());
  }

  storage::skyline_filter(q, receipt.events);
  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

QueryReceipt GhtSystem::k_nearest(net::NodeId sink,
                                  const storage::KNearestQuery& q) {
  if (q.dims() != dims_)
    throw ConfigError("GHT: k-NN target dimensionality mismatch");
  if (q.initial_radius < 0.0)
    throw ConfigError("GHT: k-NN initial radius must be positive");

  QueryReceipt receipt;
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();

  // No distance locality either: nearby values hash to unrelated homes,
  // so an expanding ring cannot be routed. One flood; each holder
  // replies with its local top-k and the sink keeps the best k.
  receipt.rounds = 1;
  charge_flood(sink);
  for (net::NodeId n = 0; n < net_.size(); ++n) {
    if (store_[n].empty()) continue;
    if (!net_.alive(n)) {
      handle_node_failure(n);
      continue;
    }
    const auto& cs = store_[n];
    std::vector<Event> local;
    local.reserve(cs.size());
    cs.for_each([&](std::size_t row) { local.push_back(cs.event_at(row)); });
    storage::knn_filter(q, local);
    const auto found = static_cast<std::uint32_t>(local.size());
    if (found == 0) continue;
    ++receipt.index_nodes_visited;
    bool returned = true;
    if (n != sink) {
      const std::uint64_t batches = sizes.reply_batches(found);
      const std::uint64_t bits =
          sizes.reply_bits(dims_, sizes.reply_payload(found));
      const auto& back = send_leg(n, sink, net::MessageKind::Reply, bits);
      returned = back.delivered;
      for (std::uint64_t b = 1; returned && b < batches; ++b)
        net_.transmit_path(back.route.path, net::MessageKind::Reply, bits);
    }
    if (!returned) continue;
    receipt.events.insert(receipt.events.end(), local.begin(), local.end());
    storage::knn_filter(q, receipt.events);  // keep only the running top-k
  }

  storage::knn_filter(q, receipt.events);
  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

storage::BatchQueryReceipt GhtSystem::query_batch(
    net::NodeId sink, const std::vector<RangeQuery>& queries) {
  if (queries.size() < 2) return DcsSystem::query_batch(sink, queries);
  for (const RangeQuery& q : queries)
    if (q.dims() != dims_)
      throw ConfigError("GHT: query dimensionality mismatch");
  // With dead nodes around, the merged probe's cost accounting and
  // pre-computed legs no longer hold; fall back to hardened serial
  // execution (which retries and fails over per leg).
  if (net_.has_failures()) return DcsSystem::query_batch(sink, queries);

  storage::BatchQueryReceipt batch;
  batch.per_query.resize(queries.size());
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();
  std::uint64_t serial_cost = 0;

  std::vector<std::size_t> points, floods;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    (queries[qi].type() == storage::QueryType::ExactMatchPoint ? points
                                                               : floods)
        .push_back(qi);
  }

  // Point queries: probes to the same home node merge into one. The
  // home reply carries the distinct matches of every asker.
  struct HomeGroup {
    net::NodeId home;
    std::vector<std::size_t> members;
  };
  std::vector<HomeGroup> groups;
  std::unordered_map<net::NodeId, std::size_t> group_at;
  for (const std::size_t qi : points) {
    storage::Values point;
    for (std::size_t d = 0; d < dims_; ++d)
      point.push_back(queries[qi].bound(d).lo);
    const net::NodeId home = home_node(point);
    const auto [it, fresh] = group_at.try_emplace(home, groups.size());
    if (fresh) groups.push_back({home, {}});
    groups[it->second].members.push_back(qi);
  }
  for (const HomeGroup& g : groups) {
    router_.route_to_node_into(sink, g.home, route_scratch_);
    net_.transmit_path(route_scratch_.path, net::MessageKind::Query,
                       sizes.query_bits(dims_));
    serial_cost += g.members.size() * route_scratch_.hops();
    ++batch.unique_cell_visits;
    ++batch.index_nodes_visited;
    batch.serial_cell_visits += g.members.size();

    std::vector<std::uint32_t> member_found(g.members.size(), 0);
    std::uint32_t union_found = 0;
    const auto& cs = store_[g.home];
    for (std::size_t row = 0; row < cs.size(); ++row) {
      bool any = false;
      Event e;
      for (std::size_t mi = 0; mi < g.members.size(); ++mi) {
        if (cs.row_matches(queries[g.members[mi]], row)) {
          if (!any) e = cs.event_at(row);
          any = true;
          ++member_found[mi];
          batch.per_query[g.members[mi]].events.push_back(e);
        }
      }
      if (any) ++union_found;
    }
    for (const std::size_t qi : g.members)
      batch.per_query[qi].index_nodes_visited = 1;
    if (union_found > 0 && g.home != sink) {
      router_.route_to_node_into(g.home, sink, route_scratch_);
      const std::uint64_t batches = sizes.reply_batches(union_found);
      for (std::uint64_t b = 0; b < batches; ++b) {
        net_.transmit_path(
            route_scratch_.path, net::MessageKind::Reply,
            sizes.reply_bits(dims_, sizes.reply_payload(union_found)));
      }
      for (std::size_t mi = 0; mi < g.members.size(); ++mi)
        serial_cost +=
            sizes.reply_batches(member_found[mi]) * route_scratch_.hops();
    }
  }

  // Range/partial queries: one flood serves every member — serial
  // execution floods once PER query, the dominant saving here.
  if (!floods.empty()) {
    const std::size_t reached = charge_flood(sink);
    serial_cost +=
        floods.size() * static_cast<std::uint64_t>(reached - 1);
    for (net::NodeId n = 0; n < net_.size(); ++n) {
      if (store_[n].empty()) continue;
      std::vector<std::uint32_t> member_found(floods.size(), 0);
      std::uint32_t union_found = 0;
      const auto& cs = store_[n];
      for (std::size_t row = 0; row < cs.size(); ++row) {
        bool any = false;
        Event e;
        for (std::size_t mi = 0; mi < floods.size(); ++mi) {
          if (cs.row_matches(queries[floods[mi]], row)) {
            if (!any) e = cs.event_at(row);
            any = true;
            ++member_found[mi];
            batch.per_query[floods[mi]].events.push_back(e);
          }
        }
        if (any) ++union_found;
      }
      for (std::size_t mi = 0; mi < floods.size(); ++mi) {
        if (member_found[mi] > 0)
          ++batch.per_query[floods[mi]].index_nodes_visited;
      }
      batch.serial_cell_visits += floods.size();
      ++batch.unique_cell_visits;
      if (union_found > 0) {
        ++batch.index_nodes_visited;
        if (n != sink) {
          router_.route_to_node_into(n, sink, route_scratch_);
          const std::uint64_t batches = sizes.reply_batches(union_found);
          for (std::uint64_t b = 0; b < batches; ++b) {
            net_.transmit_path(
                route_scratch_.path, net::MessageKind::Reply,
                sizes.reply_bits(dims_, sizes.reply_payload(union_found)));
          }
          for (std::size_t mi = 0; mi < floods.size(); ++mi)
            serial_cost +=
                sizes.reply_batches(member_found[mi]) * route_scratch_.hops();
        }
      }
    }
  }

  const auto delta = net_.traffic() - before;
  batch.cost() = storage::cost_of(delta);
  if (net_.loss_model().loss_probability == 0.0 && net_.extra_loss() == 0.0)
    POOLNET_ASSERT(serial_cost >= delta.total);
  batch.messages_saved =
      serial_cost >= delta.total ? serial_cost - delta.total : 0;
  return batch;
}

std::size_t GhtSystem::expire_before(double cutoff) {
  std::size_t removed = 0;
  for (net::NodeId n = 0; n < net_.size(); ++n) {
    const auto gone = store_[n].expire_before(cutoff);
    if (gone > 0) {
      removed += gone;
      net_.node_mut(n).stored_events -= gone;
    }
  }
  stored_count_ -= removed;
  return removed;
}

storage::AggregateReceipt GhtSystem::aggregate(net::NodeId sink,
                                               const RangeQuery& q,
                                               storage::AggregateKind kind,
                                               std::size_t value_dim) {
  if (q.dims() != dims_)
    throw ConfigError("GHT: query dimensionality mismatch");
  if (value_dim >= dims_)
    throw ConfigError("GHT: aggregate dimension out of range");

  storage::AggregateReceipt receipt;
  const auto before = net_.traffic();
  storage::PartialAggregate total;

  // Aggregates have the same locality problem as ranges: flood, and each
  // holder sends one fixed-size partial home.
  charge_flood(sink);
  for (net::NodeId n = 0; n < net_.size(); ++n) {
    if (store_[n].empty()) continue;
    if (!net_.alive(n)) {
      handle_node_failure(n);
      continue;
    }
    storage::PartialAggregate partial;
    const auto& cs = store_[n];
    cs.scan(q, false, [&](std::size_t row) {
      partial.add(cs.value_at(row, value_dim));
    });
    if (!partial.empty()) {
      ++receipt.index_nodes_visited;
      if (n == sink) {
        total.merge(partial);
      } else {
        // The partial only joins the aggregate if its leg delivers.
        if (send_leg(n, sink, net::MessageKind::Reply,
                     net_.sizes().aggregate_bits())
                .delivered)
          total.merge(partial);
      }
    }
  }

  receipt.result = total.finalize(kind);
  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

}  // namespace poolnet::ght
