// GHT — a Geographic Hash Table (Ratnasamy et al., MONET 2003).
//
// The original data-centric storage scheme and the paper's reference
// [13]: events are hashed BY VALUE to a geographic location and stored at
// the home node nearest that location. Lookups of a known value hash to
// the same place — an exact-match point query costs two unicasts.
//
// The paper's introduction uses GHT as the motivating negative example:
// it has no value-locality whatsoever, so a RANGE query cannot be routed
// anywhere — it must flood the network. This implementation is faithful
// to both halves: point queries are cheap, and range/partial queries fall
// back to a network-wide flood so the cost blow-up Pool eliminates can be
// measured rather than asserted.
//
// Multi-dimensional events are keyed by their value vector quantized at
// `quantum` (GHT named events by type; a quantized tuple is the natural
// multi-attribute analogue — two readings agreeing to the quantum share a
// home node).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "routing/reliable.h"
#include "routing/router.h"
#include "storage/column/column_store.h"
#include "storage/dcs_system.h"

namespace poolnet::ght {

struct GhtConfig {
  /// Value-quantization step for the hash key. Queried points must match
  /// stored values to this resolution to hash to the same home node.
  double quantum = 0.01;

  /// Salt for the key-to-location hash.
  std::uint64_t hash_seed = 0x6e7f1a2b3c4d5e6fULL;
};

class GhtSystem final : public storage::DcsSystem {
 public:
  GhtSystem(net::Network& network, const routing::Router& router,
            std::size_t dims, GhtConfig config = {});

  std::string name() const override { return "GHT"; }
  std::string describe() const override;
  std::size_t dims() const override { return dims_; }

  storage::InsertReceipt insert(net::NodeId source,
                                const storage::Event& event) override;

  /// Exact-match point queries hash to the home node (two unicasts).
  /// Everything else floods: one broadcast over the connectivity graph
  /// plus a unicast reply from every node holding matches.
  storage::QueryReceipt query(net::NodeId sink,
                              const storage::RangeQuery& query) override;

  /// Skyline by flood: value hashing gives no dominance locality at all,
  /// so every node is visited; each holder replies with its LOCAL skyline
  /// and the sink merges. The flood-baseline cost Pool's corner pruning
  /// is measured against.
  storage::QueryReceipt skyline(net::NodeId sink,
                                const storage::SkylineQuery& query) override;

  /// k-NN by flood: no distance locality either — one network-wide flood,
  /// each holder replies with its local top-k, the sink keeps the best k
  /// (always a single round).
  storage::QueryReceipt k_nearest(
      net::NodeId sink, const storage::KNearestQuery& query) override;

  /// Merged multi-query execution: point queries hashing to the same home
  /// node share one probe, all range/partial queries in the batch share a
  /// SINGLE network flood, and every answering node replies once with the
  /// distinct matching events of all askers. Per-query results are
  /// identical to serial query() calls (DESIGN.md §8).
  storage::BatchQueryReceipt query_batch(
      net::NodeId sink,
      const std::vector<storage::RangeQuery>& queries) override;

  storage::AggregateReceipt aggregate(net::NodeId sink,
                                      const storage::RangeQuery& query,
                                      storage::AggregateKind kind,
                                      std::size_t value_dim) override;

  std::size_t stored_count() const override { return stored_count_; }
  std::size_t expire_before(double cutoff) override;

  const storage::column::ScanStats* scan_stats() const override {
    return &scan_stats_;
  }

  /// Online failover: the dead node's store is counted lost (GHT keeps a
  /// single copy per key), and every cached home pointing at it is
  /// forgotten so affected keys re-home at the nearest survivor — the
  /// perimeter-walk convention applied to the survivor set. Idempotent.
  void handle_node_failure(net::NodeId dead) override;

  /// Home node for an event's (quantized) value vector.
  net::NodeId home_node(const storage::Values& values) const;

 private:
  std::uint64_t key_of(const storage::Values& values) const;
  Point location_of(std::uint64_t key) const;

  /// One reliable leg: send, accumulate retry/failure stats, and run
  /// failover for every node the delivery discovered dead. Returns a
  /// reference to the per-system scratch outcome — valid only until the
  /// next send_leg call, so consume it before sending again.
  const routing::LegOutcome& send_leg(net::NodeId from, net::NodeId to,
                                      net::MessageKind kind,
                                      std::uint64_t bits);

  /// Charges a network-wide flood rooted at `sink` (each node rebroadcasts
  /// once: n-1 Query transmissions over a BFS tree) and returns per-node
  /// visit order. The tree is recomputed per call — GHT keeps no state.
  std::size_t charge_flood(net::NodeId sink);

  net::Network& net_;
  const routing::Router& router_;
  std::size_t dims_;
  GhtConfig config_;

  /// Reused across every leg/route on the hot query/insert paths so a
  /// warm system issues them without heap traffic.
  routing::LegOutcome leg_scratch_;
  routing::RouteResult route_scratch_;
  std::vector<storage::column::ColumnStore> store_;  // per home node
  mutable storage::column::ScanStats scan_stats_;
  std::size_t stored_count_ = 0;

  /// Quantized-key → home node; the nearest_node expanding-ring search
  /// runs once per distinct key (the hash is deterministic, so so is the
  /// home node).
  mutable std::unordered_map<std::uint64_t, net::NodeId> home_cache_;

  /// Nodes whose failure has already been absorbed (failover is
  /// idempotent per node). Allocated lazily on the first failure.
  std::vector<char> known_dead_;
};

}  // namespace poolnet::ght
