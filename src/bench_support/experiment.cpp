#include "bench_support/experiment.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace poolnet::benchsup {

namespace {

/// Sorted event-id signature of a result set; order-insensitive equality.
std::vector<std::uint64_t> signature(const std::vector<storage::Event>& evs) {
  std::vector<std::uint64_t> ids;
  ids.reserve(evs.size());
  for (const auto& e : evs) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void record(SystemQueryStats& stats, const storage::QueryReceipt& r,
            double energy_delta_j) {
  stats.messages.add(static_cast<double>(r.messages));
  stats.query_messages.add(static_cast<double>(r.query_messages));
  stats.reply_messages.add(static_cast<double>(r.reply_messages));
  stats.index_nodes.add(static_cast<double>(r.index_nodes_visited));
  stats.results.add(static_cast<double>(r.events.size()));
  stats.energy_mj.add(energy_delta_j * 1e3);
}

void merge_system(SystemQueryStats& into, const SystemQueryStats& from) {
  into.messages.merge(from.messages);
  into.query_messages.merge(from.query_messages);
  into.reply_messages.merge(from.reply_messages);
  into.index_nodes.merge(from.index_nodes);
  into.results.merge(from.results);
  into.energy_mj.merge(from.energy_mj);
}

}  // namespace

PairedRun run_paired_queries(Testbed& testbed,
                             const std::vector<storage::RangeQuery>& queries,
                             std::uint64_t sink_seed) {
  PairedRun run;
  Rng sink_rng(sink_seed);
  std::vector<storage::Event> oracle_scratch;  // reused across queries
  for (const auto& q : queries) {
    const net::NodeId sink = testbed.random_node(sink_rng);
    oracle_scratch.clear();
    testbed.oracle().matching_into(q, oracle_scratch);
    const auto oracle_sig = signature(oracle_scratch);

    const double pool_e0 = testbed.pool_network().traffic().energy_j;
    const auto pool_r = testbed.pool().query(sink, q);
    const double pool_e1 = testbed.pool_network().traffic().energy_j;
    record(run.pool, pool_r, pool_e1 - pool_e0);
    if (signature(pool_r.events) != oracle_sig) ++run.pool_mismatches;

    const double dim_e0 = testbed.dim_network().traffic().energy_j;
    const auto dim_r = testbed.dim().query(sink, q);
    const double dim_e1 = testbed.dim_network().traffic().energy_j;
    record(run.dim, dim_r, dim_e1 - dim_e0);
    if (signature(dim_r.events) != oracle_sig) ++run.dim_mismatches;

    ++run.queries;
  }
  return run;
}

std::vector<storage::RangeQuery> generate_queries(
    std::size_t n, const std::function<storage::RangeQuery()>& make) {
  std::vector<storage::RangeQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(make());
  return out;
}

void merge_into(PairedRun& into, const PairedRun& from) {
  merge_system(into.pool, from.pool);
  merge_system(into.dim, from.dim);
  into.queries += from.queries;
  into.pool_mismatches += from.pool_mismatches;
  into.dim_mismatches += from.dim_mismatches;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(headers_);
  std::string rule;
  for (const auto w : widths) rule.append(w + 2, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

void print_banner(const std::string& experiment,
                  const std::string& description) {
  std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(),
              description.c_str());
}

void print_banner(const std::string& experiment,
                  const std::string& description, Testbed& testbed) {
  std::printf("\n=== %s ===\n%s\nsystems: %s; %s\n\n", experiment.c_str(),
              description.c_str(), testbed.pool().describe().c_str(),
              testbed.dim().describe().c_str());
}

}  // namespace poolnet::benchsup
