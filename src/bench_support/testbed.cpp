#include "bench_support/testbed.h"

#include "common/error.h"
#include "common/logging.h"

namespace poolnet::benchsup {

Testbed::Testbed(TestbedConfig config)
    : metrics_(std::make_unique<obs::MetricsRegistry>()),
      config_(config),
      path_pool_(std::make_unique<common::BufferPool<net::NodeId>>(
          config.pooled_buffers)) {
  const double side = net::field_side_for_density(
      config.nodes, config.radio_range, config.avg_neighbors);
  const Rect field{0.0, 0.0, side, side};

  // Re-draw until the unit-disk graph is connected; every retry derives a
  // fresh deployment stream from the master seed, so a Testbed is still a
  // pure function of its config.
  Rng master(config.seed);
  constexpr int kMaxDraws = 64;
  for (int attempt = 0; attempt < kMaxDraws; ++attempt) {
    Rng deploy = master.split();
    positions_ = net::deploy_uniform(config.nodes, field, deploy);
    auto candidate = std::make_unique<net::Network>(
        positions_, field, config.radio_range, config.sizes,
        sim::EnergyModel{}, config.loss, config.seed * 3 + 1);
    if (candidate->is_connected()) {
      pool_net_ = std::move(candidate);
      break;
    }
    POOLNET_DEBUG("Testbed: disconnected deployment, retrying (attempt "
                  << attempt << ")");
  }
  if (!pool_net_)
    throw ConfigError(
        "Testbed: could not draw a connected deployment; density too low");

  dim_net_ = std::make_unique<net::Network>(
      positions_, field, config.radio_range, config.sizes,
      sim::EnergyModel{}, config.loss, config.seed * 3 + 2);
  pool_gpsr_ = std::make_unique<routing::Gpsr>(*pool_net_);
  dim_gpsr_ = std::make_unique<routing::Gpsr>(*dim_net_);
  if (config.route_cache.enabled) {
    routing::RouteCacheConfig cc = config.route_cache;
    cc.location_quantum = config.pool.cell_size;  // α-grid bucketing
    pool_cache_ = std::make_unique<routing::RouteCache>(
        *pool_gpsr_, cc, metrics_.get(), "pool.route_cache",
        path_pool_.get());
    dim_cache_ = std::make_unique<routing::RouteCache>(
        *dim_gpsr_, cc, metrics_.get(), "dim.route_cache", path_pool_.get());
  }
  if (config.trace_capacity > 0) {
    pool_trace_ = std::make_unique<obs::RingTraceSink>(config.trace_capacity);
    dim_trace_ = std::make_unique<obs::RingTraceSink>(config.trace_capacity);
    pool_net_->set_trace(pool_trace_.get());
    dim_net_->set_trace(dim_trace_.get());
  }
  pool_ = std::make_unique<core::PoolSystem>(*pool_net_, pool_router(),
                                             config.dims, config.pool);
  dim_ = std::make_unique<dim::DimSystem>(*dim_net_, dim_router(),
                                          config.dims);
  oracle_ = std::make_unique<storage::BruteForceStore>(config.dims);
}

const routing::Router& Testbed::pool_router() const {
  if (pool_cache_) return *pool_cache_;
  return *pool_gpsr_;
}

const routing::Router& Testbed::dim_router() const {
  if (dim_cache_) return *dim_cache_;
  return *dim_gpsr_;
}

std::size_t Testbed::insert_workload() {
  query::WorkloadConfig wc = config_.workload;
  wc.dims = config_.dims;
  Rng seed_stream(config_.seed ^ 0x9e3779b97f4a7c15ULL);
  query::EventGenerator gen(wc, seed_stream());

  pool_net_->reset_traffic();
  dim_net_->reset_traffic();

  std::size_t inserted = 0;
  for (net::NodeId n = 0; n < pool_net_->size(); ++n) {
    for (std::size_t i = 0; i < config_.events_per_node; ++i) {
      const storage::Event e = gen.next(n);
      pool_->insert(n, e);
      dim_->insert(n, e);
      oracle_->insert(n, e);
      ++inserted;
    }
  }
  pool_insert_traffic_ = pool_net_->traffic();
  dim_insert_traffic_ = dim_net_->traffic();
  pool_net_->reset_traffic();
  dim_net_->reset_traffic();
  return inserted;
}

net::NodeId Testbed::random_node(Rng& rng) const {
  return static_cast<net::NodeId>(
      rng.uniform_int(0, static_cast<std::int64_t>(pool_net_->size()) - 1));
}

}  // namespace poolnet::benchsup
