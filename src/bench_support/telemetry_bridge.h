// Bridges the simulator's accounting structures into obs::Snapshot so
// every surface (CLI --metrics, bench JSON sections, CI artifacts) emits
// through the one telemetry API.
//
// Publication happens at SCRAPE time, single-threaded, after the
// deployment's work is done — the hot paths only bump plain uint64
// fields (per-node counters, registry shards); nothing here runs per
// message. Publish in deployment order for bit-stable float sums.
#pragma once

#include <string>

#include "bench_support/experiment.h"
#include "bench_support/testbed.h"
#include "common/object_pool.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "storage/dcs_system.h"

namespace poolnet::benchsup {

/// Publishes one network's accounting under `prefix`:
///  * counters  <prefix>.net.messages / .lost / .retries / .drops
///  * gauges    <prefix>.net.energy_j (radio model) and
///              <prefix>.net.hop_energy_j (per-hop ε_tx/ε_rx model)
///  * series    <prefix>.node.tx/rx/retries/drops/stored/energy_j
///              (per-node lanes, index = NodeId)
///  * the storage hotspot report: <prefix>.storage.load.* gauges plus
///    the <prefix>.storage.occupancy histogram (from Node::stored_events)
void publish_network(obs::Snapshot& snap, const std::string& prefix,
                     const net::Network& net,
                     const obs::HopEnergyModel& hop_energy = {});

/// Publishes a BufferPool's lifetime accounting under <prefix>.buffers:
/// counters .acquires/.reuses/.releases, gauges .outstanding,
/// .high_water, .free and the derived .reuse_rate — the PR 5 hot-path
/// pools become visible in every --metrics json|csv scrape.
void publish_buffer_pool(obs::Snapshot& snap, const std::string& prefix,
                         const common::BufferPoolStats& stats);

/// Publishes fault-tolerance counters as <prefix>.faults.failovers,
/// .events_lost, .events_restored, .retries, .failed_legs.
void publish_fault_stats(obs::Snapshot& snap, const std::string& prefix,
                         const storage::FaultStats& fs);

/// Publishes columnar scan-kernel counters (DESIGN.md §14) as
/// <prefix>.store.scan.rows_scanned, .blocks_skipped, .bytes_touched —
/// how much column data the zone-map kernels actually read vs pruned.
void publish_scan_stats(obs::Snapshot& snap, const std::string& prefix,
                        const storage::column::ScanStats& stats);

/// Publishes a paired-run per-system aggregate as gauges:
/// <prefix>.query.messages_mean, .query_messages_mean,
/// .reply_messages_mean, .index_nodes_mean, .results_mean,
/// .energy_mj_mean and the sample count <prefix>.query.count.
void publish_system_query_stats(obs::Snapshot& snap, const std::string& prefix,
                                const SystemQueryStats& stats);

/// One-call scrape of a whole testbed: the registry (route caches plus
/// whatever callers registered), both networks under "pool."/"dim.",
/// both systems' fault stats, and hop-trace depth gauges when tracing
/// is on.
obs::Snapshot scrape_testbed(Testbed& tb);

}  // namespace poolnet::benchsup
