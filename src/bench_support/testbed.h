// A fully deployed experimental testbed (§5.1 of the paper).
//
// One Testbed = one random sensor deployment (optionally over lossy
// links) with both DCS systems bound
// to it and a brute-force oracle for correctness checking. Pool and DIM
// each get their OWN Network instance over the same node positions, so
// per-node accounting (stored events, energy, tx/rx) never mixes across
// systems — in particular Pool's workload-sharing threshold must not see
// DIM's storage load.
#pragma once

#include <memory>
#include <vector>

#include "common/object_pool.h"
#include "core/pool_system.h"
#include "dim/dim_system.h"
#include "net/deployment.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/workload.h"
#include "routing/gpsr.h"
#include "routing/route_cache.h"
#include "storage/brute_force_store.h"

namespace poolnet::benchsup {

struct TestbedConfig {
  std::size_t nodes = 900;        ///< network size (paper: 300..2700)
  double radio_range = 40.0;      ///< meters (paper: 40)
  double avg_neighbors = 20.0;    ///< density target (paper: ~20)
  std::size_t dims = 3;           ///< event dimensionality (paper: 3)
  std::size_t events_per_node = 3;  ///< workload volume (paper: 3)
  core::PoolConfig pool;            ///< α = 5 m, l = 10 by default
  query::WorkloadConfig workload;   ///< uniform values by default
  std::uint64_t seed = 1;           ///< master seed (deployment + workload)
  net::MessageSizes sizes;          ///< packet size model
  net::LinkLossModel loss;          ///< per-hop loss + ARQ (default ideal)

  /// Route memoization over both GPSR instances. `location_quantum` is
  /// overridden with the Pool α at construction so cell-center routes
  /// share hash buckets.
  routing::RouteCacheConfig route_cache;

  /// Hop-trace ring size attached to both networks; 0 (default) leaves
  /// tracing disabled at its one-branch-per-hop cost.
  std::size_t trace_capacity = 0;

  /// Draw route-cache path buffers from a per-testbed free-list pool
  /// instead of the heap. Pure allocation-strategy switch: receipts,
  /// ledgers, and cache stats are byte-identical either way (the A/B knob
  /// tests/test_pool_alloc.cpp exercises).
  bool pooled_buffers = true;
};

class Testbed {
 public:
  /// Deploys until the unit-disk graph is connected (re-drawing positions
  /// with derived seeds; disconnected draws are rare at 20 neighbors).
  explicit Testbed(TestbedConfig config);

  const TestbedConfig& config() const { return config_; }

  net::Network& pool_network() { return *pool_net_; }
  net::Network& dim_network() { return *dim_net_; }
  core::PoolSystem& pool() { return *pool_; }
  dim::DimSystem& dim() { return *dim_; }
  storage::BruteForceStore& oracle() { return *oracle_; }
  const routing::Gpsr& pool_gpsr() const { return *pool_gpsr_; }
  const routing::Gpsr& dim_gpsr() const { return *dim_gpsr_; }

  /// The router each system actually sees: the cache when enabled,
  /// otherwise the raw Gpsr.
  const routing::Router& pool_router() const;
  const routing::Router& dim_router() const;

  /// Null when the cache is disabled.
  const routing::RouteCache* pool_route_cache() const {
    return pool_cache_.get();
  }
  const routing::RouteCache* dim_route_cache() const {
    return dim_cache_.get();
  }

  /// Generates events_per_node events at every node and inserts each into
  /// Pool, DIM, and the oracle. Returns the number of events inserted.
  std::size_t insert_workload();

  /// Insertion traffic charged to each system by insert_workload().
  net::TrafficTally pool_insert_traffic() const { return pool_insert_traffic_; }
  net::TrafficTally dim_insert_traffic() const { return dim_insert_traffic_; }

  /// Uniformly random node id (query sinks).
  net::NodeId random_node(Rng& rng) const;

  /// The deployment-wide metrics registry: the route caches register
  /// under "pool.route_cache"/"dim.route_cache", and callers (query
  /// engines, benches) should register their own instruments here so one
  /// scrape sees the whole testbed.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// Ring trace sinks; null unless config.trace_capacity > 0.
  const obs::RingTraceSink* pool_trace() const { return pool_trace_.get(); }
  const obs::RingTraceSink* dim_trace() const { return dim_trace_.get(); }

  /// Free-list pool backing both route caches' stored path buffers
  /// (disabled pass-through when config.pooled_buffers is false).
  const common::BufferPool<net::NodeId>& path_pool() const {
    return *path_pool_;
  }

 private:
  /// Heap-held (registry owns a mutex) so Testbed stays movable; declared
  /// before its users so the caches can register in the ctor.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  TestbedConfig config_;
  /// Heap-held (keeps Testbed movable with a stable address for the
  /// caches); declared before the caches, which release buffers into it.
  std::unique_ptr<common::BufferPool<net::NodeId>> path_pool_;
  std::vector<Point> positions_;
  std::unique_ptr<net::Network> pool_net_;
  std::unique_ptr<net::Network> dim_net_;
  std::unique_ptr<routing::Gpsr> pool_gpsr_;
  std::unique_ptr<routing::Gpsr> dim_gpsr_;
  std::unique_ptr<routing::RouteCache> pool_cache_;
  std::unique_ptr<routing::RouteCache> dim_cache_;
  std::unique_ptr<core::PoolSystem> pool_;
  std::unique_ptr<dim::DimSystem> dim_;
  std::unique_ptr<storage::BruteForceStore> oracle_;
  std::unique_ptr<obs::RingTraceSink> pool_trace_;
  std::unique_ptr<obs::RingTraceSink> dim_trace_;
  net::TrafficTally pool_insert_traffic_;
  net::TrafficTally dim_insert_traffic_;
};

}  // namespace poolnet::benchsup
