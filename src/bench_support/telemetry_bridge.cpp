#include "bench_support/telemetry_bridge.h"

#include "storage/column/column_store.h"

namespace poolnet::benchsup {

void publish_network(obs::Snapshot& snap, const std::string& prefix,
                     const net::Network& net,
                     const obs::HopEnergyModel& hop_energy) {
  const auto& nodes = net.nodes();
  const std::size_t n = nodes.size();

  auto& tx = snap.series[prefix + ".node.tx"];
  auto& rx = snap.series[prefix + ".node.rx"];
  auto& retries = snap.series[prefix + ".node.retries"];
  auto& drops = snap.series[prefix + ".node.drops"];
  auto& stored = snap.series[prefix + ".node.stored"];
  auto& energy = snap.series[prefix + ".node.energy_j"];
  for (auto* lane : {&tx, &rx, &retries, &drops, &stored, &energy}) {
    if (lane->size() < n) lane->resize(n, 0.0);
  }

  std::uint64_t tx_total = 0, rx_total = 0, retry_total = 0, drop_total = 0;
  std::vector<std::uint64_t> loads(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const net::Node& node = nodes[i];
    tx[i] += static_cast<double>(node.tx_count);
    rx[i] += static_cast<double>(node.rx_count);
    retries[i] += static_cast<double>(node.retry_count);
    drops[i] += static_cast<double>(node.drop_count);
    stored[i] += static_cast<double>(node.stored_events);
    energy[i] += node.energy_spent_j;
    tx_total += node.tx_count;
    rx_total += node.rx_count;
    retry_total += node.retry_count;
    drop_total += node.drop_count;
    loads[i] = node.stored_events;
  }

  snap.counters[prefix + ".net.messages"] += net.traffic().total;
  snap.counters[prefix + ".net.lost"] += net.traffic().lost;
  snap.counters[prefix + ".net.retries"] += retry_total;
  snap.counters[prefix + ".net.drops"] += drop_total;
  snap.gauges[prefix + ".net.energy_j"] += net.traffic().energy_j;
  snap.gauges[prefix + ".net.hop_energy_j"] +=
      hop_energy.cost_j(tx_total, rx_total);

  obs::publish_load_report(snap, prefix + ".storage", loads);
}

void publish_fault_stats(obs::Snapshot& snap, const std::string& prefix,
                         const storage::FaultStats& fs) {
  snap.counters[prefix + ".faults.failovers"] += fs.failovers;
  snap.counters[prefix + ".faults.events_lost"] += fs.events_lost;
  snap.counters[prefix + ".faults.events_restored"] += fs.events_restored;
  snap.counters[prefix + ".faults.retries"] += fs.retries;
  snap.counters[prefix + ".faults.failed_legs"] += fs.failed_legs;
}

void publish_scan_stats(obs::Snapshot& snap, const std::string& prefix,
                        const storage::column::ScanStats& stats) {
  snap.counters[prefix + ".store.scan.rows_scanned"] += stats.rows_scanned;
  snap.counters[prefix + ".store.scan.blocks_skipped"] += stats.blocks_skipped;
  snap.counters[prefix + ".store.scan.bytes_touched"] += stats.bytes_touched;
}

void publish_system_query_stats(obs::Snapshot& snap, const std::string& prefix,
                                const SystemQueryStats& stats) {
  snap.gauges[prefix + ".query.messages_mean"] = stats.messages.mean();
  snap.gauges[prefix + ".query.query_messages_mean"] =
      stats.query_messages.mean();
  snap.gauges[prefix + ".query.reply_messages_mean"] =
      stats.reply_messages.mean();
  snap.gauges[prefix + ".query.index_nodes_mean"] = stats.index_nodes.mean();
  snap.gauges[prefix + ".query.results_mean"] = stats.results.mean();
  snap.gauges[prefix + ".query.energy_mj_mean"] = stats.energy_mj.mean();
  snap.counters[prefix + ".query.count"] +=
      static_cast<std::uint64_t>(stats.messages.count());
}

void publish_buffer_pool(obs::Snapshot& snap, const std::string& prefix,
                         const common::BufferPoolStats& stats) {
  snap.counters[prefix + ".buffers.acquires"] += stats.acquires;
  snap.counters[prefix + ".buffers.reuses"] += stats.reuses;
  snap.counters[prefix + ".buffers.releases"] += stats.releases;
  snap.gauges[prefix + ".buffers.outstanding"] +=
      static_cast<double>(stats.outstanding);
  snap.gauges[prefix + ".buffers.high_water"] +=
      static_cast<double>(stats.high_water);
  snap.gauges[prefix + ".buffers.free"] +=
      static_cast<double>(stats.free_buffers);
  snap.gauges[prefix + ".buffers.reuse_rate"] = stats.reuse_rate();
}

obs::Snapshot scrape_testbed(Testbed& tb) {
  obs::Snapshot snap = tb.metrics().scrape();
  publish_network(snap, "pool", tb.pool_network());
  publish_network(snap, "dim", tb.dim_network());
  publish_buffer_pool(snap, "pool", tb.path_pool().stats());
  publish_fault_stats(snap, "pool", tb.pool().fault_stats());
  publish_fault_stats(snap, "dim", tb.dim().fault_stats());
  if (const auto* s = tb.pool().scan_stats())
    publish_scan_stats(snap, "pool", *s);
  if (const auto* s = tb.dim().scan_stats()) publish_scan_stats(snap, "dim", *s);
  if (tb.pool_trace() != nullptr) {
    snap.gauges["pool.trace.recorded"] +=
        static_cast<double>(tb.pool_trace()->recorded());
  }
  if (tb.dim_trace() != nullptr) {
    snap.gauges["dim.trace.recorded"] +=
        static_cast<double>(tb.dim_trace()->recorded());
  }
  return snap;
}

}  // namespace poolnet::benchsup
