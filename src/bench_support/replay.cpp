#include "bench_support/replay.h"

namespace poolnet::benchsup {

std::size_t replay_oracle(const storage::BruteForceStore& oracle,
                          storage::DcsSystem& system) {
  const auto& events = oracle.all();
  for (const auto& e : events) system.insert(e.source, e);
  return events.size();
}

}  // namespace poolnet::benchsup
