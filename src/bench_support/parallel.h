// Parallel experiment engine: run independent (config, seed) testbeds on
// a work-stealing thread pool and merge their results deterministically.
//
// Every figure sweep is embarrassingly parallel — each Testbed owns its
// RNGs, Networks, routers and route caches, so two testbeds never share
// mutable state. The engine exploits that: jobs are full testbed runs
// (deploy + insert + query batch), results come back in SUBMISSION order,
// and the per-group merge applies the same merge_into calls in the same
// order as the serial loop — the merged PairedRun is byte-identical at
// any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_support/experiment.h"
#include "engine/query_engine.h"
#include "obs/telemetry.h"
#include "routing/route_cache.h"
#include "storage/store_config.h"

namespace poolnet::benchsup {

/// Work-stealing pool: one deque per worker, submissions round-robin,
/// idle workers steal from the back of their siblings' deques. Tasks are
/// coarse (whole testbeds, tens of milliseconds to minutes), so per-deque
/// mutexes are plenty — the pool spends its life inside tasks, not locks.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; runnable immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  bool try_pop(std::size_t worker, std::function<void()>& task);
  void worker_loop(std::size_t worker);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex state_mu_;
  std::condition_variable work_cv_;   ///< wakes sleeping workers
  std::condition_variable idle_cv_;   ///< wakes wait_idle
  std::size_t pending_ = 0;           ///< submitted, not yet finished
  std::size_t unclaimed_ = 0;         ///< submitted, not yet popped
  std::size_t next_queue_ = 0;        ///< round-robin submission target
  bool stop_ = false;
};

/// Number of workers to use when the user didn't say: the hardware
/// concurrency, or 1 when the runtime can't report it.
std::size_t default_threads();

/// Evaluates `fn(i)` for i in [0, n) on `threads` workers and returns the
/// results indexed by i — identical to the serial loop in content and
/// order. threads <= 1 (or n <= 1) runs serially in the caller. The first
/// exception (by index) is rethrown after all jobs finish.
///
/// Indices are submitted in CHUNKS (~4 per worker) rather than one task
/// per index: each submission is one allocation and one wakeup, so large
/// sweeps don't drown coarse work in queue traffic. Work stealing keeps
/// the tail balanced when chunk runtimes vary.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, std::size_t threads, Fn&& fn) {
  std::vector<T> out(n);
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  std::vector<std::exception_ptr> errors(n);
  {
    const std::size_t workers = std::min(threads, n);
    const std::size_t chunk = std::max<std::size_t>(1, n / (workers * 4));
    ThreadPool pool(workers);
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      const std::size_t end = std::min(n, begin + chunk);
      pool.submit([&out, &errors, &fn, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          try {
            out[i] = fn(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
    pool.wait_idle();
  }
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
  return out;
}

/// One unit of sweep work: produces a PairedRun that belongs to result
/// group `group` (e.g. one network size in a Fig-6 sweep; the seeds of a
/// size share a group).
struct SweepJob {
  std::size_t group = 0;
  std::function<PairedRun()> run;
};

/// Runs every job (any order, `threads` wide) and merges each group's
/// results IN SUBMISSION ORDER via merge_into — the exact float-operation
/// sequence of the serial `for (seed) merge_into(acc, run)` loop, so the
/// returned per-group PairedRuns are byte-identical at 1 or N threads.
std::vector<PairedRun> run_sweep_parallel(std::size_t n_groups,
                                          std::vector<SweepJob> jobs,
                                          std::size_t threads);

/// Shared bench command line, parsed through the cli::ArgParser option
/// table so every bench and the CLI accept identical spellings:
/// --threads N (default: hardware concurrency),
/// --route-cache=on|off|lru:<bytes>, and the query-engine trio
/// --batch=<n|off>, --batch-deadline=<events>, --qcache=on|off|ttl:<n>,
/// and the telemetry pair --metrics=off|json|csv[:path], --trace=<n>,
/// and the central-store selector --store=flat|paged[:...].
/// Prints usage and exits(2) on anything it doesn't recognize; --help
/// prints the generated help and exits(0).
struct BenchOptions {
  std::size_t threads = 1;
  routing::RouteCacheConfig route_cache;
  engine::QueryEngineConfig engine;
  obs::TelemetryConfig telemetry;
  storage::StoreConfig store;
};
BenchOptions parse_bench_options(int argc, char** argv);

}  // namespace poolnet::benchsup
