// Paired experiment runner and plain-text series output.
//
// Every figure bench follows the same shape: generate a batch of queries,
// run each against Pool and DIM from the same random sink, check both
// result sets against the oracle, and report mean message counts — the
// paper's metric — side by side.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench_support/testbed.h"
#include "sim/stats.h"
#include "storage/range_query.h"

namespace poolnet::benchsup {

/// Per-system aggregates over a query batch.
struct SystemQueryStats {
  sim::RunningStat messages;        ///< total per-hop messages per query
  sim::RunningStat query_messages;  ///< forwarding legs
  sim::RunningStat reply_messages;  ///< retrieval legs
  sim::RunningStat index_nodes;     ///< storage nodes visited
  sim::RunningStat results;         ///< qualifying events returned
  sim::RunningStat energy_mj;       ///< radio energy per query, millijoules
};

struct PairedRun {
  SystemQueryStats pool;
  SystemQueryStats dim;
  std::size_t queries = 0;
  std::size_t pool_mismatches = 0;  ///< Pool result set != oracle (must be 0)
  std::size_t dim_mismatches = 0;   ///< DIM result set != oracle (must be 0)
};

/// Runs every query against both systems from the same per-query sink and
/// validates both result sets against the oracle.
PairedRun run_paired_queries(Testbed& testbed,
                             const std::vector<storage::RangeQuery>& queries,
                             std::uint64_t sink_seed);

/// N queries from a generator callback.
std::vector<storage::RangeQuery> generate_queries(
    std::size_t n, const std::function<storage::RangeQuery()>& make);

/// Merges per-seed stats into cross-seed aggregates.
void merge_into(PairedRun& into, const PairedRun& from);

/// Fixed-width text table, column widths from headers and cells.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;  // to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` decimals.
std::string fmt(double v, int prec = 1);

/// Standard bench banner: experiment id + settings line.
void print_banner(const std::string& experiment,
                  const std::string& description);

/// Banner plus a "systems:" line built from DcsSystem::describe(), so
/// benches never hard-code per-scheme parameter strings.
void print_banner(const std::string& experiment,
                  const std::string& description, Testbed& testbed);

}  // namespace poolnet::benchsup
