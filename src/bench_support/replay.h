// The one canonical "replay oracle events into a system" loop.
//
// GHT and central deployments (and the server backend) are built after
// the testbed has already generated + inserted the workload, so they
// bootstrap by replaying the oracle's event log in insertion order.
// Keeping that loop in one place pins the contract: source-preserving
// inserts, oracle order — the order every serial-equivalence fingerprint
// depends on.
#pragma once

#include <cstddef>

#include "storage/brute_force_store.h"
#include "storage/dcs_system.h"

namespace poolnet::benchsup {

/// Replays every oracle event into `system` via
/// `system.insert(e.source, e)`, in oracle (= insertion) order.
/// Returns the number of events replayed.
std::size_t replay_oracle(const storage::BruteForceStore& oracle,
                          storage::DcsSystem& system);

}  // namespace poolnet::benchsup
