#include "bench_support/parallel.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace poolnet::benchsup {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++pending_;
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::try_pop(std::size_t worker, std::function<void()>& task) {
  // Own deque first (front = oldest of my own submissions)...
  {
    std::lock_guard<std::mutex> lock(queues_[worker]->mu);
    if (!queues_[worker]->tasks.empty()) {
      task = std::move(queues_[worker]->tasks.front());
      queues_[worker]->tasks.pop_front();
      return true;
    }
  }
  // ...then steal from the back of a sibling's.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    const std::size_t victim = (worker + k) % queues_.size();
    std::lock_guard<std::mutex> lock(queues_[victim]->mu);
    if (!queues_[victim]->tasks.empty()) {
      task = std::move(queues_[victim]->tasks.back());
      queues_[victim]->tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t worker) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(worker, task)) {
      task();
      std::lock_guard<std::mutex> lock(state_mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mu_);
    if (stop_) return;
    // Re-check under the lock: a submit between try_pop and here would
    // otherwise be sleepable-through.
    work_cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
}

std::size_t default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::vector<PairedRun> run_sweep_parallel(std::size_t n_groups,
                                          std::vector<SweepJob> jobs,
                                          std::size_t threads) {
  auto results = parallel_map<PairedRun>(
      jobs.size(), threads, [&jobs](std::size_t i) { return jobs[i].run(); });
  std::vector<PairedRun> merged(n_groups);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    merge_into(merged[jobs[i].group], results[i]);
  return merged;
}

namespace {
[[noreturn]] void usage_error(const char* prog, const std::string& detail) {
  std::fprintf(stderr,
               "%s: %s\nusage: %s [--threads N] "
               "[--route-cache=on|off|lru:<bytes>]\n",
               prog, detail.c_str(), prog);
  std::exit(2);
}
}  // namespace

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions opts;
  opts.threads = default_threads();
  const char* prog = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--threads") {
      if (i + 1 >= argc) usage_error(prog, "--threads needs a value");
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(10);
    } else if (arg == "--route-cache" || arg.rfind("--route-cache=", 0) == 0) {
      std::string spec;
      if (arg == "--route-cache") {
        if (i + 1 >= argc) usage_error(prog, "--route-cache needs a value");
        spec = argv[++i];
      } else {
        spec = arg.substr(14);
      }
      std::string error;
      if (!parse_route_cache_spec(spec, &opts.route_cache, &error))
        usage_error(prog, error);
      continue;
    } else {
      usage_error(prog, "unknown argument '" + arg + "'");
    }
    try {
      const long n = std::stol(value);
      if (n < 1) throw std::invalid_argument("");
      opts.threads = static_cast<std::size_t>(n);
    } catch (const std::exception&) {
      usage_error(prog, "bad --threads value '" + value + "'");
    }
  }
  return opts;
}

}  // namespace poolnet::benchsup
