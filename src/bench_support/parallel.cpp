#include "bench_support/parallel.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cli/args.h"

namespace poolnet::benchsup {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++pending_;
    ++unclaimed_;
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::try_pop(std::size_t worker, std::function<void()>& task) {
  // Own deque first (front = oldest of my own submissions)...
  {
    std::lock_guard<std::mutex> lock(queues_[worker]->mu);
    if (!queues_[worker]->tasks.empty()) {
      task = std::move(queues_[worker]->tasks.front());
      queues_[worker]->tasks.pop_front();
      return true;
    }
  }
  // ...then steal from the back of a sibling's.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    const std::size_t victim = (worker + k) % queues_.size();
    std::lock_guard<std::mutex> lock(queues_[victim]->mu);
    if (!queues_[victim]->tasks.empty()) {
      task = std::move(queues_[victim]->tasks.back());
      queues_[victim]->tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t worker) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(worker, task)) {
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        --unclaimed_;
      }
      task();
      std::lock_guard<std::mutex> lock(state_mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    // Sleep until there is work to claim — no timed polling. `unclaimed_`
    // is bumped under state_mu_ BEFORE the task lands in its deque, so a
    // submit racing this worker's failed scan leaves the predicate true
    // and the worker re-scans instead of sleeping through the wakeup.
    std::unique_lock<std::mutex> lock(state_mu_);
    work_cv_.wait(lock, [this] { return stop_ || unclaimed_ > 0; });
    if (stop_ && unclaimed_ == 0) return;
  }
}

std::size_t default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::vector<PairedRun> run_sweep_parallel(std::size_t n_groups,
                                          std::vector<SweepJob> jobs,
                                          std::size_t threads) {
  auto results = parallel_map<PairedRun>(
      jobs.size(), threads, [&jobs](std::size_t i) { return jobs[i].run(); });
  std::vector<PairedRun> merged(n_groups);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    merge_into(merged[jobs[i].group], results[i]);
  return merged;
}

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions opts;
  opts.threads = default_threads();
  const char* prog = argc > 0 ? argv[0] : "bench";

  cli::ArgParser parser(prog, "poolnet benchmark");
  parser.add_option("threads", "0",
                    "worker threads (0 = hardware concurrency)");
  parser.add_option("route-cache", "on",
                    "route memoization: on, off or lru:<bytes> (k/m/g "
                    "suffixes ok)");
  cli::add_engine_options(parser);
  cli::add_telemetry_options(parser);
  cli::add_store_options(parser);

  std::string error;
  const auto fail = [&]() {
    std::fprintf(stderr, "%s: %s\n\n%s", prog, error.c_str(),
                 parser.help().c_str());
    std::exit(2);
  };
  if (!parser.parse(argc, argv, &error)) fail();
  if (parser.help_requested()) {
    std::fputs(parser.help().c_str(), stdout);
    std::exit(0);
  }
  const auto threads = parser.int_option("threads", 0, 1024, &error);
  if (!threads) fail();
  if (*threads > 0) opts.threads = static_cast<std::size_t>(*threads);
  if (!parse_route_cache_spec(parser.option("route-cache"),
                              &opts.route_cache, &error)) {
    fail();
  }
  if (!cli::parse_engine_options(parser, &opts.engine, &error)) fail();
  if (!cli::parse_telemetry_options(parser, &opts.telemetry, &error)) fail();
  if (!cli::parse_store_options(parser, &opts.store, &error)) fail();
  return opts;
}

}  // namespace poolnet::benchsup
