#include "engine/result_cache.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace poolnet::engine {

namespace {
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}
}  // namespace

bool parse_qcache_spec(const std::string& spec, ResultCacheConfig* config,
                       std::string* error) {
  if (spec == "on") {
    config->enabled = true;
    config->ttl = 0;
    return true;
  }
  if (spec == "off") {
    config->enabled = false;
    return true;
  }
  if (spec.rfind("ttl:", 0) == 0) {
    const std::string digits = spec.substr(4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      *error = "bad --qcache ttl '" + spec + "' (want ttl:<events>)";
      return false;
    }
    errno = 0;
    const unsigned long long ttl = std::strtoull(digits.c_str(), nullptr, 10);
    if (errno != 0 || ttl == 0) {
      *error = "bad --qcache ttl '" + spec + "' (want a positive count)";
      return false;
    }
    config->enabled = true;
    config->ttl = static_cast<std::uint64_t>(ttl);
    return true;
  }
  *error = "bad --qcache spec '" + spec + "' (want on, off or ttl:<n>)";
  return false;
}

ResultCache::ResultCache(ResultCacheConfig config,
                         obs::MetricsRegistry* metrics,
                         const std::string& prefix)
    : config_(config) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  hits_ = metrics->counter(prefix + ".hits");
  misses_ = metrics->counter(prefix + ".misses");
  insertions_ = metrics->counter(prefix + ".insertions");
  invalidations_ = metrics->counter(prefix + ".invalidations");
  expirations_ = metrics->counter(prefix + ".expirations");
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.insertions = insertions_.value();
  s.invalidations = invalidations_.value();
  s.expirations = expirations_.value();
  return s;
}

std::size_t ResultCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = 0x243f6a8885a308d3ULL ^ k.dims;
  for (std::size_t i = 0; i < 2 * k.dims; ++i) h = mix(h ^ k.bits[i]);
  return static_cast<std::size_t>(h);
}

ResultCache::Key ResultCache::key_of(const storage::RangeQuery& q) {
  Key k;
  k.dims = q.dims();
  for (std::size_t d = 0; d < q.dims(); ++d) {
    const ClosedInterval b = q.bound(d);
    k.bits[2 * d] = bits_of(b.lo);
    k.bits[2 * d + 1] = bits_of(b.hi);
  }
  return k;
}

const std::vector<storage::Event>* ResultCache::lookup(
    const storage::RangeQuery& q, std::uint64_t now) {
  if (!config_.enabled) return nullptr;
  const auto it = entries_.find(key_of(q));
  if (it == entries_.end()) {
    misses_.inc();
    return nullptr;
  }
  if (expired(it->second, now)) {
    entries_.erase(it);
    expirations_.inc();
    misses_.inc();
    return nullptr;
  }
  hits_.inc();
  return &it->second.events;
}

void ResultCache::store(const storage::RangeQuery& q,
                        std::vector<storage::Event> events,
                        std::uint64_t now) {
  if (!config_.enabled) return;
  Entry& e = entries_[key_of(q)];
  e.rect = q.bounds();
  e.events = std::move(events);
  e.stored_at = now;
  insertions_.inc();
}

std::size_t ResultCache::invalidate_containing(const storage::Values& values) {
  if (!config_.enabled || entries_.empty()) return 0;
  std::size_t erased = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& e = it->second;
    bool inside = e.rect.size() == values.size();
    for (std::size_t d = 0; inside && d < values.size(); ++d)
      inside = e.rect[d].contains(values[d]);
    if (inside) {
      it = entries_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  invalidations_.add(erased);
  return erased;
}

std::size_t ResultCache::expire_data_before(double cutoff) {
  if (!config_.enabled || entries_.empty()) return 0;
  std::size_t shrank = 0;
  for (auto& [key, e] : entries_) {
    const auto before = e.events.size();
    std::erase_if(e.events, [cutoff](const storage::Event& ev) {
      return ev.detected_at < cutoff;
    });
    if (e.events.size() != before) ++shrank;
  }
  return shrank;
}

void ResultCache::clear() { entries_.clear(); }

}  // namespace poolnet::engine
