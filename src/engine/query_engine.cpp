#include "engine/query_engine.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "common/error.h"

namespace poolnet::engine {

bool parse_batch_spec(const std::string& spec, std::size_t* batch_size,
                      std::string* error) {
  if (spec == "off") {
    *batch_size = 0;
    return true;
  }
  if (spec.empty() ||
      spec.find_first_not_of("0123456789") != std::string::npos) {
    *error = "bad --batch spec '" + spec + "' (want off or a positive count)";
    return false;
  }
  errno = 0;
  const unsigned long long n = std::strtoull(spec.c_str(), nullptr, 10);
  if (errno != 0 || n == 0 || n > 1000000) {
    *error = "bad --batch size '" + spec + "' (want 1..1000000)";
    return false;
  }
  *batch_size = static_cast<std::size_t>(n);
  return true;
}

QueryEngine::QueryEngine(storage::DcsSystem& system, QueryEngineConfig config,
                         obs::MetricsRegistry* metrics,
                         const std::string& prefix)
    : system_(system),
      config_(config),
      owned_metrics_(metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      cache_(config.cache, metrics != nullptr ? metrics : owned_metrics_.get(),
             prefix + ".result_cache") {
  obs::MetricsRegistry* reg =
      metrics != nullptr ? metrics : owned_metrics_.get();
  submitted_ = reg->counter(prefix + ".submitted");
  cache_hits_ = reg->counter(prefix + ".cache_hits");
  batches_ = reg->counter(prefix + ".batches");
  serial_executions_ = reg->counter(prefix + ".serial_executions");
  skyline_queries_ = reg->counter(prefix + ".skyline_queries");
  knn_queries_ = reg->counter(prefix + ".knn_queries");
  messages_ = reg->counter(prefix + ".messages");
  messages_saved_ = reg->counter(prefix + ".messages_saved");
  serial_cell_visits_ = reg->counter(prefix + ".serial_cell_visits");
  unique_cell_visits_ = reg->counter(prefix + ".unique_cell_visits");
  retries_ = reg->counter(prefix + ".retries");
  failovers_ = reg->counter(prefix + ".failovers");
  failed_legs_ = reg->counter(prefix + ".failed_legs");
  events_lost_ = reg->counter(prefix + ".events_lost");
}

EngineStats QueryEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.value();
  s.cache_hits = cache_hits_.value();
  s.batches = batches_.value();
  s.serial_executions = serial_executions_.value();
  s.skyline_queries = skyline_queries_.value();
  s.knn_queries = knn_queries_.value();
  s.messages = messages_.value();
  s.messages_saved = messages_saved_.value();
  s.serial_cell_visits = serial_cell_visits_.value();
  s.unique_cell_visits = unique_cell_visits_.value();
  s.retries = retries_.value();
  s.failovers = failovers_.value();
  s.failed_legs = failed_legs_.value();
  s.events_lost = events_lost_.value();
  s.batch_occupancy = batch_occupancy_;
  s.dedup_ratio = dedup_ratio_;
  return s;
}

void QueryEngine::advance_clock(std::uint64_t events) {
  now_ += events;
  if (!pending_.empty() && now_ - epoch_opened_ >= config_.batch_deadline)
    flush();
}

void QueryEngine::tick(std::uint64_t events) { advance_clock(events); }

QueryEngine::Ticket QueryEngine::submit(net::NodeId sink,
                                        const storage::QueryRequest& query) {
  advance_clock(1);
  submitted_.inc();
  const Ticket ticket = next_ticket_++;

  // Only range rectangles are cacheable: invalidate_containing() knows
  // how a new event perturbs a box answer, but not a skyline or a top-k.
  if (query.cls() == storage::QueryClass::Range) {
    if (const auto* cached = cache_.lookup(query.range(), now_)) {
      // Served entirely at the sink: zero network traffic.
      cache_hits_.inc();
      storage::QueryReceipt receipt;
      receipt.events = *cached;
      results_.emplace(ticket, std::move(receipt));
      return ticket;
    }
  }

  if (config_.batch_size <= 1) {
    execute_serial({ticket, sink, query});
    return ticket;
  }

  if (pending_.empty()) epoch_opened_ = now_;
  pending_.push_back({ticket, sink, query});
  if (pending_.size() >= config_.batch_size) flush();
  return ticket;
}

void QueryEngine::absorb_fault_stats() {
  const storage::FaultStats& f = system_.fault_stats();
  retries_.add(f.retries - fault_seen_.retries);
  failovers_.add(f.failovers - fault_seen_.failovers);
  failed_legs_.add(f.failed_legs - fault_seen_.failed_legs);
  events_lost_.add(f.events_lost - fault_seen_.events_lost);
  fault_seen_ = f;
}

void QueryEngine::execute_serial(const PendingQuery& p) {
  storage::QueryReceipt receipt = system_.execute(p.sink, p.query);
  absorb_fault_stats();
  serial_executions_.inc();
  if (p.query.cls() == storage::QueryClass::Skyline) skyline_queries_.inc();
  if (p.query.cls() == storage::QueryClass::KNearest) knn_queries_.inc();
  messages_.add(receipt.messages);
  serial_cell_visits_.add(receipt.index_nodes_visited);
  unique_cell_visits_.add(receipt.index_nodes_visited);
  batch_occupancy_.add(1.0);
  finish(p.ticket, p.query, std::move(receipt));
}

void QueryEngine::finish(Ticket ticket, const storage::QueryRequest& q,
                         storage::QueryReceipt receipt) {
  if (q.cls() == storage::QueryClass::Range)
    cache_.store(q.range(), receipt.events, now_);
  results_.emplace(ticket, std::move(receipt));
}

void QueryEngine::flush() {
  if (pending_.empty()) return;
  std::vector<PendingQuery> epoch;
  epoch.swap(pending_);

  // Group by sink in first-appearance order; queries from different sinks
  // share no dissemination tree, so each group merges independently.
  struct Group {
    net::NodeId sink;
    std::vector<PendingQuery> members;
  };
  std::vector<Group> groups;
  for (PendingQuery& p : epoch) {
    Group* g = nullptr;
    for (Group& cand : groups) {
      if (cand.sink == p.sink) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back({p.sink, {}});
      g = &groups.back();
    }
    g->members.push_back(std::move(p));
  }

  for (Group& g : groups) {
    // Skyline and k-NN members run serially at the flush instant (same
    // store snapshot as the batch); only range queries merge.
    std::vector<PendingQuery> ranged;
    ranged.reserve(g.members.size());
    for (PendingQuery& p : g.members) {
      if (p.query.cls() == storage::QueryClass::Range)
        ranged.push_back(std::move(p));
      else
        execute_serial(p);
    }
    if (ranged.empty()) continue;
    g.members = std::move(ranged);
    if (g.members.size() == 1) {
      execute_serial(g.members.front());
      continue;
    }
    std::vector<storage::RangeQuery> queries;
    queries.reserve(g.members.size());
    for (const PendingQuery& p : g.members) queries.push_back(p.query.range());

    storage::BatchQueryReceipt batch = system_.query_batch(g.sink, queries);
    absorb_fault_stats();
    batches_.inc();
    messages_.add(batch.messages);
    messages_saved_.add(batch.messages_saved);
    serial_cell_visits_.add(batch.serial_cell_visits);
    unique_cell_visits_.add(batch.unique_cell_visits);
    batch_occupancy_.add(static_cast<double>(g.members.size()));
    dedup_ratio_.add(
        batch.unique_cell_visits > 0
            ? static_cast<double>(batch.serial_cell_visits) /
                  static_cast<double>(batch.unique_cell_visits)
            : 1.0);

    // The transport was shared, so per-query attribution is a policy
    // choice: amortize each message field evenly across the batch
    // (remainder to the earliest queries) unless the implementation
    // already attributed exactly.
    std::uint64_t attributed = 0;
    for (const auto& r : batch.per_query) attributed += r.messages;
    if (attributed != batch.messages) {
      const auto spread = [&](std::uint64_t total,
                              std::uint64_t storage::QueryReceipt::*field) {
        const std::uint64_t n = batch.per_query.size();
        const std::uint64_t base = total / n;
        const std::uint64_t rem = total % n;
        for (std::uint64_t i = 0; i < n; ++i)
          batch.per_query[i].*field = base + (i < rem ? 1 : 0);
      };
      spread(batch.messages, &storage::QueryReceipt::messages);
      spread(batch.query_messages, &storage::QueryReceipt::query_messages);
      spread(batch.reply_messages, &storage::QueryReceipt::reply_messages);
    }

    for (std::size_t i = 0; i < g.members.size(); ++i) {
      finish(g.members[i].ticket, g.members[i].query,
             std::move(batch.per_query[i]));
    }
  }
}

storage::QueryReceipt QueryEngine::take(Ticket ticket) {
  if (!ready(ticket)) flush();
  const auto it = results_.find(ticket);
  if (it == results_.end())
    throw ConfigError("QueryEngine: unknown or already-taken ticket");
  storage::QueryReceipt receipt = std::move(it->second);
  results_.erase(it);
  return receipt;
}

storage::InsertReceipt QueryEngine::insert(net::NodeId source,
                                           const storage::Event& e) {
  advance_clock(1);
  const storage::InsertReceipt receipt = system_.insert(source, e);
  absorb_fault_stats();
  cache_.invalidate_containing(e.values);
  return receipt;
}

std::size_t QueryEngine::expire_before(double cutoff) {
  // Aging removes exactly the stored events detected before the cutoff,
  // so each cached answer stays exact after shedding those same events —
  // surviving entries keep serving hits.
  cache_.expire_data_before(cutoff);
  return system_.expire_before(cutoff);
}

}  // namespace poolnet::engine
