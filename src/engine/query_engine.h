// The sink-side batched query engine — the serving layer over any
// DcsSystem (Pool, DIM, GHT all pluggable).
//
// Callers submit() RangeQueries and redeem tickets; the engine collects
// concurrent submissions into EPOCHS, flushed when the epoch reaches
// batch_size queries or batch_deadline logical events pass (every
// submit/insert/tick advances the clock). At flush the pending queries
// are grouped by sink and each group ships as ONE merged dissemination
// via DcsSystem::query_batch, which unions relevant-cell sets, dedupes
// cell visits and replies once per answering node — then the engine
// demultiplexes, handing every caller a result byte-identical to serial
// execution (DESIGN.md §8 has the argument).
//
// A ResultCache keyed on normalized query rectangles short-circuits
// repeat queries entirely (zero messages); inserts routed through the
// engine invalidate exactly the cached rectangles that contain the new
// event, so hits can never be stale.
//
// Timing semantics: a batched query observes the store AS OF ITS FLUSH,
// so an insert landing between submit and flush is visible — the same
// answer a serial query issued at the flush instant would return.
// NOT thread-safe, by design: one engine per testbed, like the Network
// and RouteCache underneath it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/result_cache.h"
#include "sim/stats.h"
#include "storage/dcs_system.h"

namespace poolnet::engine {

struct QueryEngineConfig {
  /// Queries per epoch before a forced flush. 0 or 1 = serial issue
  /// (every submit executes immediately, nothing is ever held).
  std::size_t batch_size = 0;

  /// A pending epoch also flushes once this many logical events have
  /// passed since it opened.
  std::uint64_t batch_deadline = 16;

  ResultCacheConfig cache;
};

/// Parses a --batch spec: "off" or a positive epoch size. Returns false
/// and sets `error` on a malformed spec.
bool parse_batch_spec(const std::string& spec, std::size_t* batch_size,
                      std::string* error);

/// Point-in-time view of the engine's counters. The integer counters
/// live in a MetricsRegistry under "<prefix>.submitted" etc.; stats()
/// assembles this struct from them (plus the resident RunningStats).
struct EngineStats {
  std::uint64_t submitted = 0;    ///< queries accepted by submit()
  std::uint64_t cache_hits = 0;   ///< answered from the result cache
  std::uint64_t batches = 0;      ///< merged rounds (>= 2 queries) executed
  std::uint64_t serial_executions = 0;  ///< queries issued unbatched
  std::uint64_t skyline_queries = 0;    ///< executed skyline requests
  std::uint64_t knn_queries = 0;        ///< executed k-NN requests

  std::uint64_t messages = 0;        ///< per-hop transmissions charged
  std::uint64_t messages_saved = 0;  ///< vs. serial issue (batch receipts)
  std::uint64_t serial_cell_visits = 0;
  std::uint64_t unique_cell_visits = 0;

  sim::RunningStat batch_occupancy;  ///< queries per flushed sink-group
  sim::RunningStat dedup_ratio;      ///< serial / unique visits, per batch

  // Fault-tolerance counters, diffed from the system's FaultStats around
  // engine-driven operations. All zero on a fault-free run.
  std::uint64_t retries = 0;      ///< reliable-leg retransmission rounds
  std::uint64_t failovers = 0;    ///< index/owner/home re-elections
  std::uint64_t failed_legs = 0;  ///< legs abandoned after every retry
  std::uint64_t events_lost = 0;  ///< stored events destroyed or dropped

  /// Σ serial visits / Σ unique visits across every executed batch;
  /// >= 1 whenever batching found any overlap.
  double overall_dedup_ratio() const {
    return unique_cell_visits > 0
               ? static_cast<double>(serial_cell_visits) /
                     static_cast<double>(unique_cell_visits)
               : 1.0;
  }
};

class QueryEngine {
 public:
  using Ticket = std::uint64_t;

  /// With a non-null `metrics`, every engine counter (and the result
  /// cache's, under `<prefix>.result_cache`) registers there; otherwise
  /// the engine owns a private registry.
  explicit QueryEngine(storage::DcsSystem& system, QueryEngineConfig config = {},
                       obs::MetricsRegistry* metrics = nullptr,
                       const std::string& prefix = "engine");

  const QueryEngineConfig& config() const { return config_; }
  storage::DcsSystem& system() { return system_; }

  /// Logical engine clock: advances by one per submit/insert and by
  /// `events` per tick. TTLs and deadlines are measured in these units.
  std::uint64_t now() const { return now_; }
  void tick(std::uint64_t events = 1);

  /// Admits a query issued at `sink` — any class (RangeQuery converts
  /// implicitly). Cache hits and serial mode resolve immediately;
  /// otherwise the query joins the pending epoch. Skyline and k-NN
  /// requests share the epoch's timing (they observe the store as of
  /// their flush) but execute serially there via DcsSystem::execute —
  /// only range queries merge into query_batch, and only range results
  /// enter the cache.
  Ticket submit(net::NodeId sink, const storage::QueryRequest& query);

  /// Executes every pending query now, regardless of epoch triggers.
  void flush();

  bool ready(Ticket ticket) const { return results_.count(ticket) > 0; }
  std::size_t pending() const { return pending_.size(); }

  /// Redeems a ticket, flushing first if its query is still pending.
  /// Throws on unknown (or already-taken) tickets.
  storage::QueryReceipt take(Ticket ticket);

  /// Routes an insert through the engine so the cache invalidates every
  /// rectangle containing the new event before it can serve stale hits.
  storage::InsertReceipt insert(net::NodeId source, const storage::Event& e);

  /// Data aging passthrough. Cached entries shed their own aged events in
  /// place (the exact post-aging answers) instead of being cleared.
  std::size_t expire_before(double cutoff);

  /// Thin views assembled from the registry counters.
  EngineStats stats() const;
  ResultCacheStats cache_stats() const { return cache_.stats(); }

 private:
  struct PendingQuery {
    Ticket ticket;
    net::NodeId sink;
    storage::QueryRequest query;
  };

  /// Flushes the pending epoch when its deadline has passed.
  void advance_clock(std::uint64_t events);
  void execute_serial(const PendingQuery& p);
  void finish(Ticket ticket, const storage::QueryRequest& q,
              storage::QueryReceipt receipt);

  /// Folds the system's fault counters accumulated since the last call
  /// into the engine stats.
  void absorb_fault_stats();

  storage::DcsSystem& system_;
  QueryEngineConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  ///< fallback
  ResultCache cache_;  ///< after owned_metrics_: may register into it
  std::vector<PendingQuery> pending_;
  std::uint64_t epoch_opened_ = 0;  ///< now() when pending_ got its first entry
  std::unordered_map<Ticket, storage::QueryReceipt> results_;

  obs::MetricsRegistry::Counter submitted_, cache_hits_, batches_,
      serial_executions_, skyline_queries_, knn_queries_, messages_,
      messages_saved_, serial_cell_visits_, unique_cell_visits_, retries_,
      failovers_, failed_legs_, events_lost_;
  sim::RunningStat batch_occupancy_;  ///< queries per flushed sink-group
  sim::RunningStat dedup_ratio_;      ///< serial / unique visits, per batch

  storage::FaultStats fault_seen_;  ///< system counters at the last absorb
  std::uint64_t now_ = 0;
  Ticket next_ticket_ = 1;
};

}  // namespace poolnet::engine
