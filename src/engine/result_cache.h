// Sink-side result cache for the query engine.
//
// Keyed on the NORMALIZED query rectangle — the bounds after don't-care
// rewriting, which is exactly the predicate matches() evaluates — so two
// queries differing only in their specification mask share one entry.
// Entries age out after a TTL of logical engine events, and invalidation
// is PRECISE: an insert whose value vector falls inside a cached
// rectangle erases that entry, while an insert outside it provably cannot
// change the answer and leaves the entry alone. expire_before-style data
// aging removes exactly the stored events detected before the cutoff, so
// cached answers stay exact after dropping those same events in place —
// entries survive aging instead of being cleared wholesale.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/event.h"
#include "storage/range_query.h"

namespace poolnet::engine {

struct ResultCacheConfig {
  bool enabled = false;

  /// Entry lifetime in logical engine events (see QueryEngine::now());
  /// 0 = entries never expire by age.
  std::uint64_t ttl = 0;
};

/// Parses a --qcache spec: "on", "off" or "ttl:<events>". Returns false
/// and sets `error` on a malformed spec.
bool parse_qcache_spec(const std::string& spec, ResultCacheConfig* config,
                       std::string* error);

/// Point-in-time view of the cache counters. The counters live in a
/// MetricsRegistry under "<prefix>.hits" etc.; stats() assembles this
/// struct from them on demand.
struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t invalidations = 0;  ///< entries erased by a covering insert
  std::uint64_t expirations = 0;    ///< entries erased by TTL

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class ResultCache {
 public:
  /// With a non-null `metrics`, counters register there under
  /// `<prefix>.hits` etc. (shared scrape surface); otherwise the cache
  /// owns a private registry.
  explicit ResultCache(ResultCacheConfig config,
                       obs::MetricsRegistry* metrics = nullptr,
                       const std::string& prefix = "result_cache");

  bool enabled() const { return config_.enabled; }
  const ResultCacheConfig& config() const { return config_; }

  /// Thin view assembled from the registry counters.
  ResultCacheStats stats() const;

  std::size_t size() const { return entries_.size(); }

  /// Fresh cached result for `q`, or nullptr (counting a miss). An entry
  /// older than the TTL is erased on contact and reported as a miss.
  const std::vector<storage::Event>* lookup(const storage::RangeQuery& q,
                                            std::uint64_t now);

  /// Stores (or refreshes) the result set for `q` stamped at `now`.
  void store(const storage::RangeQuery& q,
             std::vector<storage::Event> events, std::uint64_t now);

  /// Erases every entry whose rectangle contains `values` (the precise
  /// invalidation rule for an insert). Returns entries erased.
  std::size_t invalidate_containing(const storage::Values& values);

  /// Data aging: drops cached events detected before `cutoff` in place.
  /// Aging removes exactly those events from the store, so every entry's
  /// surviving set is the exact post-aging answer — no entry needs to be
  /// erased. Returns the number of entries that shrank.
  std::size_t expire_data_before(double cutoff);

  /// Drops everything (stats counters are kept).
  void clear();

 private:
  /// Bit patterns of the normalized per-dimension bounds. Sound as a key
  /// because RangeQuery::matches tests only the normalized bounds.
  struct Key {
    std::array<std::uint64_t, 2 * storage::kMaxDims> bits{};
    std::size_t dims = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Entry {
    storage::RangeQuery::Bounds rect;
    std::vector<storage::Event> events;
    std::uint64_t stored_at = 0;
  };

  static Key key_of(const storage::RangeQuery& q);
  bool expired(const Entry& e, std::uint64_t now) const {
    return config_.ttl > 0 && now - e.stored_at >= config_.ttl;
  }

  ResultCacheConfig config_;
  std::unordered_map<Key, Entry, KeyHash> entries_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  ///< fallback
  obs::MetricsRegistry::Counter hits_, misses_, insertions_, invalidations_,
      expirations_;
};

}  // namespace poolnet::engine
