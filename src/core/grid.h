// The grid-cell view of the deployment field (Section 2 of the paper).
//
// The field is divided into α×α m² cells; C(x,y) is the cell at column x,
// row y, with C(0,0) at the field origin. Each cell has exactly one index
// node — the sensor closest to the cell's center. At realistic densities
// many cells contain no sensor at all, so "closest to the center" is
// resolved network-wide (the GHT home-node convention; DESIGN.md §5): one
// physical sensor may serve several logical cells.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "net/network.h"

namespace poolnet::core {

/// Logical cell coordinates: x = column, y = row, both from 0.
struct CellCoord {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr bool operator==(CellCoord a, CellCoord b) {
    return a.x == b.x && a.y == b.y;
  }
};

class Grid {
 public:
  /// Overlays `cell_size` (the paper's α) cells on the network's field.
  Grid(const net::Network& network, double cell_size);

  double cell_size() const { return cell_size_; }
  std::int32_t cols() const { return cols_; }
  std::int32_t rows() const { return rows_; }

  bool in_bounds(CellCoord c) const {
    return c.x >= 0 && c.x < cols_ && c.y >= 0 && c.y < rows_;
  }

  /// Physical center of a cell.
  Point cell_center(CellCoord c) const;

  /// Native cell of a physical location: x = floor((a - x_orig)/α), etc.
  CellCoord cell_of_position(Point p) const;

  /// The cell's index node — the sensor nearest its center (cached).
  /// After failures this is the nearest SURVIVOR to the center (the
  /// paper's §2 election rule applied to the survivor set).
  net::NodeId index_node(CellCoord c) const;

  /// Failover: forget every cached election of `dead` so affected cells
  /// re-elect the nearest survivor on their next index_node() call.
  /// Returns the number of cells that lost their index node.
  std::size_t evict_node(net::NodeId dead);

 private:
  const net::Network& net_;
  double cell_size_;
  std::int32_t cols_;
  std::int32_t rows_;
  mutable std::vector<net::NodeId> index_cache_;  // lazily filled
};

}  // namespace poolnet::core
