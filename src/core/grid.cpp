#include "core/grid.h"

#include <cmath>

#include "common/assert.h"
#include "common/error.h"

namespace poolnet::core {

Grid::Grid(const net::Network& network, double cell_size)
    : net_(network), cell_size_(cell_size) {
  if (cell_size <= 0.0) throw ConfigError("Grid: cell size must be positive");
  const Rect& f = network.field();
  cols_ = static_cast<std::int32_t>(std::ceil(f.width() / cell_size));
  rows_ = static_cast<std::int32_t>(std::ceil(f.height() / cell_size));
  if (cols_ <= 0 || rows_ <= 0) throw ConfigError("Grid: degenerate field");
  index_cache_.assign(static_cast<std::size_t>(cols_) * rows_, net::kNoNode);
}

Point Grid::cell_center(CellCoord c) const {
  POOLNET_ASSERT(in_bounds(c));
  const Rect& f = net_.field();
  return {f.min_x + (static_cast<double>(c.x) + 0.5) * cell_size_,
          f.min_y + (static_cast<double>(c.y) + 0.5) * cell_size_};
}

CellCoord Grid::cell_of_position(Point p) const {
  const Rect& f = net_.field();
  auto cx = static_cast<std::int32_t>(std::floor((p.x - f.min_x) / cell_size_));
  auto cy = static_cast<std::int32_t>(std::floor((p.y - f.min_y) / cell_size_));
  if (cx < 0) cx = 0;
  if (cy < 0) cy = 0;
  if (cx >= cols_) cx = cols_ - 1;
  if (cy >= rows_) cy = rows_ - 1;
  return {cx, cy};
}

net::NodeId Grid::index_node(CellCoord c) const {
  POOLNET_ASSERT(in_bounds(c));
  const std::size_t key =
      static_cast<std::size_t>(c.y) * static_cast<std::size_t>(cols_) +
      static_cast<std::size_t>(c.x);
  net::NodeId& memo = index_cache_[key];
  if (memo == net::kNoNode) memo = net_.nearest_alive_node(cell_center(c));
  return memo;
}

std::size_t Grid::evict_node(net::NodeId dead) {
  std::size_t evicted = 0;
  for (net::NodeId& memo : index_cache_) {
    if (memo == dead) {
      memo = net::kNoNode;
      ++evicted;
    }
  }
  return evicted;
}

}  // namespace poolnet::core
