// Continuous nearest-neighbor monitoring — the paper's closing sentence:
// "we are extending the capability of Pool for providing more advanced
// functionalities including the continuous monitoring of the nearest
// neighbor queries."
//
// Semantics: the monitor tracks, at a sink node, the stored event nearest
// (Euclidean, attribute space) to a fixed target as NEW events keep
// arriving. Strategy:
//  1. resolve the current nearest with one expanding-box search;
//  2. subscribe a standing box query of half-width = current distance —
//     any future event that could beat the champion must land in that box;
//  3. on each notification, update the champion and, when the box has
//     shrunk enough to pay for re-registration, tighten the subscription.
//
// Tightening trades subscription churn (two Control trees) against
// notification traffic from the now-too-wide box; `tighten_factor`
// controls the trade (re-register when new_dist < factor * sub_dist).
//
// DEPRECATION NOTE: the one-shot nearest-event search that used to be
// this module's entry point is now a first-class query class — issue a
// KNearestQuery through DcsSystem::execute() (any system, any k). The
// monitor remains for the CONTINUOUS semantics only; its initial resolve
// goes through that same k-NN path, and PoolSystem::nearest_event
// survives purely as a k = 1 forwarding shim for legacy call sites.
#pragma once

#include <optional>

#include "core/pool_system.h"

namespace poolnet::core {

class NearestMonitor {
 public:
  /// Starts monitoring. Charges the initial NN search plus one
  /// subscription tree.
  NearestMonitor(PoolSystem& pool, net::NodeId sink,
                 storage::Values target, double tighten_factor = 0.5);

  NearestMonitor(const NearestMonitor&) = delete;
  NearestMonitor& operator=(const NearestMonitor&) = delete;

  /// Stops monitoring (cancels the standing subscription).
  ~NearestMonitor();

  /// Drains pending notifications and updates the champion. Returns true
  /// when the nearest event changed since the last poll.
  bool poll();

  /// Current nearest stored event (nullopt while the store is empty).
  const std::optional<storage::Event>& nearest() const { return nearest_; }

  /// Euclidean distance of the champion (meaningless when !nearest()).
  double distance() const { return distance_; }

  /// Subscription re-registrations performed so far (cost diagnostic).
  std::size_t retightenings() const { return retightenings_; }

 private:
  storage::RangeQuery box_query(double radius) const;
  double dist_to_target(const storage::Event& e) const;
  void resubscribe(double radius);

  PoolSystem& pool_;
  net::NodeId sink_;
  storage::Values target_;
  double tighten_factor_;

  std::optional<storage::Event> nearest_;
  double distance_ = 0.0;
  double subscribed_radius_ = 0.0;
  PoolSystem::SubscriptionId subscription_ = 0;
  std::size_t retightenings_ = 0;
};

}  // namespace poolnet::core
