// The Pool scheme's value-space arithmetic — Equation 1, Theorem 3.1,
// Theorem 3.2, and the cell-resolving loop of Algorithm 2.
//
// Everything here is pure math on [0,1] attribute values and cell offsets
// within one pool; no network involvement. Offsets are the paper's
// Horizontal Offset / Vertical Offset relative to the pool's pivot cell,
// both in [0, l-1].
#pragma once

#include <cstdint>
#include <vector>

#include "common/interval.h"
#include "storage/event.h"
#include "storage/range_query.h"

namespace poolnet::core {

/// Cell position within a pool, relative to the pivot (Definition 2.1).
struct CellOffset {
  std::uint32_t ho = 0;  ///< horizontal offset, column within the pool
  std::uint32_t vo = 0;  ///< vertical offset, row within the pool

  friend constexpr bool operator==(CellOffset a, CellOffset b) {
    return a.ho == b.ho && a.vo == b.vo;
  }
};

/// Equation 1: horizontal range of any cell in column `ho` of an l-sided
/// pool: [HO/l, (HO+1)/l).
HalfOpenInterval range_h(std::uint32_t ho, std::uint32_t l);

/// Equation 1: vertical range of the cell at (`ho`,`vo`):
/// [VO*(HO+1)/l², (VO+1)*(HO+1)/l²).
HalfOpenInterval range_v(std::uint32_t ho, std::uint32_t vo, std::uint32_t l);

/// Theorem 3.1: the cell that stores an event whose greatest attribute
/// value is `v_d1` and second greatest is `v_d2`:
/// HO = floor(v_d1 * l), VO = floor(v_d2 * l² / (HO+1)).
/// Values of exactly 1.0 land in the top column/row.
CellOffset cell_for_values(double v_d1, double v_d2, std::uint32_t l);

/// Theorem 3.2's derived ranges for pool `pool_dim` (0-based i):
///   R_H = [max(L1..Lk), U_i]
///   R_V = [max({L} - {L_i}), min(U_i, max({U} - {U_i}))]
/// Either may be empty, meaning the pool holds no qualifying events.
struct DerivedRanges {
  ClosedInterval rh;
  ClosedInterval rv;
};
DerivedRanges derived_ranges(const storage::RangeQuery& q,
                             std::size_t pool_dim);

/// Algorithm 2: all cell offsets of pool `pool_dim` whose Equation-1
/// ranges intersect the derived ranges — the cells relevant to `q`.
std::vector<CellOffset> relevant_cells(const storage::RangeQuery& q,
                                       std::size_t pool_dim, std::uint32_t l);

/// The pool an event belongs to and the two values driving Theorem 3.1,
/// for a given choice of greatest dimension `d1` (callers iterate over
/// Event::max_dims() when values tie; Section 4.1).
struct Placement {
  std::size_t pool_dim = 0;  ///< d1: pool P_{d1+1} in the paper's 1-based terms
  double v_d1 = 0.0;
  double v_d2 = 0.0;
};
Placement placement_for(const storage::Event& e, std::size_t d1);

}  // namespace poolnet::core
