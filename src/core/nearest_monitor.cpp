#include "core/nearest_monitor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace poolnet::core {

using storage::RangeQuery;

NearestMonitor::NearestMonitor(PoolSystem& pool, net::NodeId sink,
                               storage::Values target, double tighten_factor)
    : pool_(pool),
      sink_(sink),
      target_(target),
      tighten_factor_(tighten_factor) {
  if (target_.size() != pool_.dims())
    throw ConfigError("NearestMonitor: target dimensionality mismatch");
  if (tighten_factor <= 0.0 || tighten_factor >= 1.0)
    throw ConfigError("NearestMonitor: tighten_factor must be in (0,1)");

  const storage::QueryReceipt initial = pool_.execute(
      sink_, storage::KNearestQuery{target_, 1, 0.05});
  if (!initial.events.empty()) {
    nearest_ = initial.events.front();
    distance_ = dist_to_target(*nearest_);
  }
  // While the store is empty any event anywhere could become the nearest:
  // the standing box must cover the whole value space.
  const double radius = nearest_ ? distance_ : 1.0;
  resubscribe(std::max(radius, 1e-6));
}

NearestMonitor::~NearestMonitor() { pool_.unsubscribe(subscription_); }

RangeQuery NearestMonitor::box_query(double radius) const {
  RangeQuery::Bounds bounds;
  for (std::size_t d = 0; d < target_.size(); ++d) {
    bounds.push_back({std::max(0.0, target_[d] - radius),
                      std::min(1.0, target_[d] + radius)});
  }
  return RangeQuery(bounds);
}

double NearestMonitor::dist_to_target(const storage::Event& e) const {
  double d2 = 0.0;
  for (std::size_t d = 0; d < target_.size(); ++d) {
    const double diff = e.values[d] - target_[d];
    d2 += diff * diff;
  }
  return std::sqrt(d2);
}

void NearestMonitor::resubscribe(double radius) {
  if (subscription_ != 0) {
    pool_.unsubscribe(subscription_);
    ++retightenings_;
  }
  subscribed_radius_ = radius;
  subscription_ = pool_.subscribe(sink_, box_query(radius));
}

bool NearestMonitor::poll() {
  bool changed = false;
  for (auto& notification : pool_.take_notifications(subscription_)) {
    const double d = dist_to_target(notification.event);
    if (!nearest_ || d < distance_) {
      nearest_ = std::move(notification.event);
      distance_ = d;
      changed = true;
    }
  }
  // Tighten the standing box once the champion is meaningfully closer
  // than what we subscribed for; a positive floor avoids re-registering
  // forever as the distance approaches zero.
  if (changed && distance_ < tighten_factor_ * subscribed_radius_ &&
      subscribed_radius_ > 1e-3) {
    resubscribe(std::max(distance_, 1e-3));
  }
  return changed;
}

}  // namespace poolnet::core
