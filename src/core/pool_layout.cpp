#include "core/pool_layout.h"

#include "common/error.h"
#include "common/logging.h"

namespace poolnet::core {

namespace {
bool blocks_overlap(CellCoord a, CellCoord b, std::uint32_t side) {
  const auto s = static_cast<std::int32_t>(side);
  return a.x < b.x + s && b.x < a.x + s && a.y < b.y + s && b.y < a.y + s;
}
}  // namespace

PoolLayout::PoolLayout(std::vector<CellCoord> pivots, std::uint32_t side,
                       std::int32_t grid_cols, std::int32_t grid_rows)
    : pivots_(std::move(pivots)), side_(side) {
  if (side_ == 0) throw ConfigError("PoolLayout: side must be positive");
  if (pivots_.empty()) throw ConfigError("PoolLayout: no pools");
  const auto s = static_cast<std::int32_t>(side_);
  for (const CellCoord pc : pivots_) {
    if (pc.x < 0 || pc.y < 0 || pc.x + s > grid_cols || pc.y + s > grid_rows)
      throw ConfigError("PoolLayout: pool does not fit inside the grid");
  }
}

PoolLayout PoolLayout::random(const Grid& grid, std::size_t k,
                              std::uint32_t side, Rng& rng) {
  if (k == 0) throw ConfigError("PoolLayout: k must be positive");
  const auto s = static_cast<std::int32_t>(side);
  if (s > grid.cols() || s > grid.rows())
    throw ConfigError(
        "PoolLayout: pool side exceeds grid; enlarge the field or shrink l");

  const std::int32_t max_x = grid.cols() - s;
  const std::int32_t max_y = grid.rows() - s;

  // Prefer disjoint pools; a query then never visits the same physical
  // region for two pools. 64 attempts per pool is ample for realistic
  // configurations (k=3, l=10 in fields of thousands of cells).
  std::vector<CellCoord> pivots;
  for (std::size_t i = 0; i < k; ++i) {
    CellCoord chosen{};
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      chosen = {static_cast<std::int32_t>(rng.uniform_int(0, max_x)),
                static_cast<std::int32_t>(rng.uniform_int(0, max_y))};
      placed = true;
      for (const CellCoord prev : pivots) {
        if (blocks_overlap(prev, chosen, side)) {
          placed = false;
          break;
        }
      }
    }
    if (!placed) {
      POOLNET_WARN("PoolLayout: could not separate pool " << i
                   << "; allowing overlap");
    }
    pivots.push_back(chosen);
  }
  return PoolLayout(std::move(pivots), side, grid.cols(), grid.rows());
}

CellCoord PoolLayout::pivot(std::size_t pool_dim) const {
  POOLNET_ASSERT(pool_dim < pivots_.size());
  return pivots_[pool_dim];
}

CellCoord PoolLayout::cell(std::size_t pool_dim, CellOffset offset) const {
  POOLNET_ASSERT(offset.ho < side_ && offset.vo < side_);
  const CellCoord pc = pivot(pool_dim);
  return {pc.x + static_cast<std::int32_t>(offset.ho),
          pc.y + static_cast<std::int32_t>(offset.vo)};
}

bool PoolLayout::has_overlap() const {
  for (std::size_t i = 0; i < pivots_.size(); ++i) {
    for (std::size_t j = i + 1; j < pivots_.size(); ++j) {
      if (blocks_overlap(pivots_[i], pivots_[j], side_)) return true;
    }
  }
  return false;
}

}  // namespace poolnet::core
