// Pool placement in the grid.
//
// A k-dimensional deployment has k pools P_1..P_k, each an l×l block of
// cells anchored at a pivot cell (its lower-left corner). Pivot locations
// are chosen randomly (Section 2, following [7,13]); the layout is part of
// the predefined system configuration every node knows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/grid.h"
#include "core/pool_geometry.h"

namespace poolnet::core {

class PoolLayout {
 public:
  /// Explicit layout: `pivots[i]` anchors pool P_{i+1}. Every pool must
  /// fit inside the grid (pivot + l <= cols/rows); throws ConfigError.
  PoolLayout(std::vector<CellCoord> pivots, std::uint32_t side,
             std::int32_t grid_cols, std::int32_t grid_rows);

  /// Random placement of `k` pools of side `l`. Tries to keep pools
  /// pairwise disjoint (rejection sampling); falls back to overlapping
  /// placement when the grid is too crowded to separate them.
  static PoolLayout random(const Grid& grid, std::size_t k, std::uint32_t side,
                           Rng& rng);

  std::size_t pool_count() const { return pivots_.size(); }
  std::uint32_t side() const { return side_; }
  CellCoord pivot(std::size_t pool_dim) const;

  /// Grid cell of `offset` within pool `pool_dim` (pivot + offset).
  CellCoord cell(std::size_t pool_dim, CellOffset offset) const;

  /// True when any two pools share at least one cell.
  bool has_overlap() const;

 private:
  std::vector<CellCoord> pivots_;
  std::uint32_t side_;
};

}  // namespace poolnet::core
