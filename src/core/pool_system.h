// The Pool data-centric storage system — the paper's contribution.
//
// Deployment-time state: a Grid over the field, a PoolLayout of k pools,
// and (logically) one index node per pool cell. Runtime behaviour:
//
//  * insert (Algorithm 1): the event's greatest value picks the pool, the
//    greatest and second-greatest values pick the cell (Theorem 3.1), GPSR
//    carries the event to the cell's index node. Ties in the greatest
//    value store ONE copy at the candidate cell closest to the detection
//    point (Section 4.1).
//  * query (Algorithm 2 + Section 3.2.3): for each pool with relevant
//    cells, the sink forwards the query to the pool's splitter (the pool
//    index node closest to the sink); the splitter unicasts a copy to each
//    relevant cell; qualifying events flow back cell → splitter → sink,
//    aggregated (packed) at the splitter.
//  * workload sharing (Section 4.2): an index node whose resident load
//    reaches a threshold delegates subsequent storage to its least-loaded
//    radio neighbor; queries follow the delegation (one extra hop each
//    way). The mechanism trades a small message overhead for a bounded
//    per-node load under skewed workloads.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/grid.h"
#include "core/pool_geometry.h"
#include "core/pool_layout.h"
#include "net/network.h"
#include "routing/reliable.h"
#include "routing/router.h"
#include "storage/column/column_store.h"
#include "storage/dcs_system.h"

namespace poolnet::core {

struct PoolConfig {
  double cell_size = 5.0;        ///< α, meters (paper: 5 m)
  std::uint32_t side = 10;       ///< l, cells per pool side (paper: 10)
  std::uint64_t layout_seed = 42;  ///< pivot placement randomness

  bool workload_sharing = false;   ///< Section 4.2 mechanism on/off
  std::uint32_t share_threshold = 32;  ///< events a node holds before delegating

  /// Algorithm 1 line 4 ("Get the pivot cell of P_d1 through a DHT"):
  /// when true, pivot locations are served by a GHT-style directory and
  /// every node's FIRST use of a pool pays a Control-message round trip
  /// to the directory home (cached thereafter). The paper's evaluation
  /// treats pools as predefined, so the default charges nothing.
  bool charge_dht_lookup = false;

  /// Resilience extension (in the spirit of the paper's reference [7],
  /// resilient data-centric storage): store this many MIRROR copies of
  /// every event, each at the point-reflected offset
  /// (l-1-HO, l-1-VO) of a rotated pool P_{(d1 + r) mod k} — reflection
  /// decorrelates mirror load from primary load, so load-targeted
  /// failures cannot take out both copies. Mirrors are never returned by
  /// queries (no duplicate answers, Section 4.1's invariant); they exist
  /// so data survives index-node failures. Must be < dims. 0 disables.
  std::uint32_t replicas = 0;
};

class PoolSystem final : public storage::DcsSystem {
 public:
  /// Random pool layout derived from `config.layout_seed`.
  PoolSystem(net::Network& network, const routing::Router& router,
             std::size_t dims, PoolConfig config = {});

  /// Explicit layout (tests and worked-example reproduction).
  PoolSystem(net::Network& network, const routing::Router& router,
             std::size_t dims, PoolConfig config, PoolLayout layout);

  std::string name() const override { return "Pool"; }
  std::string describe() const override;
  std::size_t dims() const override { return dims_; }

  storage::InsertReceipt insert(net::NodeId source,
                                const storage::Event& event) override;
  storage::QueryReceipt query(net::NodeId sink,
                              const storage::RangeQuery& query) override;

  /// Distributed skyline with relevant-cell dominance pruning (the
  /// Theorem 3.2 machinery applied to dominance regions): the sink
  /// derives every cell's best-possible corner from Equation 1 —
  /// corner[d1] = (HO+1)/l in the pool dimension, (VO+1)(HO+1)/l² in
  /// every other (all bounded by the second-greatest value) — visits
  /// cells in descending corner order, and NEVER contacts a cell whose
  /// corner is already dominated by a collected event. Visited cells
  /// reply with their local skyline only.
  storage::QueryReceipt skyline(net::NodeId sink,
                                const storage::SkylineQuery& query) override;

  /// Distributed k-nearest-event search: expanding box queries through
  /// the normal resolving machinery (a box of half-width r covers every
  /// event within Euclidean distance r). Each visited cell answers with
  /// its local top-k regardless of the box, so a visited cell is never
  /// re-queried as the box grows; the search completes once the k-th
  /// best distance is inside the proven-covered radius. Generalizes
  /// nearest_event (which now forwards here with k = 1).
  storage::QueryReceipt k_nearest(net::NodeId sink,
                                  const storage::KNearestQuery& query) override;

  /// Merged multi-query execution: per pool, the relevant-cell sets of
  /// every query in the batch are unioned (Theorem 3.2 resolving is pure
  /// arithmetic, so the sink merges before transmitting anything), ONE
  /// probe travels the splitter tree over the union, and each visited
  /// cell replies once with the distinct matching events of all askers.
  /// Per-query results are identical to serial query() calls;
  /// messages_saved is exact on ideal links (DESIGN.md §8).
  storage::BatchQueryReceipt query_batch(
      net::NodeId sink,
      const std::vector<storage::RangeQuery>& queries) override;

  /// In-network aggregation (Section 3.2.3): each relevant cell reduces
  /// its matching events to one fixed-size partial, each splitter merges
  /// its pool's partials, and exactly one aggregate reply per involved
  /// pool travels back to the sink — reply traffic is independent of the
  /// number of qualifying events.
  storage::AggregateReceipt aggregate(net::NodeId sink,
                                      const storage::RangeQuery& query,
                                      storage::AggregateKind kind,
                                      std::size_t value_dim) override;

  std::size_t stored_count() const override { return stored_count_; }
  std::size_t expire_before(double cutoff) override;

  /// Online failover (the paper's §2 rule on the survivor set): affected
  /// cells re-elect the nearest SURVIVOR to their center as index node,
  /// splitters pointing at the dead node are re-picked on next use, and
  /// events resident at the dead node are restored from surviving mirrors
  /// (replicas > 0) — charged as Insert traffic from the mirror holder to
  /// the new index node — or counted lost. Idempotent per node.
  void handle_node_failure(net::NodeId dead) override;

  /// Nearest-neighbor query in ATTRIBUTE space (the paper's stated future
  /// work: "continuous monitoring of the nearest neighbor queries").
  /// LEGACY k = 1 entry point: since the k-NN query class landed this is
  /// a thin shim over k_nearest() (same expanding-box search, same
  /// traffic); prefer execute() with a KNearestQuery in new code.
  struct NnReceipt {
    std::optional<storage::Event> nearest;
    double distance = 0.0;  ///< Euclidean, attribute space; valid if nearest
    std::uint64_t messages = 0;
    std::size_t index_nodes_visited = 0;
    std::size_t rounds = 0;  ///< box expansions performed
  };
  NnReceipt nearest_event(net::NodeId sink, const storage::Values& target,
                          double initial_radius = 0.05);

  // --- continuous queries (Section 6 future work) -----------------------
  //
  // A subscription registers a standing range query at every cell that
  // can ever hold a matching event (the Theorem 3.2 relevant set — sound
  // for all FUTURE inserts too, because relevance depends only on the
  // query). Registration and cancellation each cost one forwarding tree
  // of Control messages; every matching insert afterwards pushes one
  // notification from the storing node to the subscriber.

  using SubscriptionId = std::uint64_t;

  struct Notification {
    SubscriptionId subscription;
    storage::Event event;
  };

  /// Registers `q` for `sink`; charges the registration tree. Matching
  /// events inserted from now on generate notifications.
  SubscriptionId subscribe(net::NodeId sink, const storage::RangeQuery& q);

  /// Cancels a subscription; charges the cancellation tree. Pending
  /// undelivered notifications are dropped. No-op on unknown ids.
  void unsubscribe(SubscriptionId id);

  /// Notifications delivered to the subscriber since the last call
  /// (their per-hop cost was charged at insert time).
  std::vector<Notification> take_notifications(SubscriptionId id);

  std::size_t active_subscriptions() const { return subscriptions_.size(); }

  // --- introspection for tests, examples and benches ---
  const net::Network& network() const { return net_; }
  const Grid& grid() const { return grid_; }
  const PoolLayout& layout() const { return layout_; }
  const PoolConfig& config() const { return config_; }

  /// Total relevant cells across pools for `q` (pruning diagnostic).
  std::size_t relevant_cell_count(const storage::RangeQuery& q) const;

  /// The pool's splitter for a sink at `sink`'s position.
  net::NodeId splitter_for(std::size_t pool_dim, net::NodeId sink) const;

  /// Cell (pool, offset) chosen for an event — exposes the Section 4.1
  /// tie-break decision without inserting.
  struct CellChoice {
    std::size_t pool_dim;
    CellOffset offset;
    CellCoord coord;
    net::NodeId index_node;
  };
  CellChoice choose_cell(net::NodeId source,
                         const storage::Event& event) const;

  /// Events resident in one pool cell (main holder + delegates).
  std::size_t cell_load(std::size_t pool_dim, CellOffset offset) const;

  /// Largest number of events any physical node holds (hotspot metric).
  std::uint64_t max_node_load() const;

  /// Mirror copies currently stored (0 unless config().replicas > 0).
  std::size_t replica_count() const { return replica_count_; }

  /// What a failure of `dead_nodes` would do to the stored data:
  /// an event is `recovered` when its primary holder dies but at least
  /// one mirror holder survives, `lost` when every holder dies.
  struct SurvivabilityReport {
    std::size_t total_events = 0;
    std::size_t primaries_lost = 0;  ///< primary holder among the dead
    std::size_t recovered = 0;       ///< rescued by a surviving mirror
    std::size_t lost = 0;            ///< all copies on dead nodes
  };
  SurvivabilityReport survivability(
      const std::vector<net::NodeId>& dead_nodes) const;

  const storage::column::ScanStats* scan_stats() const override {
    return &scan_stats_;
  }

 private:
  std::size_t cell_key(std::size_t pool_dim, CellOffset offset) const;
  net::NodeId pick_delegate(net::NodeId index_node) const;

  /// One reliable leg: send, accumulate retry/failure stats, and run
  /// failover for every node the delivery discovered dead. Returns a
  /// reference to the per-system scratch outcome — valid only until the
  /// next send_leg call, so consume it before sending again.
  const routing::LegOutcome& send_leg(net::NodeId from, net::NodeId to,
                                      net::MessageKind kind,
                                      std::uint64_t bits);

  /// Repairs a cell whose holders include silently-dead nodes (the index
  /// node's beacon table exposes them) so a query never fabricates
  /// answers from destroyed storage. No-op while everything is alive.
  void absorb_dead_holders(std::size_t key);

  /// Charges the DHT round trip for `node`'s first use of `pool_dim`'s
  /// pivot (no-op when lookups are free or already cached).
  void charge_pivot_lookup(net::NodeId node, std::size_t pool_dim);

  /// Directory home node of a pool's pivot record (GHT-style hash).
  net::NodeId directory_home(std::size_t pool_dim) const;

  net::Network& net_;
  const routing::Router& router_;
  std::size_t dims_;
  PoolConfig config_;

  /// Reused across every leg/route on the hot query/insert paths so a
  /// warm system issues them without heap traffic.
  routing::LegOutcome leg_scratch_;
  routing::RouteResult route_scratch_;
  Grid grid_;
  PoolLayout layout_;
  /// k * l^2 per-cell column stores. Each row carries the event plus meta
  /// columns: `holder` (the index node itself, or a delegate neighbor)
  /// and a replica flag (mirror copies, invisible to queries).
  std::vector<storage::column::ColumnStore> cells_;
  mutable storage::column::ScanStats scan_stats_;
  std::size_t stored_count_ = 0;
  std::size_t replica_count_ = 0;

  /// pivot_cache_[node * dims + pool] — set once the node has looked the
  /// pivot up (only allocated when charge_dht_lookup is on).
  std::vector<char> pivot_cache_;

  /// splitter_cache_[pool * n + sink] — the splitter depends only on the
  /// static layout and the sink position, so the l² index-node scan runs
  /// once per (pool, sink) and replays thereafter.
  mutable std::vector<net::NodeId> splitter_cache_;

  /// Nodes whose failure has already been absorbed (failover is
  /// idempotent per node). Allocated lazily on the first failure.
  std::vector<char> known_dead_;

  // --- continuous-query state ---
  struct Subscription {
    net::NodeId sink = net::kNoNode;
    storage::RangeQuery query;
    std::vector<storage::Event> pending;
  };
  /// Walks the registration tree for `q`, charging Control messages, and
  /// applies `per_cell` to each relevant cell key.
  void walk_registration_tree(net::NodeId sink, const storage::RangeQuery& q,
                              const std::function<void(std::size_t)>& per_cell);

  std::map<SubscriptionId, Subscription> subscriptions_;
  std::vector<std::vector<SubscriptionId>> cell_subs_;  // per cell key
  SubscriptionId next_subscription_ = 1;
};

}  // namespace poolnet::core
