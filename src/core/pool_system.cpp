#include "core/pool_system.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>

#include "common/error.h"

namespace poolnet::core {

using storage::Event;
using storage::InsertReceipt;
using storage::QueryReceipt;
using storage::RangeQuery;

namespace {
PoolLayout make_random_layout(const Grid& grid, std::size_t dims,
                              const PoolConfig& config) {
  Rng rng(config.layout_seed);
  return PoolLayout::random(grid, dims, config.side, rng);
}
}  // namespace

PoolSystem::PoolSystem(net::Network& network,
                       const routing::Router& router, std::size_t dims,
                       PoolConfig config)
    : PoolSystem(network, router, dims, config,
                 make_random_layout(Grid(network, config.cell_size), dims,
                                    config)) {}

PoolSystem::PoolSystem(net::Network& network,
                       const routing::Router& router, std::size_t dims,
                       PoolConfig config, PoolLayout layout)
    : net_(network),
      router_(router),
      dims_(dims),
      config_(config),
      grid_(network, config.cell_size),
      layout_(std::move(layout)) {
  if (dims == 0 || dims > storage::kMaxDims)
    throw ConfigError("PoolSystem: bad dimensionality");
  if (layout_.pool_count() != dims)
    throw ConfigError("PoolSystem: layout pool count != dims");
  if (layout_.side() != config_.side)
    throw ConfigError("PoolSystem: layout side != config side");
  if (config_.replicas >= dims_)
    throw ConfigError(
        "PoolSystem: replicas must be < dims (one rotated pool per mirror)");
  cells_.assign(dims * static_cast<std::size_t>(config_.side) * config_.side,
                storage::column::ColumnStore(dims, /*with_meta=*/true));
  for (auto& cell : cells_) cell.set_stats(&scan_stats_);
  cell_subs_.resize(cells_.size());
  splitter_cache_.assign(dims * net_.size(), net::kNoNode);

  if (config_.charge_dht_lookup) {
    pivot_cache_.assign(net_.size() * dims_, 0);
    // Publish each pivot record: its pool's pivot-cell index node writes
    // the record to the directory home (one Control unicast per pool).
    for (std::size_t p = 0; p < dims_; ++p) {
      const net::NodeId publisher = grid_.index_node(layout_.pivot(p));
      const net::NodeId home = directory_home(p);
      const auto leg = router_.route_to_node(publisher, home);
      net_.transmit_path(leg.path, net::MessageKind::Control,
                         net_.sizes().control_bits);
    }
  }
}

std::string PoolSystem::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Pool (l=%u, alpha=%gm, dims=%zu, replicas=%u%s%s)",
                config_.side, config_.cell_size, dims_, config_.replicas,
                config_.workload_sharing ? ", sharing" : "",
                config_.charge_dht_lookup ? ", dht-pivots" : "");
  return buf;
}

net::NodeId PoolSystem::directory_home(std::size_t pool_dim) const {
  // GHT-style hash of the pool id to a field location.
  std::uint64_t z = 0x7f4a7c15u + pool_dim;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const Rect& f = net_.field();
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  const double v =
      static_cast<double>((z * 0x9e3779b97f4a7c15ULL) >> 11) * 0x1.0p-53;
  return net_.nearest_node(
      {f.min_x + u * f.width(), f.min_y + v * f.height()});
}

void PoolSystem::charge_pivot_lookup(net::NodeId node, std::size_t pool_dim) {
  if (!config_.charge_dht_lookup) return;
  char& cached = pivot_cache_[node * dims_ + pool_dim];
  if (cached) return;
  cached = 1;
  const net::NodeId home = directory_home(pool_dim);
  router_.route_to_node_into(node, home, route_scratch_);
  net_.transmit_path(route_scratch_.path, net::MessageKind::Control,
                     net_.sizes().control_bits);
  router_.route_to_node_into(home, node, route_scratch_);
  net_.transmit_path(route_scratch_.path, net::MessageKind::Control,
                     net_.sizes().control_bits);
}

std::size_t PoolSystem::cell_key(std::size_t pool_dim,
                                 CellOffset offset) const {
  const std::size_t l = config_.side;
  POOLNET_ASSERT(pool_dim < dims_ && offset.ho < l && offset.vo < l);
  return (pool_dim * l + offset.vo) * l + offset.ho;
}

PoolSystem::CellChoice PoolSystem::choose_cell(net::NodeId source,
                                               const Event& event) const {
  const Point src_pos = net_.position(source);
  const auto candidates = event.max_dims();
  POOLNET_ASSERT(!candidates.empty());

  std::optional<CellChoice> best;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const std::size_t d1 = candidates[c];
    const Placement pl = placement_for(event, d1);
    const CellOffset off = cell_for_values(pl.v_d1, pl.v_d2, config_.side);
    const CellCoord coord = layout_.cell(d1, off);
    const double d2 = distance_sq(grid_.cell_center(coord), src_pos);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = CellChoice{d1, off, coord, grid_.index_node(coord)};
    }
  }
  return *best;
}

net::NodeId PoolSystem::pick_delegate(net::NodeId index_node) const {
  // Least-loaded radio neighbor; the index node keeps serving when it has
  // no neighbors at all (disconnected corner case).
  net::NodeId best = net::kNoNode;
  std::uint64_t best_load = std::numeric_limits<std::uint64_t>::max();
  for (const net::NodeId nb : net_.neighbors(index_node)) {
    if (!net_.alive(nb)) continue;
    const std::uint64_t load = net_.node(nb).stored_events;
    if (load < best_load || (load == best_load && nb < best)) {
      best_load = load;
      best = nb;
    }
  }
  return best;
}

const routing::LegOutcome& PoolSystem::send_leg(net::NodeId from,
                                                net::NodeId to,
                                                net::MessageKind kind,
                                                std::uint64_t bits) {
  routing::send_reliable_into(net_, router_, from, to, kind, bits, {},
                              leg_scratch_);
  fault_stats_.retries += leg_scratch_.retries;
  if (!leg_scratch_.delivered) ++fault_stats_.failed_legs;
  // handle_node_failure never re-enters send_leg (its repair traffic uses
  // send_reliable directly), so iterating the scratch here is safe.
  for (const net::NodeId d : leg_scratch_.dead_found) handle_node_failure(d);
  return leg_scratch_;
}

void PoolSystem::absorb_dead_holders(std::size_t key) {
  std::vector<net::NodeId> dead;
  const auto& cell = cells_[key];
  for (std::size_t row = 0; row < cell.size(); ++row) {
    const net::NodeId holder = cell.holder_at(row);
    if (net_.alive(holder)) continue;
    if (std::find(dead.begin(), dead.end(), holder) == dead.end())
      dead.push_back(holder);
  }
  for (const net::NodeId d : dead) handle_node_failure(d);
}

void PoolSystem::handle_node_failure(net::NodeId dead) {
  if (dead >= net_.size()) return;
  if (known_dead_.empty()) known_dead_.assign(net_.size(), 0);
  if (known_dead_[dead]) return;
  known_dead_[dead] = 1;

  // (1) Re-elect: affected cells pick the nearest survivor to their
  // center on next use; splitters pointing at the dead node re-scan.
  fault_stats_.failovers += grid_.evict_node(dead);
  for (net::NodeId& s : splitter_cache_)
    if (s == dead) s = net::kNoNode;

  // (2) Data resident at the dead node. Pure state first (no traffic
  // while we iterate), restoration traffic after.
  const std::uint32_t side = config_.side;
  const std::size_t l2 = static_cast<std::size_t>(side) * side;
  struct Restore {
    Event event;
    net::NodeId mirror_holder;
    std::size_t key;        // primary's cell
    CellCoord coord;        // primary's cell coordinate
  };
  std::vector<Restore> restores;
  for (std::size_t key = 0; key < cells_.size(); ++key) {
    auto& cell = cells_[key];
    const std::size_t pool_dim = key / l2;
    const CellOffset off{static_cast<std::uint32_t>(key % side),
                         static_cast<std::uint32_t>((key / side) % side)};
    cell.erase_if([&](std::size_t row) {
      if (cell.holder_at(row) != dead) return false;
      --net_.node_mut(dead).stored_events;
      if (cell.replica_at(row)) {
        --replica_count_;
        return true;
      }
      // Primary destroyed: a surviving mirror (reflected offset, rotated
      // pool) can re-materialize it at the cell's new index node.
      for (std::uint32_t r = 1; r <= config_.replicas; ++r) {
        const std::size_t mirror_pool = (pool_dim + r) % dims_;
        const CellOffset mirror_off{side - 1 - off.ho, side - 1 - off.vo};
        const auto& mirror = cells_[cell_key(mirror_pool, mirror_off)];
        for (std::size_t m = 0; m < mirror.size(); ++m) {
          if (!mirror.replica_at(m) || mirror.id_at(m) != cell.id_at(row))
            continue;
          if (!net_.alive(mirror.holder_at(m))) continue;
          restores.push_back({cell.event_at(row), mirror.holder_at(m), key,
                              layout_.cell(pool_dim, off)});
          return true;
        }
      }
      --stored_count_;
      ++fault_stats_.events_lost;
      return true;
    });
  }

  // (3) Restoration traffic: one Insert leg mirror-holder → new index
  // node per rescued event. Newly-discovered deaths are deferred until
  // this node's repair finishes (no re-entrant cell mutation).
  std::vector<net::NodeId> discovered;
  for (Restore& r : restores) {
    const net::NodeId new_idx = grid_.index_node(r.coord);
    bool stored = false;
    if (new_idx != net::kNoNode) {
      const auto leg = routing::send_reliable(net_, router_, r.mirror_holder,
                                              new_idx, net::MessageKind::Insert,
                                              net_.sizes().event_bits(dims_));
      fault_stats_.retries += leg.retries;
      for (const net::NodeId d : leg.dead_found)
        if (std::find(discovered.begin(), discovered.end(), d) ==
            discovered.end())
          discovered.push_back(d);
      if (leg.delivered) {
        cells_[r.key].append(r.event, new_idx, /*is_replica=*/false);
        ++net_.node_mut(new_idx).stored_events;
        ++fault_stats_.events_restored;
        stored = true;
      }
    }
    if (!stored) {
      ++fault_stats_.failed_legs;
      --stored_count_;
      ++fault_stats_.events_lost;
    }
  }
  for (const net::NodeId d : discovered) handle_node_failure(d);
}

InsertReceipt PoolSystem::insert(net::NodeId source, const Event& event) {
  storage::validate_event(event);
  if (event.dims() != dims_)
    throw ConfigError("PoolSystem: event dimensionality mismatch");

  const auto before = net_.traffic().total;
  // The detecting node needs the pivot of every candidate pool (all of
  // them under a Section 4.1 tie) to compute and compare cell locations.
  for (const std::size_t d1 : event.max_dims())
    charge_pivot_lookup(source, d1);
  const CellChoice choice = choose_cell(source, event);

  // Algorithm 1, lines 5-6: route the event to the cell's location; the
  // index node (nearest the center) receives it. If delivery exposes a
  // dead index node, failover re-elects the nearest survivor and the
  // source retries once toward the new election.
  net::NodeId target = choice.index_node;
  bool leg_delivered = send_leg(source, target, net::MessageKind::Insert,
                                net_.sizes().event_bits(dims_))
                           .delivered;
  if (!leg_delivered && net_.has_failures()) {
    const net::NodeId reelected = grid_.index_node(choice.coord);
    if (reelected != target && reelected != net::kNoNode) {
      target = reelected;
      leg_delivered = send_leg(source, target, net::MessageKind::Insert,
                               net_.sizes().event_bits(dims_))
                          .delivered;
    }
  }
  if (!leg_delivered) {
    // Event lost in transit (unreachable cell under heavy failure).
    ++fault_stats_.events_lost;
    InsertReceipt receipt;
    receipt.messages = net_.traffic().total - before;
    return receipt;
  }

  net::NodeId holder = target;
  if (config_.workload_sharing &&
      net_.node(holder).stored_events >= config_.share_threshold) {
    const net::NodeId delegate = pick_delegate(holder);
    if (delegate != net::kNoNode &&
        net_.node(delegate).stored_events <
            net_.node(holder).stored_events) {
      // One-hop handoff to the delegate (Section 4.2's workload transfer).
      if (net_.transmit(holder, delegate, net::MessageKind::Insert,
                        net_.sizes().event_bits(dims_)))
        holder = delegate;
    }
  }

  const std::size_t key = cell_key(choice.pool_dim, choice.offset);
  cells_[key].append(event, holder, /*is_replica=*/false);
  ++net_.node_mut(holder).stored_events;
  ++stored_count_;

  // Resilience mirrors: the POINT-REFLECTED offset in rotated pools.
  // Reflection matters: event load concentrates in high-offset cells
  // (HO tracks the maximum attribute value), so a same-offset mirror
  // would die together with its primary under load-correlated failures;
  // reflecting places mirrors in the lightly-loaded corner. Queries never
  // read mirrors (no duplicate answers); they only buy failure survival.
  for (std::uint32_t r = 1; r <= config_.replicas; ++r) {
    const std::size_t mirror_pool = (choice.pool_dim + r) % dims_;
    const CellOffset mirror_off{config_.side - 1 - choice.offset.ho,
                                config_.side - 1 - choice.offset.vo};
    const CellCoord mirror_coord = layout_.cell(mirror_pool, mirror_off);
    net::NodeId mirror_idx = grid_.index_node(mirror_coord);
    bool mirror_delivered =
        send_leg(source, mirror_idx, net::MessageKind::Insert,
                 net_.sizes().event_bits(dims_))
            .delivered;
    if (!mirror_delivered && net_.has_failures()) {
      const net::NodeId reelected = grid_.index_node(mirror_coord);
      if (reelected != mirror_idx && reelected != net::kNoNode) {
        mirror_idx = reelected;
        mirror_delivered = send_leg(source, mirror_idx,
                                    net::MessageKind::Insert,
                                    net_.sizes().event_bits(dims_))
                               .delivered;
      }
    }
    if (!mirror_delivered) continue;  // this mirror copy just isn't made
    cells_[cell_key(mirror_pool, mirror_off)].append(event, mirror_idx,
                                                     /*is_replica=*/true);
    ++net_.node_mut(mirror_idx).stored_events;
    ++replica_count_;
  }

  // Continuous queries registered at this cell: every match pushes one
  // notification from the storing node straight to the subscriber.
  for (const SubscriptionId sid : cell_subs_[key]) {
    auto& sub = subscriptions_.at(sid);
    if (!sub.query.matches(event)) continue;
    if (!net_.alive(sub.sink)) continue;  // subscriber died; drop silently
    if (holder != sub.sink) {
      router_.route_to_node_into(holder, sub.sink, route_scratch_);
      net_.transmit_path(route_scratch_.path, net::MessageKind::Reply,
                         net_.sizes().reply_bits(dims_, 1));
    }
    sub.pending.push_back(event);
  }

  InsertReceipt receipt;
  receipt.stored_at = holder;
  receipt.messages = net_.traffic().total - before;
  return receipt;
}

net::NodeId PoolSystem::splitter_for(std::size_t pool_dim,
                                     net::NodeId sink) const {
  POOLNET_ASSERT(pool_dim < dims_);
  net::NodeId& memo = splitter_cache_[pool_dim * net_.size() + sink];
  if (memo != net::kNoNode) return memo;
  const Point sink_pos = net_.position(sink);
  net::NodeId best = net::kNoNode;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::uint32_t vo = 0; vo < config_.side; ++vo) {
    for (std::uint32_t ho = 0; ho < config_.side; ++ho) {
      const net::NodeId idx =
          grid_.index_node(layout_.cell(pool_dim, {ho, vo}));
      const double d2 = distance_sq(net_.position(idx), sink_pos);
      if (d2 < best_d2 || (d2 == best_d2 && idx < best)) {
        best_d2 = d2;
        best = idx;
      }
    }
  }
  memo = best;
  return best;
}

std::size_t PoolSystem::relevant_cell_count(const RangeQuery& q) const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < dims_; ++i)
    total += relevant_cells(q, i, config_.side).size();
  return total;
}

QueryReceipt PoolSystem::query(net::NodeId sink, const RangeQuery& q) {
  if (q.dims() != dims_)
    throw ConfigError("PoolSystem: query dimensionality mismatch");

  QueryReceipt receipt;
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();

  for (std::size_t pool_dim = 0; pool_dim < dims_; ++pool_dim) {
    // Query resolving (Algorithm 2) is pure arithmetic on the predefined
    // layout, so the sink can already tell which pools are empty of
    // relevant cells and skip their splitters entirely.
    const auto cells = relevant_cells(q, pool_dim, config_.side);
    if (cells.empty()) continue;
    charge_pivot_lookup(sink, pool_dim);

    net::NodeId splitter = splitter_for(pool_dim, sink);
    bool splitter_reached = send_leg(sink, splitter, net::MessageKind::Query,
                                     net_.sizes().query_bits(dims_))
                                .delivered;
    if (!splitter_reached && net_.has_failures()) {
      // The splitter died: failover re-picked it (splitter_cache_ entry
      // was reset); retry once toward the new election.
      const net::NodeId repicked = splitter_for(pool_dim, sink);
      if (repicked != splitter) {
        splitter = repicked;
        splitter_reached = send_leg(sink, splitter, net::MessageKind::Query,
                                    net_.sizes().query_bits(dims_))
                               .delivered;
      }
    }
    if (!splitter_reached) continue;  // pool unreachable this query

    std::uint32_t pool_matches = 0;
    for (const CellOffset off : cells) {
      const std::size_t key = cell_key(pool_dim, off);
      if (net_.has_failures()) absorb_dead_holders(key);
      net::NodeId idx = grid_.index_node(layout_.cell(pool_dim, off));
      bool cell_reached = send_leg(splitter, idx, net::MessageKind::SubQuery,
                                   net_.sizes().query_bits(dims_))
                              .delivered;
      if (!cell_reached && net_.has_failures()) {
        const net::NodeId reelected =
            grid_.index_node(layout_.cell(pool_dim, off));
        if (reelected != idx && reelected != net::kNoNode) {
          idx = reelected;
          cell_reached = send_leg(splitter, idx, net::MessageKind::SubQuery,
                                  net_.sizes().query_bits(dims_))
                             .delivered;
        }
      }
      if (!cell_reached) continue;  // cell unreachable this query
      ++receipt.index_nodes_visited;

      // Scan the cell; with workload sharing some events sit one hop away
      // at delegates, which must be polled and must reply through the
      // index node.
      std::uint32_t here = 0;
      std::unordered_map<net::NodeId, std::uint32_t> at_delegate;
      const auto& cell = cells_[key];
      cell.scan(q, /*skip_replicas=*/true, [&](std::size_t row) {
        receipt.events.push_back(cell.event_at(row));
        const net::NodeId holder = cell.holder_at(row);
        if (holder == idx) {
          ++here;
        } else {
          ++at_delegate[holder];
        }
      });
      for (const auto& [delegate, found] : at_delegate) {
        // Forward the query one hop and bring batches back one hop.
        net_.transmit(idx, delegate, net::MessageKind::SubQuery,
                      sizes.query_bits(dims_));
        const std::uint64_t batches = sizes.reply_batches(found);
        for (std::uint64_t b = 0; b < batches; ++b) {
          net_.transmit(delegate, idx, net::MessageKind::Reply,
                        sizes.reply_bits(dims_, sizes.reply_payload(found)));
        }
        here += found;
      }

      // Cell replies travel back to the splitter along the tree.
      if (here > 0 && idx != splitter) {
        const std::uint64_t bits =
            sizes.reply_bits(dims_, sizes.reply_payload(here));
        const auto& back = send_leg(idx, splitter, net::MessageKind::Reply,
                                    bits);
        if (back.delivered) {
          const std::uint64_t batches = sizes.reply_batches(here);
          for (std::uint64_t b = 1; b < batches; ++b)
            net_.transmit_path(back.route.path, net::MessageKind::Reply, bits);
        }
      }
      pool_matches += here;
    }

    // The splitter aggregates the pool's events and returns them to the
    // sink (and would apply aggregate operators here; Section 3.2.3).
    if (pool_matches > 0 && splitter != sink) {
      const std::uint64_t bits =
          sizes.reply_bits(dims_, sizes.reply_payload(pool_matches));
      const auto& back = send_leg(splitter, sink, net::MessageKind::Reply,
                                  bits);
      if (back.delivered) {
        const std::uint64_t batches = sizes.reply_batches(pool_matches);
        for (std::uint64_t b = 1; b < batches; ++b)
          net_.transmit_path(back.route.path, net::MessageKind::Reply, bits);
      }
    }
  }

  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

QueryReceipt PoolSystem::skyline(net::NodeId sink,
                                 const storage::SkylineQuery& q) {
  if (q.dims() != dims_)
    throw ConfigError("PoolSystem: skyline dimensionality mismatch");

  QueryReceipt receipt;
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();

  // Equation 1 gives every cell's best-possible corner without any
  // messages: events in cell (HO,VO) of pool d1 have their d1 value
  // below (HO+1)/l and every OTHER attribute below the second-greatest
  // bound (VO+1)(HO+1)/l². Visit cells best-corner-first so collected
  // skyline points prune the rest.
  struct Candidate {
    double key;  ///< Σ corner over selected attrs (descending visit order)
    std::size_t pool_dim;
    CellOffset off;
    storage::Values corner;
  };
  std::vector<Candidate> cands;
  cands.reserve(cells_.size());
  for (std::size_t pool_dim = 0; pool_dim < dims_; ++pool_dim) {
    for (std::uint32_t vo = 0; vo < config_.side; ++vo) {
      for (std::uint32_t ho = 0; ho < config_.side; ++ho) {
        Candidate c{0.0, pool_dim, {ho, vo}, {}};
        const double top_h = range_h(ho, config_.side).hi;
        const double top_v = range_v(ho, vo, config_.side).hi;
        for (std::size_t d = 0; d < dims_; ++d)
          c.corner.push_back(d == pool_dim ? top_h : top_v);
        for (std::size_t d = 0; d < dims_; ++d)
          if (q.on(d)) c.key += c.corner[d];
        cands.push_back(std::move(c));
      }
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.key != b.key) return a.key > b.key;
              if (a.pool_dim != b.pool_dim) return a.pool_dim < b.pool_dim;
              if (a.off.ho != b.off.ho) return a.off.ho < b.off.ho;
              return a.off.vo < b.off.vo;
            });

  // Per-pool splitter contact happens lazily on the first visited cell;
  // kNoNode after a contact attempt means the pool is unreachable.
  std::vector<char> contacted(dims_, 0);
  std::vector<net::NodeId> splitters(dims_, net::kNoNode);
  std::vector<Event> collected;

  for (const Candidate& c : cands) {
    // The pruning rule: a cell whose corner is dominated by an already-
    // collected point can only hold dominated events (strictness against
    // the corner carries to every event at or below it) — skip it
    // without transmitting anything.
    if (!skyline_admits(q, collected, c.corner)) continue;

    if (!contacted[c.pool_dim]) {
      contacted[c.pool_dim] = 1;
      charge_pivot_lookup(sink, c.pool_dim);
      net::NodeId splitter = splitter_for(c.pool_dim, sink);
      bool reached = send_leg(sink, splitter, net::MessageKind::Query,
                              sizes.query_bits(dims_))
                         .delivered;
      if (!reached && net_.has_failures()) {
        const net::NodeId repicked = splitter_for(c.pool_dim, sink);
        if (repicked != splitter) {
          splitter = repicked;
          reached = send_leg(sink, splitter, net::MessageKind::Query,
                             sizes.query_bits(dims_))
                        .delivered;
        }
      }
      splitters[c.pool_dim] = reached ? splitter : net::kNoNode;
    }
    const net::NodeId splitter = splitters[c.pool_dim];
    if (splitter == net::kNoNode) continue;  // pool unreachable this query

    const std::size_t key = cell_key(c.pool_dim, c.off);
    if (net_.has_failures()) absorb_dead_holders(key);
    net::NodeId idx = grid_.index_node(layout_.cell(c.pool_dim, c.off));
    bool cell_reached = send_leg(splitter, idx, net::MessageKind::SubQuery,
                                 sizes.query_bits(dims_))
                            .delivered;
    if (!cell_reached && net_.has_failures()) {
      const net::NodeId reelected =
          grid_.index_node(layout_.cell(c.pool_dim, c.off));
      if (reelected != idx && reelected != net::kNoNode) {
        idx = reelected;
        cell_reached = send_leg(splitter, idx, net::MessageKind::SubQuery,
                                sizes.query_bits(dims_))
                           .delivered;
      }
    }
    if (!cell_reached) continue;
    ++receipt.index_nodes_visited;

    // The cell reduces its residents to their LOCAL skyline before
    // replying — reply volume shrinks, correctness is untouched (an
    // event dominated within its own cell is dominated globally).
    struct RowCand {
      Event e;
      net::NodeId holder;
    };
    std::vector<RowCand> rows;
    const auto& cell = cells_[key];
    for (std::size_t row = 0; row < cell.size(); ++row) {
      if (cell.replica_at(row)) continue;
      rows.push_back({cell.event_at(row), cell.holder_at(row)});
    }
    std::vector<RowCand> local;
    std::unordered_map<net::NodeId, std::uint32_t> at_delegate;
    for (const RowCand& r : rows) {
      bool dominated = false;
      for (const RowCand& other : rows)
        if (q.dominates(other.e.values, r.e.values)) {
          dominated = true;
          break;
        }
      if (dominated) continue;
      if (r.holder != idx) ++at_delegate[r.holder];
      local.push_back(r);
    }
    for (const auto& [delegate, found] : at_delegate) {
      // Poll the delegate one hop out; its candidates come back packed.
      net_.transmit(idx, delegate, net::MessageKind::SubQuery,
                    sizes.query_bits(dims_));
      const std::uint64_t batches = sizes.reply_batches(found);
      for (std::uint64_t b = 0; b < batches; ++b)
        net_.transmit(delegate, idx, net::MessageKind::Reply,
                      sizes.reply_bits(dims_, sizes.reply_payload(found)));
    }

    const std::uint32_t here = static_cast<std::uint32_t>(local.size());
    if (here == 0) continue;
    // Candidates flow back cell → splitter → sink immediately (the sink
    // needs them to prune the NEXT visit, so no pool-end aggregation).
    if (idx != splitter) {
      const std::uint64_t bits =
          sizes.reply_bits(dims_, sizes.reply_payload(here));
      const auto& back = send_leg(idx, splitter, net::MessageKind::Reply, bits);
      if (back.delivered) {
        const std::uint64_t batches = sizes.reply_batches(here);
        for (std::uint64_t b = 1; b < batches; ++b)
          net_.transmit_path(back.route.path, net::MessageKind::Reply, bits);
      }
    }
    if (splitter != sink) {
      const std::uint64_t bits =
          sizes.reply_bits(dims_, sizes.reply_payload(here));
      const auto& back =
          send_leg(splitter, sink, net::MessageKind::Reply, bits);
      if (back.delivered) {
        const std::uint64_t batches = sizes.reply_batches(here);
        for (std::uint64_t b = 1; b < batches; ++b)
          net_.transmit_path(back.route.path, net::MessageKind::Reply, bits);
      }
    }
    for (RowCand& r : local)
      if (skyline_admits(q, collected, r.e.values))
        collected.push_back(std::move(r.e));
  }

  storage::skyline_filter(q, collected);
  receipt.events = std::move(collected);
  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

QueryReceipt PoolSystem::k_nearest(net::NodeId sink,
                                   const storage::KNearestQuery& q) {
  if (q.dims() != dims_)
    throw ConfigError("PoolSystem: k-NN target dimensionality mismatch");
  if (q.initial_radius < 0.0)
    throw ConfigError("PoolSystem: k-NN initial radius must be positive");

  QueryReceipt receipt;
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();

  // (pool, cell-offset) pairs already queried; the sink can track these
  // because resolving is pure arithmetic on the predefined layout.
  std::vector<char> visited(cells_.size(), 0);
  std::vector<Event> cand;

  double radius = q.initial_radius > 0.0 ? q.initial_radius : 0.05;
  while (true) {
    ++receipt.rounds;
    const RangeQuery box = storage::box_around(q.target, radius);

    for (std::size_t pool_dim = 0; pool_dim < dims_; ++pool_dim) {
      const auto cells = relevant_cells(box, pool_dim, config_.side);
      // Only contact the splitter when the round adds unvisited cells.
      std::vector<CellOffset> fresh;
      for (const CellOffset off : cells) {
        if (!visited[cell_key(pool_dim, off)]) fresh.push_back(off);
      }
      if (fresh.empty()) continue;
      charge_pivot_lookup(sink, pool_dim);

      const net::NodeId splitter = splitter_for(pool_dim, sink);
      router_.route_to_node_into(sink, splitter, route_scratch_);
      net_.transmit_path(route_scratch_.path, net::MessageKind::Query,
                         sizes.query_bits(dims_));

      std::uint32_t pool_found = 0;
      for (const CellOffset off : fresh) {
        visited[cell_key(pool_dim, off)] = 1;
        const net::NodeId idx = grid_.index_node(layout_.cell(pool_dim, off));
        router_.route_to_node_into(splitter, idx, route_scratch_);
        net_.transmit_path(route_scratch_.path, net::MessageKind::SubQuery,
                           sizes.query_bits(dims_));
        ++receipt.index_nodes_visited;

        // The cell answers with its local top-k, box or not — the box
        // only chooses WHICH cells to visit; reporting the true local
        // optimum means a visited cell never needs re-querying when the
        // box later grows.
        std::vector<Event> local;
        const auto& cell = cells_[cell_key(pool_dim, off)];
        for (std::size_t row = 0; row < cell.size(); ++row) {
          if (cell.replica_at(row)) continue;
          local.push_back(cell.event_at(row));
        }
        storage::knn_filter(q, local);
        const auto found = static_cast<std::uint32_t>(local.size());
        if (found > 0) {
          if (idx != splitter) {
            const std::uint64_t bits =
                sizes.reply_bits(dims_, sizes.reply_payload(found));
            router_.route_to_node_into(idx, splitter, route_scratch_);
            const std::uint64_t batches = sizes.reply_batches(found);
            for (std::uint64_t b = 0; b < batches; ++b)
              net_.transmit_path(route_scratch_.path, net::MessageKind::Reply,
                                 bits);
          }
          pool_found += found;
          for (Event& e : local) cand.push_back(std::move(e));
        }
      }
      if (pool_found > 0) {
        storage::knn_filter(q, cand);  // sink keeps only the running top-k
        if (splitter != sink) {
          const std::uint64_t bits =
              sizes.reply_bits(dims_, sizes.reply_payload(pool_found));
          router_.route_to_node_into(splitter, sink, route_scratch_);
          const std::uint64_t batches = sizes.reply_batches(pool_found);
          for (std::uint64_t b = 0; b < batches; ++b)
            net_.transmit_path(route_scratch_.path, net::MessageKind::Reply,
                               bits);
        }
      }
    }

    // Complete when the k-th candidate lies within the proven-covered
    // radius, or the box already spans the whole value space.
    if (cand.size() >= q.k &&
        std::sqrt(storage::knn_kth_distance2(q, cand)) <= radius)
      break;
    if (radius >= 1.0) break;  // whole space searched
    radius = std::min(1.0, radius * 2.0);
  }

  storage::knn_filter(q, cand);
  receipt.events = std::move(cand);
  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

storage::BatchQueryReceipt PoolSystem::query_batch(
    net::NodeId sink, const std::vector<RangeQuery>& queries) {
  // A batch of 0 or 1 gains nothing from merging; fall back to the
  // serial default so single-query receipts stay exact.
  if (queries.size() < 2) return DcsSystem::query_batch(sink, queries);
  // Merged execution assumes a static, fully-alive network (its savings
  // accounting rides on shared loss-free routes). Once nodes have died,
  // run serially — the serial path carries the detection/retry/failover
  // machinery.
  if (net_.has_failures()) return DcsSystem::query_batch(sink, queries);
  for (const RangeQuery& q : queries)
    if (q.dims() != dims_)
      throw ConfigError("PoolSystem: query dimensionality mismatch");

  storage::BatchQueryReceipt batch;
  batch.per_query.resize(queries.size());
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();
  const auto hops = [](const routing::RouteResult& r) -> std::uint64_t {
    return static_cast<std::uint64_t>(r.hops());
  };
  // What issuing each query alone would have charged, accumulated from
  // the hop counts of the legs the merged walk computes (every serial
  // leg is also a union leg, so the routes are already at hand).
  std::uint64_t serial_cost = 0;

  for (std::size_t pool_dim = 0; pool_dim < dims_; ++pool_dim) {
    std::vector<std::vector<CellOffset>> qcells(queries.size());
    std::vector<std::size_t> users;  // queries with relevant cells here
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      qcells[qi] = relevant_cells(queries[qi], pool_dim, config_.side);
      if (!qcells[qi].empty()) users.push_back(qi);
    }
    if (users.empty()) continue;

    {
      // The pivot lookup is cached per (node, pool), so serial execution
      // would charge exactly the same first-use round trip.
      const auto t0 = net_.traffic().total;
      charge_pivot_lookup(sink, pool_dim);
      serial_cost += net_.traffic().total - t0;
    }

    const net::NodeId splitter = splitter_for(pool_dim, sink);
    router_.route_to_node_into(sink, splitter, route_scratch_);
    net_.transmit_path(route_scratch_.path, net::MessageKind::Query,
                       sizes.query_bits(dims_));
    serial_cost += users.size() * hops(route_scratch_);

    // Union of relevant cells in first-seen order, with the member
    // queries that asked for each cell.
    struct Visit {
      CellOffset off;
      std::vector<std::size_t> members;
    };
    std::vector<Visit> visits;
    std::unordered_map<std::size_t, std::size_t> visit_at;  // key → index
    for (const std::size_t qi : users) {
      for (const CellOffset off : qcells[qi]) {
        const auto [it, fresh] =
            visit_at.try_emplace(cell_key(pool_dim, off), visits.size());
        if (fresh) visits.push_back({off, {}});
        visits[it->second].members.push_back(qi);
      }
      batch.serial_cell_visits += qcells[qi].size();
      batch.per_query[qi].index_nodes_visited += qcells[qi].size();
    }
    batch.unique_cell_visits += visits.size();
    batch.index_nodes_visited += visits.size();

    std::map<std::size_t, std::uint32_t> pool_matches;  // per member query
    std::uint32_t pool_union = 0;

    for (const Visit& v : visits) {
      const std::size_t key = cell_key(pool_dim, v.off);
      const net::NodeId idx = grid_.index_node(layout_.cell(pool_dim, v.off));
      router_.route_to_node_into(splitter, idx, route_scratch_);
      net_.transmit_path(route_scratch_.path, net::MessageKind::SubQuery,
                         sizes.query_bits(dims_));
      serial_cost += v.members.size() * hops(route_scratch_);

      // One scan of the cell serves every member: count each member's
      // matches (split by holder, for the delegate economics) and the
      // DISTINCT matching events that actually travel back.
      std::uint32_t union_here = 0;
      std::map<net::NodeId, std::uint32_t> union_at_delegate;
      std::vector<std::uint32_t> member_total(v.members.size(), 0);
      std::map<net::NodeId, std::vector<std::uint32_t>> member_at_delegate;
      const auto& cell = cells_[key];
      for (std::size_t row = 0; row < cell.size(); ++row) {
        if (cell.replica_at(row)) continue;
        const net::NodeId holder = cell.holder_at(row);
        bool any = false;
        for (std::size_t mi = 0; mi < v.members.size(); ++mi) {
          if (!cell.row_matches(queries[v.members[mi]], row)) continue;
          any = true;
          ++member_total[mi];
          if (holder != idx) {
            auto& per = member_at_delegate[holder];
            if (per.empty()) per.assign(v.members.size(), 0);
            ++per[mi];
          }
        }
        if (!any) continue;
        if (holder == idx) {
          ++union_here;
        } else {
          ++union_at_delegate[holder];
        }
      }

      std::uint32_t union_total = union_here;
      for (const auto& [delegate, found] : union_at_delegate) {
        // The index node polls the delegate once for all members.
        net_.transmit(idx, delegate, net::MessageKind::SubQuery,
                      sizes.query_bits(dims_));
        const std::uint64_t batches = sizes.reply_batches(found);
        for (std::uint64_t b = 0; b < batches; ++b) {
          net_.transmit(delegate, idx, net::MessageKind::Reply,
                        sizes.reply_bits(dims_, sizes.reply_payload(found)));
        }
        union_total += found;
        // Serial: each member with matches at this delegate would poll it
        // and pull its own reply batches, all single-hop.
        const auto& per = member_at_delegate.at(delegate);
        for (std::size_t mi = 0; mi < v.members.size(); ++mi) {
          if (per[mi] > 0) serial_cost += 1 + sizes.reply_batches(per[mi]);
        }
      }

      if (union_total > 0 && idx != splitter) {
        router_.route_to_node_into(idx, splitter, route_scratch_);
        const std::uint64_t batches = sizes.reply_batches(union_total);
        for (std::uint64_t b = 0; b < batches; ++b) {
          net_.transmit_path(
              route_scratch_.path, net::MessageKind::Reply,
              sizes.reply_bits(dims_, sizes.reply_payload(union_total)));
        }
        for (std::size_t mi = 0; mi < v.members.size(); ++mi) {
          serial_cost +=
              sizes.reply_batches(member_total[mi]) * hops(route_scratch_);
        }
      }
      for (std::size_t mi = 0; mi < v.members.size(); ++mi)
        pool_matches[v.members[mi]] += member_total[mi];
      pool_union += union_total;
    }

    if (pool_union > 0 && splitter != sink) {
      router_.route_to_node_into(splitter, sink, route_scratch_);
      const std::uint64_t batches = sizes.reply_batches(pool_union);
      for (std::uint64_t b = 0; b < batches; ++b) {
        net_.transmit_path(
            route_scratch_.path, net::MessageKind::Reply,
            sizes.reply_bits(dims_, sizes.reply_payload(pool_union)));
      }
      for (const auto& [qi, matched] : pool_matches)
        serial_cost += sizes.reply_batches(matched) * hops(route_scratch_);
    }

    // Demultiplex: each query collects its events by walking ITS OWN
    // relevant-cell list in resolver order — exactly the order serial
    // query() appends in, so the per-query result is identical even
    // though the union visited the cells in a different order.
    for (const std::size_t qi : users) {
      auto& events = batch.per_query[qi].events;
      for (const CellOffset off : qcells[qi]) {
        const auto& cell = cells_[cell_key(pool_dim, off)];
        cell.scan(queries[qi], /*skip_replicas=*/true, [&](std::size_t row) {
          events.push_back(cell.event_at(row));
        });
      }
    }
  }

  const auto delta = net_.traffic() - before;
  batch.cost() = storage::cost_of(delta);
  if (net_.loss_model().loss_probability == 0.0 && net_.extra_loss() == 0.0)
    POOLNET_ASSERT(serial_cost >= delta.total);
  batch.messages_saved =
      serial_cost >= delta.total ? serial_cost - delta.total : 0;
  return batch;
}

storage::AggregateReceipt PoolSystem::aggregate(net::NodeId sink,
                                                const RangeQuery& q,
                                                storage::AggregateKind kind,
                                                std::size_t value_dim) {
  if (q.dims() != dims_)
    throw ConfigError("PoolSystem: query dimensionality mismatch");
  if (value_dim >= dims_)
    throw ConfigError("PoolSystem: aggregate dimension out of range");

  storage::AggregateReceipt receipt;
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();
  storage::PartialAggregate total;

  for (std::size_t pool_dim = 0; pool_dim < dims_; ++pool_dim) {
    const auto cells = relevant_cells(q, pool_dim, config_.side);
    if (cells.empty()) continue;
    charge_pivot_lookup(sink, pool_dim);

    net::NodeId splitter = splitter_for(pool_dim, sink);
    bool splitter_reached = send_leg(sink, splitter, net::MessageKind::Query,
                                     sizes.query_bits(dims_))
                                .delivered;
    if (!splitter_reached && net_.has_failures()) {
      const net::NodeId repicked = splitter_for(pool_dim, sink);
      if (repicked != splitter) {
        splitter = repicked;
        splitter_reached = send_leg(sink, splitter, net::MessageKind::Query,
                                    sizes.query_bits(dims_))
                               .delivered;
      }
    }
    if (!splitter_reached) continue;

    storage::PartialAggregate pool_partial;
    for (const CellOffset off : cells) {
      const std::size_t key = cell_key(pool_dim, off);
      if (net_.has_failures()) absorb_dead_holders(key);
      net::NodeId idx = grid_.index_node(layout_.cell(pool_dim, off));
      bool cell_reached = send_leg(splitter, idx, net::MessageKind::SubQuery,
                                   sizes.query_bits(dims_))
                              .delivered;
      if (!cell_reached && net_.has_failures()) {
        const net::NodeId reelected =
            grid_.index_node(layout_.cell(pool_dim, off));
        if (reelected != idx && reelected != net::kNoNode) {
          idx = reelected;
          cell_reached = send_leg(splitter, idx, net::MessageKind::SubQuery,
                                  sizes.query_bits(dims_))
                             .delivered;
        }
      }
      if (!cell_reached) continue;
      ++receipt.index_nodes_visited;

      storage::PartialAggregate cell_partial;
      std::unordered_map<net::NodeId, storage::PartialAggregate> at_delegate;
      const auto& cell = cells_[key];
      cell.scan(q, /*skip_replicas=*/true, [&](std::size_t row) {
        const double v = cell.value_at(row, value_dim);
        const net::NodeId holder = cell.holder_at(row);
        if (holder == idx) {
          cell_partial.add(v);
        } else {
          at_delegate[holder].add(v);
        }
      });
      for (const auto& [delegate, partial] : at_delegate) {
        // One hop out, one fixed-size partial back.
        net_.transmit(idx, delegate, net::MessageKind::SubQuery,
                      sizes.query_bits(dims_));
        net_.transmit(delegate, idx, net::MessageKind::Reply,
                      sizes.aggregate_bits());
        cell_partial.merge(partial);
      }

      if (!cell_partial.empty()) {
        pool_partial.merge(cell_partial);
        if (idx != splitter)
          send_leg(idx, splitter, net::MessageKind::Reply,
                   sizes.aggregate_bits());
      }
    }

    if (!pool_partial.empty()) {
      total.merge(pool_partial);
      if (splitter != sink)
        send_leg(splitter, sink, net::MessageKind::Reply,
                 sizes.aggregate_bits());
    }
  }

  receipt.result = total.finalize(kind);
  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

void PoolSystem::walk_registration_tree(
    net::NodeId sink, const RangeQuery& q,
    const std::function<void(std::size_t)>& per_cell) {
  const auto& sizes = net_.sizes();
  for (std::size_t pool_dim = 0; pool_dim < dims_; ++pool_dim) {
    const auto cells = relevant_cells(q, pool_dim, config_.side);
    if (cells.empty()) continue;
    charge_pivot_lookup(sink, pool_dim);

    const net::NodeId splitter = splitter_for(pool_dim, sink);
    router_.route_to_node_into(sink, splitter, route_scratch_);
    net_.transmit_path(route_scratch_.path, net::MessageKind::Control,
                       sizes.query_bits(dims_));
    for (const CellOffset off : cells) {
      const net::NodeId idx = grid_.index_node(layout_.cell(pool_dim, off));
      router_.route_to_node_into(splitter, idx, route_scratch_);
      net_.transmit_path(route_scratch_.path, net::MessageKind::Control,
                         sizes.query_bits(dims_));
      per_cell(cell_key(pool_dim, off));
    }
  }
}

PoolSystem::SubscriptionId PoolSystem::subscribe(net::NodeId sink,
                                                 const RangeQuery& q) {
  if (q.dims() != dims_)
    throw ConfigError("PoolSystem: subscription dimensionality mismatch");
  const SubscriptionId id = next_subscription_++;
  subscriptions_.emplace(id, Subscription{sink, q, {}});
  walk_registration_tree(sink, q, [&](std::size_t key) {
    cell_subs_[key].push_back(id);
  });
  return id;
}

void PoolSystem::unsubscribe(SubscriptionId id) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  walk_registration_tree(it->second.sink, it->second.query,
                         [&](std::size_t key) {
                           auto& subs = cell_subs_[key];
                           std::erase(subs, id);
                         });
  subscriptions_.erase(it);
}

std::vector<PoolSystem::Notification> PoolSystem::take_notifications(
    SubscriptionId id) {
  std::vector<Notification> out;
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return out;
  for (storage::Event& e : it->second.pending)
    out.push_back({id, std::move(e)});
  it->second.pending.clear();
  return out;
}

PoolSystem::NnReceipt PoolSystem::nearest_event(net::NodeId sink,
                                                const storage::Values& target,
                                                double initial_radius) {
  // Legacy k = 1 shim over the k-NN query class (same expanding-box
  // search, same traffic pattern).
  if (initial_radius <= 0.0)
    throw ConfigError("PoolSystem: NN initial radius must be positive");

  storage::KNearestQuery q;
  q.target = target;
  q.k = 1;
  q.initial_radius = initial_radius;
  QueryReceipt r = k_nearest(sink, q);

  NnReceipt receipt;
  receipt.messages = r.messages;
  receipt.index_nodes_visited = r.index_nodes_visited;
  receipt.rounds = r.rounds;
  if (!r.events.empty()) {
    receipt.distance =
        std::sqrt(storage::squared_distance(target, r.events.front().values));
    receipt.nearest = std::move(r.events.front());
  }
  return receipt;
}

std::size_t PoolSystem::expire_before(double cutoff) {
  std::size_t primaries_removed = 0;
  for (auto& cell : cells_) {
    cell.erase_if([&](std::size_t row) {
      if (cell.time_at(row) >= cutoff) return false;
      --net_.node_mut(cell.holder_at(row)).stored_events;
      if (cell.replica_at(row)) {
        --replica_count_;
      } else {
        ++primaries_removed;
      }
      return true;
    });
  }
  stored_count_ -= primaries_removed;
  return primaries_removed;
}

std::size_t PoolSystem::cell_load(std::size_t pool_dim,
                                  CellOffset offset) const {
  return cells_[cell_key(pool_dim, offset)].size();
}

PoolSystem::SurvivabilityReport PoolSystem::survivability(
    const std::vector<net::NodeId>& dead_nodes) const {
  std::vector<char> dead(net_.size(), 0);
  for (const net::NodeId n : dead_nodes) {
    POOLNET_ASSERT(n < net_.size());
    dead[n] = 1;
  }
  // Per event id: did the primary die, does any mirror survive?
  std::unordered_map<std::uint64_t, std::pair<bool, bool>> state;
  state.reserve(stored_count_);
  for (const auto& cell : cells_) {
    for (std::size_t row = 0; row < cell.size(); ++row) {
      auto& [primary_dead, mirror_alive] = state[cell.id_at(row)];
      if (cell.replica_at(row)) {
        if (!dead[cell.holder_at(row)]) mirror_alive = true;
      } else {
        primary_dead = dead[cell.holder_at(row)] != 0;
      }
    }
  }
  SurvivabilityReport report;
  report.total_events = state.size();
  for (const auto& [id, s] : state) {
    if (!s.first) continue;  // primary survived
    ++report.primaries_lost;
    if (s.second) {
      ++report.recovered;
    } else {
      ++report.lost;
    }
  }
  return report;
}

std::uint64_t PoolSystem::max_node_load() const {
  std::uint64_t mx = 0;
  for (const auto& n : net_.nodes()) mx = std::max(mx, n.stored_events);
  return mx;
}

}  // namespace poolnet::core
