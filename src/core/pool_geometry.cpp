#include "core/pool_geometry.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace poolnet::core {

using storage::RangeQuery;

HalfOpenInterval range_h(std::uint32_t ho, std::uint32_t l) {
  POOLNET_ASSERT(l > 0 && ho < l);
  const double dl = static_cast<double>(l);
  return {static_cast<double>(ho) / dl, static_cast<double>(ho + 1) / dl};
}

HalfOpenInterval range_v(std::uint32_t ho, std::uint32_t vo, std::uint32_t l) {
  POOLNET_ASSERT(l > 0 && ho < l && vo < l);
  const double slice = static_cast<double>(ho + 1) /
                       (static_cast<double>(l) * static_cast<double>(l));
  return {static_cast<double>(vo) * slice, static_cast<double>(vo + 1) * slice};
}

CellOffset cell_for_values(double v_d1, double v_d2, std::uint32_t l) {
  if (l == 0) throw ConfigError("pool side length must be positive");
  POOLNET_ASSERT_MSG(v_d1 >= 0.0 && v_d1 <= 1.0 && v_d2 >= 0.0 && v_d2 <= 1.0,
                     "attribute values must be normalized to [0,1]");
  POOLNET_ASSERT_MSG(v_d2 <= v_d1, "v_d2 must not exceed the greatest value");
  const double dl = static_cast<double>(l);

  auto ho = static_cast<std::uint32_t>(std::floor(v_d1 * dl));
  if (ho >= l) ho = l - 1;  // v_d1 == 1.0 lands in the top column
  // Reconcile against Equation 1, which is what query resolving compares
  // with: floor(v*l) and the range endpoints round differently in binary
  // (e.g. 0.7*10 rounds to exactly 7.0 while 7/10 > 0.7), and the storage
  // cell MUST be the one whose half-open ranges contain the value.
  while (ho > 0 && v_d1 < range_h(ho, l).lo) --ho;
  while (ho + 1 < l && v_d1 >= range_h(ho, l).hi) ++ho;

  auto vo = static_cast<std::uint32_t>(
      std::floor(v_d2 * dl * dl / static_cast<double>(ho + 1)));
  if (vo >= l) vo = l - 1;  // guard the v_d2 == v_d1 == (HO+1)/l float edge
  while (vo > 0 && v_d2 < range_v(ho, vo, l).lo) --vo;
  while (vo + 1 < l && v_d2 >= range_v(ho, vo, l).hi) ++vo;
  return {ho, vo};
}

DerivedRanges derived_ranges(const RangeQuery& q, std::size_t pool_dim) {
  POOLNET_ASSERT(pool_dim < q.dims());
  double max_l_all = 0.0;
  double max_l_others = 0.0;
  double max_u_others = 0.0;
  for (std::size_t j = 0; j < q.dims(); ++j) {
    const ClosedInterval b = q.bound(j);
    max_l_all = std::max(max_l_all, b.lo);
    if (j != pool_dim) {
      max_l_others = std::max(max_l_others, b.lo);
      max_u_others = std::max(max_u_others, b.hi);
    }
  }
  const ClosedInterval bi = q.bound(pool_dim);
  DerivedRanges r;
  r.rh = {max_l_all, bi.hi};
  if (q.dims() == 1) {
    // Degenerate single-attribute deployment: no "second greatest" exists;
    // the vertical dimension carries no constraint.
    r.rv = {0.0, bi.hi};
  } else {
    r.rv = {max_l_others, std::min(bi.hi, max_u_others)};
  }
  return r;
}

std::vector<CellOffset> relevant_cells(const RangeQuery& q,
                                       std::size_t pool_dim, std::uint32_t l) {
  if (l == 0) throw ConfigError("pool side length must be positive");
  std::vector<CellOffset> out;
  DerivedRanges r = derived_ranges(q, pool_dim);
  if (r.rh.empty() || r.rv.empty()) return out;  // Algorithm 2's guard
  // Theorem 3.1 clamps values of exactly 1.0 into the top cell, whose
  // Equation-1 ranges are half-open below 1.0; clamp the derived query
  // ranges identically so bounds touching 1.0 still hit that cell.
  constexpr double kTopClamp = 1.0 - 1e-12;
  r.rh.lo = std::min(r.rh.lo, kTopClamp);
  r.rh.hi = std::min(r.rh.hi, kTopClamp);
  r.rv.lo = std::min(r.rv.lo, kTopClamp);
  r.rv.hi = std::min(r.rv.hi, kTopClamp);
  for (std::uint32_t ho = 0; ho < l; ++ho) {
    if (!intersects(range_h(ho, l), r.rh)) continue;
    for (std::uint32_t vo = 0; vo < l; ++vo) {
      if (intersects(range_v(ho, vo, l), r.rv)) out.push_back({ho, vo});
    }
  }
  return out;
}

Placement placement_for(const storage::Event& e, std::size_t d1) {
  POOLNET_ASSERT(d1 < e.dims());
  Placement p;
  p.pool_dim = d1;
  p.v_d1 = e.values[d1];
  p.v_d2 = 0.0;
  for (std::size_t j = 0; j < e.dims(); ++j) {
    if (j != d1) p.v_d2 = std::max(p.v_d2, e.values[j]);
  }
  if (e.dims() == 1) p.v_d2 = 0.0;
  return p;
}

}  // namespace poolnet::core
