#include "sim/simulator.h"

#include "common/assert.h"

namespace poolnet::sim {

void Simulator::schedule_in(Time delay, std::function<void()> action) {
  POOLNET_ASSERT(delay >= 0.0);
  queue_.push(now_ + delay, std::move(action));
}

void Simulator::schedule_at(Time t, std::function<void()> action) {
  POOLNET_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(t, std::move(action));
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (!queue_.empty()) {
    SimEvent ev = queue_.pop();
    now_ = ev.time;
    ev.action();
    ++n;
  }
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    SimEvent ev = queue_.pop();
    now_ = ev.time;
    ev.action();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace poolnet::sim
