// Discrete-event queue.
//
// Events are (time, action) pairs; ties in time are broken by insertion
// order (FIFO), which keeps runs deterministic — a requirement for the
// reproducibility story in DESIGN.md §5.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace poolnet::sim {

/// Simulation time in seconds.
using Time = double;

/// A scheduled action.
struct SimEvent {
  Time time = 0.0;
  std::uint64_t seq = 0;  // tie-breaker: earlier scheduling fires first
  std::function<void()> action;
};

/// Min-heap of SimEvents ordered by (time, seq).
///
/// An explicit binary heap rather than std::priority_queue: top() there is
/// const, forcing pop() to COPY the event (and its std::function, a heap
/// allocation per pop). Owning the vector lets pop() move the event out and
/// lets clear() keep the backing storage, so a drained-and-refilled queue
/// runs allocation-free at steady state.
class EventQueue {
 public:
  /// Enqueue `action` at absolute time `t`.
  void push(Time t, std::function<void()> action);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Pre-size the backing storage (one allocation up front).
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Time of the next event. Requires !empty().
  Time next_time() const;

  /// Remove and return the next event (moved out, never copied).
  /// Requires !empty().
  SimEvent pop();

  /// Drops all pending events and resets the tie-break counter; the
  /// vector's capacity is retained for reuse.
  void clear();

 private:
  /// Strict heap order: does `a` fire before `b`?
  static bool before(const SimEvent& a, const SimEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<SimEvent> heap_;  // binary min-heap by (time, seq)
  std::uint64_t next_seq_ = 0;
};

}  // namespace poolnet::sim
