// Discrete-event queue.
//
// Events are (time, action) pairs; ties in time are broken by insertion
// order (FIFO), which keeps runs deterministic — a requirement for the
// reproducibility story in DESIGN.md §5.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace poolnet::sim {

/// Simulation time in seconds.
using Time = double;

/// A scheduled action.
struct SimEvent {
  Time time = 0.0;
  std::uint64_t seq = 0;  // tie-breaker: earlier scheduling fires first
  std::function<void()> action;
};

/// Min-heap of SimEvents ordered by (time, seq).
class EventQueue {
 public:
  /// Enqueue `action` at absolute time `t`.
  void push(Time t, std::function<void()> action);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the next event. Requires !empty().
  Time next_time() const;

  /// Remove and return the next event. Requires !empty().
  SimEvent pop();

  void clear();

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace poolnet::sim
