#include "sim/event_queue.h"

#include <utility>

#include "common/assert.h"

namespace poolnet::sim {

void EventQueue::push(Time t, std::function<void()> action) {
  heap_.push_back(SimEvent{t, next_seq_++, std::move(action)});
  sift_up(heap_.size() - 1);
}

Time EventQueue::next_time() const {
  POOLNET_ASSERT(!heap_.empty());
  return heap_.front().time;
}

SimEvent EventQueue::pop() {
  POOLNET_ASSERT(!heap_.empty());
  SimEvent ev = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return ev;
}

void EventQueue::clear() {
  heap_.clear();  // capacity retained
  next_seq_ = 0;
}

void EventQueue::sift_up(std::size_t i) {
  SimEvent v = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(v, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(v);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  SimEvent v = std::move(heap_[i]);
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], v)) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(v);
}

}  // namespace poolnet::sim
