#include "sim/event_queue.h"

#include "common/assert.h"

namespace poolnet::sim {

void EventQueue::push(Time t, std::function<void()> action) {
  heap_.push(SimEvent{t, next_seq_++, std::move(action)});
}

Time EventQueue::next_time() const {
  POOLNET_ASSERT(!heap_.empty());
  return heap_.top().time;
}

SimEvent EventQueue::pop() {
  POOLNET_ASSERT(!heap_.empty());
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the small struct instead (the std::function move happens once
  // per event and events are short-lived).
  SimEvent ev = heap_.top();
  heap_.pop();
  return ev;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace poolnet::sim
