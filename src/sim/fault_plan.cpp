#include "sim/fault_plan.h"

#include <algorithm>
#include <cstdlib>

namespace poolnet::sim {

namespace {

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool fail(std::string* error, const std::string& clause,
          const char* why) {
  if (error) *error = "fault clause '" + clause + "': " + why;
  return false;
}

}  // namespace

bool parse_fault_spec(const std::string& spec, FaultPlan* plan,
                      std::string* error) {
  plan->actions.clear();
  if (spec.empty() || spec == "off" || spec == "none") return true;

  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const auto colon = clause.find(':');
    if (colon == std::string::npos)
      return fail(error, clause, "expected <kind>:<params>");
    const std::string kind = clause.substr(0, colon);
    const std::string rest = clause.substr(colon + 1);

    if (kind == "seed") {
      if (!parse_u64(rest, &plan->seed))
        return fail(error, clause, "seed must be an integer");
      continue;
    }

    const auto at_pos = rest.rfind('@');
    if (at_pos == std::string::npos)
      return fail(error, clause, "expected ...@<time>");
    const std::string params = rest.substr(0, at_pos);
    const std::string when = rest.substr(at_pos + 1);

    FaultAction a;
    if (kind == "kill") {
      a.kind = FaultKind::KillFraction;
      if (!parse_double(params, &a.fraction) || a.fraction < 0.0 ||
          a.fraction > 1.0)
        return fail(error, clause, "fraction must be in [0, 1]");
      if (!parse_double(when, &a.at) || a.at < 0.0)
        return fail(error, clause, "time must be >= 0");
      plan->actions.push_back(a);
    } else if (kind == "node") {
      a.kind = FaultKind::KillNode;
      std::uint64_t id = 0;
      if (!parse_u64(params, &id))
        return fail(error, clause, "node id must be an integer");
      a.node = static_cast<std::uint32_t>(id);
      if (!parse_double(when, &a.at) || a.at < 0.0)
        return fail(error, clause, "time must be >= 0");
      plan->actions.push_back(a);
    } else if (kind == "blackout") {
      a.kind = FaultKind::Blackout;
      const auto parts = split(params, ',');
      if (parts.size() != 3 || !parse_double(parts[0], &a.center.x) ||
          !parse_double(parts[1], &a.center.y) ||
          !parse_double(parts[2], &a.radius) || a.radius < 0.0)
        return fail(error, clause, "expected blackout:<x>,<y>,<r>@<t>");
      if (!parse_double(when, &a.at) || a.at < 0.0)
        return fail(error, clause, "time must be >= 0");
      plan->actions.push_back(a);
    } else if (kind == "degrade") {
      if (!parse_double(params, &a.extra_loss) || a.extra_loss < 0.0 ||
          a.extra_loss >= 1.0)
        return fail(error, clause, "loss must be in [0, 1)");
      const auto dash = when.find('-');
      double t0 = 0.0, t1 = 0.0;
      if (dash == std::string::npos ||
          !parse_double(when.substr(0, dash), &t0) ||
          !parse_double(when.substr(dash + 1), &t1) || t0 < 0.0 || t1 < t0)
        return fail(error, clause, "expected degrade:<p>@<t0>-<t1>");
      a.kind = FaultKind::DegradeStart;
      a.at = t0;
      plan->actions.push_back(a);
      FaultAction end;
      end.kind = FaultKind::DegradeEnd;
      end.at = t1;
      plan->actions.push_back(end);
    } else {
      return fail(error, clause, "unknown kind (kill/node/blackout/degrade)");
    }
  }

  std::stable_sort(plan->actions.begin(), plan->actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return true;
}

}  // namespace poolnet::sim
