// The simulation clock and run loop.
//
// poolnet's experiments are transactional (insert all events, then issue
// queries), so most call sites drive the systems synchronously and use the
// Simulator only for timestamped workloads (examples) and for modeling
// per-hop latency. The engine is nevertheless a complete DES: schedule
// relative or absolute actions, run to quiescence or to a deadline.
#pragma once

#include "sim/event_queue.h"

namespace poolnet::sim {

class Simulator {
 public:
  /// Current simulation time.
  Time now() const { return now_; }

  /// Schedule `action` to fire `delay` seconds from now (delay >= 0).
  void schedule_in(Time delay, std::function<void()> action);

  /// Schedule `action` at absolute time `t` (t >= now()).
  void schedule_at(Time t, std::function<void()> action);

  /// Run until the queue drains. Returns the number of events processed.
  std::size_t run();

  /// Run until the queue drains or the clock would pass `deadline`.
  /// Events at exactly `deadline` are processed.
  std::size_t run_until(Time deadline);

  /// Discard all pending events; clock keeps its value.
  void reset_queue() { queue_.clear(); }

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
};

}  // namespace poolnet::sim
