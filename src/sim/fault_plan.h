// Fault plans: scheduled failures injected into a live deployment.
//
// A FaultPlan is pure data — a sorted schedule of crash / blackout /
// link-degradation actions on a logical time axis (the drivers use the
// operation index: fault times are measured in queries issued). It knows
// nothing about Network; net::FaultInjector replays a plan against one or
// more Networks so co-deployed systems (Pool/DIM/GHT share positions) see
// a consistent world.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"

namespace poolnet::sim {

enum class FaultKind : std::uint8_t {
  KillNode,      ///< crash one specific node id
  KillFraction,  ///< crash a random fraction of the surviving nodes
  Blackout,      ///< crash every node within a disc (regional outage)
  DegradeStart,  ///< open a transient extra-link-loss window
  DegradeEnd,    ///< close it
};

/// One scheduled action. Only the fields relevant to `kind` are used.
struct FaultAction {
  FaultKind kind = FaultKind::KillNode;
  double at = 0.0;           ///< logical fire time (inclusive)
  std::uint32_t node = 0;    ///< KillNode
  double fraction = 0.0;     ///< KillFraction, in [0, 1]
  Point center{};            ///< Blackout disc center
  double radius = 0.0;       ///< Blackout disc radius (meters)
  double extra_loss = 0.0;   ///< DegradeStart per-attempt loss, in [0, 1)
};

/// A failure schedule. `actions` is kept sorted by `at` (stable, so clauses
/// firing at the same time apply in spec order).
struct FaultPlan {
  std::vector<FaultAction> actions;
  std::uint64_t seed = 0xfa177;  ///< drives KillFraction sampling

  bool enabled() const { return !actions.empty(); }
};

/// Parses a --faults spec. "off" (or empty) yields a disabled plan.
/// Otherwise ';'-separated clauses:
///   kill:<frac>@<t>            crash a random <frac> of survivors at t
///   node:<id>@<t>              crash node <id> at t
///   blackout:<x>,<y>,<r>@<t>   crash every node within r m of (x,y) at t
///   degrade:<p>@<t0>-<t1>      extra per-hop loss p during [t0, t1)
///   seed:<n>                   RNG seed for kill sampling
/// Returns false with *error set on malformed input.
bool parse_fault_spec(const std::string& spec, FaultPlan* plan,
                      std::string* error);

}  // namespace poolnet::sim
