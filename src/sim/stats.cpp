#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace poolnet::sim {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : width_(bucket_width), buckets_(bucket_count, 0) {
  POOLNET_ASSERT(bucket_width > 0.0 && bucket_count > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < 0.0) x = 0.0;
  const auto idx = static_cast<std::size_t>(x / width_);
  if (idx >= buckets_.size()) {
    ++overflow_;
  } else {
    ++buckets_[idx];
  }
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  POOLNET_ASSERT(i < buckets_.size());
  return buckets_[i];
}

double Histogram::quantile(double q) const {
  POOLNET_ASSERT(q > 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) return width_ * static_cast<double>(i + 1);
  }
  return width_ * static_cast<double>(buckets_.size());  // in overflow
}

void CounterSet::add(const std::string& name, double delta) {
  counters_[name] += delta;
}

double CounterSet::get(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

}  // namespace poolnet::sim
