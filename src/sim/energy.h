// First-order radio energy model (Heinzelman et al.).
//
// The paper's metric is message count, but a credible sensor-net library
// must expose energy; the benches report both. Transmitting b bits over
// distance d costs  E_elec*b + eps_amp*b*d^2;  receiving costs E_elec*b.
#pragma once

#include <cstdint>

namespace poolnet::sim {

struct EnergyModel {
  double elec_j_per_bit = 50e-9;       // electronics, J/bit
  double amp_j_per_bit_m2 = 100e-12;   // amplifier, J/bit/m^2

  /// Energy (J) to transmit `bits` over `dist_m` meters.
  double tx_cost(std::uint64_t bits, double dist_m) const {
    const double b = static_cast<double>(bits);
    return elec_j_per_bit * b + amp_j_per_bit_m2 * b * dist_m * dist_m;
  }

  /// Energy (J) to receive `bits`.
  double rx_cost(std::uint64_t bits) const {
    return elec_j_per_bit * static_cast<double>(bits);
  }
};

}  // namespace poolnet::sim
