#include "sim/energy.h"

// Header-only today; this TU anchors the library target and reserves room
// for richer radio models (sleep currents, idle listening) without
// churning the build.
