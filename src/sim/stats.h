// Statistics primitives shared by the traffic accounting and the benches.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace poolnet::sim {

/// Streaming mean / variance / min / max (Welford).
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [0, bucket_width * bucket_count); values
/// beyond the last bucket land in an overflow bucket.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t bucket_count);

  void add(double x);
  std::uint64_t total() const { return total_; }
  std::uint64_t bucket(std::size_t i) const;
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t overflow() const { return overflow_; }

  /// Smallest x such that at least `q` (0..1] of samples are <= x,
  /// resolved to bucket upper edges.
  double quantile(double q) const;

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Recall against a ground-truth oracle, for runs where nodes die mid-run
/// and answers may degrade. Tracks both the per-query recall distribution
/// and the event-weighted aggregate (total returned / total expected).
class RecallStat {
 public:
  /// Records one query: `returned` results out of `expected` oracle
  /// results. An empty-oracle query counts as perfect recall.
  void add(std::uint64_t returned, std::uint64_t expected) {
    returned_ += returned;
    expected_ += expected;
    per_query_.add(expected == 0
                       ? 1.0
                       : static_cast<double>(returned) /
                             static_cast<double>(expected));
  }

  void merge(const RecallStat& other) {
    returned_ += other.returned_;
    expected_ += other.expected_;
    per_query_.merge(other.per_query_);
  }

  /// Event-weighted recall over every query recorded (1 when nothing
  /// was expected).
  double weighted() const {
    return expected_ == 0 ? 1.0
                          : static_cast<double>(returned_) /
                                static_cast<double>(expected_);
  }

  std::uint64_t returned() const { return returned_; }
  std::uint64_t expected() const { return expected_; }
  const RunningStat& per_query() const { return per_query_; }

 private:
  std::uint64_t returned_ = 0;
  std::uint64_t expected_ = 0;
  RunningStat per_query_;
};

/// Named counters; cheap string-keyed registry used by the experiment
/// driver to expose whatever a bench wants to print.
class CounterSet {
 public:
  void add(const std::string& name, double delta = 1.0);
  double get(const std::string& name) const;
  const std::map<std::string, double>& all() const { return counters_; }
  void clear() { counters_.clear(); }

 private:
  std::map<std::string, double> counters_;
};

}  // namespace poolnet::sim
