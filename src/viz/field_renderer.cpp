#include "viz/field_renderer.h"

namespace poolnet::viz {

namespace {
// A small qualitative palette; pools cycle through it.
constexpr Color kPalette[] = {
    {31, 119, 180},   // blue
    {255, 127, 14},   // orange
    {44, 160, 44},    // green
    {214, 39, 40},    // red
    {148, 103, 189},  // purple
    {140, 86, 75},    // brown
    {227, 119, 194},  // pink
    {127, 127, 127},  // gray
};
constexpr Color kGridColor{220, 220, 220};
constexpr Color kNodeColor{120, 120, 120};
}  // namespace

FieldRenderer::FieldRenderer(const core::PoolSystem& pool,
                             RenderOptions options)
    : pool_(pool),
      net_(pool.network()),
      options_(options),
      svg_(net_.field().width(), net_.field().height()) {}

Color FieldRenderer::pool_color(std::size_t pool_dim) const {
  return kPalette[pool_dim % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

Rect FieldRenderer::cell_rect(core::CellCoord c) const {
  const double a = pool_.grid().cell_size();
  const Rect& f = net_.field();
  return {f.min_x + c.x * a, f.min_y + c.y * a, f.min_x + (c.x + 1) * a,
          f.min_y + (c.y + 1) * a};
}

void FieldRenderer::draw_field() {
  const auto& grid = pool_.grid();
  const Rect& f = net_.field();

  if (options_.draw_grid) {
    const double a = grid.cell_size();
    for (std::int32_t x = 0; x <= grid.cols(); ++x) {
      const double gx = f.min_x + x * a;
      svg_.line({gx, f.min_y}, {gx, f.max_y}, kGridColor, 0.2);
    }
    for (std::int32_t y = 0; y <= grid.rows(); ++y) {
      const double gy = f.min_y + y * a;
      svg_.line({f.min_x, gy}, {f.max_x, gy}, kGridColor, 0.2);
    }
  }

  // Pool outlines (and labels), Figure 2 style.
  const auto& layout = pool_.layout();
  const auto side = static_cast<std::int32_t>(layout.side());
  for (std::size_t p = 0; p < layout.pool_count(); ++p) {
    const auto pc = layout.pivot(p);
    const Rect lo = cell_rect(pc);
    const Rect hi = cell_rect({pc.x + side - 1, pc.y + side - 1});
    const Rect outline{lo.min_x, lo.min_y, hi.max_x, hi.max_y};
    svg_.rect(outline, pool_color(p), 1.0, pool_color(p), 0.07);
    if (options_.draw_pool_labels) {
      svg_.text({outline.min_x + 1.0, outline.max_y - 4.0},
                "P" + std::to_string(p + 1), 6.0, pool_color(p));
    }
  }

  if (options_.draw_nodes) {
    for (const auto& node : net_.nodes())
      svg_.circle(node.pos, options_.node_radius, kNodeColor, 0.8);
  }

  if (options_.draw_index_nodes) {
    for (std::size_t p = 0; p < layout.pool_count(); ++p) {
      for (std::uint32_t vo = 0; vo < layout.side(); ++vo) {
        for (std::uint32_t ho = 0; ho < layout.side(); ++ho) {
          const net::NodeId idx =
              pool_.grid().index_node(layout.cell(p, {ho, vo}));
          svg_.circle(net_.position(idx), options_.node_radius * 1.3,
                      pool_color(p), 0.9);
        }
      }
    }
  }
}

void FieldRenderer::draw_query_footprint(const storage::RangeQuery& q) {
  const auto& layout = pool_.layout();
  for (std::size_t p = 0; p < layout.pool_count(); ++p) {
    for (const core::CellOffset off :
         core::relevant_cells(q, p, layout.side())) {
      svg_.rect(cell_rect(layout.cell(p, off)), pool_color(p), 0.6,
                pool_color(p), 0.5);
    }
  }
}

void FieldRenderer::draw_route(const routing::RouteResult& route, Color color,
                               double width) {
  std::vector<Point> points;
  points.reserve(route.path.size());
  for (const net::NodeId id : route.path) points.push_back(net_.position(id));
  svg_.polyline(points, color, width, 0.9);
}

void FieldRenderer::mark_node(net::NodeId node, const std::string& label,
                              Color color) {
  const Point p = net_.position(node);
  svg_.circle(p, options_.node_radius * 2.5, color, 0.4);
  svg_.circle(p, options_.node_radius * 1.2, color, 1.0);
  svg_.text({p.x + 3.0, p.y + 3.0}, label, 6.0, color);
}

}  // namespace poolnet::viz
