#include "viz/svg.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace poolnet::viz {

namespace {
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

// Escapes the characters XML cares about in text content.
std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}
}  // namespace

std::string Color::css() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

SvgDocument::SvgDocument(double width, double height)
    : width_(width), height_(height) {
  if (width <= 0.0 || height <= 0.0)
    throw ConfigError("SvgDocument: degenerate canvas");
}

void SvgDocument::circle(Point center, double radius, Color fill,
                         double opacity) {
  std::ostringstream oss;
  oss << "<circle cx=\"" << fmt(center.x) << "\" cy=\"" << fmt(flip(center.y))
      << "\" r=\"" << fmt(radius) << "\" fill=\"" << fill.css()
      << "\" fill-opacity=\"" << fmt(opacity) << "\"/>";
  elements_.push_back(oss.str());
}

void SvgDocument::line(Point a, Point b, Color stroke, double width,
                       double opacity) {
  std::ostringstream oss;
  oss << "<line x1=\"" << fmt(a.x) << "\" y1=\"" << fmt(flip(a.y))
      << "\" x2=\"" << fmt(b.x) << "\" y2=\"" << fmt(flip(b.y))
      << "\" stroke=\"" << stroke.css() << "\" stroke-width=\"" << fmt(width)
      << "\" stroke-opacity=\"" << fmt(opacity) << "\"/>";
  elements_.push_back(oss.str());
}

void SvgDocument::rect(const Rect& r, Color stroke, double stroke_width,
                       Color fill, double fill_opacity) {
  std::ostringstream oss;
  oss << "<rect x=\"" << fmt(r.min_x) << "\" y=\"" << fmt(flip(r.max_y))
      << "\" width=\"" << fmt(r.width()) << "\" height=\"" << fmt(r.height())
      << "\" stroke=\"" << stroke.css() << "\" stroke-width=\""
      << fmt(stroke_width) << "\" fill=\"" << fill.css()
      << "\" fill-opacity=\"" << fmt(fill_opacity) << "\"/>";
  elements_.push_back(oss.str());
}

void SvgDocument::polyline(const std::vector<Point>& points, Color stroke,
                           double width, double opacity) {
  if (points.size() < 2) return;
  std::ostringstream oss;
  oss << "<polyline points=\"";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i) oss << ' ';
    oss << fmt(points[i].x) << ',' << fmt(flip(points[i].y));
  }
  oss << "\" fill=\"none\" stroke=\"" << stroke.css() << "\" stroke-width=\""
      << fmt(width) << "\" stroke-opacity=\"" << fmt(opacity) << "\"/>";
  elements_.push_back(oss.str());
}

void SvgDocument::text(Point anchor, const std::string& content, double size,
                       Color fill) {
  std::ostringstream oss;
  oss << "<text x=\"" << fmt(anchor.x) << "\" y=\"" << fmt(flip(anchor.y))
      << "\" font-size=\"" << fmt(size) << "\" font-family=\"sans-serif\" "
      << "fill=\"" << fill.css() << "\">" << xml_escape(content) << "</text>";
  elements_.push_back(oss.str());
}

std::string SvgDocument::to_string() const {
  std::ostringstream oss;
  oss << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 "
      << fmt(width_) << ' ' << fmt(height_) << "\">\n"
      << "<rect x=\"0\" y=\"0\" width=\"" << fmt(width_) << "\" height=\""
      << fmt(height_) << "\" fill=\"" << kWhite.css() << "\"/>\n";
  for (const auto& el : elements_) oss << el << '\n';
  oss << "</svg>\n";
  return oss.str();
}

void SvgDocument::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw ConfigError("SvgDocument: cannot open " + path);
  out << to_string();
}

}  // namespace poolnet::viz
