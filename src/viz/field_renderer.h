// Renders deployments, Pool layouts, query footprints and routes to SVG.
//
// The output mirrors the paper's Figures 2, 4 and 5: the sensor field
// with its grid, the k pools anchored at their pivots, the cells a query
// touches, and (optionally) the GPSR paths a query actually traveled.
#pragma once

#include <string>

#include "core/pool_system.h"
#include "routing/gpsr.h"
#include "viz/svg.h"

namespace poolnet::viz {

struct RenderOptions {
  bool draw_grid = true;          ///< light α-cell grid lines
  bool draw_nodes = true;         ///< every sensor as a dot
  bool draw_index_nodes = true;   ///< pool index nodes, emphasized
  bool draw_pool_labels = true;   ///< "P1".."Pk" at the pivot corners
  double node_radius = 1.5;       ///< dot size, field meters
};

class FieldRenderer {
 public:
  explicit FieldRenderer(const core::PoolSystem& pool,
                         RenderOptions options = {});

  /// Base layer: field, grid, pools, sensors.
  void draw_field();

  /// Shades every cell relevant to `q` (one color per pool), i.e. the
  /// paper's Figure 4/5 view.
  void draw_query_footprint(const storage::RangeQuery& q);

  /// Draws a route as a polyline through the visited node positions.
  void draw_route(const routing::RouteResult& route, Color color,
                  double width = 1.0);

  /// Marks one node (e.g. the sink) with a ring + label.
  void mark_node(net::NodeId node, const std::string& label, Color color);

  const SvgDocument& document() const { return svg_; }
  void write(const std::string& path) const { svg_.write(path); }

 private:
  Color pool_color(std::size_t pool_dim) const;
  Rect cell_rect(core::CellCoord c) const;

  const core::PoolSystem& pool_;
  const net::Network& net_;
  RenderOptions options_;
  SvgDocument svg_;
};

}  // namespace poolnet::viz
