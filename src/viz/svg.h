// A minimal SVG document builder.
//
// Just enough vector drawing to render deployments, pools, routes and
// query footprints (src/viz/field_renderer.h) without any external
// dependency. Coordinates are in user units; callers set the viewBox.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"

namespace poolnet::viz {

/// RGB color with CSS serialization.
struct Color {
  std::uint8_t r = 0, g = 0, b = 0;
  std::string css() const;
};

inline constexpr Color kBlack{0, 0, 0};
inline constexpr Color kWhite{255, 255, 255};

class SvgDocument {
 public:
  /// Canvas spanning [0,width] x [0,height] user units. The y axis is
  /// flipped so callers can draw in field coordinates (y grows upward).
  SvgDocument(double width, double height);

  void circle(Point center, double radius, Color fill,
              double opacity = 1.0);
  void line(Point a, Point b, Color stroke, double width,
            double opacity = 1.0);
  void rect(const Rect& r, Color stroke, double stroke_width,
            Color fill, double fill_opacity);
  void polyline(const std::vector<Point>& points, Color stroke,
                double width, double opacity = 1.0);
  void text(Point anchor, const std::string& content, double size,
            Color fill);

  /// Number of shape elements added so far.
  std::size_t element_count() const { return elements_.size(); }

  /// Serializes the document.
  std::string to_string() const;

  /// Writes to `path`; throws ConfigError when the file cannot be opened.
  void write(const std::string& path) const;

 private:
  double flip(double y) const { return height_ - y; }

  double width_;
  double height_;
  std::vector<std::string> elements_;
};

}  // namespace poolnet::viz
