#include "obs/report.h"

#include <algorithm>

#include "obs/metrics.h"

namespace poolnet::obs {

double gini_coefficient(const std::vector<std::uint64_t>& loads) {
  if (loads.empty()) return 0.0;
  std::vector<std::uint64_t> sorted = loads;
  std::sort(sorted.begin(), sorted.end());
  // G = (2 Σ_i i*x_i) / (n Σ x_i) - (n+1)/n  with 1-based ranks over the
  // ascending sort.
  double weighted = 0.0, total = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
    total += static_cast<double>(sorted[i]);
  }
  if (total == 0.0) return 0.0;
  const double n = static_cast<double>(sorted.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

LoadReport load_report(const std::vector<std::uint64_t>& loads) {
  LoadReport r;
  r.nodes = loads.size();
  if (loads.empty()) return r;
  std::vector<std::uint64_t> sorted = loads;
  std::sort(sorted.begin(), sorted.end());
  for (const auto x : sorted) {
    r.total += x;
    if (x > 0) ++r.loaded_nodes;
  }
  r.max_load = sorted.back();
  r.mean_load = static_cast<double>(r.total) / static_cast<double>(r.nodes);
  r.p99_load = static_cast<double>(sorted[sorted.size() * 99 / 100]);
  r.mean_loaded = r.loaded_nodes
                      ? static_cast<double>(r.total) /
                            static_cast<double>(r.loaded_nodes)
                      : 0.0;
  r.gini = gini_coefficient(loads);
  std::vector<std::uint64_t> loaded(sorted.end() - r.loaded_nodes,
                                    sorted.end());
  r.gini_loaded = gini_coefficient(loaded);
  return r;
}

void publish_load_report(Snapshot& snap, const std::string& prefix,
                         const std::vector<std::uint64_t>& loads,
                         double occupancy_bucket_width,
                         std::size_t occupancy_buckets) {
  const LoadReport r = load_report(loads);
  snap.gauges[prefix + ".load.max"] = static_cast<double>(r.max_load);
  snap.gauges[prefix + ".load.mean"] = r.mean_load;
  snap.gauges[prefix + ".load.p99"] = r.p99_load;
  snap.gauges[prefix + ".load.mean_loaded"] = r.mean_loaded;
  snap.gauges[prefix + ".load.gini"] = r.gini;
  snap.gauges[prefix + ".load.gini_loaded"] = r.gini_loaded;
  snap.gauges[prefix + ".load.loaded_nodes"] =
      static_cast<double>(r.loaded_nodes);

  Snapshot::Hist h;
  h.bucket_width = occupancy_bucket_width;
  h.buckets.assign(occupancy_buckets, 0);
  for (const auto x : loads) {
    const double b = static_cast<double>(x) / occupancy_bucket_width;
    if (b < static_cast<double>(occupancy_buckets))
      ++h.buckets[static_cast<std::size_t>(b)];
    else
      ++h.overflow;
  }
  snap.histograms[prefix + ".occupancy"] = std::move(h);
}

}  // namespace poolnet::obs
