#include "obs/trace.h"

#include <algorithm>

#include "common/assert.h"

namespace poolnet::obs {

RingTraceSink::RingTraceSink(std::size_t capacity) {
  POOLNET_ASSERT_MSG(capacity > 0, "RingTraceSink needs capacity > 0");
  ring_.resize(capacity);
}

void RingTraceSink::on_hop(const HopRecord& hop) {
  ring_[recorded_ % ring_.size()] = hop;
  ++recorded_;
}

std::size_t RingTraceSink::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(recorded_, ring_.size()));
}

std::vector<HopRecord> RingTraceSink::drain() const {
  std::vector<HopRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = recorded_ - n;
  for (std::uint64_t i = first; i < recorded_; ++i)
    out.push_back(ring_[i % ring_.size()]);
  return out;
}

std::string RingTraceSink::to_csv() const {
  std::string out = "msg_id,hop,kind,src,dst,tick,delivered\n";
  for (const HopRecord& h : drain()) {
    out += std::to_string(h.msg_id) + ',' + std::to_string(h.hop_index) +
           ',' + std::to_string(h.kind) + ',' + std::to_string(h.src) + ',' +
           std::to_string(h.dst) + ',' + std::to_string(h.tick) + ',' +
           (h.delivered ? '1' : '0') + '\n';
  }
  return out;
}

void RingTraceSink::clear() { recorded_ = 0; }

}  // namespace poolnet::obs
