// Hop-level tracing: an optional sink the Network reports every per-hop
// transmission to.
//
// Tracing is OFF by default and costs exactly one predictable branch per
// hop when disabled (a null-pointer test in Network::transmit). When a
// sink is attached, each hop is recorded as a compact fixed-size
// HopRecord; the bundled RingTraceSink keeps the most recent `capacity`
// records in a preallocated ring so tracing never allocates on the hot
// path and long runs cannot exhaust memory.
//
// This header is intentionally free of net/ dependencies (node ids are
// raw integers, the kind is the MessageKind value) so the obs library
// stays at the bottom of the dependency stack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace poolnet::obs {

/// One per-hop radio transmission.
struct HopRecord {
  std::uint64_t msg_id = 0;    ///< end-to-end message the hop belongs to
  std::uint64_t tick = 0;      ///< ledger clock (total transmissions so far)
  std::uint32_t src = 0;       ///< transmitting node
  std::uint32_t dst = 0;       ///< addressed neighbor
  std::uint16_t hop_index = 0; ///< position within the message's path
  std::uint8_t kind = 0;       ///< net::MessageKind value
  bool delivered = true;       ///< false: receiver dead, frame lost
};

/// Receiver of hop records. Implementations must not throw.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_hop(const HopRecord& hop) = 0;
};

/// Fixed-capacity ring buffer of the most recent hops.
class RingTraceSink final : public TraceSink {
 public:
  explicit RingTraceSink(std::size_t capacity);

  void on_hop(const HopRecord& hop) override;

  /// Hops ever recorded (>= size(); the difference was overwritten).
  std::uint64_t recorded() const { return recorded_; }
  std::size_t size() const;
  std::size_t capacity() const { return ring_.size(); }

  /// Retained records, oldest first.
  std::vector<HopRecord> drain() const;

  /// CSV dump of drain(): msg_id,hop,kind,src,dst,tick,delivered.
  std::string to_csv() const;

  void clear();

 private:
  std::vector<HopRecord> ring_;
  std::uint64_t recorded_ = 0;
};

}  // namespace poolnet::obs
