// Derived observability reports: storage hotspots, per-node load shape,
// and hop-count energy accounting.
//
// These are the quantities the paper's evaluation argues about (Figs.
// 6–8): DIM concentrates storage on few zone owners under skewed event
// values while Pool keeps the per-cell load flat. load_report() turns a
// per-node load vector into the headline hotspot numbers — max, mean,
// p99, and the Gini coefficient — and energy_report() prices a traffic
// ledger with a per-hop ε_tx/ε_rx model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace poolnet::obs {

struct Snapshot;

/// Hotspot summary of one per-node load distribution.
struct LoadReport {
  std::uint64_t total = 0;     ///< Σ load
  std::uint64_t max_load = 0;
  double mean_load = 0.0;      ///< over ALL nodes (zeros included)
  double p99_load = 0.0;
  std::size_t nodes = 0;
  std::size_t loaded_nodes = 0;  ///< nodes with load > 0 (index nodes)
  double mean_loaded = 0.0;      ///< mean over index nodes only

  /// Gini coefficient over all nodes in [0,1): 0 = perfectly even,
  /// -> 1 = one node holds everything. The paper-style imbalance number.
  double gini = 0.0;

  /// Gini over index nodes only (load > 0): how evenly the scheme spreads
  /// the events it stores across the nodes it actually uses. This is the
  /// discriminator for the paper's Fig-6(b) claim — DIM piles skewed
  /// events onto few zone owners while Pool balances across its cells —
  /// because the all-node Gini is dominated by the zeros.
  double gini_loaded = 0.0;
};

/// Computes the hotspot summary of `loads` (index = NodeId).
LoadReport load_report(const std::vector<std::uint64_t>& loads);

/// Gini coefficient of a non-negative load vector (0 when empty or all
/// zero).
double gini_coefficient(const std::vector<std::uint64_t>& loads);

/// Simple per-hop energy model: every transmitted message costs ε_tx,
/// every received one ε_rx (the message-count analogue of the first-order
/// radio model — see sim::EnergyModel for the bit-level one).
struct HopEnergyModel {
  double eps_tx_j = 50e-6;  ///< J per transmitted message
  double eps_rx_j = 20e-6;  ///< J per received message

  double cost_j(std::uint64_t tx, std::uint64_t rx) const {
    return eps_tx_j * static_cast<double>(tx) +
           eps_rx_j * static_cast<double>(rx);
  }
};

/// Publishes a load report under `prefix` ("<prefix>.load.max" etc.) as
/// snapshot gauges, plus a storage-occupancy histogram
/// ("<prefix>.occupancy": one sample per node, value = resident load).
void publish_load_report(Snapshot& snap, const std::string& prefix,
                         const std::vector<std::uint64_t>& loads,
                         double occupancy_bucket_width = 1.0,
                         std::size_t occupancy_buckets = 64);

}  // namespace poolnet::obs
