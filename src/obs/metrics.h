// The observability core: a metrics registry every subsystem reports
// through, and the Snapshot it scrapes into.
//
// Design constraints (DESIGN.md §10):
//  * Hot paths (route-cache probes, engine submits) increment through
//    pre-resolved handles — a counter add is an indexed bump on a
//    per-thread SHARD, no lock, no string hashing.
//  * run_sweep_parallel runs whole testbeds concurrently; shards keep the
//    registry contention-free (the only lock is taken once per thread, on
//    its first touch of a registry).
//  * Scrapes merge shards by summing unsigned integers, so the merged
//    totals are independent of which worker ran which deployment — the
//    metrics output is byte-identical at any thread count.
//
// Scrape discipline: scrape()/value() read shard cells without
// synchronization, so call them only after the incrementing threads have
// quiesced (parallel_map joins its pool before returning, which is the
// natural scrape point). Handles must not outlive their registry.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace poolnet::obs {

/// A merged, order-stable view of a registry (plus anything published
/// directly). Maps keep keys sorted, so emission is deterministic.
struct Snapshot {
  struct Hist {
    double bucket_width = 1.0;
    std::vector<std::uint64_t> buckets;
    std::uint64_t overflow = 0;

    std::uint64_t total() const;
    /// Smallest bucket upper edge covering fraction `q` of samples.
    double quantile(double q) const;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;

  /// Per-node lanes (tx, rx, stored events, energy, ...), indexed by
  /// NodeId. Merging sums lane-wise, which aggregates load across
  /// same-topology deployments.
  std::map<std::string, std::vector<double>> series;

  /// Merges `other` in: counters/gauges/buckets/series add element-wise
  /// (series resize to the longer operand). Apply in deployment order for
  /// bit-stable floating-point sums.
  Snapshot& operator+=(const Snapshot& other);

  /// Canonical JSON document (sorted keys, "%.10g" floats): stable bytes
  /// for identical data regardless of thread count.
  std::string to_json() const;

  /// Flat CSV: section,name,index,value — one row per counter, gauge,
  /// histogram bucket and series lane.
  std::string to_csv() const;
};

/// String-keyed registry of counters and fixed-bucket histograms with
/// per-thread shards, plus scrape-time gauges.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Monotonic counter handle. Value-semantic and cheap to copy; add()
  /// bumps this thread's shard.
  class Counter {
   public:
    Counter() = default;
    void add(std::uint64_t n = 1) const;
    void inc() const { add(1); }
    /// Merged value across all shards (scrape discipline applies).
    std::uint64_t value() const;

   private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry* reg, std::uint32_t slot)
        : reg_(reg), slot_(slot) {}
    MetricsRegistry* reg_ = nullptr;
    std::uint32_t slot_ = 0;
  };

  /// Fixed-bucket histogram handle over [0, width * buckets); larger
  /// samples land in the overflow cell.
  class Histogram {
   public:
    Histogram() = default;
    void add(double x) const;

   private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry* reg, std::uint32_t def)
        : reg_(reg), def_(def) {}
    MetricsRegistry* reg_ = nullptr;
    std::uint32_t def_ = 0;
  };

  /// Gets or registers a counter. Re-registering a name returns a handle
  /// to the same slot.
  Counter counter(const std::string& name);

  /// Gets or registers a histogram; the spec of the first registration
  /// wins.
  Histogram histogram(const std::string& name, double bucket_width,
                      std::size_t bucket_count);

  /// Scrape-time scalar (derived values: Gini, hit rates, wall-clock).
  /// Set from one thread at a time.
  void set_gauge(const std::string& name, double value);

  /// Merges every shard and the gauges into a Snapshot.
  Snapshot scrape() const;

  std::size_t metric_count() const;

 private:
  friend class Counter;
  friend class Histogram;

  enum class Kind : std::uint8_t { Counter, Histogram };

  struct Def {
    std::string name;
    Kind kind = Kind::Counter;
    std::uint32_t first_slot = 0;   ///< index into a shard's cell array
    std::uint32_t slot_count = 1;   ///< histograms: buckets + overflow
    double bucket_width = 1.0;
  };

  struct Shard {
    std::vector<std::uint64_t> cells;
  };

  /// This thread's cell for `slot`, creating/growing the shard on demand.
  std::uint64_t& cell(std::uint32_t slot);

  Shard* this_thread_shard();

  mutable std::mutex mu_;
  /// Append-only; deque keeps element references stable so histogram
  /// handles read their def without taking `mu_`.
  std::deque<Def> defs_;
  std::map<std::string, std::uint32_t> by_name_;  ///< name -> defs_ index
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, double> gauges_;
  std::uint32_t slots_ = 0;      ///< total cells a full shard needs
  std::uint64_t epoch_ = 0;      ///< process-unique registry identity
};

}  // namespace poolnet::obs
