#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>

#include "common/assert.h"

namespace poolnet::obs {

namespace {

std::atomic<std::uint64_t> g_registry_epoch{0};

/// Small direct-mapped thread-local cache: registry -> this thread's
/// shard. Keyed by (pointer, epoch) so a reused allocation address can
/// never resurrect a dead registry's shard. Collisions just re-enter the
/// slow path, which may create an extra shard in the registry — sums
/// stay correct, shards are cheap.
struct TlEntry {
  const void* reg = nullptr;
  std::uint64_t epoch = 0;
  void* shard = nullptr;
};
constexpr std::size_t kTlSlots = 8;
thread_local TlEntry tl_shards[kTlSlots];

std::size_t tl_index(const void* reg) {
  return (reinterpret_cast<std::uintptr_t>(reg) >> 4) % kTlSlots;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

// --- Snapshot --------------------------------------------------------------

std::uint64_t Snapshot::Hist::total() const {
  std::uint64_t t = overflow;
  for (const auto b : buckets) t += b;
  return t;
}

double Snapshot::Hist::quantile(double q) const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target)
      return bucket_width * static_cast<double>(i + 1);
  }
  return bucket_width * static_cast<double>(buckets.size());
}

Snapshot& Snapshot::operator+=(const Snapshot& other) {
  for (const auto& [k, v] : other.counters) counters[k] += v;
  for (const auto& [k, v] : other.gauges) gauges[k] += v;
  for (const auto& [k, h] : other.histograms) {
    Hist& mine = histograms[k];
    if (mine.buckets.empty()) {
      mine = h;
      continue;
    }
    mine.buckets.resize(std::max(mine.buckets.size(), h.buckets.size()), 0);
    for (std::size_t i = 0; i < h.buckets.size(); ++i)
      mine.buckets[i] += h.buckets[i];
    mine.overflow += h.overflow;
  }
  for (const auto& [k, s] : other.series) {
    auto& mine = series[k];
    mine.resize(std::max(mine.size(), s.size()), 0.0);
    for (std::size_t i = 0; i < s.size(); ++i) mine[i] += s[i];
  }
  return *this;
}

std::string Snapshot::to_json() const {
  std::string out = "{\n";
  const auto key = [&](const std::string& name) {
    out += "    \"";
    json_escape_into(out, name);
    out += "\": ";
  };

  out += "  \"counters\": {\n";
  for (auto it = counters.begin(); it != counters.end(); ++it) {
    key(it->first);
    out += std::to_string(it->second);
    out += std::next(it) == counters.end() ? "\n" : ",\n";
  }
  out += "  },\n  \"gauges\": {\n";
  for (auto it = gauges.begin(); it != gauges.end(); ++it) {
    key(it->first);
    out += fmt_double(it->second);
    out += std::next(it) == gauges.end() ? "\n" : ",\n";
  }
  out += "  },\n  \"histograms\": {\n";
  for (auto it = histograms.begin(); it != histograms.end(); ++it) {
    key(it->first);
    out += "{\"bucket_width\": " + fmt_double(it->second.bucket_width) +
           ", \"overflow\": " + std::to_string(it->second.overflow) +
           ", \"buckets\": [";
    for (std::size_t i = 0; i < it->second.buckets.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(it->second.buckets[i]);
    }
    out += "]}";
    out += std::next(it) == histograms.end() ? "\n" : ",\n";
  }
  out += "  },\n  \"series\": {\n";
  for (auto it = series.begin(); it != series.end(); ++it) {
    key(it->first);
    out += "[";
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (i) out += ", ";
      out += fmt_double(it->second[i]);
    }
    out += "]";
    out += std::next(it) == series.end() ? "\n" : ",\n";
  }
  out += "  }\n}\n";
  return out;
}

std::string Snapshot::to_csv() const {
  std::string out = "section,name,index,value\n";
  for (const auto& [k, v] : counters)
    out += "counter," + k + ",," + std::to_string(v) + "\n";
  for (const auto& [k, v] : gauges)
    out += "gauge," + k + ",," + fmt_double(v) + "\n";
  for (const auto& [k, h] : histograms) {
    for (std::size_t i = 0; i < h.buckets.size(); ++i)
      out += "histogram," + k + "," + std::to_string(i) + "," +
             std::to_string(h.buckets[i]) + "\n";
    out += "histogram," + k + ",overflow," + std::to_string(h.overflow) +
           "\n";
  }
  for (const auto& [k, s] : series)
    for (std::size_t i = 0; i < s.size(); ++i)
      out += "series," + k + "," + std::to_string(i) + "," +
             fmt_double(s[i]) + "\n";
  return out;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry::MetricsRegistry()
    : epoch_(g_registry_epoch.fetch_add(1) + 1) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    POOLNET_ASSERT_MSG(defs_[it->second].kind == Kind::Counter,
                       "metric re-registered with a different kind");
    return Counter(this, defs_[it->second].first_slot);
  }
  Def def;
  def.name = name;
  def.kind = Kind::Counter;
  def.first_slot = slots_;
  def.slot_count = 1;
  slots_ += 1;
  by_name_[name] = static_cast<std::uint32_t>(defs_.size());
  defs_.push_back(std::move(def));
  return Counter(this, defs_.back().first_slot);
}

MetricsRegistry::Histogram MetricsRegistry::histogram(
    const std::string& name, double bucket_width, std::size_t bucket_count) {
  POOLNET_ASSERT_MSG(bucket_width > 0.0 && bucket_count > 0,
                     "histogram needs positive width and bucket count");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    POOLNET_ASSERT_MSG(defs_[it->second].kind == Kind::Histogram,
                       "metric re-registered with a different kind");
    return Histogram(this, it->second);
  }
  Def def;
  def.name = name;
  def.kind = Kind::Histogram;
  def.first_slot = slots_;
  def.slot_count = static_cast<std::uint32_t>(bucket_count + 1);  // +overflow
  def.bucket_width = bucket_width;
  slots_ += def.slot_count;
  const auto idx = static_cast<std::uint32_t>(defs_.size());
  by_name_[name] = idx;
  defs_.push_back(std::move(def));
  return Histogram(this, idx);
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

MetricsRegistry::Shard* MetricsRegistry::this_thread_shard() {
  TlEntry& e = tl_shards[tl_index(this)];
  if (e.reg == this && e.epoch == epoch_) return static_cast<Shard*>(e.shard);
  Shard* shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->cells.resize(slots_, 0);
    shard = shards_.back().get();
  }
  e = TlEntry{this, epoch_, shard};
  return shard;
}

std::uint64_t& MetricsRegistry::cell(std::uint32_t slot) {
  Shard* shard = this_thread_shard();
  if (slot >= shard->cells.size()) {
    // Metrics registered after this shard was created; size to the
    // registry's current slot space (owner-thread-only mutation).
    std::lock_guard<std::mutex> lock(mu_);
    shard->cells.resize(slots_, 0);
  }
  return shard->cells[slot];
}

void MetricsRegistry::Counter::add(std::uint64_t n) const {
  if (reg_ == nullptr) return;
  reg_->cell(slot_) += n;
}

std::uint64_t MetricsRegistry::Counter::value() const {
  if (reg_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(reg_->mu_);
  std::uint64_t sum = 0;
  for (const auto& shard : reg_->shards_)
    if (slot_ < shard->cells.size()) sum += shard->cells[slot_];
  return sum;
}

void MetricsRegistry::Histogram::add(double x) const {
  if (reg_ == nullptr) return;
  // defs_ is an append-only deque: elements never move and a def is
  // immutable once its handle is published, so no lock is needed here.
  const Def& def = reg_->defs_[def_];
  const double width = def.bucket_width;
  const std::uint32_t first = def.first_slot;
  const std::size_t buckets = def.slot_count - 1;
  std::size_t idx = buckets;  // overflow cell
  if (x >= 0.0) {
    const double b = x / width;
    if (b < static_cast<double>(buckets)) idx = static_cast<std::size_t>(b);
  } else {
    idx = 0;  // clamp negatives into the first bucket
  }
  reg_->cell(first + static_cast<std::uint32_t>(idx)) += 1;
}

Snapshot MetricsRegistry::scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  std::vector<std::uint64_t> merged(slots_, 0);
  for (const auto& shard : shards_)
    for (std::size_t i = 0; i < shard->cells.size(); ++i)
      merged[i] += shard->cells[i];
  for (const Def& def : defs_) {
    if (def.kind == Kind::Counter) {
      snap.counters[def.name] = merged[def.first_slot];
    } else {
      Snapshot::Hist h;
      h.bucket_width = def.bucket_width;
      h.buckets.assign(merged.begin() + def.first_slot,
                       merged.begin() + def.first_slot + def.slot_count - 1);
      h.overflow = merged[def.first_slot + def.slot_count - 1];
      snap.histograms[def.name] = std::move(h);
    }
  }
  snap.gauges = gauges_;
  return snap;
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return defs_.size();
}

}  // namespace poolnet::obs
