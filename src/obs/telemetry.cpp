#include "obs/telemetry.h"

#include <fstream>
#include <ostream>

#include "common/error.h"

namespace poolnet::obs {

bool parse_metrics_spec(const std::string& spec, TelemetryConfig* config,
                        std::string* error) {
  std::string head = spec;
  std::string path;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    head = spec.substr(0, colon);
    path = spec.substr(colon + 1);
    if (path.empty()) {
      *error = "--metrics: empty path in '" + spec + "'";
      return false;
    }
  }
  if (head == "off") {
    config->format = MetricsFormat::Off;
    if (!path.empty()) {
      *error = "--metrics: 'off' does not take a path";
      return false;
    }
  } else if (head == "json") {
    config->format = MetricsFormat::Json;
  } else if (head == "csv") {
    config->format = MetricsFormat::Csv;
  } else {
    *error = "--metrics: expected off, json[:<path>] or csv[:<path>], got '" +
             spec + "'";
    return false;
  }
  config->path = path;
  return true;
}

void emit_snapshot(const TelemetryConfig& config, const Snapshot& snap,
                   std::ostream& fallback) {
  if (!config.wants_metrics()) return;
  const std::string body =
      config.format == MetricsFormat::Json ? snap.to_json() : snap.to_csv();
  if (config.path.empty()) {
    fallback << body;
    return;
  }
  std::ofstream out(config.path);
  if (!out) throw ConfigError("emit_snapshot: cannot open " + config.path);
  out << body;
}

}  // namespace poolnet::obs
