// The unified telemetry surface: one --metrics spec shared by the CLI
// and every bench, and one emit path for the scraped Snapshot.
//
//   --metrics off            no output (default)
//   --metrics json           JSON document to stdout
//   --metrics csv            flat CSV to stdout
//   --metrics json:<path>    JSON document written to <path>
//   --metrics csv:<path>     CSV written to <path>
//   --trace <n>              attach a ring trace sink of capacity n to
//                            every instrumented network (0 = off)
//
// Emission is deterministic: Snapshot maps are sorted, floats print with
// one fixed format, and deployment merges happen in submission order —
// the bytes are identical at any --threads value.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace poolnet::obs {

enum class MetricsFormat { Off, Json, Csv };

struct TelemetryConfig {
  MetricsFormat format = MetricsFormat::Off;
  std::string path;                ///< empty = the caller's stream/stdout
  std::size_t trace_capacity = 0;  ///< hop-trace ring size; 0 = disabled

  bool wants_metrics() const { return format != MetricsFormat::Off; }
  bool wants_trace() const { return trace_capacity > 0; }
};

/// Parses a --metrics spec ("off", "json", "csv", "json:<path>",
/// "csv:<path>") into `config` (format + path only). Returns false and
/// sets `error` on a malformed spec.
bool parse_metrics_spec(const std::string& spec, TelemetryConfig* config,
                        std::string* error);

/// Renders `snap` in the configured format: to `config.path` when set,
/// else to `fallback`. No-op when format is Off. Throws ConfigError when
/// the path cannot be opened.
void emit_snapshot(const TelemetryConfig& config, const Snapshot& snap,
                   std::ostream& fallback);

}  // namespace poolnet::obs
