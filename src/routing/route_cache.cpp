#include "routing/route_cache.h"

#include <bit>
#include <cctype>
#include <cmath>
#include <cstdlib>

namespace poolnet::routing {

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

bool parse_route_cache_spec(const std::string& spec, RouteCacheConfig* config,
                            std::string* error) {
  if (spec == "on") {
    config->enabled = true;
    config->max_bytes = 0;
    return true;
  }
  if (spec == "off") {
    config->enabled = false;
    return true;
  }
  if (spec.rfind("lru:", 0) == 0) {
    const std::string num = spec.substr(4);
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    double scale = 1.0;
    if (end != num.c_str() && *end != '\0') {
      switch (std::tolower(static_cast<unsigned char>(*end))) {
        case 'k': scale = 1e3; ++end; break;
        case 'm': scale = 1e6; ++end; break;
        case 'g': scale = 1e9; ++end; break;
        default: break;
      }
    }
    if (end == num.c_str() || *end != '\0' || v <= 0.0) {
      *error = "route-cache: bad byte bound '" + num + "'";
      return false;
    }
    config->enabled = true;
    config->max_bytes = static_cast<std::size_t>(v * scale);
    return true;
  }
  *error = "route-cache: expected on, off or lru:<bytes>, got '" + spec + "'";
  return false;
}

RouteCache::RouteCache(const Router& inner, RouteCacheConfig config,
                       obs::MetricsRegistry* metrics, const std::string& prefix,
                       common::BufferPool<net::NodeId>* path_pool)
    : inner_(inner), config_(config), path_pool_(path_pool) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  hits_ = metrics->counter(prefix + ".hits");
  misses_ = metrics->counter(prefix + ".misses");
  evictions_ = metrics->counter(prefix + ".evictions");
  invalidated_ = metrics->counter(prefix + ".invalidated");
}

RouteCacheStats RouteCache::stats() const {
  RouteCacheStats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.evictions = evictions_.value();
  s.invalidated = invalidated_.value();
  s.entries = entries_;
  s.bytes = bytes_;
  return s;
}

std::size_t RouteCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = mix64(k.src_kind);
  h = mix64(h ^ static_cast<std::uint64_t>(k.a));
  h = mix64(h ^ static_cast<std::uint64_t>(k.b));
  return static_cast<std::size_t>(h);
}

RouteCache::Key RouteCache::node_key(net::NodeId src, net::NodeId dst) const {
  return Key{static_cast<std::uint64_t>(src) << 1,
             static_cast<std::int64_t>(dst), 0};
}

RouteCache::Key RouteCache::location_key(net::NodeId src, Point dest) const {
  Key key;
  key.src_kind = (static_cast<std::uint64_t>(src) << 1) | 1u;
  if (config_.location_quantum > 0.0) {
    key.a = static_cast<std::int64_t>(
        std::floor(dest.x / config_.location_quantum));
    key.b = static_cast<std::int64_t>(
        std::floor(dest.y / config_.location_quantum));
  } else {
    key.a = std::bit_cast<std::int64_t>(dest.x);
    key.b = std::bit_cast<std::int64_t>(dest.y);
  }
  return key;
}

std::size_t RouteCache::result_bytes(const RouteResult& r) {
  // Path storage dominates; the constant approximates the map node, the
  // LRU list node and the Entry bookkeeping.
  constexpr std::size_t kEntryOverhead = 128;
  return r.path.size() * sizeof(net::NodeId) + kEntryOverhead;
}

RouteCache::Entry& RouteCache::touch(
    std::unordered_map<Key, Entry, KeyHash>::iterator it) const {
  // The LRU list only matters under a byte budget; unbounded caches skip
  // its pointer churn entirely (lru_pos is never read without a budget).
  if (config_.max_bytes != 0)
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second;
}

void RouteCache::account_and_evict(std::size_t delta) const {
  bytes_ += delta;
  entries_ = map_.size() + flat_entries_;
  if (config_.max_bytes == 0) return;
  while (bytes_ > config_.max_bytes && !lru_.empty()) {
    const auto victim = map_.find(lru_.back());
    bytes_ -= victim->second.bytes;
    evictions_.inc();
    for (auto& [point, result] : victim->second.items)
      recycle(std::move(result));
    map_.erase(victim);
    lru_.pop_back();
  }
  entries_ = map_.size() + flat_entries_;
}

RouteResult RouteCache::copy_for_store(const RouteResult& r) const {
  RouteResult stored;
  if (path_pool_ != nullptr) stored.path = path_pool_->acquire();
  stored.path.assign(r.path.begin(), r.path.end());
  stored.delivered = r.delivered;
  stored.exact = r.exact;
  stored.perimeter_hops = r.perimeter_hops;
  return stored;
}

void RouteCache::recycle(RouteResult&& r) const {
  if (path_pool_ != nullptr) path_pool_->release(std::move(r.path));
}

RouteResult RouteCache::route_to_node(net::NodeId src, net::NodeId dst) const {
  RouteResult out;
  route_to_node_into(src, dst, out);
  return out;
}

RouteResult RouteCache::route_to_location(net::NodeId src, Point dest) const {
  RouteResult out;
  route_to_location_into(src, dest, out);
  return out;
}

void RouteCache::route_to_node_into(net::NodeId src, net::NodeId dst,
                                    RouteResult& out) const {
  if (!config_.enabled) {
    inner_.route_to_node_into(src, dst, out);
    return;
  }

  if (config_.max_bytes == 0) {
    if (src < by_src_.size()) {
      for (const NodeEntry& e : by_src_[src]) {
        if (e.dst == dst) {
          hits_.inc();
          out = e.result;  // copy-assign: out.path's capacity is reused
          return;
        }
      }
    }
    misses_.inc();
    inner_.route_to_node_into(src, dst, out);
    if (config_.max_hops != 0 && out.path.size() > config_.max_hops) return;
    if (src >= by_src_.size()) by_src_.resize(src + 1);
    by_src_[src].push_back(NodeEntry{dst, copy_for_store(out)});
    ++flat_entries_;
    entries_ = map_.size() + flat_entries_;
    bytes_ += result_bytes(out);
    return;
  }

  const Key key = node_key(src, dst);
  if (const auto it = map_.find(key); it != map_.end()) {
    hits_.inc();
    out = touch(it).items.front().second;
    return;
  }
  misses_.inc();
  inner_.route_to_node_into(src, dst, out);
  if (config_.max_hops != 0 && out.path.size() > config_.max_hops)
    return;  // one-shot long leg: storing it costs more than it saves
  lru_.push_front(key);
  Entry& entry = map_[key];
  entry.lru_pos = lru_.begin();
  entry.items.emplace_back(Point{}, copy_for_store(out));
  entry.bytes = result_bytes(out);
  account_and_evict(entry.bytes);
}

void RouteCache::route_to_location_into(net::NodeId src, Point dest,
                                        RouteResult& out) const {
  if (!config_.enabled) {
    inner_.route_to_location_into(src, dest, out);
    return;
  }

  const Key key = location_key(src, dest);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Exactness check: the bucket may hold routes to several distinct
    // points of the same α-cell; only a bit-identical destination hits.
    for (const auto& [point, result] : it->second.items) {
      if (point.x == dest.x && point.y == dest.y) {
        hits_.inc();
        touch(it);
        out = result;
        return;
      }
    }
  }
  misses_.inc();
  inner_.route_to_location_into(src, dest, out);
  if (config_.max_hops != 0 && out.path.size() > config_.max_hops)
    return;  // one-shot long leg: storing it costs more than it saves
  const std::size_t added = result_bytes(out);
  if (it != map_.end()) {
    touch(it);
    it->second.items.emplace_back(dest, copy_for_store(out));
    it->second.bytes += added;
  } else {
    if (config_.max_bytes != 0) lru_.push_front(key);
    Entry& entry = map_[key];
    if (config_.max_bytes != 0) entry.lru_pos = lru_.begin();
    entry.items.emplace_back(dest, copy_for_store(out));
    entry.bytes = added;
  }
  account_and_evict(added);
}

void RouteCache::note_dead(net::NodeId dead) const {
  const auto traverses = [dead](const RouteResult& r) {
    for (const net::NodeId n : r.path)
      if (n == dead) return true;
    return false;
  };

  // Flat (unbounded) node-route storage.
  for (auto& bucket : by_src_) {
    for (std::size_t i = bucket.size(); i-- > 0;) {
      if (!traverses(bucket[i].result)) continue;
      bytes_ -= result_bytes(bucket[i].result);
      recycle(std::move(bucket[i].result));
      bucket[i] = std::move(bucket.back());
      bucket.pop_back();
      --flat_entries_;
      invalidated_.inc();
    }
  }

  // Map storage (LRU mode node routes + all location routes).
  for (auto it = map_.begin(); it != map_.end();) {
    auto& items = it->second.items;
    for (std::size_t i = items.size(); i-- > 0;) {
      if (!traverses(items[i].second)) continue;
      const std::size_t freed = result_bytes(items[i].second);
      it->second.bytes -= freed;
      bytes_ -= freed;
      recycle(std::move(items[i].second));
      items[i] = std::move(items.back());
      items.pop_back();
      invalidated_.inc();
    }
    if (items.empty()) {
      if (config_.max_bytes != 0) lru_.erase(it->second.lru_pos);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  entries_ = map_.size() + flat_entries_;

  inner_.note_dead(dead);
}

void RouteCache::clear() {
  for (auto& [key, entry] : map_)
    for (auto& [point, result] : entry.items) recycle(std::move(result));
  for (auto& bucket : by_src_)
    for (auto& e : bucket) recycle(std::move(e.result));
  map_.clear();
  lru_.clear();
  by_src_.clear();
  flat_entries_ = 0;
  bytes_ = 0;
  entries_ = 0;
}

}  // namespace poolnet::routing
