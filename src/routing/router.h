// The routing abstraction shared by every DCS system.
//
// Pool, DIM, GHT and the centralized oracle only ever ask two questions of
// the substrate: "route to this node" and "route toward this location".
// Router is that two-method interface; Gpsr is the protocol implementation
// and RouteCache a memoizing decorator over any Router. Systems hold a
// `const Router&` so a testbed can interpose the cache without the systems
// knowing — the returned RouteResult is identical either way, which keeps
// every message count bit-identical with caching on or off.
#pragma once

#include <cstddef>
#include <vector>

#include "common/geometry.h"
#include "net/node.h"

namespace poolnet::routing {

/// Outcome of one routed packet.
struct RouteResult {
  /// Nodes visited, source first, delivery node last. Consecutive entries
  /// are radio neighbors; hops() = path.size() - 1.
  std::vector<net::NodeId> path;

  /// Node where the packet was delivered.
  net::NodeId delivered = net::kNoNode;

  /// True when `delivered` sits exactly at the requested location (always
  /// true for route_to_node on a connected network).
  bool exact = false;

  /// Hops spent in perimeter mode (diagnostic; 0 on pure-greedy paths).
  std::size_t perimeter_hops = 0;

  std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
};

class Router {
 public:
  virtual ~Router() = default;

  /// Route from `src` to the position of `dst`. On a connected network
  /// this always delivers at `dst`.
  virtual RouteResult route_to_node(net::NodeId src,
                                    net::NodeId dst) const = 0;

  /// Route from `src` toward an arbitrary location; delivers at the home
  /// node (the node whose face tour encloses the location).
  virtual RouteResult route_to_location(net::NodeId src, Point dest) const = 0;

  /// Scratch-handle forms: write the route into `out`, reusing
  /// `out.path`'s capacity across calls so a warm caller routes without
  /// touching the heap. Value-identical to the returning overloads (the
  /// defaults delegate to them; real routers override with an in-place
  /// implementation).
  virtual void route_to_node_into(net::NodeId src, net::NodeId dst,
                                  RouteResult& out) const {
    out = route_to_node(src, dst);
  }
  virtual void route_to_location_into(net::NodeId src, Point dest,
                                      RouteResult& out) const {
    out = route_to_location(src, dest);
  }

  /// Failure feedback from the delivery layer: `dead` was discovered
  /// unreachable (ack timeouts exhausted). Stateless routers ignore it;
  /// caching decorators must drop every stored path traversing the node so
  /// stale routes through dead nodes are never served again. `const`
  /// because systems hold routers by const reference (caches mutate their
  /// internal, already-mutable state).
  virtual void note_dead(net::NodeId dead) const { (void)dead; }
};

}  // namespace poolnet::routing
