#include "routing/planarization.h"

#include <algorithm>

#include "common/assert.h"

namespace poolnet::routing {

using net::NodeId;

namespace {

bool gabriel_keeps(const net::Network& net, NodeId u, NodeId v) {
  const Point pu = net.position(u);
  const Point pv = net.position(v);
  const Point mid = {(pu.x + pv.x) / 2.0, (pu.y + pv.y) / 2.0};
  const double r2 = distance_sq(pu, pv) / 4.0;
  if (r2 == 0.0) return false;  // coincident nodes: no planar edge
  for (const NodeId w : net.neighbors(u)) {
    if (w == v) continue;
    if (distance_sq(net.position(w), mid) < r2) return false;
  }
  return true;
}

bool rng_keeps(const net::Network& net, NodeId u, NodeId v) {
  const Point pu = net.position(u);
  const Point pv = net.position(v);
  const double duv2 = distance_sq(pu, pv);
  if (duv2 == 0.0) return false;
  for (const NodeId w : net.neighbors(u)) {
    if (w == v) continue;
    const Point pw = net.position(w);
    if (distance_sq(pu, pw) < duv2 && distance_sq(pv, pw) < duv2) return false;
  }
  return true;
}

}  // namespace

PlanarGraph::PlanarGraph(const net::Network& network, PlanarizationRule rule)
    : adj_(network.size()), rule_(rule) {
  for (NodeId u = 0; u < network.size(); ++u) {
    for (const NodeId v : network.neighbors(u)) {
      if (v < u) continue;  // each undirected edge once
      const bool keep = rule == PlanarizationRule::Gabriel
                            ? gabriel_keeps(network, u, v)
                            : rng_keeps(network, u, v);
      if (keep) {
        adj_[u].push_back(v);
        adj_[v].push_back(u);
      }
    }
  }
  for (auto& nb : adj_) std::sort(nb.begin(), nb.end());
}

const std::vector<NodeId>& PlanarGraph::neighbors(NodeId id) const {
  POOLNET_ASSERT(id < adj_.size());
  return adj_[id];
}

bool PlanarGraph::has_edge(NodeId a, NodeId b) const {
  POOLNET_ASSERT(a < adj_.size());
  return std::binary_search(adj_[a].begin(), adj_[a].end(), b);
}

std::size_t PlanarGraph::edge_count() const {
  std::size_t total = 0;
  for (const auto& nb : adj_) total += nb.size();
  return total / 2;
}

bool PlanarGraph::is_connected() const {
  if (adj_.empty()) return true;
  std::vector<char> seen(adj_.size(), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    ++visited;
    for (const NodeId v : adj_[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        stack.push_back(v);
      }
    }
  }
  return visited == adj_.size();
}

}  // namespace poolnet::routing
