#include "routing/gpsr.h"

#include <cmath>

#include "common/assert.h"
#include "common/logging.h"

namespace poolnet::routing {

using net::NodeId;

namespace {
constexpr double kEps = 1e-12;
constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
}  // namespace

Gpsr::Gpsr(const net::Network& network, PlanarizationRule rule)
    : net_(network), planar_(network, rule) {}

RouteResult Gpsr::route_to_node(NodeId src, NodeId dst) const {
  RouteResult result;
  route_impl(src, net_.position(dst), dst, result);
  return result;
}

RouteResult Gpsr::route_to_location(NodeId src, Point dest) const {
  RouteResult result;
  route_impl(src, dest, net::kNoNode, result);
  return result;
}

void Gpsr::route_to_node_into(NodeId src, NodeId dst, RouteResult& out) const {
  route_impl(src, net_.position(dst), dst, out);
}

void Gpsr::route_to_location_into(NodeId src, Point dest,
                                  RouteResult& out) const {
  route_impl(src, dest, net::kNoNode, out);
}

NodeId Gpsr::first_ccw_neighbor(NodeId at, double ref_angle,
                                NodeId skip) const {
  const Point p = net_.position(at);
  NodeId best = net::kNoNode;
  double best_sweep = kTwoPi + 1.0;
  for (const NodeId nb : planar_.neighbors(at)) {
    if (!net_.alive(nb)) continue;  // dead nodes drop out of the face tour
    double sweep;
    if (nb == skip) {
      sweep = kTwoPi;  // bounce back only when nothing else exists
    } else {
      sweep = ccw_sweep(ref_angle, angle_of(p, net_.position(nb)));
    }
    if (sweep < best_sweep ||
        (sweep == best_sweep && best != net::kNoNode && nb < best)) {
      best_sweep = sweep;
      best = nb;
    }
  }
  return best;
}

void Gpsr::route_impl(NodeId src, Point dest, NodeId exact_target,
                      RouteResult& result) const {
  result.path.clear();
  result.delivered = net::kNoNode;
  result.exact = false;
  result.perimeter_hops = 0;
  // One reallocation for the common case: the greedy path length is about
  // the line-of-sight distance in radio ranges; leave headroom for detours.
  // A warm scratch result usually already holds the capacity.
  result.path.reserve(static_cast<std::size_t>(distance(net_.position(src),
                                                        dest) /
                                               net_.radio_range()) *
                          2 +
                      8);
  result.path.push_back(src);

  enum class Mode { Greedy, Perimeter };
  Mode mode = Mode::Greedy;

  NodeId cur = src;
  NodeId prev = net::kNoNode;

  // Perimeter state (packet header fields in the protocol).
  Point lp{};                 // location where perimeter mode was entered
  double lp_d2 = 0.0;         // distance^2 of lp to dest
  double lf_d2 = 0.0;         // distance^2 of the current face's crossing
  NodeId e0_from = net::kNoNode, e0_to = net::kNoNode;  // first face edge
  bool e0_traversed = false;

  NodeId best_seen = src;
  double best_seen_d2 = distance_sq(net_.position(src), dest);

  const std::size_t max_hops = 16 * net_.size() + 256;

  // Chooses the perimeter edge out of `cur`, applying GPSR's face-change
  // rule: while the candidate edge crosses the segment lp->dest strictly
  // closer to dest than the current face's crossing point, move to the new
  // face by continuing the angular sweep past the candidate.
  const auto choose_perimeter_edge = [&](double ref_angle,
                                         NodeId skip) -> NodeId {
    NodeId cand = first_ccw_neighbor(cur, ref_angle, skip);
    if (cand == net::kNoNode) return net::kNoNode;
    const Point pc = net_.position(cur);
    // Bounded sweep: at most one full pass over the adjacency.
    for (std::size_t i = 0; i <= planar_.neighbors(cur).size(); ++i) {
      const auto xi =
          segment_intersection(pc, net_.position(cand), lp, dest);
      if (xi.has_value()) {
        const double xi_d2 = distance_sq(*xi, dest);
        if (xi_d2 < lf_d2 - kEps) {
          lf_d2 = xi_d2;  // enter the face on the other side of the crossing
          const double new_ref = angle_of(pc, net_.position(cand));
          cand = first_ccw_neighbor(cur, new_ref, cand);
          e0_from = cur;
          e0_to = cand;
          e0_traversed = false;
          continue;
        }
      }
      break;
    }
    return cand;
  };

  while (result.path.size() <= max_hops) {
    const Point pc = net_.position(cur);
    const double cur_d2 = distance_sq(pc, dest);

    if (cur_d2 < best_seen_d2) {
      best_seen = cur;
      best_seen_d2 = cur_d2;
    }
    if (exact_target != net::kNoNode && cur == exact_target) {
      result.delivered = cur;
      result.exact = true;
      return;
    }
    if (cur_d2 <= kEps) {  // standing on the destination location
      result.delivered = cur;
      result.exact = true;
      return;
    }

    if (mode == Mode::Greedy) {
      // Forward to the neighbor strictly closest to dest.
      NodeId next = net::kNoNode;
      double next_d2 = cur_d2;
      for (const NodeId nb : net_.neighbors(cur)) {
        if (!net_.alive(nb)) continue;  // beacons stopped: not a candidate
        const double d2 = distance_sq(net_.position(nb), dest);
        if (d2 < next_d2 || (d2 == next_d2 && next != net::kNoNode && nb < next)) {
          next_d2 = d2;
          next = nb;
        }
      }
      if (next != net::kNoNode && next_d2 < cur_d2) {
        prev = cur;
        cur = next;
        result.path.push_back(cur);
        continue;
      }
      // Local minimum: enter perimeter mode.
      if (planar_.neighbors(cur).empty()) break;  // isolated: undeliverable
      mode = Mode::Perimeter;
      lp = pc;
      lp_d2 = cur_d2;
      lf_d2 = cur_d2;  // Lf starts at Lp
      e0_from = net::kNoNode;
      e0_to = net::kNoNode;
      e0_traversed = false;
      const NodeId next_p =
          choose_perimeter_edge(angle_of(pc, dest), net::kNoNode);
      if (next_p == net::kNoNode) break;
      if (e0_from == net::kNoNode) {  // no face change happened in selection
        e0_from = cur;
        e0_to = next_p;
        e0_traversed = false;
      }
      if (cur == e0_from && next_p == e0_to) {
        if (e0_traversed) {  // full tour with no progress: home node is cur
          result.delivered = cur;
          result.exact = false;
          return;
        }
        e0_traversed = true;
      }
      prev = cur;
      cur = next_p;
      result.path.push_back(cur);
      ++result.perimeter_hops;
      continue;
    }

    // Perimeter mode.
    if (cur_d2 < lp_d2) {  // progress: resume greedy
      mode = Mode::Greedy;
      e0_from = net::kNoNode;
      e0_to = net::kNoNode;
      e0_traversed = false;
      continue;  // no hop consumed
    }
    POOLNET_ASSERT(prev != net::kNoNode);
    const double ref = angle_of(pc, net_.position(prev));
    const NodeId next = choose_perimeter_edge(ref, prev);
    if (next == net::kNoNode) break;
    if (cur == e0_from && next == e0_to) {
      if (e0_traversed) {  // completed the tour of the face containing dest
        result.delivered = cur;
        result.exact = false;
        return;
      }
      e0_traversed = true;
    }
    prev = cur;
    cur = next;
    result.path.push_back(cur);
    ++result.perimeter_hops;
  }

  // Hop budget exhausted or dead end; deliver at the closest node seen.
  // This indicates a disconnected network (callers validate connectivity).
  POOLNET_WARN("GPSR: undelivered packet, falling back to best-seen node "
               << best_seen << " after " << result.path.size() - 1 << " hops");
  // Truncate the path at the last visit to best_seen so accounting does not
  // charge the fruitless tail.
  for (std::size_t i = result.path.size(); i-- > 0;) {
    if (result.path[i] == best_seen) {
      result.path.resize(i + 1);
      break;
    }
  }
  result.delivered = best_seen;
  result.exact = false;
  return;
}

}  // namespace poolnet::routing
