// GPSR — Greedy Perimeter Stateless Routing (Karp & Kung, MobiCom 2000).
//
// The routing substrate shared by Pool, DIM, and GHT-style schemes. Routes
// a packet toward a geographic destination:
//  * greedy mode: forward to the neighbor strictly closest to the
//    destination, while one exists;
//  * perimeter mode: on a local minimum, walk faces of the planarized
//    graph with the right-hand rule, changing faces where edges cross the
//    line from the perimeter-entry point to the destination, until a node
//    closer than the entry point is found (then back to greedy).
//
// Termination: the distance of successive perimeter-entry points to the
// destination strictly decreases, so a packet to a reachable node position
// always arrives. A packet to an arbitrary location terminates when a
// perimeter tour would re-traverse its first edge — it is then delivered
// at the node that started the tour (the GHT "home node" convention, used
// by data-centric storage to make locations addressable).
#pragma once

#include <cstddef>
#include <vector>

#include "common/geometry.h"
#include "net/network.h"
#include "routing/planarization.h"
#include "routing/router.h"

namespace poolnet::routing {

class Gpsr final : public Router {
 public:
  /// Builds the planarized view once; the router itself is stateless
  /// per-packet, exactly like the protocol.
  explicit Gpsr(const net::Network& network,
                PlanarizationRule rule = PlanarizationRule::Gabriel);

  /// Route from `src` to the position of `dst`. On a connected network
  /// this always delivers at `dst`.
  RouteResult route_to_node(net::NodeId src, net::NodeId dst) const override;

  /// Route from `src` toward an arbitrary location; delivers at the home
  /// node (the node whose face tour encloses the location).
  RouteResult route_to_location(net::NodeId src, Point dest) const override;

  /// In-place forms: the path is built directly in `out.path`, so a warm
  /// scratch RouteResult routes with zero allocations.
  void route_to_node_into(net::NodeId src, net::NodeId dst,
                          RouteResult& out) const override;
  void route_to_location_into(net::NodeId src, Point dest,
                              RouteResult& out) const override;

  const PlanarGraph& planar() const { return planar_; }

 private:
  void route_impl(net::NodeId src, Point dest, net::NodeId exact_target,
                  RouteResult& result) const;

  /// First planar neighbor of `at` counter-clockwise from direction
  /// `ref_angle`; `exclude_zero` skips an edge at exactly the reference
  /// angle (used so the right-hand rule does not immediately bounce back).
  net::NodeId first_ccw_neighbor(net::NodeId at, double ref_angle,
                                 net::NodeId skip) const;

  const net::Network& net_;
  PlanarGraph planar_;
};

}  // namespace poolnet::routing
