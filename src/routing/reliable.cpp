#include "routing/reliable.h"

#include <algorithm>

namespace poolnet::routing {

namespace {

void record_dead(LegOutcome* out, net::NodeId dead) {
  if (std::find(out->dead_found.begin(), out->dead_found.end(), dead) ==
      out->dead_found.end())
    out->dead_found.push_back(dead);
}

}  // namespace

LegOutcome send_reliable(net::Network& net, const Router& router,
                         net::NodeId from, net::NodeId to,
                         net::MessageKind kind, std::uint64_t bits,
                         const ReliablePolicy& policy) {
  LegOutcome out;
  send_reliable_into(net, router, from, to, kind, bits, policy, out);
  return out;
}

void send_reliable_into(net::Network& net, const Router& router,
                        net::NodeId from, net::NodeId to,
                        net::MessageKind kind, std::uint64_t bits,
                        const ReliablePolicy& policy, LegOutcome& out) {
  out.delivered = false;
  out.reached = net::kNoNode;
  out.retries = 0;
  out.backoff_ticks = 0;
  out.dead_found.clear();
  out.route.path.clear();
  out.route.delivered = net::kNoNode;
  out.route.exact = false;
  out.route.perimeter_hops = 0;

  if (from == to) {
    out.delivered = true;
    out.reached = to;
    out.route.path.push_back(from);
    out.route.delivered = to;
    out.route.exact = true;
    return;
  }
  if (!net.alive(from)) {
    out.reached = from;
    return;
  }

  net::NodeId cur = from;
  for (std::uint32_t attempt = 0;; ++attempt) {
    // out.route doubles as the routing scratch: each attempt overwrites
    // it, so on return it is exactly "the last route attempted".
    router.route_to_node_into(cur, to, out.route);
    const auto res = net.transmit_path(out.route.path, kind, bits);

    if (res.complete && out.route.delivered == to) {
      out.delivered = true;
      out.reached = to;
      return;
    }

    net::NodeId dead = net::kNoNode;
    if (!res.complete) {
      // A hop partway down the path never acked: its target is dead.
      dead = out.route.path[res.hops_delivered + 1];
      cur = res.reached;
    } else {
      // The survivor-aware router could not land on `to` — typically
      // because `to` itself is dead and greedy/perimeter delivered
      // nearby. If the final holder neighbors `to`, it performs the
      // detection probe: one full ARQ burst with no ack.
      cur = res.reached;
      if (!net.alive(to)) {
        if (net.are_neighbors(cur, to)) net.transmit(cur, to, kind, bits);
        dead = to;
      }
    }

    if (dead != net::kNoNode) {
      router.note_dead(dead);
      record_dead(&out, dead);
    }

    const bool target_dead = dead == to;
    const bool unroutable = dead == net::kNoNode;  // partition, not a death
    if (target_dead || unroutable || attempt >= policy.max_retries) {
      out.reached = cur;
      return;
    }
    ++out.retries;
    out.backoff_ticks += static_cast<std::uint64_t>(policy.backoff_base)
                         << attempt;
  }
}

}  // namespace poolnet::routing
