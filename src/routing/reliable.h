// Reliable end-to-end delivery over an unreliable, possibly-failing
// network: route, transmit, detect dead next-hops via exhausted ack/retry
// budgets, invalidate stale cached routes, back off, and re-route from the
// stall point.
//
// This is the layer between Router (path computation) and the DCS systems
// (who want "get this message to that node, or tell me who died trying").
// On a fully-alive network a send_reliable() call is EXACTLY one
// route_to_node + one transmit_path — byte-identical accounting to the
// bare legs the systems used before fault tolerance existed.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "routing/router.h"

namespace poolnet::routing {

/// Retry policy for one end-to-end message.
struct ReliablePolicy {
  /// Route recomputations after the initial attempt. Each retry resumes
  /// from the node where the message stalled, not from the source.
  std::uint32_t max_retries = 4;

  /// Sender-side backoff before the first retry, in abstract ticks;
  /// doubles per retry (exponential backoff). Pure accounting — the
  /// simulation has no clock to actually wait on.
  std::uint32_t backoff_base = 1;
};

/// What happened to one reliably-sent message.
struct LegOutcome {
  RouteResult route;            ///< last route attempted
  bool delivered = false;       ///< message reached `to`
  net::NodeId reached = net::kNoNode;  ///< where the message ended up
  std::uint32_t retries = 0;    ///< re-route attempts performed
  std::uint64_t backoff_ticks = 0;     ///< total backoff charged
  /// Nodes discovered dead while delivering (ack budget exhausted into
  /// them). Callers feed these to DcsSystem::handle_node_failure.
  std::vector<net::NodeId> dead_found;
};

/// Sends one `kind`/`bits` message from `from` to `to`. Detects dead
/// next-hops (a transmit that burns its ARQ budget without an ack),
/// reports them to `router.note_dead()` so cached paths through them are
/// dropped, backs off exponentially, and re-routes from the stall point.
/// Gives up when `to` itself is found dead, the retry budget runs out, or
/// the router cannot reach `to` through the survivors.
LegOutcome send_reliable(net::Network& net, const Router& router,
                         net::NodeId from, net::NodeId to,
                         net::MessageKind kind, std::uint64_t bits,
                         const ReliablePolicy& policy = {});

/// Scratch form of send_reliable(): resets and fills `out`, reusing the
/// capacity of `out.route.path` and `out.dead_found` so a warm caller
/// sends without allocating. Value-identical to send_reliable().
void send_reliable_into(net::Network& net, const Router& router,
                        net::NodeId from, net::NodeId to,
                        net::MessageKind kind, std::uint64_t bits,
                        const ReliablePolicy& policy, LegOutcome& out);

}  // namespace poolnet::routing
