// Local planarization of the unit-disk graph.
//
// GPSR's perimeter mode requires a planar subgraph. Both standard local
// rules are implemented:
//  * Gabriel graph (GG): keep (u,v) unless some witness w lies strictly
//    inside the circle with diameter uv. Denser than RNG, shorter detours.
//  * Relative neighborhood graph (RNG): keep (u,v) unless some w is
//    strictly closer to both u and v than they are to each other.
//
// Both rules are computable from one-hop neighbor tables only (every
// candidate witness for an edge within radio range is itself within range
// of both endpoints), preserve connectivity of a connected unit-disk graph,
// and yield planar graphs when node positions are in general position.
#pragma once

#include <vector>

#include "net/network.h"

namespace poolnet::routing {

enum class PlanarizationRule { Gabriel, RelativeNeighborhood };

/// The planar subgraph: per-node adjacency (sorted by id, symmetric).
class PlanarGraph {
 public:
  PlanarGraph(const net::Network& network, PlanarizationRule rule);

  const std::vector<net::NodeId>& neighbors(net::NodeId id) const;
  bool has_edge(net::NodeId a, net::NodeId b) const;
  std::size_t edge_count() const;  ///< undirected edges
  PlanarizationRule rule() const { return rule_; }

  /// True when the planar subgraph is connected (it must be whenever the
  /// underlying unit-disk graph is).
  bool is_connected() const;

 private:
  std::vector<std::vector<net::NodeId>> adj_;
  PlanarizationRule rule_;
};

}  // namespace poolnet::routing
