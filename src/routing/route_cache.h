// Memoizing decorator over any Router (normally Gpsr).
//
// GPSR is deterministic over a static unit-disk graph, so a (src, dst)
// pair always yields the same path — yet Pool recomputes the same
// splitter→cell legs for every query and DIM re-walks the same zone legs.
// RouteCache stores each computed RouteResult and replays it verbatim, so
// the traffic ledger sees byte-identical paths whether the cache is on or
// off; only wall-clock changes.
//
// Keying: node routes are keyed (src, dst). Location routes are bucketed
// by (src, ⌊x/q⌋, ⌊y/q⌋) with q = location_quantum (the Pool α-grid, so
// every cell-center route of a cell lands in one bucket); the exact
// destination point is stored alongside and compared on lookup, which
// makes quantization a pure hashing concern — a cached result is only
// returned for the bit-identical destination that produced it.
//
// Bounded-memory mode: max_bytes > 0 turns on LRU eviction over an
// approximate per-entry byte count (path storage + bookkeeping).
//
// NOT thread-safe: one RouteCache per testbed, like the Network it routes
// over. The parallel experiment engine gives each concurrent testbed its
// own networks, routers and caches.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/object_pool.h"
#include "obs/metrics.h"
#include "routing/router.h"

namespace poolnet::routing {

struct RouteCacheConfig {
  bool enabled = true;

  /// LRU byte budget; 0 = unbounded (no eviction).
  std::size_t max_bytes = 0;

  /// Bucket pitch for location-route keys, in meters (use the Pool cell
  /// size α so cell-center routes share buckets). <= 0 buckets by the
  /// exact coordinate bits.
  double location_quantum = 5.0;

  /// Routes LONGER than this many hops are recomputed rather than
  /// stored (0 = store everything). Counterintuitive but measured: the
  /// routes that repeat across queries are the short intra-pool and
  /// zone-adjacency legs, while long cross-field legs are sink-specific
  /// one-shots — storing those only bloats the table past the CPU cache
  /// and slows every probe. See DESIGN.md "Performance engineering".
  std::size_t max_hops = 6;
};

/// Point-in-time view of a cache's counters. The counters themselves
/// live in a MetricsRegistry (under "<prefix>.hits" etc.); this struct
/// is the thin view stats() assembles from them, kept for ergonomic
/// field access and derived rates.
struct RouteCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidated = 0;  ///< entries dropped by note_dead()
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< approximate resident size

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// Parses a --route-cache spec: "on", "off" or "lru:<bytes>" (with
/// optional k/m/g suffix on the byte count). Returns false and sets
/// `error` on a malformed spec; `config->location_quantum` is untouched.
bool parse_route_cache_spec(const std::string& spec, RouteCacheConfig* config,
                            std::string* error);

class RouteCache final : public Router {
 public:
  /// With a non-null `metrics`, the hit/miss/eviction/invalidation
  /// counters are registered there under `<prefix>.hits` etc., so a
  /// testbed-wide scrape sees them next to every other subsystem.
  /// Without one, the cache owns a private registry — same code path,
  /// nothing to scrape unless asked via stats().
  ///
  /// `path_pool` (optional, not owned, must outlive the cache) supplies
  /// the backing store for cached path vectors: stored copies draw their
  /// buffers from the pool and return them on invalidation/eviction, so
  /// churn under failures recycles capacity instead of round-tripping the
  /// heap. Stored VALUES are identical with or without a pool.
  explicit RouteCache(const Router& inner, RouteCacheConfig config = {},
                      obs::MetricsRegistry* metrics = nullptr,
                      const std::string& prefix = "route_cache",
                      common::BufferPool<net::NodeId>* path_pool = nullptr);

  RouteResult route_to_node(net::NodeId src, net::NodeId dst) const override;
  RouteResult route_to_location(net::NodeId src, Point dest) const override;

  /// Scratch forms: a hit copies the stored route into `out` (capacity
  /// reused — the probe itself never allocates); a miss routes through
  /// the inner router's scratch form.
  void route_to_node_into(net::NodeId src, net::NodeId dst,
                          RouteResult& out) const override;
  void route_to_location_into(net::NodeId src, Point dest,
                              RouteResult& out) const override;

  /// Drops every cached route whose path traverses `dead` (in both
  /// storage modes) so a stale path through a crashed node is never
  /// replayed, then forwards the notice to the inner router.
  void note_dead(net::NodeId dead) const override;

  const RouteCacheConfig& config() const { return config_; }

  /// Thin view over the registry counters plus the resident-size levels.
  RouteCacheStats stats() const;

  /// Drops every entry (stats counters are kept).
  void clear();

 private:
  /// One cache key: node routes use (src, dst, kind 0); location routes
  /// use (src, ⌊x/q⌋, ⌊y/q⌋, kind 1).
  struct Key {
    std::uint64_t src_kind = 0;
    std::int64_t a = 0;
    std::int64_t b = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  /// Location buckets hold (exact destination, result) pairs; node routes
  /// always hold exactly one pair with an ignored Point.
  struct Entry {
    std::vector<std::pair<Point, RouteResult>> items;
    std::size_t bytes = 0;
    std::list<Key>::iterator lru_pos;
  };

  /// Unbounded-mode fast path for node routes: one flat bucket per source
  /// (max_hops keeps each to the handful of repeating short legs), probed
  /// by linear scan — an indexed load plus a few compares beats a hash of
  /// the same data. LRU mode falls back to the map so eviction stays
  /// uniform.
  struct NodeEntry {
    net::NodeId dst;
    RouteResult result;
  };

  Key node_key(net::NodeId src, net::NodeId dst) const;
  Key location_key(net::NodeId src, Point dest) const;

  /// Moves `it` to the MRU position and returns its entry.
  Entry& touch(std::unordered_map<Key, Entry, KeyHash>::iterator it) const;

  /// Charges `delta` fresh bytes and evicts LRU entries past the budget.
  void account_and_evict(std::size_t delta) const;

  static std::size_t result_bytes(const RouteResult& r);

  /// Deep copy of `r` for storage, drawing the path buffer from the pool
  /// when one is attached.
  RouteResult copy_for_store(const RouteResult& r) const;

  /// Returns a dropped entry's path buffer to the pool.
  void recycle(RouteResult&& r) const;

  const Router& inner_;
  RouteCacheConfig config_;
  common::BufferPool<net::NodeId>* path_pool_;
  mutable std::unordered_map<Key, Entry, KeyHash> map_;
  mutable std::list<Key> lru_;  ///< front = most recently used
  mutable std::vector<std::vector<NodeEntry>> by_src_;  ///< unbounded mode
  mutable std::size_t flat_entries_ = 0;  ///< total items across by_src_

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  ///< fallback
  obs::MetricsRegistry::Counter hits_, misses_, evictions_, invalidated_;
  mutable std::size_t entries_ = 0;  ///< level, not monotonic
  mutable std::size_t bytes_ = 0;    ///< level, not monotonic
};

}  // namespace poolnet::routing
