// Deterministic random number generation for reproducible experiments.
//
// All randomness in poolnet flows from Rng instances seeded explicitly by
// the caller; there is no hidden global state. The generator is
// xoshiro256++ (Blackman & Vigna), which is fast, high quality, and lets us
// derive independent sub-streams with split() so that, e.g., deployment and
// workload draws stay decoupled when one of them changes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace poolnet {

/// xoshiro256++ PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also feed <random>
/// distributions, but the built-in methods below are what poolnet uses —
/// they are reproducible across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit draw.
  std::uint64_t operator()();

  /// Independent child stream; deterministic given this stream's state.
  Rng split();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean, truncated to [0, cap] by resampling.
  /// Used for the paper's "exponential range size distribution".
  double exponential_truncated(double mean, double cap);

  /// Standard normal via Box–Muller (no state caching; one draw per call).
  double normal(double mean, double stddev);

  /// Zipf-distributed integer in [1, n] with exponent s (rejection
  /// sampling). Used by skewed workload generators.
  std::int64_t zipf(std::int64_t n, double s);

  /// Random permutation index order of size n (Fisher–Yates).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Bernoulli draw.
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace poolnet
