#include "common/interval.h"

#include <ostream>

namespace poolnet {

std::ostream& operator<<(std::ostream& os, ClosedInterval i) {
  return os << '[' << i.lo << ", " << i.hi << ']';
}

std::ostream& operator<<(std::ostream& os, HalfOpenInterval i) {
  return os << '[' << i.lo << ", " << i.hi << ')';
}

}  // namespace poolnet
