#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace poolnet {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[poolnet %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace poolnet
