// 1-D intervals over normalized attribute space [0, 1].
//
// Two flavors appear in the paper and are kept distinct here:
//  * ClosedInterval  [lo, hi]  — user query bounds (Section 2).
//  * HalfOpenInterval [lo, hi) — cell value ranges (Equation 1) and DIM zone
//    ranges, which tile [0, 1) without overlap.
#pragma once

#include <iosfwd>

#include "common/assert.h"

namespace poolnet {

/// A closed interval [lo, hi]. Empty when hi < lo (Theorem 3.2 can produce
/// empty derived ranges, e.g. R_H^3 in the paper's Example: [0.25, 0.24]).
struct ClosedInterval {
  double lo = 0.0;
  double hi = 0.0;

  constexpr bool empty() const { return hi < lo; }
  constexpr bool contains(double v) const { return lo <= v && v <= hi; }
  constexpr double length() const { return empty() ? 0.0 : hi - lo; }

  friend constexpr bool operator==(ClosedInterval a, ClosedInterval b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// A half-open interval [lo, hi).
struct HalfOpenInterval {
  double lo = 0.0;
  double hi = 0.0;

  constexpr bool empty() const { return hi <= lo; }
  constexpr bool contains(double v) const { return lo <= v && v < hi; }
  constexpr double length() const { return empty() ? 0.0 : hi - lo; }

  friend constexpr bool operator==(HalfOpenInterval a, HalfOpenInterval b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// True when the half-open range and the closed range share at least one
/// point: [a.lo, a.hi) ∩ [b.lo, b.hi] ≠ ∅. This is the relevance test of
/// Algorithm 2 (Range ∩ R(Q) ≠ φ).
constexpr bool intersects(HalfOpenInterval a, ClosedInterval b) {
  if (a.empty() || b.empty()) return false;
  return a.lo <= b.hi && b.lo < a.hi;
}

constexpr bool intersects(ClosedInterval a, ClosedInterval b) {
  if (a.empty() || b.empty()) return false;
  return a.lo <= b.hi && b.lo <= a.hi;
}

constexpr bool intersects(HalfOpenInterval a, HalfOpenInterval b) {
  if (a.empty() || b.empty()) return false;
  return a.lo < b.hi && b.lo < a.hi;
}

/// Intersection of two closed intervals (may be empty).
constexpr ClosedInterval intersect(ClosedInterval a, ClosedInterval b) {
  return {a.lo > b.lo ? a.lo : b.lo, a.hi < b.hi ? a.hi : b.hi};
}

std::ostream& operator<<(std::ostream& os, ClosedInterval i);
std::ostream& operator<<(std::ostream& os, HalfOpenInterval i);

}  // namespace poolnet
