// Minimal leveled logging.
//
// The simulator is a library first; logging defaults to Warn so that bench
// and test binaries stay quiet. Examples turn it up to Info to narrate.
#pragma once

#include <sstream>
#include <string>

namespace poolnet {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace poolnet

#define POOLNET_LOG(level, expr)                                      \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
        static_cast<int>(::poolnet::log_level())) {                   \
      std::ostringstream oss_;                                        \
      oss_ << expr;                                                   \
      ::poolnet::detail::log_emit(level, oss_.str());                 \
    }                                                                 \
  } while (0)

#define POOLNET_DEBUG(expr) POOLNET_LOG(::poolnet::LogLevel::Debug, expr)
#define POOLNET_INFO(expr) POOLNET_LOG(::poolnet::LogLevel::Info, expr)
#define POOLNET_WARN(expr) POOLNET_LOG(::poolnet::LogLevel::Warn, expr)
#define POOLNET_ERROR(expr) POOLNET_LOG(::poolnet::LogLevel::Error, expr)
