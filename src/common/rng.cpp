#include "common/rng.h"

#include <cmath>
#include <numeric>

namespace poolnet {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() { return Rng((*this)() ^ 0xdeadbeefcafef00dULL); }

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  POOLNET_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  POOLNET_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::exponential_truncated(double mean, double cap) {
  POOLNET_ASSERT(mean > 0.0 && cap > 0.0);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double u = uniform();
    const double x = -mean * std::log(1.0 - u);
    if (x <= cap) return x;
  }
  return cap;  // pathological mean >> cap; degrade gracefully
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; discard the second variate to keep the stream simple.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  return mean + stddev * r * std::cos(kTwoPi * u2);
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  POOLNET_ASSERT(n >= 1 && s > 0.0);
  // Rejection-inversion (Hörmann) is overkill for n <= a few thousand; use
  // the standard rejection sampler with the bounding envelope.
  const double b = std::pow(2.0, s - 1.0);
  while (true) {
    const double u = uniform();
    const double v = uniform();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b)
      return static_cast<std::int64_t>(x);
  }
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace poolnet
