// User-facing error types.
#pragma once

#include <stdexcept>
#include <string>

namespace poolnet {

/// Thrown when a simulation/system configuration is invalid (e.g. a pool
/// that does not fit in the field, a zero radio range, inconsistent
/// dimensionality). Distinct from AssertionError, which flags internal bugs.
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

}  // namespace poolnet
