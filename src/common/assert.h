// Invariant checking for poolnet.
//
// POOLNET_ASSERT is enabled in all build types (the simulator's correctness
// claims rest on these invariants; the cost of the checks is negligible next
// to routing work). Failures throw AssertionError rather than aborting so
// that tests can observe them and long experiment sweeps fail loudly with a
// message instead of a core dump.
#pragma once

#include <stdexcept>
#include <string>

namespace poolnet {

/// Thrown when an internal invariant is violated. Indicates a bug in
/// poolnet itself, never a user input error (see ConfigError for those).
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::string full = std::string("POOLNET_ASSERT failed: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw AssertionError(full);
}
}  // namespace detail

}  // namespace poolnet

#define POOLNET_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::poolnet::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define POOLNET_ASSERT_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr))                                                          \
      ::poolnet::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)
