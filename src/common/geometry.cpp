#include "common/geometry.h"

#include <algorithm>
#include <ostream>

namespace poolnet {

namespace {
constexpr double kEps = 1e-12;

bool on_segment(Point a, Point b, Point p) {
  // Assumes p collinear with (a, b); checks bounding box membership.
  return std::min(a.x, b.x) - kEps <= p.x && p.x <= std::max(a.x, b.x) + kEps &&
         std::min(a.y, b.y) - kEps <= p.y && p.y <= std::max(a.y, b.y) + kEps;
}
}  // namespace

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.min_x << ',' << r.max_x << "]x[" << r.min_y << ','
            << r.max_y << ']';
}

double angle_of(Point from, Point to) {
  return std::atan2(to.y - from.y, to.x - from.x);
}

double ccw_sweep(double a, double b) {
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  double d = b - a;
  while (d < 0.0) d += kTwoPi;
  while (d >= kTwoPi) d -= kTwoPi;
  return d;
}

bool segments_intersect(Point p1, Point p2, Point q1, Point q2) {
  const double o1 = orientation(p1, p2, q1);
  const double o2 = orientation(p1, p2, q2);
  const double o3 = orientation(q1, q2, p1);
  const double o4 = orientation(q1, q2, p2);

  const auto sgn = [](double v) { return v > kEps ? 1 : (v < -kEps ? -1 : 0); };
  const int s1 = sgn(o1), s2 = sgn(o2), s3 = sgn(o3), s4 = sgn(o4);

  if (s1 != s2 && s3 != s4 && s1 != 0 && s2 != 0 && s3 != 0 && s4 != 0)
    return true;

  // Collinear / endpoint cases.
  if (s1 == 0 && on_segment(p1, p2, q1)) return true;
  if (s2 == 0 && on_segment(p1, p2, q2)) return true;
  if (s3 == 0 && on_segment(q1, q2, p1)) return true;
  if (s4 == 0 && on_segment(q1, q2, p2)) return true;
  return false;
}

std::optional<Point> segment_intersection(Point p1, Point p2, Point q1,
                                          Point q2) {
  const Point r = p2 - p1;
  const Point s = q2 - q1;
  const double denom = cross(r, s);
  if (std::abs(denom) < kEps) return std::nullopt;  // parallel or collinear
  const double t = cross(q1 - p1, s) / denom;
  const double u = cross(q1 - p1, r) / denom;
  if (t < -kEps || t > 1.0 + kEps || u < -kEps || u > 1.0 + kEps)
    return std::nullopt;
  return p1 + r * t;
}

}  // namespace poolnet
