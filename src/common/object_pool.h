// Free-list buffer pools for the simulator's hot allocations.
//
// The hot paths of a deployment — GPSR path construction, route-cache
// storage, within-radius scans, reply accumulation — all want "a vector,
// briefly". Allocating one per call churns the heap millions of times in
// a large sweep; a BufferPool instead keeps released buffers on a
// free-list and hands their capacity back to the next acquirer. The pool
// only recycles MEMORY, never values: an acquired buffer is always empty,
// so results are byte-identical with pooling on or off (the `enabled`
// flag keeps the plain-heap behaviour selectable for A/B tests, see
// tests/test_pool_alloc.cpp).
//
// Scope one pool per deployment (Testbed owns a set; RouteCache borrows
// one), matching the threading model everywhere else in poolnet: a
// deployment is single-threaded, concurrent testbeds never share state,
// so the pool needs no locks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace poolnet::common {

/// Point-in-time pool counters. `high_water` is the largest number of
/// buffers ever simultaneously outstanding — i.e. the arena size a
/// fixed preallocation would have needed.
struct BufferPoolStats {
  std::uint64_t acquires = 0;   ///< total acquire() calls
  std::uint64_t reuses = 0;     ///< acquires served from the free-list
  std::uint64_t releases = 0;   ///< buffers returned
  std::size_t outstanding = 0;  ///< acquired and not yet released
  std::size_t high_water = 0;   ///< max outstanding ever observed
  std::size_t free_buffers = 0; ///< buffers currently parked

  double reuse_rate() const {
    return acquires > 0
               ? static_cast<double>(reuses) / static_cast<double>(acquires)
               : 0.0;
  }
};

/// A free-list pool of `std::vector<T>` buffers.
template <typename T>
class BufferPool {
 public:
  /// `enabled = false` degrades to plain heap behaviour: acquire()
  /// returns a fresh vector and release() destroys — the accounting
  /// still runs, so A/B comparisons see identical stats shapes.
  explicit BufferPool(bool enabled = true) : enabled_(enabled) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  bool enabled() const { return enabled_; }

  /// An empty buffer; capacity comes from the free-list when available.
  std::vector<T> acquire() {
    ++stats_.acquires;
    ++stats_.outstanding;
    stats_.high_water = std::max(stats_.high_water, stats_.outstanding);
    if (enabled_ && !free_.empty()) {
      ++stats_.reuses;
      std::vector<T> buf = std::move(free_.back());
      free_.pop_back();
      stats_.free_buffers = free_.size();
      return buf;  // cleared at release time; capacity intact
    }
    return {};
  }

  /// Returns a buffer's capacity to the pool (values are discarded).
  void release(std::vector<T>&& buf) {
    ++stats_.releases;
    if (stats_.outstanding > 0) --stats_.outstanding;
    if (!enabled_) return;  // heap path: let the capacity die here
    buf.clear();
    free_.push_back(std::move(buf));
    stats_.free_buffers = free_.size();
  }

  /// Drops every parked buffer (outstanding ones are unaffected). After a
  /// clear the next acquires allocate fresh — reuse-after-clear restarts
  /// from zero capacity, which the pool tests rely on.
  void clear() {
    free_.clear();
    stats_.free_buffers = 0;
  }

  const BufferPoolStats& stats() const { return stats_; }

 private:
  bool enabled_;
  std::vector<std::vector<T>> free_;
  BufferPoolStats stats_;
};

}  // namespace poolnet::common
