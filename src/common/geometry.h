// 2-D geometry primitives for the sensor field.
//
// Everything here works in meters in a Cartesian plane. The routing layer
// (GPSR) needs exact-ish predicates for segment crossing and angular order;
// we use the standard robust-enough double formulations with an epsilon
// suited to field coordinates (fields are O(1e3) m, coordinates well within
// double precision).
#pragma once

#include <cmath>
#include <iosfwd>
#include <optional>

namespace poolnet {

/// A point (or displacement vector) in the plane, meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Point operator*(double s, Point a) { return a * s; }
  friend constexpr bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
};

std::ostream& operator<<(std::ostream& os, Point p);

/// Squared Euclidean distance. Prefer this in comparisons — no sqrt.
constexpr double distance_sq(Point a, Point b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance in meters.
inline double distance(Point a, Point b) { return std::sqrt(distance_sq(a, b)); }

/// Dot product of displacement vectors.
constexpr double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

/// Z-component of the cross product (a × b). Positive when b is
/// counter-clockwise from a.
constexpr double cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

/// Orientation of the ordered triple (a, b, c):
///  > 0  counter-clockwise turn, < 0 clockwise, == 0 collinear.
constexpr double orientation(Point a, Point b, Point c) {
  return cross(b - a, c - a);
}

/// Angle of the vector from `from` to `to`, in (-pi, pi].
double angle_of(Point from, Point to);

/// Counter-clockwise angular sweep from direction angle `a` to `b`,
/// normalized into [0, 2*pi).
double ccw_sweep(double a, double b);

/// An axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
struct Rect {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;

  constexpr bool contains(Point p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  constexpr double width() const { return max_x - min_x; }
  constexpr double height() const { return max_y - min_y; }
  constexpr Point center() const {
    return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }
  constexpr bool intersects(const Rect& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }
  /// Point of the rectangle closest to `p` (is `p` itself when inside).
  constexpr Point clamp(Point p) const {
    const double cx = p.x < min_x ? min_x : (p.x > max_x ? max_x : p.x);
    const double cy = p.y < min_y ? min_y : (p.y > max_y ? max_y : p.y);
    return {cx, cy};
  }
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

/// True when the closed segments (p1,p2) and (q1,q2) intersect.
/// Handles collinear overlaps and shared endpoints.
bool segments_intersect(Point p1, Point p2, Point q1, Point q2);

/// Intersection point of segments (p1,p2) and (q1,q2) when they cross at a
/// single point; nullopt when parallel/collinear or non-intersecting.
std::optional<Point> segment_intersection(Point p1, Point p2, Point q1,
                                          Point q2);

}  // namespace poolnet
