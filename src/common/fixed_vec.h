// FixedVec — a tiny fixed-capacity inline vector.
//
// Sensor events have at most a handful of attributes (the paper evaluates
// k = 3; hardware like the Crossbow MEP has 4–6). Storing attribute values
// inline avoids a heap allocation per event, which matters when a sweep
// inserts millions of events across seeds.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>

#include "common/assert.h"

namespace poolnet {

template <typename T, std::size_t Capacity>
class FixedVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr FixedVec() = default;

  constexpr FixedVec(std::initializer_list<T> init) {
    POOLNET_ASSERT(init.size() <= Capacity);
    for (const T& v : init) data_[size_++] = v;
  }

  constexpr FixedVec(std::size_t count, const T& value) {
    POOLNET_ASSERT(count <= Capacity);
    for (std::size_t i = 0; i < count; ++i) data_[size_++] = value;
  }

  static constexpr std::size_t capacity() { return Capacity; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr void push_back(const T& v) {
    POOLNET_ASSERT_MSG(size_ < Capacity, "FixedVec overflow");
    data_[size_++] = v;
  }
  constexpr void pop_back() {
    POOLNET_ASSERT(size_ > 0);
    --size_;
  }
  constexpr void clear() { size_ = 0; }
  constexpr void resize(std::size_t n, const T& fill = T{}) {
    POOLNET_ASSERT(n <= Capacity);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  constexpr T& operator[](std::size_t i) {
    POOLNET_ASSERT(i < size_);
    return data_[i];
  }
  constexpr const T& operator[](std::size_t i) const {
    POOLNET_ASSERT(i < size_);
    return data_[i];
  }
  constexpr T& front() { return (*this)[0]; }
  constexpr const T& front() const { return (*this)[0]; }
  constexpr T& back() { return (*this)[size_ - 1]; }
  constexpr const T& back() const { return (*this)[size_ - 1]; }

  constexpr iterator begin() { return data_.data(); }
  constexpr iterator end() { return data_.data() + size_; }
  constexpr const_iterator begin() const { return data_.data(); }
  constexpr const_iterator end() const { return data_.data() + size_; }

  friend constexpr bool operator==(const FixedVec& a, const FixedVec& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::array<T, Capacity> data_{};
  std::size_t size_ = 0;
};

}  // namespace poolnet
