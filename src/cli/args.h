// A small typed command-line flag parser for the poolnet CLI.
//
// Supports `--name value`, `--name=value` and boolean `--name` flags,
// with defaults, help text generation and typed accessors that validate.
// No external dependency; errors are reported, not thrown, so the CLI
// can print usage and exit gracefully.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "obs/telemetry.h"
#include "sim/fault_plan.h"
#include "storage/store_config.h"

namespace poolnet::cli {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description);

  /// Declares a boolean flag (present = true).
  void add_flag(const std::string& name, const std::string& help);

  /// Declares a string-valued option with a default.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv. On failure returns false and sets `error`. Unknown
  /// arguments and missing values are errors; `--help` sets help_requested.
  bool parse(int argc, const char* const* argv, std::string* error);

  bool help_requested() const { return help_requested_; }
  std::string help() const;

  // --- typed accessors (after parse) ---
  bool flag(const std::string& name) const;
  const std::string& option(const std::string& name) const;

  /// Integer option in [lo, hi]; returns nullopt and sets `error` when
  /// malformed or out of range.
  std::optional<std::int64_t> int_option(const std::string& name,
                                         std::int64_t lo, std::int64_t hi,
                                         std::string* error) const;

  /// Floating option in [lo, hi].
  std::optional<double> double_option(const std::string& name, double lo,
                                      double hi, std::string* error) const;

  /// Option restricted to an enumerated set of values.
  std::optional<std::string> choice_option(
      const std::string& name, const std::vector<std::string>& choices,
      std::string* error) const;

 private:
  struct Spec {
    bool is_flag = false;
    std::string default_value;
    std::string help;
  };

  std::string program_;
  std::string description_;
  std::vector<std::string> order_;  // declaration order, for help()
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  bool help_requested_ = false;
};

// --- the shared query-engine option table ---------------------------------
//
// The CLI and every bench accept the same three engine flags with the same
// spellings, defaults and error messages. Declaring them through this pair
// (instead of per-binary re-declarations) is what keeps them identical.

/// Declares --batch <n|off>, --batch-deadline <events> and
/// --qcache <on|off|ttl:<n>> on `parser` with engine defaults.
void add_engine_options(ArgParser& parser);

/// Parses the three engine options into `config`. Returns false and sets
/// `error` on a malformed spec. Call after parser.parse().
bool parse_engine_options(const ArgParser& parser,
                          engine::QueryEngineConfig* config,
                          std::string* error);

/// Declares --faults <spec> (default "off") on `parser`. The spec grammar
/// lives in sim::parse_fault_spec: ';'-separated clauses of
/// kill:<frac>@<t>, node:<id>@<t>, blackout:<x>,<y>,<r>@<t>,
/// degrade:<p>@<t0>-<t1> and seed:<n>, with t in query indices.
void add_fault_options(ArgParser& parser);

/// Parses --faults into `plan`. Returns false and sets `error` on a
/// malformed spec. Call after parser.parse().
bool parse_fault_options(const ArgParser& parser, sim::FaultPlan* plan,
                         std::string* error);

/// Declares the shared telemetry surface: --metrics off|json|csv[:path]
/// (default off) and --trace <n> (hop-trace ring capacity, default 0).
void add_telemetry_options(ArgParser& parser);

/// Parses --metrics/--trace into `config`. Returns false and sets `error`
/// on a malformed spec. Call after parser.parse().
bool parse_telemetry_options(const ArgParser& parser,
                             obs::TelemetryConfig* config, std::string* error);

/// Declares --store flat|paged[:<pages>:<page-kb>[:mem|file]] (default
/// "flat"): the central store's engine — the flat in-memory vector, or
/// the paged out-of-core store with an LRU buffer pool.
void add_store_options(ArgParser& parser);

/// Parses --store into `config`. Returns false and sets `error` on a
/// malformed spec. Call after parser.parse().
bool parse_store_options(const ArgParser& parser,
                         storage::StoreConfig* config, std::string* error);

}  // namespace poolnet::cli
