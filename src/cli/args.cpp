#include "cli/args.h"

#include <cstdlib>
#include <sstream>

#include "common/assert.h"

namespace poolnet::cli {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  POOLNET_ASSERT_MSG(!specs_.count(name), "duplicate argument declaration");
  specs_[name] = Spec{true, "", help};
  order_.push_back(name);
  flags_[name] = false;
}

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  POOLNET_ASSERT_MSG(!specs_.count(name), "duplicate argument declaration");
  specs_[name] = Spec{false, default_value, help};
  order_.push_back(name);
  values_[name] = default_value;
}

bool ArgParser::parse(int argc, const char* const* argv, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      *error = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(arg);
    if (it == specs_.end()) {
      *error = "unknown option: --" + arg;
      return false;
    }
    if (it->second.is_flag) {
      if (has_value) {
        *error = "flag --" + arg + " does not take a value";
        return false;
      }
      flags_[arg] = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        *error = "option --" + arg + " needs a value";
        return false;
      }
      value = argv[++i];
    }
    values_[arg] = value;
  }
  return true;
}

std::string ArgParser::help() const {
  std::ostringstream oss;
  oss << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Spec& spec = specs_.at(name);
    oss << "  --" << name;
    if (!spec.is_flag) oss << " <value>";
    oss << "\n      " << spec.help;
    if (!spec.is_flag) oss << " (default: " << spec.default_value << ")";
    oss << "\n";
  }
  oss << "  --help\n      show this message\n";
  return oss.str();
}

bool ArgParser::flag(const std::string& name) const {
  const auto it = flags_.find(name);
  POOLNET_ASSERT_MSG(it != flags_.end(), "undeclared flag queried");
  return it->second;
}

const std::string& ArgParser::option(const std::string& name) const {
  const auto it = values_.find(name);
  POOLNET_ASSERT_MSG(it != values_.end(), "undeclared option queried");
  return it->second;
}

std::optional<std::int64_t> ArgParser::int_option(const std::string& name,
                                                  std::int64_t lo,
                                                  std::int64_t hi,
                                                  std::string* error) const {
  const std::string& raw = option(name);
  char* end = nullptr;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0') {
    *error = "--" + name + ": not an integer: " + raw;
    return std::nullopt;
  }
  if (v < lo || v > hi) {
    *error = "--" + name + ": " + raw + " out of range [" +
             std::to_string(lo) + ", " + std::to_string(hi) + "]";
    return std::nullopt;
  }
  return v;
}

std::optional<double> ArgParser::double_option(const std::string& name,
                                               double lo, double hi,
                                               std::string* error) const {
  const std::string& raw = option(name);
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    *error = "--" + name + ": not a number: " + raw;
    return std::nullopt;
  }
  if (v < lo || v > hi) {
    *error = "--" + name + ": " + raw + " out of range";
    return std::nullopt;
  }
  return v;
}

std::optional<std::string> ArgParser::choice_option(
    const std::string& name, const std::vector<std::string>& choices,
    std::string* error) const {
  const std::string& raw = option(name);
  for (const auto& c : choices) {
    if (raw == c) return raw;
  }
  std::string joined;
  for (const auto& c : choices) {
    if (!joined.empty()) joined += "|";
    joined += c;
  }
  *error = "--" + name + ": expected one of " + joined + ", got " + raw;
  return std::nullopt;
}

void add_engine_options(ArgParser& parser) {
  parser.add_option("batch", "off",
                    "query engine epoch size: off, or queries per merged "
                    "dissemination");
  parser.add_option("batch-deadline", "16",
                    "flush a pending epoch after this many engine events");
  parser.add_option("qcache", "off",
                    "sink result cache: on, off or ttl:<events>");
}

bool parse_engine_options(const ArgParser& parser,
                          engine::QueryEngineConfig* config,
                          std::string* error) {
  if (!engine::parse_batch_spec(parser.option("batch"), &config->batch_size,
                                error)) {
    return false;
  }
  const auto deadline =
      parser.int_option("batch-deadline", 1, 1 << 30, error);
  if (!deadline) return false;
  config->batch_deadline = static_cast<std::uint64_t>(*deadline);
  return engine::parse_qcache_spec(parser.option("qcache"), &config->cache,
                                   error);
}

void add_fault_options(ArgParser& parser) {
  parser.add_option(
      "faults", "off",
      "live failure plan: off, or ';'-joined kill:<frac>@<t>, node:<id>@<t>, "
      "blackout:<x>,<y>,<r>@<t>, degrade:<p>@<t0>-<t1>, seed:<n> "
      "(t = query index)");
}

bool parse_fault_options(const ArgParser& parser, sim::FaultPlan* plan,
                         std::string* error) {
  return sim::parse_fault_spec(parser.option("faults"), plan, error);
}

void add_telemetry_options(ArgParser& parser) {
  parser.add_option("metrics", "off",
                    "telemetry snapshot: off, json, csv, json:<path> or "
                    "csv:<path>");
  parser.add_option("trace", "0",
                    "hop-trace ring capacity per network (0 = tracing off)");
}

bool parse_telemetry_options(const ArgParser& parser,
                             obs::TelemetryConfig* config,
                             std::string* error) {
  if (!obs::parse_metrics_spec(parser.option("metrics"), config, error))
    return false;
  const auto capacity = parser.int_option("trace", 0, 1 << 30, error);
  if (!capacity) return false;
  config->trace_capacity = static_cast<std::size_t>(*capacity);
  return true;
}

void add_store_options(ArgParser& parser) {
  parser.add_option("store", "flat",
                    "central store engine: flat, or "
                    "paged[:<pages>:<page-kb>[:mem|file]] for the "
                    "out-of-core store with an LRU buffer pool");
}

bool parse_store_options(const ArgParser& parser,
                         storage::StoreConfig* config, std::string* error) {
  return storage::parse_store_spec(parser.option("store"), config, error);
}

}  // namespace poolnet::cli
