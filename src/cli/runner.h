// The poolnet CLI experiment runner: one configurable experiment —
// deploy, insert, query — over any subset of the three DCS systems, with
// a text report and optional CSV export for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bench_support/testbed.h"
#include "engine/query_engine.h"
#include "obs/telemetry.h"
#include "query/query_gen.h"
#include "sim/fault_plan.h"
#include "storage/store_config.h"

namespace poolnet::cli {

/// Central is the paper's strawman baseline: every event shipped to a
/// base station (node 0), queries answered there — run through either
/// the flat or the paged store per CliConfig::store.
enum class SystemChoice { Pool, Dim, Ght, Central };
enum class QueryFlavor { Exact, OnePartial, TwoPartial, Point };

const char* to_string(SystemChoice s);
const char* to_string(QueryFlavor f);

struct CliConfig {
  std::vector<SystemChoice> systems;  // which systems to run
  std::size_t nodes = 900;
  std::size_t dims = 3;
  std::size_t events_per_node = 3;
  std::size_t queries = 50;
  QueryFlavor flavor = QueryFlavor::Exact;

  /// Which query class the workload draws (--query-class). Range uses
  /// `flavor`; skyline/knn/mix draw from the class generators and check
  /// results against the local brute-force kernels.
  query::QueryClassMix query_class = query::QueryClassMix::Range;
  query::RangeSizeDistribution size_dist =
      query::RangeSizeDistribution::Exponential;
  query::ValueDistribution workload = query::ValueDistribution::Uniform;
  std::uint64_t seed = 1;
  std::size_t deployments = 1;  // averaged over this many seeds
  core::PoolConfig pool;
  std::string csv_path;  // empty = no CSV
  std::size_t threads = 1;  // deployments run in parallel when > 1
  routing::RouteCacheConfig route_cache;  // route memoization (default on)

  /// Query-engine serving layer (batching + result cache). The default —
  /// batching off, cache off — routes every query through the engine
  /// unbatched, which is bit-identical to calling the systems directly.
  engine::QueryEngineConfig engine;

  /// Live failure plan, injected into every selected system's network as
  /// the query phase progresses (action times are query indices). The
  /// default (disabled) leaves every run bit-identical to a build without
  /// fault support.
  sim::FaultPlan faults;

  /// Unified telemetry surface: --metrics json|csv[:path] emits the
  /// merged registry Snapshot (route caches, engines, per-node network
  /// accounting, hotspot/energy reports); --trace N attaches hop-trace
  /// rings to every network. Off by default at zero hot-path cost.
  obs::TelemetryConfig telemetry;

  /// Engine behind the central baseline (--store): the flat in-memory
  /// vector or the paged out-of-core store. Ignored unless the run
  /// includes SystemChoice::Central.
  storage::StoreConfig store;
};

/// One result row (per system).
struct CliResult {
  SystemChoice system;
  double mean_messages = 0.0;
  double mean_query_messages = 0.0;
  double mean_reply_messages = 0.0;
  double mean_results = 0.0;
  double mean_nodes_visited = 0.0;
  double insert_messages_per_event = 0.0;
  std::size_t mismatches = 0;  ///< result sets differing from the oracle

  /// Answered events / oracle events over the whole run (1.0 fault-free;
  /// under --faults this is the survivability headline number).
  double recall = 1.0;
  std::uint64_t retries = 0;      ///< reliable-leg retransmission rounds
  std::uint64_t failovers = 0;    ///< index/owner/home re-elections
  std::uint64_t events_lost = 0;  ///< stored events destroyed or dropped
};

/// Runs the experiment, prints a table to `out`, appends CSV when
/// configured, and returns the per-system rows (test hook).
std::vector<CliResult> run_experiment(const CliConfig& config,
                                      std::ostream& out);

/// Appends `results` to the CSV at `path`, writing a header when the
/// file does not exist yet.
void append_csv(const std::string& path, const CliConfig& config,
                const std::vector<CliResult>& results);

}  // namespace poolnet::cli
