#include "cli/runner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>

#include "bench_support/experiment.h"
#include "bench_support/parallel.h"
#include "bench_support/replay.h"
#include "bench_support/telemetry_bridge.h"
#include "common/error.h"
#include "ght/ght_system.h"
#include "net/fault_injector.h"
#include "query/query_gen.h"
#include "routing/gpsr.h"
#include "routing/route_cache.h"
#include "sim/stats.h"

namespace poolnet::cli {

const char* to_string(SystemChoice s) {
  switch (s) {
    case SystemChoice::Pool: return "pool";
    case SystemChoice::Dim: return "dim";
    case SystemChoice::Ght: return "ght";
    case SystemChoice::Central: return "central";
  }
  return "?";
}

const char* to_string(QueryFlavor f) {
  switch (f) {
    case QueryFlavor::Exact: return "exact";
    case QueryFlavor::OnePartial: return "1-partial";
    case QueryFlavor::TwoPartial: return "2-partial";
    case QueryFlavor::Point: return "point";
  }
  return "?";
}

namespace {

struct Accumulator {
  sim::RunningStat messages, query_messages, reply_messages, results,
      visited;
  double insert_msgs = 0.0;
  std::size_t events = 0;
  std::size_t mismatches = 0;
  sim::RecallStat recall;
  std::uint64_t retries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t events_lost = 0;
};

storage::RangeQuery make_query(query::QueryGenerator& gen, QueryFlavor f) {
  switch (f) {
    case QueryFlavor::Exact: return gen.exact_range();
    case QueryFlavor::OnePartial: return gen.partial_range(1);
    case QueryFlavor::TwoPartial: return gen.partial_range(2);
    case QueryFlavor::Point: return gen.exact_point();
  }
  return gen.exact_range();
}

storage::QueryRequest make_request(query::QueryGenerator& gen,
                                   const CliConfig& config) {
  // Range keeps the historical flavor-driven draw (same RNG stream as
  // pre-QueryRequest builds); the other classes use the shared mix.
  if (config.query_class == query::QueryClassMix::Range)
    return make_query(gen, config.flavor);
  return gen.next(config.query_class);
}

void record(Accumulator& acc, const storage::QueryReceipt& r,
            std::size_t oracle_count, bool faults_on) {
  acc.messages.add(static_cast<double>(r.messages));
  acc.query_messages.add(static_cast<double>(r.query_messages));
  acc.reply_messages.add(static_cast<double>(r.reply_messages));
  acc.results.add(static_cast<double>(r.events.size()));
  acc.visited.add(static_cast<double>(r.index_nodes_visited));
  acc.recall.add(r.events.size(), oracle_count);
  // Under injected failures the oracle still counts destroyed events, so
  // a shortfall is expected degradation (reported as recall), not a
  // correctness violation.
  if (!faults_on && r.events.size() != oracle_count) ++acc.mismatches;
}

void merge(Accumulator& into, const Accumulator& from) {
  into.messages.merge(from.messages);
  into.query_messages.merge(from.query_messages);
  into.reply_messages.merge(from.reply_messages);
  into.results.merge(from.results);
  into.visited.merge(from.visited);
  into.insert_msgs += from.insert_msgs;
  into.events += from.events;
  into.mismatches += from.mismatches;
  into.recall.merge(from.recall);
  into.retries += from.retries;
  into.failovers += from.failovers;
  into.events_lost += from.events_lost;
}

/// Everything one deployment produces: the per-system aggregates, the
/// scraped telemetry Snapshot (empty when metrics are off), and the
/// systems' describe() lines (captured once, from deployment 0).
struct DeploymentOut {
  std::map<SystemChoice, Accumulator> acc;
  obs::Snapshot snap;
  std::vector<std::string> describes;  ///< config.systems order
};

/// One deployment, start to finish: the unit of parallelism. Each call
/// owns every bit of mutable state it touches (testbed, GHT copy, RNGs),
/// so deployments can run on any thread; results merge in deployment
/// order, making the aggregates independent of the thread count.
DeploymentOut run_deployment(const CliConfig& config, std::size_t dep) {
  DeploymentOut out;
  std::map<SystemChoice, Accumulator>& acc = out.acc;
  for (const auto s : config.systems) acc[s];
  const bool want_ght = acc.count(SystemChoice::Ght) > 0;
  const bool want_central = acc.count(SystemChoice::Central) > 0;

  benchsup::TestbedConfig tb_config;
  tb_config.nodes = config.nodes;
  tb_config.dims = config.dims;
  tb_config.events_per_node = config.events_per_node;
  tb_config.seed = config.seed + dep;
  tb_config.pool = config.pool;
  tb_config.workload.dist = config.workload;
  tb_config.route_cache = config.route_cache;
  tb_config.trace_capacity = config.telemetry.trace_capacity;
  benchsup::Testbed tb(tb_config);
  const auto events = tb.insert_workload();

  // GHT rides on its own network copy, like the Testbed systems. It
  // shares the testbed's registry so one scrape covers all three.
  std::unique_ptr<net::Network> ght_net;
  std::unique_ptr<routing::Gpsr> ght_gpsr;
  std::unique_ptr<routing::RouteCache> ght_cache;
  std::unique_ptr<ght::GhtSystem> ght_sys;
  std::unique_ptr<obs::RingTraceSink> ght_trace;
  if (want_ght) {
    std::vector<Point> pts;
    for (const auto& n : tb.pool_network().nodes()) pts.push_back(n.pos);
    ght_net = std::make_unique<net::Network>(
        std::move(pts), tb.pool_network().field(), tb_config.radio_range);
    if (config.telemetry.wants_trace()) {
      ght_trace =
          std::make_unique<obs::RingTraceSink>(config.telemetry.trace_capacity);
      ght_net->set_trace(ght_trace.get());
    }
    ght_gpsr = std::make_unique<routing::Gpsr>(*ght_net);
    const routing::Router* ght_router = ght_gpsr.get();
    if (config.route_cache.enabled) {
      ght_cache = std::make_unique<routing::RouteCache>(
          *ght_gpsr, config.route_cache, &tb.metrics(), "ght.route_cache");
      ght_router = ght_cache.get();
    }
    ght_sys =
        std::make_unique<ght::GhtSystem>(*ght_net, *ght_router, config.dims);
    benchsup::replay_oracle(tb.oracle(), *ght_sys);
    acc[SystemChoice::Ght].insert_msgs +=
        static_cast<double>(ght_net->traffic().total);
    acc[SystemChoice::Ght].events += events;
    ght_net->reset_traffic();
  }
  // Central (the collect-everything baseline) likewise runs on its own
  // network copy; node 0 plays the base station, and --store decides
  // whether events land in the flat vector or the paged store.
  std::unique_ptr<net::Network> central_net;
  std::unique_ptr<routing::Gpsr> central_gpsr;
  std::unique_ptr<routing::RouteCache> central_cache;
  std::unique_ptr<storage::DcsSystem> central_sys;
  std::unique_ptr<obs::RingTraceSink> central_trace;
  if (want_central) {
    std::vector<Point> pts;
    for (const auto& n : tb.pool_network().nodes()) pts.push_back(n.pos);
    central_net = std::make_unique<net::Network>(
        std::move(pts), tb.pool_network().field(), tb_config.radio_range);
    if (config.telemetry.wants_trace()) {
      central_trace =
          std::make_unique<obs::RingTraceSink>(config.telemetry.trace_capacity);
      central_net->set_trace(central_trace.get());
    }
    central_gpsr = std::make_unique<routing::Gpsr>(*central_net);
    const routing::Router* central_router = central_gpsr.get();
    if (config.route_cache.enabled) {
      central_cache = std::make_unique<routing::RouteCache>(
          *central_gpsr, config.route_cache, &tb.metrics(),
          "central.route_cache");
      central_router = central_cache.get();
    }
    central_sys = storage::make_central_store(
        config.dims, config.store, central_net.get(), central_router,
        net::NodeId{0}, &tb.metrics());
    benchsup::replay_oracle(tb.oracle(), *central_sys);
    acc[SystemChoice::Central].insert_msgs +=
        static_cast<double>(central_net->traffic().total);
    acc[SystemChoice::Central].events += events;
    central_net->reset_traffic();
  }
  if (acc.count(SystemChoice::Pool)) {
    acc[SystemChoice::Pool].insert_msgs +=
        static_cast<double>(tb.pool_insert_traffic().total);
    acc[SystemChoice::Pool].events += events;
  }
  if (acc.count(SystemChoice::Dim)) {
    acc[SystemChoice::Dim].insert_msgs +=
        static_cast<double>(tb.dim_insert_traffic().total);
    acc[SystemChoice::Dim].events += events;
  }

  // Every query flows through a per-system QueryEngine. With batching and
  // the cache off the engine executes each submit immediately — the exact
  // call sequence of the direct loop — so default runs are unchanged;
  // with --batch/--qcache the engine merges and caches per its config.
  std::map<SystemChoice, std::unique_ptr<engine::QueryEngine>> engines;
  // Query latency in hops (forwarding legs on ideal links), one histogram
  // per system in the testbed registry.
  std::map<SystemChoice, obs::MetricsRegistry::Histogram> latency;
  for (const auto s : config.systems) {
    storage::DcsSystem& sys =
        s == SystemChoice::Pool ? static_cast<storage::DcsSystem&>(tb.pool())
        : s == SystemChoice::Dim ? static_cast<storage::DcsSystem&>(tb.dim())
        : s == SystemChoice::Ght ? static_cast<storage::DcsSystem&>(*ght_sys)
                                 : *central_sys;
    const std::string prefix = to_string(s);
    engines[s] = std::make_unique<engine::QueryEngine>(
        sys, config.engine, &tb.metrics(), prefix + ".engine");
    latency[s] =
        tb.metrics().histogram(prefix + ".query.latency_hops", 4.0, 64);
    out.describes.push_back(sys.describe());
  }

  // Live failure injection: the plan's action times are query indices,
  // advanced just before each query is issued. Every network (including
  // GHT's copy) sees the same kills, so the systems stay in one world.
  const bool faults_on = config.faults.enabled();
  std::unique_ptr<net::FaultInjector> injector;
  if (faults_on) {
    std::vector<net::Network*> nets{&tb.pool_network(), &tb.dim_network()};
    if (want_ght) nets.push_back(ght_net.get());
    // Central's copy is deliberately exempt: the baseline models a
    // reliable backhaul to the base station and has no failover to
    // exercise, so injecting kills there would only crash routing.
    injector = std::make_unique<net::FaultInjector>(config.faults, nets);
  }

  struct Issued {
    std::size_t oracle_count;
    std::map<SystemChoice, engine::QueryEngine::Ticket> tickets;
  };
  std::vector<Issued> issued;
  issued.reserve(config.queries);

  query::QueryGenerator qgen(
      {.dims = config.dims, .dist = config.size_dist},
      config.seed * 1000003 + dep * 101 + 7);
  Rng sink_rng(config.seed * 31 + dep * 13 + 1);
  std::vector<storage::Event> oracle_scratch;  // reused across queries
  for (std::size_t i = 0; i < config.queries; ++i) {
    if (injector) injector->advance(static_cast<double>(i));
    const storage::QueryRequest q = make_request(qgen, config);
    auto sink = tb.random_node(sink_rng);
    if (injector) {
      // A dead sink cannot issue anything; redraw (bounded, in case a
      // blackout leaves almost nobody standing). Extra draws only happen
      // on a redraw, so fault-free runs consume the identical stream.
      for (std::size_t tries = 0;
           !tb.pool_network().alive(sink) && tries < 1000; ++tries)
        sink = tb.random_node(sink_rng);
    }
    Issued row;
    oracle_scratch.clear();
    // The oracle answer: a box scan for ranges, the canonical local
    // kernel over all stored events for skyline/k-NN.
    if (q.cls() == storage::QueryClass::Range) {
      tb.oracle().matching_into(q.range(), oracle_scratch);
    } else {
      tb.oracle().matching_into(storage::full_space_query(config.dims),
                                oracle_scratch);
      if (q.cls() == storage::QueryClass::Skyline)
        storage::skyline_filter(q.skyline(), oracle_scratch);
      else
        storage::knn_filter(q.k_nearest(), oracle_scratch);
    }
    row.oracle_count = oracle_scratch.size();
    for (const auto s : config.systems)
      row.tickets[s] = engines[s]->submit(sink, q);
    issued.push_back(std::move(row));
  }
  for (const auto s : config.systems) engines[s]->flush();
  for (const Issued& row : issued) {
    for (const auto s : config.systems) {
      const storage::QueryReceipt r = engines[s]->take(row.tickets.at(s));
      latency[s].add(static_cast<double>(r.query_messages));
      record(acc[s], r, row.oracle_count, faults_on);
    }
  }
  // Deployment-local systems start with zeroed fault counters, so the
  // final totals are exactly this run's fault activity.
  for (const auto s : config.systems) {
    const storage::FaultStats& f = engines[s]->system().fault_stats();
    acc[s].retries += f.retries;
    acc[s].failovers += f.failovers;
    acc[s].events_lost += f.events_lost;
  }

  if (config.telemetry.wants_metrics()) {
    out.snap = benchsup::scrape_testbed(tb);
    if (want_ght) {
      benchsup::publish_network(out.snap, "ght", *ght_net);
      benchsup::publish_fault_stats(out.snap, "ght", ght_sys->fault_stats());
      if (const auto* s = ght_sys->scan_stats())
        benchsup::publish_scan_stats(out.snap, "ght", *s);
      if (ght_trace) {
        out.snap.gauges["ght.trace.recorded"] +=
            static_cast<double>(ght_trace->recorded());
      }
    }
    if (want_central) {
      benchsup::publish_network(out.snap, "central", *central_net);
      if (const auto* s = central_sys->scan_stats())
        benchsup::publish_scan_stats(out.snap, "central", *s);
      if (central_trace) {
        out.snap.gauges["central.trace.recorded"] +=
            static_cast<double>(central_trace->recorded());
      }
    }
  }
  return out;
}

}  // namespace

std::vector<CliResult> run_experiment(const CliConfig& config,
                                      std::ostream& out) {
  if (config.systems.empty())
    throw ConfigError("run_experiment: no systems selected");
  if (config.flavor != QueryFlavor::Exact &&
      config.flavor != QueryFlavor::Point && config.dims < 2)
    throw ConfigError("run_experiment: partial queries need dims >= 2");

  const auto per_dep = benchsup::parallel_map<DeploymentOut>(
      config.deployments, config.threads,
      [&config](std::size_t dep) { return run_deployment(config, dep); });

  std::map<SystemChoice, Accumulator> acc;
  for (const auto s : config.systems) acc[s];
  // Merge aggregates AND snapshots in deployment order — the float sums
  // are then bit-identical at any --threads value.
  obs::Snapshot snap;
  for (const auto& dep_out : per_dep) {
    for (const auto& [s, a] : dep_out.acc) merge(acc[s], a);
    if (config.telemetry.wants_metrics()) snap += dep_out.snap;
  }

  std::vector<CliResult> results;
  for (const auto s : config.systems) {
    const Accumulator& a = acc[s];
    CliResult r;
    r.system = s;
    r.mean_messages = a.messages.mean();
    r.mean_query_messages = a.query_messages.mean();
    r.mean_reply_messages = a.reply_messages.mean();
    r.mean_results = a.results.mean();
    r.mean_nodes_visited = a.visited.mean();
    r.insert_messages_per_event =
        a.events ? a.insert_msgs / static_cast<double>(a.events) : 0.0;
    r.mismatches = a.mismatches;
    r.recall = a.recall.weighted();
    r.retries = a.retries;
    r.failovers = a.failovers;
    r.events_lost = a.events_lost;
    results.push_back(r);
  }

  const bool faults_on = config.faults.enabled();
  out << "poolnet experiment: " << config.nodes << " nodes, " << config.dims
      << "-d events, " << config.queries << " " << to_string(config.flavor)
      << " queries x " << config.deployments << " deployment(s), seed "
      << config.seed << (faults_on ? ", faults on" : "") << "\n";
  // Scheme parameters come from DcsSystem::describe() — the runner never
  // hard-codes per-system strings.
  out << "systems: ";
  for (std::size_t i = 0; i < per_dep.front().describes.size(); ++i) {
    if (i > 0) out << "; ";
    out << per_dep.front().describes[i];
  }
  out << "\n\n";
  // TablePrinter prints to stdout; reproduce rows into `out` via a string
  // table for stream-agnostic output.
  {
    std::ostringstream oss;
    // Render manually so `out` can be any stream (tests capture it).
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> headers{"system", "msgs/query", "query msgs",
                                     "reply msgs", "results",
                                     "nodes visited", "insert msgs/event",
                                     "mismatches"};
    // Degradation accounting rides along only when failures were injected,
    // keeping fault-free output byte-identical.
    if (faults_on) {
      headers.insert(headers.end(),
                     {"recall", "retries", "failovers", "events lost"});
    }
    for (const auto& r : results) {
      rows.push_back({to_string(r.system), benchsup::fmt(r.mean_messages),
                      benchsup::fmt(r.mean_query_messages),
                      benchsup::fmt(r.mean_reply_messages),
                      benchsup::fmt(r.mean_results),
                      benchsup::fmt(r.mean_nodes_visited),
                      benchsup::fmt(r.insert_messages_per_event, 2),
                      std::to_string(r.mismatches)});
      if (faults_on) {
        auto& row = rows.back();
        row.push_back(benchsup::fmt(r.recall, 3));
        row.push_back(std::to_string(r.retries));
        row.push_back(std::to_string(r.failovers));
        row.push_back(std::to_string(r.events_lost));
      }
    }
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c) {
      widths[c] = headers[c].size();
      for (const auto& row : rows)
        widths[c] = std::max(widths[c], row[c].size());
    }
    const auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        oss << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
      }
      oss << "\n";
    };
    emit(headers);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    oss << std::string(total, '-') << "\n";
    for (const auto& row : rows) emit(row);
    out << oss.str();
  }

  if (config.telemetry.wants_metrics())
    obs::emit_snapshot(config.telemetry, snap, out);

  if (!config.csv_path.empty()) append_csv(config.csv_path, config, results);
  return results;
}

void append_csv(const std::string& path, const CliConfig& config,
                const std::vector<CliResult>& results) {
  const bool fresh = !std::filesystem::exists(path);
  const bool faults_on = config.faults.enabled();
  std::ofstream out(path, std::ios::app);
  if (!out) throw ConfigError("append_csv: cannot open " + path);
  if (fresh) {
    out << "system,nodes,dims,events_per_node,queries,flavor,size_dist,"
           "workload,seed,deployments,mean_messages,mean_query_messages,"
           "mean_reply_messages,mean_results,mean_nodes_visited,"
           "insert_messages_per_event,mismatches";
    if (faults_on) out << ",recall,retries,failovers,events_lost";
    out << '\n';
  }
  for (const auto& r : results) {
    out << to_string(r.system) << ',' << config.nodes << ',' << config.dims
        << ',' << config.events_per_node << ',' << config.queries << ','
        << to_string(config.flavor) << ','
        << query::to_string(config.size_dist) << ','
        << query::to_string(config.workload) << ',' << config.seed << ','
        << config.deployments << ',' << r.mean_messages << ','
        << r.mean_query_messages << ',' << r.mean_reply_messages << ','
        << r.mean_results << ',' << r.mean_nodes_visited << ','
        << r.insert_messages_per_event << ',' << r.mismatches;
    if (faults_on) {
      out << ',' << r.recall << ',' << r.retries << ',' << r.failovers << ','
          << r.events_lost;
    }
    out << '\n';
  }
}

}  // namespace poolnet::cli
