// The unit-disk sensor network: nodes, neighbor tables, traffic ledger.
//
// Network is the single source of truth for topology and for the paper's
// evaluation metric. Routing layers compute paths; every per-hop
// transmission must be charged through transmit() / transmit_path() so the
// ledger (TrafficTally + per-node counters + energy) stays consistent.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "net/message.h"
#include "net/node.h"
#include "net/spatial_index.h"
#include "obs/trace.h"
#include "sim/energy.h"

namespace poolnet::net {

class Network {
 public:
  /// Builds the network from node positions. Neighbor tables contain all
  /// nodes within `radio_range_m` (unit-disk model, symmetric links).
  /// `loss` configures per-hop frame loss + ARQ accounting; the loss
  /// draws are deterministic per `loss_seed`.
  Network(std::vector<Point> positions, Rect field, double radio_range_m,
          MessageSizes sizes = {}, sim::EnergyModel energy = {},
          LinkLossModel loss = {}, std::uint64_t loss_seed = 0x10552);

  // --- topology ---
  std::size_t size() const { return nodes_.size(); }
  const Rect& field() const { return field_; }
  double radio_range() const { return radio_range_; }
  const Node& node(NodeId id) const;
  Node& node_mut(NodeId id);
  const std::vector<Node>& nodes() const { return nodes_; }
  Point position(NodeId id) const { return node(id).pos; }
  const std::vector<NodeId>& neighbors(NodeId id) const {
    return node(id).neighbors;
  }
  bool are_neighbors(NodeId a, NodeId b) const;

  /// Node nearest to an arbitrary location (the GHT-style "home node").
  NodeId nearest_node(Point p) const;

  /// Nearest LIVING node to `p`. Identical to nearest_node() until a
  /// fault plan kills something; kNoNode if every node is dead.
  NodeId nearest_alive_node(Point p) const;

  // --- fault state (all nodes start alive; see net::FaultInjector) ---
  bool alive(NodeId id) const { return node(id).alive; }
  std::size_t dead_count() const { return dead_count_; }
  bool has_failures() const { return dead_count_ > 0; }

  /// Crashes a node: it stops acking and forwarding. Idempotent. Its
  /// stored events are NOT reclaimed here — that is the DCS layers'
  /// failover job (DcsSystem::handle_node_failure).
  void kill(NodeId id);

  /// Transient link degradation: extra per-attempt loss composed with the
  /// base model, effective = 1 - (1-base)(1-extra). 0 restores the base.
  void set_extra_loss(double p);
  double extra_loss() const { return extra_loss_; }

  /// All nodes within `radius` of `p`.
  std::vector<NodeId> nodes_within(Point p, double radius) const;

  /// True when the unit-disk graph is a single connected component.
  bool is_connected() const;

  /// Mean neighbor-table size (sanity check against the paper's ~20).
  double average_degree() const;

  // --- traffic ledger ---
  const MessageSizes& sizes() const { return sizes_; }
  const LinkLossModel& loss_model() const { return loss_; }

  /// Charge one hop from `from` to `to` (must be neighbors or equal; a
  /// self-delivery charges nothing). Returns true when the frame was
  /// delivered. A dead sender transmits nothing (false, nothing charged).
  /// A dead receiver never acks: the sender burns its full ARQ attempt
  /// budget (all charged as messages + TX energy, no RX), the frame
  /// counts in TrafficTally::lost, and the call returns false — this is
  /// how upper layers DETECT a failure.
  bool transmit(NodeId from, NodeId to, MessageKind kind, std::uint64_t bits);

  /// Delivery outcome of a multi-hop transmission.
  struct PathDelivery {
    NodeId reached = kNoNode;         ///< last node holding the message
    std::size_t hops_delivered = 0;   ///< successful hops before any failure
    bool complete = false;            ///< every hop of the path succeeded
  };

  /// Charge every hop of `path` (consecutive entries must be neighbors),
  /// stopping at the first failed hop. A path of size <2 charges nothing
  /// and is trivially complete.
  PathDelivery transmit_path(const std::vector<NodeId>& path, MessageKind kind,
                             std::uint64_t bits);

  const TrafficTally& traffic() const { return traffic_; }
  void reset_traffic();

  /// Clears per-node tx/rx/energy/stored counters and the global tally.
  void reset_all_accounting();

  // --- hop tracing ---
  /// Attaches (or with nullptr, detaches) a hop-trace sink. Not owned.
  /// Disabled tracing costs one null-pointer test per hop. Each
  /// transmit() call is one traced message; a transmit_path() call
  /// shares one message id across its hops with ascending hop indices.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace() const { return trace_; }

 private:
  /// One charged hop of message `msg_id` at position `hop_index`.
  bool transmit_hop(NodeId from, NodeId to, MessageKind kind,
                    std::uint64_t bits, std::uint64_t msg_id,
                    std::uint16_t hop_index);

  std::vector<Node> nodes_;
  Rect field_;
  double radio_range_;
  MessageSizes sizes_;
  sim::EnergyModel energy_;
  LinkLossModel loss_;
  Rng loss_rng_;
  SpatialIndex index_;
  TrafficTally traffic_;
  std::size_t dead_count_ = 0;
  double extra_loss_ = 0.0;
  obs::TraceSink* trace_ = nullptr;
  std::uint64_t next_msg_id_ = 0;
};

}  // namespace poolnet::net
