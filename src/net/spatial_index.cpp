#include "net/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "common/error.h"

namespace poolnet::net {

SpatialIndex::SpatialIndex(const std::vector<Point>& points,
                           const Rect& bounds, double cell_size)
    : points_(points), bounds_(bounds), cell_size_(cell_size) {
  if (cell_size <= 0.0) throw ConfigError("SpatialIndex: cell_size <= 0");
  nx_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds.width() / cell_size)));
  ny_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds.height() / cell_size)));
  cells_.resize(nx_ * ny_);
  for (std::size_t i = 0; i < points_.size(); ++i)
    cells_[cell_of(points_[i])].push_back(i);
}

void SpatialIndex::cell_coords(Point p, std::int64_t& cx,
                               std::int64_t& cy) const {
  cx = static_cast<std::int64_t>(std::floor((p.x - bounds_.min_x) / cell_size_));
  cy = static_cast<std::int64_t>(std::floor((p.y - bounds_.min_y) / cell_size_));
  cx = std::clamp<std::int64_t>(cx, 0, static_cast<std::int64_t>(nx_) - 1);
  cy = std::clamp<std::int64_t>(cy, 0, static_cast<std::int64_t>(ny_) - 1);
}

std::size_t SpatialIndex::cell_of(Point p) const {
  std::int64_t cx, cy;
  cell_coords(p, cx, cy);
  return static_cast<std::size_t>(cy) * nx_ + static_cast<std::size_t>(cx);
}

std::vector<std::size_t> SpatialIndex::within(Point q, double radius,
                                              bool sorted) const {
  POOLNET_ASSERT(radius >= 0.0);
  std::vector<std::size_t> out;
  const double r2 = radius * radius;
  std::int64_t cx, cy;
  cell_coords(q, cx, cy);
  const auto reach = static_cast<std::int64_t>(
      std::ceil(radius / cell_size_)) + 1;
  for (std::int64_t dy = -reach; dy <= reach; ++dy) {
    const std::int64_t yy = cy + dy;
    if (yy < 0 || yy >= static_cast<std::int64_t>(ny_)) continue;
    for (std::int64_t dx = -reach; dx <= reach; ++dx) {
      const std::int64_t xx = cx + dx;
      if (xx < 0 || xx >= static_cast<std::int64_t>(nx_)) continue;
      const auto& bucket =
          cells_[static_cast<std::size_t>(yy) * nx_ + static_cast<std::size_t>(xx)];
      for (const std::size_t idx : bucket) {
        if (distance_sq(points_[idx], q) <= r2) out.push_back(idx);
      }
    }
  }
  if (sorted) std::sort(out.begin(), out.end());
  return out;
}

std::size_t SpatialIndex::nearest(Point q) const {
  POOLNET_ASSERT_MSG(!points_.empty(), "nearest() on empty index");
  // Expanding ring search over cells; falls back to full scan only when the
  // query point is far outside the bounds.
  std::int64_t cx, cy;
  cell_coords(q, cx, cy);
  std::size_t best = std::numeric_limits<std::size_t>::max();
  double best_d2 = std::numeric_limits<double>::infinity();
  const auto max_ring = static_cast<std::int64_t>(std::max(nx_, ny_));
  for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
    // Once we have a candidate, we can stop after scanning every cell that
    // could contain a closer point: ring distance > best distance.
    if (best != std::numeric_limits<std::size_t>::max()) {
      const double ring_min_dist =
          (static_cast<double>(ring) - 1.0) * cell_size_;
      if (ring_min_dist > 0.0 && ring_min_dist * ring_min_dist > best_d2) break;
    }
    for (std::int64_t dy = -ring; dy <= ring; ++dy) {
      for (std::int64_t dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;  // shell only
        const std::int64_t xx = cx + dx, yy = cy + dy;
        if (xx < 0 || xx >= static_cast<std::int64_t>(nx_) || yy < 0 ||
            yy >= static_cast<std::int64_t>(ny_))
          continue;
        const auto& bucket =
            cells_[static_cast<std::size_t>(yy) * nx_ +
                   static_cast<std::size_t>(xx)];
        for (const std::size_t idx : bucket) {
          const double d2 = distance_sq(points_[idx], q);
          if (d2 < best_d2 || (d2 == best_d2 && idx < best)) {
            best_d2 = d2;
            best = idx;
          }
        }
      }
    }
  }
  POOLNET_ASSERT(best != std::numeric_limits<std::size_t>::max());
  return best;
}

}  // namespace poolnet::net
