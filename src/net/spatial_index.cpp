#include "net/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "common/error.h"

namespace poolnet::net {

SpatialIndex::SpatialIndex(const std::vector<Point>& points,
                           const Rect& bounds, double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  if (cell_size <= 0.0) throw ConfigError("SpatialIndex: cell_size <= 0");
  if (points.size() > std::numeric_limits<std::uint32_t>::max())
    throw ConfigError("SpatialIndex: too many points for 32-bit ids");
  nx_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds.width() / cell_size)));
  ny_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds.height() / cell_size)));

  xs_.resize(points.size());
  ys_.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    xs_[i] = points[i].x;
    ys_[i] = points[i].y;
  }

  // Counting sort into CSR: one pass to size each bucket, prefix-sum into
  // offsets, one pass to place ids. Filling in ascending point order
  // leaves every bucket internally ascending (the same order the old
  // vector-of-vectors build produced).
  const std::size_t n_cells = nx_ * ny_;
  cell_offsets_.assign(n_cells + 1, 0);
  for (std::size_t i = 0; i < points.size(); ++i)
    ++cell_offsets_[cell_of(points[i]) + 1];
  for (std::size_t c = 1; c <= n_cells; ++c)
    cell_offsets_[c] += cell_offsets_[c - 1];
  cell_ids_.resize(points.size());
  std::vector<std::uint32_t> fill(cell_offsets_.begin(),
                                  cell_offsets_.end() - 1);
  for (std::size_t i = 0; i < points.size(); ++i)
    cell_ids_[fill[cell_of(points[i])]++] = static_cast<std::uint32_t>(i);
}

void SpatialIndex::cell_coords(Point p, std::int64_t& cx,
                               std::int64_t& cy) const {
  cx = static_cast<std::int64_t>(std::floor((p.x - bounds_.min_x) / cell_size_));
  cy = static_cast<std::int64_t>(std::floor((p.y - bounds_.min_y) / cell_size_));
  cx = std::clamp<std::int64_t>(cx, 0, static_cast<std::int64_t>(nx_) - 1);
  cy = std::clamp<std::int64_t>(cy, 0, static_cast<std::int64_t>(ny_) - 1);
}

std::size_t SpatialIndex::cell_of(Point p) const {
  std::int64_t cx, cy;
  cell_coords(p, cx, cy);
  return static_cast<std::size_t>(cy) * nx_ + static_cast<std::size_t>(cx);
}

void SpatialIndex::within(Point q, double radius,
                          std::vector<std::size_t>& out, bool sorted) const {
  POOLNET_ASSERT(radius >= 0.0);
  out.clear();
  const double r2 = radius * radius;
  std::int64_t cx, cy;
  cell_coords(q, cx, cy);
  const auto reach = static_cast<std::int64_t>(
      std::ceil(radius / cell_size_)) + 1;
  const std::int64_t y_lo = std::max<std::int64_t>(0, cy - reach);
  const std::int64_t y_hi =
      std::min<std::int64_t>(static_cast<std::int64_t>(ny_) - 1, cy + reach);
  const std::int64_t x_lo = std::max<std::int64_t>(0, cx - reach);
  const std::int64_t x_hi =
      std::min<std::int64_t>(static_cast<std::int64_t>(nx_) - 1, cx + reach);
  for (std::int64_t yy = y_lo; yy <= y_hi; ++yy) {
    const std::size_t row = static_cast<std::size_t>(yy) * nx_;
    // The row's candidate cells are adjacent in CSR, so the whole row
    // strip is one contiguous id range.
    const std::uint32_t begin =
        cell_offsets_[row + static_cast<std::size_t>(x_lo)];
    const std::uint32_t end =
        cell_offsets_[row + static_cast<std::size_t>(x_hi) + 1];
    for (std::uint32_t k = begin; k < end; ++k) {
      const std::uint32_t idx = cell_ids_[k];
      const double dx = xs_[idx] - q.x;
      const double dy = ys_[idx] - q.y;
      if (dx * dx + dy * dy <= r2) out.push_back(idx);
    }
  }
  if (sorted) std::sort(out.begin(), out.end());
}

std::vector<std::size_t> SpatialIndex::within(Point q, double radius,
                                              bool sorted) const {
  std::vector<std::size_t> out;
  within(q, radius, out, sorted);
  return out;
}

std::size_t SpatialIndex::nearest(Point q) const {
  POOLNET_ASSERT_MSG(!xs_.empty(), "nearest() on empty index");
  // Expanding ring search over cells; falls back to full scan only when the
  // query point is far outside the bounds.
  std::int64_t cx, cy;
  cell_coords(q, cx, cy);
  std::size_t best = std::numeric_limits<std::size_t>::max();
  double best_d2 = std::numeric_limits<double>::infinity();
  const auto max_ring = static_cast<std::int64_t>(std::max(nx_, ny_));
  for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
    // Once we have a candidate, we can stop after scanning every cell that
    // could contain a closer point: ring distance > best distance.
    if (best != std::numeric_limits<std::size_t>::max()) {
      const double ring_min_dist =
          (static_cast<double>(ring) - 1.0) * cell_size_;
      if (ring_min_dist > 0.0 && ring_min_dist * ring_min_dist > best_d2) break;
    }
    for (std::int64_t dy = -ring; dy <= ring; ++dy) {
      for (std::int64_t dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;  // shell only
        const std::int64_t xx = cx + dx, yy = cy + dy;
        if (xx < 0 || xx >= static_cast<std::int64_t>(nx_) || yy < 0 ||
            yy >= static_cast<std::int64_t>(ny_))
          continue;
        const std::size_t cell =
            static_cast<std::size_t>(yy) * nx_ + static_cast<std::size_t>(xx);
        const std::uint32_t end = cell_offsets_[cell + 1];
        for (std::uint32_t k = cell_offsets_[cell]; k < end; ++k) {
          const std::uint32_t idx = cell_ids_[k];
          const double ddx = xs_[idx] - q.x;
          const double ddy = ys_[idx] - q.y;
          const double d2 = ddx * ddx + ddy * ddy;
          if (d2 < best_d2 || (d2 == best_d2 && idx < best)) {
            best_d2 = d2;
            best = idx;
          }
        }
      }
    }
  }
  POOLNET_ASSERT(best != std::numeric_limits<std::size_t>::max());
  return best;
}

}  // namespace poolnet::net
