// Sensor node state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace poolnet::net {

/// Dense node identifier, 0..n-1 within a Network.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// A sensor node. Position is fixed after deployment (static sensornet, as
/// in the paper). Counters are maintained by Network::transmit_* and by the
/// DCS systems (stored_events).
struct Node {
  NodeId id = kNoNode;
  Point pos;

  /// False once a fault plan crashes the node: it stops forwarding,
  /// acking, and answering; its stored events are gone with it.
  bool alive = true;

  /// Neighbor ids within radio range, sorted by id (built by Network).
  std::vector<NodeId> neighbors;

  // --- accounting ---
  std::uint64_t tx_count = 0;       ///< messages transmitted
  std::uint64_t rx_count = 0;       ///< messages received
  std::uint64_t retry_count = 0;    ///< ARQ retransmissions (attempts beyond 1)
  std::uint64_t drop_count = 0;     ///< frames abandoned after the ARQ budget
  std::uint64_t stored_events = 0;  ///< events resident at this node
  double energy_spent_j = 0.0;      ///< radio energy consumed
};

}  // namespace poolnet::net
