// Replays a sim::FaultPlan against live Networks.
//
// The CLI/bench drivers co-deploy several systems (Pool/DIM/GHT) on
// networks built from the SAME node positions; the injector applies each
// action to every registered network so all systems observe one
// consistent world. Failure DETECTION stays reactive: the injector only
// flips alive bits — systems learn about a death when a send into the
// dead node exhausts its ack/retry budget (routing::send_reliable).
#pragma once

#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "sim/fault_plan.h"

namespace poolnet::net {

class FaultInjector {
 public:
  /// `nets` must all have the same size and node positions (the testbed
  /// convention). A disabled plan makes advance() a cheap no-op.
  FaultInjector(sim::FaultPlan plan, std::vector<Network*> nets);

  /// Applies every not-yet-fired action with `at` <= now, in schedule
  /// order. Returns the ids newly killed by this call.
  std::vector<NodeId> advance(double now);

  bool exhausted() const { return next_ >= plan_.actions.size(); }
  std::size_t total_killed() const { return killed_; }

 private:
  void kill_everywhere(NodeId id, std::vector<NodeId>* newly);

  sim::FaultPlan plan_;
  std::vector<Network*> nets_;
  std::size_t next_ = 0;
  Rng rng_;
  std::size_t killed_ = 0;
};

}  // namespace poolnet::net
