// Sensor deployment generators and density helpers.
#pragma once

#include <cstddef>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"

namespace poolnet::net {

/// Field side length (meters) such that `n` uniformly placed nodes with
/// radio range `radio_m` see on average `avg_neighbors` other nodes.
/// Derivation: density = avg_neighbors / (pi r^2); side = sqrt(n/density).
/// The paper uses radio 40 m and ~20 neighbors/node.
double field_side_for_density(std::size_t n, double radio_m,
                              double avg_neighbors);

/// `n` node positions i.i.d. uniform over `field`.
std::vector<Point> deploy_uniform(std::size_t n, const Rect& field, Rng& rng);

/// `n` positions on a jittered grid: ceil(sqrt(n))^2 cells, one node per
/// cell center plus uniform jitter of `jitter_frac` of the cell size.
/// Gives near-uniform coverage with fewer voids — useful for tests that
/// need guaranteed connectivity.
std::vector<Point> deploy_grid_jitter(std::size_t n, const Rect& field,
                                      double jitter_frac, Rng& rng);

}  // namespace poolnet::net
