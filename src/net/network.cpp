#include "net/network.h"

#include <algorithm>

#include "common/assert.h"
#include "common/error.h"

namespace poolnet::net {

namespace {
// Validates before the spatial index is built: a non-positive radio range
// would otherwise size the index grid absurdly.
const std::vector<Point>& validated(const std::vector<Point>& positions,
                                    double radio_range_m) {
  if (positions.empty()) throw ConfigError("Network: no nodes");
  if (radio_range_m <= 0.0) throw ConfigError("Network: radio range <= 0");
  return positions;
}
}  // namespace

Network::Network(std::vector<Point> positions, Rect field,
                 double radio_range_m, MessageSizes sizes,
                 sim::EnergyModel energy, LinkLossModel loss,
                 std::uint64_t loss_seed)
    : field_(field),
      radio_range_(radio_range_m),
      sizes_(sizes),
      energy_(energy),
      loss_(loss),
      loss_rng_(loss_seed),
      index_(validated(positions, radio_range_m), field, radio_range_m) {
  if (loss_.loss_probability < 0.0 || loss_.loss_probability >= 1.0)
    throw ConfigError("Network: loss probability must be in [0, 1)");
  if (loss_.max_attempts == 0)
    throw ConfigError("Network: max_attempts must be positive");
  nodes_.resize(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    nodes_[i].id = static_cast<NodeId>(i);
    nodes_[i].pos = positions[i];
  }
  // Neighbor tables via the spatial index (the paper's periodic beacons).
  // The scan itself is unsorted (cheaper); the filtered table is then
  // sorted because are_neighbors binary-searches it.
  std::vector<std::size_t> near;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    index_.within(nodes_[i].pos, radio_range_, near, /*sorted=*/false);
    auto& nb = nodes_[i].neighbors;
    nb.reserve(near.size());
    for (const std::size_t j : near) {
      if (j != i) nb.push_back(static_cast<NodeId>(j));
    }
    std::sort(nb.begin(), nb.end());
  }
}

const Node& Network::node(NodeId id) const {
  POOLNET_ASSERT(id < nodes_.size());
  return nodes_[id];
}

Node& Network::node_mut(NodeId id) {
  POOLNET_ASSERT(id < nodes_.size());
  return nodes_[id];
}

bool Network::are_neighbors(NodeId a, NodeId b) const {
  const auto& nb = node(a).neighbors;
  return std::binary_search(nb.begin(), nb.end(), b);
}

NodeId Network::nearest_node(Point p) const {
  return static_cast<NodeId>(index_.nearest(p));
}

NodeId Network::nearest_alive_node(Point p) const {
  const NodeId n = nearest_node(p);
  if (dead_count_ == 0 || nodes_[n].alive) return n;
  // Failover elections are rare; a linear scan over survivors is fine.
  NodeId best = kNoNode;
  double best_d2 = 0.0;
  for (const Node& cand : nodes_) {
    if (!cand.alive) continue;
    const double dx = cand.pos.x - p.x;
    const double dy = cand.pos.y - p.y;
    const double d2 = dx * dx + dy * dy;
    if (best == kNoNode || d2 < best_d2) {
      best = cand.id;
      best_d2 = d2;
    }
  }
  return best;
}

void Network::kill(NodeId id) {
  Node& n = node_mut(id);
  if (!n.alive) return;
  n.alive = false;
  ++dead_count_;
}

void Network::set_extra_loss(double p) {
  if (p < 0.0 || p >= 1.0)
    throw ConfigError("Network: extra loss must be in [0, 1)");
  extra_loss_ = p;
}

std::vector<NodeId> Network::nodes_within(Point p, double radius) const {
  std::vector<NodeId> out;
  for (const std::size_t i : index_.within(p, radius, /*sorted=*/false))
    out.push_back(static_cast<NodeId>(i));
  return out;
}

bool Network::is_connected() const {
  if (nodes_.empty()) return true;
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    ++visited;
    for (const NodeId v : nodes_[u].neighbors) {
      if (!seen[v]) {
        seen[v] = 1;
        stack.push_back(v);
      }
    }
  }
  return visited == nodes_.size();
}

double Network::average_degree() const {
  if (nodes_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.neighbors.size();
  return static_cast<double>(total) / static_cast<double>(nodes_.size());
}

bool Network::transmit(NodeId from, NodeId to, MessageKind kind,
                       std::uint64_t bits) {
  return transmit_hop(from, to, kind, bits, next_msg_id_++, 0);
}

bool Network::transmit_hop(NodeId from, NodeId to, MessageKind kind,
                           std::uint64_t bits, std::uint64_t msg_id,
                           std::uint16_t hop_index) {
  if (from == to) return true;  // local delivery, no radio use
  POOLNET_ASSERT_MSG(are_neighbors(from, to),
                     "transmit between non-neighbors");
  Node& src = nodes_[from];
  Node& dst = nodes_[to];
  if (!src.alive) return false;  // a crashed radio sends nothing

  // Link-layer ARQ: retransmit until the frame survives the channel (or
  // the attempt budget forces delivery). Every attempt is a message and
  // costs transmit energy; reception is charged once. A dead receiver
  // never acks, so the sender always exhausts the budget — that exhausted
  // burst IS the failure detection signal (and its cost).
  const double loss_p =
      extra_loss_ == 0.0
          ? loss_.loss_probability
          : 1.0 - (1.0 - loss_.loss_probability) * (1.0 - extra_loss_);
  std::uint32_t attempts = 1;
  if (!dst.alive) {
    attempts = loss_.max_attempts;
  } else {
    while (attempts < loss_.max_attempts &&
           loss_p > 0.0 &&
           loss_rng_.bernoulli(loss_p)) {
      ++attempts;
    }
  }

  src.tx_count += attempts;
  src.retry_count += attempts - 1;
  const double d = distance(src.pos, dst.pos);
  const double tx_e = energy_.tx_cost(bits, d) * attempts;
  src.energy_spent_j += tx_e;
  traffic_.by_kind[static_cast<std::size_t>(kind)] += attempts;
  traffic_.total += attempts;
  const bool delivered = dst.alive;
  if (trace_ != nullptr) {
    trace_->on_hop({msg_id, traffic_.total, from, to, hop_index,
                    static_cast<std::uint8_t>(kind), delivered});
  }
  if (!delivered) {
    ++src.drop_count;
    traffic_.energy_j += tx_e;
    ++traffic_.lost;
    return false;
  }
  ++dst.rx_count;
  const double rx_e = energy_.rx_cost(bits);
  dst.energy_spent_j += rx_e;
  traffic_.energy_j += tx_e + rx_e;
  return true;
}

Network::PathDelivery Network::transmit_path(const std::vector<NodeId>& path,
                                             MessageKind kind,
                                             std::uint64_t bits) {
  PathDelivery out;
  out.complete = true;
  if (!path.empty()) out.reached = path[0];
  const std::uint64_t msg_id = next_msg_id_++;
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (!transmit_hop(path[i - 1], path[i], kind, bits, msg_id,
                      static_cast<std::uint16_t>(i - 1))) {
      out.complete = false;
      return out;
    }
    out.reached = path[i];
    ++out.hops_delivered;
  }
  return out;
}

void Network::reset_traffic() { traffic_.clear(); }

void Network::reset_all_accounting() {
  traffic_.clear();
  next_msg_id_ = 0;
  for (auto& n : nodes_) {
    n.tx_count = 0;
    n.rx_count = 0;
    n.retry_count = 0;
    n.drop_count = 0;
    n.stored_events = 0;
    n.energy_spent_j = 0.0;
  }
}

}  // namespace poolnet::net
